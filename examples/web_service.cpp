/**
 * @file
 * Network example: a lighttpd-style master + workers service running
 * as SIPs, driven by simulated LAN clients — the paper's cloud-native
 * motivation (a main service plus helpers in one enclave).
 */
#include <cstdio>
#include <cstring>

#include "libos/occlum_system.h"
#include "workloads/workloads.h"

using namespace occlum;

int
main()
{
    sgx::Platform platform;
    host::NetSim net(platform.clock());
    host::HostFileStore binaries;
    binaries.put("httpd",
                 workloads::build_program(
                     workloads::httpd_master_source()).occlum);
    binaries.put("httpd_worker",
                 workloads::build_program(
                     workloads::httpd_worker_source()).occlum);

    libos::OcclumSystem::Config config;
    config.verifier_key = workloads::bench_verifier_key();
    libos::OcclumSystem sys(platform, binaries, config, &net);

    constexpr int kRequests = 20;
    auto pid = sys.spawn("httpd", {"httpd", "2",
                                   std::to_string(kRequests / 2)});
    if (!pid.ok()) {
        std::fprintf(stderr, "spawn: %s\n", pid.error().message.c_str());
        return 1;
    }
    sys.run(/*allow_idle=*/true); // workers block in accept()

    // Issue requests from the host-side LAN client.
    const char *request = "GET / HTTP/1.1\r\n\r\n";
    int completed = 0;
    for (int i = 0; i < kRequests; ++i) {
        auto conn = net.connect(8080);
        if (!conn.ok()) {
            std::fprintf(stderr, "connect: %s\n",
                         conn.error().message.c_str());
            return 1;
        }
        net.send(conn.value(), false,
                 reinterpret_cast<const uint8_t *>(request),
                 strlen(request));
        size_t got = 0;
        uint8_t buf[4096];
        int idle_rounds = 0;
        while (got < 10240 && idle_rounds < 10000) {
            bool progress = sys.step_round();
            uint64_t next = ~0ull;
            size_t n = net.recv(conn.value(), false, buf, sizeof(buf),
                                platform.clock().cycles(), next);
            got += n;
            if (!progress && n == 0) {
                uint64_t wake = std::min(sys.next_wake_time(), next);
                if (wake == ~0ull ||
                    wake <= platform.clock().cycles()) {
                    ++idle_rounds;
                    continue;
                }
                platform.clock().advance(wake -
                                         platform.clock().cycles());
            }
        }
        if (got >= 10240) {
            ++completed;
        }
        net.close(conn.value(), false);
    }
    std::printf("served %d/%d requests (10 KiB pages) in %.2f ms "
                "simulated\n",
                completed, kRequests, platform.clock().millis());
    std::printf("worker SIPs handled them inside one enclave; network "
                "I/O was delegated to the untrusted host (paper Sec 6)\n");
    return completed == kRequests ? 0 : 1;
}
