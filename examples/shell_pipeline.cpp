/**
 * @file
 * Multi-process example: a shell-style pipeline of SIPs inside one
 * enclave — the paper's headline use case (cheap spawn + cheap IPC).
 *
 * A driver SIP spawns `producer | filter | consumer`, wiring them
 * with pipes through the spawn stdio map; all three run as SFI-
 * isolated processes sharing the enclave.
 */
#include <cstdio>

#include "libos/occlum_system.h"
#include "workloads/workloads.h"

using namespace occlum;

namespace {

const char *kProducer = R"MC(
func main() {
    for (i = 1; i <= 20; i = i + 1) {
        print_int(i * i);
        println("");
    }
    return 0;
}
)MC";

const char *kFilter = R"MC(
// Keep lines whose number is even.
global byte buf[4096];
global byte line[64];
func main() {
    var total = 0;
    while (1) {
        var n = read(0, buf + total, 4096 - total);
        if (n <= 0) { break; }
        total = total + n;
    }
    var start = 0;
    for (i = 0; i < total; i = i + 1) {
        if (bload(buf + i) == 10) {
            memcpy(line, buf + start, i - start);
            bstore(line + (i - start), 0);
            var v = atoi(line);
            if ((v % 2) == 0) {
                write(1, buf + start, i - start + 1);
            }
            start = i + 1;
        }
    }
    return 0;
}
)MC";

const char *kConsumer = R"MC(
global byte buf[4096];
func main() {
    var sum = 0;
    var total = 0;
    while (1) {
        var n = read(0, buf + total, 4096 - total);
        if (n <= 0) { break; }
        total = total + n;
    }
    var start = 0;
    var count = 0;
    for (i = 0; i < total; i = i + 1) {
        if (bload(buf + i) == 10) {
            bstore(buf + i, 0);
            sum = sum + atoi(buf + start);
            count = count + 1;
            start = i + 1;
        }
    }
    print("sum of ");
    print_int(count);
    print(" even squares: ");
    print_int(sum);
    println("");
    return 0;
}
)MC";

const char *kDriver = R"MC(
global byte p1[16] = "producer";
global byte p2[16] = "filter";
global byte p3[16] = "consumer";
func runp(prog, in_fd, out_fd) {
    var io[3];
    io[0] = in_fd;
    io[1] = out_fd;
    io[2] = 0 - 1;
    var argvv[1];
    argvv[0] = prog;
    return spawn_io(prog, argvv, 1, io);
}
func main() {
    var a[2]; var b[2];
    pipe(a); pipe(b);
    var pid1 = runp(p1, 0 - 1, a[1]);
    var pid2 = runp(p2, a[0], b[1]);
    var pid3 = runp(p3, b[0], 0 - 1);
    close(a[0]); close(a[1]);
    close(b[0]); close(b[1]);
    waitpid(pid1);
    waitpid(pid2);
    return waitpid(pid3);
}
)MC";

} // namespace

int
main()
{
    sgx::Platform platform;
    host::HostFileStore binaries;
    for (auto [name, src] : {std::pair{"driver", kDriver},
                             {"producer", kProducer},
                             {"filter", kFilter},
                             {"consumer", kConsumer}}) {
        binaries.put(name, workloads::build_program(src).occlum);
    }

    libos::OcclumSystem::Config config;
    config.verifier_key = workloads::bench_verifier_key();
    libos::OcclumSystem sys(platform, binaries, config);

    auto pid = sys.spawn("driver", {"driver"});
    if (!pid.ok()) {
        std::fprintf(stderr, "spawn: %s\n", pid.error().message.c_str());
        return 1;
    }
    sys.run();
    std::printf("%s", sys.console().c_str());
    std::printf("(%llu spawns, %llu syscalls, %.2f ms simulated)\n",
                (unsigned long long)sys.stats().spawns,
                (unsigned long long)sys.stats().syscalls,
                platform.clock().millis());
    return 0;
}
