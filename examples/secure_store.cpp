/**
 * @file
 * Encrypted file-system example: a key-value "secure store" SIP over
 * Occlum's writable encrypted FS — and proof that the host block
 * device only ever sees ciphertext.
 *
 * Two SIPs run in sequence sharing one unified FS view (Table 1):
 * the writer persists records, the reader loads them back. Then the
 * host-side device is scanned for plaintext, and a tampered block is
 * shown to be rejected.
 */
#include <algorithm>
#include <cstdio>

#include "libos/occlum_system.h"
#include "workloads/workloads.h"

using namespace occlum;

namespace {

const char *kWriter = R"MC(
global byte dir[16] = "/store";
global byte path[32] = "/store/accounts";
global byte rec[64];
func main() {
    mkdir(dir);
    var fd = open(path, 0x242);    // CREAT|TRUNC|WRONLY
    if (fd < 0) { return 1; }
    for (i = 0; i < 100; i = i + 1) {
        var n = itoa(i, rec);
        bstore(rec + n, ':');
        var m = itoa(i * 1000 + 7, rec + n + 1);
        bstore(rec + n + 1 + m, 10);
        write(fd, rec, n + m + 2);
    }
    fsync(fd);
    close(fd);
    println("writer: 100 records persisted, encrypted at rest");
    return 0;
}
)MC";

const char *kReader = R"MC(
global byte path[32] = "/store/accounts";
global byte buf[4096];
func main() {
    var fd = open(path, 0);
    if (fd < 0) { return 1; }
    var total = 0;
    while (1) {
        var n = read(fd, buf + total, 4096 - total);
        if (n <= 0) { break; }
        total = total + n;
    }
    close(fd);
    var lines = 0;
    for (i = 0; i < total; i = i + 1) {
        if (bload(buf + i) == 10) { lines = lines + 1; }
    }
    print("reader: loaded ");
    print_int(lines);
    println(" records from the shared encrypted FS");
    return lines;
}
)MC";

} // namespace

int
main()
{
    sgx::Platform platform;
    host::HostFileStore binaries;
    binaries.put("writer", workloads::build_program(kWriter).occlum);
    binaries.put("reader", workloads::build_program(kReader).occlum);

    libos::OcclumSystem::Config config;
    config.verifier_key = workloads::bench_verifier_key();
    libos::OcclumSystem sys(platform, binaries, config);

    for (const char *prog : {"writer", "reader"}) {
        auto pid = sys.spawn(prog, {prog});
        if (!pid.ok()) {
            std::fprintf(stderr, "spawn: %s\n",
                         pid.error().message.c_str());
            return 1;
        }
        sys.run();
    }
    std::printf("%s", sys.console().c_str());

    // The untrusted device never sees plaintext.
    sys.fs().sync().ok();
    std::string needle = ":1007\n"; // record 1 -> "1:1007"
    bool leaked = false;
    for (uint64_t b = 0; b < sys.device().block_count(); ++b) {
        const Bytes &raw = sys.device().raw_block(b);
        if (raw.empty()) continue;
        if (std::search(raw.begin(), raw.end(), needle.begin(),
                        needle.end()) != raw.end()) {
            leaked = true;
        }
    }
    std::printf("host device plaintext scan: %s\n",
                leaked ? "LEAKED (bug!)" : "only ciphertext visible");

    std::printf("tamper test: flipping any device bit makes subsequent "
                "reads fail the HMAC check (demonstrated in "
                "tests/encfs_test.cc, EncFs.TamperedBlockIsRejected)\n");
    return leaked ? 1 : 0;
}
