/**
 * @file
 * Quickstart: the full Occlum workflow in one file (paper Fig. 1b).
 *
 *   1. Compile a MiniC program with the MMDSFI-instrumenting
 *      toolchain (the untrusted compiler).
 *   2. Statically verify the binary and sign it (the trusted
 *      verifier takes the toolchain out of the TCB).
 *   3. Boot an Occlum system (one enclave, preallocated SIP slots),
 *      install the signed binary, spawn it, and read its output.
 */
#include <cstdio>

#include "libos/occlum_system.h"
#include "toolchain/minic.h"
#include "verifier/verifier.h"

using namespace occlum;

int
main()
{
    // ---- 1. compile ------------------------------------------------
    const char *source = R"MC(
func main() {
    println("Hello from an SFI-Isolated Process!");
    print("2^32 = ");
    print_int(1 << 32);
    println("");
    return 0;
}
)MC";
    toolchain::CompileOptions options;
    options.instrument = toolchain::InstrumentOptions::full();
    auto compiled = toolchain::compile(source, options);
    if (!compiled.ok()) {
        std::fprintf(stderr, "compile error: %s\n",
                     compiled.error().message.c_str());
        return 1;
    }
    std::printf("compiled: %zu bytes of code, %llu mem_guards, "
                "%llu cfi_labels\n",
                compiled.value().image.code.size(),
                (unsigned long long)
                    compiled.value().stats.mem_guards_emitted,
                (unsigned long long)compiled.value().stats.cfi_labels);

    // ---- 2. verify + sign -------------------------------------------
    crypto::Key128 key{};
    key[0] = 0x42;
    verifier::Verifier verifier(key);
    auto report = verifier.verify(compiled.value().image);
    std::printf("verifier: %s (%llu reachable instructions, "
                "%llu labels)\n",
                report.ok ? "PASS" : report.reason.c_str(),
                (unsigned long long)report.reachable_instructions,
                (unsigned long long)report.cfi_labels);
    auto signed_image = verifier.verify_and_sign(compiled.value().image);
    if (!signed_image.ok()) {
        return 1;
    }

    // ---- 3. boot, spawn, run ------------------------------------------
    sgx::Platform platform;
    host::HostFileStore binaries;
    binaries.put("hello", signed_image.value().serialize());

    libos::OcclumSystem::Config config;
    config.verifier_key = key;
    libos::OcclumSystem sys(platform, binaries, config);
    std::printf("enclave: measured %llu pages, measurement %02x%02x...\n",
                (unsigned long long)sys.enclave().added_pages(),
                sys.enclave().measurement()[0],
                sys.enclave().measurement()[1]);

    auto pid = sys.spawn("hello", {"hello"});
    if (!pid.ok()) {
        std::fprintf(stderr, "spawn: %s\n", pid.error().message.c_str());
        return 1;
    }
    sys.run();
    std::printf("---- SIP console ----\n%s---------------------\n",
                sys.console().c_str());
    std::printf("exit code %lld, simulated time %.2f us\n",
                (long long)sys.exit_code(pid.value()).value(),
                platform.clock().micros());
    return 0;
}
