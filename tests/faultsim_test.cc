/**
 * @file
 * Fault-injection harness tests: plan parsing, seeded determinism of
 * the injection sequence, EPC-exhaustion degradation, AEX-storm
 * transparency, transient-fault retry absorption, EncFs flush/torn
 * write recovery regressions, and the randomized crash-monkey that
 * injects a fault at every op ordinal and checks the survivors'
 * invariants after remount/restart.
 */
#include <gtest/gtest.h>

#include <map>

#include "faultsim/faultsim.h"
#include "host/host.h"
#include "libos/encfs.h"
#include "libos/occlum_system.h"
#include "toolchain/minic.h"
#include "trace/metrics.h"
#include "verifier/verifier.h"
#include "workloads/workloads.h"

namespace occlum {
namespace {

using faultsim::DevFault;
using faultsim::FaultPlan;
using faultsim::FaultSim;
using faultsim::ScopedFaultPlan;
using faultsim::Site;

// ---------------------------------------------------------------------
// Plan parsing
// ---------------------------------------------------------------------

TEST(FaultPlanParse, ParsesKeysWithEitherSeparator)
{
    auto plan = FaultPlan::parse(
        "seed=7;dev_write_fail_at=23,torn_write=0.25;aex_every=512");
    ASSERT_TRUE(plan.ok());
    EXPECT_EQ(plan.value().seed, 7u);
    EXPECT_EQ(plan.value().dev_write_fail_at, 23u);
    EXPECT_DOUBLE_EQ(plan.value().torn_write, 0.25);
    EXPECT_EQ(plan.value().aex_every, 512u);
    EXPECT_TRUE(plan.value().any());

    auto empty = FaultPlan::parse("");
    ASSERT_TRUE(empty.ok());
    EXPECT_FALSE(empty.value().any());
}

TEST(FaultPlanParse, RejectsTyposAndBadValues)
{
    // A typo'd key silently ignored would make a CI fault run vacuous.
    EXPECT_FALSE(FaultPlan::parse("sed=7").ok());
    EXPECT_FALSE(FaultPlan::parse("torn_write=1.5").ok());
    EXPECT_FALSE(FaultPlan::parse("torn_write=-0.1").ok());
    EXPECT_FALSE(FaultPlan::parse("aex_every=abc").ok());
    EXPECT_FALSE(FaultPlan::parse("aex_every=12x").ok());
    EXPECT_FALSE(FaultPlan::parse("noequals").ok());
}

// ---------------------------------------------------------------------
// Seeded determinism
// ---------------------------------------------------------------------

std::vector<DevFault>
draw_write_sequence(const FaultPlan &plan, size_t n)
{
    ScopedFaultPlan scoped(plan);
    std::vector<DevFault> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        out.push_back(FaultSim::instance().dev_write_fault());
    }
    return out;
}

TEST(FaultSimDeterminism, SameSeedReproducesTheInjectionSequence)
{
    FaultPlan plan;
    plan.seed = 42;
    plan.dev_write_transient = 0.10;
    plan.dev_write_fail = 0.05;
    plan.torn_write = 0.05;
    plan.corrupt_write = 0.05;

    auto first = draw_write_sequence(plan, 500);
    auto second = draw_write_sequence(plan, 500);
    EXPECT_EQ(first, second);

    // The plan is hot enough that something actually fired.
    size_t fired = 0;
    for (DevFault f : first) {
        if (f != DevFault::kNone) {
            ++fired;
        }
    }
    EXPECT_GT(fired, 0u);

    // A different seed yields a different schedule.
    plan.seed = 43;
    EXPECT_NE(draw_write_sequence(plan, 500), first);
}

TEST(FaultSimDeterminism, OneShotOrdinalOverridesAndCountersTrack)
{
    FaultPlan plan;
    plan.seed = 5;
    plan.dev_write_fail_at = 3; // exactly the 3rd write check fails
    ScopedFaultPlan scoped(plan);

    FaultSim &sim = FaultSim::instance();
    for (int i = 1; i <= 6; ++i) {
        DevFault f = sim.dev_write_fault();
        if (i == 3) {
            EXPECT_EQ(f, DevFault::kHard) << "ordinal " << i;
        } else {
            EXPECT_EQ(f, DevFault::kNone) << "ordinal " << i;
        }
    }
    EXPECT_EQ(sim.checks(Site::kDevWrite), 6u);
    EXPECT_EQ(sim.fires(Site::kDevWrite), 1u);
}

TEST(FaultSimDeterminism, ScopedPlanRestoresPreviousState)
{
    FaultSim &sim = FaultSim::instance();
    bool outer_active = sim.active();
    {
        FaultPlan plan;
        plan.torn_write = 1.0;
        ScopedFaultPlan scoped(plan);
        EXPECT_TRUE(sim.active());
        EXPECT_EQ(sim.dev_write_fault(), DevFault::kTorn);
    }
    EXPECT_EQ(sim.active(), outer_active);
    EXPECT_EQ(sim.dev_write_fault(), DevFault::kNone);
}

// ---------------------------------------------------------------------
// EncFs under device faults
// ---------------------------------------------------------------------

struct FsHarness {
    SimClock clock;
    host::BlockDevice device{clock, 256};
    libos::EncFs::Config config;
    std::unique_ptr<libos::EncFs> fs;

    FsHarness()
    {
        config.inode_count = 64;
        config.cache_blocks = 64;
        fs = std::make_unique<libos::EncFs>(device, clock, config);
    }

    /** A fresh EncFs over the same device (the "remount"). */
    std::unique_ptr<libos::EncFs>
    remount()
    {
        return std::make_unique<libos::EncFs>(device, clock, config);
    }
};

TEST(FaultSimEncFs, TransientFaultsAreAbsorbedByRetryWithBackoff)
{
    FsHarness h;
    ASSERT_TRUE(h.fs->mkfs().ok());

    trace::Counter &retries =
        trace::Registry::instance().counter("encfs.io_retries");
    uint64_t retries_before = retries.value();
    uint64_t cycles_before = h.clock.cycles();

    FaultPlan plan;
    plan.seed = 11;
    plan.dev_read_transient = 0.2;
    plan.dev_write_transient = 0.2;
    ScopedFaultPlan scoped(plan);

    Bytes content(6000, 0x5a);
    ASSERT_TRUE(h.fs->write_file("/t", content).ok());
    ASSERT_TRUE(h.fs->sync().ok());
    auto back = h.fs->read_file("/t");
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), content);

    // The faults really happened and the retries really paid for
    // themselves: the retry counter moved and backoff burned cycles.
    EXPECT_GT(retries.value(), retries_before);
    EXPECT_GT(h.clock.cycles(), cycles_before);
}

TEST(FaultSimEncFs, ExhaustedTransientRetriesSurfaceAsIo)
{
    FsHarness h;
    ASSERT_TRUE(h.fs->mkfs().ok());
    ASSERT_TRUE(h.fs->write_file("/t", Bytes(100, 1)).ok());
    ASSERT_TRUE(h.fs->sync().ok());

    // Every attempt transient: the bounded retry gives up with kIo
    // instead of spinning forever.
    FaultPlan plan;
    plan.dev_write_transient = 1.0;
    ScopedFaultPlan scoped(plan);
    ASSERT_TRUE(h.fs->write_file("/t", Bytes(200, 2)).ok()); // cached
    Status synced = h.fs->sync();
    ASSERT_FALSE(synced.ok());
    EXPECT_EQ(synced.code(), ErrorCode::kIo);
}

TEST(Regression, FlushFailureLeavesEntryDirtyAndRollsBackMac)
{
    FsHarness h;
    ASSERT_TRUE(h.fs->mkfs().ok());
    Bytes v1(5000, 0x11);
    Bytes v2(5200, 0x22);
    ASSERT_TRUE(h.fs->write_file("/f", v1).ok());
    ASSERT_TRUE(h.fs->sync().ok());

    ASSERT_TRUE(h.fs->write_file("/f", v2).ok());
    {
        FaultPlan plan;
        plan.dev_write_fail = 1.0; // every device write fails hard
        ScopedFaultPlan scoped(plan);
        EXPECT_FALSE(h.fs->sync().ok());
        // The failed flush must not have dropped the data: the entry
        // stays dirty in cache and reads still see v2.
        auto cached = h.fs->read_file("/f");
        ASSERT_TRUE(cached.ok());
        EXPECT_EQ(cached.value(), v2);
    }

    // With the fault gone the same dirty state flushes cleanly, and a
    // fresh mount of the device agrees — i.e. the failed flush neither
    // marked entries clean nor left the MAC table pointing at
    // ciphertext that never reached the device.
    ASSERT_TRUE(h.fs->sync().ok());
    auto fs2 = h.remount();
    ASSERT_TRUE(fs2->mount().ok());
    auto after = fs2->read_file("/f");
    ASSERT_TRUE(after.ok());
    EXPECT_EQ(after.value(), v2);
}

TEST(Regression, TornWriteDetectedOnRemount)
{
    FsHarness h;
    ASSERT_TRUE(h.fs->mkfs().ok());
    Bytes v1(5000, 0x33);
    Bytes v2(5000, 0x44);
    ASSERT_TRUE(h.fs->write_file("/f", v1).ok());
    ASSERT_TRUE(h.fs->sync().ok());

    // Every write of the second sync is torn: only the first half of
    // each block lands, while the device reports success.
    ASSERT_TRUE(h.fs->write_file("/f", v2).ok());
    {
        FaultPlan plan;
        plan.torn_write = 1.0;
        ScopedFaultPlan scoped(plan);
        (void)h.fs->sync(); // "succeeds" — the tear is silent
    }

    // Crash here (drop the FS without another sync), then remount.
    // The torn blocks must be *detected* — a read either fails the
    // integrity check cleanly or returns an intact version in full;
    // it never panics and never returns stitched half-and-half data.
    auto fs2 = h.remount();
    Status mounted = fs2->mount();
    if (mounted.ok()) {
        auto got = fs2->read_file("/f");
        if (got.ok()) {
            EXPECT_TRUE(got.value() == v1 || got.value() == v2);
        }
    } else {
        EXPECT_FALSE(mounted.error().message.empty());
    }
}

TEST(FaultSimEncFs, CorruptWritesAreCaughtByTheMac)
{
    FsHarness h;
    ASSERT_TRUE(h.fs->mkfs().ok());
    Bytes v1(4096, 0x77);
    {
        FaultPlan plan;
        plan.seed = 3;
        plan.corrupt_write = 1.0; // every block scrambled in flight
        ScopedFaultPlan scoped(plan);
        ASSERT_TRUE(h.fs->write_file("/f", v1).ok());
        (void)h.fs->sync(); // reports success; the corruption is silent
    }
    // The remount sees flipped bits somewhere on the path from MAC
    // table to data block and must refuse rather than return garbage.
    auto fs2 = h.remount();
    Status mounted = fs2->mount();
    if (mounted.ok()) {
        auto got = fs2->read_file("/f");
        if (got.ok()) {
            EXPECT_EQ(got.value(), v1); // only an intact copy is ok
        }
    }
}

// ---------------------------------------------------------------------
// Occlum system: EPC exhaustion and AEX storms
// ---------------------------------------------------------------------

crypto::Key128
vkey()
{
    crypto::Key128 key{};
    key[5] = 0x31;
    return key;
}

Bytes
build_signed(const std::string &source)
{
    auto out = toolchain::compile(source);
    EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().message);
    verifier::Verifier verifier(vkey());
    auto signed_image = verifier.verify_and_sign(out.value().image);
    EXPECT_TRUE(signed_image.ok());
    return signed_image.value().serialize();
}

struct OcclumHarness {
    sgx::Platform platform;
    host::HostFileStore binaries;
    std::unique_ptr<libos::OcclumSystem> sys;

    explicit OcclumHarness(libos::OcclumSystem::Config config = {})
    {
        config.verifier_key = vkey();
        sys = std::make_unique<libos::OcclumSystem>(platform, binaries,
                                                    config);
    }
};

TEST(FaultSimEpc, InjectedExhaustionDegradesSlotsNotTheSystem)
{
    FaultPlan plan;
    plan.epc_fail_at = 5; // the 3rd slot's code EADD fails
    ScopedFaultPlan scoped(plan);

    libos::OcclumSystem::Config config;
    config.num_slots = 8;
    config.fs_blocks = 1 << 10;
    OcclumHarness h(config);

    // Two add_pages checks per slot: checks 1..4 built slots 1-2,
    // check 5 stopped slot 3. The system must come up with what fits.
    EXPECT_EQ(h.sys->free_slots(), 2);
    ASSERT_TRUE(h.sys->fs_status().ok());

    // Both surviving slots are genuinely usable...
    h.binaries.put("ok", build_signed("func main() { return 7; }"));
    auto p1 = h.sys->spawn("ok", {"ok"});
    auto p2 = h.sys->spawn("ok", {"ok"});
    ASSERT_TRUE(p1.ok());
    ASSERT_TRUE(p2.ok());
    // ...and the 3rd spawn fails softly with EAGAIN, not a crash.
    auto p3 = h.sys->spawn("ok", {"ok"});
    ASSERT_FALSE(p3.ok());
    EXPECT_EQ(p3.error().code, ErrorCode::kAgain);

    h.sys->run();
    EXPECT_EQ(h.sys->exit_code(p1.value()).value(), 7);
    EXPECT_EQ(h.sys->exit_code(p2.value()).value(), 7);
}

/** Console + exit code + instruction count of one Occlum run. */
struct RunResult {
    std::string console;
    int64_t exit_code = 0;
    uint64_t user_instructions = 0;
    uint64_t cycles = 0;
    uint64_t injected_aexes = 0;
};

RunResult
run_occlum_program(const Bytes &binary, uint64_t aex_every,
                   uint64_t seed)
{
    std::unique_ptr<ScopedFaultPlan> scoped;
    if (aex_every != 0) {
        FaultPlan plan;
        plan.seed = seed;
        plan.aex_every = aex_every;
        scoped = std::make_unique<ScopedFaultPlan>(plan);
    }
    libos::OcclumSystem::Config config;
    config.num_slots = 2;
    config.fs_blocks = 1 << 10;
    OcclumHarness h(config);
    h.binaries.put("prog", binary);
    auto pid = h.sys->spawn("prog", {"prog"});
    EXPECT_TRUE(pid.ok());
    h.sys->run();
    RunResult r;
    r.console = h.sys->console();
    r.exit_code = h.sys->exit_code(pid.value()).value();
    r.user_instructions = h.sys->stats().user_instructions;
    r.cycles = h.sys->clock().cycles();
    r.injected_aexes = FaultSim::instance().fires(Site::kAex);
    return r;
}

TEST(FaultSimAex, StormIsTransparentToTheWorkload)
{
    // A compute loop with stores and calls: its output and instruction
    // count must be identical under an AEX storm — if the SSA
    // save/restore dropped a register, a bound register, flags, or
    // the rip, the program would diverge or die.
    Bytes binary = build_signed(R"(
global byte buf[256];
func mix(x) { return x * 31 + 7; }
func main() {
    var acc = 1;
    var i = 0;
    while (i < 30000) {
        acc = mix(acc) + (acc / 3);
        buf[i & 255] = acc & 255;
        i = i + 1;
    }
    print_int(acc & 65535);
    return 0;
}
)");
    RunResult clean = run_occlum_program(binary, 0, 0);
    ASSERT_EQ(clean.exit_code, 0);

    RunResult storm = run_occlum_program(binary, 512, 9);
    EXPECT_EQ(storm.console, clean.console);
    EXPECT_EQ(storm.exit_code, clean.exit_code);
    EXPECT_EQ(storm.user_instructions, clean.user_instructions);
    // The storm really ran and really cost something: each injected
    // AEX pays the exit/resume transitions.
    EXPECT_GT(storm.injected_aexes, 0u);
    EXPECT_GT(storm.cycles, clean.cycles);
}

TEST(FaultSimAex, StormOverPollDrivenServerServesEveryRequest)
{
    // The poll()-driven event loop rides entirely on wait-queue
    // wakeups: an AEX storm perturbs when quanta end and when the
    // server reaches poll(), but every wakeup must still land and
    // every request must still complete with a full response. A lost
    // or misdirected wakeup shows up as a stall (the drive loop
    // panics) or a short byte count.
    constexpr int kRequests = 24;
    constexpr int kConcurrency = 4;
    constexpr size_t kResponseBytes = 10240;

    // Injected-AEX count of the most recent serve() run, read while
    // its ScopedFaultPlan is still installed (restoring the ambient
    // plan clears the fire counters).
    uint64_t last_aexes = 0;
    auto serve = [&](uint64_t aex_every, uint64_t seed) {
        std::unique_ptr<ScopedFaultPlan> scoped;
        if (aex_every != 0) {
            FaultPlan plan;
            plan.seed = seed;
            plan.aex_every = aex_every;
            scoped = std::make_unique<ScopedFaultPlan>(plan);
        }
        sgx::Platform platform;
        host::HostFileStore binaries;
        host::NetSim net(platform.clock());
        libos::OcclumSystem::Config config;
        config.num_slots = 2;
        config.fs_blocks = 1 << 10;
        config.verifier_key = vkey();
        libos::OcclumSystem sys(platform, binaries, config, &net);
        binaries.put("httpd_poll",
                     build_signed(workloads::httpd_poll_source()));
        auto pid = sys.spawn(
            "httpd_poll", {"httpd_poll", std::to_string(kRequests),
                           std::to_string(kConcurrency + 16)});
        EXPECT_TRUE(pid.ok());
        sys.run(/*allow_idle=*/true); // parks in poll()

        struct Client {
            host::NetSim::Connection *conn = nullptr;
            size_t received = 0;
        };
        std::vector<Client> clients(kConcurrency);
        const char *request = "GET / HTTP/1.1\r\n\r\n";
        int issued = 0;
        int completed = 0;
        auto start = [&](Client &client) {
            if (issued >= kRequests) {
                client.conn = nullptr;
                return;
            }
            auto conn = net.connect(8080);
            EXPECT_TRUE(conn.ok());
            client.conn = conn.value();
            client.received = 0;
            net.send(client.conn, false,
                     reinterpret_cast<const uint8_t *>(request),
                     strlen(request));
            ++issued;
        };
        for (auto &client : clients) {
            start(client);
        }
        uint8_t buf[4096];
        size_t total_bytes = 0;
        int guard = 0;
        while (completed < kRequests) {
            if (++guard >= (1 << 20)) {
                ADD_FAILURE() << "server stalled under storm";
                return total_bytes;
            }
            bool progress = sys.step_round();
            for (auto &client : clients) {
                if (!client.conn) {
                    continue;
                }
                uint64_t next_arrival = ~0ull;
                size_t n =
                    net.recv(client.conn, false, buf, sizeof(buf),
                             sys.clock().cycles(), next_arrival);
                if (n > 0) {
                    client.received += n;
                    total_bytes += n;
                    progress = true;
                    if (client.received >= kResponseBytes) {
                        net.close(client.conn, false);
                        ++completed;
                        start(client);
                    }
                }
            }
            if (!progress) {
                uint64_t wake = sys.next_wake_time();
                for (auto &client : clients) {
                    if (!client.conn) {
                        continue;
                    }
                    uint64_t next_arrival = ~0ull;
                    net.recv(client.conn, false, buf, 0,
                             sys.clock().cycles(), next_arrival);
                    wake = std::min(wake, next_arrival);
                }
                if (wake == ~0ull || wake <= sys.clock().cycles()) {
                    ADD_FAILURE() << "no wakeup pending: lost edge";
                    return total_bytes;
                }
                sys.clock().advance(wake - sys.clock().cycles());
            }
        }
        sys.run(); // the server exits after serving kRequests
        auto code = sys.exit_code(pid.value());
        EXPECT_TRUE(code.ok());
        EXPECT_EQ(code.value(), kRequests & 0x7f);
        last_aexes = FaultSim::instance().fires(Site::kAex);
        return total_bytes;
    };

    size_t clean = serve(0, 0);
    EXPECT_EQ(clean, kRequests * kResponseBytes);
    size_t storm = serve(768, 11);
    EXPECT_EQ(storm, clean);
    EXPECT_GT(last_aexes, 0u);
}

// ---------------------------------------------------------------------
// Crash monkey: inject at every op ordinal, remount, check invariants
// ---------------------------------------------------------------------

/** Every content version ever handed to write_file, per path. */
using Shadow = std::map<std::string, std::vector<Bytes>>;

/**
 * The scripted workload: 3 files x 4 rounds of rewrite+sync, each
 * version a distinct length and fill byte. Faults may abort it at any
 * point; the shadow model records every version that *could* be on
 * the device.
 */
void
monkey_workload(libos::EncFs &fs, Shadow &shadow)
{
    for (int round = 0; round < 4; ++round) {
        for (int f = 0; f < 3; ++f) {
            std::string path = "/file" + std::to_string(f);
            Bytes content(1000 + 257 * f + 613 * round,
                          static_cast<uint8_t>(16 * f + round + 1));
            shadow[path].push_back(content);
            if (!fs.write_file(path, content).ok()) {
                return;
            }
            if (!fs.sync().ok()) {
                return;
            }
        }
    }
}

/**
 * After a crash at op k and a clean remount: every readable file must
 * contain exactly one of the versions ever written to it — in full.
 * Unreadable files (detected corruption, lost directory entries) are
 * acceptable outcomes; stitched or invented content is not, and
 * nothing may panic.
 */
void
check_invariants(host::BlockDevice &device, SimClock &clock,
                 const libos::EncFs::Config &config,
                 const Shadow &shadow, const std::string &label)
{
    libos::EncFs fs(device, clock, config);
    Status mounted = fs.mount();
    if (!mounted.ok()) {
        return; // clean mount failure is a legal crash outcome
    }
    for (const auto &[path, versions] : shadow) {
        auto got = fs.read_file(path);
        if (!got.ok()) {
            continue; // detected loss is legal; silent damage is not
        }
        bool known = got.value().empty();
        for (const Bytes &v : versions) {
            known = known || got.value() == v;
        }
        EXPECT_TRUE(known)
            << label << ": " << path << " holds "
            << got.value().size()
            << " bytes matching no version ever written";
    }
}

TEST(CrashMonkey, HardWriteFailureAtEveryOrdinal)
{
    // 96 injection points: the k-th device write (counting from mkfs
    // onwards) fails hard, the FS object is dropped mid-flight (the
    // crash), and the survivor is remounted and audited.
    for (uint64_t k = 1; k <= 96; ++k) {
        SimClock clock;
        host::BlockDevice device(clock, 256);
        libos::EncFs::Config config;
        config.inode_count = 64;
        config.cache_blocks = 64;
        Shadow shadow;
        {
            FaultPlan plan;
            plan.seed = 1000 + k;
            plan.dev_write_fail_at = k;
            ScopedFaultPlan scoped(plan);
            libos::EncFs fs(device, clock, config);
            if (fs.mkfs().ok()) {
                monkey_workload(fs, shadow);
            }
        } // crash: dirty cache and in-memory MAC table vanish
        check_invariants(device, clock, config, shadow,
                         "hard@" + std::to_string(k));
    }
}

TEST(CrashMonkey, TornWriteAtEveryOrdinal)
{
    // 64 injection points: the k-th device write silently persists
    // only its first half.
    for (uint64_t k = 1; k <= 64; ++k) {
        SimClock clock;
        host::BlockDevice device(clock, 256);
        libos::EncFs::Config config;
        config.inode_count = 64;
        config.cache_blocks = 64;
        Shadow shadow;
        {
            FaultPlan plan;
            plan.seed = 2000 + k;
            plan.torn_write_at = k;
            ScopedFaultPlan scoped(plan);
            libos::EncFs fs(device, clock, config);
            if (fs.mkfs().ok()) {
                monkey_workload(fs, shadow);
            }
        }
        check_invariants(device, clock, config, shadow,
                         "torn@" + std::to_string(k));
    }
}

TEST(CrashMonkey, AexStormAtManyPeriods)
{
    // 48 storm periods: the workload's observable behaviour must be
    // byte-identical to the clean run at every one of them.
    Bytes binary = build_signed(R"(
global byte buf[64];
func main() {
    var acc = 7;
    var i = 0;
    while (i < 8000) {
        acc = acc * 13 + 5;
        buf[i & 63] = acc & 255;
        i = i + 1;
    }
    print_int(acc & 65535);
    return 0;
}
)");
    RunResult clean = run_occlum_program(binary, 0, 0);
    ASSERT_EQ(clean.exit_code, 0);
    for (int i = 0; i < 48; ++i) {
        uint64_t period = 61 + 97 * static_cast<uint64_t>(i);
        RunResult storm = run_occlum_program(binary, period, 3000 + i);
        EXPECT_EQ(storm.console, clean.console) << "period " << period;
        EXPECT_EQ(storm.exit_code, clean.exit_code)
            << "period " << period;
        EXPECT_EQ(storm.user_instructions, clean.user_instructions)
            << "period " << period;
    }
}

TEST(CrashMonkey, KernelRestartAfterWriteFaults)
{
    // 16 injection points at the whole-system level: a SIP writes a
    // file through the syscall path while the k-th device write
    // fails; the system is destroyed (restart) and a second system
    // mounts the same device. Both phases must fail softly at worst.
    Bytes binary = build_signed(R"(
global byte path[8] = "/f";
global byte data[16] = "hello-restart";
func main() {
    var fd = open(path, 0x42);     // CREAT|WRONLY
    if (fd < 0) { return 1; }
    if (write(fd, data, 13) != 13) { return 2; }
    if (fsync(fd) != 0) { return 3; }
    close(fd);
    return 0;
}
)");
    Bytes expected(13);
    std::copy_n("hello-restart", 13, expected.begin());

    for (uint64_t k = 1; k <= 16; ++k) {
        sgx::Platform platform;
        host::HostFileStore binaries;
        binaries.put("writer", binary);
        host::BlockDevice device(platform.clock(), 1 << 10);

        libos::OcclumSystem::Config config;
        config.num_slots = 2;
        config.verifier_key = vkey();
        config.external_device = &device;
        {
            FaultPlan plan;
            plan.seed = 4000 + k;
            plan.dev_write_fail_at = 7 * k; // spread into the workload
            ScopedFaultPlan scoped(plan);
            libos::OcclumSystem sys1(platform, binaries, config);
            if (sys1.fs_status().ok()) {
                auto pid = sys1.spawn("writer", {"writer"});
                if (pid.ok()) {
                    sys1.run();
                }
            }
        } // restart: sys1 is gone, the device persists

        config.format_device = false; // mount what the crash left
        libos::OcclumSystem sys2(platform, binaries, config);
        if (!sys2.fs_status().ok()) {
            continue; // clean mount failure is a legal outcome
        }
        auto got = sys2.fs().read_file("/f");
        if (got.ok() && !got.value().empty()) {
            EXPECT_EQ(got.value(), expected) << "restart@" << k;
        }
    }
}

} // namespace
} // namespace occlum
