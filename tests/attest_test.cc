/**
 * @file
 * src/attest tests: evidence encode/parse, policy verification,
 * mutual handshake (honest path + every rejection class), the
 * adversarial tamper battery over evidence bytes and record bytes,
 * replay defences at both the nonce and record-sequence levels,
 * retransmission/fail-closed timing, and the end-to-end attested
 * key-release scenario (including under injected network faults).
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "attest/handshake.h"
#include "attest/rpc.h"
#include "faultsim/faultsim.h"
#include "workloads/attested_rpc.h"

namespace occlum::attest {
namespace {

using faultsim::FaultPlan;
using faultsim::ScopedFaultPlan;

constexpr uint16_t kPort = 4711;
constexpr uint64_t kBase = 0x10000000;

/** A minimal initialized enclave with a distinctive identity. */
std::unique_ptr<sgx::Enclave>
make_enclave(sgx::Platform &platform, uint8_t content_fill,
             uint64_t attributes = 0, uint16_t isv_svn = 2)
{
    auto enclave =
        std::make_unique<sgx::Enclave>(platform, kBase, 1 << 20);
    Bytes content(vm::kPageSize, content_fill);
    EXPECT_TRUE(
        enclave->add_pages(kBase, vm::kPageSize, vm::kPermRX, content)
            .ok());
    sgx::EnclaveIdentity identity;
    for (size_t i = 0; i < identity.signer.size(); ++i) {
        identity.signer[i] = static_cast<uint8_t>(0x51 + i);
    }
    identity.attributes = attributes;
    identity.isv_prod_id = 7;
    identity.isv_svn = isv_svn;
    EXPECT_TRUE(enclave->set_identity(identity).ok());
    EXPECT_TRUE(enclave->init().ok());
    return enclave;
}

/** Policy that accepts exactly `enclave`. */
Policy
pin_policy(const sgx::Enclave &enclave)
{
    Policy policy;
    policy.allowed_measurements = {enclave.measurement()};
    policy.allowed_signers = {enclave.identity().signer};
    policy.min_isv_svn = 1;
    return policy;
}

/**
 * Harness owning everything one handshake needs: a platform, two
 * enclaves, a NetSim connection, per-side verifiers, and the two
 * endpoint state machines.
 */
struct Rig {
    sgx::Platform platform;
    host::NetSim net{platform.clock()};
    std::unique_ptr<sgx::Enclave> client_enclave;
    std::unique_ptr<sgx::Enclave> server_enclave;
    std::unique_ptr<Verifier> client_verifier;
    std::unique_ptr<Verifier> server_verifier;
    host::NetSim::Connection *conn = nullptr;
    std::unique_ptr<HandshakeEndpoint> client;
    std::unique_ptr<HandshakeEndpoint> server;

    explicit Rig(uint64_t attributes_client = 0,
                 uint16_t client_svn = 2)
    {
        client_enclave =
            make_enclave(platform, 0x11, attributes_client, client_svn);
        server_enclave = make_enclave(platform, 0x22);
        client_verifier = std::make_unique<Verifier>(
            platform, pin_policy(*server_enclave));
        server_verifier = std::make_unique<Verifier>(
            platform, pin_policy(*client_enclave));
    }

    host::NetSim::Connection *
    dial()
    {
        (void)net.listen(kPort, 4); // idempotent across dials
        auto result = net.connect(kPort);
        EXPECT_TRUE(result.ok());
        host::NetSim::Connection *accepted = nullptr;
        while ((accepted = net.try_accept(
                    kPort, platform.clock().cycles())) == nullptr) {
            uint64_t wake = net.next_accept_time(kPort);
            EXPECT_NE(wake, ~0ull);
            platform.clock().advance(wake - platform.clock().cycles());
        }
        EXPECT_EQ(accepted, result.value());
        return accepted;
    }

    /** Build both endpoints over a fresh connection. */
    void
    start(uint64_t seed = 77)
    {
        conn = dial();
        EndpointConfig client_cfg;
        client_cfg.is_server = false;
        client_cfg.nonce_seed = seed;
        EndpointConfig server_cfg;
        server_cfg.is_server = true;
        server_cfg.nonce_seed = seed + 1;
        client = std::make_unique<HandshakeEndpoint>(
            platform, *client_enclave, *client_verifier,
            Transport(net, conn, false, platform.clock()), client_cfg);
        server = std::make_unique<HandshakeEndpoint>(
            platform, *server_enclave, *server_verifier,
            Transport(net, conn, true, platform.clock()), server_cfg);
    }

    /** Drive both endpoints until each is established or failed. */
    void
    drive()
    {
        auto terminal = [](HandshakeEndpoint &endpoint) {
            return endpoint.established() || endpoint.failed();
        };
        int guard = 0;
        while (!(terminal(*client) && terminal(*server))) {
            ASSERT_LT(++guard, 100000) << "handshake drive stalled";
            bool progress = server->step();
            progress |= client->step();
            if (!progress) {
                uint64_t wake = std::min(client->next_event_time(),
                                         server->next_event_time());
                ASSERT_NE(wake, ~0ull);
                ASSERT_GT(wake, platform.clock().cycles());
                platform.clock().advance(wake -
                                         platform.clock().cycles());
            }
        }
    }
};

/** Deterministic session keys for codec-level tests. */
SessionKeys
test_keys()
{
    SessionKeys keys;
    for (size_t i = 0; i < 16; ++i) {
        keys.enc_c2s[i] = static_cast<uint8_t>(i + 1);
        keys.enc_s2c[i] = static_cast<uint8_t>(0x80 + i);
    }
    for (size_t i = 0; i < 32; ++i) {
        keys.mac_c2s[i] = static_cast<uint8_t>(0x30 + i);
        keys.mac_s2c[i] = static_cast<uint8_t>(0x60 + i);
    }
    for (size_t i = 0; i < 12; ++i) {
        keys.iv_c2s[i] = static_cast<uint8_t>(0xA0 + i);
        keys.iv_s2c[i] = static_cast<uint8_t>(0xC0 + i);
    }
    return keys;
}

// ---------------------------------------------------------------------
// Evidence encoding
// ---------------------------------------------------------------------

TEST(Evidence, RoundTripsAndBindsIdentity)
{
    sgx::Platform platform;
    auto enclave = make_enclave(platform, 0x33);
    Bytes binding(32, 0xAB);
    Evidence evidence;
    evidence.report = enclave->create_report(binding);

    Bytes wire = evidence.serialize();
    ASSERT_EQ(wire.size(), Evidence::kWireSize);

    Evidence parsed;
    ASSERT_EQ(Evidence::parse(wire, parsed), AttestError::kNone);
    EXPECT_EQ(parsed.report.measurement, evidence.report.measurement);
    EXPECT_TRUE(parsed.report.identity == evidence.report.identity);
    EXPECT_EQ(parsed.report.user_data, evidence.report.user_data);
    EXPECT_EQ(parsed.report.mac, evidence.report.mac);
    EXPECT_TRUE(sgx::Enclave::verify_report(platform, parsed.report));
}

TEST(Evidence, ParseIsStrict)
{
    sgx::Platform platform;
    auto enclave = make_enclave(platform, 0x33);
    Evidence evidence;
    evidence.report = enclave->create_report(Bytes(32, 1));
    Bytes wire = evidence.serialize();

    Evidence out;
    Bytes shorter(wire.begin(), wire.end() - 1);
    EXPECT_EQ(Evidence::parse(shorter, out),
              AttestError::kBadEvidenceEncoding);
    Bytes longer = wire;
    longer.push_back(0);
    EXPECT_EQ(Evidence::parse(longer, out),
              AttestError::kBadEvidenceEncoding);
    Bytes bad_magic = wire;
    bad_magic[0] ^= 1;
    EXPECT_EQ(Evidence::parse(bad_magic, out),
              AttestError::kBadEvidenceEncoding);
    Bytes bad_version = wire;
    bad_version[4] ^= 1;
    EXPECT_EQ(Evidence::parse(bad_version, out),
              AttestError::kBadEvidenceEncoding);
}

// ---------------------------------------------------------------------
// Verifier policy
// ---------------------------------------------------------------------

TEST(Verifier, EmptyPolicyFailsClosed)
{
    sgx::Platform platform;
    auto enclave = make_enclave(platform, 0x44);
    crypto::Sha256Digest binding{};
    Evidence evidence;
    evidence.report =
        enclave->create_report(Bytes(binding.begin(), binding.end()));

    Verifier verifier(platform, Policy{});
    EXPECT_EQ(verifier.verify(evidence, binding),
              AttestError::kWrongMeasurement);
}

TEST(Verifier, RejectionClassesAreDistinct)
{
    sgx::Platform platform;
    auto enclave = make_enclave(platform, 0x44);
    crypto::Sha256Digest binding{};
    binding.fill(0x77);
    Evidence evidence;
    evidence.report =
        enclave->create_report(Bytes(binding.begin(), binding.end()));

    Policy good = pin_policy(*enclave);
    EXPECT_EQ(Verifier(platform, good).verify(evidence, binding),
              AttestError::kNone);

    Policy wrong_measurement = good;
    wrong_measurement.allowed_measurements = {crypto::Sha256Digest{}};
    EXPECT_EQ(
        Verifier(platform, wrong_measurement).verify(evidence, binding),
        AttestError::kWrongMeasurement);

    Policy wrong_signer = good;
    wrong_signer.allowed_signers = {crypto::Sha256Digest{}};
    EXPECT_EQ(Verifier(platform, wrong_signer).verify(evidence, binding),
              AttestError::kWrongSigner);

    Policy high_svn = good;
    high_svn.min_isv_svn = 99;
    EXPECT_EQ(Verifier(platform, high_svn).verify(evidence, binding),
              AttestError::kLowSvn);

    crypto::Sha256Digest other_binding = binding;
    other_binding[0] ^= 1;
    EXPECT_EQ(Verifier(platform, good).verify(evidence, other_binding),
              AttestError::kBadBinding);

    // DEBUG attribute: enclave launched with it must be rejected
    // unless the policy opts in.
    auto debug_enclave = make_enclave(
        platform, 0x45, sgx::EnclaveIdentity::kAttrDebug);
    Evidence debug_evidence;
    debug_evidence.report = debug_enclave->create_report(
        Bytes(binding.begin(), binding.end()));
    Policy debug_policy = pin_policy(*debug_enclave);
    EXPECT_EQ(
        Verifier(platform, debug_policy).verify(debug_evidence, binding),
        AttestError::kDebugForbidden);
    debug_policy.allow_debug = true;
    EXPECT_EQ(
        Verifier(platform, debug_policy).verify(debug_evidence, binding),
        AttestError::kNone);
}

TEST(Verifier, NonceReplayCachePersists)
{
    sgx::Platform platform;
    Verifier verifier(platform, Policy{});
    Nonce nonce{};
    nonce.fill(9);
    EXPECT_EQ(verifier.consume_nonce(nonce), AttestError::kNone);
    EXPECT_EQ(verifier.consume_nonce(nonce),
              AttestError::kReplayedNonce);
    EXPECT_EQ(verifier.nonces_seen(), 1u);
}

/**
 * Satellite (c), evidence half: every byte of the serialized evidence
 * is flipped and the blob re-submitted. Each flip must be rejected,
 * and with the *right* class: header flips fail strict parsing,
 * payload and MAC flips fail the report MAC (nothing else is reached
 * first — the MAC covers measurement, identity, and user_data alike).
 */
TEST(Verifier, TamperedEvidenceByteFlipBattery)
{
    sgx::Platform platform;
    auto enclave = make_enclave(platform, 0x46);
    crypto::Sha256Digest binding{};
    binding.fill(0x13);
    Evidence evidence;
    evidence.report =
        enclave->create_report(Bytes(binding.begin(), binding.end()));
    Bytes wire = evidence.serialize();
    Verifier verifier(platform, pin_policy(*enclave));

    Evidence pristine;
    ASSERT_EQ(Evidence::parse(wire, pristine), AttestError::kNone);
    ASSERT_EQ(verifier.verify(pristine, binding), AttestError::kNone);

    for (size_t i = 0; i < wire.size(); ++i) {
        Bytes tampered = wire;
        tampered[i] ^= 0x40;
        Evidence parsed;
        AttestError err = Evidence::parse(tampered, parsed);
        if (err == AttestError::kNone) {
            err = verifier.verify(parsed, binding);
        }
        ASSERT_NE(err, AttestError::kNone)
            << "byte " << i << " flip accepted";
        if (i < 8) {
            EXPECT_EQ(err, AttestError::kBadEvidenceEncoding)
                << "byte " << i;
        } else {
            EXPECT_EQ(err, AttestError::kBadReportMac) << "byte " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Record layer
// ---------------------------------------------------------------------

TEST(RecordCodec, RoundTripsBothDirections)
{
    SessionKeys keys = test_keys();
    RecordCodec client(keys, false);
    RecordCodec server(keys, true);

    Bytes payload = {'s', 'e', 'c', 'r', 'e', 't'};
    Bytes frame = client.seal(payload);
    // Ciphertext on the wire, not plaintext.
    EXPECT_EQ(std::search(frame.begin(), frame.end(), payload.begin(),
                          payload.end()),
              frame.end());

    FrameType type;
    uint32_t body_len = 0;
    ASSERT_EQ(parse_frame_header(frame.data(), type, body_len),
              AttestError::kNone);
    ASSERT_EQ(type, FrameType::kRecord);
    Bytes body(frame.begin() + kFrameHeaderSize, frame.end());
    ASSERT_EQ(body.size(), body_len);

    Bytes out;
    ASSERT_EQ(server.open(body, out), AttestError::kNone);
    EXPECT_EQ(out, payload);

    Bytes reply_frame = server.seal({'o', 'k'});
    Bytes reply_body(reply_frame.begin() + kFrameHeaderSize,
                     reply_frame.end());
    Bytes reply;
    ASSERT_EQ(client.open(reply_body, reply), AttestError::kNone);
    EXPECT_EQ(reply, (Bytes{'o', 'k'}));
}

/**
 * Satellite (c), record half: flip every byte of a sealed record.
 * Header corruption fails framing with its own codes; everything
 * after the header (seq, ciphertext, MAC trailer) fails the
 * encrypt-then-MAC check — and the codec state stays untouched, so
 * the genuine record still opens afterwards.
 */
TEST(RecordCodec, TamperBatteryEveryByteRejected)
{
    SessionKeys keys = test_keys();
    RecordCodec client(keys, false);
    Bytes payload(48, 0x7e);
    Bytes frame = client.seal(payload);

    for (size_t i = 0; i < frame.size(); ++i) {
        RecordCodec server(keys, true);
        Bytes tampered = frame;
        tampered[i] ^= 0x04;

        FrameType type;
        uint32_t body_len = 0;
        AttestError err =
            parse_frame_header(tampered.data(), type, body_len);
        if (err == AttestError::kNone &&
            (type != FrameType::kRecord ||
             body_len != tampered.size() - kFrameHeaderSize)) {
            // Type or length flip: the transport would mis-slice the
            // stream; a strict receiver treats it as framing garbage.
            err = AttestError::kBadLength;
        }
        if (err == AttestError::kNone) {
            Bytes body(tampered.begin() + kFrameHeaderSize,
                       tampered.end());
            Bytes out;
            err = server.open(body, out);
        }
        ASSERT_NE(err, AttestError::kNone)
            << "record byte " << i << " flip accepted";
        if (i >= kFrameHeaderSize) {
            EXPECT_EQ(err, AttestError::kBadRecordMac)
                << "record byte " << i;
        }

        // The pristine record still opens: rejection is stateless.
        Bytes body(frame.begin() + kFrameHeaderSize, frame.end());
        Bytes out;
        EXPECT_EQ(server.open(body, out), AttestError::kNone);
    }

    // Canonical header classes.
    {
        Bytes bad = frame;
        bad[0] ^= 0xFF; // magic low byte
        FrameType type;
        uint32_t len;
        EXPECT_EQ(parse_frame_header(bad.data(), type, len),
                  AttestError::kBadMagic);
        bad = frame;
        bad[3] ^= 0xFF; // version
        EXPECT_EQ(parse_frame_header(bad.data(), type, len),
                  AttestError::kBadVersion);
        bad = frame;
        bad[6] = 0xFF; // length blown past kMaxFrameBody
        EXPECT_EQ(parse_frame_header(bad.data(), type, len),
                  AttestError::kBadLength);
    }
}

TEST(RecordCodec, ReplayAndReorderRejected)
{
    SessionKeys keys = test_keys();
    RecordCodec client(keys, false);
    RecordCodec server(keys, true);

    Bytes frame0 = client.seal({'a'});
    Bytes frame1 = client.seal({'b'});
    Bytes body0(frame0.begin() + kFrameHeaderSize, frame0.end());
    Bytes body1(frame1.begin() + kFrameHeaderSize, frame1.end());

    Bytes out;
    // Reorder: record 1 before record 0.
    EXPECT_EQ(server.open(body1, out), AttestError::kStaleSeq);
    ASSERT_EQ(server.open(body0, out), AttestError::kNone);
    // Replay of a delivered record.
    EXPECT_EQ(server.open(body0, out), AttestError::kStaleSeq);
    ASSERT_EQ(server.open(body1, out), AttestError::kNone);
    EXPECT_EQ(out, Bytes{'b'});
}

TEST(RecordCodec, PlaintextAblationKeepsFramingAndSeq)
{
    SessionKeys keys = test_keys();
    RecordCodec client(keys, false, nullptr, /*plaintext=*/true);
    RecordCodec server(keys, true, nullptr, /*plaintext=*/true);

    Bytes payload = {'p', 'l', 'a', 'i', 'n'};
    Bytes frame = client.seal(payload);
    // No MAC trailer, payload carried verbatim.
    EXPECT_EQ(frame.size(), kFrameHeaderSize + 8 + payload.size());
    EXPECT_NE(std::search(frame.begin(), frame.end(), payload.begin(),
                          payload.end()),
              frame.end());

    Bytes body(frame.begin() + kFrameHeaderSize, frame.end());
    Bytes out;
    ASSERT_EQ(server.open(body, out), AttestError::kNone);
    EXPECT_EQ(out, payload);
    // Sequence discipline survives the ablation.
    EXPECT_EQ(server.open(body, out), AttestError::kStaleSeq);
}

// ---------------------------------------------------------------------
// Handshake
// ---------------------------------------------------------------------

TEST(Handshake, HonestPathDerivesIdenticalDirectionalKeys)
{
    Rig rig;
    rig.start();
    rig.drive();

    ASSERT_TRUE(rig.client->established())
        << attest_error_name(rig.client->error());
    ASSERT_TRUE(rig.server->established())
        << attest_error_name(rig.server->error());
    EXPECT_TRUE(rig.client->keys() == rig.server->keys());
    EXPECT_GT(rig.client->handshake_cycles(), 0u);
    // Each side saw the other's true identity.
    EXPECT_EQ(rig.client->peer_evidence().report.measurement,
              rig.server_enclave->measurement());
    EXPECT_EQ(rig.server->peer_evidence().report.measurement,
              rig.client_enclave->measurement());
    // Directional keys differ (c2s vs s2c are independent secrets).
    EXPECT_NE(rig.client->keys().enc_c2s, rig.client->keys().enc_s2c);
}

TEST(Handshake, WrongServerMeasurementRejectedByClient)
{
    Rig rig;
    // Client expects some other enclave as its server.
    Policy wrong = pin_policy(*rig.client_enclave);
    rig.client_verifier = std::make_unique<Verifier>(rig.platform, wrong);
    rig.start();
    rig.drive();

    ASSERT_TRUE(rig.client->failed());
    EXPECT_EQ(rig.client->error(), AttestError::kWrongMeasurement);
    // The server learns only "peer aborted", fail-closed on both ends.
    ASSERT_TRUE(rig.server->failed());
    EXPECT_EQ(rig.server->error(), AttestError::kPeerAlert);
}

TEST(Handshake, WrongClientSignerRejectedByServer)
{
    Rig rig;
    Policy wrong = pin_policy(*rig.client_enclave);
    wrong.allowed_signers = {crypto::Sha256Digest{}};
    rig.server_verifier = std::make_unique<Verifier>(rig.platform, wrong);
    rig.start();
    rig.drive();

    ASSERT_TRUE(rig.server->failed());
    EXPECT_EQ(rig.server->error(), AttestError::kWrongSigner);
    ASSERT_TRUE(rig.client->failed());
    EXPECT_EQ(rig.client->error(), AttestError::kPeerAlert);
}

TEST(Handshake, DebugClientRejected)
{
    Rig rig(sgx::EnclaveIdentity::kAttrDebug);
    rig.start();
    rig.drive();
    ASSERT_TRUE(rig.server->failed());
    EXPECT_EQ(rig.server->error(), AttestError::kDebugForbidden);
}

TEST(Handshake, LowSvnClientRejected)
{
    Rig rig(0, /*client_svn=*/0);
    rig.start();
    rig.drive();
    ASSERT_TRUE(rig.server->failed());
    EXPECT_EQ(rig.server->error(), AttestError::kLowSvn);
}

/**
 * Replayed handshake: a second client reusing the first handshake's
 * nonce stream (same seed => byte-identical ClientHello) against the
 * same server verifier. Every MAC in the recording is genuine; only
 * the nonce cache can catch it — and must.
 */
TEST(Handshake, ReplayedClientHelloRejected)
{
    Rig rig;
    rig.start(/*seed=*/1234);
    rig.drive();
    ASSERT_TRUE(rig.client->established());
    ASSERT_TRUE(rig.server->established());

    // Same seed => the "recording". New connection, same verifier.
    host::NetSim::Connection *replay_conn = rig.dial();
    EndpointConfig client_cfg;
    client_cfg.is_server = false;
    client_cfg.nonce_seed = 1234; // identical nonce stream
    EndpointConfig server_cfg;
    server_cfg.is_server = true;
    server_cfg.nonce_seed = 999;
    HandshakeEndpoint replay_client(
        rig.platform, *rig.client_enclave, *rig.client_verifier,
        Transport(rig.net, replay_conn, false, rig.platform.clock()),
        client_cfg);
    HandshakeEndpoint replay_server(
        rig.platform, *rig.server_enclave, *rig.server_verifier,
        Transport(rig.net, replay_conn, true, rig.platform.clock()),
        server_cfg);

    int guard = 0;
    while (!(replay_client.failed() || replay_client.established()) ||
           !(replay_server.failed() || replay_server.established())) {
        ASSERT_LT(++guard, 100000);
        bool progress = replay_server.step();
        progress |= replay_client.step();
        if (!progress) {
            uint64_t wake = std::min(replay_client.next_event_time(),
                                     replay_server.next_event_time());
            ASSERT_NE(wake, ~0ull);
            rig.platform.clock().advance(wake -
                                         rig.platform.clock().cycles());
        }
    }
    ASSERT_TRUE(replay_server.failed());
    EXPECT_EQ(replay_server.error(), AttestError::kReplayedNonce);
    ASSERT_TRUE(replay_client.failed());
    EXPECT_EQ(replay_client.error(), AttestError::kPeerAlert);
}

/** A mute server: the client must retransmit, then fail closed. */
TEST(Handshake, RetransmitsThenFailsClosed)
{
    Rig rig;
    host::NetSim::Connection *conn = rig.dial();
    EndpointConfig cfg;
    cfg.is_server = false;
    cfg.nonce_seed = 5;
    HandshakeEndpoint client(
        rig.platform, *rig.client_enclave, *rig.client_verifier,
        Transport(rig.net, conn, false, rig.platform.clock()), cfg);

    uint64_t deadline =
        rig.platform.clock().cycles() + cfg.deadline_cycles;
    int guard = 0;
    while (!client.failed()) {
        ASSERT_LT(++guard, 100000);
        if (!client.step()) {
            uint64_t wake = client.next_event_time();
            ASSERT_NE(wake, ~0ull);
            ASSERT_GT(wake, rig.platform.clock().cycles());
            rig.platform.clock().advance(wake -
                                         rig.platform.clock().cycles());
        }
    }
    EXPECT_EQ(client.error(), AttestError::kTimeout);
    EXPECT_GE(client.retransmits(), 3u);
    EXPECT_TRUE(client.transport().closed());
    // The deadline is honored, not overshot by more than a step.
    EXPECT_GE(rig.platform.clock().cycles(), deadline);
}

TEST(Handshake, ShortReadsReassembleFrames)
{
    FaultPlan plan;
    plan.seed = 99;
    plan.net_short_read = 1.0; // every recv halves its capacity
    ScopedFaultPlan scoped(plan);

    Rig rig;
    rig.start();
    rig.drive();
    ASSERT_TRUE(rig.client->established())
        << attest_error_name(rig.client->error());
    ASSERT_TRUE(rig.server->established());
    EXPECT_TRUE(rig.client->keys() == rig.server->keys());
}

// ---------------------------------------------------------------------
// Secure channel + RPC over an established handshake
// ---------------------------------------------------------------------

struct ChannelRig : Rig {
    std::unique_ptr<SecureChannel> client_channel;
    std::unique_ptr<SecureChannel> server_channel;

    void
    establish()
    {
        start();
        drive();
        ASSERT_TRUE(client->established());
        ASSERT_TRUE(server->established());
        client_channel = std::make_unique<SecureChannel>(
            RecordCodec(client->keys(), false, &platform.clock()),
            &client->transport());
        server_channel = std::make_unique<SecureChannel>(
            RecordCodec(server->keys(), true, &platform.clock()),
            &server->transport());
    }

    /** Pump until `channel` yields one payload (or fails). */
    SecureChannel::Recv
    pump_recv(SecureChannel &channel, Bytes &out)
    {
        for (int i = 0; i < 10000; ++i) {
            SecureChannel::Recv recv = channel.recv(out);
            if (recv != SecureChannel::Recv::kNeedMore) {
                return recv;
            }
            uint64_t wake = channel.next_arrival();
            if (wake == ~0ull) {
                return SecureChannel::Recv::kNeedMore;
            }
            if (wake > platform.clock().cycles()) {
                platform.clock().advance(wake -
                                         platform.clock().cycles());
            }
        }
        return SecureChannel::Recv::kNeedMore;
    }
};

TEST(SecureChannel, DeliversPayloadsBothWays)
{
    ChannelRig rig;
    rig.establish();

    ASSERT_TRUE(rig.client_channel->send({'p', 'i', 'n', 'g'}));
    Bytes got;
    ASSERT_EQ(rig.pump_recv(*rig.server_channel, got),
              SecureChannel::Recv::kPayload);
    EXPECT_EQ(got, (Bytes{'p', 'i', 'n', 'g'}));

    ASSERT_TRUE(rig.server_channel->send({'p', 'o', 'n', 'g'}));
    ASSERT_EQ(rig.pump_recv(*rig.client_channel, got),
              SecureChannel::Recv::kPayload);
    EXPECT_EQ(got, (Bytes{'p', 'o', 'n', 'g'}));
}

/**
 * A record tampered in flight poisons the channel: the receiver
 * rejects it, alerts, closes, and refuses everything afterwards —
 * no resync, no partial delivery.
 */
TEST(SecureChannel, TamperedRecordPoisonsChannelFailClosed)
{
    ChannelRig rig;
    rig.establish();

    ASSERT_TRUE(rig.client_channel->send(Bytes(64, 0x11)));
    // Corrupt the in-flight chunk on the untrusted wire.
    auto &queue = rig.conn->to_server;
    ASSERT_FALSE(queue.empty());
    queue.back().data[kFrameHeaderSize + 8 + 5] ^= 0x20;

    Bytes out;
    ASSERT_EQ(rig.pump_recv(*rig.server_channel, out),
              SecureChannel::Recv::kFailed);
    EXPECT_EQ(rig.server_channel->error(), AttestError::kBadRecordMac);
    EXPECT_TRUE(rig.server_channel->failed());
    // Poisoned for good: further sends refuse.
    EXPECT_FALSE(rig.server_channel->send({'x'}));
    // And the client learns via the alert.
    ASSERT_EQ(rig.pump_recv(*rig.client_channel, out),
              SecureChannel::Recv::kFailed);
    EXPECT_EQ(rig.client_channel->error(), AttestError::kPeerAlert);
}

TEST(Rpc, RequestResponseRoundTrip)
{
    ChannelRig rig;
    rig.establish();

    RpcServer server(std::move(*rig.server_channel),
                     [](uint32_t op, const Bytes &payload) -> Result<Bytes> {
                         if (op == 7) {
                             Bytes echo = payload;
                             echo.push_back('!');
                             return echo;
                         }
                         return Error(ErrorCode::kInval, "bad op");
                     });
    RpcClient client(std::move(*rig.client_channel));

    uint32_t id = client.call(7, {'h', 'i'});
    ASSERT_NE(id, 0u);
    uint32_t bad_id = client.call(8, {});
    ASSERT_NE(bad_id, 0u);

    int responses = 0;
    for (int i = 0; i < 10000 && responses < 2; ++i) {
        bool progress = server.step();
        RpcResponse response;
        RpcClient::Poll poll = client.poll(response);
        if (poll == RpcClient::Poll::kResponse) {
            ++responses;
            progress = true;
            if (response.id == id) {
                EXPECT_EQ(response.status, 0u);
                EXPECT_EQ(response.payload, (Bytes{'h', 'i', '!'}));
            } else {
                EXPECT_EQ(response.id, bad_id);
                EXPECT_EQ(response.status,
                          static_cast<uint32_t>(ErrorCode::kInval));
            }
        } else {
            ASSERT_EQ(poll, RpcClient::Poll::kNeedMore);
        }
        if (!progress) {
            uint64_t wake = std::min(client.next_arrival(),
                                     server.channel().next_arrival());
            ASSERT_NE(wake, ~0ull);
            if (wake > rig.platform.clock().cycles()) {
                rig.platform.clock().advance(
                    wake - rig.platform.clock().cycles());
            }
        }
    }
    EXPECT_EQ(responses, 2);
    EXPECT_EQ(server.requests_served(), 2u);
}

// ---------------------------------------------------------------------
// End-to-end scenario
// ---------------------------------------------------------------------

TEST(AttestedRpcScenario, HonestKeyRelease)
{
    workloads::AttestedRpcOptions options;
    options.requests = 8;
    workloads::AttestedRpcReport report =
        workloads::run_attested_rpc(options);
    EXPECT_TRUE(report.ok) << report.error;
    EXPECT_TRUE(report.keys_match);
    EXPECT_TRUE(report.secret_released);
    EXPECT_GT(report.handshake_cycles, 0u);
    EXPECT_GT(report.records, 2u);
}

TEST(AttestedRpcScenario, PlaintextAblationIsCheaper)
{
    // Cycle comparison between two runs is only meaningful fault-free:
    // an ambient CI fault plan (ci_faults.sh runs tier-1 under several)
    // would give the runs different fault draws and swamp the crypto
    // delta. Fault behaviour has its own test below.
    ScopedFaultPlan clean{FaultPlan{}};
    workloads::AttestedRpcOptions encrypted;
    encrypted.requests = 8;
    encrypted.response_bytes = 4096;
    workloads::AttestedRpcOptions plain = encrypted;
    plain.plaintext = true;

    workloads::AttestedRpcReport encrypted_report =
        workloads::run_attested_rpc(encrypted);
    workloads::AttestedRpcReport plain_report =
        workloads::run_attested_rpc(plain);
    ASSERT_TRUE(encrypted_report.ok) << encrypted_report.error;
    ASSERT_TRUE(plain_report.ok) << plain_report.error;
    EXPECT_EQ(encrypted_report.payload_bytes,
              plain_report.payload_bytes);
    // Record crypto costs cycles; the ablation must be faster.
    EXPECT_LT(plain_report.total_cycles, encrypted_report.total_cycles);
}

TEST(AttestedRpcScenario, SurvivesNetworkFaultsOrFailsClosed)
{
    FaultPlan plan;
    plan.seed = 505;
    plan.net_drop = 0.08;
    plan.net_dup = 0.08;
    plan.net_short_read = 0.25;
    ScopedFaultPlan scoped(plan);

    workloads::AttestedRpcOptions options;
    options.requests = 8;
    workloads::AttestedRpcReport report =
        workloads::run_attested_rpc(options);
    // NetSim faults are delay/fragmentation, never corruption: the
    // handshake either completes with matching keys or fails closed
    // with a named error — nothing in between.
    if (report.ok) {
        EXPECT_TRUE(report.keys_match);
        EXPECT_TRUE(report.secret_released);
    } else {
        EXPECT_FALSE(report.error.empty());
    }
}

} // namespace
} // namespace occlum::attest
