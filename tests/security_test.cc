/**
 * @file
 * System-level security tests for the paper's §3.1 goals:
 * inter-process isolation and process-LibOS isolation — exercised
 * with *runtime* attacks from verified (hence loadable) SIPs, plus
 * the §7 analysis cases (code injection, ROP confinement).
 */
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "libos/occlum_system.h"
#include "oelf/abi.h"
#include "toolchain/minic.h"
#include "verifier/verifier.h"
#include "workloads/workloads.h"

namespace occlum::libos {
namespace {

using isa::Assembler;
using isa::mem_bd;

struct SecurityHarness {
    sgx::Platform platform;
    host::HostFileStore binaries;
    std::unique_ptr<OcclumSystem> sys;

    SecurityHarness()
    {
        OcclumSystem::Config config;
        config.verifier_key = workloads::bench_verifier_key();
        sys = std::make_unique<OcclumSystem>(platform, binaries, config);
    }

    void
    add(const std::string &name, const std::string &source)
    {
        binaries.put(name,
                     workloads::build_program(source).occlum);
    }

    oskit::DeathRecord
    run_to_death(const std::string &name)
    {
        auto pid = sys->spawn(name, {name});
        EXPECT_TRUE(pid.ok()) << (pid.ok() ? "" : pid.error().message);
        sys->set_quantum(100000);
        for (int i = 0; i < 200 && !sys->all_exited(); ++i) {
            sys->step_round();
        }
        EXPECT_TRUE(sys->all_exited());
        auto record = sys->death_record(pid.value());
        EXPECT_TRUE(record.ok());
        return record.ok() ? record.value() : oskit::DeathRecord{};
    }
};

TEST(Isolation, SipCannotWalkOutOfItsDataRegion)
{
    // A verified SIP sweeps pointers across the whole address space
    // through wstore; every out-of-domain store must die in the
    // mem_guard (#BR), never reach another domain.
    SecurityHarness h;
    h.add("victim", R"(
global int canary[4];
func main() {
    canary[0] = 12345;
    // Stay alive long enough to be attacked, then report the canary.
    var spin = 0;
    while (spin < 2000000) { spin = spin + 1; }
    return canary[0] == 12345;
}
)");
    h.add("attacker", R"(
func main() {
    // Probe far outside this SIP's own data region: one slot up.
    var target = heap_begin() + 9 * 1024 * 1024;
    wstore(target, 0x41414141);
    return 0;
}
)");
    auto victim_pid = h.sys->spawn("victim", {"victim"});
    ASSERT_TRUE(victim_pid.ok());
    auto attacker_pid = h.sys->spawn("attacker", {"attacker"});
    ASSERT_TRUE(attacker_pid.ok());
    h.sys->run();
    // The attacker died on the bound check...
    auto attacker_record = h.sys->death_record(attacker_pid.value());
    ASSERT_TRUE(attacker_record.ok());
    EXPECT_EQ(attacker_record.value().cause, oskit::DeathCause::kFault);
    EXPECT_EQ(attacker_record.value().fault,
              vm::FaultKind::kBoundRange);
    // ...and the victim's memory is intact.
    EXPECT_EQ(h.sys->exit_code(victim_pid.value()).value(), 1);
}

TEST(Isolation, SyscallBuffersConfinedToCallersDomain)
{
    // The LibOS must not act as a confused deputy: write() with a
    // pointer outside the caller's D region returns EFAULT (14).
    SecurityHarness h;
    h.add("deputy", R"(
func main() {
    var outside = heap_begin() - 2 * 1024 * 1024; // below D.begin
    if (write(1, outside, 64) != -14) { return 1; }
    var way_out = heap_begin() + 16 * 1024 * 1024;
    if (write(1, way_out, 64) != -14) { return 2; }
    return 0;
}
)");
    EXPECT_EQ(h.run_to_death("deputy").code, 0);
}

TEST(Isolation, SyscallReturnTargetValidated)
{
    // Paper §6: the LibOS checks that the syscall return address is a
    // cfi_label of the calling SIP. A hand-built SIP pushes a forged
    // return address before calling the gate.
    Assembler a;
    a.cfi_label(0);
    // r2 = D.begin (from sp), r14 = gate.
    oelf::Image shape;
    shape.heap_size = 1 << 16;
    shape.stack_size = 1 << 14;
    shape.code_reserve = 1 << 20;
    a.mov_rr(2, isa::kSp);
    a.sub_ri(2, static_cast<int32_t>(shape.data_region_size() - 16));
    a.mem_guard(mem_bd(2, 0));
    a.load(14, mem_bd(2, 0));
    // Forged return address: some non-label code location (here: the
    // middle of this very instruction stream).
    {
        isa::Instruction lea;
        lea.op = isa::Opcode::kLea;
        lea.reg1 = 3;
        lea.mem.mode = isa::AddrMode::kRipRel;
        a.emit_mem_ref(lea, "not_a_label");
    }
    a.push(3);
    {
        isa::Instruction num;
        num.op = isa::Opcode::kMovRI;
        num.reg1 = 0;
        num.imm = static_cast<int64_t>(abi::Sys::kGetPid);
        a.emit(num);
    }
    a.cfi_guard(14);
    // jmp (not call): the forged slot on the stack is what the LibOS
    // will pop as the "return address".
    a.jmp_reg(14);
    a.bind("not_a_label");
    a.nop();
    a.bind("spin");
    a.jmp("spin");
    shape.code = a.finish();
    shape.entry_offset = 0;
    shape.flags = oelf::kFlagInstrumented;

    verifier::Verifier verifier(workloads::bench_verifier_key());
    auto signed_image = verifier.verify_and_sign(shape);
    ASSERT_TRUE(signed_image.ok()) << signed_image.error().message;

    SecurityHarness h;
    h.binaries.put("forger", signed_image.value().serialize());
    auto record = h.run_to_death("forger");
    EXPECT_EQ(record.cause, oskit::DeathCause::kFault);
}

TEST(Isolation, CodeInjectionBlockedByPagePermissions)
{
    // §7 case 1: even with a perfectly forged cfi_label in D, the
    // jump dies because D pages are never executable under Occlum.
    SecurityHarness h;
    h.add("injector", R"(
func main() {
    var buf = malloc(64);
    // Forge the label value for this domain and plant it.
    var pcb = heap_begin() - 1; // cannot read PCB portably; use the
    // legal route: bload of the domain id is inside D.
    return 0;
}
)");
    // The full injection attack is covered by bench_ripe_security;
    // here assert the root cause: D region pages carry no X.
    uint64_t d_page = 0;
    {
        auto pid = h.sys->spawn("injector", {"injector"});
        ASSERT_TRUE(pid.ok());
        const oskit::Process *proc = h.sys->find_process(pid.value());
        ASSERT_NE(proc, nullptr);
        d_page = proc->d_begin;
        EXPECT_EQ(h.sys->enclave().mem().perms_at(d_page), vm::kPermRW);
        EXPECT_EQ(h.sys->enclave().mem().perms_at(proc->domain_base),
                  vm::kPermRX);
        h.sys->run();
    }
}

TEST(Isolation, VerifierGatekeepsTheLoader)
{
    // End-to-end TCB story: a binary that would break isolation
    // (unguarded store) cannot obtain a signature, so the loader
    // refuses it even when the attacker controls the host store.
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(1, 0x900000000);
    a.store(mem_bd(1, 0), 2);
    a.bind("spin");
    a.jmp("spin");
    oelf::Image evil;
    evil.code = a.finish();
    evil.entry_offset = 0;
    evil.code_reserve = 1 << 20;
    evil.flags = oelf::kFlagInstrumented;

    verifier::Verifier verifier(workloads::bench_verifier_key());
    EXPECT_FALSE(verifier.verify_and_sign(evil).ok());

    // Self-signing without the verifier key fails at load.
    crypto::Key128 attacker_key{};
    attacker_key[0] = 0xEE;
    evil.sign(attacker_key);
    SecurityHarness h;
    h.binaries.put("evil", evil.serialize());
    EXPECT_FALSE(h.sys->spawn("evil", {"evil"}).ok());
}

TEST(Isolation, ExitedSipSlotIsScrubbedBeforeReuse)
{
    // A secret written by SIP #1 must not be readable by SIP #2
    // loaded into the recycled slot.
    SecurityHarness h;
    h.add("secretive", R"(
global int secret[4];
func main() {
    secret[0] = 0x5ec2e7;
    return 0;
}
)");
    h.add("snoop", R"(
global int probe[4];
func main() {
    // Sweep this SIP's own data region for the previous tenant's
    // secret (same slot, same offsets).
    var p = heap_begin();
    var e = heap_end();
    while (p + 8 <= e) {
        if (wload(p) == 0x5ec2e7) { return 1; }
        p = p + 8;
    }
    if (probe[0] == 0x5ec2e7) { return 2; }
    return 0;
}
)");
    auto p1 = h.sys->spawn("secretive", {"secretive"});
    ASSERT_TRUE(p1.ok());
    h.sys->run();
    auto p2 = h.sys->spawn("snoop", {"snoop"});
    ASSERT_TRUE(p2.ok());
    h.sys->run();
    EXPECT_EQ(h.sys->exit_code(p2.value()).value(), 0);
}

} // namespace
} // namespace occlum::libos
