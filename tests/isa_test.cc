/**
 * @file
 * Unit and property tests for the OVM ISA: encode/decode round trips,
 * cfi_label encoding invariants, operand validation, and the
 * classification tables the verifier depends on.
 */
#include <gtest/gtest.h>

#include "base/rng.h"
#include "isa/assembler.h"
#include "isa/isa.h"

namespace occlum::isa {
namespace {

TEST(Encoding, CfiLabelLayout)
{
    Instruction instr;
    instr.op = Opcode::kCfiLabel;
    instr.label_id = 0xdeadbeef;
    Bytes out;
    size_t len = encode(instr, out);
    ASSERT_EQ(len, kCfiLabelSize);
    EXPECT_EQ(out[0], kCfiMagic[0]);
    EXPECT_EQ(out[1], kCfiMagic[1]);
    EXPECT_EQ(out[2], kCfiMagic[2]);
    EXPECT_EQ(out[3], kCfiMagic[3]);
    // Last four bytes carry the domain ID little-endian.
    EXPECT_EQ(get_le<uint32_t>(out.data() + 4), 0xdeadbeefu);
}

TEST(Encoding, CfiLabelValueMatchesEncodedBytes)
{
    // The 64-bit value cfi_guard loads must equal the encoded bytes.
    Instruction instr;
    instr.op = Opcode::kCfiLabel;
    instr.label_id = 42;
    Bytes out;
    encode(instr, out);
    EXPECT_EQ(get_le<uint64_t>(out.data()), cfi_label_value(42));
}

TEST(Encoding, DecodeRejectsPartialCfiMagic)
{
    Bytes bad = {kCfiMagic[0], kCfiMagic[1], 0x00, kCfiMagic[3],
                 0, 0, 0, 0};
    auto r = decode(bad.data(), bad.size(), 0, 0x1000);
    EXPECT_FALSE(r.ok());
}

TEST(Encoding, DecodeRejectsTruncatedCfiLabel)
{
    Bytes bad = {kCfiMagic[0], kCfiMagic[1], kCfiMagic[2], kCfiMagic[3]};
    auto r = decode(bad.data(), bad.size(), 0, 0x1000);
    EXPECT_FALSE(r.ok());
}

TEST(Encoding, DecodeRejectsUnknownOpcode)
{
    Bytes bad = {0xee, 0, 0, 0};
    EXPECT_FALSE(decode(bad.data(), bad.size(), 0, 0).ok());
}

TEST(Encoding, DecodeRejectsBadRegister)
{
    Bytes bad = {static_cast<uint8_t>(Opcode::kPush), 16};
    EXPECT_FALSE(decode(bad.data(), bad.size(), 0, 0).ok());
}

TEST(Encoding, DecodeRejectsBadBoundRegister)
{
    Bytes bad = {static_cast<uint8_t>(Opcode::kBndclReg), 4, 0};
    EXPECT_FALSE(decode(bad.data(), bad.size(), 0, 0).ok());
}

TEST(Encoding, DecodeRejectsTruncatedImmediate)
{
    Bytes bad = {static_cast<uint8_t>(Opcode::kMovRI), 1, 0x11, 0x22};
    EXPECT_FALSE(decode(bad.data(), bad.size(), 0, 0).ok());
}

TEST(Encoding, DirectTargetArithmetic)
{
    Instruction instr;
    instr.op = Opcode::kJmp;
    instr.imm = -5; // jump to own start: len 5, rel -5
    instr.address = 0x2000;
    instr.length = 5;
    EXPECT_EQ(instr.direct_target(), 0x2000u);
}

/** Round-trip every representative instruction form. */
TEST(Encoding, RoundTripAllForms)
{
    std::vector<Instruction> forms;
    auto add = [&](Instruction i) { forms.push_back(i); };

    Instruction i;
    i.op = Opcode::kNop; add(i);
    i = {}; i.op = Opcode::kRet; add(i);
    i = {}; i.op = Opcode::kPush; i.reg1 = 7; add(i);
    i = {}; i.op = Opcode::kMovRI; i.reg1 = 3;
    i.imm = static_cast<int64_t>(0x123456789abcdef0ull); add(i);
    i = {}; i.op = Opcode::kAddRI; i.reg1 = 2; i.imm = -12345; add(i);
    i = {}; i.op = Opcode::kShlRI; i.reg1 = 9; i.imm = 13; add(i);
    i = {}; i.op = Opcode::kMovRR; i.reg1 = 1; i.reg2 = 14; add(i);
    i = {}; i.op = Opcode::kLoad; i.reg1 = 4;
    i.mem = mem_bd(5, -64); add(i);
    i = {}; i.op = Opcode::kStore; i.reg1 = 4;
    i.mem = mem_sib(5, 6, 3, 1024); add(i);
    i = {}; i.op = Opcode::kLoad32; i.reg1 = 4;
    i.mem = mem_rip(-4096); add(i);
    i = {}; i.op = Opcode::kStore8; i.reg1 = 4;
    i.mem = mem_abs(0x11223344556677ull); add(i);
    i = {}; i.op = Opcode::kVGather; i.reg1 = 2;
    i.mem = mem_sib(1, 2, 2, 0); add(i);
    i = {}; i.op = Opcode::kJmp; i.imm = 0x1000; add(i);
    i = {}; i.op = Opcode::kJcc; i.cond = Cond::kBe; i.imm = -20; add(i);
    i = {}; i.op = Opcode::kCall; i.imm = 256; add(i);
    i = {}; i.op = Opcode::kJmpMem; i.mem = mem_bd(3, 8); add(i);
    i = {}; i.op = Opcode::kRetImm; i.imm = 16; add(i);
    i = {}; i.op = Opcode::kPushImm; i.imm = -7; add(i);
    i = {}; i.op = Opcode::kBndclMem; i.bnd = 0;
    i.mem = mem_bd(2, 8); add(i);
    i = {}; i.op = Opcode::kBndcuReg; i.bnd = 1; i.reg1 = 13; add(i);
    i = {}; i.op = Opcode::kBndmov; i.bnd = 2; i.reg1 = 3; add(i);
    i = {}; i.op = Opcode::kCfiLabel; i.label_id = 77; add(i);
    i = {}; i.op = Opcode::kWrfsbase; i.reg1 = 5; add(i);

    for (const auto &form : forms) {
        Bytes out;
        size_t len = encode(form, out);
        ASSERT_EQ(len, encoded_length(form)) << to_string(form);
        auto decoded = decode(out.data(), out.size(), 0, 0x4000);
        ASSERT_TRUE(decoded.ok()) << to_string(form);
        const Instruction &d = decoded.value();
        EXPECT_EQ(d.op, form.op) << to_string(form);
        EXPECT_EQ(d.length, len);
        EXPECT_EQ(d.reg1, form.reg1) << to_string(form);
        EXPECT_EQ(d.imm, form.imm) << to_string(form);
        EXPECT_TRUE(d.mem == form.mem) << to_string(form);
    }
}

/** Property: random byte soup never crashes the decoder. */
TEST(Encoding, FuzzDecodeNeverCrashes)
{
    Rng rng(1234);
    for (int trial = 0; trial < 5000; ++trial) {
        Bytes soup(1 + rng.next_below(24));
        for (auto &b : soup) {
            b = static_cast<uint8_t>(rng.next());
        }
        auto r = decode(soup.data(), soup.size(), 0, 0x1000);
        if (r.ok()) {
            EXPECT_LE(r.value().length, soup.size());
            EXPECT_GT(r.value().length, 0u);
        }
    }
}

/** Property: decoding a valid encoding at offset 0 consumes exactly
 *  the encoded length (self-synchronization at offset 0). */
TEST(Encoding, FuzzRoundTripRandomInstrs)
{
    Rng rng(99);
    const Opcode ops[] = {Opcode::kMovRI, Opcode::kAddRR, Opcode::kLoad,
                          Opcode::kStore, Opcode::kJmp, Opcode::kPush,
                          Opcode::kBndclMem, Opcode::kJcc};
    for (int trial = 0; trial < 2000; ++trial) {
        Instruction instr;
        instr.op = ops[rng.next_below(std::size(ops))];
        instr.reg1 = static_cast<uint8_t>(rng.next_below(16));
        instr.reg2 = static_cast<uint8_t>(rng.next_below(16));
        instr.bnd = static_cast<uint8_t>(rng.next_below(4));
        instr.cond = static_cast<Cond>(rng.next_below(kNumConds));
        instr.imm = static_cast<int32_t>(rng.next());
        if (instr.op == Opcode::kMovRI) {
            instr.imm = static_cast<int64_t>(rng.next());
        }
        instr.mem = mem_sib(static_cast<uint8_t>(rng.next_below(16)),
                            static_cast<uint8_t>(rng.next_below(16)),
                            static_cast<uint8_t>(rng.next_below(4)),
                            static_cast<int32_t>(rng.next()));
        Bytes out;
        size_t len = encode(instr, out);
        auto decoded = decode(out.data(), out.size(), 0, 0);
        ASSERT_TRUE(decoded.ok());
        EXPECT_EQ(decoded.value().length, len);
        EXPECT_EQ(decoded.value().op, instr.op);
    }
}

// ---- classification tables ------------------------------------------

TEST(Classify, DangerousInstructions)
{
    EXPECT_TRUE(is_dangerous(Opcode::kHlt));
    EXPECT_TRUE(is_dangerous(Opcode::kLtrap));
    EXPECT_TRUE(is_dangerous(Opcode::kEexit));
    EXPECT_TRUE(is_dangerous(Opcode::kEaccept));
    EXPECT_TRUE(is_dangerous(Opcode::kXrstor));
    EXPECT_TRUE(is_dangerous(Opcode::kWrfsbase));
    EXPECT_TRUE(is_dangerous(Opcode::kBndmk));
    EXPECT_TRUE(is_dangerous(Opcode::kBndmov));
    EXPECT_FALSE(is_dangerous(Opcode::kBndclMem));
    EXPECT_FALSE(is_dangerous(Opcode::kLoad));
    EXPECT_FALSE(is_dangerous(Opcode::kRdcycle));
}

TEST(Classify, TransferKinds)
{
    EXPECT_EQ(transfer_kind(Opcode::kJmp), TransferKind::kDirect);
    EXPECT_EQ(transfer_kind(Opcode::kJcc), TransferKind::kDirect);
    EXPECT_EQ(transfer_kind(Opcode::kCall), TransferKind::kDirect);
    EXPECT_EQ(transfer_kind(Opcode::kJmpReg),
              TransferKind::kRegisterIndirect);
    EXPECT_EQ(transfer_kind(Opcode::kCallReg),
              TransferKind::kRegisterIndirect);
    EXPECT_EQ(transfer_kind(Opcode::kJmpMem),
              TransferKind::kMemoryIndirect);
    EXPECT_EQ(transfer_kind(Opcode::kCallMem),
              TransferKind::kMemoryIndirect);
    EXPECT_EQ(transfer_kind(Opcode::kRet), TransferKind::kReturn);
    EXPECT_EQ(transfer_kind(Opcode::kRetImm), TransferKind::kReturn);
    EXPECT_EQ(transfer_kind(Opcode::kAddRR), TransferKind::kNone);
}

TEST(Classify, MemAccessPredicates)
{
    EXPECT_TRUE(explicit_mem_access(Opcode::kLoad));
    EXPECT_TRUE(explicit_mem_access(Opcode::kVGather));
    EXPECT_FALSE(explicit_mem_access(Opcode::kLea));
    EXPECT_TRUE(is_store(Opcode::kStore8));
    EXPECT_FALSE(is_store(Opcode::kLoad8));
    EXPECT_TRUE(implicit_stack_access(Opcode::kPush));
    EXPECT_TRUE(implicit_stack_access(Opcode::kCallReg));
    EXPECT_FALSE(implicit_stack_access(Opcode::kJmpReg));
}

// ---- assembler ---------------------------------------------------------

TEST(Assembler, ForwardAndBackwardLabels)
{
    Assembler a(0x1000);
    a.bind("start");
    a.mov_ri(1, 0);
    a.bind("loop");
    a.add_ri(1, 1);
    a.cmp_ri(1, 10);
    a.jcc(Cond::kLt, "loop");
    a.jmp("done");
    a.nop();
    a.bind("done");
    a.ret();
    Bytes code = a.finish();

    // Decode the whole stream and check the branch targets.
    std::vector<Instruction> instrs;
    size_t off = 0;
    while (off < code.size()) {
        auto d = decode(code.data(), code.size(), off, 0x1000 + off);
        ASSERT_TRUE(d.ok());
        instrs.push_back(d.value());
        off += d.value().length;
    }
    ASSERT_EQ(instrs.size(), 7u);
    EXPECT_EQ(instrs[3].direct_target(),
              0x1000 + a.label_offset("loop"));
    EXPECT_EQ(instrs[4].direct_target(),
              0x1000 + a.label_offset("done"));
}

TEST(Assembler, MovLabelAddress)
{
    Assembler a(0x8000);
    a.mov_rl(2, "func");
    a.jmp_reg(2);
    a.bind("func");
    a.cfi_label(0);
    Bytes code = a.finish();
    auto d = decode(code.data(), code.size(), 0, 0x8000);
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(static_cast<uint64_t>(d.value().imm),
              0x8000 + a.label_offset("func"));
}

TEST(Assembler, MemGuardExpansion)
{
    Assembler a;
    a.mem_guard(mem_bd(3, 16));
    Bytes code = a.finish();
    auto first = decode(code.data(), code.size(), 0, 0);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value().op, Opcode::kBndclMem);
    EXPECT_EQ(first.value().bnd, kBndData);
    auto second = decode(code.data(), code.size(), first.value().length,
                         first.value().length);
    ASSERT_TRUE(second.ok());
    EXPECT_EQ(second.value().op, Opcode::kBndcuMem);
}

TEST(Assembler, CfiGuardExpansion)
{
    Assembler a;
    a.cfi_guard(4);
    Bytes code = a.finish();
    auto first = decode(code.data(), code.size(), 0, 0);
    ASSERT_TRUE(first.ok());
    EXPECT_EQ(first.value().op, Opcode::kLoad);
    EXPECT_EQ(first.value().reg1, kScratch);
    EXPECT_EQ(first.value().mem.base, 4);
}

} // namespace
} // namespace occlum::isa
