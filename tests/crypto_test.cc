/**
 * @file
 * Unit tests for the crypto substrate against published vectors:
 * FIPS 180-4 (SHA-256), RFC 4231 (HMAC-SHA-256), FIPS 197 and
 * SP 800-38A (AES-128 / CTR).
 */
#include <gtest/gtest.h>

#include "base/bytes.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace occlum::crypto {
namespace {

Bytes
str_bytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

std::string
digest_hex(const Sha256Digest &d)
{
    return to_hex(d.data(), d.size());
}

// ---- SHA-256 (FIPS 180-4 examples) -----------------------------------

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(digest_hex(Sha256::digest(Bytes{})),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(digest_hex(Sha256::digest(str_bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(digest_hex(Sha256::digest(str_bytes(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                  "nopq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) {
        h.update(chunk);
    }
    EXPECT_EQ(digest_hex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    Bytes data;
    for (int i = 0; i < 999; ++i) {
        data.push_back(static_cast<uint8_t>(i * 37));
    }
    Sha256 h;
    // Uneven chunking exercises the internal buffering.
    size_t off = 0;
    size_t sizes[] = {1, 63, 64, 65, 127, 500, 179};
    for (size_t s : sizes) {
        size_t n = std::min(s, data.size() - off);
        h.update(data.data() + off, n);
        off += n;
    }
    ASSERT_EQ(off, data.size());
    EXPECT_EQ(h.finish(), Sha256::digest(data));
}

TEST(Sha256, PaddingBoundaries)
{
    // Lengths straddling the 55/56/64-byte padding edges.
    for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
        Bytes data(len, 0x5a);
        Sha256 a;
        a.update(data);
        Sha256 b;
        for (auto byte : data) {
            b.update(&byte, 1);
        }
        EXPECT_EQ(a.finish(), b.finish()) << "len=" << len;
    }
}

// ---- HMAC-SHA-256 (RFC 4231) -------------------------------------------

TEST(Hmac, Rfc4231Case1)
{
    Bytes key(20, 0x0b);
    Bytes data = str_bytes("Hi There");
    EXPECT_EQ(to_hex(hmac_sha256(key, data).data(), 32),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c"
              "2e32cff7");
}

TEST(Hmac, Rfc4231Case2)
{
    Bytes key = str_bytes("Jefe");
    Bytes data = str_bytes("what do ya want for nothing?");
    EXPECT_EQ(to_hex(hmac_sha256(key, data).data(), 32),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b9"
              "64ec3843");
}

TEST(Hmac, Rfc4231Case3)
{
    Bytes key(20, 0xaa);
    Bytes data(50, 0xdd);
    EXPECT_EQ(to_hex(hmac_sha256(key, data).data(), 32),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514"
              "ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey)
{
    Bytes key(131, 0xaa);
    Bytes data = str_bytes("Test Using Larger Than Block-Size Key - "
                           "Hash Key First");
    EXPECT_EQ(to_hex(hmac_sha256(key, data).data(), 32),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f"
              "0ee37f54");
}

TEST(Hmac, DigestEqualConstantTime)
{
    Sha256Digest a = Sha256::digest(str_bytes("x"));
    Sha256Digest b = a;
    EXPECT_TRUE(digest_equal(a, b));
    b[31] ^= 1;
    EXPECT_FALSE(digest_equal(a, b));
}

// ---- AES-128 (FIPS 197 / SP 800-38A) -------------------------------------

Key128
key_from_hex(const std::string &hex)
{
    Bytes raw = from_hex(hex);
    Key128 key{};
    std::copy(raw.begin(), raw.end(), key.begin());
    return key;
}

TEST(Aes128, Fips197Example)
{
    Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
    Bytes pt = from_hex("00112233445566778899aabbccddeeff");
    uint8_t ct[16];
    aes.encrypt_block(pt.data(), ct);
    EXPECT_EQ(to_hex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Sp800_38aBlock)
{
    // SP 800-38A F.1.1 AES-128 ECB block 1.
    Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
    uint8_t ct[16];
    aes.encrypt_block(pt.data(), ct);
    EXPECT_EQ(to_hex(ct, 16), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, CtrRoundTrip)
{
    Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    std::array<uint8_t, 12> iv = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    Bytes pt;
    for (int i = 0; i < 1000; ++i) {
        pt.push_back(static_cast<uint8_t>(i * 13));
    }
    Bytes ct = aes.ctr_crypt(iv, 0, pt);
    EXPECT_NE(ct, pt);
    Bytes back = aes.ctr_crypt(iv, 0, ct);
    EXPECT_EQ(back, pt);
}

TEST(Aes128, CtrCounterContinuity)
{
    // Encrypting [A|B] at counter 0 equals encrypting A at counter 0
    // and B at counter len(A)/16 when A is block-aligned.
    Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
    std::array<uint8_t, 12> iv{};
    Bytes data(64, 0xab);
    Bytes whole = aes.ctr_crypt(iv, 0, data);

    Bytes first(data.begin(), data.begin() + 32);
    Bytes second(data.begin() + 32, data.end());
    Bytes part1 = aes.ctr_crypt(iv, 0, first);
    Bytes part2 = aes.ctr_crypt(iv, 2, second);
    part1.insert(part1.end(), part2.begin(), part2.end());
    EXPECT_EQ(part1, whole);
}

TEST(Aes128, DistinctIvDistinctStream)
{
    Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
    Bytes zeros(32, 0);
    std::array<uint8_t, 12> iv1{}, iv2{};
    iv2[0] = 1;
    EXPECT_NE(aes.ctr_crypt(iv1, 0, zeros), aes.ctr_crypt(iv2, 0, zeros));
}

} // namespace
} // namespace occlum::crypto
