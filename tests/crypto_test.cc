/**
 * @file
 * Unit tests for the crypto substrate against published vectors:
 * FIPS 180-4 (SHA-256), RFC 4231 (HMAC-SHA-256), FIPS 197 and
 * SP 800-38A (AES-128 / CTR).
 */
#include <gtest/gtest.h>

#include "base/bytes.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace occlum::crypto {
namespace {

Bytes
str_bytes(const std::string &s)
{
    return Bytes(s.begin(), s.end());
}

std::string
digest_hex(const Sha256Digest &d)
{
    return to_hex(d.data(), d.size());
}

// ---- SHA-256 (FIPS 180-4 examples) -----------------------------------

TEST(Sha256, EmptyString)
{
    EXPECT_EQ(digest_hex(Sha256::digest(Bytes{})),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b"
              "7852b855");
}

TEST(Sha256, Abc)
{
    EXPECT_EQ(digest_hex(Sha256::digest(str_bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61"
              "f20015ad");
}

TEST(Sha256, TwoBlockMessage)
{
    EXPECT_EQ(digest_hex(Sha256::digest(str_bytes(
                  "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnop"
                  "nopq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd4"
              "19db06c1");
}

TEST(Sha256, MillionAs)
{
    Sha256 h;
    Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) {
        h.update(chunk);
    }
    EXPECT_EQ(digest_hex(h.finish()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39cc"
              "c7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot)
{
    Bytes data;
    for (int i = 0; i < 999; ++i) {
        data.push_back(static_cast<uint8_t>(i * 37));
    }
    Sha256 h;
    // Uneven chunking exercises the internal buffering.
    size_t off = 0;
    size_t sizes[] = {1, 63, 64, 65, 127, 500, 179};
    for (size_t s : sizes) {
        size_t n = std::min(s, data.size() - off);
        h.update(data.data() + off, n);
        off += n;
    }
    ASSERT_EQ(off, data.size());
    EXPECT_EQ(h.finish(), Sha256::digest(data));
}

TEST(Sha256, PaddingBoundaries)
{
    // Lengths straddling the 55/56/64-byte padding edges.
    for (size_t len : {54u, 55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u}) {
        Bytes data(len, 0x5a);
        Sha256 a;
        a.update(data);
        Sha256 b;
        for (auto byte : data) {
            b.update(&byte, 1);
        }
        EXPECT_EQ(a.finish(), b.finish()) << "len=" << len;
    }
}

// ---- HMAC-SHA-256 (RFC 4231) -------------------------------------------

TEST(Hmac, Rfc4231Case1)
{
    Bytes key(20, 0x0b);
    Bytes data = str_bytes("Hi There");
    EXPECT_EQ(to_hex(hmac_sha256(key, data).data(), 32),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c"
              "2e32cff7");
}

TEST(Hmac, Rfc4231Case2)
{
    Bytes key = str_bytes("Jefe");
    Bytes data = str_bytes("what do ya want for nothing?");
    EXPECT_EQ(to_hex(hmac_sha256(key, data).data(), 32),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b9"
              "64ec3843");
}

TEST(Hmac, Rfc4231Case3)
{
    Bytes key(20, 0xaa);
    Bytes data(50, 0xdd);
    EXPECT_EQ(to_hex(hmac_sha256(key, data).data(), 32),
              "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514"
              "ced565fe");
}

TEST(Hmac, Rfc4231Case6LongKey)
{
    Bytes key(131, 0xaa);
    Bytes data = str_bytes("Test Using Larger Than Block-Size Key - "
                           "Hash Key First");
    EXPECT_EQ(to_hex(hmac_sha256(key, data).data(), 32),
              "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f"
              "0ee37f54");
}

TEST(Hmac, DigestEqualConstantTime)
{
    Sha256Digest a = Sha256::digest(str_bytes("x"));
    Sha256Digest b = a;
    EXPECT_TRUE(digest_equal(a, b));
    b[31] ^= 1;
    EXPECT_FALSE(digest_equal(a, b));
}

// ---- AES-128 (FIPS 197 / SP 800-38A) -------------------------------------

Key128
key_from_hex(const std::string &hex)
{
    Bytes raw = from_hex(hex);
    Key128 key{};
    std::copy(raw.begin(), raw.end(), key.begin());
    return key;
}

TEST(Aes128, Fips197Example)
{
    Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
    Bytes pt = from_hex("00112233445566778899aabbccddeeff");
    uint8_t ct[16];
    aes.encrypt_block(pt.data(), ct);
    EXPECT_EQ(to_hex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes128, Sp800_38aBlock)
{
    // SP 800-38A F.1.1 AES-128 ECB block 1.
    Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    Bytes pt = from_hex("6bc1bee22e409f96e93d7e117393172a");
    uint8_t ct[16];
    aes.encrypt_block(pt.data(), ct);
    EXPECT_EQ(to_hex(ct, 16), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes128, CtrRoundTrip)
{
    Aes128 aes(key_from_hex("2b7e151628aed2a6abf7158809cf4f3c"));
    std::array<uint8_t, 12> iv = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
    Bytes pt;
    for (int i = 0; i < 1000; ++i) {
        pt.push_back(static_cast<uint8_t>(i * 13));
    }
    Bytes ct = aes.ctr_crypt(iv, 0, pt);
    EXPECT_NE(ct, pt);
    Bytes back = aes.ctr_crypt(iv, 0, ct);
    EXPECT_EQ(back, pt);
}

TEST(Aes128, CtrCounterContinuity)
{
    // Encrypting [A|B] at counter 0 equals encrypting A at counter 0
    // and B at counter len(A)/16 when A is block-aligned.
    Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
    std::array<uint8_t, 12> iv{};
    Bytes data(64, 0xab);
    Bytes whole = aes.ctr_crypt(iv, 0, data);

    Bytes first(data.begin(), data.begin() + 32);
    Bytes second(data.begin() + 32, data.end());
    Bytes part1 = aes.ctr_crypt(iv, 0, first);
    Bytes part2 = aes.ctr_crypt(iv, 2, second);
    part1.insert(part1.end(), part2.begin(), part2.end());
    EXPECT_EQ(part1, whole);
}

TEST(Aes128, DistinctIvDistinctStream)
{
    Aes128 aes(key_from_hex("000102030405060708090a0b0c0d0e0f"));
    Bytes zeros(32, 0);
    std::array<uint8_t, 12> iv1{}, iv2{};
    iv2[0] = 1;
    EXPECT_NE(aes.ctr_crypt(iv1, 0, zeros), aes.ctr_crypt(iv2, 0, zeros));
}

// ---- Known-answer batteries for the rebuilt fast paths ------------------

/** Runs the body under both AES implementations (T-table and scalar
 *  reference), restoring the mode afterwards. */
template <typename Fn>
void
for_both_aes_modes(Fn &&body)
{
    bool saved = Aes128::reference_mode();
    for (bool reference : {false, true}) {
        Aes128::set_reference_mode(reference);
        body(reference);
    }
    Aes128::set_reference_mode(saved);
}

// SP 800-38A F.5.1 CTR-AES128.Encrypt: counter block
// f0f1f2f3f4f5f6f7f8f9fafbfcfdfeff = IV f0..fb, counter 0xfcfdfeff.
const char *kSpCtrKey = "2b7e151628aed2a6abf7158809cf4f3c";
const std::array<uint8_t, 12> kSpCtrIv = {0xf0, 0xf1, 0xf2, 0xf3,
                                          0xf4, 0xf5, 0xf6, 0xf7,
                                          0xf8, 0xf9, 0xfa, 0xfb};
constexpr uint32_t kSpCtrCounter0 = 0xfcfdfeff;
const char *kSpCtrPlain =
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710";
const char *kSpCtrCipher =
    "874d6191b620e3261bef6864990db6ce"
    "9806f66b7970fdff8617187bb9fffdff"
    "5ae4df3edbd5d35e5b4f09020db03eab"
    "1e031dda2fbe03d1792170a0f3009cee";

TEST(Aes128Kat, Sp800_38aCtrMultiBlock)
{
    for_both_aes_modes([&](bool reference) {
        Aes128 aes(key_from_hex(kSpCtrKey));
        Bytes ct = aes.ctr_crypt(kSpCtrIv, kSpCtrCounter0,
                                 from_hex(kSpCtrPlain));
        EXPECT_EQ(to_hex(ct.data(), ct.size()), kSpCtrCipher)
            << "reference=" << reference;
    });
}

TEST(Aes128Kat, CtrNonBlockAlignedLengths)
{
    // CTR is a stream: a length-L encryption must be the L-byte
    // prefix of the full-vector ciphertext, for any L (including
    // lengths that end mid-block and mid-keystream-batch).
    Bytes plain = from_hex(kSpCtrPlain);
    Bytes full = from_hex(kSpCtrCipher);
    for_both_aes_modes([&](bool reference) {
        Aes128 aes(key_from_hex(kSpCtrKey));
        for (size_t len : {1u, 5u, 15u, 17u, 31u, 33u, 47u, 60u, 63u}) {
            Bytes part(plain.begin(), plain.begin() + len);
            Bytes ct = aes.ctr_crypt(kSpCtrIv, kSpCtrCounter0, part);
            EXPECT_EQ(ct, Bytes(full.begin(), full.begin() + len))
                << "reference=" << reference << " len=" << len;
        }
    });
}

TEST(Aes128Kat, CtrCounterWrap)
{
    // The 32-bit block counter wraps modulo 2^32: a stream crossing
    // the wrap equals the concatenation of the pre-wrap tail and a
    // fresh stream starting at counter 0.
    Aes128 aes(key_from_hex(kSpCtrKey));
    std::array<uint8_t, 12> iv = {9, 8, 7, 6, 5, 4, 3, 2, 1, 0, 1, 2};
    Bytes zeros(64, 0);
    Bytes crossing = aes.ctr_crypt(iv, 0xfffffffe, zeros);

    Bytes head(zeros.begin(), zeros.begin() + 32);
    Bytes tail(zeros.begin(), zeros.begin() + 32);
    Bytes pre = aes.ctr_crypt(iv, 0xfffffffe, head);
    Bytes post = aes.ctr_crypt(iv, 0, tail);
    pre.insert(pre.end(), post.begin(), post.end());
    EXPECT_EQ(crossing, pre);

    // And the wrap behaves identically in both implementations.
    Aes128::set_reference_mode(true);
    Aes128 ref_aes(key_from_hex(kSpCtrKey));
    EXPECT_EQ(ref_aes.ctr_crypt(iv, 0xfffffffe, zeros), crossing);
    Aes128::set_reference_mode(false);
}

TEST(Aes128Kat, FastMatchesReferenceOnRandomInputs)
{
    // Deterministic xorshift-filled buffers across many lengths; the
    // T-table path must agree with the first-principles path bit for
    // bit on every byte.
    uint64_t rng = 0x9e3779b97f4a7c15ull;
    auto next = [&rng]() {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
    };
    for (int trial = 0; trial < 8; ++trial) {
        Key128 key{};
        for (auto &b : key) {
            b = static_cast<uint8_t>(next());
        }
        std::array<uint8_t, 12> iv{};
        for (auto &b : iv) {
            b = static_cast<uint8_t>(next());
        }
        uint32_t counter0 = static_cast<uint32_t>(next());
        Bytes data(1 + (next() % 500), 0);
        for (auto &b : data) {
            b = static_cast<uint8_t>(next());
        }

        Aes128::set_reference_mode(false);
        Bytes fast = Aes128(key).ctr_crypt(iv, counter0, data);
        Aes128::set_reference_mode(true);
        Bytes ref = Aes128(key).ctr_crypt(iv, counter0, data);
        Aes128::set_reference_mode(false);
        EXPECT_EQ(fast, ref) << "trial=" << trial;

        uint8_t block_fast[16], block_ref[16];
        Bytes pt(data.begin(),
                 data.begin() + std::min<size_t>(16, data.size()));
        pt.resize(16, 0);
        Aes128(key).encrypt_block(pt.data(), block_fast);
        Aes128::set_reference_mode(true);
        Aes128(key).encrypt_block(pt.data(), block_ref);
        Aes128::set_reference_mode(false);
        EXPECT_EQ(to_hex(block_fast, 16), to_hex(block_ref, 16));
    }
}

TEST(Sha256Kat, NistBoundaryLengths)
{
    // 55 bytes: longest message whose padding fits one block;
    // 56 bytes: shortest that spills the length into a second block;
    // 64 bytes: exactly one compression plus a full padding block.
    EXPECT_EQ(digest_hex(Sha256::digest(Bytes(55, 'a'))),
              "9f4390f8d30c2dd92ec9f095b65e2b9ae9b0a925a5258e241c9f1e91"
              "0f734318");
    EXPECT_EQ(digest_hex(Sha256::digest(Bytes(56, 'a'))),
              "b35439a4ac6f0948b6d6f9e3c6af0f5f590ce20f1bde7090ef797068"
              "6ec6738a");
    EXPECT_EQ(digest_hex(Sha256::digest(Bytes(64, 'a'))),
              "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df"
              "154668eb");
}

TEST(Sha256Kat, MidstateSaveResume)
{
    // Hashing [A|B] equals capturing the midstate after the 64-byte-
    // aligned prefix A and resuming it in a different hasher.
    Bytes a(128, 0x11);
    Bytes b(77, 0x22);
    Sha256 whole;
    whole.update(a);
    whole.update(b);

    Sha256 prefix;
    prefix.update(a);
    Sha256Midstate m = prefix.midstate();
    Sha256 resumed;
    resumed.resume(m);
    resumed.update(b);
    EXPECT_EQ(whole.finish(), resumed.finish());

    // The cached initial midstate is the empty-hash state.
    Sha256 fresh;
    fresh.resume(Sha256::initial_midstate());
    fresh.update(b);
    EXPECT_EQ(fresh.finish(), Sha256::digest(b));
}

TEST(HmacKat, Rfc4231Case4)
{
    Bytes key;
    for (uint8_t b = 0x01; b <= 0x19; ++b) {
        key.push_back(b);
    }
    Bytes data(50, 0xcd);
    EXPECT_EQ(to_hex(hmac_sha256(key, data).data(), 32),
              "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff4"
              "6729665b");
}

TEST(HmacKat, Rfc4231Case7LongKeyLongData)
{
    Bytes key(131, 0xaa);
    Bytes data = str_bytes(
        "This is a test using a larger than block-size key and a "
        "larger than block-size data. The key needs to be hashed "
        "before being used by the HMAC algorithm.");
    EXPECT_EQ(to_hex(hmac_sha256(key, data).data(), 32),
              "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f5153"
              "5c3a35e2");
}

TEST(HmacKat, HmacKeyMatchesOneShot)
{
    // The midstate-caching HmacKey must agree with the free function
    // for short keys, exactly-block-size keys, and >64-byte keys
    // (which are hashed down first), with midstates on and off.
    bool saved = HmacKey::midstate_enabled();
    for (bool midstate : {true, false}) {
        HmacKey::set_midstate_enabled(midstate);
        for (size_t key_len : {1u, 20u, 63u, 64u, 65u, 131u}) {
            Bytes key(key_len, 0);
            for (size_t i = 0; i < key_len; ++i) {
                key[i] = static_cast<uint8_t>(i * 31 + 7);
            }
            HmacKey hk(key.data(), key.size());
            for (size_t data_len : {0u, 1u, 50u, 64u, 200u}) {
                Bytes data(data_len, 0);
                for (size_t i = 0; i < data_len; ++i) {
                    data[i] = static_cast<uint8_t>(i ^ key_len);
                }
                EXPECT_EQ(hk.mac(data),
                          hmac_sha256(key.data(), key.size(),
                                      data.data(), data.size()))
                    << "midstate=" << midstate << " key=" << key_len
                    << " data=" << data_len;
            }
        }
    }
    HmacKey::set_midstate_enabled(saved);
}

TEST(HmacKat, StreamingMatchesOneShot)
{
    Bytes key(32, 0x42);
    HmacKey hk(key.data(), key.size());
    Bytes part1(100, 0x01), part2(28, 0x02);
    Sha256 inner = hk.begin();
    inner.update(part1);
    inner.update(part2);
    Sha256Digest streamed = hk.finish(inner);

    Bytes whole = part1;
    whole.insert(whole.end(), part2.begin(), part2.end());
    EXPECT_EQ(streamed, hk.mac(whole));
}

TEST(Hmac, HkdfExpandLabelIsLabeledHmac)
{
    Sha256Digest secret;
    for (size_t i = 0; i < secret.size(); ++i) {
        secret[i] = static_cast<uint8_t>(i * 3);
    }
    // Definitionally HMAC(secret, label)...
    const char label[] = "key.c2s.enc";
    Bytes label_bytes(label, label + sizeof label - 1);
    EXPECT_EQ(hkdf_expand_label(secret, label),
              hmac_sha256(Bytes(secret.begin(), secret.end()),
                          label_bytes));
    // ...so distinct labels partition into independent subkeys, and
    // distinct secrets never collide on a label.
    EXPECT_NE(hkdf_expand_label(secret, "key.c2s.enc"),
              hkdf_expand_label(secret, "key.s2c.enc"));
    Sha256Digest other = secret;
    other[0] ^= 1;
    EXPECT_NE(hkdf_expand_label(secret, label),
              hkdf_expand_label(other, label));
}

} // namespace
} // namespace occlum::crypto
