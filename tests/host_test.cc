/**
 * @file
 * Host-world tests: block device cost charging, the NetSim bandwidth
 * and latency model (busy-until link sharing, arrival times, EOF on
 * close), and the base utilities (bytes, stats, rng).
 */
#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/stats.h"
#include "host/host.h"

namespace occlum::host {
namespace {

TEST(BlockDevice, ChargesDiskCosts)
{
    SimClock clock;
    BlockDevice device(clock, 16);
    Bytes block(BlockDevice::kBlockSize, 0xaa);
    uint64_t before = clock.cycles();
    ASSERT_TRUE(device.write_block(3, block).ok());
    uint64_t write_cost = clock.cycles() - before;
    EXPECT_GE(write_cost,
              static_cast<uint64_t>(BlockDevice::kBlockSize *
                                    CostModel::kDiskWriteCyclesPerByte));
    before = clock.cycles();
    Bytes back;
    ASSERT_TRUE(device.read_block(3, back).ok());
    EXPECT_EQ(back, block);
    uint64_t read_cost = clock.cycles() - before;
    EXPECT_LT(read_cost, write_cost); // SSD reads ~4.5x faster
    // Bounds checked.
    EXPECT_FALSE(device.read_block(16, back).ok());
    EXPECT_FALSE(device.write_block(0, Bytes(100)).ok());
}

TEST(NetSim, ConnectionLifecycleAndLatency)
{
    SimClock clock;
    NetSim net(clock);
    ASSERT_TRUE(net.listen(80, 4));
    EXPECT_FALSE(net.listen(80, 4)); // port taken
    EXPECT_FALSE(net.connect(81).ok()); // refused

    auto conn = net.connect(80);
    ASSERT_TRUE(conn.ok());
    // SYN in flight: not acceptable yet.
    EXPECT_EQ(net.try_accept(80, clock.cycles()), nullptr);
    uint64_t syn_arrival = net.next_accept_time(80);
    EXPECT_GT(syn_arrival, clock.cycles());
    clock.advance(syn_arrival - clock.cycles());
    NetSim::Connection *server_side = net.try_accept(80, clock.cycles());
    ASSERT_NE(server_side, nullptr);
    EXPECT_EQ(server_side, conn.value());

    // Client sends; data arrives after transfer + half RTT.
    Bytes payload(1000, 0x5a);
    net.send(conn.value(), false, payload.data(), payload.size());
    uint8_t buf[2048];
    uint64_t next_arrival = ~0ull;
    EXPECT_EQ(net.recv(server_side, true, buf, sizeof(buf),
                       clock.cycles(), next_arrival),
              0u);
    ASSERT_NE(next_arrival, ~0ull);
    uint64_t min_cycles =
        static_cast<uint64_t>(1000 * CostModel::kNetCyclesPerByte) +
        CostModel::kNetRttCycles / 2;
    EXPECT_GE(next_arrival - clock.cycles(), min_cycles);
    clock.advance(next_arrival - clock.cycles());
    EXPECT_EQ(net.recv(server_side, true, buf, sizeof(buf),
                       clock.cycles(), next_arrival),
              1000u);

    // Close -> EOF at the peer once drained.
    net.close(conn.value(), false);
    EXPECT_TRUE(net.is_drained(server_side, true, clock.cycles()));
}

TEST(NetSim, CloseIsIdempotentPerSide)
{
    // Double-closing one side of a connection must fire the on_close
    // observer exactly once per side: kernels hang poller wakeups off
    // this event, and a re-fired close used to wake blocked pollers a
    // second time for a hangup they had already consumed.
    SimClock clock;
    NetSim net(clock);
    ASSERT_TRUE(net.listen(80, 4));
    auto conn = net.connect(80);
    ASSERT_TRUE(conn.ok());
    int closes = 0;
    NetSim::Events events;
    events.on_close = [&](NetSim::Connection *, bool) { ++closes; };
    net.set_events(std::move(events));

    net.close(conn.value(), false);
    net.close(conn.value(), false); // second close: swallowed
    EXPECT_EQ(closes, 1);
    net.close(conn.value(), true); // the other side is independent
    net.close(conn.value(), true);
    EXPECT_EQ(closes, 2);
}

TEST(NetSim, SharedLinkSerializesTransfers)
{
    // Two large sends back to back: the second's arrival is pushed
    // out by the first's occupancy of the 1 Gbps link.
    SimClock clock;
    NetSim net(clock);
    ASSERT_TRUE(net.listen(80, 4));
    auto c1 = net.connect(80);
    auto c2 = net.connect(80);
    ASSERT_TRUE(c1.ok() && c2.ok());
    Bytes mb(1 << 20, 1);
    net.send(c1.value(), false, mb.data(), mb.size());
    net.send(c2.value(), false, mb.data(), mb.size());
    clock.advance(CostModel::kNetRttCycles);
    uint64_t a1 = ~0ull, a2 = ~0ull;
    uint8_t buf[1];
    net.recv(c1.value(), true, buf, 0, clock.cycles(), a1);
    net.recv(c2.value(), true, buf, 0, clock.cycles(), a2);
    ASSERT_NE(a1, ~0ull);
    ASSERT_NE(a2, ~0ull);
    uint64_t transfer =
        static_cast<uint64_t>(mb.size() * CostModel::kNetCyclesPerByte);
    EXPECT_GE(a2, a1 + transfer); // serialized on the shared link
}

TEST(HostFileStore, BasicOps)
{
    HostFileStore store;
    EXPECT_FALSE(store.exists("/a"));
    store.put("/a", {1, 2, 3});
    EXPECT_TRUE(store.exists("/a"));
    EXPECT_EQ(store.get("/a").value()->size(), 3u);
    store.remove("/a");
    EXPECT_FALSE(store.get("/a").ok());
}

// ---- base utilities -----------------------------------------------------

TEST(Base, BytesHexRoundTrip)
{
    Bytes data = {0x00, 0xde, 0xad, 0xbe, 0xef, 0xff};
    EXPECT_EQ(to_hex(data), "00deadbeefff");
    EXPECT_EQ(from_hex("00deadbeefff"), data);
    Bytes out;
    put_le<uint32_t>(out, 0x11223344);
    EXPECT_EQ(get_le<uint32_t>(out.data()), 0x11223344u);
    set_le<uint16_t>(out.data(), 0xaabb);
    EXPECT_EQ(out[0], 0xbb);
    EXPECT_EQ(out[1], 0xaa);
}

TEST(Base, RngIsDeterministicAndSpread)
{
    Rng a(7), b(7), c(8);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.next(), b.next());
    }
    EXPECT_NE(Rng(7).next(), c.next());
    // next_below respects the bound.
    Rng r(1);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.next_below(17), 17u);
        double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Base, SimClockConversions)
{
    SimClock clock;
    clock.advance(3'500'000); // 1 ms at 3.5 GHz
    EXPECT_DOUBLE_EQ(clock.millis(), 1.0);
    EXPECT_DOUBLE_EQ(clock.micros(), 1000.0);
    EXPECT_DOUBLE_EQ(SimClock::cycles_to_seconds(7'000'000'000ull), 2.0);
}

TEST(Base, AggregateAndFormat)
{
    Aggregate agg;
    agg.add(1.0);
    agg.add(3.0);
    agg.add(2.0);
    EXPECT_EQ(agg.count(), 3u);
    EXPECT_DOUBLE_EQ(agg.mean(), 2.0);
    EXPECT_DOUBLE_EQ(agg.min(), 1.0);
    EXPECT_DOUBLE_EQ(agg.max(), 3.0);
    EXPECT_EQ(format_time_us(12.3), "12.3us");
    EXPECT_EQ(format_time_us(12345.0), "12.35ms");
    EXPECT_EQ(format_time_us(3.2e6), "3.200s");
    EXPECT_EQ(format_mbps(999.0), "999.0MB/s");
    EXPECT_EQ(format_mbps(1500.0), "1.50GB/s");
}

} // namespace
} // namespace occlum::host
