/**
 * @file
 * Verifier tests (paper §5): toolchain output must verify; hand-built
 * adversarial binaries must be rejected at the right stage; signing
 * works and tampering is detected.
 */
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "toolchain/minic.h"
#include "verifier/verifier.h"

namespace occlum::verifier {
namespace {

using isa::Assembler;
using isa::Cond;
using isa::mem_abs;
using isa::mem_bd;
using isa::mem_sib;
using toolchain::CompileOptions;
using toolchain::InstrumentOptions;

crypto::Key128
test_key()
{
    crypto::Key128 key{};
    key[0] = 0x5a;
    return key;
}

VerifyReport
verify_source(const std::string &source,
              InstrumentOptions instrument = InstrumentOptions::full())
{
    CompileOptions options;
    options.instrument = instrument;
    auto out = toolchain::compile(source, options);
    EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().message);
    Verifier verifier(test_key());
    return verifier.verify(out.value().image);
}


/** Terminate a hand-built snippet so stage 1's walk cannot fall off
 *  the end of the code segment. */
void
spin(Assembler &a)
{
    static int n = 0;
    std::string label = "__spin" + std::to_string(n++);
    a.bind(label);
    a.jmp(label);
}

/** Wrap hand-written code into a minimal image for the verifier. */
oelf::Image
image_from(Assembler &a, uint64_t entry_off = 0)
{
    oelf::Image image;
    image.code = a.finish();
    image.entry_offset = entry_off;
    image.heap_size = 1 << 16;
    image.stack_size = 1 << 14;
    image.flags = oelf::kFlagInstrumented;
    return image;
}

// ---- toolchain output must pass ----------------------------------------

TEST(Verifier, AcceptsInstrumentedHelloWorld)
{
    VerifyReport r = verify_source(
        "func main() { println(\"hi\"); return 0; }");
    EXPECT_TRUE(r.ok) << "stage " << r.failed_stage << ": " << r.reason
                      << " @" << r.fail_address;
    EXPECT_GT(r.reachable_instructions, 0u);
    EXPECT_GT(r.cfi_labels, 0u);
}

TEST(Verifier, AcceptsNaiveInstrumentation)
{
    VerifyReport r = verify_source(
        "global int a[64];\n"
        "func main() { for (i = 0; i < 64; i = i + 1) { a[i] = i; }"
        " return a[63]; }",
        InstrumentOptions::naive());
    EXPECT_TRUE(r.ok) << "stage " << r.failed_stage << ": " << r.reason;
}

TEST(Verifier, AcceptsOptimizedLoopsAndPointers)
{
    VerifyReport r = verify_source(R"(
global int a[256];
global byte buf[512];
func touch(p, n) {
    var i = 0;
    while (i < n) { bstore(p + i, i); i = i + 1; }
    return 0;
}
func main() {
    for (i = 0; i < 256; i = i + 1) { a[i] = a[i] + i; }
    touch(buf, 512);
    var m = malloc(64);
    wstore(m, 7);
    return wload(m) + a[255];
}
)");
    EXPECT_TRUE(r.ok) << "stage " << r.failed_stage << ": " << r.reason
                      << " @" << r.fail_address;
    // Hoisted loops leave accesses proven by the range analysis.
    EXPECT_GT(r.checked_accesses, 0u);
}

TEST(Verifier, AcceptsRecursionAndSpawnWrappers)
{
    VerifyReport r = verify_source(R"(
func fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
func main() {
    var fds[2];
    pipe(fds);
    write(fds[1], "x", 1);
    return fib(10);
}
)");
    EXPECT_TRUE(r.ok) << "stage " << r.failed_stage << ": " << r.reason
                      << " @" << r.fail_address;
}

TEST(Verifier, RejectsUninstrumentedBinaries)
{
    // Plain `ret` and unguarded indirect control flow must fail.
    VerifyReport r = verify_source("func main() { return 0; }",
                                   InstrumentOptions::none());
    EXPECT_FALSE(r.ok);
}

// ---- stage 1: complete disassembly ---------------------------------------

TEST(Verifier, Stage1RejectsEntryNotLabel)
{
    Assembler a;
    a.nop();
    a.cfi_label(0);
    a.ltrap();
    auto image = image_from(a, 0); // entry at the nop
    Verifier v(test_key());
    VerifyReport r = v.verify(image);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 1);
}

TEST(Verifier, Stage1RejectsUndecodableReachableBytes)
{
    Assembler a;
    a.cfi_label(0);
    a.raw({0xEE, 0xEE}); // invalid opcode reachable by fallthrough
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 1);
}

TEST(Verifier, Stage1RejectsJumpOutsideCode)
{
    Assembler a;
    a.cfi_label(0);
    a.jmp("far");
    // Bind "far" past the end by appending raw space then the label.
    a.raw(Bytes(16, 0x00));
    a.bind("far");
    // "far" is inside; craft an actually-outside jump manually:
    isa::Instruction j;
    j.op = isa::Opcode::kJmp;
    j.imm = 1 << 20; // far beyond code end
    a.emit(j);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 1);
}

TEST(Verifier, Stage1RejectsOverlappingInstructions)
{
    // A direct jump into the immediate of a mov creates a second,
    // overlapping decode of the same bytes.
    Assembler b;
    b.cfi_label(0);
    isa::Instruction jcc;
    jcc.op = isa::Opcode::kJcc;
    jcc.cond = Cond::kEq;
    jcc.imm = 3; // skips into the middle of the next mov_ri
    b.emit(jcc);
    b.mov_ri(1, 42);
    b.hlt();
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(b));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 1);
}

// ---- stage 2: dangerous instructions ---------------------------------------

TEST(Verifier, Stage2RejectsDangerousInstructions)
{
    auto build = [&](void (*emit)(Assembler &)) {
        Assembler a;
        a.cfi_label(0);
        emit(a);
        spin(a);
        return image_from(a);
    };
    Verifier v(test_key());
    for (auto emit : {+[](Assembler &a) { a.ltrap(); },
                      +[](Assembler &a) { a.eexit(); },
                      +[](Assembler &a) { a.hlt(); },
                      +[](Assembler &a) { a.xrstor(); },
                      +[](Assembler &a) { a.wrfsbase(2); },
                      +[](Assembler &a) { a.bndmk(0, mem_bd(1, 0)); }}) {
        VerifyReport r = v.verify(build(emit));
        EXPECT_FALSE(r.ok);
        EXPECT_EQ(r.failed_stage, 2) << r.reason;
    }
}

// ---- stage 3: control transfers -------------------------------------------

TEST(Verifier, Stage3RejectsUnguardedIndirectJump)
{
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(2, 0x1000);
    a.jmp_reg(2);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 3);
}

TEST(Verifier, Stage3RejectsRet)
{
    Assembler a;
    a.cfi_label(0);
    a.ret();
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 3);
}

TEST(Verifier, Stage3RejectsMemoryIndirectTransfers)
{
    Assembler a;
    a.cfi_label(0);
    a.jmp_mem(mem_bd(1, 0));
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 3);
}

TEST(Verifier, Stage1RejectsEmbeddedLabelMagic)
{
    // The cfi_label "nonexistence" property (paper §4.2): even an
    // *immediate* containing the 4 magic bytes becomes a disassembly
    // root and produces overlapping instructions — rejected.
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(isa::kScratch,
             static_cast<int64_t>(isa::cfi_label_value(0)));
    spin(a);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 1) << r.reason;
}

TEST(Verifier, Stage3RejectsDirectJumpIntoGuardInterior)
{
    // Attacker constructs the label value arithmetically (embedding
    // the magic bytes directly is caught by stage 1), then jumps to
    // the bndcl, skipping the cfi_guard's load.
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(isa::kScratch,
             static_cast<int64_t>(isa::cfi_label_value(0) >> 8));
    a.shl_ri(isa::kScratch, 8);
    a.or_ri(isa::kScratch,
            static_cast<int32_t>(isa::cfi_label_value(0) & 0xff));
    a.mov_ri(2, 0x2000);
    a.jmp("interior");
    // Hand-assembled cfi_guard with a label on its bndcl member.
    a.load(isa::kScratch, mem_bd(2, 0));
    a.bind("interior");
    a.bndcl_reg(isa::kBndCfi, isa::kScratch);
    a.bndcu_reg(isa::kBndCfi, isa::kScratch);
    a.jmp_reg(2);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 3) << r.reason;
}

TEST(Verifier, Stage3RejectsJumpTargetingIndirectTransfer)
{
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(2, 0x2000);
    a.jmp("the_jump");
    a.cfi_guard(2);
    a.bind("the_jump");
    a.jmp_reg(2);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 3);
}

// ---- stage 4: memory accesses ----------------------------------------------

TEST(Verifier, Stage4RejectsUnguardedStore)
{
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(1, 0x12345000);
    a.store(mem_bd(1, 0), 2);
    spin(a);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 4);
}

TEST(Verifier, Stage4AcceptsGuardedStore)
{
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(1, 0x12345000);
    a.mem_guard(mem_bd(1, 0));
    a.store(mem_bd(1, 0), 2);
    a.bind("spin");
    a.jmp("spin");
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_TRUE(r.ok) << r.reason << " @" << r.fail_address;
}

TEST(Verifier, Stage4RejectsGuardThenClobberThenStore)
{
    // The guard's refinement dies when the register is rewritten.
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(1, 0x12345000);
    a.mem_guard(mem_bd(1, 0));
    a.mov_ri(1, 0x66660000); // clobber after the check
    a.store(mem_bd(1, 0), 2);
    spin(a);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 4);
}

TEST(Verifier, Stage4RejectsDriftBeyondGuardRegion)
{
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(1, 0x12345000);
    a.mem_guard(mem_bd(1, 0));
    a.add_ri(1, 8192); // farther than the 4 KiB guard region
    a.store(mem_bd(1, 0), 2);
    spin(a);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 4);
}

TEST(Verifier, Stage4AcceptsSmallDriftWithinGuardRegion)
{
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(1, 0x12345000);
    a.mem_guard(mem_bd(1, 0));
    a.store(mem_bd(1, 0), 2); // success pins the EA inside D
    a.add_ri(1, 512);
    a.store(mem_bd(1, 0), 2); // within the guard window
    a.bind("spin");
    a.jmp("spin");
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_TRUE(r.ok) << r.reason;
}

TEST(Verifier, Stage4RejectsDirectMemoryOffset)
{
    Assembler a;
    a.cfi_label(0);
    a.load(2, mem_abs(0x7000));
    spin(a);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 4);
}

TEST(Verifier, Stage4RejectsVectorSib)
{
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(1, 0);
    a.mov_ri(2, 0);
    a.vgather(3, mem_sib(1, 2, 3, 0));
    spin(a);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 4);
}

TEST(Verifier, Stage4RejectsRunawayStackPointer)
{
    Assembler a;
    a.cfi_label(0);
    a.mov_ri(isa::kSp, 0x40000000); // forge sp
    a.push(2);
    spin(a);
    Verifier v(test_key());
    VerifyReport r = v.verify(image_from(a));
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.failed_stage, 4);
}

// ---- signing -----------------------------------------------------------------

TEST(Verifier, SignsOnlyVerifiedImages)
{
    auto good = toolchain::compile("func main() { return 1; }");
    ASSERT_TRUE(good.ok());
    Verifier v(test_key());
    auto signed_image = v.verify_and_sign(good.value().image);
    ASSERT_TRUE(signed_image.ok());
    EXPECT_TRUE(signed_image.value().check_signature(test_key()));

    CompileOptions plain;
    plain.instrument = InstrumentOptions::none();
    auto bad = toolchain::compile("func main() { return 1; }", plain);
    ASSERT_TRUE(bad.ok());
    EXPECT_FALSE(v.verify_and_sign(bad.value().image).ok());
}

} // namespace
} // namespace occlum::verifier
