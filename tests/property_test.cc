/**
 * @file
 * Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
 *  - pipeline property: every MiniC program compiled with *any*
 *    instrumentation level computes the same result on the Linux
 *    model, and the fully-instrumented build verifies and runs to the
 *    same result under Occlum;
 *  - EncFs round-trip property across file sizes and chunk sizes;
 *  - verifier robustness: random byte mutations of a signed image are
 *    never loadable by the Occlum loader (signature), and mutated
 *    *unsigned* images never crash the verifier.
 */
#include <gtest/gtest.h>

#include "base/rng.h"
#include "baseline/linux_system.h"
#include "libos/occlum_system.h"
#include "toolchain/minic.h"
#include "verifier/verifier.h"
#include "workloads/workloads.h"

namespace occlum {
namespace {

// ---------------------------------------------------------------------
// Equivalence across instrumentation levels and systems
// ---------------------------------------------------------------------

struct ProgramCase {
    const char *name;
    const char *source;
};

class InstrumentEquivalence
    : public ::testing::TestWithParam<ProgramCase>
{
};

int64_t
run_linux(const Bytes &image)
{
    SimClock clock;
    host::HostFileStore files;
    files.put("p", image);
    baseline::LinuxSystem sys(clock, files);
    auto pid = sys.spawn("p", {"p"});
    EXPECT_TRUE(pid.ok());
    sys.run();
    auto code = sys.exit_code(pid.value());
    return code.ok() ? code.value() : -999;
}

int64_t
run_occlum(const Bytes &image)
{
    sgx::Platform platform;
    host::HostFileStore files;
    files.put("p", image);
    libos::OcclumSystem::Config config;
    config.verifier_key = workloads::bench_verifier_key();
    libos::OcclumSystem sys(platform, files, config);
    auto pid = sys.spawn("p", {"p"});
    EXPECT_TRUE(pid.ok()) << (pid.ok() ? "" : pid.error().message);
    if (!pid.ok()) return -998;
    sys.run();
    auto code = sys.exit_code(pid.value());
    return code.ok() ? code.value() : -997;
}

TEST_P(InstrumentEquivalence, SameResultEverywhere)
{
    const ProgramCase &c = GetParam();
    toolchain::CompileOptions plain;
    plain.instrument = toolchain::InstrumentOptions::none();
    auto base = toolchain::compile(c.source, plain);
    ASSERT_TRUE(base.ok()) << base.error().message;
    int64_t expect = run_linux(base.value().image.serialize());

    // Every instrumentation level agrees on the Linux model.
    for (auto instrument :
         {toolchain::InstrumentOptions{true, false, false, false},
          toolchain::InstrumentOptions{true, true, false, false},
          toolchain::InstrumentOptions::naive(),
          toolchain::InstrumentOptions{true, true, true, true}}) {
        toolchain::CompileOptions options;
        options.instrument = instrument;
        auto out = toolchain::compile(c.source, options);
        ASSERT_TRUE(out.ok()) << out.error().message;
        EXPECT_EQ(run_linux(out.value().image.serialize()), expect)
            << c.name;
    }

    // The full build verifies and produces the same result as a SIP.
    workloads::ProgramBuild build = workloads::build_program(c.source);
    EXPECT_EQ(run_occlum(build.occlum), expect) << c.name;
}

const ProgramCase kPrograms[] = {
    {"collatz", R"(
func main() {
    var n = 27;
    var steps = 0;
    while (n != 1) {
        if ((n % 2) == 0) { n = n / 2; } else { n = 3 * n + 1; }
        steps = steps + 1;
    }
    return steps;  // 111
}
)"},
    {"sieve", R"(
global byte comp[1000];
func main() {
    var count = 0;
    for (i = 2; i < 1000; i = i + 1) {
        if (comp[i] == 0) {
            count = count + 1;
            var j = i + i;
            while (j < 1000) {
                comp[j] = 1;
                j = j + i;
            }
        }
    }
    return count % 256;  // 168 primes below 1000
}
)"},
    {"strings", R"(
global byte buf[128];
func main() {
    strcpy(buf, "alpha");
    strcat(buf, "-beta");
    if (strcmp(buf, "alpha-beta") != 0) { return 1; }
    if (strlen(buf) != 10) { return 2; }
    if (memcmp(buf, "alpha", 5) != 0) { return 3; }
    return atoi("123") - 23;  // 100
}
)"},
    {"heapsort", R"(
global int a[128];
func main() {
    var seed = 7;
    for (i = 0; i < 128; i = i + 1) {
        seed = (seed * 1103515245 + 12345) & 0x7fffffff;
        a[i] = seed % 1000;
    }
    // insertion sort
    for (i = 1; i < 128; i = i + 1) {
        var key = a[i];
        var j = i - 1;
        while (j >= 0) {
            if (a[j] <= key) { break; }
            a[j + 1] = a[j];
            j = j - 1;
        }
        a[j + 1] = key;
    }
    for (i = 1; i < 128; i = i + 1) {
        if (a[i - 1] > a[i]) { return 255; }
    }
    return a[64] % 251;
}
)"},
    {"pointers", R"(
func main() {
    var p = malloc(256);
    if (p == 0) { return 1; }
    for (i = 0; i < 32; i = i + 1) { wstore(p + i * 8, i * i); }
    var sum = 0;
    for (i = 0; i < 32; i = i + 1) { sum = sum + wload(p + i * 8); }
    return sum % 256;  // 9920 % 256 = 192
}
)"},
    {"recursion", R"(
func ack(m, n) {
    if (m == 0) { return n + 1; }
    if (n == 0) { return ack(m - 1, 1); }
    return ack(m - 1, ack(m, n - 1));
}
func main() { return ack(2, 3); }  // 9
)"},
};

INSTANTIATE_TEST_SUITE_P(
    Programs, InstrumentEquivalence, ::testing::ValuesIn(kPrograms),
    [](const ::testing::TestParamInfo<ProgramCase> &info) {
        return info.param.name;
    });

// ---------------------------------------------------------------------
// EncFs round trips across (file size, chunk size)
// ---------------------------------------------------------------------

class EncFsRoundTrip
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(EncFsRoundTrip, WriteInChunksReadBack)
{
    auto [file_size, chunk] = GetParam();
    SimClock clock;
    host::BlockDevice device(clock, 4096);
    libos::EncFs::Config config;
    config.key[0] = 9;
    libos::EncFs fs(device, clock, config);
    ASSERT_TRUE(fs.mkfs().ok());

    Rng rng(file_size * 31 + chunk);
    Bytes data(file_size);
    for (auto &b : data) {
        b = static_cast<uint8_t>(rng.next());
    }
    auto inode = fs.open_inode("/f", true, false);
    ASSERT_TRUE(inode.ok());
    for (size_t off = 0; off < data.size(); off += chunk) {
        size_t n = std::min(chunk, data.size() - off);
        ASSERT_TRUE(
            fs.write(inode.value(), off, data.data() + off, n).ok());
    }
    ASSERT_TRUE(fs.sync().ok());
    auto back = fs.read_file("/f");
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), data);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, EncFsRoundTrip,
    ::testing::Combine(::testing::Values(1, 100, 4096, 5000, 200000),
                       ::testing::Values(7, 512, 4096)));

// ---------------------------------------------------------------------
// EncFs random-operation equivalence with a shadow file
// ---------------------------------------------------------------------

/** (cache_blocks, readahead_blocks) — stresses the eviction path with
 *  a 1-block cache and the prefetch path with readahead on. */
class EncFsRandomOps
    : public ::testing::TestWithParam<std::tuple<size_t, size_t>>
{
};

TEST_P(EncFsRandomOps, MatchesShadowFile)
{
    auto [cache_blocks, readahead] = GetParam();
    constexpr uint64_t kMaxSize = 256 * 1024;
    constexpr uint64_t kMaxIo = 10000; // spans multiple blocks
    constexpr int kOps = 300;

    SimClock clock;
    host::BlockDevice device(clock, 4096);
    libos::EncFs::Config config;
    config.key[0] = 77;
    config.cache_blocks = cache_blocks;
    config.readahead_blocks = readahead;
    libos::EncFs fs(device, clock, config);
    ASSERT_TRUE(fs.mkfs().ok());
    auto inode = fs.open_inode("/rand", true, false);
    ASSERT_TRUE(inode.ok());

    Bytes shadow; // what the file must logically contain
    Rng rng(cache_blocks * 1000003 + readahead * 131 + 5);
    for (int op = 0; op < kOps; ++op) {
        uint64_t kind = rng.next() % 10;
        uint64_t off = rng.next() % kMaxSize;
        uint64_t len = 1 + rng.next() % kMaxIo;
        if (kind < 4) { // write random bytes (may extend, may hole-fill)
            Bytes data(len);
            for (auto &b : data) {
                b = static_cast<uint8_t>(rng.next());
            }
            auto n = fs.write(inode.value(), off, data.data(), len);
            ASSERT_TRUE(n.ok());
            ASSERT_EQ(n.value(), static_cast<int64_t>(len));
            if (off + len > shadow.size()) {
                shadow.resize(off + len, 0); // implicit hole = zeros
            }
            std::copy(data.begin(), data.end(), shadow.begin() + off);
        } else if (kind < 9) { // read, pread-style short at EOF
            Bytes out(len);
            auto n = fs.read(inode.value(), off, out.data(), len);
            ASSERT_TRUE(n.ok());
            uint64_t expect =
                off >= shadow.size()
                    ? 0
                    : std::min<uint64_t>(len, shadow.size() - off);
            ASSERT_EQ(n.value(), static_cast<int64_t>(expect));
            for (uint64_t i = 0; i < expect; ++i) {
                ASSERT_EQ(out[i], shadow[off + i]) << "op " << op;
            }
        } else { // flush everything to the device
            ASSERT_TRUE(fs.sync().ok());
        }
    }

    auto size = fs.file_size(inode.value());
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(size.value(), shadow.size());
    ASSERT_TRUE(fs.sync().ok());

    // Remount from the device: everything must have hit persistent
    // storage with valid MACs and still equal the shadow.
    libos::EncFs fs2(device, clock, config);
    ASSERT_TRUE(fs2.mount().ok());
    auto back = fs2.read_file("/rand");
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), shadow);
}

INSTANTIATE_TEST_SUITE_P(
    CacheShapes, EncFsRandomOps,
    ::testing::Combine(::testing::Values(1, 2, 2048),
                       ::testing::Values(0, 8)));

// ---------------------------------------------------------------------
// Mutation robustness
// ---------------------------------------------------------------------

class MutationRobustness : public ::testing::TestWithParam<int>
{
};

TEST_P(MutationRobustness, MutatedImagesNeverLoadOrCrash)
{
    workloads::ProgramBuild build = workloads::build_program(
        "func main() { return 5; }");
    Rng rng(GetParam());

    // (a) one-byte mutations of the *signed* image: the Occlum loader
    //     must reject every one of them (HMAC signature).
    sgx::Platform platform;
    host::HostFileStore files;
    libos::OcclumSystem::Config config;
    config.verifier_key = workloads::bench_verifier_key();
    libos::OcclumSystem sys(platform, files, config);
    for (int trial = 0; trial < 20; ++trial) {
        Bytes mutated = build.occlum;
        mutated[rng.next_below(mutated.size())] ^=
            static_cast<uint8_t>(1 + rng.next_below(255));
        files.put("m", mutated);
        auto pid = sys.spawn("m", {"m"});
        EXPECT_FALSE(pid.ok());
    }

    // (b) random mutations fed straight to the verifier: must never
    //     crash, and (since the image content changed) must reject or
    //     accept deterministically twice in a row.
    verifier::Verifier verifier(workloads::bench_verifier_key());
    for (int trial = 0; trial < 10; ++trial) {
        Bytes mutated = build.occlum;
        for (int i = 0; i < 8; ++i) {
            mutated[rng.next_below(mutated.size())] =
                static_cast<uint8_t>(rng.next());
        }
        auto parsed = oelf::Image::parse(mutated);
        if (!parsed.ok()) {
            continue;
        }
        auto first = verifier.verify(parsed.value());
        auto second = verifier.verify(parsed.value());
        EXPECT_EQ(first.ok, second.ok);
        EXPECT_EQ(first.failed_stage, second.failed_stage);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationRobustness,
                         ::testing::Values(1, 2, 3, 4));

} // namespace
} // namespace occlum
