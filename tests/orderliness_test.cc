/**
 * @file
 * Adversarial battery for the transition-orderliness monitor
 * (src/sgx/monitor.h, DESIGN.md §9): the automaton itself, the
 * SmashEx-shaped attacks it must refuse (nested EENTER and rebind on
 * an occupied SSA frame, NSSA=1), a field-by-field audit that the
 * post-AEX scrub leaks nothing SSA-resident, AEX storms at
 * syscall-trampoline boundaries and per-core rebind points across
 * cores {1,2,4}, every scripts/ci_faults.sh plan, and a one-shot
 * AEX-at-ordinal sweep over the epoll reverse proxy asserting
 * bit-identical completion order run-to-run with zero violations.
 */
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "faultsim/faultsim.h"
#include "host/host.h"
#include "libos/occlum_system.h"
#include "sgx/monitor.h"
#include "sgx/sgx.h"
#include "toolchain/minic.h"
#include "verifier/verifier.h"
#include "workloads/workloads.h"

namespace occlum {
namespace {

using faultsim::FaultPlan;
using faultsim::FaultSim;
using faultsim::ScopedFaultPlan;
using faultsim::Site;
using sgx::TcsPhase;
using sgx::Transition;
using sgx::TransitionMonitor;

constexpr uint64_t kEnclaveBase = 0x10000000;

/** Force-enable the monitor (and optionally un-strict it) for the
 *  scope of a test, restoring whatever the environment configured.
 *  The unit tests below feed the monitor deliberate violations, which
 *  under OCCLUM_ORDERLINESS=strict would (correctly) panic. */
struct ScopedMonitorMode {
    bool enabled0;
    bool strict0;
    explicit ScopedMonitorMode(bool strict = false)
        : enabled0(TransitionMonitor::instance().enabled()),
          strict0(TransitionMonitor::instance().strict())
    {
        TransitionMonitor::instance().set_enabled(true);
        TransitionMonitor::instance().set_strict(strict);
    }
    ~ScopedMonitorMode()
    {
        TransitionMonitor::instance().set_enabled(enabled0);
        TransitionMonitor::instance().set_strict(strict0);
    }
};

// ---------------------------------------------------------------------
// The automaton itself
// ---------------------------------------------------------------------

TEST(MonitorAutomaton, LegalRoundTripAdvancesThePhase)
{
    ScopedMonitorMode mode;
    TransitionMonitor &mon = TransitionMonitor::instance();
    const uint64_t violations0 = mon.violations();
    const uint64_t events0 = mon.events();

    int tcs = mon.register_tcs(TcsPhase::kOutside);
    EXPECT_TRUE(mon.record(tcs, Transition::kEenter, 10));
    EXPECT_EQ(mon.phase(tcs), TcsPhase::kInside);
    EXPECT_TRUE(mon.record(tcs, Transition::kAex, 20));
    EXPECT_EQ(mon.phase(tcs), TcsPhase::kAexed);
    EXPECT_TRUE(mon.record(tcs, Transition::kEresume, 30));
    EXPECT_EQ(mon.phase(tcs), TcsPhase::kInside);
    EXPECT_TRUE(mon.record(tcs, Transition::kEexit, 40));
    EXPECT_EQ(mon.phase(tcs), TcsPhase::kOutside);
    // BIND is legal outside and inside, never mid-AEX.
    EXPECT_TRUE(mon.record(tcs, Transition::kBind, 50));
    EXPECT_EQ(mon.phase(tcs), TcsPhase::kOutside);

    EXPECT_EQ(mon.violations(), violations0);
    EXPECT_EQ(mon.events(), events0 + 5);
}

TEST(MonitorAutomaton, RefusalsAreLegalEverywhereAndNeverAdvance)
{
    ScopedMonitorMode mode;
    TransitionMonitor &mon = TransitionMonitor::instance();
    const uint64_t violations0 = mon.violations();
    const uint64_t refusals0 = mon.refusals();

    int tcs = mon.register_tcs(TcsPhase::kAexed);
    for (Transition t :
         {Transition::kEenterRefused, Transition::kEexitRefused,
          Transition::kAexRefused, Transition::kEresumeRefused,
          Transition::kBindRefused}) {
        EXPECT_TRUE(mon.record(tcs, t, 1));
        EXPECT_EQ(mon.phase(tcs), TcsPhase::kAexed);
    }
    EXPECT_EQ(mon.refusals(), refusals0 + 5);
    EXPECT_EQ(mon.violations(), violations0);
}

TEST(MonitorAutomaton, IllegalTransitionsAreCountedNotServiced)
{
    ScopedMonitorMode mode(/*strict=*/false);
    TransitionMonitor &mon = TransitionMonitor::instance();
    const uint64_t violations0 = mon.violations();

    // AEX and ERESUME with no enclave context, EENTER while busy,
    // BIND mid-AEX: every edge the automaton must reject.
    int tcs = mon.register_tcs(TcsPhase::kOutside);
    EXPECT_FALSE(mon.record(tcs, Transition::kAex, 7));
    EXPECT_EQ(mon.phase(tcs), TcsPhase::kOutside); // not advanced
    EXPECT_FALSE(mon.record(tcs, Transition::kEresume, 8));
    EXPECT_FALSE(mon.record(tcs, Transition::kEexit, 9));

    int busy = mon.register_tcs(TcsPhase::kInside);
    EXPECT_FALSE(mon.record(busy, Transition::kEenter, 10));
    EXPECT_EQ(mon.phase(busy), TcsPhase::kInside);

    int aexed = mon.register_tcs(TcsPhase::kAexed);
    EXPECT_FALSE(mon.record(aexed, Transition::kBind, 11));
    EXPECT_FALSE(mon.record(aexed, Transition::kEenter, 12)); // SmashEx
    EXPECT_EQ(mon.phase(aexed), TcsPhase::kAexed);

    EXPECT_EQ(mon.violations(), violations0 + 6);
    ASSERT_FALSE(mon.violation_log().empty());
    const sgx::TransitionRecord &rec = mon.violation_log().back();
    EXPECT_TRUE(rec.illegal);
    EXPECT_EQ(rec.cycles, 12u);
}

// ---------------------------------------------------------------------
// SmashEx-shaped attacks against a real SgxThread
// ---------------------------------------------------------------------

std::unique_ptr<sgx::Enclave>
make_enclave(sgx::Platform &platform)
{
    auto enclave = std::make_unique<sgx::Enclave>(platform, kEnclaveBase,
                                                  uint64_t{1} << 20);
    EXPECT_TRUE(enclave->add_pages(kEnclaveBase, vm::kPageSize,
                                   vm::kPermRX)
                    .ok());
    EXPECT_TRUE(enclave->init().ok());
    return enclave;
}

TEST(SmashExBattery, NestedEenterOnOccupiedSsaFrameIsRefused)
{
    ScopedMonitorMode mode(/*strict=*/true); // a serviced one would panic
    TransitionMonitor &mon = TransitionMonitor::instance();
    const uint64_t violations0 = mon.violations();
    const uint64_t refusals0 = mon.refusals();

    sgx::Platform platform;
    auto enclave = make_enclave(platform);
    sgx::SgxThread thread(*enclave); // starts kInside

    // Take the asynchronous exit: the single SSA frame is now full.
    ASSERT_TRUE(thread.try_aex());
    ASSERT_TRUE(thread.in_aex());

    // The attack: re-enter while the exception context is parked.
    // Real SGX faults this EENTER (no free SSA frame, NSSA=1); the
    // simulation must refuse with EBUSY, not service it.
    Status entered = thread.enter();
    ASSERT_FALSE(entered.ok());
    EXPECT_EQ(entered.code(), ErrorCode::kBusy);
    EXPECT_TRUE(thread.in_aex()); // phase untouched by the refusal

    // ...and ERESUME is still the one legal way forward.
    ASSERT_TRUE(thread.try_resume());
    EXPECT_FALSE(thread.in_aex());

    EXPECT_EQ(mon.violations(), violations0);
    EXPECT_GE(mon.refusals(), refusals0 + 1);
}

TEST(SmashExBattery, RebindMidAexIsRefusedAndRecorded)
{
    ScopedMonitorMode mode(/*strict=*/true);
    TransitionMonitor &mon = TransitionMonitor::instance();
    const uint64_t violations0 = mon.violations();
    const uint64_t refusals0 = mon.refusals();

    sgx::Platform platform;
    auto enclave = make_enclave(platform);
    vm::Cpu first(enclave->mem());
    vm::Cpu second(enclave->mem());
    sgx::SgxThread thread(*enclave, first);

    ASSERT_TRUE(thread.try_aex());
    EXPECT_FALSE(thread.try_bind(second)); // would orphan the SSA frame
    EXPECT_EQ(&thread.cpu(), &first);

    ASSERT_TRUE(thread.try_resume());
    EXPECT_TRUE(thread.try_bind(second)); // legal again after ERESUME
    EXPECT_EQ(&thread.cpu(), &second);

    EXPECT_EQ(mon.violations(), violations0);
    EXPECT_GE(mon.refusals(), refusals0 + 1);
}

TEST(SmashExBattery, AexScrubLeaksNoSsaResidentField)
{
    // If vm::CpuState grows a field, this walk silently goes stale —
    // fail the build instead so the scrub audit gets extended.
    static_assert(sizeof(vm::CpuState) ==
                      sizeof(std::array<uint64_t, isa::kNumRegs>) +
                          sizeof(std::array<vm::BoundReg,
                                            isa::kNumBndRegs>) +
                          16 /* Flags (padded) + rip */,
                  "vm::CpuState changed: extend the scrub walk below");

    sgx::Platform platform;
    auto enclave = make_enclave(platform);
    sgx::SgxThread thread(*enclave);

    // Stamp a recognizable secret into every architectural field the
    // SSA snapshot covers.
    vm::CpuState secret;
    for (int i = 0; i < isa::kNumRegs; ++i) {
        secret.regs[i] = 0x5ec2e7005ec2e700ull + i;
    }
    for (int i = 0; i < isa::kNumBndRegs; ++i) {
        secret.bnds[i] = vm::BoundReg{0x1000ull + i, 0x2000ull + i};
    }
    secret.flags.zf = true;
    secret.flags.sf = true;
    secret.flags.cf = true;
    secret.flags.of = true;
    secret.rip = 0x4242;
    thread.cpu().set_state(secret);

    ASSERT_TRUE(thread.try_aex());

    // Walk every field of the host-visible state: nothing stamped may
    // survive the scrub.
    const vm::CpuState &host = thread.cpu().state();
    for (int i = 0; i < isa::kNumRegs; ++i) {
        EXPECT_EQ(host.regs[i], 0xae00ae00ae00ae00ull + i) << "reg " << i;
    }
    for (int i = 0; i < isa::kNumBndRegs; ++i) {
        EXPECT_EQ(host.bnds[i].lo, 0u) << "bnd " << i;
        EXPECT_EQ(host.bnds[i].hi, ~0ull) << "bnd " << i;
    }
    EXPECT_FALSE(host.flags.zf); // comparison flags are an SSA field
    EXPECT_FALSE(host.flags.sf); // too: cmp results leak a secret's
    EXPECT_FALSE(host.flags.cf); // ordering one bit at a time
    EXPECT_FALSE(host.flags.of);
    EXPECT_EQ(host.rip, 0u);

    // ...and ERESUME restores every one of them exactly.
    ASSERT_TRUE(thread.try_resume());
    const vm::CpuState &back = thread.cpu().state();
    EXPECT_EQ(back.regs, secret.regs);
    for (int i = 0; i < isa::kNumBndRegs; ++i) {
        EXPECT_EQ(back.bnds[i].lo, secret.bnds[i].lo);
        EXPECT_EQ(back.bnds[i].hi, secret.bnds[i].hi);
    }
    EXPECT_TRUE(back.flags.zf && back.flags.sf && back.flags.cf &&
                back.flags.of);
    EXPECT_EQ(back.rip, secret.rip);
}

// ---------------------------------------------------------------------
// AEX storms over the Occlum system, cores x period
// ---------------------------------------------------------------------

crypto::Key128
vkey()
{
    crypto::Key128 key{};
    key[3] = 0x77;
    return key;
}

Bytes
build_signed(const std::string &source)
{
    auto out = toolchain::compile(source);
    EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().message);
    verifier::Verifier verifier(vkey());
    auto signed_image = verifier.verify_and_sign(out.value().image);
    EXPECT_TRUE(signed_image.ok());
    return signed_image.value().serialize();
}

/** A parent spawning workers that hammer the syscall trampoline: each
 *  write() ends a quantum, so an AEX storm lands injections at the
 *  EEXIT/EENTER boundaries and at the per-core rebind points the SMP
 *  scheduler crosses when the SIPs migrate. */
const char *kWorkerSource = R"(
global byte msg[2] = ".";
func main() {
    var i = 0;
    var acc = 3;
    while (i < 120) {
        acc = acc * 17 + 5;
        write(1, msg, 1);
        i = i + 1;
    }
    return acc & 63;
}
)";

const char *kParentSource = R"(
global byte child[8] = "work";
global int pids[8];
func main() {
    var argvv[1];
    argvv[0] = child;
    var i = 0;
    while (i < 5) {
        pids[i] = spawn(child, argvv, 1);
        if (pids[i] < 0) { return 1; }
        i = i + 1;
    }
    var sum = 0;
    i = 0;
    while (i < 5) {
        sum = sum + waitpid(pids[i]);
        i = i + 1;
    }
    print_int(sum);
    return 0;
}
)";

struct StormResult {
    std::string console;
    int64_t exit_code = -1;
    uint64_t cycles = 0;
    uint64_t violations_delta = 0;
    uint64_t aex_fires_delta = 0;
};

StormResult
run_storm(int cores, uint64_t aex_every, uint64_t seed)
{
    // Restart any ambient OCCLUM_FAULT_PLAN's streams so repeated
    // runs replay the identical fault schedule.
    FaultSim::instance().reseed();
    std::unique_ptr<ScopedFaultPlan> scoped;
    if (aex_every != 0) {
        FaultPlan plan;
        plan.seed = seed;
        plan.aex_every = aex_every;
        scoped = std::make_unique<ScopedFaultPlan>(plan);
    }
    const uint64_t violations0 = TransitionMonitor::instance().violations();
    const uint64_t fires0 = FaultSim::instance().fires(Site::kAex);

    sgx::Platform platform;
    host::HostFileStore files;
    files.put("parent", build_signed(kParentSource));
    files.put("work", build_signed(kWorkerSource));
    libos::OcclumSystem::Config config;
    config.num_slots = 8;
    config.fs_blocks = 1 << 10;
    config.verifier_key = vkey();
    config.cores = cores;
    libos::OcclumSystem sys(platform, files, config);

    auto pid = sys.spawn("parent", {"parent"});
    EXPECT_TRUE(pid.ok());
    sys.run();

    StormResult r;
    r.console = sys.console();
    r.exit_code = sys.exit_code(pid.value()).value();
    r.cycles = sys.clock().cycles();
    r.violations_delta =
        TransitionMonitor::instance().violations() - violations0;
    r.aex_fires_delta = FaultSim::instance().fires(Site::kAex) - fires0;
    return r;
}

TEST(OrderlinessBattery, AexStormsAcrossCoresProduceZeroViolations)
{
    ScopedMonitorMode mode(/*strict=*/true); // any illegal path panics
    for (int cores : {1, 2, 4}) {
        StormResult clean = run_storm(cores, 0, 0);
        ASSERT_EQ(clean.exit_code, 0) << "cores " << cores;
        EXPECT_EQ(clean.violations_delta, 0u);
        for (uint64_t period : {uint64_t{1}, uint64_t{64},
                                uint64_t{1024}}) {
            StormResult storm = run_storm(cores, period, 900 + period);
            StormResult again = run_storm(cores, period, 900 + period);
            EXPECT_EQ(storm.violations_delta, 0u)
                << "cores " << cores << " period " << period;
            EXPECT_GT(storm.aex_fires_delta, 0u)
                << "cores " << cores << " period " << period;
            // Transparent to the workload...
            EXPECT_EQ(storm.console, clean.console)
                << "cores " << cores << " period " << period;
            EXPECT_EQ(storm.exit_code, clean.exit_code);
            // ...and bit-identical run to run.
            EXPECT_EQ(storm.cycles, again.cycles)
                << "cores " << cores << " period " << period;
            EXPECT_EQ(storm.console, again.console);
        }
    }
}

TEST(OrderlinessBattery, EveryCiFaultPlanProducesZeroViolations)
{
    // The plan strings scripts/ci_faults.sh drives tier-1 with; plan 7
    // is the orderliness-strict AEX storm. Keep in sync with the
    // script.
    const char *kPlans[] = {
        "seed=101;aex_every=4096",
        "seed=202;dev_read_transient=0.02;dev_write_transient=0.02",
        "seed=303;net_drop=0.05;net_dup=0.05;net_short_read=0.25",
        "seed=404;net_drop=0.05;net_dup=0.05;aex_every=2048",
        "seed=505;net_drop=0.08;net_dup=0.08;net_short_read=0.25;"
        "aex_every=2048",
        "seed=606;net_drop=0.05;net_dup=0.05;net_short_read=0.25;"
        "aex_every=2048",
        "seed=777;aex_every=768",
    };
    ScopedMonitorMode mode(/*strict=*/true);
    for (const char *text : kPlans) {
        auto plan = FaultPlan::parse(text);
        ASSERT_TRUE(plan.ok()) << text;
        ScopedFaultPlan scoped(plan.value());
        const uint64_t violations0 =
            TransitionMonitor::instance().violations();

        sgx::Platform platform;
        host::HostFileStore files;
        files.put("parent", build_signed(kParentSource));
        files.put("work", build_signed(kWorkerSource));
        libos::OcclumSystem::Config config;
        config.num_slots = 8;
        config.fs_blocks = 1 << 10;
        config.verifier_key = vkey();
        config.cores = 4;
        libos::OcclumSystem sys(platform, files, config);
        auto pid = sys.spawn("parent", {"parent"});
        ASSERT_TRUE(pid.ok()) << text;
        sys.run();
        EXPECT_EQ(sys.exit_code(pid.value()).value(), 0) << text;
        EXPECT_EQ(TransitionMonitor::instance().violations(), violations0)
            << text;
    }
}

// ---------------------------------------------------------------------
// One-shot AEX at an exact instruction ordinal, over the epoll proxy
// ---------------------------------------------------------------------

constexpr uint16_t kPort = 8080;
constexpr size_t kResponseBytes = 10240;
constexpr int kProxyRequests = 8;
constexpr int kProxyConcurrency = 2;

/** Closed-loop clients against the proxy (bench_smp leg B, sized for
 *  a test). Asserts on stall instead of spinning forever. */
void
drive_clients(oskit::Kernel &sys, host::NetSim &net)
{
    struct Client {
        host::NetSim::Connection *conn = nullptr;
        size_t received = 0;
    };
    std::vector<Client> clients(kProxyConcurrency);
    const char *request = "GET /page.html HTTP/1.1\r\n\r\n";
    int issued = 0;
    int completed = 0;

    auto start_request = [&](Client &client) {
        if (issued >= kProxyRequests) {
            client.conn = nullptr;
            return;
        }
        auto conn = net.connect(kPort);
        ASSERT_TRUE(conn.ok()) << conn.error().message;
        client.conn = conn.value();
        client.received = 0;
        net.send(client.conn, false,
                 reinterpret_cast<const uint8_t *>(request),
                 strlen(request));
        ++issued;
    };
    for (auto &client : clients) {
        start_request(client);
    }

    uint8_t buf[4096];
    uint64_t stall_guard = 0;
    while (completed < kProxyRequests) {
        bool progress = sys.step_round();
        for (auto &client : clients) {
            if (!client.conn) {
                continue;
            }
            uint64_t next_arrival = ~0ull;
            size_t n = net.recv(client.conn, false, buf, sizeof(buf),
                                sys.clock().cycles(), next_arrival);
            if (n > 0) {
                client.received += n;
                progress = true;
                if (client.received >= kResponseBytes) {
                    net.close(client.conn, false);
                    ++completed;
                    start_request(client);
                }
            }
        }
        if (!progress) {
            uint64_t wake = sys.next_wake_time();
            for (auto &client : clients) {
                if (!client.conn) {
                    continue;
                }
                uint64_t next_arrival = ~0ull;
                net.recv(client.conn, false, buf, 0,
                         sys.clock().cycles(), next_arrival);
                wake = std::min(wake, next_arrival);
            }
            ASSERT_NE(wake, ~0ull) << "proxy run stalled";
            if (wake <= sys.clock().cycles()) {
                ASSERT_LT(++stall_guard, 1000u) << "proxy run stalled";
                continue;
            }
            stall_guard = 0;
            sys.clock().advance(wake - sys.clock().cycles());
        }
    }
}

struct ProxyResult {
    std::vector<int> death_order;
    std::string console;
    uint64_t cycles = 0;
    uint64_t violations_delta = 0;
};

ProxyResult
run_proxy(const workloads::ProgramBuild &frontend,
          const workloads::ProgramBuild &backend, int cores,
          uint64_t aex_at)
{
    FaultSim::instance().reseed(); // see run_storm
    std::unique_ptr<ScopedFaultPlan> scoped;
    if (aex_at != 0) {
        FaultPlan plan;
        plan.seed = 1;
        plan.aex_at = aex_at;
        scoped = std::make_unique<ScopedFaultPlan>(plan);
    }
    const uint64_t violations0 = TransitionMonitor::instance().violations();

    sgx::Platform platform;
    host::NetSim net(platform.clock());
    host::HostFileStore files;
    files.put("proxy_frontend", frontend.occlum);
    files.put("proxy_backend", backend.occlum);
    libos::OcclumSystem::Config config;
    config.num_slots = 8;
    config.slot_code_size = 1 << 20;
    config.slot_data_size = 8 << 20;
    config.verifier_key = workloads::bench_verifier_key();
    config.cores = cores;
    libos::OcclumSystem sys(platform, files, config, &net);

    auto pid = sys.spawn("proxy_frontend",
                         {"proxy_frontend",
                          std::to_string(kProxyRequests),
                          std::to_string(kProxyConcurrency + 16)});
    EXPECT_TRUE(pid.ok());
    sys.run(/*allow_idle=*/true); // frontend + backends parked
    drive_clients(sys, net);
    sys.run(/*allow_idle=*/true); // frontend reaps its backends

    ProxyResult r;
    auto code = sys.exit_code(pid.value());
    EXPECT_TRUE(code.ok() && code.value() == 0)
        << "cores " << cores << " aex_at " << aex_at;
    r.death_order = sys.death_order();
    r.console = sys.console();
    r.cycles = sys.clock().cycles();
    r.violations_delta =
        TransitionMonitor::instance().violations() - violations0;
    return r;
}

TEST(OrderlinessBattery, AexAtOrdinalSweepOverTheEpollProxy)
{
    ScopedMonitorMode mode(/*strict=*/true);
    workloads::ProgramBuild frontend = workloads::build_program(
        workloads::proxy_frontend_source(), 768 << 10);
    workloads::ProgramBuild backend = workloads::build_program(
        workloads::proxy_backend_source(), 768 << 10);

    for (int cores : {1, 4}) {
        ProxyResult clean = run_proxy(frontend, backend, cores, 0);
        EXPECT_EQ(clean.violations_delta, 0u);
        // One-shot injections across the run's life: early (spawn and
        // epoll setup), mid (request pipeline), late (teardown).
        for (uint64_t ordinal : {uint64_t{40}, uint64_t{400},
                                 uint64_t{4000}, uint64_t{20000},
                                 uint64_t{60000}, uint64_t{150000}}) {
            ProxyResult one =
                run_proxy(frontend, backend, cores, ordinal);
            ProxyResult two =
                run_proxy(frontend, backend, cores, ordinal);
            // Completion order matches the clean run: the interrupt
            // is transparent to what the SIPs compute and in which
            // order they finish...
            EXPECT_EQ(one.death_order, clean.death_order)
                << "cores " << cores << " aex_at " << ordinal;
            EXPECT_EQ(one.console, clean.console)
                << "cores " << cores << " aex_at " << ordinal;
            // ...and the perturbed timeline itself is bit-identical
            // run to run.
            EXPECT_EQ(one.cycles, two.cycles)
                << "cores " << cores << " aex_at " << ordinal;
            EXPECT_EQ(one.death_order, two.death_order)
                << "cores " << cores << " aex_at " << ordinal;
            EXPECT_EQ(one.violations_delta, 0u)
                << "cores " << cores << " aex_at " << ordinal;
            EXPECT_EQ(two.violations_delta, 0u)
                << "cores " << cores << " aex_at " << ordinal;
        }
    }
}

} // namespace
} // namespace occlum
