/**
 * @file
 * End-to-end toolchain tests: MiniC programs are compiled (with and
 * without MMDSFI instrumentation) and executed on the Linux-model
 * kernel; their console output and exit codes are checked.
 */
#include <gtest/gtest.h>

#include "baseline/linux_system.h"
#include "toolchain/minic.h"

namespace occlum::toolchain {
namespace {

struct RunResult {
    int64_t exit_code;
    std::string console;
    uint64_t instructions;
};

RunResult
run_minic(const std::string &source, const CompileOptions &options = {},
          const std::vector<std::string> &argv = {"prog"})
{
    auto compiled = compile(source, options);
    EXPECT_TRUE(compiled.ok())
        << (compiled.ok() ? "" : compiled.error().message);
    if (!compiled.ok()) {
        return {-999, "", 0};
    }
    host::HostFileStore files;
    files.put("prog", compiled.value().image.serialize());
    SimClock clock;
    baseline::LinuxSystem sys(clock, files);
    auto pid = sys.spawn("prog", argv);
    EXPECT_TRUE(pid.ok()) << (pid.ok() ? "" : pid.error().message);
    if (!pid.ok()) {
        return {-998, "", 0};
    }
    sys.run();
    auto code = sys.exit_code(pid.value());
    EXPECT_TRUE(code.ok());
    return {code.ok() ? code.value() : -997, sys.console(),
            sys.stats().user_instructions};
}

TEST(MiniC, ReturnsExitCode)
{
    RunResult r = run_minic("func main() { return 42; }");
    EXPECT_EQ(r.exit_code, 42);
}

TEST(MiniC, PrintsHelloWorld)
{
    RunResult r = run_minic(
        "func main() { println(\"Hello, World!\"); return 0; }");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.console, "Hello, World!\n");
}

TEST(MiniC, ArithmeticAndControlFlow)
{
    // Sum of odd squares below 100, computed the long way.
    RunResult r = run_minic(R"(
func square(x) { return x * x; }
func main() {
    var total = 0;
    var i = 0;
    while (i < 100) {
        if ((i % 2) == 1) {
            total = total + square(i);
        }
        i = i + 1;
    }
    print_int(total);
    println("");
    return 0;
}
)");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.console, "166650\n"); // sum of odd i^2, i<100
}

TEST(MiniC, GlobalArraysAndForLoops)
{
    RunResult r = run_minic(R"(
global int fib[30];
func main() {
    fib[0] = 0;
    fib[1] = 1;
    for (i = 2; i < 30; i = i + 1) {
        fib[i] = fib[i - 1] + fib[i - 2];
    }
    return fib[29] % 251;
}
)");
    EXPECT_EQ(r.exit_code, 514229 % 251);
}

TEST(MiniC, ByteArraysAndStrings)
{
    RunResult r = run_minic(R"(
global byte msg[64] = "occlum";
func main() {
    var n = strlen(msg);
    bstore(msg + n, '!');
    bstore(msg + n + 1, 0);
    println(msg);
    return strcmp(msg, "occlum!");
}
)");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.console, "occlum!\n");
}

TEST(MiniC, LocalArraysRecursionMalloc)
{
    RunResult r = run_minic(R"(
func fact(n) {
    if (n <= 1) { return 1; }
    return n * fact(n - 1);
}
func main() {
    var buf[8];
    buf[0] = fact(10);
    var p = malloc(128);
    if (p == 0) { return 1; }
    wstore(p, buf[0]);
    return wload(p) == 3628800;
}
)");
    EXPECT_EQ(r.exit_code, 1);
}

TEST(MiniC, ArgcArgv)
{
    RunResult r = run_minic(R"(
global byte argbuf[64];
func main() {
    print_int(argc());
    getarg(1, argbuf, 64);
    print(" ");
    println(argbuf);
    return 0;
}
)",
                            CompileOptions{}, {"prog", "banana"});
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_EQ(r.console, "2 banana\n");
}

TEST(MiniC, NegativeDivisionAndShifts)
{
    RunResult r = run_minic(R"(
func main() {
    var a = -100;
    var b = a / 7;      // -14
    var c = a % 7;      // -2
    var d = (1 << 40) >> 35; // 32
    var e = (-64) >> 3; // arithmetic: -8
    return (b == -14) + (c == -2) + (d == 32) + (e == -8);
}
)");
    EXPECT_EQ(r.exit_code, 4);
}

TEST(MiniC, LogicalOperatorsShortCircuit)
{
    RunResult r = run_minic(R"(
global int side_effects;
func bump() { side_effects = side_effects + 1; return 1; }
func main() {
    var a = 0;
    if (a && bump()) { return 100; }       // bump not called
    if (!a || bump()) { a = 1; }           // bump not called
    if (a && bump()) { a = 2; }            // bump called
    return side_effects * 10 + a;
}
)");
    EXPECT_EQ(r.exit_code, 12);
}

TEST(MiniC, CompileErrors)
{
    const char *bad_sources[] = {
        "func main() { return undefined_var; }",
        "func main() { nosuchfn(1); }",
        "func main() { return 1; ",              // unterminated block
        "global int x; global int x; func main() { return 0; }",
        "func main(a, b, c, d, e, f) { return 0; }", // too many params
    };
    for (const char *src : bad_sources) {
        auto out = compile(src);
        EXPECT_FALSE(out.ok()) << src;
    }
}

TEST(MiniC, InstrumentationModesAllRun)
{
    const char *src = R"(
global int data[256];
func main() {
    for (i = 0; i < 256; i = i + 1) { data[i] = i * 3; }
    var sum = 0;
    for (i = 0; i < 256; i = i + 1) { sum = sum + data[i]; }
    return sum % 97;
}
)";
    int64_t expect = (255 * 256 / 2 * 3) % 97;
    for (auto instrument :
         {InstrumentOptions::none(), InstrumentOptions::naive(),
          InstrumentOptions::full()}) {
        CompileOptions options;
        options.instrument = instrument;
        RunResult r = run_minic(src, options);
        EXPECT_EQ(r.exit_code, expect);
    }
}

TEST(MiniC, InstrumentationAddsOverhead)
{
    const char *src = R"(
global int data[512];
func main() {
    for (i = 0; i < 512; i = i + 1) { data[i] = i; }
    var sum = 0;
    var round = 0;
    while (round < 50) {
        for (i = 0; i < 512; i = i + 1) { sum = sum + data[i]; }
        round = round + 1;
    }
    return sum % 251;
}
)";
    CompileOptions none;
    none.instrument = InstrumentOptions::none();
    CompileOptions naive;
    naive.instrument = InstrumentOptions::naive();
    CompileOptions full;
    full.instrument = InstrumentOptions::full();

    RunResult r_none = run_minic(src, none);
    RunResult r_naive = run_minic(src, naive);
    RunResult r_full = run_minic(src, full);
    ASSERT_EQ(r_none.exit_code, r_naive.exit_code);
    ASSERT_EQ(r_none.exit_code, r_full.exit_code);
    // Naive instrumentation costs more than optimized, which costs
    // more than none (the Fig. 7b ordering).
    EXPECT_GT(r_naive.instructions, r_full.instructions);
    EXPECT_GT(r_full.instructions, r_none.instructions);
}

TEST(MiniC, OptimizerStatsReported)
{
    const char *src = R"(
global int data[512];
func main() {
    var sum = 0;
    for (i = 0; i < 512; i = i + 1) { sum = sum + data[i]; }
    return sum;
}
)";
    CompileOptions naive;
    naive.instrument = InstrumentOptions::naive();
    auto naive_out = compile(src, naive);
    ASSERT_TRUE(naive_out.ok());
    EXPECT_EQ(naive_out.value().stats.mem_guards_hoisted, 0u);
    EXPECT_EQ(naive_out.value().stats.mem_guards_elided_static, 0u);

    CompileOptions full;
    full.instrument = InstrumentOptions::full();
    auto full_out = compile(src, full);
    ASSERT_TRUE(full_out.ok());
    // The array walk should be hoisted and frame slots elided.
    EXPECT_GT(full_out.value().stats.mem_guards_hoisted, 0u);
    EXPECT_GT(full_out.value().stats.mem_guards_elided_static, 0u);
    EXPECT_GT(full_out.value().stats.cfi_labels, 0u);
    EXPECT_GT(full_out.value().stats.cfi_guards, 0u);
}

TEST(MiniC, ImageRoundTripsAndSigns)
{
    auto out = compile("func main() { return 7; }");
    ASSERT_TRUE(out.ok());
    oelf::Image &image = out.value().image;
    crypto::Key128 key{};
    key[0] = 0x42;
    image.sign(key);
    Bytes raw = image.serialize();
    auto parsed = oelf::Image::parse(raw);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(parsed.value().check_signature(key));
    EXPECT_EQ(parsed.value().entry_offset, image.entry_offset);
    EXPECT_EQ(parsed.value().code, image.code);
    // Tampering breaks the signature.
    parsed.value().code[0] ^= 1;
    EXPECT_FALSE(parsed.value().check_signature(key));
}

} // namespace
} // namespace occlum::toolchain
