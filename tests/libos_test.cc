/**
 * @file
 * Occlum LibOS integration tests: spawn/wait/IPC with SIPs inside a
 * single enclave, loader signature enforcement, syscall-return
 * validation, the writable encrypted FS seen identically by all SIPs
 * (Table 1), and the EIP baseline's contrasting behaviour.
 */
#include <gtest/gtest.h>

#include "baseline/eip_system.h"
#include "libos/occlum_system.h"
#include "toolchain/minic.h"
#include "verifier/verifier.h"

namespace occlum::libos {
namespace {

crypto::Key128
vkey()
{
    crypto::Key128 key{};
    key[3] = 0x77;
    return key;
}

/** Compile + verify + sign a MiniC program for Occlum. */
Bytes
build_signed(const std::string &source)
{
    auto out = toolchain::compile(source);
    EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().message);
    verifier::Verifier verifier(vkey());
    auto signed_image = verifier.verify_and_sign(out.value().image);
    EXPECT_TRUE(signed_image.ok())
        << (signed_image.ok() ? "" : signed_image.error().message);
    return signed_image.value().serialize();
}

struct OcclumHarness {
    sgx::Platform platform;
    host::HostFileStore binaries;
    std::unique_ptr<OcclumSystem> sys;

    explicit OcclumHarness(int slots = 8)
    {
        OcclumSystem::Config config;
        config.num_slots = slots;
        config.verifier_key = vkey();
        sys = std::make_unique<OcclumSystem>(platform, binaries, config);
    }

    void
    add_program(const std::string &name, const std::string &source)
    {
        binaries.put(name, build_signed(source));
    }

    int64_t
    run_main(const std::string &source,
             const std::vector<std::string> &argv = {"main"})
    {
        add_program("main", source);
        auto pid = sys->spawn("main", argv);
        EXPECT_TRUE(pid.ok()) << (pid.ok() ? "" : pid.error().message);
        if (!pid.ok()) return -999;
        sys->run();
        auto code = sys->exit_code(pid.value());
        return code.ok() ? code.value() : -998;
    }
};

TEST(Occlum, RunsHelloWorld)
{
    OcclumHarness h;
    EXPECT_EQ(h.run_main(
                  "func main() { println(\"hello from a SIP\");"
                  " return 0; }"),
              0);
    EXPECT_EQ(h.sys->console(), "hello from a SIP\n");
}

TEST(Occlum, RejectsUnsignedBinaries)
{
    OcclumHarness h;
    auto out = toolchain::compile("func main() { return 0; }");
    ASSERT_TRUE(out.ok());
    h.binaries.put("unsigned", out.value().image.serialize());
    EXPECT_FALSE(h.sys->spawn("unsigned", {"unsigned"}).ok());
}

TEST(Occlum, RejectsBinariesSignedWithWrongKey)
{
    OcclumHarness h;
    auto out = toolchain::compile("func main() { return 0; }");
    ASSERT_TRUE(out.ok());
    crypto::Key128 wrong{};
    wrong[0] = 0x99;
    verifier::Verifier impostor(wrong);
    auto badly_signed = impostor.verify_and_sign(out.value().image);
    ASSERT_TRUE(badly_signed.ok());
    h.binaries.put("bad", badly_signed.value().serialize());
    EXPECT_FALSE(h.sys->spawn("bad", {"bad"}).ok());
}

TEST(Occlum, SpawnChildAndWait)
{
    OcclumHarness h;
    h.add_program("child", R"(
func main() {
    print("child ");
    return 33;
}
)");
    EXPECT_EQ(h.run_main(R"(
global byte path[16] = "child";
func main() {
    var argvv[1];
    argvv[0] = path;
    var pid = spawn(path, argvv, 1);
    if (pid < 0) { return 1; }
    var status = waitpid(pid);
    print("parent");
    return status;
}
)"),
              33);
    EXPECT_EQ(h.sys->console(), "child parent");
}

TEST(Occlum, PipeBetweenSips)
{
    OcclumHarness h;
    h.add_program("producer", R"(
func main() {
    var i = 0;
    while (i < 5) {
        print("msg");
        i = i + 1;
    }
    return 0;
}
)");
    EXPECT_EQ(h.run_main(R"(
global byte path[16] = "producer";
global byte buf[256];
func main() {
    var fds[2];
    pipe(fds);
    var io[3];
    io[0] = 0 - 1;       // inherit stdin
    io[1] = fds[1];      // child stdout -> pipe write end
    io[2] = 0 - 1;
    var argvv[1];
    argvv[0] = path;
    var pid = syscall(5, path, strlen(path), argvv, 1, io);
    close(fds[1]);
    var total = 0;
    while (1) {
        var n = read(fds[0], buf, 256);
        if (n <= 0) { break; }
        total = total + n;
    }
    waitpid(pid);
    return total;  // 5 * 3 bytes
}
)"),
              15);
}

TEST(Occlum, SharedWritableEncryptedFs)
{
    // Table 1's headline: SIPs share one *writable* encrypted FS with
    // a unified view. The writer SIP creates a file; the reader SIP
    // (spawned after) sees it immediately.
    OcclumHarness h;
    h.add_program("writer", R"(
global byte p[16] = "/shared.txt";
func main() {
    var fd = open(p, 0x242);   // CREAT|TRUNC|WRONLY
    if (fd < 0) { return 1; }
    write(fd, "occlum-data", 11);
    close(fd);
    return 0;
}
)");
    h.add_program("reader", R"(
global byte p[16] = "/shared.txt";
global byte buf[64];
func main() {
    var fd = open(p, 0);
    if (fd < 0) { return 1; }
    var n = read(fd, buf, 64);
    close(fd);
    print(buf);
    return n;
}
)");
    EXPECT_EQ(h.run_main(R"(
global byte w[16] = "writer";
global byte r[16] = "reader";
func main() {
    var argvv[1];
    argvv[0] = w;
    var pid = spawn(w, argvv, 1);
    if (waitpid(pid) != 0) { return 100; }
    argvv[0] = r;
    pid = spawn(r, argvv, 1);
    return waitpid(pid);
}
)"),
              11);
    EXPECT_EQ(h.sys->console(), "occlum-data");
    // And the data is really encrypted at rest.
    ASSERT_TRUE(h.sys->fs().sync().ok());
    std::string needle = "occlum-data";
    for (uint64_t b = 0; b < h.sys->device().block_count(); ++b) {
        const Bytes &raw = h.sys->device().raw_block(b);
        if (raw.empty()) continue;
        auto it = std::search(raw.begin(), raw.end(), needle.begin(),
                              needle.end());
        EXPECT_EQ(it, raw.end());
    }
}

TEST(Occlum, DevAndProcSpecialFiles)
{
    OcclumHarness h;
    EXPECT_EQ(h.run_main(R"(
global byte devnull[16] = "/dev/null";
global byte devzero[16] = "/dev/zero";
global byte meminfo[24] = "/proc/meminfo";
global byte buf[64];
func main() {
    var fd = open(devnull, 1);
    var ok = write(fd, "x", 1) == 1;
    close(fd);
    fd = open(devzero, 0);
    buf[0] = 'x';
    read(fd, buf, 8);
    ok = ok + (bload(buf) == 0);
    close(fd);
    fd = open(meminfo, 0);
    var n = read(fd, buf, 64);
    ok = ok + (n > 0);
    close(fd);
    return ok;
}
)"),
              3);
}

TEST(Occlum, MmapGivesZeroedMemory)
{
    OcclumHarness h;
    EXPECT_EQ(h.run_main(R"(
func main() {
    var p = mmap(8192);
    if (p <= 0) { return 1; }
    var i = 0;
    while (i < 8192) {
        if (bload(p + i) != 0) { return 2; }
        i = i + 512;
    }
    wstore(p, 12345);
    return wload(p) == 12345;
}
)"),
              1);
}

TEST(Occlum, SlotsRecycleAfterExit)
{
    OcclumHarness h(2); // only two slots
    h.add_program("noop", "func main() { return 0; }");
    EXPECT_EQ(h.run_main(R"(
global byte path[8] = "noop";
func main() {
    var argvv[1];
    argvv[0] = path;
    // 5 sequential children through 1 remaining slot: recycling works.
    var i = 0;
    while (i < 5) {
        var pid = spawn(path, argvv, 1);
        if (pid < 0) { return 1; }
        if (waitpid(pid) != 0) { return 2; }
        i = i + 1;
    }
    return 0;
}
)"),
              0);
    EXPECT_EQ(h.sys->free_slots(), 2);
}

TEST(Occlum, SpawnCostScalesWithBinarySizeNotEnclaveCreation)
{
    // Fig. 6a's mechanism: Occlum spawn = fixed + per-page copy.
    OcclumHarness h;
    h.add_program("noop", "func main() { return 0; }");
    uint64_t small_before = h.platform.clock().cycles();
    auto pid = h.sys->spawn("noop", {"noop"});
    ASSERT_TRUE(pid.ok());
    uint64_t small_cost = h.platform.clock().cycles() - small_before;
    h.sys->run();

    // A padded (large) binary in a fresh system.
    toolchain::CompileOptions big;
    big.pad_code_to = 512 << 10;
    auto big_out = toolchain::compile("func main() { return 0; }", big);
    ASSERT_TRUE(big_out.ok());
    verifier::Verifier verifier(vkey());
    auto signed_big = verifier.verify_and_sign(big_out.value().image);
    ASSERT_TRUE(signed_big.ok());

    OcclumHarness h2;
    h2.binaries.put("big", signed_big.value().serialize());
    uint64_t before = h2.platform.clock().cycles();
    auto pid2 = h2.sys->spawn("big", {"big"});
    ASSERT_TRUE(pid2.ok());
    uint64_t big_cost = h2.platform.clock().cycles() - before;
    EXPECT_GT(big_cost, small_cost);
    // Far cheaper than creating a 256 MiB enclave.
    uint64_t eip_floor = CostModel::pages_for(
                             CostModel::kEipMinEnclaveBytes) *
                         CostModel::kEaddEextendCyclesPerPage;
    EXPECT_LT(big_cost, eip_floor / 10);
}

TEST(Occlum, ArgvArrivesViaPcb)
{
    OcclumHarness h;
    EXPECT_EQ(h.run_main(R"(
global byte buf[64];
func main() {
    if (argc() != 3) { return 1; }
    getarg(2, buf, 64);
    println(buf);
    return 0;
}
)",
                         {"main", "alpha", "beta"}),
              0);
    EXPECT_EQ(h.sys->console(), "beta\n");
}

// ---- EIP baseline contrast ------------------------------------------------

Bytes
build_plain(const std::string &source)
{
    toolchain::CompileOptions options;
    options.instrument = toolchain::InstrumentOptions::none();
    auto out = toolchain::compile(source, options);
    EXPECT_TRUE(out.ok());
    return out.value().image.serialize();
}

TEST(Eip, RunsProgramsInPerProcessEnclaves)
{
    sgx::Platform platform;
    host::HostFileStore binaries;
    binaries.put("hello",
                 build_plain("func main() { println(\"eip\");"
                             " return 5; }"));
    baseline::EipSystem sys(platform, binaries);
    auto pid = sys.spawn("hello", {"hello"});
    ASSERT_TRUE(pid.ok());
    sys.run();
    EXPECT_EQ(sys.exit_code(pid.value()).value(), 5);
    EXPECT_EQ(sys.console(), "eip\n");
}

TEST(Eip, SpawnPaysEnclaveCreation)
{
    sgx::Platform platform;
    host::HostFileStore binaries;
    binaries.put("noop", build_plain("func main() { return 0; }"));
    baseline::EipSystem sys(platform, binaries);
    uint64_t before = platform.clock().cycles();
    ASSERT_TRUE(sys.spawn("noop", {"noop"}).ok());
    uint64_t cost = platform.clock().cycles() - before;
    // Must be in the ballpark of measuring a 256 MiB enclave: ~0.6 s.
    EXPECT_GT(SimClock::cycles_to_seconds(cost), 0.3);
}

TEST(Eip, SharedFsIsReadOnly)
{
    sgx::Platform platform;
    host::HostFileStore binaries;
    binaries.put("prog", build_plain(R"(
global byte ro[16] = "/data.bin";
global byte buf[16];
func main() {
    var fd = open(ro, 0);       // read: fine
    if (fd < 0) { return 1; }
    var n = read(fd, buf, 16);
    close(fd);
    fd = open(ro, 0x41);        // write|creat: EROFS
    if (fd >= 0) { return 2; }
    return n;
}
)"));
    Bytes data = {'d', 'a', 't', 'a'};
    binaries.put("/data.bin", data);
    baseline::EipSystem sys(platform, binaries);
    auto pid = sys.spawn("prog", {"prog"});
    ASSERT_TRUE(pid.ok());
    sys.run();
    EXPECT_EQ(sys.exit_code(pid.value()).value(), 4);
}

} // namespace
} // namespace occlum::libos
