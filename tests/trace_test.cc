/**
 * @file
 * Tests for the src/trace subsystem: ring-buffer wraparound and drop
 * accounting, histogram bucket/percentile math, Chrome trace JSON
 * well-formedness, cycle attribution by stack replay, and real LibOS
 * syscall span nesting recorded from an Occlum run. Also covers the
 * occlum::Aggregate percentile extension the benches use.
 */
#include <gtest/gtest.h>

#include "base/stats.h"
#include "libos/occlum_system.h"
#include "toolchain/minic.h"
#include "trace/export.h"
#include "trace/metrics.h"
#include "trace/trace.h"
#include "verifier/verifier.h"

namespace occlum::trace {
namespace {

/** Fresh tracer state per test; the instance is process-wide. */
struct TracerGuard {
    TracerGuard(const SimClock *clock, size_t capacity)
    {
        Tracer::instance().bind_clock(clock);
        Tracer::instance().enable(capacity);
    }
    ~TracerGuard()
    {
        Tracer::instance().disable();
        Tracer::instance().bind_clock(nullptr);
    }
};

TEST(TraceRing, WraparoundKeepsNewestAndCountsDrops)
{
    SimClock clock;
    TracerGuard guard(&clock, 8);
    Tracer &tracer = Tracer::instance();
    EXPECT_EQ(tracer.capacity(), 8u);

    static const char *kNames[] = {"e0", "e1", "e2",  "e3", "e4", "e5",
                                   "e6", "e7", "e8",  "e9", "e10"};
    for (int i = 0; i < 11; ++i) {
        clock.advance(10);
        tracer.record(Category::kHost, EventType::kInstant, kNames[i],
                      static_cast<uint64_t>(i));
    }

    EXPECT_EQ(tracer.recorded(), 11u);
    EXPECT_EQ(tracer.dropped(), 3u);

    std::vector<Event> events = tracer.events();
    ASSERT_EQ(events.size(), 8u);
    // Oldest retained is the 4th record; order is chronological.
    for (size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].arg, i + 3);
        EXPECT_STREQ(events[i].name, kNames[i + 3]);
        if (i > 0) {
            EXPECT_GE(events[i].ts, events[i - 1].ts);
        }
    }
}

TEST(TraceRing, CapacityRoundsUpToPowerOfTwo)
{
    SimClock clock;
    TracerGuard guard(&clock, 5);
    EXPECT_EQ(Tracer::instance().capacity(), 8u);
    TracerGuard regrow(&clock, 9);
    EXPECT_EQ(Tracer::instance().capacity(), 16u);
}

TEST(TraceRing, DisabledRecordsNothing)
{
    SimClock clock;
    Tracer &tracer = Tracer::instance();
    {
        TracerGuard guard(&clock, 8);
    }
    uint64_t before = tracer.recorded();
    tracer.record(Category::kHost, EventType::kInstant, "ignored");
    { OCC_TRACE_SPAN(kHost, "also-ignored"); }
    EXPECT_EQ(tracer.recorded(), before);
}

TEST(TraceRing, ClearKeepsRingAndEnabledState)
{
    SimClock clock;
    TracerGuard guard(&clock, 8);
    Tracer &tracer = Tracer::instance();
    tracer.record(Category::kHost, EventType::kInstant, "x");
    tracer.clear();
    EXPECT_TRUE(tracer.enabled());
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_TRUE(tracer.events().empty());
}

TEST(Histogram, BucketBoundaries)
{
    EXPECT_EQ(Histogram::bucket_index(0), 0u);
    EXPECT_EQ(Histogram::bucket_index(1), 1u);
    EXPECT_EQ(Histogram::bucket_index(2), 2u);
    EXPECT_EQ(Histogram::bucket_index(3), 2u);
    EXPECT_EQ(Histogram::bucket_index(4), 3u);
    EXPECT_EQ(Histogram::bucket_index(1023), 10u);
    EXPECT_EQ(Histogram::bucket_index(1024), 11u);
    EXPECT_EQ(Histogram::bucket_lo(3), 4u);
    EXPECT_EQ(Histogram::bucket_hi(3), 7u);
    // Every value lands inside its bucket's [lo, hi] range.
    for (uint64_t v : {0ull, 1ull, 2ull, 7ull, 100ull, 65536ull}) {
        size_t i = Histogram::bucket_index(v);
        EXPECT_GE(v, Histogram::bucket_lo(i));
        EXPECT_LE(v, Histogram::bucket_hi(i));
    }
}

TEST(Histogram, SingleRepeatedValueIsExact)
{
    Histogram hist;
    for (int i = 0; i < 100; ++i) {
        hist.record(777);
    }
    EXPECT_EQ(hist.count(), 100u);
    EXPECT_EQ(hist.min(), 777u);
    EXPECT_EQ(hist.max(), 777u);
    EXPECT_DOUBLE_EQ(hist.mean(), 777.0);
    // Percentiles clamp to the observed [min, max] — exact here.
    EXPECT_DOUBLE_EQ(hist.p50(), 777.0);
    EXPECT_DOUBLE_EQ(hist.p99(), 777.0);
}

TEST(Histogram, PercentilesAreMonotonicAndBracketed)
{
    Histogram hist;
    for (uint64_t v = 1; v <= 1000; ++v) {
        hist.record(v);
    }
    double p50 = hist.p50(), p95 = hist.p95(), p99 = hist.p99();
    EXPECT_LE(p50, p95);
    EXPECT_LE(p95, p99);
    EXPECT_GE(p50, 1.0);
    EXPECT_LE(p99, 1000.0);
    // Log-bucketed: p50 of uniform 1..1000 lies in the right half.
    EXPECT_GT(p50, 250.0);
    EXPECT_LT(p50, 1000.0);
    hist.reset();
    EXPECT_EQ(hist.count(), 0u);
    EXPECT_DOUBLE_EQ(hist.p50(), 0.0);
}

TEST(Registry, PointersStableAcrossReset)
{
    Registry &registry = Registry::instance();
    Counter *counter = &registry.counter("test.stable_counter");
    Histogram *hist = &registry.histogram("test.stable_hist");
    counter->add(41);
    hist->record(9);
    registry.reset();
    EXPECT_EQ(counter, &registry.counter("test.stable_counter"));
    EXPECT_EQ(hist, &registry.histogram("test.stable_hist"));
    EXPECT_EQ(counter->value(), 0u);
    EXPECT_EQ(hist->count(), 0u);
    counter->add();
    EXPECT_EQ(registry.counter("test.stable_counter").value(), 1u);
}

TEST(Attribution, SelfCyclesNestedSpans)
{
    // parent [0, 100): child kFs occupies [20, 60); parent self = 60.
    std::vector<Event> events;
    auto push = [&](uint64_t ts, Category cat, EventType type) {
        Event e;
        e.ts = ts;
        e.cat = cat;
        e.type = type;
        e.name = "synthetic";
        events.push_back(e);
    };
    push(0, Category::kLibos, EventType::kBegin);
    push(20, Category::kFs, EventType::kBegin);
    push(60, Category::kFs, EventType::kEnd);
    push(100, Category::kLibos, EventType::kEnd);

    auto self = self_cycles_by_category(events);
    EXPECT_EQ(self[static_cast<size_t>(Category::kLibos)], 60u);
    EXPECT_EQ(self[static_cast<size_t>(Category::kFs)], 40u);
    EXPECT_EQ(self[static_cast<size_t>(Category::kVm)], 0u);
}

/** Structural checker: quotes-aware brace/bracket balance. */
void
expect_balanced_json(const std::string &json)
{
    int braces = 0, brackets = 0;
    bool in_string = false;
    for (size_t i = 0; i < json.size(); ++i) {
        char c = json[i];
        if (in_string) {
            if (c == '\\') {
                ++i;
            } else if (c == '"') {
                in_string = false;
            }
            continue;
        }
        switch (c) {
          case '"': in_string = true; break;
          case '{': ++braces; break;
          case '}': --braces; break;
          case '[': ++brackets; break;
          case ']': --brackets; break;
          default: break;
        }
        EXPECT_GE(braces, 0);
        EXPECT_GE(brackets, 0);
    }
    EXPECT_FALSE(in_string);
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(ChromeTrace, JsonIsWellFormed)
{
    SimClock clock;
    TracerGuard guard(&clock, 64);
    Tracer &tracer = Tracer::instance();
    // Direct record() calls so this test also passes under
    // OCCLUM_TRACE_DISABLED (which compiles the macros out).
    tracer.record(Category::kLibos, EventType::kBegin, "sys.write", 42);
    clock.advance(3500); // 1 us at 3.5 GHz
    tracer.record(Category::kSched, EventType::kInstant, "proc.spawn",
                  7);
    clock.advance(3500);
    tracer.record(Category::kLibos, EventType::kEnd, "sys.write");
    tracer.record(Category::kHost, EventType::kInstant,
                  "quote\"and\\slash");

    std::string json = chrome_trace_json(tracer.events(), 5);
    expect_balanced_json(json);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("sys.write"), std::string::npos);
    EXPECT_NE(json.find("displayTimeUnit"), std::string::npos);
    EXPECT_NE(json.find("\"dropped\":\"5\""), std::string::npos);
    // Escaping: the raw quote/backslash never appear unescaped.
    EXPECT_NE(json.find("quote\\\"and\\\\slash"), std::string::npos);
}

TEST(MetricsExport, JsonAndTextContainRegisteredMetrics)
{
    Registry &registry = Registry::instance();
    registry.reset();
    registry.counter("test.export_counter").add(3);
    registry.histogram("test.export_hist").record(100);

    std::string json = metrics_json(registry);
    expect_balanced_json(json);
    EXPECT_NE(json.find("test.export_counter"), std::string::npos);
    EXPECT_NE(json.find("test.export_hist"), std::string::npos);

    std::string text = metrics_text(registry);
    EXPECT_NE(text.find("test.export_counter"), std::string::npos);
    EXPECT_NE(text.find("3"), std::string::npos);
}

// ---------------------------------------------------------------------
// End-to-end: spans recorded from a real Occlum run nest correctly.
// ---------------------------------------------------------------------

crypto::Key128
vkey()
{
    crypto::Key128 key{};
    key[3] = 0x77;
    return key;
}

Bytes
build_signed(const std::string &source)
{
    auto out = toolchain::compile(source);
    EXPECT_TRUE(out.ok()) << (out.ok() ? "" : out.error().message);
    verifier::Verifier verifier(vkey());
    auto signed_image = verifier.verify_and_sign(out.value().image);
    EXPECT_TRUE(signed_image.ok())
        << (signed_image.ok() ? "" : signed_image.error().message);
    return signed_image.value().serialize();
}

// Depends on the hook macros being compiled in.
#ifndef OCCLUM_TRACE_DISABLED
TEST(LibosSpans, SyscallSpansNestAndBalance)
{
    sgx::Platform platform;
    host::HostFileStore binaries;
    libos::OcclumSystem::Config config;
    config.verifier_key = vkey();
    libos::OcclumSystem sys(platform, binaries, config);

    binaries.put("main", build_signed(
                             "func main() {"
                             " println(\"one\"); println(\"two\");"
                             " return 0; }"));

    TracerGuard guard(&platform.clock(), 1 << 14);
    auto pid = sys.spawn("main", {"main"});
    ASSERT_TRUE(pid.ok()) << pid.error().message;
    sys.run();
    auto code = sys.exit_code(pid.value());
    ASSERT_TRUE(code.ok());
    ASSERT_EQ(code.value(), 0);

    std::vector<Event> events = Tracer::instance().events();
    ASSERT_EQ(Tracer::instance().dropped(), 0u);
    ASSERT_FALSE(events.empty());

    // Replay: every end matches the innermost open begin, timestamps
    // are monotonic, and nothing is left open at the end of the run.
    std::vector<const Event *> stack;
    int libos_spans = 0;
    int sys_write_spans = 0;
    uint64_t last_ts = 0;
    for (const Event &e : events) {
        EXPECT_GE(e.ts, last_ts);
        last_ts = e.ts;
        switch (e.type) {
          case EventType::kBegin:
            stack.push_back(&e);
            break;
          case EventType::kEnd:
            ASSERT_FALSE(stack.empty())
                << "unmatched end for " << e.name;
            EXPECT_STREQ(stack.back()->name, e.name);
            EXPECT_EQ(stack.back()->cat, e.cat);
            if (e.cat == Category::kLibos) {
                ++libos_spans;
                if (std::string(e.name) == "sys.write") {
                    ++sys_write_spans;
                }
            }
            stack.pop_back();
            break;
          case EventType::kInstant:
            break;
        }
    }
    EXPECT_TRUE(stack.empty());
    // println drives sys.write through the kernel dispatch hook.
    EXPECT_GE(libos_spans, 2);
    EXPECT_GE(sys_write_spans, 2);

    // Attribution accounts at most the traced wall time and gives the
    // LibOS a nonzero share (syscall costs are charged inside spans).
    auto self = self_cycles_by_category(events);
    uint64_t sum = 0;
    for (uint64_t cycles : self) {
        sum += cycles;
    }
    EXPECT_LE(sum, platform.clock().cycles());
    EXPECT_GT(self[static_cast<size_t>(Category::kLibos)], 0u);
    EXPECT_GT(self[static_cast<size_t>(Category::kVm)], 0u);
}
#endif // OCCLUM_TRACE_DISABLED

TEST(Aggregate, PercentilesNearestRank)
{
    Aggregate agg;
    for (int v = 1; v <= 100; ++v) {
        agg.add(v);
    }
    EXPECT_DOUBLE_EQ(agg.p50(), 50.0);
    EXPECT_DOUBLE_EQ(agg.p95(), 95.0);
    EXPECT_DOUBLE_EQ(agg.p99(), 99.0);
    EXPECT_DOUBLE_EQ(agg.percentile(100.0), 100.0);
    EXPECT_DOUBLE_EQ(agg.percentile(0.0), 1.0);

    Aggregate one;
    one.add(42.0);
    EXPECT_DOUBLE_EQ(one.p50(), 42.0);
    EXPECT_DOUBLE_EQ(one.p99(), 42.0);

    Aggregate empty;
    EXPECT_DOUBLE_EQ(empty.p50(), 0.0);

    // Percentiles interleave correctly with further adds.
    Aggregate mixed;
    mixed.add(10.0);
    EXPECT_DOUBLE_EQ(mixed.p50(), 10.0);
    mixed.add(20.0);
    mixed.add(30.0);
    EXPECT_DOUBLE_EQ(mixed.p50(), 20.0);
    EXPECT_DOUBLE_EQ(mixed.p99(), 30.0);
}

} // namespace
} // namespace occlum::trace
