/**
 * @file
 * Encrypted file-system tests: correctness (files, directories,
 * growth through the indirect block, persistence across remount),
 * and the security properties — ciphertext on the device, integrity
 * rejection on tamper.
 */
#include <gtest/gtest.h>

#include <set>

#include "base/rng.h"
#include "libos/encfs.h"

namespace occlum::libos {
namespace {

struct FsHarness {
    SimClock clock;
    host::BlockDevice device;
    EncFs fs;

    explicit FsHarness(uint64_t blocks = 4096)
        : device(clock, blocks), fs(device, clock, make_config())
    {
        EXPECT_TRUE(fs.mkfs().ok());
    }

    static EncFs::Config
    make_config()
    {
        EncFs::Config config;
        for (size_t i = 0; i < config.key.size(); ++i) {
            config.key[i] = static_cast<uint8_t>(i * 7 + 1);
        }
        return config;
    }
};

Bytes
pattern(size_t n, uint64_t seed)
{
    Rng rng(seed);
    Bytes out(n);
    for (auto &b : out) {
        b = static_cast<uint8_t>(rng.next());
    }
    return out;
}

TEST(EncFs, WriteReadSmallFile)
{
    FsHarness h;
    Bytes data = pattern(100, 1);
    ASSERT_TRUE(h.fs.write_file("/a.txt", data).ok());
    auto back = h.fs.read_file("/a.txt");
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), data);
}

TEST(EncFs, OverwriteAndAppend)
{
    FsHarness h;
    auto inode = h.fs.open_inode("/f", true, false);
    ASSERT_TRUE(inode.ok());
    Bytes first = pattern(5000, 2);
    ASSERT_TRUE(h.fs.write(inode.value(), 0, first.data(), first.size())
                    .ok());
    Bytes patch = pattern(100, 3);
    ASSERT_TRUE(
        h.fs.write(inode.value(), 4000, patch.data(), patch.size())
            .ok());
    Bytes tail = pattern(300, 4);
    ASSERT_TRUE(
        h.fs.write(inode.value(), 5000, tail.data(), tail.size()).ok());

    EXPECT_EQ(h.fs.file_size(inode.value()).value(), 5300u);
    Bytes out(5300);
    ASSERT_TRUE(
        h.fs.read(inode.value(), 0, out.data(), out.size()).ok());
    Bytes expect = first;
    std::copy(patch.begin(), patch.end(), expect.begin() + 4000);
    expect.insert(expect.end(), tail.begin(), tail.end());
    EXPECT_EQ(out, expect);
}

TEST(EncFs, LargeFileThroughIndirectBlock)
{
    FsHarness h(8192);
    // > 120 direct blocks (480 KiB) forces the indirect block.
    Bytes data = pattern(700 * 1024, 5);
    ASSERT_TRUE(h.fs.write_file("/big", data).ok());
    auto back = h.fs.read_file("/big");
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), data);
}

TEST(EncFs, SparseHolesReadAsZero)
{
    FsHarness h;
    auto inode = h.fs.open_inode("/sparse", true, false);
    ASSERT_TRUE(inode.ok());
    Bytes one = {0xab};
    ASSERT_TRUE(
        h.fs.write(inode.value(), 100000, one.data(), 1).ok());
    Bytes out(4096);
    ASSERT_TRUE(h.fs.read(inode.value(), 0, out.data(), 4096).ok());
    EXPECT_TRUE(std::all_of(out.begin(), out.end(),
                            [](uint8_t b) { return b == 0; }));
}

TEST(EncFs, DirectoriesNestAndList)
{
    FsHarness h;
    ASSERT_TRUE(h.fs.mkdir("/etc").ok());
    ASSERT_TRUE(h.fs.mkdir("/etc/app").ok());
    ASSERT_TRUE(h.fs.write_file("/etc/app/conf", pattern(64, 6)).ok());
    EXPECT_TRUE(h.fs.exists("/etc/app/conf").value());
    EXPECT_FALSE(h.fs.exists("/etc/app/nope").value());
    // Cannot create under a missing directory.
    EXPECT_FALSE(h.fs.write_file("/no/such/file", {1, 2}).ok());
    // Cannot remove a non-empty directory.
    EXPECT_FALSE(h.fs.unlink("/etc/app").ok());
    ASSERT_TRUE(h.fs.unlink("/etc/app/conf").ok());
    EXPECT_TRUE(h.fs.unlink("/etc/app").ok());
}

TEST(EncFs, UnlinkFreesSpaceForReuse)
{
    FsHarness h(600); // small device
    Bytes chunk = pattern(800 * 1024 / 2, 7);
    for (int round = 0; round < 4; ++round) {
        std::string path = "/tmp" + std::to_string(round);
        ASSERT_TRUE(h.fs.write_file(path, chunk).ok()) << round;
        ASSERT_TRUE(h.fs.unlink(path).ok());
    }
}

TEST(EncFs, PersistsAcrossRemount)
{
    SimClock clock;
    host::BlockDevice device(clock, 4096);
    Bytes data = pattern(10000, 8);
    {
        EncFs fs(device, clock, FsHarness::make_config());
        ASSERT_TRUE(fs.mkfs().ok());
        ASSERT_TRUE(fs.mkdir("/d").ok());
        ASSERT_TRUE(fs.write_file("/d/file", data).ok());
        ASSERT_TRUE(fs.sync().ok());
    }
    {
        EncFs fs(device, clock, FsHarness::make_config());
        ASSERT_TRUE(fs.mount().ok());
        auto back = fs.read_file("/d/file");
        ASSERT_TRUE(back.ok());
        EXPECT_EQ(back.value(), data);
    }
}

TEST(EncFs, DeviceHoldsOnlyCiphertext)
{
    SimClock clock;
    host::BlockDevice device(clock, 4096);
    EncFs fs(device, clock, FsHarness::make_config());
    ASSERT_TRUE(fs.mkfs().ok());
    std::string secret = "TOP-SECRET-PAYLOAD-TOP-SECRET-PAYLOAD";
    Bytes data(secret.begin(), secret.end());
    // Make the plaintext long enough that a chance miss is unlikely.
    for (int i = 0; i < 100; ++i) {
        data.insert(data.end(), secret.begin(), secret.end());
    }
    ASSERT_TRUE(fs.write_file("/s", data).ok());
    ASSERT_TRUE(fs.sync().ok());
    // Scan every device block for the plaintext.
    for (uint64_t b = 0; b < device.block_count(); ++b) {
        const Bytes &raw = device.raw_block(b);
        if (raw.empty()) {
            continue;
        }
        auto it = std::search(raw.begin(), raw.end(), secret.begin(),
                              secret.end());
        EXPECT_EQ(it, raw.end()) << "plaintext leaked in block " << b;
    }
}

TEST(EncFs, TamperedBlockIsRejected)
{
    SimClock clock;
    host::BlockDevice device(clock, 4096);
    Bytes data = pattern(8192, 9);
    {
        EncFs fs(device, clock, FsHarness::make_config());
        ASSERT_TRUE(fs.mkfs().ok());
        ASSERT_TRUE(fs.write_file("/f", data).ok());
        ASSERT_TRUE(fs.sync().ok());
    }
    // The attacker flips one bit in some non-MAC device block that
    // actually holds data.
    bool flipped = false;
    for (uint64_t b = device.block_count() - 1; b > 0; --b) {
        Bytes &raw = device.raw_block(b);
        if (!raw.empty() &&
            std::any_of(raw.begin(), raw.end(),
                        [](uint8_t v) { return v != 0; })) {
            raw[100] ^= 0x1;
            flipped = true;
            break;
        }
    }
    ASSERT_TRUE(flipped);
    EncFs fs(device, clock, FsHarness::make_config());
    ASSERT_TRUE(fs.mount().ok());
    auto back = fs.read_file("/f");
    // Either the read fails with EIO, or the tampered block belonged
    // to metadata and the path lookup already failed.
    EXPECT_FALSE(back.ok());
}

TEST(EncFs, CacheHitsOnRepeatedReads)
{
    FsHarness h;
    Bytes data = pattern(4096, 10);
    ASSERT_TRUE(h.fs.write_file("/c", data).ok());
    auto inode = h.fs.open_inode("/c", false, false);
    ASSERT_TRUE(inode.ok());
    Bytes out(4096);
    uint64_t misses_before = h.fs.cache_misses();
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(
            h.fs.read(inode.value(), 0, out.data(), 4096).ok());
    }
    EXPECT_EQ(h.fs.cache_misses(), misses_before);
    EXPECT_GT(h.fs.cache_hits(), 49u);
}

TEST(EncFs, EvictionsCountedUnderCachePressure)
{
    SimClock clock;
    host::BlockDevice device(clock, 4096);
    EncFs::Config config = FsHarness::make_config();
    config.cache_blocks = 8;
    config.readahead_blocks = 0;
    EncFs fs(device, clock, config);
    ASSERT_TRUE(fs.mkfs().ok());
    uint64_t after_mkfs = fs.evictions();
    // 64 data blocks through an 8-block cache must evict well over
    // 64 - 8 times, and every evicted dirty block must survive the
    // round trip back through the device.
    Bytes data = pattern(64 * 4096, 21);
    ASSERT_TRUE(fs.write_file("/big", data).ok());
    EXPECT_GE(fs.evictions() - after_mkfs, 56u);
    auto back = fs.read_file("/big");
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), data);
}

TEST(EncFs, ReadaheadWarmsCacheForSequentialReads)
{
    SimClock clock;
    host::BlockDevice device(clock, 4096);
    EncFs::Config config = FsHarness::make_config();
    config.cache_blocks = 256;
    config.readahead_blocks = 8;
    EncFs fs(device, clock, config);
    ASSERT_TRUE(fs.mkfs().ok());
    // Exactly 10 blocks: after the stream is established at blocks
    // 0-1, one prefetch (8 blocks, clamped to EOF) covers the whole
    // remainder, so later iterations have nothing left to prefetch
    // and the miss counter must stay flat.
    Bytes data = pattern(10 * 4096, 22);
    ASSERT_TRUE(fs.write_file("/seq", data).ok());
    ASSERT_TRUE(fs.sync().ok());

    // Remount so the cache is cold, then establish a sequential
    // stream: the second read triggers a prefetch of the next 8 file
    // blocks, so reading those blocks must be pure cache hits.
    EncFs cold(device, clock, config);
    ASSERT_TRUE(cold.mount().ok());
    auto inode = cold.open_inode("/seq", false, false);
    ASSERT_TRUE(inode.ok());
    Bytes out(4096);
    ASSERT_TRUE(cold.read(inode.value(), 0, out.data(), 4096).ok());
    ASSERT_TRUE(cold.read(inode.value(), 4096, out.data(), 4096).ok());
    uint64_t misses_before = cold.cache_misses();
    for (uint64_t b = 2; b < 10; ++b) {
        auto n = cold.read(inode.value(), b * 4096, out.data(), 4096);
        ASSERT_TRUE(n.ok());
        EXPECT_EQ(Bytes(data.begin() + b * 4096,
                        data.begin() + (b + 1) * 4096),
                  out);
    }
    EXPECT_EQ(cold.cache_misses(), misses_before);
}

TEST(EncFs, ChargesCryptoAndDiskCosts)
{
    SimClock clock;
    host::BlockDevice device(clock, 4096);
    EncFs fs(device, clock, FsHarness::make_config());
    ASSERT_TRUE(fs.mkfs().ok());
    uint64_t before = clock.cycles();
    Bytes data = pattern(64 * 1024, 11);
    ASSERT_TRUE(fs.write_file("/f", data).ok());
    ASSERT_TRUE(fs.sync().ok());
    uint64_t spent = clock.cycles() - before;
    // At least disk write + AES + HMAC per byte.
    uint64_t floor = static_cast<uint64_t>(
        data.size() * (CostModel::kDiskWriteCyclesPerByte +
                       CostModel::kAesCyclesPerByte));
    EXPECT_GT(spent, floor);
}

TEST(EncFs, CtrIvIsUniqueAcrossCounterWrap)
{
    // Regression: the nonce used to be LE64(block) || LE32(counter),
    // with the counter's high 32 bits folded into the in-call counter
    // word. Two writes to the same block whose write counters differ
    // by exactly 2^32 then shared (key, nonce, counter) keystream.
    constexpr uint32_t kBlock = 7;
    constexpr uint64_t kLow = 0xffffffffull;     // just before the wrap
    constexpr uint64_t kHigh = kLow + (1ull << 32);

    auto iv_low = EncFs::ctr_iv(kBlock, kLow);
    auto iv_high = EncFs::ctr_iv(kBlock, kHigh);
    EXPECT_NE(iv_low, iv_high);

    // Adjacent counters around the wrap are all distinct too.
    EXPECT_NE(EncFs::ctr_iv(kBlock, kLow), EncFs::ctr_iv(kBlock, kLow + 1));
    EXPECT_NE(EncFs::ctr_iv(kBlock, kLow + 1),
              EncFs::ctr_iv(kBlock + 1, kLow + 1));

    // No 16-byte keystream block may repeat between the two 4 KiB
    // payload keystreams (the actual exploitable condition).
    crypto::Aes128 cipher(FsHarness::make_config().key);
    Bytes zeros(EncFs::kBlockSize, 0);
    Bytes ks_low = cipher.ctr_crypt(iv_low, 0, zeros);
    Bytes ks_high = cipher.ctr_crypt(iv_high, 0, zeros);
    std::set<Bytes> seen;
    for (size_t off = 0; off < zeros.size(); off += 16) {
        seen.insert(Bytes(ks_low.begin() + off, ks_low.begin() + off + 16));
        seen.insert(
            Bytes(ks_high.begin() + off, ks_high.begin() + off + 16));
    }
    EXPECT_EQ(seen.size(), 2 * zeros.size() / 16);
}

TEST(EncFs, RereadsAcrossCounterWrapBoundary)
{
    // End-to-end: a block rewritten with counters straddling the wrap
    // still round-trips, and its ciphertext changes on every rewrite.
    FsHarness h;
    Bytes a = pattern(EncFs::kBlockSize, 11);
    Bytes b = pattern(EncFs::kBlockSize, 12);
    ASSERT_TRUE(h.fs.write_file("/w", a).ok());
    ASSERT_TRUE(h.fs.sync().ok());
    ASSERT_TRUE(h.fs.write_file("/w", b).ok());
    ASSERT_TRUE(h.fs.sync().ok());
    auto back = h.fs.read_file("/w");
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), b);
}

} // namespace
} // namespace occlum::libos
