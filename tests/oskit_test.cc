/**
 * @file
 * Kernel-core and loader tests: domain layout invariants, PCB
 * contents, syscall edge cases (bad fds, EFAULT pointers, fd
 * inheritance, dup2), pipe semantics (EOF, EPIPE, backpressure), and
 * scheduler behaviour under blocking.
 */
#include <gtest/gtest.h>

#include "baseline/linux_system.h"
#include "faultsim/faultsim.h"
#include "oskit/loader.h"
#include "toolchain/minic.h"
#include "trace/metrics.h"

namespace occlum::oskit {
namespace {

oelf::Image
small_image()
{
    auto out = toolchain::compile("func main() { return 0; }");
    EXPECT_TRUE(out.ok());
    return out.value().image;
}

TEST(Loader, DomainLayoutInvariants)
{
    oelf::Image image = small_image();
    vm::AddressSpace space;
    LoadOptions options;
    options.domain_id = 9;
    auto domain =
        load_image(space, image, 0x40000000, {"prog", "a1"}, options);
    ASSERT_TRUE(domain.ok());
    const LoadedDomain &d = domain.value();

    // Geometry: T | C | G1 | D | G2 with unmapped guards.
    EXPECT_EQ(d.c_begin, d.base + oelf::kTrampSize);
    EXPECT_EQ(d.d_begin,
              d.c_begin + image.code_region_size() + oelf::kGuardSize);
    EXPECT_FALSE(space.is_mapped(d.d_begin - oelf::kGuardSize,
                                 oelf::kGuardSize)); // G1
    EXPECT_FALSE(space.is_mapped(d.d_end, oelf::kGuardSize)); // G2
    EXPECT_TRUE(space.is_mapped(d.base,
                                oelf::kTrampSize +
                                    image.code_region_size()));
    EXPECT_TRUE(space.is_mapped(d.d_begin, d.d_end - d.d_begin));
    // Permissions: code RX (no W), data RW (no X).
    EXPECT_EQ(space.perms_at(d.c_begin), vm::kPermRX);
    EXPECT_EQ(space.perms_at(d.d_begin), vm::kPermRW);
    // Heap and stack live inside D.
    EXPECT_GE(d.heap_begin, d.d_begin);
    EXPECT_LE(d.mmap_end, d.d_end);
    EXPECT_LT(d.stack_top, d.d_end);

    // PCB fields.
    auto read64 = [&](uint64_t off) {
        uint64_t v = 0;
        EXPECT_EQ(space.read_raw(d.d_begin + off, &v, 8),
                  vm::AccessFault::kNone);
        return v;
    };
    EXPECT_EQ(read64(abi::kPcbTrampoline), d.base);
    EXPECT_EQ(read64(abi::kPcbDomainId), 9u);
    EXPECT_EQ(read64(abi::kPcbHeapBegin), d.heap_begin);
    EXPECT_EQ(read64(abi::kPcbHeapEnd), d.heap_end);
    EXPECT_EQ(read64(abi::kPcbArgc), 2u);

    // The trampoline starts with this domain's cfi_label.
    uint64_t gate = 0;
    EXPECT_EQ(space.read_raw(d.base, &gate, 8), vm::AccessFault::kNone);
    EXPECT_EQ(gate, isa::cfi_label_value(9));
}

TEST(Loader, CfiLabelsRewrittenToDomainId)
{
    oelf::Image image = small_image();
    vm::AddressSpace space;
    LoadOptions options;
    options.domain_id = 0x1234;
    auto domain = load_image(space, image, 0x40000000, {"p"}, options);
    ASSERT_TRUE(domain.ok());
    // Every cfi_label in loaded code carries the new domain ID.
    Bytes code(image.code.size());
    ASSERT_EQ(space.read_raw(domain.value().c_begin, code.data(),
                             code.size()),
              vm::AccessFault::kNone);
    int found = 0;
    for (size_t i = 0; i + 8 <= code.size(); ++i) {
        if (std::equal(std::begin(isa::kCfiMagic),
                       std::end(isa::kCfiMagic), code.begin() + i)) {
            EXPECT_EQ(get_le<uint32_t>(code.data() + i + 4), 0x1234u);
            ++found;
            i += 7;
        }
    }
    EXPECT_GT(found, 0);
}

TEST(Loader, RejectsOversizedArgv)
{
    oelf::Image image = small_image();
    vm::AddressSpace space;
    std::vector<std::string> argv = {"p", std::string(2000, 'x')};
    EXPECT_FALSE(
        load_image(space, image, 0x40000000, argv, {}).ok());
}

// ---- syscall edge cases through the Linux personality -----------------

struct KernelHarness {
    SimClock clock;
    host::HostFileStore files;
    baseline::LinuxSystem sys{clock, files};

    int64_t
    run(const std::string &source,
        const std::vector<std::string> &argv = {"prog"})
    {
        auto out = toolchain::compile(source);
        EXPECT_TRUE(out.ok())
            << (out.ok() ? "" : out.error().message);
        files.put("prog", out.value().image.serialize());
        auto pid = sys.spawn("prog", argv);
        EXPECT_TRUE(pid.ok());
        sys.run();
        auto code = sys.exit_code(pid.value());
        return code.ok() ? code.value() : -999;
    }
};

TEST(Syscalls, BadFdsReturnEbadf)
{
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
global byte b[8];
func main() {
    var e = 0;
    if (read(99, b, 8) != -9) { e = 1; }      // EBADF = 9
    if (write(42, b, 8) != -9) { e = e + 2; }
    if (close(7) != -9) { e = e + 4; }
    if (syscall(10, 88, 0, 0) != -9) { e = e + 8; } // lseek
    return e;
}
)"),
              0);
}

TEST(Syscalls, BadPointersReturnEfault)
{
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
func main() {
    // Address far outside the process image.
    if (write(1, 0x7777777000, 8) != -14) { return 1; } // EFAULT
    var fds[2];
    if (syscall(8, 0x7777777000) != -14) { return 2; }  // pipe
    return 0;
}
)"),
              0);
}

TEST(Syscalls, PipeEofAndEpipe)
{
    KernelHarness h;
    // Writing to a pipe whose read end is gone kills the writer (the
    // SIGPIPE default action) — the write never returns -EPIPE into a
    // program that could spin on it forever against run(allow_idle).
    EXPECT_EQ(h.run(R"(
global byte b[16];
func main() {
    var fds[2];
    pipe(fds);
    write(fds[1], "xy", 2);
    close(fds[1]);                 // no more writers
    if (read(fds[0], b, 16) != 2) { return 1; }
    if (read(fds[0], b, 16) != 0) { return 2; }   // EOF
    var fds2[2];
    pipe(fds2);
    close(fds2[0]);                // no readers
    write(fds2[1], "z", 1);        // killed here
    return 3;                      // unreachable
}
)"),
              -32);
}

TEST(Regression, EpipeKillLeavesPipeShapedDeathRecord)
{
    // Reader closed *before* the write: the EPIPE kill must be
    // recorded as DeathCause::kPipe (not kFault) with -EPIPE as the
    // code, so wait()ers and post-mortems can tell SIGPIPE from a
    // crash.
    KernelHarness h;
    auto out = toolchain::compile(R"(
func main() {
    var fds[2];
    pipe(fds);
    close(fds[0]);
    write(fds[1], "z", 1);
    return 0;
}
)");
    ASSERT_TRUE(out.ok());
    h.files.put("prog", out.value().image.serialize());
    auto pid = h.sys.spawn("prog", {"prog"});
    ASSERT_TRUE(pid.ok());
    h.sys.run();
    auto record = h.sys.death_record(pid.value());
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record.value().cause, DeathCause::kPipe);
    EXPECT_EQ(record.value().code,
              -static_cast<int64_t>(ErrorCode::kPipe));
    EXPECT_EQ(record.value().fault, vm::FaultKind::kNone);
}

TEST(Regression, EpipeKillsBlockedWriterWhenReaderCloses)
{
    // The other close order: the writer blocks on a full pipe first,
    // *then* the last reader goes away. The blocked write's retry
    // must turn into the EPIPE kill — before the fix the writer
    // stayed blocked forever and run() only ended via allow_idle.
    KernelHarness h;
    auto child = toolchain::compile(R"(
func main() {
    // Spin long past the parent's fill loop (the sim is
    // deterministic: the parent is blocked well before this ends),
    // then drop the only read end.
    var i = 0;
    while (i < 200000) { i = i + 1; }
    close(0);
    return 0;
}
)");
    ASSERT_TRUE(child.ok());
    h.files.put("closer", child.value().image.serialize());
    auto out = toolchain::compile(R"(
global byte child[12] = "closer";
global byte buf[4096];
func main() {
    var fds[2];
    pipe(fds);
    var argvv[1];
    argvv[0] = child;
    var io3[3];
    io3[0] = fds[0];   // child inherits the read end as stdin
    io3[1] = 1;
    io3[2] = 2;
    if (spawn_io(child, argvv, 1, io3) < 0) { return 1; }
    close(fds[0]);     // the child holds the only read end now
    var i = 0;
    while (i < 16) {   // 16 * 4096 = the pipe's 64 KiB capacity
        if (write(fds[1], buf, 4096) != 4096) { return 2; }
        i = i + 1;
    }
    write(fds[1], buf, 1);  // blocks full; killed when the child closes
    return 3;               // unreachable
}
)");
    ASSERT_TRUE(out.ok());
    h.files.put("prog", out.value().image.serialize());
    auto pid = h.sys.spawn("prog", {"prog"});
    ASSERT_TRUE(pid.ok());
    h.sys.run();
    ASSERT_TRUE(h.sys.all_exited());
    auto record = h.sys.death_record(pid.value());
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record.value().cause, DeathCause::kPipe);
    EXPECT_EQ(record.value().code,
              -static_cast<int64_t>(ErrorCode::kPipe));
}

// ---- copy_from_user / copy_to_user hardening --------------------------

/**
 * A bare kernel with a permissive validate_user_range, standing in
 * for a personality (like Occlum's) whose override only checks region
 * *bounds* — so the copy helpers' own all-or-nothing mapping probe is
 * what is under test.
 */
struct RawKernel : Kernel {
    RawKernel(SimClock &clock, host::HostFileStore &files)
        : Kernel(clock, files)
    {}
    Result<std::unique_ptr<Process>>
    create_process(const std::string &,
                   const std::vector<std::string> &) override
    {
        return Error(ErrorCode::kNoSys, "raw kernel");
    }
    void destroy_process(Process &) override {}
    uint64_t syscall_cost() const override { return 0; }
    Result<FilePtr> fs_open(Process &, const std::string &,
                            uint64_t) override
    {
        return Error(ErrorCode::kNoSys, "raw kernel");
    }
    Status fs_unlink(const std::string &) override
    {
        return Status(ErrorCode::kNoSys, "raw kernel");
    }
    Status fs_mkdir(const std::string &) override
    {
        return Status(ErrorCode::kNoSys, "raw kernel");
    }
    Status validate_user_range(Process &, uint64_t, uint64_t) override
    {
        return Status(); // bounds-only personality: accept everything
    }
    /** Expose the protected dispatcher for direct syscall tests. */
    std::optional<int64_t>
    sys(Process &proc, abi::Sys num,
        const uint64_t args[abi::kSyscallArgs])
    {
        return dispatch(proc, static_cast<uint64_t>(num), args);
    }
};

struct HoleyHarness {
    SimClock clock;
    host::HostFileStore files;
    RawKernel kernel{clock, files};
    vm::AddressSpace space;
    Process proc;

    HoleyHarness()
    {
        // Two mapped pages around an unmapped hole:
        //   [0x1000,0x2000) mapped | [0x2000,0x3000) hole |
        //   [0x3000,0x4000) mapped
        EXPECT_TRUE(space.map(0x1000, 0x1000, vm::kPermRW).ok());
        EXPECT_TRUE(space.map(0x3000, 0x1000, vm::kPermRW).ok());
        proc.space = &space;
    }
};

TEST(Regression, PartialCopyAcrossUnmappedHole)
{
    HoleyHarness h;
    // Seed the first page with a sentinel pattern.
    Bytes sentinel(0x800, 0xcd);
    ASSERT_EQ(h.space.write_raw(0x1800, sentinel.data(),
                                sentinel.size()),
              vm::AccessFault::kNone);

    // copy_to_user spanning the hole must fail...
    Bytes payload(0x1000, 0x11);
    EXPECT_FALSE(h.kernel
                     .copy_to_user(h.proc, 0x1800, payload.data(),
                                   payload.size())
                     .ok());
    // ...and must not have scribbled the mapped prefix: before the
    // fix, write_raw modified [0x1800,0x2000) and then faulted,
    // leaving user memory half-updated behind an EFAULT.
    Bytes check(sentinel.size());
    ASSERT_EQ(h.space.read_raw(0x1800, check.data(), check.size()),
              vm::AccessFault::kNone);
    EXPECT_EQ(check, sentinel);

    // copy_from_user across the same hole also fails up front.
    Bytes out(0x1000, 0x00);
    EXPECT_FALSE(h.kernel
                     .copy_from_user(h.proc, 0x1800, out.data(),
                                     out.size())
                     .ok());

    // Fully-mapped ranges on both sides still work.
    EXPECT_TRUE(h.kernel
                    .copy_to_user(h.proc, 0x1000, payload.data(), 0x800)
                    .ok());
    EXPECT_TRUE(h.kernel
                    .copy_from_user(h.proc, 0x3000, out.data(), 0x800)
                    .ok());
}

TEST(Regression, CstringMaxLenClamped)
{
    SimClock clock;
    host::HostFileStore files;
    RawKernel kernel(clock, files);
    vm::AddressSpace space;
    Process proc;
    proc.space = &space;
    // 32 pages of 'a' with no terminator anywhere.
    ASSERT_TRUE(space.map(0x10000, 32 * vm::kPageSize,
                          vm::kPermRW).ok());
    Bytes fill(32 * vm::kPageSize, 'a');
    ASSERT_EQ(space.write_raw(0x10000, fill.data(), fill.size()),
              vm::AccessFault::kNone);

    // A hostile max_len is clamped to the 64 KiB ceiling instead of
    // walking (and allocating) until the first unmapped byte.
    auto res = kernel.read_user_cstring(proc, 0x10000, ~0ull);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error().code, ErrorCode::kNameTooLong);

    // A terminated string whose NUL is the last byte of the mapped
    // range (the page-chunked reader must not probe past it).
    uint64_t tail = 0x10000 + 32 * vm::kPageSize - 4;
    ASSERT_EQ(space.write_raw(tail, "hey", 4), vm::AccessFault::kNone);
    auto hey = kernel.read_user_cstring(proc, tail, 4096);
    ASSERT_TRUE(hey.ok());
    EXPECT_EQ(hey.value(), "hey");

    // An unterminated string running into unmapped memory faults.
    uint64_t edge = 0x10000 + 32 * vm::kPageSize - 8;
    ASSERT_EQ(space.write_raw(edge, "aaaaaaaa", 8),
              vm::AccessFault::kNone);
    auto bad = kernel.read_user_cstring(proc, edge, 4096);
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::kFault);
}

TEST(Syscalls, Dup2RedirectsAndSharesOffset)
{
    KernelHarness h;
    h.files.put("/f.txt", Bytes{});
    EXPECT_EQ(h.run(R"(
global byte p[12] = "/f.txt";
global byte b[32];
func main() {
    var fd = open(p, 0x42);   // CREAT|WRONLY
    dup2(fd, 1);              // stdout -> file
    print("to-file");
    close(fd);
    close(1);
    fd = open(p, 0);
    var n = read(fd, b, 32);
    return n;
}
)"),
              7);
}

TEST(Syscalls, WaitpidUnknownChildReturnsEchild)
{
    KernelHarness h;
    EXPECT_EQ(h.run("func main() { return waitpid(777); }"),
              -static_cast<int64_t>(ErrorCode::kChild));
}

TEST(Syscalls, GetPidAndTimeAdvance)
{
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
func main() {
    if (getpid() < 1) { return 1; }
    var t0 = time_ns();
    var i = 0;
    while (i < 10000) { i = i + 1; }
    var t1 = time_ns();
    if (t1 <= t0) { return 2; }
    return 0;
}
)"),
              0);
}

TEST(Syscalls, KillTerminatesTarget)
{
    KernelHarness h;
    auto out = toolchain::compile(R"(
func main() {
    while (1) { yield(); }
    return 0;
}
)");
    ASSERT_TRUE(out.ok());
    h.files.put("spinner", out.value().image.serialize());
    EXPECT_EQ(h.run(R"(
global byte s[12] = "spinner";
func main() {
    var argvv[1];
    argvv[0] = s;
    var pid = spawn(s, argvv, 1);
    kill(pid, 15);
    var status = waitpid(pid);
    return status == -15;
}
)"),
              1);
}

TEST(Syscalls, MmapExhaustionReturnsEnomem)
{
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
func main() {
    var total = 0;
    while (1) {
        var p = mmap(65536);
        if (p < 0) { return p == -12; }  // ENOMEM
        total = total + 1;
        if (total > 1000) { return 0; }  // should exhaust first
    }
    return 0;
}
)"),
              1);
}

TEST(Syscalls, FaultingProcessIsReapedWithFaultCause)
{
    KernelHarness h;
    auto out = toolchain::compile(
        "func main() { wstore(0x12345, 1); return 0; }");
    ASSERT_TRUE(out.ok());
    h.files.put("prog", out.value().image.serialize());
    auto pid = h.sys.spawn("prog", {"prog"});
    ASSERT_TRUE(pid.ok());
    h.sys.run();
    auto record = h.sys.death_record(pid.value());
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record.value().cause, DeathCause::kFault);
    EXPECT_EQ(record.value().fault_addr, 0x12345u);
}

TEST(Syscalls, ClosedFdsAreReusedLowestFirst)
{
    KernelHarness h;
    h.files.put("/f.txt", Bytes{});
    EXPECT_EQ(h.run(R"(
global byte p[12] = "/f.txt";
func main() {
    var first = open(p, 0);
    if (first < 0) { return 1; }
    close(first);
    var i = 0;
    while (i < 10000) {
        var fd = open(p, 0);
        if (fd != first) { return 2; }  // must reuse the lowest free fd
        if (close(fd) != 0) { return 3; }
        i = i + 1;
    }
    return 0;
}
)"),
              0);
}

TEST(Syscalls, PipeFillsLowestFreeDescriptors)
{
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
func main() {
    close(0);                       // free stdin; 1 and 2 stay busy
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    if (fds[0] != 0) { return 2; }  // lowest hole first...
    if (fds[1] != 3) { return 3; }  // ...then the next one up
    return 0;
}
)"),
              0);
}

TEST(Syscalls, SixthSyscallArgumentArrivesIntact)
{
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
func main() {
    // mmap(addr, len, prot, flags, fd, off): off rides in the sixth
    // argument register. A misaligned offset must reach the kernel
    // and be rejected; if arg 6 were dropped it would read as 0.
    if (syscall(12, 0, 4096, 3, 34, 0 - 1, 4097) != -22) { return 1; }
    // Aligned-but-nonzero offsets on anonymous maps are unsupported.
    if (syscall(12, 0, 4096, 3, 34, 0 - 1, 4096) != -38) { return 2; }
    // File-backed requests are routed on the fd in arg 5.
    if (syscall(12, 0, 4096, 3, 34, 7, 0) != -38) { return 3; }
    // The same call with fd = -1, off = 0 succeeds and is usable.
    var p = syscall(12, 0, 4096, 3, 34, 0 - 1, 0);
    if (p < 0) { return 4; }
    wstore(p, 4242);
    if (wload(p) != 4242) { return 5; }
    // Executable requests violate W^X.
    if (syscall(12, 0, 4096, 7, 34, 0 - 1, 0) != -1) { return 6; }
    return 0;
}
)"),
              0);
}

// ---- idle and wake-up accounting --------------------------------------

TEST(Kernel, AllowIdleReturnsWhenEveryProcessSleepsForever)
{
    KernelHarness h;
    auto out = toolchain::compile(R"(
func main() {
    var fds[2];
    pipe(fds);
    var b[8];
    read(fds[0], b, 1);   // we hold the write end: blocks forever
    return 0;
}
)");
    ASSERT_TRUE(out.ok());
    h.files.put("prog", out.value().image.serialize());
    auto pid = h.sys.spawn("prog", {"prog"});
    ASSERT_TRUE(pid.ok());
    // Every process is asleep with no wake-up time: run(allow_idle)
    // must return instead of spinning or panicking on deadlock.
    h.sys.run(/*allow_idle=*/true);
    EXPECT_FALSE(h.sys.all_exited());
    const Process *proc = h.sys.find_process(pid.value());
    ASSERT_NE(proc, nullptr);
    EXPECT_EQ(proc->state, ProcState::kBlocked);
    EXPECT_EQ(h.sys.next_wake_time(), ~0ull);
}

TEST(Kernel, NextWakeTimeIsInfiniteWithZeroRunnableProcesses)
{
    KernelHarness h;
    // No processes at all.
    EXPECT_EQ(h.sys.next_wake_time(), ~0ull);
    h.sys.run(/*allow_idle=*/true); // returns immediately, no panic
    EXPECT_TRUE(h.sys.all_exited());
    // After every process has exited there is nothing to wake either.
    EXPECT_EQ(h.run("func main() { return 0; }"), 0);
    EXPECT_TRUE(h.sys.all_exited());
    EXPECT_EQ(h.sys.next_wake_time(), ~0ull);
}

TEST(Kernel, RunAdvancesClockPastFiniteSleeps)
{
    // One process that must wait on simulated network latency twice:
    // once for its own connection to arrive at the listener, once for
    // the payload. With nothing else runnable the kernel has to jump
    // the clock to next_wake_time() for the program to finish at all.
    SimClock clock;
    host::HostFileStore files;
    host::NetSim net(clock);
    baseline::LinuxSystem sys(clock, files, &net);
    auto out = toolchain::compile(R"(
global byte msg[8] = "hello";
global byte buf[16];
func main() {
    var l = sock_listen(9, 4);
    if (l < 0) { return 1; }
    var c = sock_connect(9);
    if (c < 0) { return 2; }
    var s = sock_accept(l);         // sleeps until the SYN arrives
    if (s < 0) { return 3; }
    if (sock_send(c, msg, 5) != 5) { return 4; }
    var n = sock_recv(s, buf, 16);  // sleeps until the payload lands
    if (n != 5) { return 5; }
    return 0;
}
)");
    ASSERT_TRUE(out.ok());
    files.put("prog", out.value().image.serialize());
    auto pid = sys.spawn("prog", {"prog"});
    ASSERT_TRUE(pid.ok());
    uint64_t before = clock.cycles();
    sys.run();
    auto code = sys.exit_code(pid.value());
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), 0);
    EXPECT_GT(clock.cycles(), before);
}

// ---- fd-lifecycle / EFAULT regression sweep ---------------------------

TEST(Regression, FailedPipeCopyRollsBackBothFds)
{
    // pipe() installed both descriptors before copying the fd pair
    // out; when the copy faulted the table kept two orphaned ends.
    // After a failed pipe() the next pipe() must land on the same
    // lowest slots — a leak shows up as higher numbers.
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }          // learns slots 3,4
    close(fds[0]);
    close(fds[1]);
    if (syscall(8, 0x7777777000) != -14) { return 2; } // EFAULT
    var fds2[2];
    if (pipe(fds2) != 0) { return 3; }
    if (fds2[0] != fds[0]) { return 4; }       // leaked descriptor
    if (fds2[1] != fds[1]) { return 5; }
    return 0;
}
)"),
              0);
}

TEST(Regression, Dup2SelfDupIsNoOpWithBlockedPeer)
{
    // dup2(fd, fd) used to release-then-reacquire the file object.
    // The release edge is observable now that close notifies wait
    // queues: with a child blocked reading the pipe, the transient
    // "last writer gone" would wake it for nothing (or worse, close
    // a socket's connection half). POSIX says dup2(fd, fd) does
    // nothing and returns fd.
    KernelHarness h;
    auto child = toolchain::compile(R"(
global byte buf[8];
func main() {
    if (read(0, buf, 8) != 2) { return 9; }    // blocks, then "hi"
    return 0;
}
)");
    ASSERT_TRUE(child.ok());
    h.files.put("blocked_reader", child.value().image.serialize());
    auto &wasted =
        trace::Registry::instance().counter("kernel.wasted_retries");
    uint64_t wasted0 = wasted.value();
    EXPECT_EQ(h.run(R"(
global byte child[16] = "blocked_reader";
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    var argvv[1];
    argvv[0] = child;
    var io3[3];
    io3[0] = fds[0];
    io3[1] = 1;
    io3[2] = 2;
    var pid = spawn_io(child, argvv, 1, io3);
    if (pid < 0) { return 2; }
    close(fds[0]);     // the child holds the only read end
    // Spin until the child is parked in read().
    var i = 0;
    while (i < 200000) { i = i + 1; }
    if (dup2(fds[1], fds[1]) != fds[1]) { return 3; }
    if (write(fds[1], "hi", 2) != 2) { return 4; }
    return waitpid(pid);
}
)"),
              0);
    // The self-dup must not have woken the blocked reader for nothing.
    EXPECT_EQ(wasted.value(), wasted0);
}

TEST(Regression, EfaultReadLeavesStreamIntact)
{
    // The kernel read data into its bounce buffer *before* checking
    // that the destination was writable; a faulting read() therefore
    // consumed the bytes. Destructive reads must probe first: after
    // -EFAULT the stream still holds the data.
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
global byte b[8];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    if (write(fds[1], "ab", 2) != 2) { return 2; }
    if (read(fds[0], 0x7777777000, 2) != -14) { return 3; } // EFAULT
    if (read(fds[0], b, 8) != 2) { return 4; }  // data survived
    if (bload(b) != 'a') { return 5; }
    if (bload(b + 1) != 'b') { return 6; }
    return 0;
}
)"),
              0);
}

TEST(Syscalls, WaitpidSelfReturnsEchild)
{
    // waitpid(getpid()) parked the caller on its own death: an
    // unwakeable deadlock. A process is not its own child — ECHILD.
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
func main() {
    if (waitpid(getpid()) != -10) { return 1; } // ECHILD = 10
    return 0;
}
)"),
              0);
}

TEST(Regression, SendAfterPeerCloseIsPipeShapedDeath)
{
    // A send into a connection whose peer has closed used to succeed
    // silently; it now takes the same default-fatal SIGPIPE path as
    // pipes, recorded as DeathCause::kPipe.
    SimClock clock;
    host::HostFileStore files;
    host::NetSim net(clock);
    baseline::LinuxSystem sys(clock, files, &net);
    auto out = toolchain::compile(R"(
global byte msg[8] = "hello";
func main() {
    var l = sock_listen(9, 4);
    if (l < 0) { return 1; }
    var c = sock_connect(9);
    if (c < 0) { return 2; }
    var s = sock_accept(l);
    if (s < 0) { return 3; }
    close(c);                  // peer goes away
    sock_send(s, msg, 5);      // killed here
    return 7;                  // unreachable
}
)");
    ASSERT_TRUE(out.ok());
    files.put("prog", out.value().image.serialize());
    auto pid = sys.spawn("prog", {"prog"});
    ASSERT_TRUE(pid.ok());
    sys.run();
    auto code = sys.exit_code(pid.value());
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(),
              -static_cast<int64_t>(ErrorCode::kPipe));
    auto record = sys.death_record(pid.value());
    ASSERT_TRUE(record.ok());
    EXPECT_EQ(record.value().cause, DeathCause::kPipe);
}

// ---- poll() semantics -------------------------------------------------

TEST(Poll, TimeoutExpiresWithNothingReady)
{
    // One pollfd on an empty pipe's read end, finite timeout: poll
    // must come back 0 after the deadline, and simulated time must
    // actually have passed.
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
global int pfds[3];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    pfds[0] = fds[0];
    pfds[1] = 0x1;             // POLLIN
    pfds[2] = 0x7;             // stale garbage the kernel must clear
    var t0 = time_ns();
    var r = poll(pfds, 1, 1000000);   // 1 ms
    if (r != 0) { return 2; }
    if (pfds[2] != 0) { return 3; }
    if (time_ns() - t0 < 1000000) { return 4; }
    return 0;
}
)"),
              0);
}

TEST(Poll, ReadinessEdgeWhenPeerCloses)
{
    // The parent blocks in poll() on the read end; the child exits
    // (dropping the inherited last write end) long after the parent
    // is parked. The close edge must wake the poller with POLLHUP —
    // and *only* POLLHUP: the pipe is drained, so POLLIN here would
    // send the caller into a 0-byte read loop instead of announcing
    // the hangup. The read then sees a clean EOF.
    KernelHarness h;
    auto child = toolchain::compile(R"(
func main() {
    var i = 0;
    while (i < 200000) { i = i + 1; }
    return 0;                  // exit drops the write end
}
)");
    ASSERT_TRUE(child.ok());
    h.files.put("closer", child.value().image.serialize());
    EXPECT_EQ(h.run(R"(
global byte child[8] = "closer";
global byte buf[8];
global int pfds[3];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    var argvv[1];
    argvv[0] = child;
    var io3[3];
    io3[0] = 0;
    io3[1] = fds[1];           // child stdout = the write end
    io3[2] = 2;
    if (spawn_io(child, argvv, 1, io3) < 0) { return 2; }
    close(fds[1]);             // the child holds the only writer
    pfds[0] = fds[0];
    pfds[1] = 0x1;             // POLLIN
    pfds[2] = 0;
    var r = poll(pfds, 1, 0 - 1);     // block until the edge
    if (r != 1) { return 3; }
    if (pfds[2] != 0x10) { return 4; }  // POLLHUP alone: no data left
    if (read(fds[0], buf, 8) != 0) { return 5; } // EOF
    return 0;
}
)"),
              0);
}

TEST(Poll, DeadFdReportsNvalAndNegativeFdIsSkipped)
{
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
global int pfds[6];
func main() {
    pfds[0] = 99;              // never-opened descriptor
    pfds[1] = 0x1;
    pfds[2] = 0;
    pfds[3] = 0 - 1;           // negative: skipped per POSIX
    pfds[4] = 0x1;
    pfds[5] = 0x7;
    var r = poll(pfds, 2, 0 - 1);
    if (r != 1) { return 1; }         // NVAL counts as ready
    if (pfds[2] != 0x20) { return 2; }  // POLLNVAL
    if (pfds[5] != 0) { return 3; }     // skipped fd: revents cleared
    return 0;
}
)"),
              0);
}

TEST(Poll, PipeHupWithBufferedDataStillReadable)
{
    // Writer-gone with bytes still buffered: the read end must show
    // POLLIN|POLLHUP while data remains, then POLLHUP alone once
    // drained. Before the fix the read end reported POLLIN forever
    // after the writer closed, even on an empty pipe.
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
global byte buf[8];
global int pfds[3];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    if (write(fds[1], "hi", 2) != 2) { return 2; }
    close(fds[1]);
    pfds[0] = fds[0];
    pfds[1] = 0x1;
    pfds[2] = 0;
    if (poll(pfds, 1, 0) != 1) { return 3; }
    if (pfds[2] != 0x11) { return 4; }   // data AND hangup
    if (read(fds[0], buf, 8) != 2) { return 5; }
    if (poll(pfds, 1, 0) != 1) { return 6; }
    if (pfds[2] != 0x10) { return 7; }   // drained: hangup only
    if (read(fds[0], buf, 8) != 0) { return 8; } // clean EOF
    return 0;
}
)"),
              0);
}

TEST(Regression, SharedSocketSurvivesCloseByOneSip)
{
    // A connection's server/client half is shared between two SIPs
    // (spawn fd inheritance). One SIP closing its descriptor used to
    // tear the NetSim connection down immediately — the other SIP,
    // possibly *blocked in poll() on that very fd*, saw a spurious
    // hangup (or a dangling wakeup registration). The connection must
    // only close when the last descriptor goes, and the close edge
    // must fire exactly once.
    SimClock clock;
    host::HostFileStore files;
    host::NetSim net(clock);
    baseline::LinuxSystem sys(clock, files, &net);
    auto child = toolchain::compile(R"(
global byte msg[4] = "hi";
func main() {
    var i = 0;
    while (i < 200000) { i = i + 1; } // let the parent park in poll()
    if (sock_send(0, msg, 2) != 2) { return 9; }
    i = 0;
    while (i < 200000) { i = i + 1; }
    return 0;  // exit drops the LAST client ref: the real close edge
}
)");
    ASSERT_TRUE(child.ok());
    files.put("sender", child.value().image.serialize());
    auto out = toolchain::compile(R"(
global byte child[8] = "sender";
global byte buf[8];
global int pfds[3];
func main() {
    var l = sock_listen(9, 4);
    if (l < 0) { return 1; }
    var c = sock_connect(9);
    if (c < 0) { return 2; }
    var s = sock_accept(l);
    if (s < 0) { return 3; }
    var argvv[1];
    argvv[0] = child;
    var io3[3];
    io3[0] = c;                // the child shares the client end
    io3[1] = 0 - 1;
    io3[2] = 0 - 1;
    if (spawn_io(child, argvv, 1, io3) < 0) { return 4; }
    close(c);                  // seed bug: this killed the connection
    pfds[0] = s;
    pfds[1] = 0x1;
    pfds[2] = 0;
    // Blocked here when the child's payload lands. With the seed bug
    // this returned instantly with HUP and an EOF read.
    if (poll(pfds, 1, 0 - 1) != 1) { return 5; }
    if ((pfds[2] & 0x1) == 0) { return 6; }
    if ((pfds[2] & 0x10) != 0) { return 7; }  // no phantom hangup
    if (sock_recv(s, buf, 8) != 2) { return 8; }
    // The child's exit drops the last client descriptor: one hangup.
    if (poll(pfds, 1, 0 - 1) != 1) { return 10; }
    if ((pfds[2] & 0x10) == 0) { return 11; }
    if (sock_recv(s, buf, 8) != 0) { return 12; } // EOF after HUP
    return 0;
}
)");
    ASSERT_TRUE(out.ok());
    files.put("prog", out.value().image.serialize());
    auto &wasted =
        trace::Registry::instance().counter("kernel.wasted_retries");
    uint64_t wasted0 = wasted.value();
    auto pid = sys.spawn("prog", {"prog"});
    ASSERT_TRUE(pid.ok());
    sys.run();
    auto code = sys.exit_code(pid.value());
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), 0);
    // Exactly-once close delivery: no wakeup ever found nothing to do.
    // (Injected network faults legitimately perturb wakeup timing, so
    // the counter check only holds on a clean run.)
    if (!faultsim::FaultSim::instance().active()) {
        EXPECT_EQ(wasted.value(), wasted0);
    }
}

TEST(Regression, PollEventsArrayAcrossPageHoleIsAllOrNothing)
{
    // A pollfd array whose tail record straddles an unmapped page:
    // the whole call must fail with EFAULT *before* any revents are
    // written back — a partial writeback would leave the caller
    // acting on half-reported readiness it was told failed.
    HoleyHarness h;
    h.proc.pid = 1;

    // A pipe with one readable byte (fds 0 and 1 in the empty table).
    uint64_t pipe_args[abi::kSyscallArgs] = {0x1000};
    auto r = h.kernel.sys(h.proc, abi::Sys::kPipe, pipe_args);
    ASSERT_TRUE(r && *r == 0);
    ASSERT_EQ(h.space.write_raw(0x1100, "x", 1), vm::AccessFault::kNone);
    uint64_t write_args[abi::kSyscallArgs] = {1, 0x1100, 1};
    r = h.kernel.sys(h.proc, abi::Sys::kWrite, write_args);
    ASSERT_TRUE(r && *r == 1);

    // Record 0 sits in the last 24 bytes of the mapped page; record 1
    // begins exactly at the hole. revents carries a sentinel.
    uint64_t base = 0x2000 - abi::kPollRecordBytes;
    int64_t rec0[3] = {0, 0x1, 0x7};
    ASSERT_EQ(h.space.write_raw(base, rec0, sizeof(rec0)),
              vm::AccessFault::kNone);

    uint64_t poll_args[abi::kSyscallArgs] = {base, 2, 0};
    r = h.kernel.sys(h.proc, abi::Sys::kPoll, poll_args);
    ASSERT_TRUE(r);
    EXPECT_EQ(*r, -static_cast<int64_t>(ErrorCode::kFault));

    // All-or-nothing: the mapped record's revents is untouched even
    // though its fd was genuinely ready.
    int64_t check[3] = {0, 0, 0};
    ASSERT_EQ(h.space.read_raw(base, check, sizeof(check)),
              vm::AccessFault::kNone);
    EXPECT_EQ(check[2], 0x7);

    // The same single record, fully mapped, reports POLLIN.
    uint64_t good_args[abi::kSyscallArgs] = {base, 1, 0};
    r = h.kernel.sys(h.proc, abi::Sys::kPoll, good_args);
    ASSERT_TRUE(r && *r == 1);
    ASSERT_EQ(h.space.read_raw(base, check, sizeof(check)),
              vm::AccessFault::kNone);
    EXPECT_EQ(check[2], 0x1);
}

TEST(Regression, EpollWaitAcrossPageHoleKeepsEdgeState)
{
    // epoll_wait's collect is destructive for edge-triggered entries
    // (a reported fd leaves the ready list), so the output buffer
    // must be probed *before* collecting: an EFAULT buffer must not
    // consume the edge.
    HoleyHarness h;
    h.proc.pid = 1;

    uint64_t pipe_args[abi::kSyscallArgs] = {0x1000};
    auto r = h.kernel.sys(h.proc, abi::Sys::kPipe, pipe_args);
    ASSERT_TRUE(r && *r == 0);
    uint64_t create_args[abi::kSyscallArgs] = {};
    r = h.kernel.sys(h.proc, abi::Sys::kEpollCreate, create_args);
    ASSERT_TRUE(r && *r >= 0);
    uint64_t epfd = static_cast<uint64_t>(*r);
    uint64_t ctl_args[abi::kSyscallArgs] = {
        epfd, abi::kEpollCtlAdd, 0,
        static_cast<uint64_t>(abi::kPollIn) |
            static_cast<uint64_t>(abi::kEpollEt)};
    r = h.kernel.sys(h.proc, abi::Sys::kEpollCtl, ctl_args);
    ASSERT_TRUE(r && *r == 0);

    // One readable byte arms the edge.
    ASSERT_EQ(h.space.write_raw(0x1100, "x", 1), vm::AccessFault::kNone);
    uint64_t write_args[abi::kSyscallArgs] = {1, 0x1100, 1};
    r = h.kernel.sys(h.proc, abi::Sys::kWrite, write_args);
    ASSERT_TRUE(r && *r == 1);

    // Two 16-byte event records starting 16 bytes before the hole:
    // the second straddles unmapped memory.
    uint64_t base = 0x2000 - abi::kEpollRecordBytes;
    uint64_t bad_args[abi::kSyscallArgs] = {epfd, base, 2, 0};
    r = h.kernel.sys(h.proc, abi::Sys::kEpollWait, bad_args);
    ASSERT_TRUE(r);
    EXPECT_EQ(*r, -static_cast<int64_t>(ErrorCode::kFault));

    // The edge survived the failed call: a fully-mapped buffer still
    // reports it (before the fix the EFAULT call dequeued the entry
    // and this returned 0 — a lost event).
    uint64_t good_args[abi::kSyscallArgs] = {epfd, 0x1200, 4, 0};
    r = h.kernel.sys(h.proc, abi::Sys::kEpollWait, good_args);
    ASSERT_TRUE(r && *r == 1);
    int64_t ev[2] = {0, 0};
    ASSERT_EQ(h.space.read_raw(0x1200, ev, sizeof(ev)),
              vm::AccessFault::kNone);
    EXPECT_EQ(ev[0], 0);
    EXPECT_EQ(ev[1] & abi::kPollIn, abi::kPollIn);

    // And the edge is now consumed: nothing further to report.
    r = h.kernel.sys(h.proc, abi::Sys::kEpollWait, good_args);
    ASSERT_TRUE(r && *r == 0);
}

// ---- fd lifecycle under dup2 (PR 9 bugfix sweep) ----------------------

TEST(Regression, Dup2ImplicitCloseDropsEpollInterest)
{
    // dup2 over a watched descriptor is an implicit close: the old
    // registration must leave the interest list, exactly as kClose's
    // auto-removal would. Before the fix the stale entry (a) kept
    // reporting events for the *old* file and (b) made re-ADDing the
    // descriptor fail with a phantom EEXIST.
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
global byte b[4];
func main() {
    var fds[2];
    var fds2[2];
    var evs[8];
    if (pipe(fds) != 0) { return 1; }     // 3, 4
    if (pipe(fds2) != 0) { return 2; }    // 5, 6
    var ep = epoll_create();              // 7
    if (ep != 7) { return 3; }
    if (epoll_ctl(ep, 1, fds[0], 0x1) != 0) { return 4; }
    // Keep the first pipe's read end alive elsewhere so writing to
    // it stays legal after fd 3 is clobbered.
    if (dup2(fds[0], 8) != 8) { return 9; }
    // Replace the watched descriptor with the other pipe's read end.
    if (dup2(fds2[0], fds[0]) != fds[0]) { return 5; }
    // Data on the *old* pipe object must no longer reach the epoll.
    if (write(fds[1], b, 1) != 1) { return 6; }
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 7; }
    // And the slot must be re-addable (no phantom EEXIST).
    if (epoll_ctl(ep, 1, fds[0], 0x1) != 0) { return 8; }
    return 0;
}
)"),
              0);
}

TEST(Regression, Dup2OverLastEpollFdDropsRosterEntry)
{
    // dup2 over the *only* descriptor of an epoll object destroys the
    // object; the process's epoll roster must drop it too. Before the
    // fix the roster kept a dangling pointer and the next close()
    // walked it — a use-after-free the ASan tier-1 leg catches.
    KernelHarness h;
    EXPECT_EQ(h.run(R"(
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }     // 3, 4
    var ep = epoll_create();              // 5
    if (epoll_ctl(ep, 1, fds[0], 0x1) != 0) { return 2; }
    if (dup2(fds[0], ep) != ep) { return 3; }
    // Any close now walks the epoll roster.
    if (close(fds[0]) != 0) { return 4; }
    if (close(ep) != 0) { return 5; }
    return 0;
}
)"),
              0);
}

TEST(Syscalls, LowestFreeFdSurvivesChurn)
{
    // POSIX lowest-free allocation across every lifecycle path that
    // can open a hole: close-in-the-middle, close-at-the-bottom,
    // dup2 (which must NOT open a hole — the slot is reoccupied
    // atomically), and pipe's double allocation.
    KernelHarness h;
    h.files.put("/f.txt", Bytes{});
    EXPECT_EQ(h.run(R"(
global byte p[12] = "/f.txt";
func main() {
    var a = open(p, 0);
    var b2 = open(p, 0);
    var c = open(p, 0);
    var d = open(p, 0);
    if (a != 3) { return 1; }
    if (d != 6) { return 2; }
    close(c);                            // hole at 5
    close(a);                            // hole at 3: hint rewinds
    if (open(p, 0) != 3) { return 3; }   // lowest hole first
    if (open(p, 0) != 5) { return 4; }   // then the next one up
    if (dup2(b2, 9) != 9) { return 5; }  // no hole: 9 becomes busy
    close(b2);                           // hole at 4
    if (open(p, 0) != 4) { return 6; }
    var fds[2];
    if (pipe(fds) != 0) { return 7; }
    if (fds[0] != 7) { return 8; }       // dense run continues
    if (fds[1] != 8) { return 9; }
    close(9);
    if (open(p, 0) != 9) { return 10; }
    return 0;
}
)"),
              0);
}

// ---- timer-heap compaction (PR 9 bugfix sweep) ------------------------

TEST(Timers, PollRearmCancelLoopKeepsHeapBounded)
{
    // A poll() with a far deadline that is woken early by data leaves
    // its (when, pid) entry dead in the heap: it is far in the
    // future, so lazy top-pruning never reaches it. Re-armed in a
    // loop, the heap grew by one entry per iteration (~1500 here)
    // until compaction was added; now stale entries are swept once
    // they are numerous and the majority.
    KernelHarness h;
    auto child = toolchain::compile(R"(
global byte b[4];
func main() {
    var i = 0;
    while (i < 1500) {
        if (read(0, b, 1) != 1) { return 1; }
        if (write(1, b, 1) != 1) { return 2; }
        i = i + 1;
    }
    return 0;
}
)");
    ASSERT_TRUE(child.ok());
    h.files.put("echo", child.value().image.serialize());
    auto out = toolchain::compile(R"(
global byte child[8] = "echo";
global byte b[4];
func main() {
    var req[2];
    var resp[2];
    if (pipe(req) != 0) { return 1; }    // 3, 4
    if (pipe(resp) != 0) { return 2; }   // 5, 6
    var argvv[1];
    argvv[0] = child;
    var io3[3];
    io3[0] = req[0];    // child stdin: request pipe read end
    io3[1] = resp[1];   // child stdout: response pipe write end
    io3[2] = 2;
    var cpid = spawn_io(child, argvv, 1, io3);
    if (cpid < 0) { return 3; }
    close(req[0]);
    close(resp[1]);
    var pfd[3];
    var t = 1000000000;
    t = t * 1000;       // 1000 s: the deadline never comes due
    var i = 0;
    while (i < 1500) {
        if (write(req[1], b, 1) != 1) { return 4; }
        pfd[0] = resp[0];
        pfd[1] = 0x1;
        pfd[2] = 0;
        if (poll(pfd, 1, t) != 1) { return 5; }
        if (read(resp[0], b, 1) != 1) { return 6; }
        i = i + 1;
    }
    close(req[1]);
    return waitpid(cpid);
}
)");
    ASSERT_TRUE(out.ok());
    h.files.put("prog", out.value().image.serialize());
    auto pid = h.sys.spawn("prog", {"prog"});
    ASSERT_TRUE(pid.ok());
    h.sys.run();
    auto code = h.sys.exit_code(pid.value());
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), 0);
    // Seed behaviour: ~1500 dead entries left behind. With
    // compaction the heap stays within a small constant of the live
    // count (threshold 64, majority rule).
    EXPECT_LT(h.sys.timer_entries(), 512u);
}

// ---- SMP scheduling (PR 9 tentpole) -----------------------------------

namespace smp {

/** Counter snapshot helper (the registry is process-global). */
uint64_t
ctr(const std::string &name)
{
    return trace::Registry::instance().counter(name).value();
}

constexpr const char *kStormParent = R"(
global byte child[8] = "kid";
func main() {
    var argvv[1];
    var pids[24];
    argvv[0] = child;
    var i = 0;
    while (i < 24) {
        pids[i] = spawn(child, argvv, 1);
        if (pids[i] < 0) { return 1; }
        i = i + 1;
    }
    i = 0;
    while (i < 24) {
        if (waitpid(pids[i]) != 7) { return 2; }
        i = i + 1;
    }
    return 0;
}
)";

constexpr const char *kStormChild = R"(
func main() {
    var i = 0;
    while (i < 3000) { i = i + 1; }
    return 7;
}
)";

/** Run the spawn storm at `cores`; returns (death order, cycles). */
std::pair<std::vector<int>, uint64_t>
run_storm(int cores)
{
    KernelHarness h;
    h.sys.set_cores(cores);
    auto kid = toolchain::compile(kStormChild);
    EXPECT_TRUE(kid.ok());
    h.files.put("kid", kid.value().image.serialize());
    EXPECT_EQ(h.run(kStormParent), 0);
    EXPECT_TRUE(h.sys.all_exited());
    return {h.sys.death_order(), h.clock.cycles()};
}

} // namespace smp

TEST(Smp, SpawnStormCompletesDeterministicallyAcrossCores)
{
    // 24 children spawned back-to-back (a spawn storm: many pids
    // enter the walk mid-round) must all run, complete, and be
    // reaped at every core count — and the completion order must be
    // a pure function of the core count: two identical runs agree
    // exactly, including total simulated cycles.
    for (int cores : {1, 2, 4}) {
        auto first = smp::run_storm(cores);
        auto second = smp::run_storm(cores);
        EXPECT_EQ(first.first, second.first) << "cores=" << cores;
        EXPECT_EQ(first.second, second.second) << "cores=" << cores;
        EXPECT_EQ(first.first.size(), 25u) << "cores=" << cores;
    }
    // More cores must not be slower on a 24-wide parallel workload.
    EXPECT_LT(smp::run_storm(4).second, smp::run_storm(1).second);
}

TEST(Smp, IdleCoresStealFromLoadedCoreAndFinishSooner)
{
    // Two long jobs whose pids collide on one home core (2 and 6,
    // both pid % 4 == 2) with three instant-exit spacers between
    // them. Once the spacers die, core 2 owns both long jobs: an
    // idle core must steal the lowest pid from it (the most-loaded
    // queue) and the pair must finish in roughly half the unicore
    // time.
    auto run_once = [](int cores, uint64_t &cycles) {
        KernelHarness h;
        h.sys.set_cores(cores);
        auto lng = toolchain::compile(R"(
func main() {
    var i = 0;
    while (i < 300000) { i = i + 1; }
    return 5;
}
)");
        auto quick = toolchain::compile("func main() { return 6; }");
        ASSERT_TRUE(lng.ok());
        ASSERT_TRUE(quick.ok());
        h.files.put("long", lng.value().image.serialize());
        h.files.put("quick", quick.value().image.serialize());
        EXPECT_EQ(h.run(R"(
global byte lng[8] = "long";
global byte qck[8] = "quick";
func main() {
    var argvv[1];
    argvv[0] = lng;
    var a = spawn(lng, argvv, 1);     // pid 2 (home 2 at 4 cores)
    argvv[0] = qck;
    var s1 = spawn(qck, argvv, 1);    // pid 3
    var s2 = spawn(qck, argvv, 1);    // pid 4
    var s3 = spawn(qck, argvv, 1);    // pid 5
    argvv[0] = lng;
    var b2 = spawn(lng, argvv, 1);    // pid 6 (home 2 at 4 cores)
    if (waitpid(a) != 5) { return 1; }
    if (waitpid(b2) != 5) { return 2; }
    if (waitpid(s1) != 6) { return 3; }
    if (waitpid(s2) != 6) { return 4; }
    if (waitpid(s3) != 6) { return 5; }
    return 0;
}
)"),
                  0);
        cycles = h.clock.cycles();
    };
    uint64_t steals_before = smp::ctr("kernel.core0.steals");
    uint64_t uni_cycles = 0;
    uint64_t smp_cycles = 0;
    run_once(1, uni_cycles);
    run_once(4, smp_cycles);
    // The idle core 0 stole pid 2 from core 2's two-deep queue.
    EXPECT_GT(smp::ctr("kernel.core0.steals"), steals_before);
    // Both long jobs overlap in simulated time: real speedup.
    EXPECT_LT(smp_cycles, uni_cycles * 3 / 4);
}

TEST(Smp, CrossCoreWakeupLandsOnHomeCoreQueue)
{
    // A SIP homed on core 0 (pid 2 at 2 cores) blocks reading a
    // pipe; the writer is homed on core 1 (pid 1). The wake must
    // land on the *reader's* home queue — counted by the per-core
    // wakeup metric — and the reader must complete.
    uint64_t wakeups_before = smp::ctr("kernel.core0.wakeups");
    KernelHarness h;
    h.sys.set_cores(2);
    auto child = toolchain::compile(R"(
global byte b[4];
func main() {
    if (read(0, b, 1) != 1) { return 1; }
    return 9;
}
)");
    ASSERT_TRUE(child.ok());
    h.files.put("rdr", child.value().image.serialize());
    EXPECT_EQ(h.run(R"(
global byte child[8] = "rdr";
global byte b[4];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    var argvv[1];
    argvv[0] = child;
    var io3[3];
    io3[0] = fds[0];
    io3[1] = 1;
    io3[2] = 2;
    var cpid = spawn_io(child, argvv, 1, io3);
    if (cpid < 0) { return 2; }
    close(fds[0]);
    // Let the reader park first (it blocks on the empty pipe), then
    // wake it from the other core.
    var i = 0;
    while (i < 60000) { i = i + 1; }
    if (write(fds[1], b, 1) != 1) { return 3; }
    if (waitpid(cpid) != 9) { return 4; }
    return 0;
}
)"),
              0);
    EXPECT_GT(smp::ctr("kernel.core0.wakeups"), wakeups_before);
}

namespace smp {

/**
 * The stolen-then-woken double-run shape, at `cores`. Returns
 * (death order, cycles); the caller diffs kernel.deferred_retries.
 *
 * The choreography (4 cores): pid 3 ("rdr", home core 3) spins long
 * enough for the spacer pids 2/4/5/6 to die, leaving core 0 idle
 * while queue 3 stays two-deep (pid 7 keeps spinning) — so core 0
 * steals pid 3 every round. When its spin drains, pid 3 writes one
 * byte to the signal pipe (stdout) and next round blocks reading the
 * empty data pipe (stdin) — during its *stolen* quantum on core 0,
 * stamping ran_round. The orchestrator pid 1 (home core 1) parked on
 * the signal pipe wakes, spins just past one quantum, and writes the
 * data pipe — landing in exactly the round where pid 3 both ran
 * (stolen) and blocked. Core 3's wake-pending drain then sees a SIP
 * whose ran_round equals the current round: retrying would make it
 * run twice in one round, so the retry must be deferred.
 */
std::pair<std::vector<int>, uint64_t>
run_stolen_then_woken(int cores)
{
    KernelHarness h;
    h.sys.set_cores(cores);
    auto spacer = toolchain::compile("func main() { return 5; }");
    auto reader = toolchain::compile(R"(
global byte b[4];
func main() {
    var i = 0;
    while (i < 120000) { i = i + 1; }
    if (write(1, b, 1) != 1) { return 1; }
    if (read(0, b, 1) != 1) { return 2; }
    return 9;
}
)");
    auto spinner = toolchain::compile(R"(
func main() {
    var i = 0;
    while (i < 400000) { i = i + 1; }
    return 7;
}
)");
    EXPECT_TRUE(spacer.ok() && reader.ok() && spinner.ok());
    h.files.put("spc", spacer.value().image.serialize());
    h.files.put("rdr", reader.value().image.serialize());
    h.files.put("spin", spinner.value().image.serialize());
    EXPECT_EQ(h.run(R"(
global byte spacer[8] = "spc";
global byte reader[8] = "rdr";
global byte spinner[8] = "spin";
global byte b[4];
func main() {
    var sig[2];
    var dat[2];
    if (pipe(sig) != 0) { return 1; }
    if (pipe(dat) != 0) { return 1; }
    var argvv[1];
    argvv[0] = spacer;
    var p2 = spawn(spacer, argvv, 1);
    var io3[3];
    io3[0] = dat[0];
    io3[1] = sig[1];
    io3[2] = 2;
    argvv[0] = reader;
    var p3 = spawn_io(reader, argvv, 1, io3);
    argvv[0] = spacer;
    var p4 = spawn(spacer, argvv, 1);
    var p5 = spawn(spacer, argvv, 1);
    var p6 = spawn(spacer, argvv, 1);
    argvv[0] = spinner;
    var p7 = spawn(spinner, argvv, 1);
    if (p2 < 0) { return 2; }
    if (p3 < 0) { return 2; }
    if (p4 < 0) { return 2; }
    if (p5 < 0) { return 2; }
    if (p6 < 0) { return 2; }
    if (p7 < 0) { return 2; }
    close(dat[0]);
    close(sig[1]);
    if (read(sig[0], b, 1) != 1) { return 3; }
    var i = 0;
    while (i < 4500) { i = i + 1; }
    if (write(dat[1], b, 1) != 1) { return 4; }
    if (waitpid(p3) != 9) { return 5; }
    if (waitpid(p2) != 5) { return 6; }
    if (waitpid(p4) != 5) { return 6; }
    if (waitpid(p5) != 5) { return 6; }
    if (waitpid(p6) != 5) { return 6; }
    if (waitpid(p7) != 7) { return 7; }
    return 0;
}
)"),
              0);
    EXPECT_TRUE(h.sys.all_exited());
    return {h.sys.death_order(), h.clock.cycles()};
}

} // namespace smp

TEST(Smp, StolenThenWokenSipRunsOnceAndRetryIsDeferred)
{
    // Regression for the stolen-then-woken double-run hazard: the
    // wake-pending drain used to retry a SIP's blocked syscall on its
    // home core even when the SIP had already run a stolen quantum
    // this round — completing the syscall on a timeline that rewound
    // to the round start, i.e. overlapping the SIP's own quantum in
    // simulated time. The drain must defer such retries to the next
    // round (counted by kernel.deferred_retries, which this scenario
    // is engineered to hit), and the schedule must stay deterministic
    // run to run at every swept core count.
    uint64_t deferred0 = smp::ctr("kernel.deferred_retries");
    for (int cores : {2, 4}) {
        auto first = smp::run_stolen_then_woken(cores);
        auto second = smp::run_stolen_then_woken(cores);
        EXPECT_EQ(first.first, second.first)
            << "death order must be deterministic at cores=" << cores;
        EXPECT_EQ(first.second, second.second)
            << "cycles must be deterministic at cores=" << cores;
    }
    // The 4-core choreography reaches the hazard (steal core 0 <
    // waker core 1 < home core 3); the deferral path must have fired.
    EXPECT_GT(smp::ctr("kernel.deferred_retries"), deferred0);
}

} // namespace
} // namespace occlum::oskit
