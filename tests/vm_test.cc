/**
 * @file
 * Unit tests for the VM: address-space mapping/permissions, CPU
 * arithmetic and control flow, stack ops, bound-register faults, and
 * the guard-region fault behaviour MMDSFI relies on.
 */
#include <gtest/gtest.h>

#include <cstdlib>

#include "isa/assembler.h"
#include "vm/address_space.h"
#include "vm/cpu.h"

namespace occlum::vm {
namespace {

using isa::Cond;
using isa::mem_abs;
using isa::mem_bd;
using isa::mem_rip;
using isa::mem_sib;

constexpr uint64_t kCode = 0x10000;
constexpr uint64_t kData = 0x20000;
constexpr uint64_t kStackTop = 0x30000;

/** Map code+data+stack and run the assembled program until exit. */
class VmHarness
{
  public:
    VmHarness() : cpu(space)
    {
        EXPECT_TRUE(space.map(kCode, 0x1000, kPermRX).ok());
        EXPECT_TRUE(space.map(kData, 0x1000, kPermRW).ok());
        EXPECT_TRUE(space.map(kStackTop - 0x2000, 0x2000, kPermRW).ok());
        cpu.set_sp(kStackTop - 8);
    }

    CpuExit
    run(isa::Assembler &a, uint64_t budget = 1'000'000)
    {
        Bytes code = a.finish();
        EXPECT_LE(code.size(), 0x1000u);
        EXPECT_EQ(space.write_raw(kCode, code.data(), code.size()),
                  AccessFault::kNone);
        space.touch_code();
        cpu.set_rip(kCode);
        return cpu.run(budget);
    }

    AddressSpace space;
    Cpu cpu;
};

TEST(AddressSpace, MapUnmapProtect)
{
    AddressSpace space;
    EXPECT_TRUE(space.map(0x1000, 0x2000, kPermRW).ok());
    EXPECT_FALSE(space.map(0x2000, 0x1000, kPermRW).ok()); // overlap
    EXPECT_FALSE(space.map(0x1234, 0x1000, kPermRW).ok()); // unaligned
    EXPECT_TRUE(space.is_mapped(0x1000, 0x2000));
    EXPECT_EQ(space.perms_at(0x1fff), kPermRW);
    EXPECT_TRUE(space.protect(0x1000, 0x1000, kPermR).ok());
    EXPECT_EQ(space.perms_at(0x1000), kPermR);
    space.unmap(0x1000, 0x1000);
    EXPECT_FALSE(space.is_mapped(0x1000, 0x1000));
    EXPECT_TRUE(space.is_mapped(0x2000, 0x1000));
}

TEST(AddressSpace, PermissionEnforcement)
{
    AddressSpace space;
    ASSERT_TRUE(space.map(0x1000, 0x1000, kPermR).ok());
    uint64_t v = 42;
    EXPECT_EQ(space.write(0x1000, &v, 8), AccessFault::kNoWrite);
    EXPECT_EQ(space.read(0x1000, &v, 8), AccessFault::kNone);
    EXPECT_EQ(space.fetch(0x1000, &v, 1), AccessFault::kNoExec);
    EXPECT_EQ(space.read(0x5000, &v, 8), AccessFault::kUnmapped);
    // Trusted raw access bypasses permissions but not mapping.
    EXPECT_EQ(space.write_raw(0x1000, &v, 8), AccessFault::kNone);
    EXPECT_EQ(space.write_raw(0x5000, &v, 8), AccessFault::kUnmapped);
}

TEST(AddressSpace, CrossPageAccess)
{
    AddressSpace space;
    ASSERT_TRUE(space.map(0x1000, 0x2000, kPermRW).ok());
    uint64_t v = 0x1122334455667788ull;
    EXPECT_EQ(space.write(0x1ffc, &v, 8), AccessFault::kNone);
    uint64_t back = 0;
    EXPECT_EQ(space.read(0x1ffc, &back, 8), AccessFault::kNone);
    EXPECT_EQ(back, v);
    // Partially unmapped cross-page access faults.
    EXPECT_EQ(space.write(0x2ffc, &v, 8), AccessFault::kUnmapped);
}

TEST(Cpu, ArithmeticAndMov)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 10);
    a.mov_ri(2, 3);
    a.add_rr(1, 2);   // 13
    a.mul_ri(1, 4);   // 52
    a.sub_ri(1, 2);   // 50
    a.mov_rr(3, 1);
    a.div_rr(3, 2);   // 16 (50/3)
    a.mod_rr(1, 2);   // 2
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(3), 16u);
    EXPECT_EQ(h.cpu.reg(1), 2u);
}

TEST(Cpu, SignedDivision)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, -50);
    a.mov_ri(2, 3);
    a.div_rr(1, 2);
    a.mov_ri(3, -50);
    a.mod_rr(3, 2);
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(static_cast<int64_t>(h.cpu.reg(1)), -16);
    EXPECT_EQ(static_cast<int64_t>(h.cpu.reg(3)), -2);
}

TEST(Cpu, DivideByZeroFaults)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 5);
    a.mov_ri(2, 0);
    a.div_rr(1, 2);
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kDivide);
}

TEST(Cpu, ShiftsAndBitwise)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 0xf0);
    a.shl_ri(1, 4);       // 0xf00
    a.or_ri(1, 0x0f);     // 0xf0f
    a.and_ri(1, 0xff);    // 0x0f
    a.xor_ri(1, 0xff);    // 0xf0
    a.mov_ri(2, -8);
    a.sar_ri(2, 1);       // -4
    a.mov_ri(3, -8);
    a.shr_ri(3, 60);      // high bits of two's complement
    a.not_(1);
    a.neg(2);
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), ~0xf0ull);
    EXPECT_EQ(static_cast<int64_t>(h.cpu.reg(2)), 4);
    EXPECT_EQ(h.cpu.reg(3), 0xfull);
}

TEST(Cpu, LoadStoreAllWidths)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, kData);
    a.mov_ri(2, static_cast<int64_t>(0x1122334455667788ull));
    a.store(mem_bd(1, 0), 2);
    a.load(3, mem_bd(1, 0));
    a.store8(mem_bd(1, 16), 2);
    a.load8(4, mem_bd(1, 16));
    a.store32(mem_bd(1, 32), 2);
    a.load32(5, mem_bd(1, 32));
    // SIB addressing: kData + 2*8 + 0
    a.mov_ri(6, 2);
    a.store(mem_sib(1, 6, 3, 0), 2);
    a.load(7, mem_bd(1, 16)); // overlaps store8 slot; check little endian
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(3), 0x1122334455667788ull);
    EXPECT_EQ(h.cpu.reg(4), 0x88ull);
    EXPECT_EQ(h.cpu.reg(5), 0x55667788ull);
    EXPECT_EQ(h.cpu.reg(7), 0x1122334455667788ull);
}

TEST(Cpu, AbsoluteAndRipRelative)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(2, 777);
    a.store(mem_abs(kData + 8), 2);
    a.load(3, mem_abs(kData + 8));
    a.lea(4, mem_rip(0)); // address after the lea
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(3), 777u);
    // lea rip+0 = end of that instruction = ltrap address.
    EXPECT_EQ(h.cpu.reg(4), exit.rip);
}

TEST(Cpu, ConditionalBranchMatrix)
{
    struct Case {
        int64_t a, b;
        Cond cond;
        bool taken;
    };
    const Case cases[] = {
        {5, 5, Cond::kEq, true},    {5, 6, Cond::kEq, false},
        {5, 6, Cond::kNe, true},    {-1, 1, Cond::kLt, true},
        {1, -1, Cond::kLt, false},  {-1, -1, Cond::kLe, true},
        {2, 1, Cond::kGt, true},    {-5, -4, Cond::kGe, false},
        {-1, 1, Cond::kB, false},   // unsigned: -1 is huge
        {1, 2, Cond::kB, true},     {2, 2, Cond::kBe, true},
        {-1, 1, Cond::kA, true},    {3, 3, Cond::kAe, true},
    };
    for (const auto &c : cases) {
        VmHarness h;
        isa::Assembler a(kCode);
        a.mov_ri(1, c.a);
        a.mov_ri(2, c.b);
        a.mov_ri(3, 0);
        a.cmp_rr(1, 2);
        a.jcc(c.cond, "taken");
        a.mov_ri(3, 1); // fallthrough marker
        a.jmp("out");
        a.bind("taken");
        a.mov_ri(3, 2);
        a.bind("out");
        a.ltrap();
        CpuExit exit = h.run(a);
        ASSERT_EQ(exit.kind, ExitKind::kLtrap);
        EXPECT_EQ(h.cpu.reg(3), c.taken ? 2u : 1u)
            << c.a << " " << c.b << " " << isa::cond_name(c.cond);
    }
}

TEST(Cpu, CallRetAndStack)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 5);
    a.call("double_it");
    a.ltrap();
    a.bind("double_it");
    a.push(2);
    a.mov_ri(2, 2);
    a.mul_rr(1, 2);
    a.pop(2);
    a.ret();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 10u);
    EXPECT_EQ(h.cpu.sp(), kStackTop - 8); // balanced
}

TEST(Cpu, IndirectJumpAndCall)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_rl(4, "target");
    a.call_reg(4);
    a.ltrap();
    a.bind("target");
    a.mov_ri(1, 99);
    a.ret();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 99u);
}

TEST(Cpu, LoopExecutesExactly)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 0);
    a.mov_ri(2, 100);
    a.bind("loop");
    a.add_ri(1, 3);
    a.sub_ri(2, 1);
    a.cmp_ri(2, 0);
    a.jcc(Cond::kNe, "loop");
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 300u);
}

TEST(Cpu, GuardRegionFaultsLikeMmdsfiExpects)
{
    // Unmapped pages adjacent to data fault on access: the mechanism
    // behind guard regions G1/G2 (paper §4.1).
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, kData + 0x1000); // first byte past the data page
    a.store(mem_bd(1, 0), 2);
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kPageFault);
    EXPECT_EQ(exit.fault_addr, kData + 0x1000);
}

TEST(Cpu, StorePermissionFault)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, kCode); // code is RX
    a.store(mem_bd(1, 0), 2);
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kPermFault);
}

TEST(Cpu, ExecuteDataFaults)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, kData);
    a.jmp_reg(1);
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kExecFault);
    EXPECT_EQ(exit.rip, kData);
}

TEST(Cpu, BoundCheckPassAndFail)
{
    VmHarness h;
    h.cpu.set_bnd(0, {kData, kData + 0xfff});
    isa::Assembler a(kCode);
    a.mov_ri(1, kData + 100);
    a.bndcl_mem(0, mem_bd(1, 0));
    a.bndcu_mem(0, mem_bd(1, 0));
    a.store(mem_bd(1, 0), 2);  // guarded access succeeds
    a.mov_ri(1, kData + 0x1000);
    a.bndcu_mem(0, mem_bd(1, 0)); // out of bounds: #BR
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kBoundRange);
    EXPECT_EQ(exit.fault_addr, kData + 0x1000);
}

TEST(Cpu, BoundCheckRegisterEquality)
{
    // cfi_guard semantics: bnd1 = [v, v] is an equality test.
    VmHarness h;
    uint64_t label = isa::cfi_label_value(7);
    h.cpu.set_bnd(1, {label, label});
    isa::Assembler a(kCode);
    a.mov_ri(1, static_cast<int64_t>(label));
    a.bndcl_reg(1, 1);
    a.bndcu_reg(1, 1);
    a.mov_ri(2, static_cast<int64_t>(label + 1));
    a.bndcu_reg(1, 2); // fails
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kBoundRange);
}

TEST(Cpu, PrivilegedInstructionsExit)
{
    for (auto make : {+[](isa::Assembler &a) { a.hlt(); },
                      +[](isa::Assembler &a) { a.eexit(); },
                      +[](isa::Assembler &a) { a.xrstor(); },
                      +[](isa::Assembler &a) { a.wrfsbase(3); },
                      +[](isa::Assembler &a) { a.bndmk(0, mem_bd(1, 0)); }}) {
        VmHarness h;
        isa::Assembler a(kCode);
        make(a);
        CpuExit exit = h.run(a);
        EXPECT_EQ(exit.kind, ExitKind::kPrivileged);
    }
}

TEST(Cpu, LtrapResumesAfterTrap)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 1);
    a.ltrap();
    a.mov_ri(1, 2);
    a.ltrap();
    Bytes code = a.finish();
    ASSERT_EQ(h.space.write_raw(kCode, code.data(), code.size()),
              AccessFault::kNone);
    h.space.touch_code();
    h.cpu.set_rip(kCode);
    CpuExit first = h.cpu.run(1000);
    EXPECT_EQ(first.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 1u);
    CpuExit second = h.cpu.run(1000);
    EXPECT_EQ(second.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 2u);
}

TEST(Cpu, InstructionBudgetStopsLoops)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.bind("spin");
    a.jmp("spin");
    CpuExit exit = h.run(a, 1000);
    EXPECT_EQ(exit.kind, ExitKind::kInstrBudget);
}

TEST(Cpu, CyclesAccumulate)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 7);
    a.ltrap();
    h.run(a);
    EXPECT_GT(h.cpu.cycles(), 0u);
    EXPECT_EQ(h.cpu.instructions(), 2u);
}

TEST(Cpu, JumpIntoMiddleOfInstructionDecodesDifferently)
{
    // The variable-length property: a mov_ri whose immediate encodes a
    // valid instruction stream can be entered mid-instruction. Here
    // the middle bytes decode as `nop`s; landing there must NOT be an
    // invalid-opcode fault but execute *different* instructions —
    // exactly the hazard MMDSFI's CFI closes.
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 0); // 10 bytes: opcode, reg, 8x 0x00 (nop opcodes)
    a.ltrap();
    Bytes code = a.finish();
    ASSERT_EQ(h.space.write_raw(kCode, code.data(), code.size()),
              AccessFault::kNone);
    h.space.touch_code();
    h.cpu.set_rip(kCode + 2); // into the immediate: eight nops
    CpuExit exit = h.cpu.run(100);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap); // fell through to ltrap
    EXPECT_EQ(h.cpu.instructions(), 9u);    // 8 nops + ltrap
}

// ---- predecoded basic-block cache -------------------------------------

/** Encoded length of one instruction (encodings are fixed per op). */
template <typename EmitFn>
size_t
encoded_len(EmitFn emit)
{
    isa::Assembler a(0);
    emit(a);
    return a.finish().size();
}

TEST(BlockCache, HitsAccumulateAcrossLoopIterations)
{
    VmHarness h;
    // This test asserts tier-1 dispatch-counter mechanics; with the
    // superblock tier on, the loop would promote at the threshold and
    // bb-hit accumulation would freeze at ~kPromoteThreshold.
    h.cpu.set_superblock_enabled(false);
    isa::Assembler a(kCode);
    a.mov_ri(1, 0);
    a.mov_ri(2, 100);
    a.bind("loop");
    a.add_ri(1, 1);
    a.sub_ri(2, 1);
    a.cmp_ri(2, 0);
    a.jcc(Cond::kNe, "loop");
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 100u);
    // The loop body re-enters the same block ~99 times; only a
    // handful of distinct entry rips ever need decoding.
    EXPECT_GT(h.cpu.block_cache_hits(), 90u);
    EXPECT_LT(h.cpu.block_cache_misses(), 10u);
    EXPECT_EQ(h.cpu.block_cache_invalidations(), 0u);
}

TEST(BlockCache, WriteToCodePageInvalidatesWithoutTouchCode)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 1);
    a.ltrap();
    EXPECT_EQ(h.run(a).kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 1u);

    // Rewrite the code bytes *without* calling touch_code: the write
    // into an executable page must advance the generation by itself.
    isa::Assembler b(kCode);
    b.mov_ri(1, 2);
    b.ltrap();
    Bytes code = b.finish();
    uint64_t gen_before = h.space.code_generation();
    ASSERT_EQ(h.space.write_raw(kCode, code.data(), code.size()),
              AccessFault::kNone);
    EXPECT_GT(h.space.code_generation(), gen_before);

    h.cpu.set_rip(kCode);
    EXPECT_EQ(h.cpu.run(100).kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 2u);
    EXPECT_GE(h.cpu.block_cache_invalidations(), 1u);
}

TEST(BlockCache, PermissionChangesInvolvingExecBumpGeneration)
{
    AddressSpace space;
    ASSERT_TRUE(space.map(0x1000, 0x1000, kPermRX).ok());
    ASSERT_TRUE(space.map(0x2000, 0x1000, kPermRW).ok());
    uint64_t gen = space.code_generation();

    // RW-only traffic leaves code caches alone.
    ASSERT_TRUE(space.protect(0x2000, 0x1000, kPermR).ok());
    uint32_t v = 7;
    ASSERT_TRUE(space.protect(0x2000, 0x1000, kPermRW).ok());
    ASSERT_EQ(space.write(0x2000, &v, sizeof(v)), AccessFault::kNone);
    EXPECT_EQ(space.code_generation(), gen);

    // Dropping X (the SGX runtime_protect path) invalidates.
    ASSERT_TRUE(space.protect(0x1000, 0x1000, kPermR).ok());
    EXPECT_GT(space.code_generation(), gen);
    gen = space.code_generation();

    // Regaining X invalidates again.
    ASSERT_TRUE(space.protect(0x1000, 0x1000, kPermRX).ok());
    EXPECT_GT(space.code_generation(), gen);
    gen = space.code_generation();

    // Mapping and unmapping executable pages both invalidate (new
    // pages can complete previously truncated instruction fetches).
    ASSERT_TRUE(space.map(0x3000, 0x1000, kPermRX).ok());
    EXPECT_GT(space.code_generation(), gen);
    gen = space.code_generation();
    space.unmap(0x3000, 0x1000);
    EXPECT_GT(space.code_generation(), gen);
    gen = space.code_generation();
    ASSERT_TRUE(space.map(0x4000, 0x1000, kPermRW).ok());
    space.unmap(0x4000, 0x1000);
    EXPECT_EQ(space.code_generation(), gen);
}

TEST(BlockCache, SelfModifyingStoreTakesEffectMidBlock)
{
    // A store that patches the immediate of a *later* instruction in
    // the same straight-line run: the interpreter must notice the
    // generation bump mid-block and re-decode instead of replaying
    // the stale predecoded op.
    VmHarness h;
    ASSERT_TRUE(h.space.protect(kCode, 0x1000, kPermRWX).ok());

    size_t mov_len =
        encoded_len([](isa::Assembler &a) { a.mov_ri(2, 0x41); });
    size_t store_len = encoded_len(
        [](isa::Assembler &a) { a.store8(mem_bd(3, 0), 2); });
    // Layout: mov r2 | mov r3 | store8 | mov r1, 0 | ltrap.
    // The patch target is the first immediate byte of `mov r1, 0`.
    uint64_t patch_addr = kCode + 2 * mov_len + store_len + 2;

    isa::Assembler a(kCode);
    a.mov_ri(2, 0x41);
    a.mov_ri(3, static_cast<int64_t>(patch_addr));
    a.store8(mem_bd(3, 0), 2);
    a.mov_ri(1, 0); // immediate patched to 0x41 by the store above
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 0x41u);
}

TEST(BlockCache, OffModeIsBitIdenticalInCyclesAndState)
{
    auto program = [](isa::Assembler &a) {
        a.mov_ri(1, 0);
        a.mov_ri(2, 50);
        a.bind("loop");
        a.store(mem_abs(kData), 1);
        a.load(3, mem_abs(kData));
        a.add_rr(1, 3);
        a.push(1);
        a.pop(4);
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    VmHarness on;
    VmHarness off;
    off.cpu.set_block_cache_enabled(false);
    ASSERT_TRUE(on.cpu.block_cache_enabled());
    ASSERT_FALSE(off.cpu.block_cache_enabled());

    isa::Assembler a1(kCode);
    program(a1);
    CpuExit e1 = on.run(a1);
    isa::Assembler a2(kCode);
    program(a2);
    CpuExit e2 = off.run(a2);

    EXPECT_EQ(e1.kind, e2.kind);
    EXPECT_EQ(on.cpu.cycles(), off.cpu.cycles());
    EXPECT_EQ(on.cpu.instructions(), off.cpu.instructions());
    EXPECT_EQ(on.cpu.rip(), off.cpu.rip());
    for (int r = 0; r < isa::kNumRegs; ++r) {
        EXPECT_EQ(on.cpu.reg(r), off.cpu.reg(r)) << "reg " << r;
    }
    EXPECT_EQ(off.cpu.block_cache_hits(), 0u);
    EXPECT_EQ(off.cpu.block_cache_misses(), 0u);
}

TEST(BlockCache, InstructionBudgetStopsMidBlockAndResumes)
{
    VmHarness h;
    size_t nop_len = encoded_len([](isa::Assembler &a) { a.nop(); });
    isa::Assembler a(kCode);
    for (int i = 0; i < 10; ++i) {
        a.nop();
    }
    a.ltrap();
    CpuExit exit = h.run(a, 4);
    EXPECT_EQ(exit.kind, ExitKind::kInstrBudget);
    EXPECT_EQ(h.cpu.instructions(), 4u);
    EXPECT_EQ(h.cpu.rip(), kCode + 4 * nop_len);
    // Resuming mid-block re-enters at rip and finishes the run.
    exit = h.cpu.run(1000);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.instructions(), 11u);
}

TEST(BlockCache, EntryPointKeyedBlocksPreserveOverlappingDecode)
{
    // Same bytes, two entry points (the JumpIntoMiddle scenario), now
    // exercised repeatedly so both decodings live in the cache at
    // once. Blocks are keyed by entry rip, so neither view clobbers
    // the other.
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 0); // bytes 2..9 are eight nops when entered at +2
    a.ltrap();
    Bytes code = a.finish();
    ASSERT_EQ(h.space.write_raw(kCode, code.data(), code.size()),
              AccessFault::kNone);

    auto run_from = [&](uint64_t rip) {
        uint64_t before = h.cpu.instructions();
        h.cpu.set_rip(rip);
        CpuExit exit = h.cpu.run(100);
        EXPECT_EQ(exit.kind, ExitKind::kLtrap);
        return h.cpu.instructions() - before;
    };
    EXPECT_EQ(run_from(kCode), 2u);     // mov + ltrap
    EXPECT_EQ(run_from(kCode + 2), 9u); // 8 nops + ltrap
    EXPECT_EQ(run_from(kCode), 2u);     // cached, still the mov view
    EXPECT_EQ(run_from(kCode + 2), 9u);
    EXPECT_EQ(h.cpu.block_cache_invalidations(), 0u);
    EXPECT_GE(h.cpu.block_cache_hits(), 2u);
}

TEST(BlockCache, CfiLabelStartsANewBlock)
{
    // A cfi_label mid-stream ends the preceding block (it is a
    // potential indirect-entry point); entered directly it simply
    // begins its own block.
    VmHarness h;
    size_t mov_len =
        encoded_len([](isa::Assembler &a) { a.mov_ri(1, 5); });
    isa::Assembler a(kCode);
    a.mov_ri(1, 5);
    a.cfi_label(3);
    a.mov_ri(2, 7);
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 5u);
    EXPECT_EQ(h.cpu.reg(2), 7u);
    // Straight-line execution still crossed a block boundary.
    EXPECT_EQ(h.cpu.block_cache_misses(), 2u);

    // Entering at the label replays only the second block.
    uint64_t before = h.cpu.instructions();
    h.cpu.set_rip(kCode + mov_len);
    EXPECT_EQ(h.cpu.run(100).kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.instructions() - before, 3u); // cfi, mov, ltrap
    EXPECT_EQ(h.cpu.block_cache_misses(), 2u);    // no new decode
}

// ---- superblock tier (tier 2) -----------------------------------------

/**
 * The superblock battery tests the tier itself, so it must run with
 * the tier available even when OCCLUM_VM_SUPERBLOCK=0 pins the
 * process default off (CI bisection legs run the whole suite that
 * way). The fixture forces the default on and restores the
 * env-derived value afterwards; tier-off comparisons inside the
 * tests still use the per-cpu set_superblock_enabled(false).
 */
class Superblock : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        saved_default_ = Cpu::default_superblock_enabled();
        Cpu::set_default_superblock_enabled(true);
    }
    void TearDown() override
    {
        Cpu::set_default_superblock_enabled(saved_default_);
    }

  private:
    bool saved_default_ = true;
};

TEST_F(Superblock, OnOffBitIdenticalInCyclesAndState)
{
    // A hot loop well past the promotion threshold, mixing ALU ops,
    // memory traffic, stack ops, and rdcycle. rdcycle snapshots the
    // cycle counter *mid-trace* into an architectural register, so
    // equality of the final registers proves cycle accounting is
    // exact at every instruction boundary, not just at exit.
    auto program = [](isa::Assembler &a) {
        a.mov_ri(1, 0);
        a.mov_ri(2, 200);
        a.bind("loop");
        a.store(mem_abs(kData), 1);
        a.load(3, mem_abs(kData));
        a.add_rr(1, 3);
        a.shl_ri(3, 1);
        a.push(3);
        a.pop(4);
        a.xor_rr(4, 1);
        a.rdcycle(5);
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    VmHarness on;
    VmHarness off;
    off.cpu.set_superblock_enabled(false);
    ASSERT_TRUE(on.cpu.superblock_enabled());

    isa::Assembler a1(kCode);
    program(a1);
    CpuExit e1 = on.run(a1);
    isa::Assembler a2(kCode);
    program(a2);
    CpuExit e2 = off.run(a2);

    EXPECT_EQ(e1.kind, e2.kind);
    EXPECT_EQ(on.cpu.cycles(), off.cpu.cycles());
    EXPECT_EQ(on.cpu.instructions(), off.cpu.instructions());
    EXPECT_EQ(on.cpu.rip(), off.cpu.rip());
    for (int r = 0; r < isa::kNumRegs; ++r) {
        EXPECT_EQ(on.cpu.reg(r), off.cpu.reg(r)) << "reg " << r;
    }
    // One trace entry replays the whole remaining loop via its back
    // edge, so hits count entries, not iterations.
    EXPECT_GE(on.cpu.superblock_promotions(), 1u);
    EXPECT_GE(on.cpu.superblock_exec_hits(), 1u);
    EXPECT_EQ(off.cpu.superblock_promotions(), 0u);
    EXPECT_EQ(off.cpu.superblock_exec_hits(), 0u);
}

TEST_F(Superblock, SmcInsideStitchedTraceDemotesToTier1)
{
    // A store buried mid-trace patches the immediate of a *later*
    // instruction in the same stitched loop body. The store executes
    // long after promotion; the trace must notice the generation bump
    // at the store uop, exit, and demote, and the patched byte must
    // take effect on the very next instruction — same as tier 1.
    auto build = [](isa::Assembler &a, uint64_t patch_addr) {
        a.mov_ri(1, 0);
        a.mov_ri(2, 100);
        a.mov_ri(3, static_cast<int64_t>(patch_addr));
        a.mov_ri(5, 5);
        a.bind("loop");
        a.cmp_ri(2, 40);
        a.jcc(Cond::kNe, "skip"); // store runs exactly once, at r2==40
        a.store8(mem_bd(3, 0), 5);
        a.bind("skip");
        a.mov_ri(4, 7); // immediate patched 7 -> 5 mid-run
        a.add_rr(1, 4);
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    size_t mov_len =
        encoded_len([](isa::Assembler &a) { a.mov_ri(4, 7); });
    size_t cmp_len =
        encoded_len([](isa::Assembler &a) { a.cmp_ri(2, 40); });
    size_t jcc_len = encoded_len([](isa::Assembler &a) {
        a.bind("l");
        a.jcc(Cond::kNe, "l");
    });
    size_t store_len = encoded_len(
        [](isa::Assembler &a) { a.store8(mem_bd(3, 0), 5); });
    // The first immediate byte of `mov r4, 7` sits 2 bytes into it.
    uint64_t patch_addr =
        kCode + 4 * mov_len + cmp_len + jcc_len + store_len + 2;

    VmHarness on;
    VmHarness off;
    ASSERT_TRUE(on.space.protect(kCode, 0x1000, kPermRWX).ok());
    ASSERT_TRUE(off.space.protect(kCode, 0x1000, kPermRWX).ok());
    off.cpu.set_superblock_enabled(false);

    isa::Assembler a1(kCode);
    build(a1, patch_addr);
    CpuExit e1 = on.run(a1);
    isa::Assembler a2(kCode);
    build(a2, patch_addr);
    CpuExit e2 = off.run(a2);

    EXPECT_EQ(e1.kind, ExitKind::kLtrap);
    EXPECT_EQ(e2.kind, ExitKind::kLtrap);
    // 60 iterations at 7, then the patch lands, then 40 at 5.
    EXPECT_EQ(on.cpu.reg(1), 60u * 7 + 40u * 5);
    EXPECT_EQ(off.cpu.reg(1), on.cpu.reg(1));
    EXPECT_EQ(on.cpu.cycles(), off.cpu.cycles());
    EXPECT_EQ(on.cpu.instructions(), off.cpu.instructions());
    EXPECT_GE(on.cpu.superblock_promotions(), 1u);
    EXPECT_GE(on.cpu.superblock_invalidations(), 1u);
}

TEST_F(Superblock, MprotectOnExecPagesDemotesAndRepromotes)
{
    auto program = [](isa::Assembler &a) {
        a.mov_ri(1, 0);
        a.mov_ri(2, 100);
        a.bind("loop");
        a.add_ri(1, 2);
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    VmHarness h;
    isa::Assembler a(kCode);
    program(a);
    EXPECT_EQ(h.run(a).kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 200u);
    uint64_t promos = h.cpu.superblock_promotions();
    EXPECT_GE(promos, 1u);
    EXPECT_GE(h.cpu.superblock_count(), 1u);

    // An X-permission round trip (the SGX runtime_protect path) must
    // demote every installed trace.
    ASSERT_TRUE(h.space.protect(kCode, 0x1000, kPermR).ok());
    ASSERT_TRUE(h.space.protect(kCode, 0x1000, kPermRX).ok());

    h.cpu.set_reg(1, 0);
    h.cpu.set_reg(2, 100);
    h.cpu.set_rip(kCode);
    EXPECT_EQ(h.cpu.run(1'000'000).kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 200u);
    EXPECT_GE(h.cpu.superblock_invalidations(), 1u);
    // The loop is hot again, so the rebuilt block re-promotes.
    EXPECT_GT(h.cpu.superblock_promotions(), promos);
}

TEST_F(Superblock, TierTogglesResetDispatchCounters)
{
    auto program = [](isa::Assembler &a) {
        a.mov_ri(1, 0);
        a.mov_ri(2, 100);
        a.bind("loop");
        a.add_ri(1, 1);
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    auto expect_all_zero = [](const Cpu &cpu, const char *where) {
        EXPECT_EQ(cpu.block_cache_hits(), 0u) << where;
        EXPECT_EQ(cpu.block_cache_misses(), 0u) << where;
        EXPECT_EQ(cpu.block_cache_invalidations(), 0u) << where;
        EXPECT_EQ(cpu.superblock_promotions(), 0u) << where;
        EXPECT_EQ(cpu.superblock_invalidations(), 0u) << where;
        EXPECT_EQ(cpu.superblock_exec_hits(), 0u) << where;
        EXPECT_EQ(cpu.superblock_guards_folded(), 0u) << where;
        EXPECT_EQ(cpu.superblock_count(), 0u) << where;
    };
    VmHarness h;
    isa::Assembler a(kCode);
    program(a);
    EXPECT_EQ(h.run(a).kind, ExitKind::kLtrap);
    EXPECT_GT(h.cpu.block_cache_misses(), 0u);
    EXPECT_GE(h.cpu.superblock_promotions(), 1u);

    // Disabling the tier drops all cached state and zeroes every
    // dispatch counter — ablation rows never mix configurations.
    h.cpu.set_superblock_enabled(false);
    expect_all_zero(h.cpu, "after superblock off");
    EXPECT_EQ(h.cpu.block_cache_blocks(), 0u);

    h.cpu.set_reg(1, 0);
    h.cpu.set_reg(2, 100);
    h.cpu.set_rip(kCode);
    EXPECT_EQ(h.cpu.run(1'000'000).kind, ExitKind::kLtrap);
    EXPECT_GT(h.cpu.block_cache_hits(), 90u); // tier-1 counts resume
    EXPECT_EQ(h.cpu.superblock_promotions(), 0u);

    h.cpu.set_superblock_enabled(true);
    expect_all_zero(h.cpu, "after superblock on");

    h.cpu.set_block_cache_enabled(false);
    expect_all_zero(h.cpu, "after block cache off");
}

TEST(SuperblockDefault, FollowsEnvAndStaticSetter)
{
    // Mirrors the crypto reference-mode pattern: the static default
    // (seeded from OCCLUM_VM_SUPERBLOCK, on unless set to "0")
    // applies at construction. Runs outside the Superblock fixture so
    // the env-derived value is still observable here.
    const bool saved = Cpu::default_superblock_enabled();
    const char *env = std::getenv("OCCLUM_VM_SUPERBLOCK");
    const bool env_on = env == nullptr || env[0] == '\0' || env[0] != '0';
    EXPECT_EQ(saved, env_on);
    Cpu::set_default_superblock_enabled(false);
    {
        AddressSpace space;
        Cpu cpu(space);
        EXPECT_FALSE(cpu.superblock_enabled());
    }
    Cpu::set_default_superblock_enabled(true);
    {
        AddressSpace space;
        Cpu cpu(space);
        EXPECT_TRUE(cpu.superblock_enabled());
    }
    Cpu::set_default_superblock_enabled(saved);
}

TEST_F(Superblock, BudgetSlicesNeverOvershootAndMatchOneShot)
{
    // AEX/quantum slicing: running the same hot program in budget
    // slices of 7 must consume exactly min(7, remaining) instructions
    // per slice and land on bit-identical final state.
    auto program = [](isa::Assembler &a) {
        a.mov_ri(1, 0);
        a.mov_ri(2, 100);
        a.bind("loop");
        a.add_ri(1, 3);
        a.store(mem_abs(kData), 1);
        a.load(3, mem_abs(kData));
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    VmHarness sliced;
    VmHarness oneshot;
    isa::Assembler a1(kCode);
    program(a1);
    CpuExit exit = sliced.run(a1, 7);
    while (exit.kind == ExitKind::kInstrBudget) {
        uint64_t before = sliced.cpu.instructions();
        exit = sliced.cpu.run(7);
        uint64_t used = sliced.cpu.instructions() - before;
        ASSERT_GE(used, 1u);
        ASSERT_LE(used, 7u);
    }
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);

    isa::Assembler a2(kCode);
    program(a2);
    EXPECT_EQ(oneshot.run(a2).kind, ExitKind::kLtrap);

    EXPECT_EQ(sliced.cpu.cycles(), oneshot.cpu.cycles());
    EXPECT_EQ(sliced.cpu.instructions(), oneshot.cpu.instructions());
    EXPECT_EQ(sliced.cpu.rip(), oneshot.cpu.rip());
    for (int r = 0; r < isa::kNumRegs; ++r) {
        EXPECT_EQ(sliced.cpu.reg(r), oneshot.cpu.reg(r)) << "reg " << r;
    }
}

TEST_F(Superblock, GuardFoldingPreservesStateAndCycles)
{
    // Two identical mem_guard pairs per iteration: the translator
    // fuses the first bndcl+bndcu pair and elides the duplicate pair
    // outright. Simulated time must not move by a single cycle.
    auto program = [](isa::Assembler &a) {
        a.mov_ri(2, 100);
        a.mov_ri(3, static_cast<int64_t>(kData));
        a.bind("loop");
        a.mem_guard(mem_bd(3, 0));
        a.load(4, mem_bd(3, 0));
        a.mem_guard(mem_bd(3, 0)); // exact duplicate -> folded
        a.add_ri(4, 1);
        a.store(mem_bd(3, 0), 4);
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    VmHarness on;
    VmHarness off;
    off.cpu.set_superblock_enabled(false);

    isa::Assembler a1(kCode);
    program(a1);
    CpuExit e1 = on.run(a1);
    isa::Assembler a2(kCode);
    program(a2);
    CpuExit e2 = off.run(a2);

    EXPECT_EQ(e1.kind, ExitKind::kLtrap);
    EXPECT_EQ(e2.kind, ExitKind::kLtrap);
    EXPECT_EQ(on.cpu.reg(4), 100u);
    EXPECT_EQ(on.cpu.cycles(), off.cpu.cycles());
    EXPECT_EQ(on.cpu.instructions(), off.cpu.instructions());
    // Fused pair + two elided duplicates per promotion.
    EXPECT_GE(on.cpu.superblock_guards_folded(), 3u);
    EXPECT_EQ(off.cpu.superblock_guards_folded(), 0u);
}

TEST_F(Superblock, FusedGuardFaultPointsAreExact)
{
    // A pointer walks forward under a mem_guard until it crosses the
    // upper bound — well after promotion, so the #BR is raised from
    // inside the fused bndcl+bndcu uop. Fault rip, fault address,
    // cycles, and instruction count must match tier 1 exactly (the
    // upper fault charges both halves; rip is the bndcu).
    auto forward = [](isa::Assembler &a) {
        a.mov_ri(2, 100);
        a.mov_ri(3, static_cast<int64_t>(kData));
        a.bind("loop");
        a.mem_guard(mem_bd(3, 0));
        a.load8(4, mem_bd(3, 0));
        a.add_ri(3, 8);
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    auto run_pair = [](auto &program, BoundReg bnd) {
        VmHarness on;
        VmHarness off;
        off.cpu.set_superblock_enabled(false);
        on.cpu.set_bnd(isa::kBndData, bnd);
        off.cpu.set_bnd(isa::kBndData, bnd);
        isa::Assembler a1(kCode);
        program(a1);
        CpuExit e1 = on.run(a1);
        isa::Assembler a2(kCode);
        program(a2);
        CpuExit e2 = off.run(a2);
        EXPECT_EQ(e1.kind, ExitKind::kFault);
        EXPECT_EQ(e1.fault, FaultKind::kBoundRange);
        EXPECT_EQ(e1.kind, e2.kind);
        EXPECT_EQ(e1.fault, e2.fault);
        EXPECT_EQ(e1.rip, e2.rip);
        EXPECT_EQ(e1.fault_addr, e2.fault_addr);
        EXPECT_EQ(on.cpu.cycles(), off.cpu.cycles());
        EXPECT_EQ(on.cpu.instructions(), off.cpu.instructions());
        EXPECT_EQ(on.cpu.rip(), off.cpu.rip());
        EXPECT_GE(on.cpu.superblock_promotions(), 1u);
    };
    // Upper-bound fault at iteration 51 (addr kData+408 > hi).
    run_pair(forward, BoundReg{0, kData + 50 * 8});

    // Lower-bound fault: walk down through lo at iteration ~51. The
    // #BR comes from the bndcl half, which charges only its own cost.
    auto backward = [](isa::Assembler &a) {
        a.mov_ri(2, 100);
        a.mov_ri(3, static_cast<int64_t>(kData + 800));
        a.bind("loop");
        a.mem_guard(mem_bd(3, 0));
        a.load8(4, mem_bd(3, 0));
        a.add_ri(3, -8);
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    run_pair(backward, BoundReg{kData + 400, ~0ull});
}

TEST_F(Superblock, LoadAluFusionFaultPointsAreExact)
{
    // A load feeding a lone ALU op (the kLoadAlu fusion, with the ALU
    // destination different from the loaded register) walks a pointer
    // off the end of the mapped data page — well past promotion, so
    // the page fault is raised from inside the fused uop. Fault rip,
    // fault address, cycles, and state must match tier 1 exactly (the
    // fault charges the load alone; the appended ALU never ran).
    auto program = [](isa::Assembler &a) {
        a.mov_ri(2, 1000);
        a.mov_ri(3, static_cast<int64_t>(kData));
        a.mov_ri(5, 0);
        a.bind("loop");
        a.load8(4, mem_bd(3, 0)); // fuses with the add_rr below
        a.add_rr(5, 4);
        a.store(mem_abs(kData), 5); // keeps the ALU out of a pack
        a.add_ri(3, 8);
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    VmHarness on;
    VmHarness off;
    off.cpu.set_superblock_enabled(false);
    isa::Assembler a1(kCode);
    program(a1);
    CpuExit e1 = on.run(a1);
    isa::Assembler a2(kCode);
    program(a2);
    CpuExit e2 = off.run(a2);
    // The data page is 0x1000 bytes: iteration 513 reads kData+0x1000.
    EXPECT_EQ(e1.kind, ExitKind::kFault);
    EXPECT_EQ(e1.fault, FaultKind::kPageFault);
    EXPECT_EQ(e1.fault_addr, kData + 0x1000);
    EXPECT_EQ(e1.kind, e2.kind);
    EXPECT_EQ(e1.fault, e2.fault);
    EXPECT_EQ(e1.rip, e2.rip);
    EXPECT_EQ(e1.fault_addr, e2.fault_addr);
    EXPECT_EQ(on.cpu.cycles(), off.cpu.cycles());
    EXPECT_EQ(on.cpu.instructions(), off.cpu.instructions());
    EXPECT_EQ(on.cpu.rip(), off.cpu.rip());
    for (int r = 0; r < isa::kNumRegs; ++r) {
        EXPECT_EQ(on.cpu.reg(r), off.cpu.reg(r)) << "reg " << r;
    }
    EXPECT_GE(on.cpu.superblock_promotions(), 1u);
}

TEST_F(Superblock, StitchedCallRetTracesAreExact)
{
    // The hot loop calls a leaf function; the trace stitches through
    // the call and the guarded return. 100 round trips well past the
    // threshold must be bit-identical to tier 1.
    auto program = [](isa::Assembler &a) {
        a.mov_ri(1, 0);
        a.mov_ri(2, 100);
        a.bind("loop");
        a.call("fn");
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
        a.bind("fn");
        a.add_ri(1, 3);
        a.ret();
    };
    VmHarness on;
    VmHarness off;
    off.cpu.set_superblock_enabled(false);

    isa::Assembler a1(kCode);
    program(a1);
    CpuExit e1 = on.run(a1);
    isa::Assembler a2(kCode);
    program(a2);
    CpuExit e2 = off.run(a2);

    EXPECT_EQ(e1.kind, ExitKind::kLtrap);
    EXPECT_EQ(e2.kind, ExitKind::kLtrap);
    EXPECT_EQ(on.cpu.reg(1), 300u);
    EXPECT_EQ(on.cpu.cycles(), off.cpu.cycles());
    EXPECT_EQ(on.cpu.instructions(), off.cpu.instructions());
    EXPECT_EQ(on.cpu.sp(), off.cpu.sp());
    EXPECT_GE(on.cpu.superblock_promotions(), 1u);
    EXPECT_GE(on.cpu.superblock_exec_hits(), 1u);
}

TEST_F(Superblock, OverlappingDecodesPromoteIndependently)
{
    // The two-entry-point scenario, hot enough that *both* views get
    // promoted. Traces are keyed by entry rip like blocks, so the
    // mov-view and the nop-view never clobber each other.
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 0); // bytes 2..9 decode as eight nops when entered at +2
    a.ltrap();
    Bytes code = a.finish();
    ASSERT_EQ(h.space.write_raw(kCode, code.data(), code.size()),
              AccessFault::kNone);

    auto run_from = [&](uint64_t rip) {
        uint64_t before = h.cpu.instructions();
        h.cpu.set_rip(rip);
        EXPECT_EQ(h.cpu.run(100).kind, ExitKind::kLtrap);
        return h.cpu.instructions() - before;
    };
    for (int i = 0; i < 50; ++i) {
        ASSERT_EQ(run_from(kCode), 2u) << "iteration " << i;
        ASSERT_EQ(run_from(kCode + 2), 9u) << "iteration " << i;
    }
    EXPECT_GE(h.cpu.superblock_promotions(), 2u);
    EXPECT_GE(h.cpu.superblock_count(), 2u);
    EXPECT_EQ(h.cpu.superblock_invalidations(), 0u);
}

} // namespace
} // namespace occlum::vm
