/**
 * @file
 * Unit tests for the VM: address-space mapping/permissions, CPU
 * arithmetic and control flow, stack ops, bound-register faults, and
 * the guard-region fault behaviour MMDSFI relies on.
 */
#include <gtest/gtest.h>

#include "isa/assembler.h"
#include "vm/address_space.h"
#include "vm/cpu.h"

namespace occlum::vm {
namespace {

using isa::Cond;
using isa::mem_abs;
using isa::mem_bd;
using isa::mem_rip;
using isa::mem_sib;

constexpr uint64_t kCode = 0x10000;
constexpr uint64_t kData = 0x20000;
constexpr uint64_t kStackTop = 0x30000;

/** Map code+data+stack and run the assembled program until exit. */
class VmHarness
{
  public:
    VmHarness() : cpu(space)
    {
        EXPECT_TRUE(space.map(kCode, 0x1000, kPermRX).ok());
        EXPECT_TRUE(space.map(kData, 0x1000, kPermRW).ok());
        EXPECT_TRUE(space.map(kStackTop - 0x2000, 0x2000, kPermRW).ok());
        cpu.set_sp(kStackTop - 8);
    }

    CpuExit
    run(isa::Assembler &a, uint64_t budget = 1'000'000)
    {
        Bytes code = a.finish();
        EXPECT_LE(code.size(), 0x1000u);
        EXPECT_EQ(space.write_raw(kCode, code.data(), code.size()),
                  AccessFault::kNone);
        space.touch_code();
        cpu.set_rip(kCode);
        return cpu.run(budget);
    }

    AddressSpace space;
    Cpu cpu;
};

TEST(AddressSpace, MapUnmapProtect)
{
    AddressSpace space;
    EXPECT_TRUE(space.map(0x1000, 0x2000, kPermRW).ok());
    EXPECT_FALSE(space.map(0x2000, 0x1000, kPermRW).ok()); // overlap
    EXPECT_FALSE(space.map(0x1234, 0x1000, kPermRW).ok()); // unaligned
    EXPECT_TRUE(space.is_mapped(0x1000, 0x2000));
    EXPECT_EQ(space.perms_at(0x1fff), kPermRW);
    EXPECT_TRUE(space.protect(0x1000, 0x1000, kPermR).ok());
    EXPECT_EQ(space.perms_at(0x1000), kPermR);
    space.unmap(0x1000, 0x1000);
    EXPECT_FALSE(space.is_mapped(0x1000, 0x1000));
    EXPECT_TRUE(space.is_mapped(0x2000, 0x1000));
}

TEST(AddressSpace, PermissionEnforcement)
{
    AddressSpace space;
    ASSERT_TRUE(space.map(0x1000, 0x1000, kPermR).ok());
    uint64_t v = 42;
    EXPECT_EQ(space.write(0x1000, &v, 8), AccessFault::kNoWrite);
    EXPECT_EQ(space.read(0x1000, &v, 8), AccessFault::kNone);
    EXPECT_EQ(space.fetch(0x1000, &v, 1), AccessFault::kNoExec);
    EXPECT_EQ(space.read(0x5000, &v, 8), AccessFault::kUnmapped);
    // Trusted raw access bypasses permissions but not mapping.
    EXPECT_EQ(space.write_raw(0x1000, &v, 8), AccessFault::kNone);
    EXPECT_EQ(space.write_raw(0x5000, &v, 8), AccessFault::kUnmapped);
}

TEST(AddressSpace, CrossPageAccess)
{
    AddressSpace space;
    ASSERT_TRUE(space.map(0x1000, 0x2000, kPermRW).ok());
    uint64_t v = 0x1122334455667788ull;
    EXPECT_EQ(space.write(0x1ffc, &v, 8), AccessFault::kNone);
    uint64_t back = 0;
    EXPECT_EQ(space.read(0x1ffc, &back, 8), AccessFault::kNone);
    EXPECT_EQ(back, v);
    // Partially unmapped cross-page access faults.
    EXPECT_EQ(space.write(0x2ffc, &v, 8), AccessFault::kUnmapped);
}

TEST(Cpu, ArithmeticAndMov)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 10);
    a.mov_ri(2, 3);
    a.add_rr(1, 2);   // 13
    a.mul_ri(1, 4);   // 52
    a.sub_ri(1, 2);   // 50
    a.mov_rr(3, 1);
    a.div_rr(3, 2);   // 16 (50/3)
    a.mod_rr(1, 2);   // 2
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(3), 16u);
    EXPECT_EQ(h.cpu.reg(1), 2u);
}

TEST(Cpu, SignedDivision)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, -50);
    a.mov_ri(2, 3);
    a.div_rr(1, 2);
    a.mov_ri(3, -50);
    a.mod_rr(3, 2);
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(static_cast<int64_t>(h.cpu.reg(1)), -16);
    EXPECT_EQ(static_cast<int64_t>(h.cpu.reg(3)), -2);
}

TEST(Cpu, DivideByZeroFaults)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 5);
    a.mov_ri(2, 0);
    a.div_rr(1, 2);
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kDivide);
}

TEST(Cpu, ShiftsAndBitwise)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 0xf0);
    a.shl_ri(1, 4);       // 0xf00
    a.or_ri(1, 0x0f);     // 0xf0f
    a.and_ri(1, 0xff);    // 0x0f
    a.xor_ri(1, 0xff);    // 0xf0
    a.mov_ri(2, -8);
    a.sar_ri(2, 1);       // -4
    a.mov_ri(3, -8);
    a.shr_ri(3, 60);      // high bits of two's complement
    a.not_(1);
    a.neg(2);
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), ~0xf0ull);
    EXPECT_EQ(static_cast<int64_t>(h.cpu.reg(2)), 4);
    EXPECT_EQ(h.cpu.reg(3), 0xfull);
}

TEST(Cpu, LoadStoreAllWidths)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, kData);
    a.mov_ri(2, static_cast<int64_t>(0x1122334455667788ull));
    a.store(mem_bd(1, 0), 2);
    a.load(3, mem_bd(1, 0));
    a.store8(mem_bd(1, 16), 2);
    a.load8(4, mem_bd(1, 16));
    a.store32(mem_bd(1, 32), 2);
    a.load32(5, mem_bd(1, 32));
    // SIB addressing: kData + 2*8 + 0
    a.mov_ri(6, 2);
    a.store(mem_sib(1, 6, 3, 0), 2);
    a.load(7, mem_bd(1, 16)); // overlaps store8 slot; check little endian
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(3), 0x1122334455667788ull);
    EXPECT_EQ(h.cpu.reg(4), 0x88ull);
    EXPECT_EQ(h.cpu.reg(5), 0x55667788ull);
    EXPECT_EQ(h.cpu.reg(7), 0x1122334455667788ull);
}

TEST(Cpu, AbsoluteAndRipRelative)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(2, 777);
    a.store(mem_abs(kData + 8), 2);
    a.load(3, mem_abs(kData + 8));
    a.lea(4, mem_rip(0)); // address after the lea
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(3), 777u);
    // lea rip+0 = end of that instruction = ltrap address.
    EXPECT_EQ(h.cpu.reg(4), exit.rip);
}

TEST(Cpu, ConditionalBranchMatrix)
{
    struct Case {
        int64_t a, b;
        Cond cond;
        bool taken;
    };
    const Case cases[] = {
        {5, 5, Cond::kEq, true},    {5, 6, Cond::kEq, false},
        {5, 6, Cond::kNe, true},    {-1, 1, Cond::kLt, true},
        {1, -1, Cond::kLt, false},  {-1, -1, Cond::kLe, true},
        {2, 1, Cond::kGt, true},    {-5, -4, Cond::kGe, false},
        {-1, 1, Cond::kB, false},   // unsigned: -1 is huge
        {1, 2, Cond::kB, true},     {2, 2, Cond::kBe, true},
        {-1, 1, Cond::kA, true},    {3, 3, Cond::kAe, true},
    };
    for (const auto &c : cases) {
        VmHarness h;
        isa::Assembler a(kCode);
        a.mov_ri(1, c.a);
        a.mov_ri(2, c.b);
        a.mov_ri(3, 0);
        a.cmp_rr(1, 2);
        a.jcc(c.cond, "taken");
        a.mov_ri(3, 1); // fallthrough marker
        a.jmp("out");
        a.bind("taken");
        a.mov_ri(3, 2);
        a.bind("out");
        a.ltrap();
        CpuExit exit = h.run(a);
        ASSERT_EQ(exit.kind, ExitKind::kLtrap);
        EXPECT_EQ(h.cpu.reg(3), c.taken ? 2u : 1u)
            << c.a << " " << c.b << " " << isa::cond_name(c.cond);
    }
}

TEST(Cpu, CallRetAndStack)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 5);
    a.call("double_it");
    a.ltrap();
    a.bind("double_it");
    a.push(2);
    a.mov_ri(2, 2);
    a.mul_rr(1, 2);
    a.pop(2);
    a.ret();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 10u);
    EXPECT_EQ(h.cpu.sp(), kStackTop - 8); // balanced
}

TEST(Cpu, IndirectJumpAndCall)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_rl(4, "target");
    a.call_reg(4);
    a.ltrap();
    a.bind("target");
    a.mov_ri(1, 99);
    a.ret();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 99u);
}

TEST(Cpu, LoopExecutesExactly)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 0);
    a.mov_ri(2, 100);
    a.bind("loop");
    a.add_ri(1, 3);
    a.sub_ri(2, 1);
    a.cmp_ri(2, 0);
    a.jcc(Cond::kNe, "loop");
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 300u);
}

TEST(Cpu, GuardRegionFaultsLikeMmdsfiExpects)
{
    // Unmapped pages adjacent to data fault on access: the mechanism
    // behind guard regions G1/G2 (paper §4.1).
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, kData + 0x1000); // first byte past the data page
    a.store(mem_bd(1, 0), 2);
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kPageFault);
    EXPECT_EQ(exit.fault_addr, kData + 0x1000);
}

TEST(Cpu, StorePermissionFault)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, kCode); // code is RX
    a.store(mem_bd(1, 0), 2);
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kPermFault);
}

TEST(Cpu, ExecuteDataFaults)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, kData);
    a.jmp_reg(1);
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kExecFault);
    EXPECT_EQ(exit.rip, kData);
}

TEST(Cpu, BoundCheckPassAndFail)
{
    VmHarness h;
    h.cpu.set_bnd(0, {kData, kData + 0xfff});
    isa::Assembler a(kCode);
    a.mov_ri(1, kData + 100);
    a.bndcl_mem(0, mem_bd(1, 0));
    a.bndcu_mem(0, mem_bd(1, 0));
    a.store(mem_bd(1, 0), 2);  // guarded access succeeds
    a.mov_ri(1, kData + 0x1000);
    a.bndcu_mem(0, mem_bd(1, 0)); // out of bounds: #BR
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kBoundRange);
    EXPECT_EQ(exit.fault_addr, kData + 0x1000);
}

TEST(Cpu, BoundCheckRegisterEquality)
{
    // cfi_guard semantics: bnd1 = [v, v] is an equality test.
    VmHarness h;
    uint64_t label = isa::cfi_label_value(7);
    h.cpu.set_bnd(1, {label, label});
    isa::Assembler a(kCode);
    a.mov_ri(1, static_cast<int64_t>(label));
    a.bndcl_reg(1, 1);
    a.bndcu_reg(1, 1);
    a.mov_ri(2, static_cast<int64_t>(label + 1));
    a.bndcu_reg(1, 2); // fails
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kFault);
    EXPECT_EQ(exit.fault, FaultKind::kBoundRange);
}

TEST(Cpu, PrivilegedInstructionsExit)
{
    for (auto make : {+[](isa::Assembler &a) { a.hlt(); },
                      +[](isa::Assembler &a) { a.eexit(); },
                      +[](isa::Assembler &a) { a.xrstor(); },
                      +[](isa::Assembler &a) { a.wrfsbase(3); },
                      +[](isa::Assembler &a) { a.bndmk(0, mem_bd(1, 0)); }}) {
        VmHarness h;
        isa::Assembler a(kCode);
        make(a);
        CpuExit exit = h.run(a);
        EXPECT_EQ(exit.kind, ExitKind::kPrivileged);
    }
}

TEST(Cpu, LtrapResumesAfterTrap)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 1);
    a.ltrap();
    a.mov_ri(1, 2);
    a.ltrap();
    Bytes code = a.finish();
    ASSERT_EQ(h.space.write_raw(kCode, code.data(), code.size()),
              AccessFault::kNone);
    h.space.touch_code();
    h.cpu.set_rip(kCode);
    CpuExit first = h.cpu.run(1000);
    EXPECT_EQ(first.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 1u);
    CpuExit second = h.cpu.run(1000);
    EXPECT_EQ(second.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 2u);
}

TEST(Cpu, InstructionBudgetStopsLoops)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.bind("spin");
    a.jmp("spin");
    CpuExit exit = h.run(a, 1000);
    EXPECT_EQ(exit.kind, ExitKind::kInstrBudget);
}

TEST(Cpu, CyclesAccumulate)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 7);
    a.ltrap();
    h.run(a);
    EXPECT_GT(h.cpu.cycles(), 0u);
    EXPECT_EQ(h.cpu.instructions(), 2u);
}

TEST(Cpu, JumpIntoMiddleOfInstructionDecodesDifferently)
{
    // The variable-length property: a mov_ri whose immediate encodes a
    // valid instruction stream can be entered mid-instruction. Here
    // the middle bytes decode as `nop`s; landing there must NOT be an
    // invalid-opcode fault but execute *different* instructions —
    // exactly the hazard MMDSFI's CFI closes.
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 0); // 10 bytes: opcode, reg, 8x 0x00 (nop opcodes)
    a.ltrap();
    Bytes code = a.finish();
    ASSERT_EQ(h.space.write_raw(kCode, code.data(), code.size()),
              AccessFault::kNone);
    h.space.touch_code();
    h.cpu.set_rip(kCode + 2); // into the immediate: eight nops
    CpuExit exit = h.cpu.run(100);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap); // fell through to ltrap
    EXPECT_EQ(h.cpu.instructions(), 9u);    // 8 nops + ltrap
}

// ---- predecoded basic-block cache -------------------------------------

/** Encoded length of one instruction (encodings are fixed per op). */
template <typename EmitFn>
size_t
encoded_len(EmitFn emit)
{
    isa::Assembler a(0);
    emit(a);
    return a.finish().size();
}

TEST(BlockCache, HitsAccumulateAcrossLoopIterations)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 0);
    a.mov_ri(2, 100);
    a.bind("loop");
    a.add_ri(1, 1);
    a.sub_ri(2, 1);
    a.cmp_ri(2, 0);
    a.jcc(Cond::kNe, "loop");
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 100u);
    // The loop body re-enters the same block ~99 times; only a
    // handful of distinct entry rips ever need decoding.
    EXPECT_GT(h.cpu.block_cache_hits(), 90u);
    EXPECT_LT(h.cpu.block_cache_misses(), 10u);
    EXPECT_EQ(h.cpu.block_cache_invalidations(), 0u);
}

TEST(BlockCache, WriteToCodePageInvalidatesWithoutTouchCode)
{
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 1);
    a.ltrap();
    EXPECT_EQ(h.run(a).kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 1u);

    // Rewrite the code bytes *without* calling touch_code: the write
    // into an executable page must advance the generation by itself.
    isa::Assembler b(kCode);
    b.mov_ri(1, 2);
    b.ltrap();
    Bytes code = b.finish();
    uint64_t gen_before = h.space.code_generation();
    ASSERT_EQ(h.space.write_raw(kCode, code.data(), code.size()),
              AccessFault::kNone);
    EXPECT_GT(h.space.code_generation(), gen_before);

    h.cpu.set_rip(kCode);
    EXPECT_EQ(h.cpu.run(100).kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 2u);
    EXPECT_GE(h.cpu.block_cache_invalidations(), 1u);
}

TEST(BlockCache, PermissionChangesInvolvingExecBumpGeneration)
{
    AddressSpace space;
    ASSERT_TRUE(space.map(0x1000, 0x1000, kPermRX).ok());
    ASSERT_TRUE(space.map(0x2000, 0x1000, kPermRW).ok());
    uint64_t gen = space.code_generation();

    // RW-only traffic leaves code caches alone.
    ASSERT_TRUE(space.protect(0x2000, 0x1000, kPermR).ok());
    uint32_t v = 7;
    ASSERT_TRUE(space.protect(0x2000, 0x1000, kPermRW).ok());
    ASSERT_EQ(space.write(0x2000, &v, sizeof(v)), AccessFault::kNone);
    EXPECT_EQ(space.code_generation(), gen);

    // Dropping X (the SGX runtime_protect path) invalidates.
    ASSERT_TRUE(space.protect(0x1000, 0x1000, kPermR).ok());
    EXPECT_GT(space.code_generation(), gen);
    gen = space.code_generation();

    // Regaining X invalidates again.
    ASSERT_TRUE(space.protect(0x1000, 0x1000, kPermRX).ok());
    EXPECT_GT(space.code_generation(), gen);
    gen = space.code_generation();

    // Mapping and unmapping executable pages both invalidate (new
    // pages can complete previously truncated instruction fetches).
    ASSERT_TRUE(space.map(0x3000, 0x1000, kPermRX).ok());
    EXPECT_GT(space.code_generation(), gen);
    gen = space.code_generation();
    space.unmap(0x3000, 0x1000);
    EXPECT_GT(space.code_generation(), gen);
    gen = space.code_generation();
    ASSERT_TRUE(space.map(0x4000, 0x1000, kPermRW).ok());
    space.unmap(0x4000, 0x1000);
    EXPECT_EQ(space.code_generation(), gen);
}

TEST(BlockCache, SelfModifyingStoreTakesEffectMidBlock)
{
    // A store that patches the immediate of a *later* instruction in
    // the same straight-line run: the interpreter must notice the
    // generation bump mid-block and re-decode instead of replaying
    // the stale predecoded op.
    VmHarness h;
    ASSERT_TRUE(h.space.protect(kCode, 0x1000, kPermRWX).ok());

    size_t mov_len =
        encoded_len([](isa::Assembler &a) { a.mov_ri(2, 0x41); });
    size_t store_len = encoded_len(
        [](isa::Assembler &a) { a.store8(mem_bd(3, 0), 2); });
    // Layout: mov r2 | mov r3 | store8 | mov r1, 0 | ltrap.
    // The patch target is the first immediate byte of `mov r1, 0`.
    uint64_t patch_addr = kCode + 2 * mov_len + store_len + 2;

    isa::Assembler a(kCode);
    a.mov_ri(2, 0x41);
    a.mov_ri(3, static_cast<int64_t>(patch_addr));
    a.store8(mem_bd(3, 0), 2);
    a.mov_ri(1, 0); // immediate patched to 0x41 by the store above
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 0x41u);
}

TEST(BlockCache, OffModeIsBitIdenticalInCyclesAndState)
{
    auto program = [](isa::Assembler &a) {
        a.mov_ri(1, 0);
        a.mov_ri(2, 50);
        a.bind("loop");
        a.store(mem_abs(kData), 1);
        a.load(3, mem_abs(kData));
        a.add_rr(1, 3);
        a.push(1);
        a.pop(4);
        a.sub_ri(2, 1);
        a.cmp_ri(2, 0);
        a.jcc(Cond::kNe, "loop");
        a.ltrap();
    };
    VmHarness on;
    VmHarness off;
    off.cpu.set_block_cache_enabled(false);
    ASSERT_TRUE(on.cpu.block_cache_enabled());
    ASSERT_FALSE(off.cpu.block_cache_enabled());

    isa::Assembler a1(kCode);
    program(a1);
    CpuExit e1 = on.run(a1);
    isa::Assembler a2(kCode);
    program(a2);
    CpuExit e2 = off.run(a2);

    EXPECT_EQ(e1.kind, e2.kind);
    EXPECT_EQ(on.cpu.cycles(), off.cpu.cycles());
    EXPECT_EQ(on.cpu.instructions(), off.cpu.instructions());
    EXPECT_EQ(on.cpu.rip(), off.cpu.rip());
    for (int r = 0; r < isa::kNumRegs; ++r) {
        EXPECT_EQ(on.cpu.reg(r), off.cpu.reg(r)) << "reg " << r;
    }
    EXPECT_EQ(off.cpu.block_cache_hits(), 0u);
    EXPECT_EQ(off.cpu.block_cache_misses(), 0u);
}

TEST(BlockCache, InstructionBudgetStopsMidBlockAndResumes)
{
    VmHarness h;
    size_t nop_len = encoded_len([](isa::Assembler &a) { a.nop(); });
    isa::Assembler a(kCode);
    for (int i = 0; i < 10; ++i) {
        a.nop();
    }
    a.ltrap();
    CpuExit exit = h.run(a, 4);
    EXPECT_EQ(exit.kind, ExitKind::kInstrBudget);
    EXPECT_EQ(h.cpu.instructions(), 4u);
    EXPECT_EQ(h.cpu.rip(), kCode + 4 * nop_len);
    // Resuming mid-block re-enters at rip and finishes the run.
    exit = h.cpu.run(1000);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.instructions(), 11u);
}

TEST(BlockCache, EntryPointKeyedBlocksPreserveOverlappingDecode)
{
    // Same bytes, two entry points (the JumpIntoMiddle scenario), now
    // exercised repeatedly so both decodings live in the cache at
    // once. Blocks are keyed by entry rip, so neither view clobbers
    // the other.
    VmHarness h;
    isa::Assembler a(kCode);
    a.mov_ri(1, 0); // bytes 2..9 are eight nops when entered at +2
    a.ltrap();
    Bytes code = a.finish();
    ASSERT_EQ(h.space.write_raw(kCode, code.data(), code.size()),
              AccessFault::kNone);

    auto run_from = [&](uint64_t rip) {
        uint64_t before = h.cpu.instructions();
        h.cpu.set_rip(rip);
        CpuExit exit = h.cpu.run(100);
        EXPECT_EQ(exit.kind, ExitKind::kLtrap);
        return h.cpu.instructions() - before;
    };
    EXPECT_EQ(run_from(kCode), 2u);     // mov + ltrap
    EXPECT_EQ(run_from(kCode + 2), 9u); // 8 nops + ltrap
    EXPECT_EQ(run_from(kCode), 2u);     // cached, still the mov view
    EXPECT_EQ(run_from(kCode + 2), 9u);
    EXPECT_EQ(h.cpu.block_cache_invalidations(), 0u);
    EXPECT_GE(h.cpu.block_cache_hits(), 2u);
}

TEST(BlockCache, CfiLabelStartsANewBlock)
{
    // A cfi_label mid-stream ends the preceding block (it is a
    // potential indirect-entry point); entered directly it simply
    // begins its own block.
    VmHarness h;
    size_t mov_len =
        encoded_len([](isa::Assembler &a) { a.mov_ri(1, 5); });
    isa::Assembler a(kCode);
    a.mov_ri(1, 5);
    a.cfi_label(3);
    a.mov_ri(2, 7);
    a.ltrap();
    CpuExit exit = h.run(a);
    EXPECT_EQ(exit.kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.reg(1), 5u);
    EXPECT_EQ(h.cpu.reg(2), 7u);
    // Straight-line execution still crossed a block boundary.
    EXPECT_EQ(h.cpu.block_cache_misses(), 2u);

    // Entering at the label replays only the second block.
    uint64_t before = h.cpu.instructions();
    h.cpu.set_rip(kCode + mov_len);
    EXPECT_EQ(h.cpu.run(100).kind, ExitKind::kLtrap);
    EXPECT_EQ(h.cpu.instructions() - before, 3u); // cfi, mov, ltrap
    EXPECT_EQ(h.cpu.block_cache_misses(), 2u);    // no new decode
}

} // namespace
} // namespace occlum::vm
