/**
 * @file
 * epoll semantics battery: LT/ET readiness, interest-list lifecycle
 * (ADD/MOD/DEL, EEXIST/ENOENT/ELOOP), dup'd fds, nested epoll fds,
 * close-time auto-removal, cross-SIP wakeups — plus end-to-end smoke
 * tests for the epoll-driven httpd event loop and the reverse-proxy
 * + backend-pool scenario (the workload scripts/ci_faults.sh plan 6
 * drives under network faults and AEX storms).
 */
#include <gtest/gtest.h>

#include "baseline/linux_system.h"
#include "faultsim/faultsim.h"
#include "toolchain/minic.h"
#include "trace/metrics.h"
#include "workloads/workloads.h"

namespace occlum::oskit {
namespace {

struct EpollHarness {
    SimClock clock;
    host::HostFileStore files;
    baseline::LinuxSystem sys{clock, files};

    int64_t
    run(const std::string &source,
        const std::vector<std::string> &argv = {"prog"})
    {
        auto out = toolchain::compile(source);
        EXPECT_TRUE(out.ok())
            << (out.ok() ? "" : out.error().message);
        files.put("prog", out.value().image.serialize());
        auto pid = sys.spawn("prog", argv);
        EXPECT_TRUE(pid.ok());
        sys.run();
        auto code = sys.exit_code(pid.value());
        return code.ok() ? code.value() : -999;
    }
};

TEST(Epoll, LevelTriggeredLifecycle)
{
    // ADD/EEXIST/ENOENT, level-triggered re-reporting until drained,
    // DEL dropping a ready fd, and ADD-time priming of an fd whose
    // data was already buffered before it was registered.
    EpollHarness h;
    EXPECT_EQ(h.run(R"(
global int evs[8];
global byte buf[8];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    var ep = epoll_create();
    if (ep < 0) { return 2; }
    if (epoll_ctl(ep, 1, fds[0], 0x1) != 0) { return 3; }
    if (epoll_ctl(ep, 1, fds[0], 0x1) != -17) { return 4; }  // EEXIST
    if (epoll_ctl(ep, 3, fds[1], 0x4) != -2) { return 5; }   // ENOENT
    if (epoll_ctl(ep, 2, fds[1], 0) != -2) { return 6; }     // ENOENT
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 7; }        // quiet
    if (write(fds[1], "hi", 2) != 2) { return 8; }
    if (epoll_wait(ep, evs, 4, 0) != 1) { return 9; }
    if (evs[0] != fds[0]) { return 10; }
    if ((evs[1] & 0x1) == 0) { return 11; }
    if (epoll_wait(ep, evs, 4, 0) != 1) { return 12; } // level: again
    if (read(fds[0], buf, 8) != 2) { return 13; }
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 14; } // drained
    if (write(fds[1], "x", 1) != 1) { return 15; }
    if (epoll_ctl(ep, 2, fds[0], 0) != 0) { return 16; }  // DEL ready fd
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 17; }    // no interest
    if (epoll_ctl(ep, 1, fds[0], 0x1) != 0) { return 18; }
    if (epoll_wait(ep, evs, 4, 0) != 1) { return 19; } // primed at ADD
    return 0;
}
)"),
              0);
}

TEST(Epoll, EdgeTriggeredReportsEachNewEdgeOnce)
{
    // ET consumes a reported fd: the same buffered data is never
    // reported twice, and only a fresh write (a new edge) re-queues
    // it — including after a full drain.
    EpollHarness h;
    EXPECT_EQ(h.run(R"(
global int evs[8];
global byte buf[8];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    var ep = epoll_create();
    if (ep < 0) { return 2; }
    if (epoll_ctl(ep, 1, fds[0], 0x80000001) != 0) { return 3; } // ET|IN
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 4; }
    if (write(fds[1], "a", 1) != 1) { return 5; }
    if (epoll_wait(ep, evs, 4, 0) != 1) { return 6; }  // the edge
    if (evs[0] != fds[0]) { return 7; }
    if ((evs[1] & 0x1) == 0) { return 8; }
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 9; }  // consumed
    if (write(fds[1], "b", 1) != 1) { return 10; }     // new edge
    if (epoll_wait(ep, evs, 4, 0) != 1) { return 11; }
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 12; }
    if (read(fds[0], buf, 8) != 2) { return 13; }      // full drain
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 14; }
    if (write(fds[1], "c", 1) != 1) { return 15; }     // re-armed
    if (epoll_wait(ep, evs, 4, 0) != 1) { return 16; }
    return 0;
}
)"),
              0);
}

TEST(Epoll, DupdFdIsADistinctInterestEntry)
{
    // Interest is keyed by descriptor, not by file object: a dup'd fd
    // registers separately and one write fires both entries.
    EpollHarness h;
    EXPECT_EQ(h.run(R"(
global int evs[8];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    if (dup2(fds[0], 9) != 9) { return 2; }
    var ep = epoll_create();
    if (ep < 0) { return 3; }
    if (epoll_ctl(ep, 1, fds[0], 0x1) != 0) { return 4; }
    if (epoll_ctl(ep, 1, 9, 0x1) != 0) { return 5; } // same file, ok
    if (write(fds[1], "z", 1) != 1) { return 6; }
    if (epoll_wait(ep, evs, 8, 0) != 2) { return 7; }
    var a = evs[0];
    var b = evs[2];
    if (a == b) { return 8; }
    if (a != fds[0]) { if (a != 9) { return 9; } }
    if (b != fds[0]) { if (b != 9) { return 10; } }
    if ((evs[1] & 0x1) == 0) { return 11; }
    if ((evs[3] & 0x1) == 0) { return 12; }
    return 0;
}
)"),
              0);
}

TEST(Epoll, NestedEpollPropagatesAndCyclesAreEloop)
{
    // An epoll fd is itself pollable: readiness of a watched fd in
    // the inner set makes the inner epoll fd readable in the outer
    // set. Self-registration and cycles are rejected with ELOOP.
    EpollHarness h;
    EXPECT_EQ(h.run(R"(
global int evs[8];
global byte buf[8];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    var inner = epoll_create();
    if (inner < 0) { return 2; }
    var outer = epoll_create();
    if (outer < 0) { return 3; }
    if (epoll_ctl(inner, 1, inner, 0x1) != -40) { return 4; } // ELOOP
    if (epoll_ctl(outer, 1, inner, 0x1) != 0) { return 5; }
    if (epoll_ctl(inner, 1, outer, 0x1) != -40) { return 6; } // cycle
    if (epoll_ctl(inner, 1, fds[0], 0x1) != 0) { return 7; }
    if (epoll_wait(outer, evs, 4, 0) != 0) { return 8; }
    if (write(fds[1], "q", 1) != 1) { return 9; }
    if (epoll_wait(outer, evs, 4, 0) != 1) { return 10; }
    if (evs[0] != inner) { return 11; }
    if ((evs[1] & 0x1) == 0) { return 12; }
    if (epoll_wait(inner, evs, 4, 0) != 1) { return 13; }
    if (evs[0] != fds[0]) { return 14; }
    if (read(fds[0], buf, 8) != 1) { return 15; }
    if (epoll_wait(inner, evs, 4, 0) != 0) { return 16; }
    if (epoll_wait(outer, evs, 4, 0) != 0) { return 17; } // drains up
    return 0;
}
)"),
              0);
}

TEST(Epoll, CloseAutoRemovesInterestEntry)
{
    // Closing a registered fd drops its interest entry: no stale
    // readiness reports, and the recycled fd number registers fresh.
    EpollHarness h;
    EXPECT_EQ(h.run(R"(
global int evs[8];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    var ep = epoll_create();
    if (ep < 0) { return 2; }
    if (epoll_ctl(ep, 1, fds[0], 0x1) != 0) { return 3; }
    if (write(fds[1], "k", 1) != 1) { return 4; }
    if (close(fds[0]) != 0) { return 5; }
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 6; } // interest gone
    var fds2[2];
    if (pipe(fds2) != 0) { return 7; }
    if (fds2[0] != fds[0]) { return 8; }  // slot reused
    if (epoll_ctl(ep, 1, fds2[0], 0x1) != 0) { return 9; } // no EEXIST
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 10; } // and no stale
    return 0;
}
)"),
              0);
}

TEST(Epoll, MaxeventsTruncationKeepsRemainderQueued)
{
    EpollHarness h;
    EXPECT_EQ(h.run(R"(
global int evs[8];
global byte buf[8];
func main() {
    var a[2];
    var b[2];
    var c[2];
    if (pipe(a) != 0) { return 1; }
    if (pipe(b) != 0) { return 2; }
    if (pipe(c) != 0) { return 3; }
    var ep = epoll_create();
    if (ep < 0) { return 4; }
    if (epoll_ctl(ep, 1, a[0], 0x1) != 0) { return 5; }
    if (epoll_ctl(ep, 1, b[0], 0x1) != 0) { return 6; }
    if (epoll_ctl(ep, 1, c[0], 0x1) != 0) { return 7; }
    if (write(a[1], "1", 1) != 1) { return 8; }
    if (write(b[1], "2", 1) != 1) { return 9; }
    if (write(c[1], "3", 1) != 1) { return 10; }
    if (epoll_wait(ep, evs, 2, 0) != 2) { return 11; } // room for two
    if (read(evs[0], buf, 8) != 1) { return 12; }      // drain those
    if (read(evs[2], buf, 8) != 1) { return 13; }
    if (epoll_wait(ep, evs, 4, 0) != 1) { return 14; } // the third
    if (read(evs[0], buf, 8) != 1) { return 15; }
    if (epoll_wait(ep, evs, 4, 0) != 0) { return 16; }
    return 0;
}
)"),
              0);
}

TEST(Epoll, BadArgumentsAreEinvalOrEbadf)
{
    EpollHarness h;
    EXPECT_EQ(h.run(R"(
global int evs[8];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    var ep = epoll_create();
    if (ep < 0) { return 2; }
    if (epoll_ctl(fds[0], 1, fds[1], 0x1) != -22) { return 3; } // not an epoll fd
    if (epoll_ctl(99, 1, fds[0], 0x1) != -9) { return 4; }      // bad epfd
    if (epoll_ctl(ep, 1, 99, 0x1) != -9) { return 5; }          // bad target
    if (epoll_ctl(ep, 7, fds[0], 0x1) != -22) { return 6; }     // bad op
    if (epoll_wait(fds[0], evs, 4, 0) != -22) { return 7; }
    if (epoll_wait(ep, evs, 0, 0) != -22) { return 8; }         // maxevents=0
    var t0 = time_ns();
    if (epoll_wait(ep, evs, 4, 1000000) != 0) { return 9; }     // 1 ms timeout
    if (time_ns() - t0 < 1000000) { return 10; }
    return 0;
}
)"),
              0);
}

TEST(Epoll, BlockedWaitWakesOnCrossSipWrite)
{
    // The caller parks in epoll_wait() with nothing ready; a second
    // SIP writes the watched pipe much later. The wakeup must travel
    // pipe -> watch -> epoll ready list -> blocked waiter.
    EpollHarness h;
    auto child = toolchain::compile(R"(
func main() {
    var i = 0;
    while (i < 200000) { i = i + 1; }  // let the parent park first
    if (write(1, "p", 1) != 1) { return 9; }
    return 0;
}
)");
    ASSERT_TRUE(child.ok());
    h.files.put("poker", child.value().image.serialize());
    EXPECT_EQ(h.run(R"(
global byte child[8] = "poker";
global int evs[8];
func main() {
    var fds[2];
    if (pipe(fds) != 0) { return 1; }
    var ep = epoll_create();
    if (ep < 0) { return 2; }
    if (epoll_ctl(ep, 1, fds[0], 0x1) != 0) { return 3; }
    var argvv[1];
    argvv[0] = child;
    var io3[3];
    io3[0] = 0 - 1;
    io3[1] = fds[1];           // child stdout = the write end
    io3[2] = 0 - 1;
    if (spawn_io(child, argvv, 1, io3) < 0) { return 4; }
    close(fds[1]);
    var n = epoll_wait(ep, evs, 4, 0 - 1);  // parked here
    if (n != 1) { return 5; }
    if (evs[0] != fds[0]) { return 6; }
    if ((evs[1] & 0x1) == 0) { return 7; }
    return 0;
}
)"),
              0);
}

TEST(Epoll, DelWhileSiblingBlocksInWait)
{
    // SIP A blocks in epoll_wait on a shared epoll fd; SIP B deletes
    // the only registered fd out from under it, then writes that pipe
    // (which must produce NO event), then registers a second pipe and
    // writes it. A must wake exactly once, seeing only the new fd.
    EpollHarness h;
    auto child = toolchain::compile(R"(
global int evs[8];
global byte argbuf[16];
func main() {
    if (argc() < 2) { return 1; }
    getarg(1, argbuf, 16);
    var expect = atoi(argbuf);
    var n = epoll_wait(0, evs, 4, 0 - 1);  // the shared epoll is fd 0
    if (n != 1) { return 2; }
    if (evs[0] != expect) { return 3; }
    if ((evs[1] & 0x1) == 0) { return 4; }
    return 0;
}
)");
    ASSERT_TRUE(child.ok());
    h.files.put("waiter", child.value().image.serialize());
    EXPECT_EQ(h.run(R"(
global byte child[8] = "waiter";
global byte fdbuf[16];
func main() {
    var ep = epoll_create();
    if (ep < 0) { return 1; }
    var p1[2];
    var p2[2];
    if (pipe(p1) != 0) { return 2; }
    if (pipe(p2) != 0) { return 3; }
    if (epoll_ctl(ep, 1, p1[0], 0x1) != 0) { return 4; }
    itoa(p2[0], fdbuf);
    var argvv[2];
    argvv[0] = child;
    argvv[1] = fdbuf;
    var io3[3];
    io3[0] = ep;               // the child shares the epoll as fd 0
    io3[1] = 0 - 1;
    io3[2] = 0 - 1;
    var pid = spawn_io(child, argvv, 2, io3);
    if (pid < 0) { return 5; }
    var i = 0;
    while (i < 200000) { i = i + 1; }   // child parks in epoll_wait
    if (epoll_ctl(ep, 2, p1[0], 0) != 0) { return 6; }  // DEL under it
    if (write(p1[1], "x", 1) != 1) { return 7; }  // must not wake it
    if (epoll_ctl(ep, 1, p2[0], 0x1) != 0) { return 8; }
    if (write(p2[1], "y", 1) != 1) { return 9; }  // this wakes it
    return waitpid(pid);
}
)"),
              0);
}

// ---- end-to-end: the epoll workloads over simulated networking --------

struct NetHarness {
    SimClock clock;
    host::HostFileStore files;
    host::NetSim net{clock};
    baseline::LinuxSystem sys{clock, files, &net};

    void
    put_program(const std::string &name, const std::string &source)
    {
        auto out = toolchain::compile(source);
        ASSERT_TRUE(out.ok())
            << (out.ok() ? "" : out.error().message);
        files.put(name, out.value().image.serialize());
    }

    /** Closed-loop clients: each sends a request, reads the full
     *  10240-byte page, closes, repeats. Returns completed count. */
    int
    drive(int concurrency, int total)
    {
        struct Client {
            host::NetSim::Connection *conn = nullptr;
            size_t received = 0;
        };
        std::vector<Client> clients(concurrency);
        const char *request = "GET / HTTP/1.1\r\n\r\n";
        constexpr size_t kResponse = 10240;
        int issued = 0;
        int completed = 0;
        auto start = [&](Client &client) {
            if (issued >= total) {
                client.conn = nullptr;
                return;
            }
            auto conn = net.connect(8080);
            ASSERT_TRUE(conn.ok()) << conn.error().message;
            client.conn = conn.value();
            client.received = 0;
            net.send(client.conn, false,
                     reinterpret_cast<const uint8_t *>(request),
                     strlen(request));
            ++issued;
        };
        for (auto &client : clients) {
            start(client);
        }
        uint8_t buf[4096];
        uint64_t stall_guard = 0;
        while (completed < total) {
            bool progress = sys.step_round();
            for (auto &client : clients) {
                if (!client.conn) {
                    continue;
                }
                uint64_t next_arrival = ~0ull;
                size_t n =
                    net.recv(client.conn, false, buf, sizeof(buf),
                             clock.cycles(), next_arrival);
                if (n > 0) {
                    client.received += n;
                    progress = true;
                    if (client.received >= kResponse) {
                        net.close(client.conn, false);
                        ++completed;
                        start(client);
                    }
                }
            }
            if (!progress) {
                uint64_t wake = sys.next_wake_time();
                for (auto &client : clients) {
                    if (!client.conn) {
                        continue;
                    }
                    uint64_t next_arrival = ~0ull;
                    net.recv(client.conn, false, buf, 0, clock.cycles(),
                             next_arrival);
                    wake = std::min(wake, next_arrival);
                }
                if (wake == ~0ull || wake <= clock.cycles()) {
                    if (++stall_guard > 1000) {
                        break; // stalled: let the caller's asserts fail
                    }
                    continue;
                }
                stall_guard = 0;
                clock.advance(wake - clock.cycles());
            }
        }
        return completed;
    }
};

TEST(EpollWorkload, HttpdEpollServesRequests)
{
    NetHarness h;
    h.put_program("httpd_epoll", workloads::httpd_epoll_source());
    auto pid = h.sys.spawn("httpd_epoll", {"httpd_epoll", "6", "32"});
    ASSERT_TRUE(pid.ok());
    h.sys.run(/*allow_idle=*/true); // server parks in epoll_wait
    EXPECT_EQ(h.drive(2, 6), 6);
    h.sys.run(/*allow_idle=*/true);
    auto code = h.sys.exit_code(pid.value());
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), 6); // served & 0x7f
}

/** The proxy scenario at `cores`: (death order, final sim cycles). */
std::pair<std::vector<int>, uint64_t>
run_proxy_at(int cores)
{
    // Under an ambient OCCLUM_FAULT_PLAN (scripts/ci_faults.sh) the
    // fault streams must restart per run, or the determinism check
    // below would compare two different fault schedules.
    faultsim::FaultSim::instance().reseed();
    NetHarness h;
    h.sys.set_cores(cores);
    h.put_program("proxy_frontend", workloads::proxy_frontend_source());
    h.put_program("proxy_backend", workloads::proxy_backend_source());
    auto pid = h.sys.spawn("proxy_frontend", {"proxy_frontend", "12",
                                              "32"});
    EXPECT_TRUE(pid.ok());
    h.sys.run(/*allow_idle=*/true);
    EXPECT_EQ(h.drive(3, 12), 12);
    h.sys.run(/*allow_idle=*/true);
    auto code = h.sys.exit_code(pid.value());
    EXPECT_TRUE(code.ok() && code.value() == 0);
    EXPECT_TRUE(h.sys.all_exited());
    return {h.sys.death_order(), h.clock.cycles()};
}

TEST(EpollWorkload, ProxyIsDeterministicAtEveryCoreCount)
{
    // The SMP scheduler must stay a pure function of the workload:
    // for each core count, two fresh runs of the full proxy scenario
    // (network arrivals, stealing, cross-core wakeups and all) agree
    // on the SIP completion order *and* the total simulated cycles.
    for (int cores : {1, 2, 4}) {
        auto first = run_proxy_at(cores);
        auto second = run_proxy_at(cores);
        EXPECT_EQ(first.first, second.first) << "cores=" << cores;
        EXPECT_EQ(first.second, second.second) << "cores=" << cores;
        // Frontend (pid 1) outlives the 4 backends it reaps.
        ASSERT_EQ(first.first.size(), 5u) << "cores=" << cores;
        EXPECT_EQ(first.first.back(), 1) << "cores=" << cores;
    }
    // And cores=1 reproduces the pre-SMP kernel exactly: the backends
    // die in spawn order (the frontend shuts its job pipes down in
    // order), as recorded from the seed scheduler.
    auto uni = run_proxy_at(1);
    EXPECT_EQ(uni.first, (std::vector<int>{2, 3, 4, 5, 1}));
}

TEST(EpollWorkload, ReverseProxyServesThroughBackendPool)
{
    // The flagship multi-process scenario: an epoll frontend fans
    // requests out over job pipes to 4 spawned backend SIPs and
    // relays their piped responses back over the sockets. 12 requests
    // over 3 concurrent closed-loop clients.
    NetHarness h;
    h.put_program("proxy_frontend", workloads::proxy_frontend_source());
    h.put_program("proxy_backend", workloads::proxy_backend_source());
    auto pid = h.sys.spawn("proxy_frontend", {"proxy_frontend", "12",
                                              "32"});
    ASSERT_TRUE(pid.ok());
    h.sys.run(/*allow_idle=*/true); // frontend + backends park
    EXPECT_EQ(h.drive(3, 12), 12);
    h.sys.run(/*allow_idle=*/true); // frontend reaps its backends
    auto code = h.sys.exit_code(pid.value());
    ASSERT_TRUE(code.ok());
    EXPECT_EQ(code.value(), 0);
    EXPECT_TRUE(h.sys.all_exited());
}

} // namespace
} // namespace occlum::oskit
