/**
 * @file
 * SGX substrate tests: enclave lifecycle and measurement, the SGX 1.0
 * static-permissions restriction, SSA save/restore of bound registers
 * across AEX (paper §2.1/§2.3), local attestation, and EPC accounting.
 */
#include <gtest/gtest.h>

#include <algorithm>

#include "sgx/sgx.h"

namespace occlum::sgx {
namespace {

constexpr uint64_t kBase = 0x10000000;

TEST(Enclave, MeasurementIsDeterministic)
{
    Bytes content(vm::kPageSize, 0x42);
    auto build = [&](Platform &platform) {
        Enclave enclave(platform, kBase, 1 << 20);
        EXPECT_TRUE(
            enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX, content)
                .ok());
        EXPECT_TRUE(enclave.init().ok());
        return enclave.measurement();
    };
    Platform p1, p2;
    EXPECT_EQ(build(p1), build(p2));
}

TEST(Enclave, MeasurementDependsOnContentAndLayout)
{
    Platform platform;
    Bytes a(vm::kPageSize, 1), b(vm::kPageSize, 2);

    Enclave e1(platform, kBase, 1 << 20);
    ASSERT_TRUE(e1.add_pages(kBase, vm::kPageSize, vm::kPermRX, a).ok());
    ASSERT_TRUE(e1.init().ok());

    Enclave e2(platform, kBase, 1 << 20);
    ASSERT_TRUE(e2.add_pages(kBase, vm::kPageSize, vm::kPermRX, b).ok());
    ASSERT_TRUE(e2.init().ok());
    EXPECT_NE(e1.measurement(), e2.measurement());

    // Same content at a different vaddr changes the measurement too.
    Enclave e3(platform, kBase, 1 << 20);
    ASSERT_TRUE(e3.add_pages(kBase + vm::kPageSize, vm::kPageSize,
                             vm::kPermRX, a)
                    .ok());
    ASSERT_TRUE(e3.init().ok());
    EXPECT_NE(e1.measurement(), e3.measurement());

    // ...and so do page permissions.
    Enclave e4(platform, kBase, 1 << 20);
    ASSERT_TRUE(e4.add_pages(kBase, vm::kPageSize, vm::kPermRW, a).ok());
    ASSERT_TRUE(e4.init().ok());
    EXPECT_NE(e1.measurement(), e4.measurement());
}

TEST(Enclave, Sgx1FreezesPagesAfterInit)
{
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRW).ok());
    ASSERT_TRUE(
        enclave.runtime_protect(kBase, vm::kPageSize, vm::kPermRX).ok());
    ASSERT_TRUE(enclave.init().ok());
    // After EINIT: no adds, no permission changes, no reserves.
    EXPECT_FALSE(
        enclave.add_pages(kBase + vm::kPageSize, vm::kPageSize,
                          vm::kPermRW)
            .ok());
    EXPECT_FALSE(
        enclave.runtime_protect(kBase, vm::kPageSize, vm::kPermRWX).ok());
    EXPECT_FALSE(enclave.measure_reserved(vm::kPageSize).ok());
    EXPECT_FALSE(enclave.init().ok()); // double EINIT
}

TEST(Enclave, PagePermissionChangesInvalidateCodeCaches)
{
    // The VM's predecoded block cache keys its validity off the
    // address space's code generation; every enclave path that can
    // change what is executable must advance it.
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    uint64_t gen = enclave.mem().code_generation();

    // EADD of an executable page (maps + writes content).
    Bytes content(vm::kPageSize, 0x90);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX, content)
            .ok());
    EXPECT_GT(enclave.mem().code_generation(), gen);
    gen = enclave.mem().code_generation();

    // runtime_protect flipping X off and on (pre-EINIT EMODPE model).
    ASSERT_TRUE(
        enclave.runtime_protect(kBase, vm::kPageSize, vm::kPermRW).ok());
    EXPECT_GT(enclave.mem().code_generation(), gen);
    gen = enclave.mem().code_generation();
    ASSERT_TRUE(
        enclave.runtime_protect(kBase, vm::kPageSize, vm::kPermRX).ok());
    EXPECT_GT(enclave.mem().code_generation(), gen);
    gen = enclave.mem().code_generation();

    // Adding and touching data-only pages leaves code caches alone.
    ASSERT_TRUE(enclave
                    .add_pages(kBase + vm::kPageSize, vm::kPageSize,
                               vm::kPermRW)
                    .ok());
    EXPECT_EQ(enclave.mem().code_generation(), gen);
}

TEST(Enclave, RejectsOutOfRangeAndUnalignedAdds)
{
    Platform platform;
    Enclave enclave(platform, kBase, 2 * vm::kPageSize);
    EXPECT_FALSE(
        enclave.add_pages(kBase + 123, vm::kPageSize, vm::kPermRW).ok());
    EXPECT_FALSE(enclave
                     .add_pages(kBase + 4 * vm::kPageSize, vm::kPageSize,
                                vm::kPermRW)
                     .ok());
    EXPECT_FALSE(enclave.add_pages(kBase, 0, vm::kPermRW).ok());
}

TEST(Enclave, CreationChargesMeasurementCycles)
{
    Platform platform;
    uint64_t before = platform.clock().cycles();
    Enclave enclave(platform, kBase, 1 << 20);
    uint64_t pages = 64;
    ASSERT_TRUE(
        enclave.add_pages(kBase, pages * vm::kPageSize, vm::kPermRW)
            .ok());
    uint64_t spent = platform.clock().cycles() - before;
    EXPECT_GE(spent, CostModel::kEnclaveCreateFixedCycles +
                         pages * CostModel::kEaddEextendCyclesPerPage);
}

TEST(Enclave, EpcAccountingAndRelease)
{
    Platform platform(8 * vm::kPageSize); // tiny EPC
    {
        Enclave enclave(platform, kBase, 1 << 20);
        ASSERT_TRUE(
            enclave.add_pages(kBase, 4 * vm::kPageSize, vm::kPermRW)
                .ok());
        EXPECT_EQ(platform.epc_used(), 4 * vm::kPageSize);
        // Exceeding EPC fails.
        EXPECT_FALSE(enclave
                         .add_pages(kBase + 4 * vm::kPageSize,
                                    8 * vm::kPageSize, vm::kPermRW)
                         .ok());
    }
    EXPECT_EQ(platform.epc_used(), 0u); // released on destruction
}

TEST(SgxThread, AexSavesAndRestoresBoundRegisters)
{
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX).ok());
    ASSERT_TRUE(enclave.init().ok());

    SgxThread thread(enclave);
    thread.cpu().set_reg(3, 0xdeadbeef);
    thread.cpu().set_bnd(0, {0x1000, 0x1fff});
    thread.cpu().set_bnd(1, {42, 42});
    thread.cpu().set_rip(kBase + 8);

    thread.aex();
    // A malicious host cannot touch the SSA; clobber the live state to
    // prove resume() restores everything from the snapshot.
    thread.cpu().set_reg(3, 0);
    thread.cpu().set_bnd(0, {0, ~0ull});
    thread.cpu().set_rip(0);
    thread.resume();

    EXPECT_EQ(thread.cpu().reg(3), 0xdeadbeefu);
    EXPECT_EQ(thread.cpu().bnd(0).lo, 0x1000u);
    EXPECT_EQ(thread.cpu().bnd(0).hi, 0x1fffu);
    EXPECT_EQ(thread.cpu().bnd(1).lo, 42u);
    EXPECT_EQ(thread.cpu().rip(), kBase + 8);
}

TEST(SgxThread, NestedAexIsRejectedUntilResume)
{
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX).ok());
    ASSERT_TRUE(enclave.init().ok());

    SgxThread thread(enclave);
    thread.cpu().set_reg(0, 0x11);
    thread.cpu().set_rip(kBase);

    // The TCS has a single SSA frame (NSSA=1): a second exit before
    // ERESUME would overwrite the first snapshot and lose the real
    // interrupted state, so injection while in_aex must be refused.
    ASSERT_TRUE(thread.try_aex());
    EXPECT_FALSE(thread.try_aex());
    // The refused attempt must not have disturbed the saved frame.
    thread.resume();
    EXPECT_EQ(thread.cpu().reg(0), 0x11u);
    EXPECT_EQ(thread.cpu().rip(), kBase);
    // Once resumed the thread can take the next AEX normally.
    EXPECT_TRUE(thread.try_aex());
    thread.resume();
}

TEST(SgxThread, AexScrubsLiveStateAndBindsExternalCpu)
{
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX).ok());
    ASSERT_TRUE(enclave.init().ok());

    // A TCS bound to an externally-owned CPU (how injected AEX storms
    // interrupt a running SIP's processor mid-quantum).
    vm::Cpu cpu(enclave.mem());
    cpu.set_reg(5, 0x5555);
    cpu.set_bnd(1, {0x100, 0x1ff});
    cpu.set_rip(kBase + 16);

    SgxThread thread(enclave, cpu);
    ASSERT_TRUE(thread.try_aex());
    // On exit the hardware hands scrubbed registers to the host: the
    // live state must carry nothing of the enclave's.
    EXPECT_NE(cpu.reg(5), 0x5555u);
    EXPECT_EQ(cpu.bnd(1).lo, 0u);
    EXPECT_EQ(cpu.rip(), 0u);
    thread.resume();
    EXPECT_EQ(cpu.reg(5), 0x5555u);
    EXPECT_EQ(cpu.bnd(1).lo, 0x100u);
    EXPECT_EQ(cpu.bnd(1).hi, 0x1ffu);
    EXPECT_EQ(cpu.rip(), kBase + 16);
}

TEST(SgxThread, AexScrubsComparisonFlags)
{
    // Regression: the AEX scrub clobbered the registers, the bound
    // registers, and the rip but left the comparison flags live — a
    // host could read the zf/sf/cf/of of the enclave's last cmp (a
    // secret-dependent branch condition) in the post-AEX state.
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX).ok());
    ASSERT_TRUE(enclave.init().ok());

    SgxThread thread(enclave);
    vm::CpuState secret = thread.cpu().state();
    secret.flags.zf = true;
    secret.flags.sf = true;
    secret.flags.cf = true;
    secret.flags.of = true;
    thread.cpu().set_state(secret);

    ASSERT_TRUE(thread.try_aex());
    const vm::Flags &host = thread.cpu().state().flags;
    EXPECT_FALSE(host.zf);
    EXPECT_FALSE(host.sf);
    EXPECT_FALSE(host.cf);
    EXPECT_FALSE(host.of);

    // ERESUME restores the real flags from the SSA.
    thread.resume();
    const vm::Flags &restored = thread.cpu().state().flags;
    EXPECT_TRUE(restored.zf);
    EXPECT_TRUE(restored.sf);
    EXPECT_TRUE(restored.cf);
    EXPECT_TRUE(restored.of);
}

TEST(SgxThread, RebindRefusedWhileSsaFrameIsOccupied)
{
    // Regression: rebinding a TCS whose single SSA frame holds an
    // interrupted context used to be a hard OCC_CHECK crash. It must
    // instead be a refused transition the orderliness monitor records
    // — an adversarial injection schedule degrades to a skipped
    // event, not a downed kernel.
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX).ok());
    ASSERT_TRUE(enclave.init().ok());

    vm::Cpu first(enclave.mem());
    vm::Cpu second(enclave.mem());
    SgxThread thread(enclave, first);

    auto &mon = TransitionMonitor::instance();
    uint64_t refusals0 = mon.refusals();
    uint64_t violations0 = mon.violations();

    ASSERT_TRUE(thread.try_aex());
    EXPECT_FALSE(thread.try_bind(second));
    EXPECT_EQ(&thread.cpu(), &first); // binding unchanged
    EXPECT_EQ(mon.refusals(), refusals0 + 1);

    thread.resume();
    EXPECT_TRUE(thread.try_bind(second));
    EXPECT_EQ(&thread.cpu(), &second);
    // Refusals are the defense working, never automaton violations.
    EXPECT_EQ(mon.violations(), violations0);
}

TEST(SgxThread, EnterRefusedOnOccupiedSsaFrame)
{
    // The SmashEx rule: with NSSA=1 an EENTER while the SSA frame is
    // occupied has no frame left to take an exception in, so it must
    // fail with an error — never be silently serviced.
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX).ok());
    ASSERT_TRUE(enclave.init().ok());

    SgxThread thread(enclave); // constructed executing inside
    thread.aex();
    Status blocked = thread.enter();
    ASSERT_FALSE(blocked.ok());
    EXPECT_EQ(blocked.code(), ErrorCode::kBusy);

    // Normal round trip once the frame drains: resume, leave, enter.
    thread.resume();
    ASSERT_TRUE(thread.leave().ok());
    EXPECT_EQ(thread.phase(), TcsPhase::kOutside);
    ASSERT_TRUE(thread.enter().ok());
    EXPECT_EQ(thread.phase(), TcsPhase::kInside);

    // And a busy TCS refuses a second entry even without an AEX.
    Status busy = thread.enter();
    ASSERT_FALSE(busy.ok());
    EXPECT_EQ(busy.code(), ErrorCode::kBusy);
}

TEST(Attestation, ReportsVerifyOnSamePlatformOnly)
{
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX).ok());
    ASSERT_TRUE(enclave.init().ok());

    Bytes user_data = {1, 2, 3};
    Report report = enclave.create_report(user_data);
    EXPECT_TRUE(Enclave::verify_report(platform, report));

    // Tampered report fails.
    Report forged = report;
    forged.user_data[0] ^= 1;
    EXPECT_FALSE(Enclave::verify_report(platform, forged));
    Report remeasured = report;
    remeasured.measurement[5] ^= 1;
    EXPECT_FALSE(Enclave::verify_report(platform, remeasured));
}

/**
 * Regression: the report MAC must cover the *whole* identity, not just
 * measurement + user_data. With the old narrow MAC payload, a relay
 * could rewrite signer/attributes/svn on a genuine report (e.g. strip
 * the DEBUG bit to slip past a production policy) without tripping
 * verification — this test failed against that code.
 */
TEST(Attestation, ReportMacCoversEnclaveIdentity)
{
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX).ok());
    EnclaveIdentity identity;
    identity.signer.fill(0x5A);
    identity.attributes = EnclaveIdentity::kAttrDebug;
    identity.isv_prod_id = 3;
    identity.isv_svn = 7;
    ASSERT_TRUE(enclave.set_identity(identity).ok());
    ASSERT_TRUE(enclave.init().ok());

    Report report = enclave.create_report({1, 2, 3});
    ASSERT_TRUE(Enclave::verify_report(platform, report));

    Report resigned = report;
    resigned.identity.signer[0] ^= 1;
    EXPECT_FALSE(Enclave::verify_report(platform, resigned));

    Report undebugged = report;
    undebugged.identity.attributes &= ~EnclaveIdentity::kAttrDebug;
    EXPECT_FALSE(Enclave::verify_report(platform, undebugged));

    Report reproduced = report;
    reproduced.identity.isv_prod_id ^= 1;
    EXPECT_FALSE(Enclave::verify_report(platform, reproduced));

    Report upleveled = report;
    upleveled.identity.isv_svn += 1;
    EXPECT_FALSE(Enclave::verify_report(platform, upleveled));
}

/**
 * Regression: create_report used to *silently truncate* user_data past
 * 64 bytes, so two inputs differing only beyond byte 64 produced
 * byte-identical reports — a caller binding a long transcript got a
 * report that vouched for infinitely many transcripts. Long inputs now
 * bind their SHA-256 digest instead (and bind_user_data exposes the
 * exact mapping so verifiers can recompute it).
 */
TEST(Attestation, LongUserDataBindsDigestNotTruncation)
{
    Platform platform;
    Enclave enclave(platform, kBase, 1 << 20);
    ASSERT_TRUE(
        enclave.add_pages(kBase, vm::kPageSize, vm::kPermRX).ok());
    ASSERT_TRUE(enclave.init().ok());

    Bytes long_a(100, 0xAA);
    Bytes long_b = long_a;
    long_b[80] ^= 1; // differs only past the old 64-byte cutoff

    Report report_a = enclave.create_report(long_a);
    Report report_b = enclave.create_report(long_b);
    EXPECT_NE(report_a.user_data, report_b.user_data);
    EXPECT_EQ(report_a.user_data, Enclave::bind_user_data(long_a));
    EXPECT_TRUE(Enclave::verify_report(platform, report_a));

    // Short inputs still bind verbatim, zero-padded.
    Bytes short_input = {9, 8, 7};
    Report short_report = enclave.create_report(short_input);
    std::array<uint8_t, 64> expect{};
    expect[0] = 9;
    expect[1] = 8;
    expect[2] = 7;
    EXPECT_EQ(short_report.user_data, expect);

    // Exactly 64 bytes is the verbatim/digest boundary: still verbatim.
    Bytes exact(64, 0x11);
    EXPECT_EQ(enclave.create_report(exact).user_data,
              Enclave::bind_user_data(exact));
    std::array<uint8_t, 64> verbatim;
    std::copy(exact.begin(), exact.end(), verbatim.begin());
    EXPECT_EQ(Enclave::bind_user_data(exact), verbatim);
}

TEST(Enclave, ZeroReserveMatchesExplicitZeroPages)
{
    // measure_reserved must be measurement-compatible with adding
    // explicit zero pages is NOT required (different metadata), but
    // it must be deterministic and cost the same cycles per page.
    Platform p1, p2;
    Enclave e1(p1, kBase, 1 << 20);
    uint64_t before1 = p1.clock().cycles();
    ASSERT_TRUE(e1.measure_reserved(16 * vm::kPageSize).ok());
    uint64_t cost1 = p1.clock().cycles() - before1;

    Enclave e2(p2, kBase, 1 << 20);
    uint64_t before2 = p2.clock().cycles();
    ASSERT_TRUE(
        e2.add_pages(kBase, 16 * vm::kPageSize, vm::kPermRW).ok());
    uint64_t cost2 = p2.clock().cycles() - before2;
    EXPECT_EQ(cost1, cost2);
}

} // namespace
} // namespace occlum::sgx
