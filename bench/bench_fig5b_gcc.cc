/**
 * @file
 * Figure 5b: the GCC-like multi-process compile pipeline
 * (cpp | cc1 | as | ld) over three translation-unit sizes.
 *
 * Paper (absolute): Linux 25 ms..830 ms; Graphene 9.7 s..11.7 s;
 * Occlum 229 ms..3.0 s. Shape claims: Occlum 3.6-9.2x slower than
 * Linux (instrumentation + eager loading of the 14 MiB cc1), and
 * 3.8-42x faster than Graphene (which pays 4 enclave creations).
 *
 * The compiler stages are synthetic per-byte kernels (DESIGN.md §1);
 * absolute times are smaller than the paper's (our units are smaller
 * than real C), but the cross-system ratios are preserved.
 */
#include "bench/bench_util.h"

using namespace occlum;

namespace {

constexpr uint64_t kBigReserve = 16 << 20;

std::string
make_source_text(uint64_t bytes)
{
    std::string text;
    text.reserve(bytes);
    const char *line = "int f(int a, int b) { return a * 31 + b; }\n";
    while (text.size() < bytes) {
        text += line;
    }
    text.resize(bytes);
    return text;
}

} // namespace

int
main()
{
    // Stage binaries: cc1 is the paper's 14 MiB front end.
    std::map<std::string, workloads::ProgramBuild> builds;
    builds.emplace("gcc", workloads::build_program(
                              workloads::gcc_driver_source(), 512 << 10,
                              1 << 20, kBigReserve));
    for (const char *stage : {"cpp", "as", "ld"}) {
        builds.emplace(stage, workloads::build_program(
                                  workloads::gcc_stage_source(stage),
                                  1 << 20, 1 << 20, kBigReserve));
    }
    builds.emplace("cc1", workloads::build_program(
                              workloads::gcc_stage_source("cc1"),
                              14 << 20, 1 << 20, kBigReserve));

    struct Unit {
        const char *label;
        uint64_t bytes;
    };
    const Unit units[] = {
        {"helloworld.c (5 LoC)", 128},
        {"gzip.c (5K LoC)", 48 << 10},
        {"ogg.c (50K LoC)", 480 << 10},
    };

    Table table("Fig 5b: GCC-like compile pipeline");
    table.set_header({"translation unit", "Linux", "Graphene-like (EIP)",
                      "Occlum", "Occlum vs Linux", "Occlum vs EIP"});
    bench::JsonReport report("fig5b_gcc");

    for (const Unit &unit : units) {
        std::string text = make_source_text(unit.bytes);
        Bytes source_bytes(text.begin(), text.end());
        const std::vector<std::string> argv = {"gcc", "/src.c"};

        // Linux.
        SimClock linux_clock;
        host::HostFileStore linux_files;
        for (const auto &[name, b] : builds) {
            linux_files.put(name, b.plain);
        }
        linux_files.put("/src.c", source_bytes);
        baseline::LinuxSystem linux_sys(linux_clock, linux_files);
        double linux_s = bench::timed_run(linux_sys, "gcc", argv);

        // Graphene-like EIP (read-only FS serves the source fine).
        sgx::Platform eip_platform;
        host::HostFileStore eip_files;
        for (const auto &[name, b] : builds) {
            eip_files.put(name, b.plain);
        }
        eip_files.put("/src.c", source_bytes);
        baseline::EipSystem eip_sys(eip_platform, eip_files, {});
        double eip_s = bench::timed_run(eip_sys, "gcc", argv);

        // Occlum: the source lives on the encrypted FS.
        sgx::Platform occ_platform;
        host::HostFileStore occ_files;
        for (const auto &[name, b] : builds) {
            occ_files.put(name, b.occlum);
        }
        auto config = bench::occlum_config(6, kBigReserve, 8 << 20);
        libos::OcclumSystem occ_sys(occ_platform, occ_files, config);
        OCC_CHECK(occ_sys.fs().write_file("/src.c", source_bytes).ok());
        double occ_s = bench::timed_run(occ_sys, "gcc", argv);

        table.add_row({unit.label, format_time_us(linux_s * 1e6),
                       format_time_us(eip_s * 1e6),
                       format_time_us(occ_s * 1e6),
                       format("%.1fx slower", occ_s / linux_s),
                       format("%.1fx faster", eip_s / occ_s)});
        report.add(unit.label, "linux_us", linux_s * 1e6);
        report.add(unit.label, "eip_us", eip_s * 1e6);
        report.add(unit.label, "occlum_us", occ_s * 1e6);
    }
    table.print();
    std::printf("\nPaper shape: Occlum 3.6-9.2x slower than Linux, "
                "3.8-42x faster than Graphene.\n");
    report.write();
    return 0;
}
