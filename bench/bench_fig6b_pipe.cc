/**
 * @file
 * Figure 6b: pipe throughput between two processes under varied
 * buffer sizes (16 B .. 4 KiB).
 *
 * Paper shape: Occlum is on par with Linux (shared-address-space
 * copies, function-call syscalls) and both are >3x Graphene-like EIP,
 * which pays AES both ways through untrusted memory plus two world
 * switches per operation.
 */
#include "bench/bench_util.h"

using namespace occlum;

namespace {

/** Driver program: pipe two children together, report via reader. */
std::string
driver_source()
{
    return R"(
global byte w[8] = "writer";
global byte r[8] = "reader";
global byte chunkbuf[24];
global byte totalbuf[24];
func main() {
    getarg(1, chunkbuf, 24);
    getarg(2, totalbuf, 24);
    var fds[2];
    pipe(fds);
    var argvw[3];
    argvw[0] = w;
    argvw[1] = chunkbuf;
    argvw[2] = totalbuf;
    var iow[3];
    iow[0] = 0 - 1;
    iow[1] = fds[1];
    iow[2] = 0 - 1;
    var wpid = spawn_io(w, argvw, 3, iow);
    var argvr[2];
    argvr[0] = r;
    argvr[1] = chunkbuf;
    var ior[3];
    ior[0] = fds[0];
    ior[1] = 0 - 1;
    ior[2] = 0 - 1;
    var rpid = spawn_io(r, argvr, 2, ior);
    close(fds[0]);
    close(fds[1]);
    waitpid(wpid);
    return waitpid(rpid);
}
)";
}

double
run_one(oskit::Kernel &sys, uint64_t chunk, uint64_t total)
{
    sys.clear_console();
    auto pid = sys.spawn("pipedrv", {"pipedrv", std::to_string(chunk),
                                     std::to_string(total)});
    OCC_CHECK_MSG(pid.ok(), pid.error().message);
    sys.run();
    auto result = bench::parse_result(sys.console());
    OCC_CHECK_MSG(result.has_value(), "no RESULT line");
    return bench::result_mbps(*result);
}

} // namespace

int
main()
{
    workloads::ProgramBuild driver =
        workloads::build_program(driver_source());
    workloads::ProgramBuild writer =
        workloads::build_program(workloads::pipe_writer_source());
    workloads::ProgramBuild reader =
        workloads::build_program(workloads::pipe_reader_source());

    Table table("Fig 6b: pipe throughput vs buffer size");
    table.set_header({"buffer", "Linux", "Graphene-like (EIP)", "Occlum",
                      "Occlum/EIP"});
    bench::JsonReport report("fig6b_pipe");

    for (uint64_t chunk : {16u, 64u, 256u, 1024u, 4096u}) {
        uint64_t total = std::max<uint64_t>(1 << 20, chunk * 4096);

        SimClock linux_clock;
        host::HostFileStore linux_files;
        linux_files.put("pipedrv", driver.plain);
        linux_files.put("writer", writer.plain);
        linux_files.put("reader", reader.plain);
        baseline::LinuxSystem linux_sys(linux_clock, linux_files);
        double linux_mbps = run_one(linux_sys, chunk, total);

        sgx::Platform eip_platform;
        host::HostFileStore eip_files;
        eip_files.put("pipedrv", driver.plain);
        eip_files.put("writer", writer.plain);
        eip_files.put("reader", reader.plain);
        baseline::EipSystem eip_sys(eip_platform, eip_files, {});
        double eip_mbps = run_one(eip_sys, chunk, total);

        sgx::Platform occ_platform;
        host::HostFileStore occ_files;
        occ_files.put("pipedrv", driver.occlum);
        occ_files.put("writer", writer.occlum);
        occ_files.put("reader", reader.occlum);
        libos::OcclumSystem occ_sys(occ_platform, occ_files,
                                    bench::occlum_config());
        double occ_mbps = run_one(occ_sys, chunk, total);

        table.add_row({format("%lluB", (unsigned long long)chunk),
                       format_mbps(linux_mbps), format_mbps(eip_mbps),
                       format_mbps(occ_mbps),
                       format("%.1fx", occ_mbps / eip_mbps)});
        std::string label = format("%lluB", (unsigned long long)chunk);
        report.add(label, "linux_mbps", linux_mbps);
        report.add(label, "eip_mbps", eip_mbps);
        report.add(label, "occlum_mbps", occ_mbps);
    }
    table.print();
    std::printf("\nPaper shape: Occlum ~ Linux, both >3x Graphene.\n");
    report.write();
    return 0;
}
