/**
 * @file
 * Figure 7a: MMDSFI's CPU overhead on SPECint2006-like kernels.
 *
 * Each kernel is compiled twice — plain and with full (optimized)
 * MMDSFI instrumentation — and executed on the Linux-model kernel so
 * no LibOS effects pollute the measurement. The overhead is the
 * ratio of simulated CPU time.
 *
 * Paper: per-benchmark overheads mostly between ~10% and ~70%, with
 * a 36.6% mean.
 */
#include "bench/bench_util.h"

#include "trace/metrics.h"

using namespace occlum;

namespace {

/** Block-cache counter deltas accumulated by a run_kernel() call. */
struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/** Simulated cycles from spawn completion to exit. */
double
run_kernel(const Bytes &image, CacheStats *stats = nullptr)
{
    auto &hits = trace::Registry::instance().counter(
        "vm.block_cache.hits");
    auto &misses = trace::Registry::instance().counter(
        "vm.block_cache.misses");
    uint64_t hits0 = hits.value(), misses0 = misses.value();
    SimClock clock;
    host::HostFileStore files;
    files.put("kern", image);
    baseline::LinuxSystem sys(clock, files);
    auto pid = sys.spawn("kern", {"kern"});
    OCC_CHECK_MSG(pid.ok(), pid.error().message);
    uint64_t after_spawn = clock.cycles();
    sys.run();
    auto code = sys.exit_code(pid.value());
    OCC_CHECK_MSG(code.ok() && code.value() >= 0, "kernel failed");
    if (stats) {
        stats->hits += hits.value() - hits0;
        stats->misses += misses.value() - misses0;
    }
    return static_cast<double>(clock.cycles() - after_spawn);
}

} // namespace

int
main()
{
    Table table("Fig 7a: MMDSFI overhead on SPECint2006-like kernels");
    table.set_header({"benchmark", "plain (Mcycles)",
                      "MMDSFI (Mcycles)", "overhead", "bb hit rate"});

    Aggregate overheads;
    bench::JsonReport report("fig7a_specint");
    std::map<std::string, int64_t> checks;
    for (const std::string &name : workloads::spec_kernel_names()) {
        workloads::ProgramBuild build = workloads::build_program(
            workloads::spec_kernel_source(name), 0, 2 << 20);
        CacheStats cache;
        double plain = run_kernel(build.plain, &cache);
        double sfi = run_kernel(build.occlum, &cache);
        double overhead = sfi / plain - 1.0;
        double lookups = static_cast<double>(cache.hits + cache.misses);
        double hit_rate =
            lookups > 0 ? static_cast<double>(cache.hits) / lookups : 0;
        overheads.add(overhead);
        table.add_row({name, format("%.1f", plain / 1e6),
                       format("%.1f", sfi / 1e6),
                       format("%.1f%%", overhead * 100),
                       format("%.2f%%", hit_rate * 100)});
        report.add(name, "plain_mcycles", plain / 1e6);
        report.add(name, "mmdsfi_mcycles", sfi / 1e6);
        report.add(name, "overhead_pct", overhead * 100);
        report.add(name, "block_cache_hit_rate_pct", hit_rate * 100);
    }
    table.add_row({"MEAN", "", "",
                   format("%.1f%%", overheads.mean() * 100)});
    table.print();
    std::printf("\nPaper: 36.6%% mean overhead across SPECint2006.\n");
    report.add("MEAN", "overhead_pct", overheads.mean() * 100);
    report.write();
    return 0;
}
