/**
 * @file
 * Figure 7a: MMDSFI's CPU overhead on SPECint2006-like kernels.
 *
 * Each kernel is compiled twice — plain and with full (optimized)
 * MMDSFI instrumentation — and executed on the Linux-model kernel so
 * no LibOS effects pollute the measurement. The overhead is the
 * ratio of simulated CPU time.
 *
 * Paper: per-benchmark overheads mostly between ~10% and ~70%, with
 * a 36.6% mean.
 */
#include "bench/bench_util.h"

using namespace occlum;

namespace {

/** Simulated cycles from spawn completion to exit. */
double
run_kernel(const Bytes &image)
{
    SimClock clock;
    host::HostFileStore files;
    files.put("kern", image);
    baseline::LinuxSystem sys(clock, files);
    auto pid = sys.spawn("kern", {"kern"});
    OCC_CHECK_MSG(pid.ok(), pid.error().message);
    uint64_t after_spawn = clock.cycles();
    sys.run();
    auto code = sys.exit_code(pid.value());
    OCC_CHECK_MSG(code.ok() && code.value() >= 0, "kernel failed");
    return static_cast<double>(clock.cycles() - after_spawn);
}

} // namespace

int
main()
{
    Table table("Fig 7a: MMDSFI overhead on SPECint2006-like kernels");
    table.set_header({"benchmark", "plain (Mcycles)",
                      "MMDSFI (Mcycles)", "overhead"});

    Aggregate overheads;
    bench::JsonReport report("fig7a_specint");
    std::map<std::string, int64_t> checks;
    for (const std::string &name : workloads::spec_kernel_names()) {
        workloads::ProgramBuild build = workloads::build_program(
            workloads::spec_kernel_source(name), 0, 2 << 20);
        double plain = run_kernel(build.plain);
        double sfi = run_kernel(build.occlum);
        double overhead = sfi / plain - 1.0;
        overheads.add(overhead);
        table.add_row({name, format("%.1f", plain / 1e6),
                       format("%.1f", sfi / 1e6),
                       format("%.1f%%", overhead * 100)});
        report.add(name, "plain_mcycles", plain / 1e6);
        report.add(name, "mmdsfi_mcycles", sfi / 1e6);
        report.add(name, "overhead_pct", overhead * 100);
    }
    table.add_row({"MEAN", "", "",
                   format("%.1f%%", overheads.mean() * 100)});
    table.print();
    std::printf("\nPaper: 36.6%% mean overhead across SPECint2006.\n");
    report.add("MEAN", "overhead_pct", overheads.mean() * 100);
    report.write();
    return 0;
}
