/**
 * @file
 * Figure 7a: MMDSFI's CPU overhead on SPECint2006-like kernels.
 *
 * Each kernel is compiled twice — plain and with full (optimized)
 * MMDSFI instrumentation — and executed on the Linux-model kernel so
 * no LibOS effects pollute the measurement. The overhead is the
 * ratio of simulated CPU time.
 *
 * The headline rows run with the superblock tier pinned off so the
 * block-cache hit rates keep their tier-1 meaning (and every
 * pre-existing JSON value stays bit-identical); a second pass re-runs
 * the instrumented kernels with the tier on, asserts the simulated
 * cycles are unchanged, and reports the wall-clock speedup plus trace
 * statistics as additive columns.
 *
 * Paper: per-benchmark overheads mostly between ~10% and ~70%, with
 * a 36.6% mean.
 */
#include "bench/bench_util.h"

#include <chrono>

#include "trace/metrics.h"

using namespace occlum;

namespace {

/** Dispatch-counter deltas accumulated by a run_kernel() call. */
struct CacheStats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t sb_promotions = 0;
    uint64_t sb_guards_folded = 0;
};

/** Simulated cycles from spawn completion to exit. */
double
run_kernel(const Bytes &image, CacheStats *stats = nullptr,
           double *wall_ms = nullptr)
{
    auto &registry = trace::Registry::instance();
    auto &hits = registry.counter("vm.block_cache.hits");
    auto &misses = registry.counter("vm.block_cache.misses");
    auto &promos = registry.counter("vm.superblock.promotions");
    auto &folded = registry.counter("vm.superblock.guards_folded");
    uint64_t hits0 = hits.value(), misses0 = misses.value();
    uint64_t promos0 = promos.value(), folded0 = folded.value();
    SimClock clock;
    host::HostFileStore files;
    files.put("kern", image);
    baseline::LinuxSystem sys(clock, files);
    auto t0 = std::chrono::steady_clock::now();
    auto pid = sys.spawn("kern", {"kern"});
    OCC_CHECK_MSG(pid.ok(), pid.error().message);
    uint64_t after_spawn = clock.cycles();
    sys.run();
    auto t1 = std::chrono::steady_clock::now();
    auto code = sys.exit_code(pid.value());
    OCC_CHECK_MSG(code.ok() && code.value() >= 0, "kernel failed");
    if (stats) {
        stats->hits += hits.value() - hits0;
        stats->misses += misses.value() - misses0;
        stats->sb_promotions += promos.value() - promos0;
        stats->sb_guards_folded += folded.value() - folded0;
    }
    if (wall_ms) {
        *wall_ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
    }
    return static_cast<double>(clock.cycles() - after_spawn);
}

/** Best-of-N wall-clock for one image under one tier default. */
double
best_wall(const Bytes &image, bool superblock, int reps,
          double expect_cycles, CacheStats *stats = nullptr)
{
    bool saved = vm::Cpu::default_superblock_enabled();
    vm::Cpu::set_default_superblock_enabled(superblock);
    double best = 1e18;
    for (int i = 0; i < reps; ++i) {
        double ms = 0;
        double cycles = run_kernel(image, i == 0 ? stats : nullptr, &ms);
        OCC_CHECK_MSG(cycles == expect_cycles,
                      "execution tier must not perturb simulated cycles");
        best = std::min(best, ms);
    }
    vm::Cpu::set_default_superblock_enabled(saved);
    return best;
}

} // namespace

int
main()
{
    // The headline sweep reproduces the tier-1 numbers exactly.
    bool saved_sb = vm::Cpu::default_superblock_enabled();
    vm::Cpu::set_default_superblock_enabled(false);

    Table table("Fig 7a: MMDSFI overhead on SPECint2006-like kernels");
    table.set_header({"benchmark", "plain (Mcycles)",
                      "MMDSFI (Mcycles)", "overhead", "bb hit rate",
                      "sb promos", "sb wall speedup"});

    Aggregate overheads;
    bench::JsonReport report("fig7a_specint");
    double total_wall_t1 = 0;
    double total_wall_t2 = 0;
    for (const std::string &name : workloads::spec_kernel_names()) {
        workloads::ProgramBuild build = workloads::build_program(
            workloads::spec_kernel_source(name), 0, 2 << 20);
        CacheStats cache;
        double plain = run_kernel(build.plain, &cache);
        double sfi = run_kernel(build.occlum, &cache);
        double overhead = sfi / plain - 1.0;
        double lookups = static_cast<double>(cache.hits + cache.misses);
        double hit_rate =
            lookups > 0 ? static_cast<double>(cache.hits) / lookups : 0;
        overheads.add(overhead);

        // Superblock pass: same image, tier on; sim cycles asserted
        // identical, wall clock best-of-3 for both configurations.
        constexpr int kReps = 3;
        CacheStats sb_stats;
        double wall_t1 = best_wall(build.occlum, false, kReps, sfi);
        double wall_t2 =
            best_wall(build.occlum, true, kReps, sfi, &sb_stats);
        double sb_speedup = wall_t2 > 0 ? wall_t1 / wall_t2 : 0.0;
        total_wall_t1 += wall_t1;
        total_wall_t2 += wall_t2;

        table.add_row({name, format("%.1f", plain / 1e6),
                       format("%.1f", sfi / 1e6),
                       format("%.1f%%", overhead * 100),
                       format("%.2f%%", hit_rate * 100),
                       std::to_string(sb_stats.sb_promotions),
                       format("%.2fx", sb_speedup)});
        report.add(name, "plain_mcycles", plain / 1e6);
        report.add(name, "mmdsfi_mcycles", sfi / 1e6);
        report.add(name, "overhead_pct", overhead * 100);
        report.add(name, "block_cache_hit_rate_pct", hit_rate * 100);
        report.add(name, "superblock_promotions",
                   static_cast<double>(sb_stats.sb_promotions));
        report.add(name, "superblock_guards_folded",
                   static_cast<double>(sb_stats.sb_guards_folded));
        report.add(name, "superblock_wall_speedup", sb_speedup);
    }
    double total_speedup =
        total_wall_t2 > 0 ? total_wall_t1 / total_wall_t2 : 0.0;
    table.add_row({"MEAN", "", "",
                   format("%.1f%%", overheads.mean() * 100), "", "",
                   format("%.2fx", total_speedup)});
    table.print();
    std::printf("\nPaper: 36.6%% mean overhead across SPECint2006.\n");
    std::printf("superblock tier: simulated cycles bit-identical "
                "(asserted); %.2fx wall-clock over the block-cache "
                "interpreter\n", total_speedup);
    report.add("MEAN", "overhead_pct", overheads.mean() * 100);
    report.add("MEAN", "superblock_wall_speedup", total_speedup);
    report.write();
    vm::Cpu::set_default_superblock_enabled(saved_sb);
    return 0;
}
