/**
 * @file
 * Figures 6c and 6d: sequential file read/write throughput under
 * varied buffer sizes (4 B .. 16 KiB), Linux ext4 model vs Occlum's
 * writable encrypted FS.
 *
 * Paper: Occlum averages -39% on reads and -18% on writes versus
 * ext4 — the price of transparent AES-CTR + HMAC per block.
 * (Graphene is excluded, as in the paper: no writable encrypted FS.)
 */
#include "bench/bench_util.h"
#include <chrono>
static double now_s() { return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch()).count(); }
static double t_build=0, t_linux=0, t_occ_ctor=0, t_occ_run=0;

using namespace occlum;

namespace {

double
run_phase(oskit::Kernel &sys, const std::string &prog, uint64_t chunk,
          uint64_t total)
{
    sys.clear_console();
    std::vector<std::string> argv = {prog, std::to_string(chunk)};
    if (total != 0) {
        argv.push_back(std::to_string(total));
    }
    auto pid = sys.spawn(prog, argv);
    OCC_CHECK_MSG(pid.ok(), pid.error().message);
    sys.run();
    auto result = bench::parse_result(sys.console());
    OCC_CHECK_MSG(result.has_value(), "no RESULT from " + prog);
    return bench::result_mbps(*result);
}

} // namespace

int
main()
{
    double t0 = now_s();
    workloads::ProgramBuild writer =
        workloads::build_program(workloads::file_write_bench_source());
    workloads::ProgramBuild reader =
        workloads::build_program(workloads::file_read_bench_source());
    t_build = now_s() - t0;

    Table reads("Fig 6c: sequential file READ throughput");
    reads.set_header({"buffer", "Linux ext4", "Occlum EncFS",
                      "overhead"});
    Table writes("Fig 6d: sequential file WRITE throughput");
    writes.set_header({"buffer", "Linux ext4", "Occlum EncFS",
                       "overhead"});

    Aggregate read_overhead, write_overhead;
    bench::JsonReport report("fig6cd_file_io");

    for (uint64_t chunk : {4u, 16u, 64u, 256u, 1024u, 4096u, 16384u}) {
        // Keep small-buffer runs tractable; throughput is
        // size-insensitive once past a few hundred KiB.
        uint64_t total = chunk <= 64 ? (256 << 10) : (1 << 20);

        // ---- Linux ----
        SimClock linux_clock;
        host::HostFileStore linux_files;
        linux_files.put("fwrite", writer.plain);
        linux_files.put("fread", reader.plain);
        double tl = now_s();
        baseline::LinuxSystem linux_sys(linux_clock, linux_files);
        double linux_w = run_phase(linux_sys, "fwrite", chunk, total);
        double linux_r = run_phase(linux_sys, "fread", chunk, 0);
        t_linux += now_s() - tl;

        // ---- Occlum (small page cache so reads hit the device) ----
        sgx::Platform occ_platform;
        host::HostFileStore occ_files;
        occ_files.put("fwrite", writer.occlum);
        occ_files.put("fread", reader.occlum);
        auto config = bench::occlum_config();
        config.fs_blocks = 1 << 15;
        config.fs_cache_blocks = 64; // force cold reads like ext4's
        double tc = now_s();
        libos::OcclumSystem occ_sys(occ_platform, occ_files, config);
        t_occ_ctor += now_s() - tc;
        double tr = now_s();
        double occ_w = run_phase(occ_sys, "fwrite", chunk, total);
        double occ_r = run_phase(occ_sys, "fread", chunk, 0);
        t_occ_run += now_s() - tr;

        double r_ovh = 1.0 - occ_r / linux_r;
        double w_ovh = 1.0 - occ_w / linux_w;
        read_overhead.add(r_ovh);
        write_overhead.add(w_ovh);
        reads.add_row({format("%lluB", (unsigned long long)chunk),
                       format_mbps(linux_r), format_mbps(occ_r),
                       format("%.0f%%", 100 * r_ovh)});
        writes.add_row({format("%lluB", (unsigned long long)chunk),
                        format_mbps(linux_w), format_mbps(occ_w),
                        format("%.0f%%", 100 * w_ovh)});
        std::string label = format("%lluB", (unsigned long long)chunk);
        report.add(label, "linux_read_mbps", linux_r);
        report.add(label, "occlum_read_mbps", occ_r);
        report.add(label, "linux_write_mbps", linux_w);
        report.add(label, "occlum_write_mbps", occ_w);
    }
    reads.print();
    std::printf("mean read overhead: %.0f%% (paper: 39%%)\n",
                100 * read_overhead.mean());
    writes.print();
    std::printf("mean write overhead: %.0f%% (paper: 18%%)\n",
                100 * write_overhead.mean());
    report.add("mean", "read_overhead_pct", 100 * read_overhead.mean());
    report.add("mean", "write_overhead_pct",
               100 * write_overhead.mean());
    report.write();
    std::printf("PROF build=%.3f linux=%.3f occ_ctor=%.3f occ_run=%.3f\n", t_build, t_linux, t_occ_ctor, t_occ_run);
    return 0;
}
