/**
 * @file
 * Attested-channel microbenchmark: cost of the mutual attestation
 * handshake (evidence generation + verification + key schedule over
 * NetSim) and the steady-state throughput of the encrypted record
 * layer, with a plaintext-records ablation row quantifying exactly
 * what the AES-CTR + HMAC data plane costs relative to bare framing.
 *
 * All numbers are simulated cycles/seconds from the shared platform
 * clock, so they compose with the fig5/fig6 results: an attested RPC
 * is an OCALL-priced socket round trip plus record crypto priced with
 * the same per-byte constants as EncFs.
 */
#include "bench/bench_util.h"

#include "workloads/attested_rpc.h"

using namespace occlum;

namespace {

workloads::AttestedRpcReport
run(int requests, size_t response_bytes, bool plaintext, uint64_t seed)
{
    workloads::AttestedRpcOptions options;
    options.requests = requests;
    options.response_bytes = response_bytes;
    options.window = 8;
    options.plaintext = plaintext;
    options.seed = seed;
    workloads::AttestedRpcReport report =
        workloads::run_attested_rpc(options);
    OCC_CHECK_MSG(report.ok, "attested rpc failed: " + report.error);
    OCC_CHECK_MSG(report.keys_match && report.secret_released,
                  "attested rpc incomplete");
    return report;
}

} // namespace

int
main()
{
    bench::JsonReport report("attested_rpc");

    // ---- handshake: full bootstrap to identical session keys -------
    Aggregate handshake_us;
    uint64_t handshake_cycles = 0;
    for (uint64_t seed : {11u, 22u, 33u, 44u}) {
        workloads::AttestedRpcReport r = run(0, 0, false, seed);
        handshake_cycles = r.handshake_cycles;
        handshake_us.add(
            SimClock::cycles_to_seconds(r.handshake_cycles) * 1e6);
    }
    report.add("handshake", "cycles",
               static_cast<double>(handshake_cycles));
    report.add("handshake", "mean_us", handshake_us.mean());

    Table table("Attested RPC: handshake + record throughput");
    table.set_header({"config", "records/s", "MB/s", "total Mcycles"});

    // ---- steady-state RPC throughput, attested vs plaintext --------
    constexpr int kRequests = 192;
    constexpr size_t kResponseBytes = 8192;
    double ratio = 1.0;
    double attested_cycles = 0.0;
    for (bool plaintext : {false, true}) {
        workloads::AttestedRpcReport r =
            run(kRequests, kResponseBytes, plaintext, 7);
        double seconds = SimClock::cycles_to_seconds(r.total_cycles);
        double records_s =
            static_cast<double>(r.records) / seconds;
        double mb_s = static_cast<double>(r.payload_bytes) / seconds / 1e6;
        const char *label = plaintext ? "plaintext" : "attested";
        report.add(label, "records_per_s", records_s);
        report.add(label, "mb_per_s", mb_s);
        report.add(label, "total_cycles",
                   static_cast<double>(r.total_cycles));
        report.add(label, "payload_bytes",
                   static_cast<double>(r.payload_bytes));
        table.add_row({label, format("%.0f", records_s),
                       format("%.1f", mb_s),
                       format("%.2f", r.total_cycles / 1e6)});
        if (plaintext) {
            ratio = attested_cycles / static_cast<double>(r.total_cycles);
        } else {
            attested_cycles = static_cast<double>(r.total_cycles);
        }
    }
    // Ablation: how much the record crypto multiplies end-to-end time.
    report.add("ablation", "attested_over_plaintext_cycles", ratio);

    table.print();
    std::printf("\nhandshake: %.1f us simulated (%llu cycles); "
                "record crypto costs %.2fx over plaintext framing\n",
                handshake_us.mean(),
                (unsigned long long)handshake_cycles, ratio);
    report.write();
    return 0;
}
