/**
 * @file
 * Substrate microbenchmarks (google-benchmark): wall-clock
 * performance of the building blocks the simulation itself runs on —
 * SHA-256 (enclave measurement), AES-CTR (encrypted FS), the OVM
 * interpreter, the MiniC compiler, and the verifier. These measure
 * the *simulator*, not the simulated system; the figure benches
 * report simulated time.
 */
#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "baseline/linux_system.h"
#include "crypto/aes.h"
#include "crypto/sha256.h"
#include "isa/assembler.h"
#include "toolchain/minic.h"
#include "verifier/verifier.h"
#include "vm/cpu.h"

using namespace occlum;

namespace {

void
BM_Sha256(benchmark::State &state)
{
    Bytes data(static_cast<size_t>(state.range(0)), 0xa5);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::Sha256::digest(data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(65536);

void
BM_AesCtr(benchmark::State &state)
{
    crypto::Key128 key{};
    key[0] = 1;
    crypto::Aes128 aes(key);
    Bytes data(static_cast<size_t>(state.range(0)), 0x5a);
    std::array<uint8_t, 12> iv{};
    for (auto _ : state) {
        benchmark::DoNotOptimize(aes.ctr_crypt(iv, 0, data));
    }
    state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_AesCtr)->Arg(4096);

/**
 * Interpreter throughput. `cache` toggles the predecoded basic-block
 * cache and `superblock` the trace tier on top, so each tier's
 * wall-clock win is visible in one report; simulated cycles are
 * identical in every mode (asserted by the ablation bench).
 */
void
vm_interpreter_bench(benchmark::State &state, bool cache,
                     bool superblock)
{
    vm::AddressSpace space;
    OCC_CHECK(space.map(0x1000, 0x1000, vm::kPermRX).ok());
    OCC_CHECK(space.map(0x10000, 0x1000, vm::kPermRW).ok());
    isa::Assembler a(0x1000);
    a.mov_ri(1, 0);
    a.mov_ri(2, 1000);
    a.bind("loop");
    a.add_ri(1, 3);
    a.xor_rr(3, 1);
    a.sub_ri(2, 1);
    a.cmp_ri(2, 0);
    a.jcc(isa::Cond::kNe, "loop");
    a.ltrap();
    Bytes code = a.finish();
    OCC_CHECK(space.write_raw(0x1000, code.data(), code.size()) ==
              vm::AccessFault::kNone);
    uint64_t hits = 0, misses = 0;
    uint64_t promotions = 0, sb_entries = 0;
    for (auto _ : state) {
        vm::Cpu cpu(space);
        cpu.set_block_cache_enabled(cache);
        cpu.set_superblock_enabled(superblock);
        cpu.set_rip(0x1000);
        cpu.set_sp(0x11000 - 16);
        benchmark::DoNotOptimize(cpu.run(100000));
        hits = cpu.block_cache_hits();
        misses = cpu.block_cache_misses();
        promotions = cpu.superblock_promotions();
        sb_entries = cpu.superblock_exec_hits();
        state.counters["instr/s"] = benchmark::Counter(
            static_cast<double>(cpu.instructions()),
            benchmark::Counter::kIsIterationInvariantRate);
    }
    state.counters["bb_hits"] = static_cast<double>(hits);
    state.counters["bb_misses"] = static_cast<double>(misses);
    if (superblock) {
        state.counters["sb_promotions"] = static_cast<double>(promotions);
        state.counters["sb_entries"] = static_cast<double>(sb_entries);
    }
}

/** The PR 2 tier-1 baseline: block cache on, superblock tier off. */
void
BM_VmInterpreter(benchmark::State &state)
{
    vm_interpreter_bench(state, /*cache=*/true, /*superblock=*/false);
}
BENCHMARK(BM_VmInterpreter);

void
BM_VmInterpreterNoCache(benchmark::State &state)
{
    vm_interpreter_bench(state, /*cache=*/false, /*superblock=*/false);
}
BENCHMARK(BM_VmInterpreterNoCache);

void
BM_VmInterpreterSuperblock(benchmark::State &state)
{
    vm_interpreter_bench(state, /*cache=*/true, /*superblock=*/true);
}
BENCHMARK(BM_VmInterpreterSuperblock);

void
BM_CompileMiniC(benchmark::State &state)
{
    const char *src =
        "global int a[64];\n"
        "func main() { for (i = 0; i < 64; i = i + 1) { a[i] = i * i; }"
        " return a[63]; }";
    for (auto _ : state) {
        benchmark::DoNotOptimize(toolchain::compile(src));
    }
}
BENCHMARK(BM_CompileMiniC);

void
BM_VerifyBinary(benchmark::State &state)
{
    auto out = toolchain::compile(
        "global int a[256];\n"
        "func main() { for (i = 0; i < 256; i = i + 1) { a[i] = i; }"
        " return 0; }");
    OCC_CHECK(out.ok());
    crypto::Key128 key{};
    verifier::Verifier verifier(key);
    for (auto _ : state) {
        benchmark::DoNotOptimize(verifier.verify(out.value().image));
    }
    state.counters["instrs"] = static_cast<double>(
        verifier.verify(out.value().image).reachable_instructions);
}
BENCHMARK(BM_VerifyBinary);

/**
 * Console output as usual, plus every iteration-level run collected
 * into the shared BENCH_<name>.json schema.
 */
class CollectingReporter : public benchmark::ConsoleReporter
{
  public:
    explicit CollectingReporter(bench::JsonReport &report)
        : report_(&report)
    {}

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &run : runs) {
            if (run.run_type != Run::RT_Iteration ||
                run.error_occurred) {
                continue;
            }
            report_->add(run.benchmark_name(), "real_time_ns",
                         run.GetAdjustedRealTime());
        }
        ConsoleReporter::ReportRuns(runs);
    }

  private:
    bench::JsonReport *report_;
};

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
        return 1;
    }
    bench::JsonReport report("substrate");
    CollectingReporter reporter(report);
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    report.write();
    return 0;
}
