/**
 * @file
 * The RIPE-style security benchmark (paper §9.3): buffer-overflow
 * exploitation payloads run against the Graphene-like EIP baseline
 * (RWX page pool, no intra-enclave isolation) and against Occlum
 * (MMDSFI + verifier + page permissions).
 *
 * Each attack is a *verifier-clean* program with a deliberate
 * vulnerability: control data in D is corrupted with stores that are
 * legal under the memory-access policy, then control flow consumes
 * it — RIPE's model of exploiting a benign-but-buggy program.
 *
 * Observable outcomes (from the kernel's post-mortem records):
 *   HIJACKED  — attacker-chosen instructions executed (our shellcode
 *               runs `hlt`, which verified code can never contain);
 *   BLOCKED   — the attempt died on #BR (cfi_guard) or a page fault;
 *   CONFINED  — the transfer landed on a legitimate cfi_label and
 *               ran, but stayed inside the SIP (return-to-libc).
 *
 * Paper (stack protection off): 36 code-injection, 2 ROP, and 16
 * return-to-libc attacks succeed on Graphene-SGX; Occlum stops all
 * injection and ROP, while return-to-libc remains possible but
 * cannot break SIP isolation.
 */
#include "bench/bench_util.h"

#include "isa/assembler.h"
#include "oelf/abi.h"
#include "verifier/verifier.h"

using namespace occlum;
using isa::Assembler;
using isa::Instruction;
using isa::Opcode;
using isa::mem_bd;

namespace {

constexpr uint64_t kHeap = 64 << 10;
constexpr uint64_t kStack = 16 << 10;

void
mov_ri(Assembler &a, uint8_t reg, int64_t imm)
{
    a.mov_ri(reg, imm);
}

/** Position-independent "address of label" via rip-relative lea. */
void
lea_label(Assembler &a, uint8_t reg, const std::string &label)
{
    Instruction lea;
    lea.op = Opcode::kLea;
    lea.reg1 = reg;
    lea.mem.mode = isa::AddrMode::kRipRel;
    a.emit_mem_ref(lea, label);
}

/**
 * Load the current domain's cfi_label value into `dst` without
 * embedding the magic bytes (stage 1 would reject the direct
 * constant): read the domain ID from the PCB and assemble the value
 * arithmetically — exactly what a real attacker would do.
 */
void
emit_label_value(Assembler &a, uint8_t dst, uint8_t pcb_reg,
                 bool instrumented)
{
    // dst = [pcb + kPcbDomainId] << 32 | magic
    if (instrumented) {
        a.mem_guard(mem_bd(pcb_reg, abi::kPcbDomainId));
    }
    a.load(dst, mem_bd(pcb_reg, static_cast<int32_t>(abi::kPcbDomainId)));
    a.shl_ri(dst, 32);
    uint64_t magic = isa::cfi_label_value(0); // low 32 bits
    mov_ri(a, 11, static_cast<int64_t>(magic >> 8));
    a.shl_ri(11, 8);
    a.or_ri(11, static_cast<int32_t>(magic & 0xff));
    a.or_rr(dst, 11);
}

/** r2 := D.begin, derived from the initial stack pointer. */
void
emit_dbegin(Assembler &a, const oelf::Image &shape)
{
    a.mov_rr(2, isa::kSp);
    a.sub_ri(2, static_cast<int32_t>(shape.data_region_size() - 16));
}

/**
 * Build one attack image. Instrumented variants must pass the
 * verifier; plain variants use the same logic without guards.
 */
oelf::Image
build_attack(const std::string &kind, bool instrumented)
{
    oelf::Image shape;
    shape.heap_size = kHeap;
    shape.stack_size = kStack;
    shape.code_reserve = 1 << 20;

    Assembler a;
    a.cfi_label(0);

    // r2 = D.begin (PCB base).
    emit_dbegin(a, shape);

    if (kind.rfind("inject", 0) == 0) {
        // Attack: write [label value][shellcode] into writable memory
        // and jump there. The label value bytes decode as a cfi_label
        // so the Occlum cfi_guard *passes* — the attack is stopped by
        // the missing X permission on D, not by CFI (paper §7).
        int32_t dst_off = kind == "inject_heap"
                              ? static_cast<int32_t>(abi::kPcbSize + 256)
                          : kind == "inject_data"
                              ? static_cast<int32_t>(abi::kPcbSize)
                              : static_cast<int32_t>(
                                    shape.data_region_size() - 1024);
        // r1 = target address in D.
        a.mov_rr(1, 2);
        a.add_ri(1, dst_off);
        // r3 = this domain's label value.
        emit_label_value(a, 3, 2, instrumented);
        if (instrumented) {
            a.mem_guard(mem_bd(1, 0));
        }
        a.store(mem_bd(1, 0), 3);
        // Shellcode after the fake label: hlt.
        Assembler sc;
        sc.hlt();
        Bytes shellcode = sc.finish();
        for (size_t i = 0; i < shellcode.size(); ++i) {
            mov_ri(a, 4, shellcode[i]);
            if (instrumented) {
                a.mem_guard(mem_bd(1, static_cast<int32_t>(8 + i)));
            }
            a.store8(mem_bd(1, static_cast<int32_t>(8 + i)), 4);
        }
        if (instrumented) {
            a.cfi_guard(1);
        }
        a.jmp_reg(1);
    } else if (kind == "rop_mid_instruction") {
        // Gadget hidden inside a mov immediate: jumping into the
        // middle of `victim` executes `hlt`.
        lea_label(a, 1, "victim");
        a.add_ri(1, 2 + 3); // into the immediate of the 10-byte mov
        if (instrumented) {
            a.cfi_guard(1);
        }
        a.jmp_reg(1);
        a.bind("victim");
        // mov r5, imm64 whose 4th immediate byte is the hlt opcode.
        Instruction trap_mov;
        trap_mov.op = Opcode::kMovRI;
        trap_mov.reg1 = 5;
        trap_mov.imm = 0x0000000001000000ll |
                       (static_cast<int64_t>(
                            static_cast<uint8_t>(Opcode::kHlt))
                        << 24);
        a.emit(trap_mov);
        a.bind("after");
        a.jmp("after");
    } else if (kind == "rop_function_tail") {
        // Gadget at a plain instruction boundary (not a cfi_label).
        lea_label(a, 1, "gadget");
        if (instrumented) {
            a.cfi_guard(1);
        }
        a.jmp_reg(1);
        a.bind("victim_entry");
        a.cfi_label(0);
        mov_ri(a, 5, 7);
        a.bind("gadget");
        if (instrumented) {
            // Verified code cannot contain hlt (stage 2 would reject
            // the binary outright); the gadget here is benign, and
            // the attack must die in the cfi_guard before reaching it.
            a.bind("gspin");
            a.jmp("gspin");
        } else {
            a.hlt();
        }
    } else if (kind == "ret2libc") {
        // Corrupt the "return slot" to a *legitimate* function entry:
        // a libc-exit stand-in that terminates with code 7 via the
        // gate — observable as a successful (but confined) hijack.
        lea_label(a, 1, "libc_exit");
        if (instrumented) {
            a.cfi_guard(1);
        }
        a.jmp_reg(1);
        a.bind("libc_exit");
        a.cfi_label(0);
        emit_dbegin(a, shape);
        // r14 = trampoline address from the PCB.
        if (instrumented) {
            a.mem_guard(mem_bd(2, 0));
        }
        a.load(14, mem_bd(2, 0));
        Instruction num;
        num.op = Opcode::kMovRI;
        num.reg1 = 0;
        num.imm = static_cast<int64_t>(abi::Sys::kExit);
        a.emit(num);
        mov_ri(a, 1, 7);
        if (instrumented) {
            a.cfi_guard(14);
        }
        a.call_reg(14);
        // Return site must be a cfi_label: the LibOS validates the
        // syscall return target (paper Sec 6).
        a.cfi_label(0);
        a.bind("spin");
        a.jmp("spin");
    } else if (kind == "cross_domain_jump") {
        // Guess the neighbouring SIP's code address (base + one slot
        // span in the shared Occlum enclave; an arbitrary address
        // under EIP) and jump there.
        a.mov_rr(1, isa::kSp);
        a.add_ri(1, 12 << 20); // beyond this domain
        if (instrumented) {
            a.cfi_guard(1);
        }
        a.jmp_reg(1);
    } else {
        OCC_PANIC("unknown attack " << kind);
    }

    shape.code = a.finish();
    shape.entry_offset = 0;
    if (instrumented) {
        shape.flags = oelf::kFlagInstrumented;
    }
    return shape;
}

const char *kAttacks[] = {
    "inject_stack",     "inject_heap",       "inject_data",
    "rop_mid_instruction", "rop_function_tail", "ret2libc",
    "cross_domain_jump",
};

std::string
classify(const oskit::DeathRecord &record)
{
    switch (record.cause) {
      case oskit::DeathCause::kPrivileged:
        return "HIJACKED";
      case oskit::DeathCause::kFault:
        return "BLOCKED";
      case oskit::DeathCause::kExited:
        return record.code == 7 ? "CONFINED (ret2libc ran)"
                                : "no effect";
      default:
        return "?";
    }
}

} // namespace

int
main()
{
    verifier::Verifier verifier(workloads::bench_verifier_key());

    Table table("RIPE-style attack suite (paper Sec 9.3)");
    table.set_header({"attack", "Graphene-like (EIP)", "Occlum",
                      "verifier"});

    int occlum_hijacks = 0;
    int eip_hijacks = 0;
    for (const char *attack : kAttacks) {
        // ---- EIP flavour: plain code, RWX pool -------------------
        oelf::Image plain = build_attack(attack, false);
        sgx::Platform eip_platform;
        host::HostFileStore eip_files;
        eip_files.put("attack", plain.serialize());
        baseline::EipSystem eip_sys(eip_platform, eip_files, {});
        auto eip_pid = eip_sys.spawn("attack", {"attack"});
        OCC_CHECK_MSG(eip_pid.ok(), eip_pid.error().message);
        eip_sys.set_quantum(200000);
        for (int round = 0; round < 64 && !eip_sys.all_exited();
             ++round) {
            eip_sys.step_round();
        }
        std::string eip_result =
            eip_sys.all_exited()
                ? classify(eip_sys.death_record(eip_pid.value()).value())
                : "no effect (spinning)";
        if (eip_result == "HIJACKED") ++eip_hijacks;

        // ---- Occlum flavour: must pass the verifier ---------------
        oelf::Image guarded = build_attack(attack, true);
        auto signed_image = verifier.verify_and_sign(guarded);
        std::string verdict = signed_image.ok()
                                  ? "accepted"
                                  : "REJECTED: " +
                                        signed_image.error().message;
        std::string occ_result = "-";
        if (signed_image.ok()) {
            sgx::Platform occ_platform;
            host::HostFileStore occ_files;
            occ_files.put("attack", signed_image.value().serialize());
            libos::OcclumSystem occ_sys(occ_platform, occ_files,
                                        bench::occlum_config());
            auto occ_pid = occ_sys.spawn("attack", {"attack"});
            OCC_CHECK_MSG(occ_pid.ok(), occ_pid.error().message);
            occ_sys.set_quantum(200000);
            for (int round = 0; round < 64 && !occ_sys.all_exited();
                 ++round) {
                occ_sys.step_round();
            }
            occ_result =
                occ_sys.all_exited()
                    ? classify(
                          occ_sys.death_record(occ_pid.value()).value())
                    : "no effect (spinning)";
            if (occ_result == "HIJACKED") ++occlum_hijacks;
        }
        table.add_row({attack, eip_result, occ_result, verdict});
    }
    table.print();
    std::printf("\nhijacks: Graphene-like %d/7, Occlum %d/7\n",
                eip_hijacks, occlum_hijacks);
    std::printf("Paper: Graphene falls to code injection + ROP; Occlum "
                "blocks all of them; return-to-libc runs but stays "
                "confined to the SIP.\n");
    bench::JsonReport report("ripe_security");
    report.add("eip", "hijacks", eip_hijacks);
    report.add("occlum", "hijacks", occlum_hijacks);
    report.add("total", "attacks",
               static_cast<double>(std::size(kAttacks)));
    report.write();
    return occlum_hijacks == 0 ? 0 : 1;
}
