/**
 * @file
 * Figure 6a: process-creation latency for three binary sizes on
 * Linux, Graphene-like EIP, and Occlum.
 *
 * Paper numbers on real hardware:
 *   hello (14 KiB):   Linux 170 us | Graphene 0.64 s | Occlum  97 us
 *   busybox (400 KiB):Linux 170 us | Graphene 0.69 s | Occlum 1.7 ms
 *   cc1 (14 MiB):     Linux 170 us | Graphene 0.89 s | Occlum  63 ms
 *
 * Shape claims: Linux is flat (demand paging); Occlum scales with
 * binary size (eager in-enclave loading) but never pays enclave
 * creation; EIP pays a fresh enclave every time, ~4 orders slower.
 */
#include "bench/bench_util.h"

using namespace occlum;

namespace {

struct Case {
    const char *label;
    uint64_t pad;          // synthetic binary size
    uint64_t code_reserve; // link-time slot geometry
};

Aggregate
measure_spawn(oskit::Kernel &sys, const std::string &prog)
{
    // Aggregate several spawns (first may warm allocator state).
    constexpr int kReps = 5;
    Aggregate agg;
    for (int i = 0; i < kReps; ++i) {
        uint64_t before = sys.clock().cycles();
        auto pid = sys.spawn(prog, {prog});
        OCC_CHECK_MSG(pid.ok(), "spawn failed: " + pid.error().message);
        uint64_t after = sys.clock().cycles();
        sys.run();
        OCC_CHECK(sys.exit_code(pid.value()).ok());
        agg.add(SimClock::cycles_to_micros(after - before));
    }
    return agg;
}

} // namespace

int
main()
{
    const Case cases[] = {
        {"hello-world (~14KB)", 0, 1 << 20},
        {"busybox (~400KB)", 384 << 10, 1 << 20},
        {"cc1 (~14MB)", 14 << 20, 16 << 20},
    };

    Table table("Fig 6a: process creation latency (posix_spawn)");
    table.set_header({"binary", "Linux", "Graphene-like (EIP)", "Occlum",
                      "Occlum p50/p95/p99", "Occlum vs EIP"});
    bench::JsonReport report("fig6a_spawn");

    for (const Case &c : cases) {
        workloads::ProgramBuild build = workloads::build_program(
            workloads::spawn_noop_source(), c.pad, 1 << 20,
            c.code_reserve);

        // Linux.
        SimClock linux_clock;
        host::HostFileStore linux_files;
        linux_files.put("prog", build.plain);
        baseline::LinuxSystem linux_sys(linux_clock, linux_files);
        double linux_us = measure_spawn(linux_sys, "prog").mean();

        // Graphene-like EIP.
        sgx::Platform eip_platform;
        host::HostFileStore eip_files;
        eip_files.put("prog", build.plain);
        baseline::EipSystem eip_sys(eip_platform, eip_files, {});
        double eip_us = measure_spawn(eip_sys, "prog").mean();

        // Occlum.
        sgx::Platform occ_platform;
        host::HostFileStore occ_files;
        occ_files.put("prog", build.occlum);
        auto config = bench::occlum_config(4, c.code_reserve, 8 << 20);
        libos::OcclumSystem occ_sys(occ_platform, occ_files, config);
        Aggregate occ = measure_spawn(occ_sys, "prog");
        double occ_us = occ.mean();

        table.add_row({c.label, format_time_us(linux_us),
                       format_time_us(eip_us), format_time_us(occ_us),
                       format("%s / %s / %s",
                              format_time_us(occ.p50()).c_str(),
                              format_time_us(occ.p95()).c_str(),
                              format_time_us(occ.p99()).c_str()),
                       format("%.0fx faster", eip_us / occ_us)});
        report.add(c.label, "linux_us", linux_us);
        report.add(c.label, "eip_us", eip_us);
        report.add(c.label, "occlum_us", occ_us);
        report.add(c.label, "occlum_p50_us", occ.p50());
        report.add(c.label, "occlum_p95_us", occ.p95());
        report.add(c.label, "occlum_p99_us", occ.p99());
    }
    table.print();
    std::printf("\nPaper: hello 170us/0.64s/97us; busybox "
                "170us/0.69s/1.7ms; cc1 170us/0.89s/63ms\n");
    report.write();
    return 0;
}
