/**
 * @file
 * Figure 5c: lighttpd-like web-server throughput under increasing
 * client concurrency (ApacheBench-style closed loop, 10 KiB pages,
 * 1 Gbps LAN).
 *
 * Paper shape: throughput rises with concurrency until the network
 * saturates; at the peak both Graphene (-10%) and Occlum (-9%) sit
 * just below Linux — this workload is I/O-bound, so the enclave tax
 * is small.
 */
#include "bench/bench_util.h"

#include "trace/metrics.h"

using namespace occlum;

namespace {

constexpr uint16_t kPort = 8080;
constexpr int kWorkers = 2;
constexpr size_t kResponseBytes = 10240;

/** Closed-loop clients driven from the host side. */
double
drive_clients(oskit::Kernel &sys, host::NetSim &net, int concurrency,
              int total_requests, uint64_t *rounds_out = nullptr)
{
    struct Client {
        host::NetSim::Connection *conn = nullptr;
        size_t received = 0;
    };
    std::vector<Client> clients(concurrency);
    const char *request = "GET /page.html HTTP/1.1\r\n\r\n";
    int issued = 0;
    int completed = 0;

    auto start_request = [&](Client &client) {
        if (issued >= total_requests) {
            client.conn = nullptr;
            return;
        }
        auto conn = net.connect(kPort);
        OCC_CHECK_MSG(conn.ok(), conn.error().message);
        client.conn = conn.value();
        client.received = 0;
        net.send(client.conn, false,
                 reinterpret_cast<const uint8_t *>(request),
                 strlen(request));
        ++issued;
    };

    uint64_t t0 = sys.clock().cycles();
    for (auto &client : clients) {
        start_request(client);
    }

    uint8_t buf[4096];
    while (completed < total_requests) {
        bool progress = sys.step_round();
        if (rounds_out) {
            ++*rounds_out;
        }
        for (auto &client : clients) {
            if (!client.conn) {
                continue;
            }
            uint64_t next_arrival = ~0ull;
            size_t n = net.recv(client.conn, false, buf, sizeof(buf),
                                sys.clock().cycles(), next_arrival);
            if (n > 0) {
                client.received += n;
                progress = true;
                if (client.received >= kResponseBytes) {
                    net.close(client.conn, false);
                    ++completed;
                    start_request(client);
                }
            }
        }
        if (!progress) {
            // Everyone is waiting: jump to the earliest event.
            uint64_t wake = sys.next_wake_time();
            for (auto &client : clients) {
                if (!client.conn) {
                    continue;
                }
                uint64_t next_arrival = ~0ull;
                net.recv(client.conn, false, buf, 0,
                         sys.clock().cycles(), next_arrival);
                wake = std::min(wake, next_arrival);
            }
            OCC_CHECK_MSG(wake != ~0ull, "lighttpd bench stalled");
            OCC_CHECK(wake > sys.clock().cycles());
            sys.clock().advance(wake - sys.clock().cycles());
        }
    }
    double seconds =
        SimClock::cycles_to_seconds(sys.clock().cycles() - t0);
    return total_requests / seconds;
}

/** Boot master+workers, run the client load, return requests/s. */
double
run_server(oskit::Kernel &sys, host::NetSim &net, int concurrency,
           int total_requests)
{
    int per_worker = (total_requests + kWorkers - 1) / kWorkers + 8;
    auto pid = sys.spawn("httpd", {"httpd", std::to_string(kWorkers),
                                   std::to_string(per_worker)});
    OCC_CHECK_MSG(pid.ok(), pid.error().message);
    // Let the master listen and the workers block in accept().
    sys.run(/*allow_idle=*/true);
    return drive_clients(sys, net, concurrency, total_requests);
}

// ---------------------------------------------------------------------
// Idle-connection sweep over the poll()-driven server
// ---------------------------------------------------------------------

struct SweepPoint {
    double rps = 0;
    uint64_t wakeups = 0;
    uint64_t wasted_retries = 0;
    uint64_t poll_calls = 0;
    double visits_per_round = 0;
};

/**
 * One poll-driven server process; `idle` connections are established
 * up front and never speak. The old retry-polling scheduler visited
 * every blocked worker every round, so its round cost scaled with
 * connection count; with wait queues the idle set must be free:
 * kernel.wasted_retries stays 0 and the per-round visit count stays
 * flat no matter how many sleeping fds sit in the poll set.
 */
SweepPoint
run_sweep_point(oskit::Kernel &sys, host::NetSim &net, int idle,
                int concurrency, int total_requests,
                const char *prog = "httpd_poll")
{
    auto pid =
        sys.spawn(prog,
                  {prog, std::to_string(total_requests),
                   std::to_string(idle + concurrency + 16)});
    OCC_CHECK_MSG(pid.ok(), pid.error().message);
    sys.run(/*allow_idle=*/true); // server blocks in poll()

    // Establish the idle herd and pump until every connection has
    // been accepted into the server's poll set.
    std::vector<host::NetSim::Connection *> idlers;
    for (int i = 0; i < idle; ++i) {
        auto conn = net.connect(kPort);
        OCC_CHECK_MSG(conn.ok(), conn.error().message);
        idlers.push_back(conn.value());
    }
    while (net.next_accept_time(kPort) != ~0ull) {
        if (!sys.step_round()) {
            uint64_t wake = std::min(sys.next_wake_time(),
                                     net.next_accept_time(kPort));
            OCC_CHECK_MSG(wake != ~0ull, "sweep accept pump stalled");
            OCC_CHECK(wake > sys.clock().cycles());
            sys.clock().advance(wake - sys.clock().cycles());
        }
    }
    sys.run(/*allow_idle=*/true); // drain to the blocked-in-poll state

    auto &registry = trace::Registry::instance();
    uint64_t wakeups0 = registry.counter("kernel.wakeups").value();
    uint64_t wasted0 = registry.counter("kernel.wasted_retries").value();
    uint64_t polls0 = registry.counter("kernel.poll_calls").value();
    uint64_t visits0 = registry.counter("kernel.sched_visits").value();

    SweepPoint point;
    uint64_t rounds = 0;
    point.rps = drive_clients(sys, net, concurrency, total_requests,
                              &rounds);

    point.wakeups = registry.counter("kernel.wakeups").value() - wakeups0;
    point.wasted_retries =
        registry.counter("kernel.wasted_retries").value() - wasted0;
    point.poll_calls =
        registry.counter("kernel.poll_calls").value() - polls0;
    uint64_t visits =
        registry.counter("kernel.sched_visits").value() - visits0;
    point.visits_per_round =
        rounds ? static_cast<double>(visits) / rounds : 0.0;
    return point;
}

void
idle_sweep()
{
    workloads::ProgramBuild server = workloads::build_program(
        workloads::httpd_poll_source(), 768 << 10);
    constexpr int kConcurrency = 8;
    constexpr int kRequests = 400;

    Table table("Fig 5c (sweep): poll()-driven server, mostly-idle "
                "connections");
    table.set_header({"idle conns", "req/s", "wakeups/req", "polls",
                      "visits/round", "wasted retries"});
    bench::JsonReport report("fig5c_lighttpd_sweep");

    double baseline_vpr = 0;
    for (int idle : {1, 64, 1024}) {
        sgx::Platform platform;
        host::NetSim net(platform.clock());
        host::HostFileStore files;
        files.put("httpd_poll", server.occlum);
        libos::OcclumSystem sys(platform, files, bench::occlum_config(),
                                &net);
        SweepPoint p =
            run_sweep_point(sys, net, idle, kConcurrency, kRequests);

        // The tentpole's acceptance bar: blocked fds are free. Every
        // wakeup leads to progress (no wasted retries), and the
        // scheduler walk never touches more than the one runnable
        // process per round regardless of the idle herd's size.
        OCC_CHECK_MSG(p.wasted_retries == 0,
                      "wait-queue wakeups must never produce a wasted "
                      "retry under poll");
        OCC_CHECK_MSG(p.visits_per_round <= 2.0,
                      "scheduler round cost must not scale with idle "
                      "connections");
        if (idle == 1) {
            baseline_vpr = p.visits_per_round;
        } else {
            OCC_CHECK_MSG(p.visits_per_round <=
                              baseline_vpr + 0.5,
                          "per-round visits must stay flat across the "
                          "idle sweep");
        }

        table.add_row({std::to_string(idle), format("%.0f", p.rps),
                       format("%.2f",
                              static_cast<double>(p.wakeups) / kRequests),
                       std::to_string(p.poll_calls),
                       format("%.3f", p.visits_per_round),
                       std::to_string(p.wasted_retries)});
        std::string label = std::to_string(idle);
        report.add(label, "occlum_rps", p.rps);
        report.add(label, "wakeups_per_req",
                   static_cast<double>(p.wakeups) / kRequests);
        report.add(label, "poll_calls",
                   static_cast<double>(p.poll_calls));
        report.add(label, "visits_per_round", p.visits_per_round);
        report.add(label, "wasted_retries",
                   static_cast<double>(p.wasted_retries));
    }
    table.print();
    std::printf("\nOld kernel: every idle connection was a blocked "
                "worker re-polled every round; round cost grew ~linearly "
                "with connections. Wait queues make the idle herd "
                "free.\n");
    report.write();
}

// ---------------------------------------------------------------------
// C10K → C1M: the same sweep over the epoll()-driven server
// ---------------------------------------------------------------------

/**
 * The poll() server re-submits its whole fd set on every call, so the
 * *syscall* cost scales with the watched count even though the
 * scheduler cost does not. epoll keeps the interest list in the
 * kernel and dispatches from the ready list, so both the scheduler
 * walk AND the wait cost are O(active): the per-round visit count
 * must stay flat from 1 Ki to 1 Mi registered connections.
 */
void
epoll_sweep()
{
    workloads::ProgramBuild server = workloads::build_program(
        workloads::httpd_epoll_source(), 768 << 10);
    constexpr int kConcurrency = 8;
    constexpr int kRequests = 400;

    Table table("Fig 5c (C10K->C1M): epoll()-driven server, "
                "mostly-idle connections");
    table.set_header({"idle conns", "req/s", "wakeups/req",
                      "epoll_waits", "visits/round", "wasted retries"});
    bench::JsonReport report("fig5c_lighttpd_sweep_epoll");

    double baseline_vpr = 0;
    for (int idle : {1024, 65536, 1000000}) {
        sgx::Platform platform;
        host::NetSim net(platform.clock());
        host::HostFileStore files;
        files.put("httpd_epoll", server.occlum);
        libos::OcclumSystem sys(platform, files, bench::occlum_config(),
                                &net);
        auto &registry = trace::Registry::instance();
        uint64_t waits0 =
            registry.counter("kernel.epoll_waits").value();
        SweepPoint p = run_sweep_point(sys, net, idle, kConcurrency,
                                       kRequests, "httpd_epoll");
        uint64_t waits =
            registry.counter("kernel.epoll_waits").value() - waits0;

        // The acceptance bar from the issue: a million registered
        // connections must cost the same per round as a thousand.
        OCC_CHECK_MSG(p.wasted_retries == 0,
                      "epoll wakeups must never produce a wasted retry");
        OCC_CHECK_MSG(p.visits_per_round <= 2.0,
                      "scheduler round cost must not scale with "
                      "registered connections");
        if (idle == 1024) {
            baseline_vpr = p.visits_per_round;
        } else {
            OCC_CHECK_MSG(p.visits_per_round <= baseline_vpr + 0.5,
                          "per-round visits must stay flat from C10K "
                          "to C1M");
        }

        table.add_row({std::to_string(idle), format("%.0f", p.rps),
                       format("%.2f",
                              static_cast<double>(p.wakeups) / kRequests),
                       std::to_string(waits),
                       format("%.3f", p.visits_per_round),
                       std::to_string(p.wasted_retries)});
        std::string label = "epoll-" + std::to_string(idle);
        report.add(label, "occlum_rps", p.rps);
        report.add(label, "wakeups_per_req",
                   static_cast<double>(p.wakeups) / kRequests);
        report.add(label, "epoll_waits", static_cast<double>(waits));
        report.add(label, "visits_per_round", p.visits_per_round);
        report.add(label, "wasted_retries",
                   static_cast<double>(p.wasted_retries));
    }
    table.print();
    std::printf("\npoll() pays O(watched) per syscall to re-submit the "
                "set; epoll dispatches O(active) from the kernel-side "
                "ready list, so C1M costs what C10K costs.\n");
    report.write();
}

// ---------------------------------------------------------------------
// Reverse proxy + backend pool (spawn + pipes + sockets, one loop)
// ---------------------------------------------------------------------

void
proxy_bench()
{
    workloads::ProgramBuild frontend = workloads::build_program(
        workloads::proxy_frontend_source(), 768 << 10);
    workloads::ProgramBuild backend = workloads::build_program(
        workloads::proxy_backend_source(), 768 << 10);
    constexpr int kConcurrency = 8;
    constexpr int kRequests = 256;

    Table table("Fig 5c (proxy): epoll reverse proxy, 4 backend SIPs");
    table.set_header({"system", "req/s", "wakeups/req",
                      "wasted retries"});
    bench::JsonReport report("fig5c_lighttpd_proxy");
    auto &registry = trace::Registry::instance();

    auto run_one = [&](const char *label, oskit::Kernel &sys,
                       host::NetSim &net) {
        auto pid = sys.spawn("proxy_frontend",
                             {"proxy_frontend",
                              std::to_string(kRequests),
                              std::to_string(kConcurrency + 16)});
        OCC_CHECK_MSG(pid.ok(), pid.error().message);
        sys.run(/*allow_idle=*/true); // frontend + backends parked
        uint64_t wakeups0 = registry.counter("kernel.wakeups").value();
        uint64_t wasted0 =
            registry.counter("kernel.wasted_retries").value();
        double rps =
            drive_clients(sys, net, kConcurrency, kRequests);
        sys.run(/*allow_idle=*/true); // frontend reaps its backends
        auto code = sys.exit_code(pid.value());
        OCC_CHECK_MSG(code.ok() && code.value() == 0,
                      "proxy frontend must exit cleanly");
        uint64_t wakeups =
            registry.counter("kernel.wakeups").value() - wakeups0;
        uint64_t wasted =
            registry.counter("kernel.wasted_retries").value() - wasted0;
        OCC_CHECK_MSG(wasted == 0,
                      "proxy pipeline wakeups must all be productive");
        table.add_row({label, format("%.0f", rps),
                       format("%.2f",
                              static_cast<double>(wakeups) / kRequests),
                       std::to_string(wasted)});
        report.add(label, "rps", rps);
        report.add(label, "wakeups_per_req",
                   static_cast<double>(wakeups) / kRequests);
        report.add(label, "wasted_retries", static_cast<double>(wasted));
    };

    {
        SimClock clock;
        host::NetSim net(clock);
        host::HostFileStore files;
        files.put("proxy_frontend", frontend.plain);
        files.put("proxy_backend", backend.plain);
        baseline::LinuxSystem sys(clock, files, &net);
        run_one("linux", sys, net);
    }
    {
        sgx::Platform platform;
        host::NetSim net(platform.clock());
        host::HostFileStore files;
        files.put("proxy_frontend", frontend.occlum);
        files.put("proxy_backend", backend.occlum);
        libos::OcclumSystem sys(platform, files, bench::occlum_config(),
                                &net);
        run_one("occlum", sys, net);
    }
    table.print();
    std::printf("\nOne epoll loop multiplexes the listener, every "
                "client connection, and the four backend result pipes; "
                "jobs fan out over pipes to spawned backend SIPs.\n");
    report.write();
}

} // namespace

int
main()
{
    workloads::ProgramBuild master = workloads::build_program(
        workloads::httpd_master_source(), 768 << 10);
    workloads::ProgramBuild worker = workloads::build_program(
        workloads::httpd_worker_source(), 768 << 10);

    Table table("Fig 5c: lighttpd-like throughput (req/s), 10KB pages");
    table.set_header({"clients", "Linux", "Graphene-like (EIP)",
                      "Occlum", "Occlum vs Linux"});
    bench::JsonReport report("fig5c_lighttpd");

    for (int concurrency : {1, 2, 4, 8, 16, 32, 64, 128}) {
        int total = std::max(200, concurrency * 12);

        SimClock linux_clock;
        host::NetSim linux_net(linux_clock);
        host::HostFileStore linux_files;
        linux_files.put("httpd", master.plain);
        linux_files.put("httpd_worker", worker.plain);
        baseline::LinuxSystem linux_sys(linux_clock, linux_files,
                                        &linux_net);
        double linux_rps =
            run_server(linux_sys, linux_net, concurrency, total);

        sgx::Platform eip_platform;
        host::NetSim eip_net(eip_platform.clock());
        host::HostFileStore eip_files;
        eip_files.put("httpd", master.plain);
        eip_files.put("httpd_worker", worker.plain);
        baseline::EipSystem eip_sys(eip_platform, eip_files, {},
                                    &eip_net);
        double eip_rps = run_server(eip_sys, eip_net, concurrency, total);

        sgx::Platform occ_platform;
        host::NetSim occ_net(occ_platform.clock());
        host::HostFileStore occ_files;
        occ_files.put("httpd", master.occlum);
        occ_files.put("httpd_worker", worker.occlum);
        libos::OcclumSystem occ_sys(occ_platform, occ_files,
                                    bench::occlum_config(), &occ_net);
        double occ_rps = run_server(occ_sys, occ_net, concurrency, total);

        table.add_row({std::to_string(concurrency),
                       format("%.0f", linux_rps), format("%.0f", eip_rps),
                       format("%.0f", occ_rps),
                       format("%+.0f%%",
                              100 * (occ_rps / linux_rps - 1.0))});
        std::string label = std::to_string(concurrency);
        report.add(label, "linux_rps", linux_rps);
        report.add(label, "eip_rps", eip_rps);
        report.add(label, "occlum_rps", occ_rps);
    }
    table.print();
    std::printf("\nPaper shape: saturating curve; at peak Occlum -9%%, "
                "Graphene -10%% vs Linux (~11k req/s).\n");
    report.write();

    idle_sweep();
    epoll_sweep();
    proxy_bench();
    return 0;
}
