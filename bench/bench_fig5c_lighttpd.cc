/**
 * @file
 * Figure 5c: lighttpd-like web-server throughput under increasing
 * client concurrency (ApacheBench-style closed loop, 10 KiB pages,
 * 1 Gbps LAN).
 *
 * Paper shape: throughput rises with concurrency until the network
 * saturates; at the peak both Graphene (-10%) and Occlum (-9%) sit
 * just below Linux — this workload is I/O-bound, so the enclave tax
 * is small.
 */
#include "bench/bench_util.h"

using namespace occlum;

namespace {

constexpr uint16_t kPort = 8080;
constexpr int kWorkers = 2;
constexpr size_t kResponseBytes = 10240;

/** Closed-loop clients driven from the host side. */
double
drive_clients(oskit::Kernel &sys, host::NetSim &net, int concurrency,
              int total_requests)
{
    struct Client {
        host::NetSim::Connection *conn = nullptr;
        size_t received = 0;
    };
    std::vector<Client> clients(concurrency);
    const char *request = "GET /page.html HTTP/1.1\r\n\r\n";
    int issued = 0;
    int completed = 0;

    auto start_request = [&](Client &client) {
        if (issued >= total_requests) {
            client.conn = nullptr;
            return;
        }
        auto conn = net.connect(kPort);
        OCC_CHECK_MSG(conn.ok(), conn.error().message);
        client.conn = conn.value();
        client.received = 0;
        net.send(client.conn, false,
                 reinterpret_cast<const uint8_t *>(request),
                 strlen(request));
        ++issued;
    };

    uint64_t t0 = sys.clock().cycles();
    for (auto &client : clients) {
        start_request(client);
    }

    uint8_t buf[4096];
    while (completed < total_requests) {
        bool progress = sys.step_round();
        for (auto &client : clients) {
            if (!client.conn) {
                continue;
            }
            uint64_t next_arrival = ~0ull;
            size_t n = net.recv(client.conn, false, buf, sizeof(buf),
                                sys.clock().cycles(), next_arrival);
            if (n > 0) {
                client.received += n;
                progress = true;
                if (client.received >= kResponseBytes) {
                    net.close(client.conn, false);
                    ++completed;
                    start_request(client);
                }
            }
        }
        if (!progress) {
            // Everyone is waiting: jump to the earliest event.
            uint64_t wake = sys.next_wake_time();
            for (auto &client : clients) {
                if (!client.conn) {
                    continue;
                }
                uint64_t next_arrival = ~0ull;
                net.recv(client.conn, false, buf, 0,
                         sys.clock().cycles(), next_arrival);
                wake = std::min(wake, next_arrival);
            }
            OCC_CHECK_MSG(wake != ~0ull, "lighttpd bench stalled");
            OCC_CHECK(wake > sys.clock().cycles());
            sys.clock().advance(wake - sys.clock().cycles());
        }
    }
    double seconds =
        SimClock::cycles_to_seconds(sys.clock().cycles() - t0);
    return total_requests / seconds;
}

/** Boot master+workers, run the client load, return requests/s. */
double
run_server(oskit::Kernel &sys, host::NetSim &net, int concurrency,
           int total_requests)
{
    int per_worker = (total_requests + kWorkers - 1) / kWorkers + 8;
    auto pid = sys.spawn("httpd", {"httpd", std::to_string(kWorkers),
                                   std::to_string(per_worker)});
    OCC_CHECK_MSG(pid.ok(), pid.error().message);
    // Let the master listen and the workers block in accept().
    sys.run(/*allow_idle=*/true);
    return drive_clients(sys, net, concurrency, total_requests);
}

} // namespace

int
main()
{
    workloads::ProgramBuild master = workloads::build_program(
        workloads::httpd_master_source(), 768 << 10);
    workloads::ProgramBuild worker = workloads::build_program(
        workloads::httpd_worker_source(), 768 << 10);

    Table table("Fig 5c: lighttpd-like throughput (req/s), 10KB pages");
    table.set_header({"clients", "Linux", "Graphene-like (EIP)",
                      "Occlum", "Occlum vs Linux"});
    bench::JsonReport report("fig5c_lighttpd");

    for (int concurrency : {1, 2, 4, 8, 16, 32, 64, 128}) {
        int total = std::max(200, concurrency * 12);

        SimClock linux_clock;
        host::NetSim linux_net(linux_clock);
        host::HostFileStore linux_files;
        linux_files.put("httpd", master.plain);
        linux_files.put("httpd_worker", worker.plain);
        baseline::LinuxSystem linux_sys(linux_clock, linux_files,
                                        &linux_net);
        double linux_rps =
            run_server(linux_sys, linux_net, concurrency, total);

        sgx::Platform eip_platform;
        host::NetSim eip_net(eip_platform.clock());
        host::HostFileStore eip_files;
        eip_files.put("httpd", master.plain);
        eip_files.put("httpd_worker", worker.plain);
        baseline::EipSystem eip_sys(eip_platform, eip_files, {},
                                    &eip_net);
        double eip_rps = run_server(eip_sys, eip_net, concurrency, total);

        sgx::Platform occ_platform;
        host::NetSim occ_net(occ_platform.clock());
        host::HostFileStore occ_files;
        occ_files.put("httpd", master.occlum);
        occ_files.put("httpd_worker", worker.occlum);
        libos::OcclumSystem occ_sys(occ_platform, occ_files,
                                    bench::occlum_config(), &occ_net);
        double occ_rps = run_server(occ_sys, occ_net, concurrency, total);

        table.add_row({std::to_string(concurrency),
                       format("%.0f", linux_rps), format("%.0f", eip_rps),
                       format("%.0f", occ_rps),
                       format("%+.0f%%",
                              100 * (occ_rps / linux_rps - 1.0))});
        std::string label = std::to_string(concurrency);
        report.add(label, "linux_rps", linux_rps);
        report.add(label, "eip_rps", eip_rps);
        report.add(label, "occlum_rps", occ_rps);
    }
    table.print();
    std::printf("\nPaper shape: saturating curve; at peak Occlum -9%%, "
                "Graphene -10%% vs Linux (~11k req/s).\n");
    report.write();
    return 0;
}
