/**
 * @file
 * Figure 7b: decomposing the MMDSFI overhead into its three sources —
 * confining control transfers, memory stores, and memory loads — for
 * the naive instrumentation and for the §4.3 range-analysis-optimized
 * instrumentation.
 *
 * Paper: optimizations cut the store-confinement overhead from 10.1%
 * to 4.3% and the load-confinement overhead from 39.6% to 25.5%;
 * control-transfer confinement is unaffected.
 */
#include "bench/bench_util.h"

using namespace occlum;

namespace {

double
run_variant(const std::string &source,
            toolchain::InstrumentOptions instrument)
{
    toolchain::CompileOptions options;
    options.instrument = instrument;
    options.heap_size = 2 << 20;
    auto out = toolchain::compile(source, options);
    OCC_CHECK_MSG(out.ok(), out.error().message);
    SimClock clock;
    host::HostFileStore files;
    files.put("kern", out.value().image.serialize());
    baseline::LinuxSystem sys(clock, files);
    auto pid = sys.spawn("kern", {"kern"});
    OCC_CHECK(pid.ok());
    uint64_t after_spawn = clock.cycles();
    sys.run();
    OCC_CHECK(sys.exit_code(pid.value()).ok());
    return static_cast<double>(clock.cycles() - after_spawn);
}

} // namespace

int
main()
{
    // Accumulate overhead components across all kernels.
    Aggregate ctrl_naive, store_naive, load_naive;
    Aggregate ctrl_opt, store_opt, load_opt;

    for (const std::string &name : workloads::spec_kernel_names()) {
        std::string src = workloads::spec_kernel_source(name);
        double base = run_variant(src, {false, false, false, false});

        auto pct = [&](double v) { return v / base - 1.0; };

        // Naive: no range-analysis optimizations.
        double n_cfi = run_variant(src, {true, false, false, false});
        double n_st = run_variant(src, {true, true, false, false});
        double n_all = run_variant(src, {true, true, true, false});
        ctrl_naive.add(pct(n_cfi));
        store_naive.add(pct(n_st) - pct(n_cfi));
        load_naive.add(pct(n_all) - pct(n_st));

        // Optimized: redundant-check elimination + loop hoisting.
        double o_cfi = run_variant(src, {true, false, false, true});
        double o_st = run_variant(src, {true, true, false, true});
        double o_all = run_variant(src, {true, true, true, true});
        ctrl_opt.add(pct(o_cfi));
        store_opt.add(pct(o_st) - pct(o_cfi));
        load_opt.add(pct(o_all) - pct(o_st));
    }

    Table table("Fig 7b: overhead breakdown (mean over SPEC-like"
                " kernels)");
    table.set_header({"component", "naive", "+ optimizations",
                      "paper naive", "paper optimized"});
    table.add_row({"control transfers",
                   format("%.1f%%", 100 * ctrl_naive.mean()),
                   format("%.1f%%", 100 * ctrl_opt.mean()), "~5%",
                   "~5%"});
    table.add_row({"memory stores",
                   format("%.1f%%", 100 * store_naive.mean()),
                   format("%.1f%%", 100 * store_opt.mean()), "10.1%",
                   "4.3%"});
    table.add_row({"memory loads",
                   format("%.1f%%", 100 * load_naive.mean()),
                   format("%.1f%%", 100 * load_opt.mean()), "39.6%",
                   "25.5%"});
    table.add_row(
        {"TOTAL",
         format("%.1f%%", 100 * (ctrl_naive.mean() + store_naive.mean() +
                                 load_naive.mean())),
         format("%.1f%%", 100 * (ctrl_opt.mean() + store_opt.mean() +
                                 load_opt.mean())),
         "~55%", "~36%"});
    table.print();
    return 0;
}
