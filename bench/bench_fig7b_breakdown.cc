/**
 * @file
 * Figure 7b: where the cycles go.
 *
 * Part 1 — enclave-wide cycle attribution, derived from trace spans:
 * the tracer is bound to the platform clock and enabled around an
 * Occlum encrypted-FS workload (sequential write + cold read); the
 * recorded span tree is replayed with self_cycles_by_category() to
 * split the run into user / transition / LibOS / FS / OCALL / sched
 * components. This replaces hand-maintained counters: any hot path
 * with an OCC_TRACE_SPAN shows up automatically. The paper's headline
 * (§9.2) is visible directly: syscalls never cross the enclave
 * boundary, so the transition component is tiny and OCALLs appear
 * only at the EncFs device edge.
 *
 * Part 2 — decomposing the MMDSFI overhead into its three sources —
 * confining control transfers, memory stores, and memory loads — for
 * the naive instrumentation and the §4.3 range-analysis-optimized
 * instrumentation.
 *
 * Paper: optimizations cut the store-confinement overhead from 10.1%
 * to 4.3% and the load-confinement overhead from 39.6% to 25.5%;
 * control-transfer confinement is unaffected.
 */
#include "bench/bench_util.h"

#include "trace/export.h"
#include "trace/metrics.h"
#include "trace/trace.h"

using namespace occlum;

namespace {

// ---------------------------------------------------------------------
// Part 1: trace-span cycle attribution on the encrypted-FS workload
// ---------------------------------------------------------------------

void
run_fs_phase(oskit::Kernel &sys, const std::string &prog, uint64_t chunk,
             uint64_t total)
{
    sys.clear_console();
    std::vector<std::string> argv = {prog, std::to_string(chunk)};
    if (total != 0) {
        argv.push_back(std::to_string(total));
    }
    auto pid = sys.spawn(prog, argv);
    OCC_CHECK_MSG(pid.ok(), pid.error().message);
    sys.run();
    OCC_CHECK_MSG(bench::parse_result(sys.console()).has_value(),
                  "no RESULT from " + prog);
}

void
trace_breakdown(bench::JsonReport &report)
{
    workloads::ProgramBuild writer =
        workloads::build_program(workloads::file_write_bench_source());
    workloads::ProgramBuild reader =
        workloads::build_program(workloads::file_read_bench_source());

    sgx::Platform platform;
    host::HostFileStore files;
    files.put("fwrite", writer.occlum);
    files.put("fread", reader.occlum);
    auto config = bench::occlum_config();
    config.fs_blocks = 1 << 15;
    config.fs_cache_blocks = 64; // cold reads: every block pays an OCALL
    libos::OcclumSystem sys(platform, files, config);

    // Trace only the workload, not enclave construction: the span
    // stream starts after EINIT so the breakdown reflects steady
    // state, like the paper's measurements.
    auto &tracer = trace::Tracer::instance();
    auto &registry = trace::Registry::instance();
    registry.reset();
    tracer.bind_clock(&platform.clock());
    tracer.enable(1 << 18);
    uint64_t t0 = platform.clock().cycles();

    run_fs_phase(sys, "fwrite", 4096, 1 << 20);
    run_fs_phase(sys, "fread", 4096, 0);

    uint64_t total = platform.clock().cycles() - t0;
    tracer.disable();
    std::vector<trace::Event> events = tracer.events();
    auto self = trace::self_cycles_by_category(events);
    tracer.bind_clock(nullptr);

    struct Component {
        const char *label;
        trace::Category cat;
    };
    const Component components[] = {
        {"user code (OVM)", trace::Category::kVm},
        {"enclave transitions", trace::Category::kSgx},
        {"LibOS syscalls", trace::Category::kLibos},
        {"FS + crypto", trace::Category::kFs},
        {"OCALLs (device I/O)", trace::Category::kOcall},
        {"scheduler", trace::Category::kSched},
    };

    Table table("Fig 7b (part 1): cycle attribution from trace spans, "
                "encrypted-FS workload");
    table.set_header({"component", "Mcycles", "share"});
    uint64_t attributed = 0;
    for (const Component &c : components) {
        uint64_t cycles = self[static_cast<size_t>(c.cat)];
        attributed += cycles;
        table.add_row({c.label, format("%.2f", cycles / 1e6),
                       format("%.1f%%", 100.0 * cycles / total)});
        report.add(c.label, "mcycles", cycles / 1e6);
        report.add(c.label, "share_pct", 100.0 * cycles / total);
    }
    uint64_t other = total > attributed ? total - attributed : 0;
    table.add_row({"untracked (harness)", format("%.2f", other / 1e6),
                   format("%.1f%%", 100.0 * other / total)});
    table.add_row({"TOTAL", format("%.2f", total / 1e6), "100%"});
    table.print();

    std::printf("trace: %llu events recorded, %llu dropped\n",
                (unsigned long long)tracer.recorded(),
                (unsigned long long)tracer.dropped());

    // Syscall latency distribution, from the kernel's histogram.
    auto &hist = registry.histogram("kernel.syscall_cycles");
    std::printf("syscalls: %llu dispatched; latency cycles p50=%.0f "
                "p95=%.0f p99=%.0f max=%llu\n",
                (unsigned long long)hist.count(), hist.p50(),
                hist.p95(), hist.p99(),
                (unsigned long long)hist.max());
    std::printf("sgx transitions: eenter=%llu eexit=%llu aex=%llu "
                "(syscalls are function calls — no transition per "
                "syscall)\n",
                (unsigned long long)registry.counter("sgx.eenter")
                    .value(),
                (unsigned long long)registry.counter("sgx.eexit")
                    .value(),
                (unsigned long long)registry.counter("sgx.aex").value());
    std::printf("encfs: cache hits=%llu misses=%llu dev reads=%llu "
                "writes=%llu\n",
                (unsigned long long)registry.counter("encfs.cache_hits")
                    .value(),
                (unsigned long long)registry
                    .counter("encfs.cache_misses")
                    .value(),
                (unsigned long long)registry.counter("encfs.dev_reads")
                    .value(),
                (unsigned long long)registry.counter("encfs.dev_writes")
                    .value());
    report.add("syscalls", "p50_cycles", hist.p50());
    report.add("syscalls", "p95_cycles", hist.p95());
    report.add("syscalls", "p99_cycles", hist.p99());

    Status written =
        trace::write_chrome_trace("fig7b.trace.json",
                                  trace::Tracer::instance());
    if (written.ok()) {
        std::printf("chrome trace written to fig7b.trace.json "
                    "(load in chrome://tracing or Perfetto)\n");
    }
}

// ---------------------------------------------------------------------
// Part 2: MMDSFI overhead decomposition (differential runs)
// ---------------------------------------------------------------------

double
run_variant(const std::string &source,
            toolchain::InstrumentOptions instrument)
{
    toolchain::CompileOptions options;
    options.instrument = instrument;
    options.heap_size = 2 << 20;
    auto out = toolchain::compile(source, options);
    OCC_CHECK_MSG(out.ok(), out.error().message);
    SimClock clock;
    host::HostFileStore files;
    files.put("kern", out.value().image.serialize());
    baseline::LinuxSystem sys(clock, files);
    auto pid = sys.spawn("kern", {"kern"});
    OCC_CHECK(pid.ok());
    uint64_t after_spawn = clock.cycles();
    sys.run();
    OCC_CHECK(sys.exit_code(pid.value()).ok());
    return static_cast<double>(clock.cycles() - after_spawn);
}

} // namespace

int
main()
{
    bench::JsonReport report("fig7b_breakdown");
    trace_breakdown(report);

    // Accumulate overhead components across all kernels.
    Aggregate ctrl_naive, store_naive, load_naive;
    Aggregate ctrl_opt, store_opt, load_opt;

    for (const std::string &name : workloads::spec_kernel_names()) {
        std::string src = workloads::spec_kernel_source(name);
        double base = run_variant(src, {false, false, false, false});

        auto pct = [&](double v) { return v / base - 1.0; };

        // Naive: no range-analysis optimizations.
        double n_cfi = run_variant(src, {true, false, false, false});
        double n_st = run_variant(src, {true, true, false, false});
        double n_all = run_variant(src, {true, true, true, false});
        ctrl_naive.add(pct(n_cfi));
        store_naive.add(pct(n_st) - pct(n_cfi));
        load_naive.add(pct(n_all) - pct(n_st));

        // Optimized: redundant-check elimination + loop hoisting.
        double o_cfi = run_variant(src, {true, false, false, true});
        double o_st = run_variant(src, {true, true, false, true});
        double o_all = run_variant(src, {true, true, true, true});
        ctrl_opt.add(pct(o_cfi));
        store_opt.add(pct(o_st) - pct(o_cfi));
        load_opt.add(pct(o_all) - pct(o_st));
    }

    Table table("Fig 7b (part 2): MMDSFI overhead breakdown (mean over"
                " SPEC-like kernels)");
    table.set_header({"component", "naive", "+ optimizations",
                      "paper naive", "paper optimized"});
    table.add_row({"control transfers",
                   format("%.1f%%", 100 * ctrl_naive.mean()),
                   format("%.1f%%", 100 * ctrl_opt.mean()), "~5%",
                   "~5%"});
    table.add_row({"memory stores",
                   format("%.1f%%", 100 * store_naive.mean()),
                   format("%.1f%%", 100 * store_opt.mean()), "10.1%",
                   "4.3%"});
    table.add_row({"memory loads",
                   format("%.1f%%", 100 * load_naive.mean()),
                   format("%.1f%%", 100 * load_opt.mean()), "39.6%",
                   "25.5%"});
    table.add_row(
        {"TOTAL",
         format("%.1f%%", 100 * (ctrl_naive.mean() + store_naive.mean() +
                                 load_naive.mean())),
         format("%.1f%%", 100 * (ctrl_opt.mean() + store_opt.mean() +
                                 load_opt.mean())),
         "~55%", "~36%"});
    table.print();

    report.add("mmdsfi_ctrl", "naive_pct", 100 * ctrl_naive.mean());
    report.add("mmdsfi_ctrl", "optimized_pct", 100 * ctrl_opt.mean());
    report.add("mmdsfi_store", "naive_pct", 100 * store_naive.mean());
    report.add("mmdsfi_store", "optimized_pct", 100 * store_opt.mean());
    report.add("mmdsfi_load", "naive_pct", 100 * load_naive.mean());
    report.add("mmdsfi_load", "optimized_pct", 100 * load_opt.mean());
    report.write();
    return 0;
}
