/**
 * @file
 * SMP scaling: the per-core run-queue scheduler (DESIGN.md §3.4)
 * swept over cores {1, 2, 4, 8}.
 *
 * Leg A — spawn/compute throughput: a parent SIP spawns N children
 * (N in {4, 64, 256}), each crunching a fixed loop, and reaps them
 * all. With one core the children serialize; with C cores up to C
 * run per round, so aggregate jobs/s must rise monotonically from
 * 1 to 4 cores once the SIP count exceeds the core count.
 *
 * Leg B — lighttpd-epoll leg: the epoll reverse proxy (frontend +
 * 4 backend SIPs) under closed-loop clients. The backends render
 * pages concurrently on separate cores, so req/s must not regress
 * as cores are added.
 *
 * Both legs report the per-core kernel.core<N>.{quanta, steals,
 * wakeups} metrics, showing where quanta actually ran and how much
 * work the stealing moved.
 */
#include "bench/bench_util.h"

#include "trace/metrics.h"

using namespace occlum;

namespace {

constexpr int kCoreSweep[] = {1, 2, 4, 8};
constexpr int kMaxCores = 8;

/** Per-core counter deltas across one benchmark run. */
struct CoreDeltas {
    uint64_t quanta[kMaxCores] = {};
    uint64_t steals[kMaxCores] = {};
    uint64_t wakeups[kMaxCores] = {};
};

class CoreMeter
{
  public:
    explicit CoreMeter(int cores) : cores_(cores)
    {
        if (cores_ < 2) {
            return; // per-core counters exist only when cores > 1
        }
        for (int c = 0; c < cores_; ++c) {
            quanta0_[c] = ctr(c, "quanta");
            steals0_[c] = ctr(c, "steals");
            wakeups0_[c] = ctr(c, "wakeups");
        }
    }

    CoreDeltas
    finish() const
    {
        CoreDeltas d;
        for (int c = 0; c < cores_ && cores_ > 1; ++c) {
            d.quanta[c] = ctr(c, "quanta") - quanta0_[c];
            d.steals[c] = ctr(c, "steals") - steals0_[c];
            d.wakeups[c] = ctr(c, "wakeups") - wakeups0_[c];
        }
        return d;
    }

  private:
    static uint64_t
    ctr(int core, const char *what)
    {
        return trace::Registry::instance()
            .counter("kernel.core" + std::to_string(core) + "." + what)
            .value();
    }

    int cores_;
    uint64_t quanta0_[kMaxCores] = {};
    uint64_t steals0_[kMaxCores] = {};
    uint64_t wakeups0_[kMaxCores] = {};
};

void
report_cores(bench::JsonReport &report, const std::string &label,
             int cores, const CoreDeltas &d)
{
    for (int c = 0; c < cores && cores > 1; ++c) {
        std::string prefix = "core" + std::to_string(c) + "_";
        report.add(label, prefix + "quanta",
                   static_cast<double>(d.quanta[c]));
        report.add(label, prefix + "steals",
                   static_cast<double>(d.steals[c]));
        report.add(label, prefix + "wakeups",
                   static_cast<double>(d.wakeups[c]));
    }
}

// ---------------------------------------------------------------------
// Leg A: spawn/compute throughput, cores x SIPs
// ---------------------------------------------------------------------

std::string
crunch_source()
{
    return R"(
func main() {
    var i = 0;
    while (i < 50000) { i = i + 1; }
    return 7;
}
)";
}

std::string
storm_source(int jobs)
{
    // Spawn `jobs` crunchers, then reap them all. The pid array is
    // sized for the largest sweep point.
    return std::string(R"(
global byte child[8] = "crunch";
global int pids[256];
func main() {
    var argvv[1];
    argvv[0] = child;
    var n = )") +
           std::to_string(jobs) + R"(;
    var i = 0;
    while (i < n) {
        pids[i] = spawn(child, argvv, 1);
        if (pids[i] < 0) { return 1; }
        i = i + 1;
    }
    i = 0;
    while (i < n) {
        if (waitpid(pids[i]) != 7) { return 2; }
        i = i + 1;
    }
    return 0;
}
)";
}

void
spawn_leg(bench::JsonReport &report)
{
    workloads::ProgramBuild crunch =
        workloads::build_program(crunch_source(), 768 << 10);

    Table table("SMP leg A: N compute SIPs reaped by a parent "
                "(jobs/s, LinuxSystem)");
    table.set_header({"SIPs", "1 core", "2 cores", "4 cores",
                      "8 cores", "4c vs 1c"});

    for (int jobs : {4, 64, 256}) {
        workloads::ProgramBuild storm =
            workloads::build_program(storm_source(jobs), 768 << 10);
        double rate[kMaxCores + 1] = {};
        std::vector<std::string> cells = {std::to_string(jobs)};
        for (int cores : kCoreSweep) {
            SimClock clock;
            host::HostFileStore files;
            files.put("crunch", crunch.plain);
            files.put("storm", storm.plain);
            baseline::LinuxSystem sys(clock, files);
            sys.set_cores(cores);
            CoreMeter meter(cores);
            double seconds = bench::timed_run(sys, "storm", {"storm"});
            rate[cores] = jobs / seconds;
            std::string label =
                "c" + std::to_string(cores) + "-n" + std::to_string(jobs);
            report.add(label, "jobs_per_s", rate[cores]);
            report_cores(report, label, cores, meter.finish());
            cells.push_back(format("%.0f", rate[cores]));
        }
        cells.push_back(format("%.2fx", rate[4] / rate[1]));
        table.add_row(cells);

        // The acceptance bar: with more SIPs than cores, aggregate
        // throughput rises monotonically from 1 to 4 cores.
        if (jobs >= 64) {
            OCC_CHECK_MSG(rate[2] > rate[1],
                          "2 cores must beat 1 core at 64+ SIPs");
            OCC_CHECK_MSG(rate[4] > rate[2],
                          "4 cores must beat 2 cores at 64+ SIPs");
        }
    }
    table.print();
    std::printf("\nChildren are pure compute: with C cores, C quanta "
                "run per round barrier, so jobs/s scales until the "
                "runnable set is thinner than the core count.\n");
}

// ---------------------------------------------------------------------
// Leg B: the epoll reverse proxy under closed-loop clients
// ---------------------------------------------------------------------

constexpr uint16_t kPort = 8080;
constexpr size_t kResponseBytes = 10240;

double
drive_clients(oskit::Kernel &sys, host::NetSim &net, int concurrency,
              int total_requests)
{
    struct Client {
        host::NetSim::Connection *conn = nullptr;
        size_t received = 0;
    };
    std::vector<Client> clients(concurrency);
    const char *request = "GET /page.html HTTP/1.1\r\n\r\n";
    int issued = 0;
    int completed = 0;

    auto start_request = [&](Client &client) {
        if (issued >= total_requests) {
            client.conn = nullptr;
            return;
        }
        auto conn = net.connect(kPort);
        OCC_CHECK_MSG(conn.ok(), conn.error().message);
        client.conn = conn.value();
        client.received = 0;
        net.send(client.conn, false,
                 reinterpret_cast<const uint8_t *>(request),
                 strlen(request));
        ++issued;
    };

    uint64_t t0 = sys.clock().cycles();
    for (auto &client : clients) {
        start_request(client);
    }

    uint8_t buf[4096];
    while (completed < total_requests) {
        bool progress = sys.step_round();
        for (auto &client : clients) {
            if (!client.conn) {
                continue;
            }
            uint64_t next_arrival = ~0ull;
            size_t n = net.recv(client.conn, false, buf, sizeof(buf),
                                sys.clock().cycles(), next_arrival);
            if (n > 0) {
                client.received += n;
                progress = true;
                if (client.received >= kResponseBytes) {
                    net.close(client.conn, false);
                    ++completed;
                    start_request(client);
                }
            }
        }
        if (!progress) {
            uint64_t wake = sys.next_wake_time();
            for (auto &client : clients) {
                if (!client.conn) {
                    continue;
                }
                uint64_t next_arrival = ~0ull;
                net.recv(client.conn, false, buf, 0,
                         sys.clock().cycles(), next_arrival);
                wake = std::min(wake, next_arrival);
            }
            OCC_CHECK_MSG(wake != ~0ull, "smp proxy leg stalled");
            OCC_CHECK(wake > sys.clock().cycles());
            sys.clock().advance(wake - sys.clock().cycles());
        }
    }
    double seconds =
        SimClock::cycles_to_seconds(sys.clock().cycles() - t0);
    return total_requests / seconds;
}

void
proxy_leg(bench::JsonReport &report)
{
    workloads::ProgramBuild frontend = workloads::build_program(
        workloads::proxy_frontend_source(), 768 << 10);
    workloads::ProgramBuild backend = workloads::build_program(
        workloads::proxy_backend_source(), 768 << 10);
    constexpr int kConcurrency = 8;
    constexpr int kRequests = 256;

    Table table("SMP leg B: epoll reverse proxy, 4 backend SIPs "
                "(req/s, OcclumSystem)");
    table.set_header({"cores", "req/s", "total steals",
                      "cross-core wakeups"});

    double rps1 = 0;
    for (int cores : kCoreSweep) {
        sgx::Platform platform;
        host::NetSim net(platform.clock());
        host::HostFileStore files;
        files.put("proxy_frontend", frontend.occlum);
        files.put("proxy_backend", backend.occlum);
        libos::OcclumSystem::Config config = bench::occlum_config();
        config.cores = cores;
        libos::OcclumSystem sys(platform, files, config, &net);
        auto pid = sys.spawn("proxy_frontend",
                             {"proxy_frontend",
                              std::to_string(kRequests),
                              std::to_string(kConcurrency + 16)});
        OCC_CHECK_MSG(pid.ok(), pid.error().message);
        sys.run(/*allow_idle=*/true); // frontend + backends parked
        CoreMeter meter(cores);
        double rps = drive_clients(sys, net, kConcurrency, kRequests);
        sys.run(/*allow_idle=*/true); // frontend reaps its backends
        auto code = sys.exit_code(pid.value());
        OCC_CHECK_MSG(code.ok() && code.value() == 0,
                      "proxy frontend must exit cleanly");
        CoreDeltas d = meter.finish();
        uint64_t steals = 0;
        uint64_t wakeups = 0;
        for (int c = 0; c < cores; ++c) {
            steals += d.steals[c];
            wakeups += d.wakeups[c];
        }
        std::string label = "proxy-c" + std::to_string(cores);
        report.add(label, "rps", rps);
        report_cores(report, label, cores, d);
        table.add_row({std::to_string(cores), format("%.0f", rps),
                       std::to_string(steals),
                       std::to_string(wakeups)});
        if (cores == 1) {
            rps1 = rps;
        } else {
            // The pipeline is I/O-bound, so the win is modest — but
            // extra cores must never make it slower.
            OCC_CHECK_MSG(rps >= rps1 * 0.98,
                          "proxy req/s must not regress with cores");
        }
    }
    table.print();
    std::printf("\nThe frontend and its 4 backends spread over the "
                "cores: backends render pages concurrently while the "
                "frontend multiplexes sockets.\n");
}

} // namespace

int
main()
{
    bench::JsonReport report("smp");
    spawn_leg(report);
    proxy_leg(report);
    report.write();
    return 0;
}
