/**
 * @file
 * Shared helpers for the figure-reproduction benchmarks: system
 * construction for the three OS personalities, console RESULT-line
 * parsing, and run loops that interleave simulated network clients
 * with the kernel scheduler.
 */
#ifndef OCCLUM_BENCH_BENCH_UTIL_H
#define OCCLUM_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <optional>
#include <sstream>
#include <string>

#include "base/stats.h"
#include "baseline/eip_system.h"
#include "baseline/linux_system.h"
#include "libos/occlum_system.h"
#include "workloads/workloads.h"

namespace occlum::bench {

/** Default Occlum configuration matching the workloads' link layout. */
inline libos::OcclumSystem::Config
occlum_config(int slots = 8, uint64_t slot_code = 1 << 20,
              uint64_t slot_data = 8 << 20)
{
    libos::OcclumSystem::Config config;
    config.num_slots = slots;
    config.slot_code_size = slot_code;
    config.slot_data_size = slot_data;
    config.verifier_key = workloads::bench_verifier_key();
    return config;
}

/** Parse the last "RESULT <bytes> <ns>" line from a console dump. */
inline std::optional<std::pair<uint64_t, uint64_t>>
parse_result(const std::string &console)
{
    std::optional<std::pair<uint64_t, uint64_t>> out;
    std::istringstream stream(console);
    std::string line;
    while (std::getline(stream, line)) {
        if (line.rfind("RESULT ", 0) == 0) {
            std::istringstream fields(line.substr(7));
            uint64_t bytes = 0, ns = 0;
            if (fields >> bytes >> ns) {
                out = {bytes, ns};
            }
        }
    }
    return out;
}

/** MB/s from a RESULT pair (guarding zero durations). */
inline double
result_mbps(const std::pair<uint64_t, uint64_t> &result)
{
    if (result.second == 0) {
        return 0.0;
    }
    return static_cast<double>(result.first) /
           (static_cast<double>(result.second) / 1e9) / 1e6;
}

/** Spawn + run to completion; returns simulated seconds elapsed. */
inline double
timed_run(oskit::Kernel &sys, const std::string &prog,
          const std::vector<std::string> &argv)
{
    uint64_t before = sys.clock().cycles();
    auto pid = sys.spawn(prog, argv);
    OCC_CHECK_MSG(pid.ok(), "spawn failed: " + pid.error().message);
    sys.run();
    auto code = sys.exit_code(pid.value());
    OCC_CHECK_MSG(code.ok() && code.value() >= 0,
                  "benchmark program failed: " + prog);
    return SimClock::cycles_to_seconds(sys.clock().cycles() - before);
}

/**
 * Machine-readable benchmark output: every bench binary writes a
 * BENCH_<name>.json next to its working directory with schema
 *   { "bench": "<name>", "rows": [ {"label", "metric", "value"}... ] }
 * so plots and CI trend lines don't scrape console tables.
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string bench) : bench_(std::move(bench)) {}

    void
    add(const std::string &label, const std::string &metric,
        double value)
    {
        rows_.push_back({label, metric, value});
    }

    /** Write BENCH_<name>.json; prints the path on success. */
    void
    write() const
    {
        std::string path = "BENCH_" + bench_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "warning: cannot write %s\n",
                         path.c_str());
            return;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [\n",
                     bench_.c_str());
        for (size_t i = 0; i < rows_.size(); ++i) {
            const Row &row = rows_[i];
            std::fprintf(f,
                         "    {\"label\": \"%s\", \"metric\": \"%s\", "
                         "\"value\": %.6g}%s\n",
                         row.label.c_str(), row.metric.c_str(),
                         row.value, i + 1 < rows_.size() ? "," : "");
        }
        std::fprintf(f, "  ]\n}\n");
        std::fclose(f);
        std::printf("wrote %s\n", path.c_str());
    }

  private:
    struct Row {
        std::string label;
        std::string metric;
        double value;
    };
    std::string bench_;
    std::vector<Row> rows_;
};

} // namespace occlum::bench

#endif // OCCLUM_BENCH_BENCH_UTIL_H
