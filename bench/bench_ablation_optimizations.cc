/**
 * @file
 * Ablation: how much each §4.3 design choice contributes, measured
 * two ways — static guard counts from the toolchain and dynamic
 * simulated cycles — across the SPEC-like kernels.
 *
 * Rows:
 *   naive ............ guard every load/store (no analysis)
 *   +static elision .. skip provably-in-D accesses (frame slots are
 *                      excluded from "naive" as register traffic)
 *   +hoisting ........ loop-check hoisting via induction promotion
 *                      (the full optimized configuration)
 *
 * The toolchain cannot disable the two optimizations independently
 * (hoisting shares the `optimize` switch), so the middle row is
 * approximated by subtracting the hoisting statistic.
 */
#include "bench/bench_util.h"

using namespace occlum;

namespace {

struct Variant {
    toolchain::InstrumentOptions instrument;
};

uint64_t
run_cycles(const oelf::Image &image)
{
    SimClock clock;
    host::HostFileStore files;
    files.put("k", image.serialize());
    baseline::LinuxSystem sys(clock, files);
    auto pid = sys.spawn("k", {"k"});
    OCC_CHECK(pid.ok());
    uint64_t after_spawn = clock.cycles();
    sys.run();
    OCC_CHECK(sys.exit_code(pid.value()).ok());
    return clock.cycles() - after_spawn;
}

} // namespace

int
main()
{
    Table table("Ablation: MMDSFI guard pressure per optimization");
    table.set_header({"kernel", "guards naive", "guards optimized",
                      "hoisted", "elided static", "cycles naive",
                      "cycles optimized", "saved"});

    uint64_t total_naive = 0;
    uint64_t total_opt = 0;
    for (const std::string &name : workloads::spec_kernel_names()) {
        std::string src = workloads::spec_kernel_source(name);

        toolchain::CompileOptions naive;
        naive.instrument = toolchain::InstrumentOptions::naive();
        naive.heap_size = 2 << 20;
        auto naive_out = toolchain::compile(src, naive);
        OCC_CHECK(naive_out.ok());

        toolchain::CompileOptions full;
        full.instrument = toolchain::InstrumentOptions::full();
        full.heap_size = 2 << 20;
        auto full_out = toolchain::compile(src, full);
        OCC_CHECK(full_out.ok());

        uint64_t cyc_naive = run_cycles(naive_out.value().image);
        uint64_t cyc_full = run_cycles(full_out.value().image);
        total_naive += cyc_naive;
        total_opt += cyc_full;

        const auto &ns = naive_out.value().stats;
        const auto &fs = full_out.value().stats;
        table.add_row(
            {name, std::to_string(ns.mem_guards_emitted),
             std::to_string(fs.mem_guards_emitted),
             std::to_string(fs.mem_guards_hoisted),
             std::to_string(fs.mem_guards_elided_static),
             format("%.1fM", cyc_naive / 1e6),
             format("%.1fM", cyc_full / 1e6),
             format("%.0f%%",
                    100.0 * (cyc_naive - cyc_full) / cyc_naive)});
    }
    table.add_row({"TOTAL", "", "", "", "",
                   format("%.1fM", total_naive / 1e6),
                   format("%.1fM", total_opt / 1e6),
                   format("%.0f%%",
                          100.0 * (total_naive - total_opt) /
                              total_naive)});
    table.print();
    std::printf("\nThe paper's claim (Sec 4.3): \"these two optimizations"
                " are sufficient to reduce the overhead to an acceptable"
                " level\" — the dynamic saving above is the evidence.\n");
    return 0;
}
