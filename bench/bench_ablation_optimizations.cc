/**
 * @file
 * Ablation: how much each §4.3 design choice contributes, measured
 * two ways — static guard counts from the toolchain and dynamic
 * simulated cycles — across the SPEC-like kernels.
 *
 * Rows:
 *   naive ............ guard every load/store (no analysis)
 *   +static elision .. skip provably-in-D accesses (frame slots are
 *                      excluded from "naive" as register traffic)
 *   +hoisting ........ loop-check hoisting via induction promotion
 *                      (the full optimized configuration)
 *
 * The toolchain cannot disable the two optimizations independently
 * (hoisting shares the `optimize` switch), so the middle row is
 * approximated by subtracting the hoisting statistic.
 *
 * A second table measures the tracing subsystem itself: the same
 * kernel with runtime tracing off vs on. Tracing never advances the
 * SimClock, so the simulated cycle counts must be bit-identical
 * (asserted); the wall-clock delta is the real cost of the hooks.
 */
#include "bench/bench_util.h"

#include <chrono>
#include <memory>

#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "faultsim/faultsim.h"
#include "libos/encfs.h"
#include "trace/trace.h"
#include "vm/cpu.h"

using namespace occlum;

namespace {

struct Variant {
    toolchain::InstrumentOptions instrument;
};

uint64_t
run_cycles(const oelf::Image &image)
{
    SimClock clock;
    host::HostFileStore files;
    files.put("k", image.serialize());
    baseline::LinuxSystem sys(clock, files);
    auto pid = sys.spawn("k", {"k"});
    OCC_CHECK(pid.ok());
    uint64_t after_spawn = clock.cycles();
    sys.run();
    OCC_CHECK(sys.exit_code(pid.value()).ok());
    return clock.cycles() - after_spawn;
}

struct TracedMeasure {
    uint64_t sim_cycles = 0;
    double wall_ms = 0.0;
};

/**
 * Best-of-N wall-clock run under one interpreter-tier configuration:
 * tier 0 (decode every time), tier 1 (predecoded blocks), or tier 2
 * (blocks + superblock traces). The defaults are flipped before the
 * system (and its CPUs) is built so the whole run — loader, kernel,
 * workload — executes in that mode.
 */
TracedMeasure
measure_vm_tier(const oelf::Image &image, bool cached, bool superblock,
                int reps)
{
    TracedMeasure best;
    best.wall_ms = 1e18;
    bool saved = vm::Cpu::default_block_cache_enabled();
    bool saved_sb = vm::Cpu::default_superblock_enabled();
    vm::Cpu::set_default_block_cache_enabled(cached);
    vm::Cpu::set_default_superblock_enabled(superblock);
    for (int i = 0; i < reps; ++i) {
        SimClock clock;
        host::HostFileStore files;
        files.put("k", image.serialize());
        baseline::LinuxSystem sys(clock, files);
        auto t0 = std::chrono::steady_clock::now();
        auto pid = sys.spawn("k", {"k"});
        OCC_CHECK(pid.ok());
        uint64_t after_spawn = clock.cycles();
        sys.run();
        auto t1 = std::chrono::steady_clock::now();
        OCC_CHECK(sys.exit_code(pid.value()).ok());
        uint64_t sim = clock.cycles() - after_spawn;
        OCC_CHECK(best.sim_cycles == 0 || best.sim_cycles == sim);
        best.sim_cycles = sim;
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        best.wall_ms = std::min(best.wall_ms, ms);
    }
    vm::Cpu::set_default_block_cache_enabled(saved);
    vm::Cpu::set_default_superblock_enabled(saved_sb);
    return best;
}

/** Best-of-N wall-clock run with the tracer off or on. */
TracedMeasure
measure_tracing(const oelf::Image &image, bool traced, int reps)
{
    TracedMeasure best;
    best.wall_ms = 1e18;
    for (int i = 0; i < reps; ++i) {
        SimClock clock;
        host::HostFileStore files;
        files.put("k", image.serialize());
        baseline::LinuxSystem sys(clock, files);
        auto &tracer = trace::Tracer::instance();
        if (traced) {
            tracer.bind_clock(&clock);
            tracer.enable(1 << 16);
        } else {
            tracer.disable();
        }
        auto t0 = std::chrono::steady_clock::now();
        auto pid = sys.spawn("k", {"k"});
        OCC_CHECK(pid.ok());
        uint64_t after_spawn = clock.cycles();
        sys.run();
        auto t1 = std::chrono::steady_clock::now();
        OCC_CHECK(sys.exit_code(pid.value()).ok());
        if (traced) {
            tracer.disable();
            tracer.bind_clock(nullptr);
        }
        uint64_t sim = clock.cycles() - after_spawn;
        OCC_CHECK(best.sim_cycles == 0 || best.sim_cycles == sim);
        best.sim_cycles = sim;
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        best.wall_ms = std::min(best.wall_ms, ms);
    }
    return best;
}

/**
 * Best-of-N run of an EncFs streaming workload (write 1 MiB in 4 KiB
 * chunks, sync, read it all back) under one crypto data-plane
 * configuration. Every device block moved pays the same per-byte
 * crypto charge regardless of which AES/HMAC implementation computes
 * it, and prefetched blocks pay exactly the demand-fetch charges, so
 * the simulated cycle count must be identical in every configuration
 * (asserted per-rep here and across rows in main).
 */
TracedMeasure
measure_encfs_crypto(bool ttable, bool midstate, size_t readahead,
                     int reps)
{
    constexpr uint64_t kChunk = 4096;
    constexpr uint64_t kTotal = 1 << 20;

    TracedMeasure best;
    best.wall_ms = 1e18;
    bool saved_ref = crypto::Aes128::reference_mode();
    bool saved_mid = crypto::HmacKey::midstate_enabled();
    crypto::Aes128::set_reference_mode(!ttable);
    crypto::HmacKey::set_midstate_enabled(midstate);

    Bytes chunk(kChunk);
    for (size_t i = 0; i < chunk.size(); ++i) {
        chunk[i] = static_cast<uint8_t>(i * 31 + 7);
    }

    for (int i = 0; i < reps; ++i) {
        SimClock clock;
        host::BlockDevice device(clock, 1 << 13);
        libos::EncFs::Config config;
        for (size_t k = 0; k < config.key.size(); ++k) {
            config.key[k] = static_cast<uint8_t>(k * 7 + 1);
        }
        config.cache_blocks = 64; // smaller than the 1 MiB stream
        config.readahead_blocks = readahead;
        libos::EncFs fs(device, clock, config);
        OCC_CHECK(fs.mkfs().ok());
        auto inode = fs.open_inode("/stream", true, false);
        OCC_CHECK(inode.ok());

        auto t0 = std::chrono::steady_clock::now();
        for (uint64_t off = 0; off < kTotal; off += kChunk) {
            auto n = fs.write(inode.value(), off, chunk.data(), kChunk);
            OCC_CHECK(n.ok() && n.value() == static_cast<int64_t>(kChunk));
        }
        OCC_CHECK(fs.sync().ok());
        Bytes back(kChunk);
        for (uint64_t off = 0; off < kTotal; off += kChunk) {
            auto n = fs.read(inode.value(), off, back.data(), kChunk);
            OCC_CHECK(n.ok() && n.value() == static_cast<int64_t>(kChunk));
        }
        auto t1 = std::chrono::steady_clock::now();
        OCC_CHECK(back == chunk); // decrypt+verify round-trip intact

        uint64_t sim = clock.cycles();
        OCC_CHECK(best.sim_cycles == 0 || best.sim_cycles == sim);
        best.sim_cycles = sim;
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        best.wall_ms = std::min(best.wall_ms, ms);
    }
    crypto::Aes128::set_reference_mode(saved_ref);
    crypto::HmacKey::set_midstate_enabled(saved_mid);
    return best;
}

struct FaultsimMeasure {
    uint64_t sim_cycles = 0;
    double wall_ms = 0.0;
    uint64_t checks = 0; // injection-site checks consulted per rep
};

/**
 * Best-of-N run of a mixed workload — the spec kernel under the
 * baseline kernel, then a 256 KiB EncFs stream (write, sync, read
 * back) that drives the block-device injection sites — with faultsim
 * either fully idle (no plan) or armed with an all-zero plan. An
 * armed-but-quiet plan walks every check and burns RNG draws but
 * never fires, so the simulated cycle count must be bit-identical to
 * the idle run (asserted in main); the wall-clock delta is the true
 * cost of the checks themselves.
 */
FaultsimMeasure
measure_faultsim(const oelf::Image &image, bool armed, int reps)
{
    constexpr uint64_t kChunk = 4096;
    constexpr uint64_t kTotal = 256 * 1024;

    FaultsimMeasure best;
    best.wall_ms = 1e18;
    for (int i = 0; i < reps; ++i) {
        std::unique_ptr<faultsim::ScopedFaultPlan> plan;
        if (armed) {
            plan = std::make_unique<faultsim::ScopedFaultPlan>(
                faultsim::FaultPlan{}); // all zero: checks, no fires
        } else {
            faultsim::FaultSim::instance().clear();
        }
        uint64_t checks0 = 0;
        for (size_t s = 0; s < faultsim::kSiteCount; ++s) {
            checks0 += faultsim::FaultSim::instance().checks(
                static_cast<faultsim::Site>(s));
        }

        SimClock clock;
        host::HostFileStore files;
        files.put("k", image.serialize());
        baseline::LinuxSystem sys(clock, files);

        host::BlockDevice device(clock, 1 << 11);
        libos::EncFs::Config config;
        for (size_t k = 0; k < config.key.size(); ++k) {
            config.key[k] = static_cast<uint8_t>(k * 5 + 3);
        }
        config.cache_blocks = 32;
        libos::EncFs fs(device, clock, config);

        Bytes chunk(kChunk);
        for (size_t k = 0; k < chunk.size(); ++k) {
            chunk[k] = static_cast<uint8_t>(k * 13 + 1);
        }

        auto t0 = std::chrono::steady_clock::now();
        auto pid = sys.spawn("k", {"k"});
        OCC_CHECK(pid.ok());
        uint64_t after_spawn = clock.cycles();
        sys.run();
        OCC_CHECK(sys.exit_code(pid.value()).ok());

        OCC_CHECK(fs.mkfs().ok());
        auto inode = fs.open_inode("/stream", true, false);
        OCC_CHECK(inode.ok());
        for (uint64_t off = 0; off < kTotal; off += kChunk) {
            auto n = fs.write(inode.value(), off, chunk.data(), kChunk);
            OCC_CHECK(n.ok() && n.value() == static_cast<int64_t>(kChunk));
        }
        OCC_CHECK(fs.sync().ok());
        Bytes back(kChunk);
        for (uint64_t off = 0; off < kTotal; off += kChunk) {
            auto n = fs.read(inode.value(), off, back.data(), kChunk);
            OCC_CHECK(n.ok() && n.value() == static_cast<int64_t>(kChunk));
        }
        auto t1 = std::chrono::steady_clock::now();
        OCC_CHECK(back == chunk);

        uint64_t checks1 = 0;
        for (size_t s = 0; s < faultsim::kSiteCount; ++s) {
            checks1 += faultsim::FaultSim::instance().checks(
                static_cast<faultsim::Site>(s));
        }
        uint64_t sim = clock.cycles() - after_spawn;
        OCC_CHECK(best.sim_cycles == 0 || best.sim_cycles == sim);
        best.sim_cycles = sim;
        best.checks = checks1 - checks0;
        double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        best.wall_ms = std::min(best.wall_ms, ms);
    }
    return best;
}

} // namespace

int
main()
{
    Table table("Ablation: MMDSFI guard pressure per optimization");
    table.set_header({"kernel", "guards naive", "guards optimized",
                      "hoisted", "elided static", "cycles naive",
                      "cycles optimized", "saved"});

    uint64_t total_naive = 0;
    uint64_t total_opt = 0;
    for (const std::string &name : workloads::spec_kernel_names()) {
        std::string src = workloads::spec_kernel_source(name);

        toolchain::CompileOptions naive;
        naive.instrument = toolchain::InstrumentOptions::naive();
        naive.heap_size = 2 << 20;
        auto naive_out = toolchain::compile(src, naive);
        OCC_CHECK(naive_out.ok());

        toolchain::CompileOptions full;
        full.instrument = toolchain::InstrumentOptions::full();
        full.heap_size = 2 << 20;
        auto full_out = toolchain::compile(src, full);
        OCC_CHECK(full_out.ok());

        uint64_t cyc_naive = run_cycles(naive_out.value().image);
        uint64_t cyc_full = run_cycles(full_out.value().image);
        total_naive += cyc_naive;
        total_opt += cyc_full;

        const auto &ns = naive_out.value().stats;
        const auto &fs = full_out.value().stats;
        table.add_row(
            {name, std::to_string(ns.mem_guards_emitted),
             std::to_string(fs.mem_guards_emitted),
             std::to_string(fs.mem_guards_hoisted),
             std::to_string(fs.mem_guards_elided_static),
             format("%.1fM", cyc_naive / 1e6),
             format("%.1fM", cyc_full / 1e6),
             format("%.0f%%",
                    100.0 * (cyc_naive - cyc_full) / cyc_naive)});
    }
    table.add_row({"TOTAL", "", "", "", "",
                   format("%.1fM", total_naive / 1e6),
                   format("%.1fM", total_opt / 1e6),
                   format("%.0f%%",
                          100.0 * (total_naive - total_opt) /
                              total_naive)});
    table.print();
    std::printf("\nThe paper's claim (Sec 4.3): \"these two optimizations"
                " are sufficient to reduce the overhead to an acceptable"
                " level\" — the dynamic saving above is the evidence.\n");

    // ---- tracing-subsystem ablation ---------------------------------
    // Same kernel, runtime tracing off vs on. The simulated cycle
    // counts must match exactly (tracing never touches the SimClock);
    // the wall-clock delta is the true cost of the hooks.
    std::string src = workloads::spec_kernel_source(
        workloads::spec_kernel_names().front());
    toolchain::CompileOptions full;
    full.instrument = toolchain::InstrumentOptions::full();
    full.heap_size = 2 << 20;
    auto out = toolchain::compile(src, full);
    OCC_CHECK(out.ok());

    constexpr int kReps = 5;
    TracedMeasure off =
        measure_tracing(out.value().image, false, kReps);
    TracedMeasure on = measure_tracing(out.value().image, true, kReps);
    OCC_CHECK_MSG(off.sim_cycles == on.sim_cycles,
                  "tracing must not perturb the simulated clock");
    double wall_overhead =
        off.wall_ms > 0 ? on.wall_ms / off.wall_ms - 1.0 : 0.0;

    Table trace_table("Ablation: tracing subsystem overhead "
                      "(interpreter hot path)");
    trace_table.set_header({"tracing", "sim Mcycles", "wall ms (best)",
                            "wall overhead"});
    trace_table.add_row({"off (runtime)",
                         format("%.2f", off.sim_cycles / 1e6),
                         format("%.2f", off.wall_ms), "baseline"});
    trace_table.add_row({"on (ring 64K)",
                         format("%.2f", on.sim_cycles / 1e6),
                         format("%.2f", on.wall_ms),
                         format("%+.1f%%", 100 * wall_overhead)});
    trace_table.print();
    std::printf("simulated-cycle delta: 0 (identical by construction; "
                "asserted)\n");

    // ---- interpreter-tier ablation ----------------------------------
    // Same kernel under each execution tier: decode-every-time (tier
    // 0), the predecoded basic-block cache (tier 1), and the
    // superblock trace tier on top (tier 2). All tiers are pure
    // interpreter-speed devices: per-instruction cycle costs are
    // charged identically, so the simulated cycle counts must be
    // bit-identical across all three rows (asserted). The wall-clock
    // ratios are the speedups each tier buys.
    TracedMeasure cache_off =
        measure_vm_tier(out.value().image, false, false, kReps);
    TracedMeasure cache_on =
        measure_vm_tier(out.value().image, true, false, kReps);
    TracedMeasure sb_on =
        measure_vm_tier(out.value().image, true, true, kReps);
    OCC_CHECK_MSG(cache_off.sim_cycles == cache_on.sim_cycles,
                  "block cache must not perturb simulated cycles");
    OCC_CHECK_MSG(cache_off.sim_cycles == sb_on.sim_cycles,
                  "superblock tier must not perturb simulated cycles");
    double cache_speedup = cache_on.wall_ms > 0
                               ? cache_off.wall_ms / cache_on.wall_ms
                               : 0.0;
    double sb_speedup =
        sb_on.wall_ms > 0 ? cache_off.wall_ms / sb_on.wall_ms : 0.0;

    Table cache_table("Ablation: interpreter execution tiers "
                      "(decode loop vs block cache vs superblocks)");
    cache_table.set_header({"tier", "sim Mcycles",
                            "wall ms (best)", "speedup"});
    cache_table.add_row({"interp (decode every instr)",
                         format("%.2f", cache_off.sim_cycles / 1e6),
                         format("%.2f", cache_off.wall_ms), "baseline"});
    cache_table.add_row({"+block cache (predecoded blocks)",
                         format("%.2f", cache_on.sim_cycles / 1e6),
                         format("%.2f", cache_on.wall_ms),
                         format("%.2fx", cache_speedup)});
    cache_table.add_row({"+superblocks (stitched traces)",
                         format("%.2f", sb_on.sim_cycles / 1e6),
                         format("%.2f", sb_on.wall_ms),
                         format("%.2fx", sb_speedup)});
    cache_table.print();
    std::printf("simulated-cycle delta: 0 across all three tiers "
                "(identical by construction; asserted)\n");

    // ---- crypto data-plane ablation ----------------------------------
    // The same EncFs streaming workload under each data-plane device:
    // reference AES + no HMAC midstates + no readahead, then each
    // optimization stacked on. All of them are wall-clock-only — the
    // cost model charges per byte moved, not per implementation — so
    // the simulated cycle counts must be bit-identical (asserted).
    struct CryptoRow {
        const char *name;
        const char *json_key;
        bool ttable;
        bool midstate;
        size_t readahead;
    };
    const CryptoRow crypto_rows[] = {
        {"reference (scalar AES, no midstate, no RA)", "crypto_reference",
         false, false, 0},
        {"+T-table AES", "crypto_ttable", true, false, 0},
        {"+HMAC midstates", "crypto_midstate", true, true, 0},
        {"+readahead 8", "crypto_readahead", true, true, 8},
    };
    TracedMeasure crypto_measures[4];
    for (size_t i = 0; i < 4; ++i) {
        const CryptoRow &row = crypto_rows[i];
        crypto_measures[i] = measure_encfs_crypto(
            row.ttable, row.midstate, row.readahead, kReps);
        OCC_CHECK_MSG(
            crypto_measures[i].sim_cycles == crypto_measures[0].sim_cycles,
            "crypto data-plane config must not perturb simulated cycles");
    }

    Table crypto_table("Ablation: EncFs crypto data plane "
                       "(1 MiB stream, 4 KiB chunks, cache 64)");
    crypto_table.set_header({"configuration", "sim Mcycles",
                             "wall ms (best)", "speedup"});
    for (size_t i = 0; i < 4; ++i) {
        double speedup =
            crypto_measures[i].wall_ms > 0
                ? crypto_measures[0].wall_ms / crypto_measures[i].wall_ms
                : 0.0;
        crypto_table.add_row(
            {crypto_rows[i].name,
             format("%.2f", crypto_measures[i].sim_cycles / 1e6),
             format("%.2f", crypto_measures[i].wall_ms),
             i == 0 ? "baseline" : format("%.2fx", speedup)});
    }
    crypto_table.print();
    std::printf("simulated-cycle delta: 0 across all four configurations "
                "(asserted)\n");

    // ---- faultsim ablation -------------------------------------------
    // The fault-injection harness compiled in but idle vs armed with an
    // all-zero plan. Idle checks are a single predicted branch; an
    // armed-but-quiet plan walks every check and burns RNG draws but
    // never fires. Neither may touch the SimClock, so the simulated
    // cycle counts must be bit-identical (asserted) — the no-faults
    // determinism guarantee the crash monkey's replays depend on.
    FaultsimMeasure fault_idle = measure_faultsim(out.value().image,
                                                  false, kReps);
    FaultsimMeasure fault_armed = measure_faultsim(out.value().image,
                                                   true, kReps);
    OCC_CHECK_MSG(fault_idle.sim_cycles == fault_armed.sim_cycles,
                  "an armed-but-quiet fault plan must not perturb "
                  "simulated cycles");
    OCC_CHECK_MSG(fault_armed.checks > 0,
                  "the armed run must actually consult injection sites");
    double fault_overhead = fault_idle.wall_ms > 0
                                ? fault_armed.wall_ms / fault_idle.wall_ms -
                                      1.0
                                : 0.0;

    Table fault_table("Ablation: fault-injection harness "
                      "(kernel + EncFs stream)");
    fault_table.set_header({"faultsim", "sim Mcycles", "site checks",
                            "wall ms (best)", "wall overhead"});
    fault_table.add_row({"idle (no plan)",
                         format("%.2f", fault_idle.sim_cycles / 1e6),
                         std::to_string(fault_idle.checks),
                         format("%.2f", fault_idle.wall_ms), "baseline"});
    fault_table.add_row({"armed, all-zero plan",
                         format("%.2f", fault_armed.sim_cycles / 1e6),
                         std::to_string(fault_armed.checks),
                         format("%.2f", fault_armed.wall_ms),
                         format("%+.1f%%", 100 * fault_overhead)});
    fault_table.print();
    std::printf("simulated-cycle delta: 0 (identical by construction; "
                "asserted)\n");

    // ---- wait-queue scheduler ablation (fig5c idle-conn sweep) ------
    // The retry-polling scheduler re-dispatched every blocked process
    // every round, so round cost grew linearly with parked
    // connections; the wait-queue scheduler only ever visits woken
    // processes. A compact cut of bench_fig5c's idle-connection
    // sweep: a poll()-driven server with 1 vs 1024 idle connections
    // serving the same request load. Blocked fds must be free —
    // zero wasted retries at either point (asserted).
    struct SchedPoint {
        double rps = 0;
        uint64_t sim_cycles = 0;
        uint64_t visits = 0;
        uint64_t wasted = 0;
    };
    auto sched_point = [](int idle) {
        constexpr int kConc = 4;
        constexpr int kReqs = 100;
        constexpr size_t kPage = 10240;
        workloads::ProgramBuild server = workloads::build_program(
            workloads::httpd_poll_source(), 768 << 10);
        sgx::Platform platform;
        host::NetSim net(platform.clock());
        host::HostFileStore files;
        files.put("httpd_poll", server.occlum);
        libos::OcclumSystem sys(platform, files, bench::occlum_config(),
                                &net);
        auto pid = sys.spawn("httpd_poll",
                             {"httpd_poll", std::to_string(kReqs),
                              std::to_string(idle + kConc + 16)});
        OCC_CHECK_MSG(pid.ok(), pid.error().message);
        sys.run(/*allow_idle=*/true);
        for (int i = 0; i < idle; ++i) {
            auto conn = net.connect(8080);
            OCC_CHECK_MSG(conn.ok(), conn.error().message);
        }
        while (net.next_accept_time(8080) != ~0ull) {
            if (!sys.step_round()) {
                uint64_t wake = std::min(sys.next_wake_time(),
                                         net.next_accept_time(8080));
                OCC_CHECK(wake != ~0ull &&
                          wake > sys.clock().cycles());
                sys.clock().advance(wake - sys.clock().cycles());
            }
        }
        sys.run(/*allow_idle=*/true);

        auto &registry = trace::Registry::instance();
        uint64_t visits0 =
            registry.counter("kernel.sched_visits").value();
        uint64_t wasted0 =
            registry.counter("kernel.wasted_retries").value();
        uint64_t t0 = sys.clock().cycles();

        struct Client {
            host::NetSim::Connection *conn = nullptr;
            size_t received = 0;
        };
        std::vector<Client> clients(kConc);
        const char *request = "GET / HTTP/1.1\r\n\r\n";
        int issued = 0;
        int completed = 0;
        auto start = [&](Client &client) {
            if (issued >= kReqs) {
                client.conn = nullptr;
                return;
            }
            auto conn = net.connect(8080);
            OCC_CHECK_MSG(conn.ok(), conn.error().message);
            client.conn = conn.value();
            client.received = 0;
            net.send(client.conn, false,
                     reinterpret_cast<const uint8_t *>(request),
                     strlen(request));
            ++issued;
        };
        for (auto &client : clients) {
            start(client);
        }
        uint8_t buf[4096];
        while (completed < kReqs) {
            bool progress = sys.step_round();
            for (auto &client : clients) {
                if (!client.conn) {
                    continue;
                }
                uint64_t next_arrival = ~0ull;
                size_t n =
                    net.recv(client.conn, false, buf, sizeof(buf),
                             sys.clock().cycles(), next_arrival);
                if (n > 0) {
                    client.received += n;
                    progress = true;
                    if (client.received >= kPage) {
                        net.close(client.conn, false);
                        ++completed;
                        start(client);
                    }
                }
            }
            if (!progress) {
                uint64_t wake = sys.next_wake_time();
                for (auto &client : clients) {
                    if (!client.conn) {
                        continue;
                    }
                    uint64_t next_arrival = ~0ull;
                    net.recv(client.conn, false, buf, 0,
                             sys.clock().cycles(), next_arrival);
                    wake = std::min(wake, next_arrival);
                }
                OCC_CHECK_MSG(wake != ~0ull, "sched ablation stalled");
                OCC_CHECK(wake > sys.clock().cycles());
                sys.clock().advance(wake - sys.clock().cycles());
            }
        }
        SchedPoint point;
        point.sim_cycles = sys.clock().cycles() - t0;
        point.rps =
            kReqs / SimClock::cycles_to_seconds(point.sim_cycles);
        point.visits =
            registry.counter("kernel.sched_visits").value() - visits0;
        point.wasted =
            registry.counter("kernel.wasted_retries").value() - wasted0;
        OCC_CHECK_MSG(point.wasted == 0,
                      "wait-queue scheduler must not waste retries on "
                      "idle connections");
        return point;
    };
    SchedPoint sched_1 = sched_point(1);
    SchedPoint sched_1024 = sched_point(1024);

    Table sched_table("Ablation: wait-queue scheduler "
                      "(fig5c idle-connection sweep, poll server)");
    sched_table.set_header({"idle conns", "req/s", "sim Mcycles",
                            "sched visits", "wasted retries"});
    sched_table.add_row({"1", format("%.0f", sched_1.rps),
                         format("%.2f", sched_1.sim_cycles / 1e6),
                         std::to_string(sched_1.visits),
                         std::to_string(sched_1.wasted)});
    sched_table.add_row({"1024", format("%.0f", sched_1024.rps),
                         format("%.2f", sched_1024.sim_cycles / 1e6),
                         std::to_string(sched_1024.visits),
                         std::to_string(sched_1024.wasted)});
    sched_table.print();
    std::printf("wasted retries: 0 at both points (asserted) — blocked "
                "connections never reach the dispatch loop\n");

    bench::JsonReport report("ablation_optimizations");
    report.add("TOTAL", "cycles_naive_m", total_naive / 1e6);
    report.add("TOTAL", "cycles_optimized_m", total_opt / 1e6);
    report.add("TOTAL", "saved_pct",
               100.0 * (total_naive - total_opt) / total_naive);
    report.add("tracing_off", "wall_ms", off.wall_ms);
    report.add("tracing_on", "wall_ms", on.wall_ms);
    report.add("tracing_on", "wall_overhead_pct", 100 * wall_overhead);
    report.add("tracing_on", "sim_cycle_delta",
               static_cast<double>(on.sim_cycles - off.sim_cycles));
    report.add("block_cache_off", "wall_ms", cache_off.wall_ms);
    report.add("block_cache_on", "wall_ms", cache_on.wall_ms);
    report.add("block_cache_on", "wall_speedup", cache_speedup);
    report.add("block_cache_on", "sim_cycle_delta",
               static_cast<double>(cache_on.sim_cycles -
                                   cache_off.sim_cycles));
    report.add("superblock_on", "wall_ms", sb_on.wall_ms);
    report.add("superblock_on", "wall_speedup", sb_speedup);
    report.add("superblock_on", "sim_cycle_delta",
               static_cast<double>(sb_on.sim_cycles -
                                   cache_off.sim_cycles));
    for (size_t i = 0; i < 4; ++i) {
        report.add(crypto_rows[i].json_key, "wall_ms",
                   crypto_measures[i].wall_ms);
        report.add(crypto_rows[i].json_key, "wall_speedup",
                   crypto_measures[i].wall_ms > 0
                       ? crypto_measures[0].wall_ms /
                             crypto_measures[i].wall_ms
                       : 0.0);
        report.add(crypto_rows[i].json_key, "sim_cycle_delta",
                   static_cast<double>(crypto_measures[i].sim_cycles -
                                       crypto_measures[0].sim_cycles));
    }
    report.add("faultsim_idle", "wall_ms", fault_idle.wall_ms);
    report.add("faultsim_armed", "wall_ms", fault_armed.wall_ms);
    report.add("faultsim_armed", "site_checks",
               static_cast<double>(fault_armed.checks));
    report.add("faultsim_armed", "wall_overhead_pct",
               100 * fault_overhead);
    report.add("faultsim_armed", "sim_cycle_delta",
               static_cast<double>(fault_armed.sim_cycles -
                                   fault_idle.sim_cycles));
    report.add("sched_idle_1", "occlum_rps", sched_1.rps);
    report.add("sched_idle_1", "sched_visits",
               static_cast<double>(sched_1.visits));
    report.add("sched_idle_1", "wasted_retries",
               static_cast<double>(sched_1.wasted));
    report.add("sched_idle_1024", "occlum_rps", sched_1024.rps);
    report.add("sched_idle_1024", "sched_visits",
               static_cast<double>(sched_1024.visits));
    report.add("sched_idle_1024", "wasted_retries",
               static_cast<double>(sched_1024.wasted));
    report.write();
    return 0;
}
