/**
 * @file
 * Figure 5a: the fish-shell (UnixBench-style) workload — a process-
 * intensive script where every command runs in its own process,
 * connected by pipes.
 *
 * Paper: Linux 1.4 ms | Occlum 19.5 ms (13.9x slower than Linux, no
 * on-demand loading) | Graphene 9.5 s (~500x slower than Occlum).
 *
 * The utilities are padded to ~768 KiB, the footprint of a static
 * musl-linked coreutil, which is what makes Occlum's eager in-enclave
 * loading visible against Linux's demand paging.
 */
#include "bench/bench_util.h"

using namespace occlum;

namespace {

constexpr uint64_t kUtilPad = 768 << 10;

const char *kUtilities[] = {"gen", "sort", "grep", "od", "wc"};

template <typename Store>
void
install_all(Store &files, bool occlum_flavor,
            const std::map<std::string, workloads::ProgramBuild> &builds)
{
    for (const auto &[name, build] : builds) {
        files.put(name, occlum_flavor ? build.occlum : build.plain);
    }
}

} // namespace

int
main()
{
    std::map<std::string, workloads::ProgramBuild> builds;
    builds.emplace("fish",
                   workloads::build_program(
                       workloads::fish_driver_source(), kUtilPad));
    for (const char *util : kUtilities) {
        builds.emplace(util, workloads::build_program(
                                 workloads::fish_utility_source(util),
                                 kUtilPad));
    }

    Table table("Fig 5a: fish shell script (per-iteration time)");
    table.set_header({"system", "time / iteration", "vs Linux",
                      "vs Occlum"});

    const std::vector<std::string> argv = {"fish", "1"};

    SimClock linux_clock;
    host::HostFileStore linux_files;
    install_all(linux_files, false, builds);
    baseline::LinuxSystem linux_sys(linux_clock, linux_files);
    double linux_s = bench::timed_run(linux_sys, "fish", argv);

    sgx::Platform occ_platform;
    host::HostFileStore occ_files;
    install_all(occ_files, true, builds);
    libos::OcclumSystem occ_sys(occ_platform, occ_files,
                                bench::occlum_config(10));
    double occ_s = bench::timed_run(occ_sys, "fish", argv);

    sgx::Platform eip_platform;
    host::HostFileStore eip_files;
    install_all(eip_files, false, builds);
    baseline::EipSystem eip_sys(eip_platform, eip_files, {});
    double eip_s = bench::timed_run(eip_sys, "fish", argv);

    table.add_row({"Linux", format_time_us(linux_s * 1e6), "1.0x", ""});
    table.add_row({"Occlum", format_time_us(occ_s * 1e6),
                   format("%.1fx slower", occ_s / linux_s), "1.0x"});
    table.add_row({"Graphene-like (EIP)", format_time_us(eip_s * 1e6),
                   format("%.0fx slower", eip_s / linux_s),
                   format("%.0fx slower", eip_s / occ_s)});
    table.print();
    std::printf("\nPaper: Linux 1.4ms, Occlum 19.5ms (13.9x), "
                "Graphene 9.5s (~490x Occlum)\n");
    bench::JsonReport report("fig5a_fish");
    report.add("linux", "iteration_us", linux_s * 1e6);
    report.add("occlum", "iteration_us", occ_s * 1e6);
    report.add("eip", "iteration_us", eip_s * 1e6);
    report.write();
    return 0;
}
