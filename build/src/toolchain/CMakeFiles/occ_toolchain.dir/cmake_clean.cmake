file(REMOVE_RECURSE
  "CMakeFiles/occ_toolchain.dir/codegen.cc.o"
  "CMakeFiles/occ_toolchain.dir/codegen.cc.o.d"
  "CMakeFiles/occ_toolchain.dir/lexer.cc.o"
  "CMakeFiles/occ_toolchain.dir/lexer.cc.o.d"
  "CMakeFiles/occ_toolchain.dir/parser.cc.o"
  "CMakeFiles/occ_toolchain.dir/parser.cc.o.d"
  "CMakeFiles/occ_toolchain.dir/stdlib.cc.o"
  "CMakeFiles/occ_toolchain.dir/stdlib.cc.o.d"
  "libocc_toolchain.a"
  "libocc_toolchain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_toolchain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
