# Empty compiler generated dependencies file for occ_toolchain.
# This may be replaced when dependencies are built.
