
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/toolchain/codegen.cc" "src/toolchain/CMakeFiles/occ_toolchain.dir/codegen.cc.o" "gcc" "src/toolchain/CMakeFiles/occ_toolchain.dir/codegen.cc.o.d"
  "/root/repo/src/toolchain/lexer.cc" "src/toolchain/CMakeFiles/occ_toolchain.dir/lexer.cc.o" "gcc" "src/toolchain/CMakeFiles/occ_toolchain.dir/lexer.cc.o.d"
  "/root/repo/src/toolchain/parser.cc" "src/toolchain/CMakeFiles/occ_toolchain.dir/parser.cc.o" "gcc" "src/toolchain/CMakeFiles/occ_toolchain.dir/parser.cc.o.d"
  "/root/repo/src/toolchain/stdlib.cc" "src/toolchain/CMakeFiles/occ_toolchain.dir/stdlib.cc.o" "gcc" "src/toolchain/CMakeFiles/occ_toolchain.dir/stdlib.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/occ_base.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/occ_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/oelf/CMakeFiles/occ_oelf.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/occ_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/occ_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
