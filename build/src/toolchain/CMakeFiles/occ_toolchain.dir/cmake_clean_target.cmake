file(REMOVE_RECURSE
  "libocc_toolchain.a"
)
