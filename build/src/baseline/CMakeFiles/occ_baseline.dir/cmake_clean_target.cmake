file(REMOVE_RECURSE
  "libocc_baseline.a"
)
