file(REMOVE_RECURSE
  "CMakeFiles/occ_baseline.dir/eip_system.cc.o"
  "CMakeFiles/occ_baseline.dir/eip_system.cc.o.d"
  "CMakeFiles/occ_baseline.dir/linux_system.cc.o"
  "CMakeFiles/occ_baseline.dir/linux_system.cc.o.d"
  "libocc_baseline.a"
  "libocc_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
