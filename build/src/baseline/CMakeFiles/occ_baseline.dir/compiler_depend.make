# Empty compiler generated dependencies file for occ_baseline.
# This may be replaced when dependencies are built.
