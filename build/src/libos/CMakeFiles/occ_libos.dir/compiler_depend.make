# Empty compiler generated dependencies file for occ_libos.
# This may be replaced when dependencies are built.
