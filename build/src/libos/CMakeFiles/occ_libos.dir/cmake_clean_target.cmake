file(REMOVE_RECURSE
  "libocc_libos.a"
)
