file(REMOVE_RECURSE
  "CMakeFiles/occ_libos.dir/encfs.cc.o"
  "CMakeFiles/occ_libos.dir/encfs.cc.o.d"
  "CMakeFiles/occ_libos.dir/occlum_system.cc.o"
  "CMakeFiles/occ_libos.dir/occlum_system.cc.o.d"
  "libocc_libos.a"
  "libocc_libos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_libos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
