# Empty compiler generated dependencies file for occ_verifier.
# This may be replaced when dependencies are built.
