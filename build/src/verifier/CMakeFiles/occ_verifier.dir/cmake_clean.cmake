file(REMOVE_RECURSE
  "CMakeFiles/occ_verifier.dir/verifier.cc.o"
  "CMakeFiles/occ_verifier.dir/verifier.cc.o.d"
  "libocc_verifier.a"
  "libocc_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
