file(REMOVE_RECURSE
  "libocc_verifier.a"
)
