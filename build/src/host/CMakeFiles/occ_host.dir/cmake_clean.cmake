file(REMOVE_RECURSE
  "CMakeFiles/occ_host.dir/netsim.cc.o"
  "CMakeFiles/occ_host.dir/netsim.cc.o.d"
  "libocc_host.a"
  "libocc_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
