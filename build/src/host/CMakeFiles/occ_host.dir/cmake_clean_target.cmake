file(REMOVE_RECURSE
  "libocc_host.a"
)
