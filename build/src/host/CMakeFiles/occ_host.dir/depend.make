# Empty dependencies file for occ_host.
# This may be replaced when dependencies are built.
