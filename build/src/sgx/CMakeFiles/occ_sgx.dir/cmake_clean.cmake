file(REMOVE_RECURSE
  "CMakeFiles/occ_sgx.dir/sgx.cc.o"
  "CMakeFiles/occ_sgx.dir/sgx.cc.o.d"
  "libocc_sgx.a"
  "libocc_sgx.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_sgx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
