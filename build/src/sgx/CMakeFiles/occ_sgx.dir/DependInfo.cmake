
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sgx/sgx.cc" "src/sgx/CMakeFiles/occ_sgx.dir/sgx.cc.o" "gcc" "src/sgx/CMakeFiles/occ_sgx.dir/sgx.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/base/CMakeFiles/occ_base.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/occ_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/occ_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/occ_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
