file(REMOVE_RECURSE
  "libocc_sgx.a"
)
