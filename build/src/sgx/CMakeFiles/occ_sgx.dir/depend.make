# Empty dependencies file for occ_sgx.
# This may be replaced when dependencies are built.
