file(REMOVE_RECURSE
  "libocc_vm.a"
)
