# Empty compiler generated dependencies file for occ_vm.
# This may be replaced when dependencies are built.
