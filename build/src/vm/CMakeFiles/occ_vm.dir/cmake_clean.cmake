file(REMOVE_RECURSE
  "CMakeFiles/occ_vm.dir/address_space.cc.o"
  "CMakeFiles/occ_vm.dir/address_space.cc.o.d"
  "CMakeFiles/occ_vm.dir/cpu.cc.o"
  "CMakeFiles/occ_vm.dir/cpu.cc.o.d"
  "libocc_vm.a"
  "libocc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
