file(REMOVE_RECURSE
  "CMakeFiles/occ_base.dir/bytes.cc.o"
  "CMakeFiles/occ_base.dir/bytes.cc.o.d"
  "CMakeFiles/occ_base.dir/log.cc.o"
  "CMakeFiles/occ_base.dir/log.cc.o.d"
  "CMakeFiles/occ_base.dir/result.cc.o"
  "CMakeFiles/occ_base.dir/result.cc.o.d"
  "CMakeFiles/occ_base.dir/stats.cc.o"
  "CMakeFiles/occ_base.dir/stats.cc.o.d"
  "libocc_base.a"
  "libocc_base.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_base.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
