# Empty compiler generated dependencies file for occ_base.
# This may be replaced when dependencies are built.
