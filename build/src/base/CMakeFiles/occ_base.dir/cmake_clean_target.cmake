file(REMOVE_RECURSE
  "libocc_base.a"
)
