# Empty compiler generated dependencies file for occ_workloads.
# This may be replaced when dependencies are built.
