file(REMOVE_RECURSE
  "CMakeFiles/occ_workloads.dir/workloads.cc.o"
  "CMakeFiles/occ_workloads.dir/workloads.cc.o.d"
  "libocc_workloads.a"
  "libocc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
