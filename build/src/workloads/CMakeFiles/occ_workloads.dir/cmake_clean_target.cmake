file(REMOVE_RECURSE
  "libocc_workloads.a"
)
