# Empty dependencies file for occ_oelf.
# This may be replaced when dependencies are built.
