file(REMOVE_RECURSE
  "CMakeFiles/occ_oelf.dir/oelf.cc.o"
  "CMakeFiles/occ_oelf.dir/oelf.cc.o.d"
  "libocc_oelf.a"
  "libocc_oelf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_oelf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
