file(REMOVE_RECURSE
  "libocc_oelf.a"
)
