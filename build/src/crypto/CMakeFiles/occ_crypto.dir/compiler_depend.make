# Empty compiler generated dependencies file for occ_crypto.
# This may be replaced when dependencies are built.
