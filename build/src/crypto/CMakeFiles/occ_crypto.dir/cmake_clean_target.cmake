file(REMOVE_RECURSE
  "libocc_crypto.a"
)
