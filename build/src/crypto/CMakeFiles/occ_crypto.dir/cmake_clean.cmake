file(REMOVE_RECURSE
  "CMakeFiles/occ_crypto.dir/aes.cc.o"
  "CMakeFiles/occ_crypto.dir/aes.cc.o.d"
  "CMakeFiles/occ_crypto.dir/hmac.cc.o"
  "CMakeFiles/occ_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/occ_crypto.dir/sha256.cc.o"
  "CMakeFiles/occ_crypto.dir/sha256.cc.o.d"
  "libocc_crypto.a"
  "libocc_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
