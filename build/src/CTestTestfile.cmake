# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("base")
subdirs("crypto")
subdirs("isa")
subdirs("vm")
subdirs("sgx")
subdirs("oelf")
subdirs("toolchain")
subdirs("verifier")
subdirs("host")
subdirs("oskit")
subdirs("libos")
subdirs("baseline")
subdirs("workloads")
