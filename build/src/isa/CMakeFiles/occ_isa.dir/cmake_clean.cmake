file(REMOVE_RECURSE
  "CMakeFiles/occ_isa.dir/assembler.cc.o"
  "CMakeFiles/occ_isa.dir/assembler.cc.o.d"
  "CMakeFiles/occ_isa.dir/isa.cc.o"
  "CMakeFiles/occ_isa.dir/isa.cc.o.d"
  "libocc_isa.a"
  "libocc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
