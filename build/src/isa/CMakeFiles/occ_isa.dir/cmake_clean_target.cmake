file(REMOVE_RECURSE
  "libocc_isa.a"
)
