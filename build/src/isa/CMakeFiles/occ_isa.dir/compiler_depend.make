# Empty compiler generated dependencies file for occ_isa.
# This may be replaced when dependencies are built.
