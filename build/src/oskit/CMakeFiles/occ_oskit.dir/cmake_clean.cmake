file(REMOVE_RECURSE
  "CMakeFiles/occ_oskit.dir/file_object.cc.o"
  "CMakeFiles/occ_oskit.dir/file_object.cc.o.d"
  "CMakeFiles/occ_oskit.dir/kernel.cc.o"
  "CMakeFiles/occ_oskit.dir/kernel.cc.o.d"
  "CMakeFiles/occ_oskit.dir/loader.cc.o"
  "CMakeFiles/occ_oskit.dir/loader.cc.o.d"
  "libocc_oskit.a"
  "libocc_oskit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/occ_oskit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
