file(REMOVE_RECURSE
  "libocc_oskit.a"
)
