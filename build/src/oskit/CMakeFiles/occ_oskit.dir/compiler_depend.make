# Empty compiler generated dependencies file for occ_oskit.
# This may be replaced when dependencies are built.
