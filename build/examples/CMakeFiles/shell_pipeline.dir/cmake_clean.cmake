file(REMOVE_RECURSE
  "CMakeFiles/shell_pipeline.dir/shell_pipeline.cpp.o"
  "CMakeFiles/shell_pipeline.dir/shell_pipeline.cpp.o.d"
  "shell_pipeline"
  "shell_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shell_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
