# Empty dependencies file for shell_pipeline.
# This may be replaced when dependencies are built.
