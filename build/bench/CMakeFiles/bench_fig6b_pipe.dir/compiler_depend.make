# Empty compiler generated dependencies file for bench_fig6b_pipe.
# This may be replaced when dependencies are built.
