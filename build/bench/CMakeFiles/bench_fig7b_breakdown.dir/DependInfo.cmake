
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig7b_breakdown.cc" "bench/CMakeFiles/bench_fig7b_breakdown.dir/bench_fig7b_breakdown.cc.o" "gcc" "bench/CMakeFiles/bench_fig7b_breakdown.dir/bench_fig7b_breakdown.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/occ_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/libos/CMakeFiles/occ_libos.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/occ_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/toolchain/CMakeFiles/occ_toolchain.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/occ_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/oskit/CMakeFiles/occ_oskit.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/occ_host.dir/DependInfo.cmake"
  "/root/repo/build/src/oelf/CMakeFiles/occ_oelf.dir/DependInfo.cmake"
  "/root/repo/build/src/sgx/CMakeFiles/occ_sgx.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/occ_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/occ_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/occ_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/base/CMakeFiles/occ_base.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
