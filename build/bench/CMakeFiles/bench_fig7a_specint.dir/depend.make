# Empty dependencies file for bench_fig7a_specint.
# This may be replaced when dependencies are built.
