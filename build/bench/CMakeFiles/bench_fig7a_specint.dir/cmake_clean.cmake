file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_specint.dir/bench_fig7a_specint.cc.o"
  "CMakeFiles/bench_fig7a_specint.dir/bench_fig7a_specint.cc.o.d"
  "bench_fig7a_specint"
  "bench_fig7a_specint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_specint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
