# Empty dependencies file for bench_ripe_security.
# This may be replaced when dependencies are built.
