file(REMOVE_RECURSE
  "CMakeFiles/bench_ripe_security.dir/bench_ripe_security.cc.o"
  "CMakeFiles/bench_ripe_security.dir/bench_ripe_security.cc.o.d"
  "bench_ripe_security"
  "bench_ripe_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ripe_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
