# Empty compiler generated dependencies file for bench_fig5c_lighttpd.
# This may be replaced when dependencies are built.
