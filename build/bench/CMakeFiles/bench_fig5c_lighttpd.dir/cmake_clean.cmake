file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5c_lighttpd.dir/bench_fig5c_lighttpd.cc.o"
  "CMakeFiles/bench_fig5c_lighttpd.dir/bench_fig5c_lighttpd.cc.o.d"
  "bench_fig5c_lighttpd"
  "bench_fig5c_lighttpd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5c_lighttpd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
