file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6cd_file_io.dir/bench_fig6cd_file_io.cc.o"
  "CMakeFiles/bench_fig6cd_file_io.dir/bench_fig6cd_file_io.cc.o.d"
  "bench_fig6cd_file_io"
  "bench_fig6cd_file_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6cd_file_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
