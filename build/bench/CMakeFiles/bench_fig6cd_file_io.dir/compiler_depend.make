# Empty compiler generated dependencies file for bench_fig6cd_file_io.
# This may be replaced when dependencies are built.
