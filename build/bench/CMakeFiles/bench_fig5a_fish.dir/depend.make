# Empty dependencies file for bench_fig5a_fish.
# This may be replaced when dependencies are built.
