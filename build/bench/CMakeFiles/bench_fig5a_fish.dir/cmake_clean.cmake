file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5a_fish.dir/bench_fig5a_fish.cc.o"
  "CMakeFiles/bench_fig5a_fish.dir/bench_fig5a_fish.cc.o.d"
  "bench_fig5a_fish"
  "bench_fig5a_fish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_fish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
