file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6a_spawn.dir/bench_fig6a_spawn.cc.o"
  "CMakeFiles/bench_fig6a_spawn.dir/bench_fig6a_spawn.cc.o.d"
  "bench_fig6a_spawn"
  "bench_fig6a_spawn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6a_spawn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
