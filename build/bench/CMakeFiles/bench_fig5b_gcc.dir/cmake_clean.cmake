file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5b_gcc.dir/bench_fig5b_gcc.cc.o"
  "CMakeFiles/bench_fig5b_gcc.dir/bench_fig5b_gcc.cc.o.d"
  "bench_fig5b_gcc"
  "bench_fig5b_gcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_gcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
