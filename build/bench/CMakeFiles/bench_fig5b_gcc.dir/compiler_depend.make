# Empty compiler generated dependencies file for bench_fig5b_gcc.
# This may be replaced when dependencies are built.
