# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/toolchain_test[1]_include.cmake")
include("/root/repo/build/tests/verifier_test[1]_include.cmake")
include("/root/repo/build/tests/encfs_test[1]_include.cmake")
include("/root/repo/build/tests/libos_test[1]_include.cmake")
include("/root/repo/build/tests/sgx_test[1]_include.cmake")
include("/root/repo/build/tests/oskit_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/security_test[1]_include.cmake")
include("/root/repo/build/tests/host_test[1]_include.cmake")
