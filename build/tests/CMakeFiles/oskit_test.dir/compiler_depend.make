# Empty compiler generated dependencies file for oskit_test.
# This may be replaced when dependencies are built.
