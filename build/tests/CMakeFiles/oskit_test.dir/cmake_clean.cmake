file(REMOVE_RECURSE
  "CMakeFiles/oskit_test.dir/oskit_test.cc.o"
  "CMakeFiles/oskit_test.dir/oskit_test.cc.o.d"
  "oskit_test"
  "oskit_test.pdb"
  "oskit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/oskit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
