file(REMOVE_RECURSE
  "CMakeFiles/encfs_test.dir/encfs_test.cc.o"
  "CMakeFiles/encfs_test.dir/encfs_test.cc.o.d"
  "encfs_test"
  "encfs_test.pdb"
  "encfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
