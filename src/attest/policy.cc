#include "attest/policy.h"

#include <algorithm>

#include "base/cost_model.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace occlum::attest {

namespace {

bool
digest_allowed(const std::vector<crypto::Sha256Digest> &allowed,
               const crypto::Sha256Digest &digest, bool allow_any)
{
    if (allow_any) {
        return true;
    }
    return std::find(allowed.begin(), allowed.end(), digest) !=
           allowed.end();
}

} // namespace

Verifier::Verifier(sgx::Platform &platform, Policy policy)
    : platform_(&platform), policy_(std::move(policy))
{}

AttestError
Verifier::verify(const Evidence &evidence,
                 const crypto::Sha256Digest &expected_binding) const
{
    OCC_TRACE_SPAN(kSgx, "attest.verify_evidence");
    // The verification leg mirrors create_report's cost: one MAC over
    // the report payload inside the verifying enclave.
    platform_->clock().advance(CostModel::kLocalAttestCycles);

    static trace::Counter *rejects =
        &trace::Registry::instance().counter("attest.evidence_rejects");

    // 1. Authenticity: the platform report key vouches for every
    //    field. Identity checks before this point would act on
    //    attacker-controlled bytes.
    if (!sgx::Enclave::verify_report(*platform_, evidence.report)) {
        rejects->add();
        return AttestError::kBadReportMac;
    }
    // 2. Identity against the allow-list policy.
    if (!digest_allowed(policy_.allowed_measurements,
                        evidence.report.measurement,
                        policy_.allow_any_measurement)) {
        rejects->add();
        return AttestError::kWrongMeasurement;
    }
    if (!digest_allowed(policy_.allowed_signers,
                        evidence.report.identity.signer,
                        policy_.allow_any_signer)) {
        rejects->add();
        return AttestError::kWrongSigner;
    }
    if ((evidence.report.identity.attributes &
         sgx::EnclaveIdentity::kAttrDebug) != 0 &&
        !policy_.allow_debug) {
        rejects->add();
        return AttestError::kDebugForbidden;
    }
    if (evidence.report.identity.isv_svn < policy_.min_isv_svn) {
        rejects->add();
        return AttestError::kLowSvn;
    }
    // 3. Freshness/binding: user_data must carry exactly the digest
    //    this handshake's transcript demands.
    std::array<uint8_t, 64> expect{};
    std::copy(expected_binding.begin(), expected_binding.end(),
              expect.begin());
    if (evidence.report.user_data != expect) {
        rejects->add();
        return AttestError::kBadBinding;
    }
    return AttestError::kNone;
}

AttestError
Verifier::consume_nonce(const Nonce &nonce)
{
    if (!seen_nonces_.insert(nonce).second) {
        static trace::Counter *replays =
            &trace::Registry::instance().counter("attest.nonce_replays");
        replays->add();
        OCC_TRACE_INSTANT(kNet, "attest.nonce_replay");
        return AttestError::kReplayedNonce;
    }
    return AttestError::kNone;
}

} // namespace occlum::attest
