/**
 * @file
 * A minimal request/response RPC layer over SecureChannel: every
 * request and response is one encrypted record, so the record layer's
 * integrity, ordering, and fail-closed guarantees carry over without
 * extra machinery.
 *
 * Payload of a request record (little-endian):
 *   u32 id      caller-chosen, echoed in the response
 *   u32 op      method selector, service-defined
 *   u8  data[]  argument bytes
 *
 * Payload of a response record:
 *   u32 id      echo of the request id
 *   u32 status  0 = ok, else an ErrorCode from the handler
 *   u8  data[]  result bytes (empty on error)
 *
 * Both sides are non-blocking state machines like the handshake: the
 * driver loop calls step()/poll() whenever simulated time moved.
 */
#ifndef OCCLUM_ATTEST_RPC_H
#define OCCLUM_ATTEST_RPC_H

#include <functional>

#include "attest/handshake.h"

namespace occlum::attest {

/** One decoded RPC request. */
struct RpcRequest {
    uint32_t id = 0;
    uint32_t op = 0;
    Bytes payload;
};

/** One decoded RPC response. */
struct RpcResponse {
    uint32_t id = 0;
    uint32_t status = 0;
    Bytes payload;
};

Bytes rpc_encode_request(uint32_t id, uint32_t op, const Bytes &payload);
Bytes rpc_encode_response(uint32_t id, uint32_t status,
                          const Bytes &payload);
/** kBadLength if the record payload is shorter than the header. */
AttestError rpc_decode_request(const Bytes &wire, RpcRequest &out);
AttestError rpc_decode_response(const Bytes &wire, RpcResponse &out);

/**
 * Serves requests off an established channel. The handler returns
 * result bytes or an error status; transport/record failures poison
 * the underlying channel and surface through failed().
 */
class RpcServer
{
  public:
    using Handler =
        std::function<Result<Bytes>(uint32_t op, const Bytes &payload)>;

    RpcServer(SecureChannel channel, Handler handler);

    /** Serve any deliverable requests; true if one was processed. */
    bool step();

    bool failed() const { return channel_.failed(); }
    /** Peer closed cleanly and everything was served. */
    bool done() const { return done_; }
    AttestError error() const { return channel_.error(); }
    uint64_t requests_served() const { return requests_served_; }
    SecureChannel &channel() { return channel_; }

  private:
    SecureChannel channel_;
    Handler handler_;
    bool done_ = false;
    uint64_t requests_served_ = 0;
};

/**
 * Issues requests over an established channel. Pipelining is allowed
 * (multiple calls in flight); responses come back in order because
 * the record layer enforces ordering.
 */
class RpcClient
{
  public:
    explicit RpcClient(SecureChannel channel);

    /** Send one request; returns its id, or 0 if the channel failed. */
    uint32_t call(uint32_t op, const Bytes &payload);

    enum class Poll : uint8_t { kResponse, kNeedMore, kClosed, kFailed };

    /** Try to receive one response. */
    Poll poll(RpcResponse &out);

    bool failed() const { return channel_.failed(); }
    AttestError error() const { return channel_.error(); }
    uint64_t next_arrival() const { return channel_.next_arrival(); }
    SecureChannel &channel() { return channel_; }

  private:
    SecureChannel channel_;
    uint32_t next_id_ = 1;
};

} // namespace occlum::attest

#endif // OCCLUM_ATTEST_RPC_H
