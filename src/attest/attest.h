/**
 * @file
 * src/attest — attested channel bootstrap between enclave systems
 * (ROADMAP "attested multi-enclave deployments").
 *
 * The subsystem composes three existing ingredients into the
 * evidence -> verify -> session-key -> encrypted-RPC pipeline that
 * production attestation stacks (Open Enclave's hostverify/oesign
 * flow) treat as table stakes:
 *
 *  - sgx::Enclave::create_report / verify_report supply the evidence
 *    (measurement + SIGSTRUCT identity, MAC'd with the platform
 *    report key),
 *  - the crypto data plane (AES-CTR, midstate HMAC) runs the record
 *    layer,
 *  - host::NetSim carries the wire bytes, with faultsim's drop /
 *    duplicate / short-read sites exercising retransmission and
 *    fail-closed paths.
 *
 * Layering (one header per layer, bottom-up):
 *   evidence.h   serializable Evidence blob wrapping an sgx::Report
 *   policy.h     Verifier: report MAC + allow-list policy + nonce
 *                replay cache
 *   channel.h    RecordCodec / SecureChannel: seq-numbered AES-CTR +
 *                HMAC encrypt-then-MAC record layer
 *   handshake.h  Transport over NetSim + the mutual challenge-
 *                response handshake state machines
 *   rpc.h        tiny request/response framing over SecureChannel
 *
 * Everything here is deterministic: nonces come from seeded SplitMix64
 * streams, and all latency is simulated cycles, so a handshake trace
 * replays exactly from (seed, fault plan).
 */
#ifndef OCCLUM_ATTEST_ATTEST_H
#define OCCLUM_ATTEST_ATTEST_H

#include <array>
#include <cstdint>

#include "crypto/hmac.h"

namespace occlum::attest {

/**
 * Why an attestation or channel operation was rejected. Every tamper
 * class maps to its own code (the adversarial battery in
 * tests/attest_test.cc asserts the distinctions), and every non-kNone
 * outcome is fail-closed: the endpoint tears the connection down
 * rather than continuing half-open.
 */
enum class AttestError : uint8_t {
    kNone = 0,

    // ---- evidence / verification ----------------------------------
    kBadEvidenceEncoding, // wrong magic/version/length
    kBadReportMac,        // platform report-key MAC check failed
    kWrongMeasurement,    // measurement not in the policy allow-list
    kWrongSigner,         // signer not in the policy allow-list
    kDebugForbidden,      // DEBUG attribute set, policy forbids it
    kLowSvn,              // isv_svn below the policy minimum
    kBadBinding,          // user_data does not bind this transcript
    kReplayedNonce,       // peer nonce already consumed (replay)

    // ---- handshake wire -------------------------------------------
    kBadMagic,            // frame magic mismatch
    kBadVersion,          // unsupported protocol version
    kBadLength,           // frame length out of bounds
    kUnexpectedMessage,   // legal frame, illegal state transition
    kBadFinishedMac,      // key-confirmation MAC mismatch
    kTimeout,             // fail-closed deadline expired
    kPeerAlert,           // peer reported a failure and closed
    kClosed,              // connection closed mid-handshake

    // ---- record layer ---------------------------------------------
    kBadRecordLength,     // record body shorter than the MAC trailer
    kStaleSeq,            // sequence number replayed or out of order
    kBadRecordMac,        // encrypt-then-MAC verification failed
};

const char *attest_error_name(AttestError error);

/** A 32-byte handshake nonce. */
using Nonce = std::array<uint8_t, 32>;

/**
 * Directional session keys derived from the handshake transcript.
 * Both peers compute the same struct; each *uses* only its sending
 * half for seal and its receiving half for open.
 */
struct SessionKeys {
    crypto::Key128 enc_c2s{};
    crypto::Key128 enc_s2c{};
    crypto::Sha256Digest mac_c2s{};
    crypto::Sha256Digest mac_s2c{};
    std::array<uint8_t, 12> iv_c2s{};
    std::array<uint8_t, 12> iv_s2c{};

    bool
    operator==(const SessionKeys &other) const
    {
        return enc_c2s == other.enc_c2s && enc_s2c == other.enc_s2c &&
               mac_c2s == other.mac_c2s && mac_s2c == other.mac_s2c &&
               iv_c2s == other.iv_c2s && iv_s2c == other.iv_s2c;
    }
};

// ---- wire constants ---------------------------------------------------

/** Frame magic ("At" little-endian) shared by handshake and records. */
constexpr uint16_t kFrameMagic = 0x7441;
/** Protocol version; bumped on any wire-format change. */
constexpr uint8_t kProtocolVersion = 1;
/** Frame header: u16 magic, u8 type, u8 version, u32 body length. */
constexpr size_t kFrameHeaderSize = 8;
/** Upper bound on a frame body (handshake or record). */
constexpr uint32_t kMaxFrameBody = 1 << 20;

/** Frame types. */
enum class FrameType : uint8_t {
    kClientHello = 1,
    kServerHello = 2,
    kClientFinish = 3,
    kServerFinish = 4,
    kRecord = 5,
    kAlert = 6,
};

} // namespace occlum::attest

#endif // OCCLUM_ATTEST_ATTEST_H
