#include "attest/channel.h"

#include <cstring>

#include "base/cost_model.h"
#include "base/log.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace occlum::attest {

namespace {

constexpr size_t kSeqSize = 8;
constexpr size_t kMacSize = 32;

trace::Counter &
channel_counter(const char *name)
{
    return trace::Registry::instance().counter(name);
}

} // namespace

Bytes
frame_header(FrameType type, uint32_t body_len)
{
    Bytes header;
    header.reserve(kFrameHeaderSize);
    put_le<uint16_t>(header, kFrameMagic);
    header.push_back(static_cast<uint8_t>(type));
    header.push_back(kProtocolVersion);
    put_le<uint32_t>(header, body_len);
    return header;
}

AttestError
parse_frame_header(const uint8_t *header, FrameType &type,
                   uint32_t &body_len)
{
    if (get_le<uint16_t>(header) != kFrameMagic) {
        return AttestError::kBadMagic;
    }
    uint8_t raw_type = header[2];
    if (header[3] != kProtocolVersion) {
        return AttestError::kBadVersion;
    }
    if (raw_type < static_cast<uint8_t>(FrameType::kClientHello) ||
        raw_type > static_cast<uint8_t>(FrameType::kAlert)) {
        return AttestError::kBadMagic;
    }
    body_len = get_le<uint32_t>(header + 4);
    if (body_len > kMaxFrameBody) {
        return AttestError::kBadLength;
    }
    type = static_cast<FrameType>(raw_type);
    return AttestError::kNone;
}

RecordCodec::RecordCodec(const SessionKeys &keys, bool is_server,
                         SimClock *clock, bool plaintext)
    : send_cipher_(is_server ? keys.enc_s2c : keys.enc_c2s),
      recv_cipher_(is_server ? keys.enc_c2s : keys.enc_s2c),
      send_mac_(is_server ? keys.mac_s2c.data() : keys.mac_c2s.data(),
                kMacSize),
      recv_mac_(is_server ? keys.mac_c2s.data() : keys.mac_s2c.data(),
                kMacSize),
      send_iv_(is_server ? keys.iv_s2c : keys.iv_c2s),
      recv_iv_(is_server ? keys.iv_c2s : keys.iv_s2c),
      clock_(clock), plaintext_(plaintext)
{}

void
RecordCodec::charge(size_t payload_bytes) const
{
    if (clock_ == nullptr) {
        return;
    }
    uint64_t cycles = CostModel::kAttestRecordFixedCycles;
    if (!plaintext_) {
        cycles += static_cast<uint64_t>(
            payload_bytes * (CostModel::kAesCyclesPerByte +
                             CostModel::kHmacCyclesPerByte));
    }
    clock_->advance(cycles);
}

std::array<uint8_t, 12>
RecordCodec::record_iv(const std::array<uint8_t, 12> &base,
                       uint64_t seq) const
{
    // Fold the sequence number into the IV's low 8 bytes: per-record
    // unique nonces under one key, same discipline as EncFs's
    // (block, write-counter) IVs.
    std::array<uint8_t, 12> iv = base;
    for (int i = 0; i < 8; ++i) {
        iv[4 + i] ^= static_cast<uint8_t>(seq >> (8 * i));
    }
    return iv;
}

Bytes
RecordCodec::seal(const Bytes &payload)
{
    OCC_TRACE_SPAN(kNet, "attest.seal", payload.size());
    uint64_t seq = send_seq_++;
    size_t body_len = kSeqSize + payload.size() +
                      (plaintext_ ? 0 : kMacSize);
    OCC_CHECK_MSG(body_len <= kMaxFrameBody, "record payload too large");

    Bytes frame = frame_header(FrameType::kRecord,
                               static_cast<uint32_t>(body_len));
    put_le<uint64_t>(frame, seq);

    size_t cipher_off = frame.size();
    frame.resize(cipher_off + payload.size());
    if (plaintext_) {
        std::memcpy(frame.data() + cipher_off, payload.data(),
                    payload.size());
    } else {
        send_cipher_.ctr_crypt(record_iv(send_iv_, seq), 0,
                               payload.data(), frame.data() + cipher_off,
                               payload.size());
        // Encrypt-then-MAC over everything on the wire so far:
        // header, seq, ciphertext.
        crypto::Sha256 inner = send_mac_.begin();
        inner.update(frame.data(), frame.size());
        crypto::Sha256Digest mac = send_mac_.finish(inner);
        frame.insert(frame.end(), mac.begin(), mac.end());
    }
    charge(payload.size());
    static trace::Counter *sent = &channel_counter("attest.records_sent");
    static trace::Counter *bytes =
        &channel_counter("attest.payload_bytes_sent");
    sent->add();
    bytes->add(payload.size());
    return frame;
}

AttestError
RecordCodec::open(const Bytes &body, Bytes &payload_out)
{
    OCC_TRACE_SPAN(kNet, "attest.open", body.size());
    size_t trailer = plaintext_ ? 0 : kMacSize;
    if (body.size() < kSeqSize + trailer) {
        return AttestError::kBadRecordLength;
    }
    uint64_t seq = get_le<uint64_t>(body.data());
    size_t cipher_len = body.size() - kSeqSize - trailer;

    if (!plaintext_) {
        // MAC first (encrypt-then-MAC): nothing is decrypted, and the
        // sequence number is not even trusted, until the tag checks
        // out over header || seq || ciphertext.
        Bytes header = frame_header(
            FrameType::kRecord, static_cast<uint32_t>(body.size()));
        crypto::Sha256 inner = recv_mac_.begin();
        inner.update(header.data(), header.size());
        inner.update(body.data(), body.size() - kMacSize);
        crypto::Sha256Digest expect = recv_mac_.finish(inner);
        crypto::Sha256Digest got;
        std::memcpy(got.data(), body.data() + body.size() - kMacSize,
                    kMacSize);
        if (!crypto::digest_equal(expect, got)) {
            static trace::Counter *rejects =
                &channel_counter("attest.record_rejects");
            rejects->add();
            OCC_TRACE_INSTANT(kNet, "attest.record_bad_mac", seq);
            return AttestError::kBadRecordMac;
        }
    }
    // Exact-next-seq discipline: over a reliable stream any other
    // value is a replayed, dropped-then-spliced, or reordered record.
    if (seq != recv_seq_) {
        static trace::Counter *rejects =
            &channel_counter("attest.record_rejects");
        rejects->add();
        OCC_TRACE_INSTANT(kNet, "attest.record_stale_seq", seq);
        return AttestError::kStaleSeq;
    }

    payload_out.resize(cipher_len);
    if (plaintext_) {
        std::memcpy(payload_out.data(), body.data() + kSeqSize,
                    cipher_len);
    } else {
        recv_cipher_.ctr_crypt(record_iv(recv_iv_, seq), 0,
                               body.data() + kSeqSize, payload_out.data(),
                               cipher_len);
    }
    ++recv_seq_;
    charge(cipher_len);
    static trace::Counter *received =
        &channel_counter("attest.records_received");
    static trace::Counter *bytes =
        &channel_counter("attest.payload_bytes_received");
    received->add();
    bytes->add(cipher_len);
    return AttestError::kNone;
}

} // namespace occlum::attest
