#include "attest/handshake.h"

#include <algorithm>
#include <cstring>

#include "base/log.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace occlum::attest {

namespace {

/** EGETKEY label for the channel master-secret base key. */
const char kChannelKeyLabel[] = "occlum.attest.channel.v1";
/** Domain-separation labels for the key schedule. */
const char kMasterLabel[] = "occlum.attest.master";
const char kClientRoleLabel[] = "occlum.attest.client";
const char kServerRoleLabel[] = "occlum.attest.server";
const char kClientFinishLabel[] = "occlum.attest.finished.client";
const char kServerFinishLabel[] = "occlum.attest.finished.server";

constexpr size_t kRecvChunk = 4096;
/** Compact the reassembly buffer past this much consumed prefix. */
constexpr size_t kCompactThreshold = 64 * 1024;

trace::Counter &
hs_counter(const char *name)
{
    return trace::Registry::instance().counter(name);
}

void
update_str(crypto::Sha256 &hasher, const char *label)
{
    hasher.update(reinterpret_cast<const uint8_t *>(label),
                  std::strlen(label));
}

/**
 * finished_mac = HMAC(master, label || th_cs || SHA256(client
 * evidence bytes)): proves possession of the master secret over this
 * exact transcript and client credential — the key-confirmation step
 * that catches a cross-platform peer whose evidence parsed but whose
 * derived keys differ.
 */
crypto::Sha256Digest
finished_mac(const crypto::Sha256Digest &master, const char *label,
             const crypto::Sha256Digest &th_cs,
             const crypto::Sha256Digest &evidence_digest)
{
    crypto::HmacKey key(master.data(), master.size());
    crypto::Sha256 inner = key.begin();
    update_str(inner, label);
    inner.update(th_cs.data(), th_cs.size());
    inner.update(evidence_digest.data(), evidence_digest.size());
    return key.finish(inner);
}

Bytes
alert_frame(AttestError error)
{
    Bytes frame = frame_header(FrameType::kAlert, 1);
    frame.push_back(static_cast<uint8_t>(error));
    return frame;
}

} // namespace

// ---- Transport --------------------------------------------------------

Transport::Transport(host::NetSim &net, host::NetSim::Connection *conn,
                     bool at_server, SimClock &clock,
                     uint64_t ocall_cycles)
    : net_(&net), conn_(conn), at_server_(at_server), clock_(&clock),
      ocall_cycles_(ocall_cycles)
{}

void
Transport::send_frame(const Bytes &frame)
{
    if (closed_) {
        return;
    }
    // Every network operation crosses the enclave boundary once.
    clock_->advance(ocall_cycles_);
    net_->send(conn_, at_server_, frame.data(), frame.size());
}

bool
Transport::pump()
{
    if (closed_ || poisoned_) {
        return false;
    }
    // Probe before paying: the readable check models the kernel's
    // poll-style readiness query, the OCALL is charged only when a
    // recv actually moves bytes.
    if (!net_->readable_now(conn_, at_server_, clock_->cycles())) {
        return false;
    }
    clock_->advance(ocall_cycles_);
    bool got = false;
    uint8_t chunk[kRecvChunk];
    for (;;) {
        uint64_t next_arrival = ~0ull;
        size_t n = net_->recv(conn_, at_server_, chunk, sizeof chunk,
                              clock_->cycles(), next_arrival);
        if (n == 0) {
            break;
        }
        rx_.insert(rx_.end(), chunk, chunk + n);
        got = true;
    }
    return got;
}

Transport::Pop
Transport::pop_frame(FrameType &type, Bytes &body, AttestError &err)
{
    if (poisoned_) {
        err = poison_error_;
        return Pop::kError;
    }
    size_t avail = rx_.size() - rx_pos_;
    if (avail < kFrameHeaderSize) {
        return Pop::kNeedMore;
    }
    uint32_t body_len = 0;
    AttestError parse = parse_frame_header(rx_.data() + rx_pos_, type,
                                           body_len);
    if (parse != AttestError::kNone) {
        // Garbage framing poisons the stream: byte boundaries can no
        // longer be trusted, so there is nothing to resync to.
        poisoned_ = true;
        poison_error_ = parse;
        err = parse;
        return Pop::kError;
    }
    if (avail < kFrameHeaderSize + body_len) {
        return Pop::kNeedMore;
    }
    const uint8_t *start = rx_.data() + rx_pos_ + kFrameHeaderSize;
    body.assign(start, start + body_len);
    rx_pos_ += kFrameHeaderSize + body_len;
    if (rx_pos_ >= kCompactThreshold) {
        rx_.erase(rx_.begin(),
                  rx_.begin() + static_cast<ptrdiff_t>(rx_pos_));
        rx_pos_ = 0;
    }
    return Pop::kFrame;
}

uint64_t
Transport::next_arrival() const
{
    if (closed_) {
        return ~0ull;
    }
    if (net_->readable_now(conn_, at_server_, clock_->cycles())) {
        return clock_->cycles();
    }
    return net_->next_arrival_time(conn_, at_server_);
}

bool
Transport::peer_drained() const
{
    return rx_pos_ == rx_.size() &&
           net_->is_drained(conn_, at_server_, clock_->cycles());
}

void
Transport::close()
{
    if (!closed_) {
        net_->close(conn_, at_server_);
        closed_ = true;
    }
}

// ---- HandshakeEndpoint ------------------------------------------------

HandshakeEndpoint::HandshakeEndpoint(sgx::Platform &platform,
                                     sgx::Enclave &enclave,
                                     Verifier &verifier,
                                     Transport transport,
                                     EndpointConfig config)
    : platform_(&platform), enclave_(&enclave), verifier_(&verifier),
      transport_(std::move(transport)), config_(config),
      nonce_rng_(config.nonce_seed)
{
    start_cycles_ = platform_->clock().cycles();
    deadline_at_ = start_cycles_ + config_.deadline_cycles;
    if (config_.is_server) {
        state_ = State::kAwaitClientHello;
    } else {
        // Flight 1 goes out immediately; the retry timer covers it.
        nonce_c_ = make_nonce();
        client_hello_frame_ = frame_header(
            FrameType::kClientHello,
            static_cast<uint32_t>(nonce_c_.size()));
        client_hello_frame_.insert(client_hello_frame_.end(),
                                   nonce_c_.begin(), nonce_c_.end());
        send_flight(client_hello_frame_);
        state_ = State::kAwaitServerHello;
    }
}

Nonce
HandshakeEndpoint::make_nonce()
{
    Nonce nonce;
    for (size_t i = 0; i < nonce.size(); i += 8) {
        uint64_t word = nonce_rng_.next();
        for (size_t j = 0; j < 8; ++j) {
            nonce[i + j] = static_cast<uint8_t>(word >> (8 * j));
        }
    }
    return nonce;
}

void
HandshakeEndpoint::send_flight(const Bytes &frame)
{
    transport_.send_frame(frame);
    last_flight_ = frame;
    resend_at_ = platform_->clock().cycles() + config_.retry_cycles;
}

void
HandshakeEndpoint::fail(AttestError error, bool send_alert)
{
    if (state_ == State::kFailed) {
        return;
    }
    error_ = error;
    state_ = State::kFailed;
    resend_at_ = ~0ull;
    // Fail closed: tell the peer (best effort) and tear down — a
    // half-open endpoint holding partial key material is the bug
    // class this protocol exists to avoid.
    if (send_alert && !transport_.closed()) {
        transport_.send_frame(alert_frame(error));
    }
    transport_.close();
    static trace::Counter *failures =
        &hs_counter("attest.handshake_failures");
    failures->add();
    OCC_TRACE_INSTANT(kNet, "attest.handshake_fail",
                      static_cast<uint64_t>(error));
}

const SessionKeys &
HandshakeEndpoint::keys() const
{
    OCC_CHECK_MSG(state_ == State::kEstablished,
                  "session keys queried before establishment");
    return keys_;
}

void
HandshakeEndpoint::derive_session(const crypto::Sha256Digest &th_cs)
{
    // Base secret: EGETKEY-shaped platform key. Both enclaves on this
    // platform derive it; the host observing the full transcript
    // cannot. (Identity assurance comes from evidence verification,
    // not from this key — see the threat model in DESIGN.md §8.)
    Bytes label(kChannelKeyLabel,
                kChannelKeyLabel + sizeof kChannelKeyLabel - 1);
    crypto::Sha256Digest platform_key =
        enclave_->derive_platform_key(label);

    crypto::HmacKey base(platform_key.data(), platform_key.size());
    crypto::Sha256 inner = base.begin();
    update_str(inner, kMasterLabel);
    inner.update(th_cs.data(), th_cs.size());
    inner.update(nonce_c_.data(), nonce_c_.size());
    inner.update(nonce_s_.data(), nonce_s_.size());
    master_ = base.finish(inner);

    crypto::Sha256Digest d;
    d = crypto::hkdf_expand_label(master_, "key.c2s.enc");
    std::memcpy(keys_.enc_c2s.data(), d.data(), keys_.enc_c2s.size());
    d = crypto::hkdf_expand_label(master_, "key.s2c.enc");
    std::memcpy(keys_.enc_s2c.data(), d.data(), keys_.enc_s2c.size());
    keys_.mac_c2s = crypto::hkdf_expand_label(master_, "key.c2s.mac");
    keys_.mac_s2c = crypto::hkdf_expand_label(master_, "key.s2c.mac");
    d = crypto::hkdf_expand_label(master_, "key.c2s.iv");
    std::memcpy(keys_.iv_c2s.data(), d.data(), keys_.iv_c2s.size());
    d = crypto::hkdf_expand_label(master_, "key.s2c.iv");
    std::memcpy(keys_.iv_s2c.data(), d.data(), keys_.iv_s2c.size());
}

bool
HandshakeEndpoint::server_on_client_hello(const Bytes &body)
{
    if (state_ == State::kAwaitClientFinish) {
        // The client timed out waiting for our ServerHello and resent
        // its hello. Identical bytes get the identical reply — a
        // fresh nonce here would fork the transcript and doom the
        // handshake on a link that merely runs slow.
        Bytes frame = frame_header(FrameType::kClientHello,
                                   static_cast<uint32_t>(body.size()));
        frame.insert(frame.end(), body.begin(), body.end());
        if (frame == client_hello_frame_) {
            transport_.send_frame(server_hello_frame_);
            ++retransmits_;
            static trace::Counter *ctr =
                &hs_counter("attest.retransmits");
            ctr->add();
            return true;
        }
        fail(AttestError::kUnexpectedMessage, true);
        return true;
    }
    if (state_ != State::kAwaitClientHello) {
        fail(AttestError::kUnexpectedMessage, true);
        return true;
    }
    if (body.size() != nonce_c_.size()) {
        fail(AttestError::kBadLength, true);
        return true;
    }
    std::memcpy(nonce_c_.data(), body.data(), nonce_c_.size());
    // Replay gate before EREPORT: a replayed hello must not cost the
    // server an enclave round trip producing evidence for it.
    AttestError nonce_err = verifier_->consume_nonce(nonce_c_);
    if (nonce_err != AttestError::kNone) {
        fail(nonce_err, true);
        return true;
    }
    client_hello_frame_ = frame_header(
        FrameType::kClientHello, static_cast<uint32_t>(body.size()));
    client_hello_frame_.insert(client_hello_frame_.end(), body.begin(),
                               body.end());
    crypto::Sha256Digest th_c =
        crypto::Sha256::digest(client_hello_frame_);

    nonce_s_ = make_nonce();
    crypto::Sha256Digest binding =
        evidence_binding(kServerRoleLabel, th_c, nonce_s_);
    Evidence evidence;
    evidence.report = enclave_->create_report(
        Bytes(binding.begin(), binding.end()));
    Bytes evidence_bytes = evidence.serialize();

    Bytes body_s;
    body_s.insert(body_s.end(), nonce_s_.begin(), nonce_s_.end());
    body_s.insert(body_s.end(), evidence_bytes.begin(),
                  evidence_bytes.end());
    server_hello_frame_ = frame_header(
        FrameType::kServerHello, static_cast<uint32_t>(body_s.size()));
    server_hello_frame_.insert(server_hello_frame_.end(), body_s.begin(),
                               body_s.end());

    crypto::Sha256 th;
    th.update(client_hello_frame_);
    th.update(server_hello_frame_);
    th_cs_ = th.finish();

    send_flight(server_hello_frame_);
    state_ = State::kAwaitClientFinish;
    // Retransmission of ServerHello is duplicate-hello driven, not
    // timer driven: the client owns the retry timer for this exchange.
    resend_at_ = ~0ull;
    return true;
}

bool
HandshakeEndpoint::client_on_server_hello(const Bytes &body)
{
    if (state_ != State::kAwaitServerHello) {
        // A late duplicate from a server that resent; harmless.
        return true;
    }
    if (body.size() != nonce_s_.size() + Evidence::kWireSize) {
        fail(AttestError::kBadLength, true);
        return true;
    }
    std::memcpy(nonce_s_.data(), body.data(), nonce_s_.size());
    Bytes evidence_bytes(body.begin() +
                             static_cast<ptrdiff_t>(nonce_s_.size()),
                         body.end());
    Evidence evidence;
    AttestError parse = Evidence::parse(evidence_bytes, evidence);
    if (parse != AttestError::kNone) {
        fail(parse, true);
        return true;
    }
    crypto::Sha256Digest th_c =
        crypto::Sha256::digest(client_hello_frame_);
    crypto::Sha256Digest binding =
        evidence_binding(kServerRoleLabel, th_c, nonce_s_);
    AttestError verdict = verifier_->verify(evidence, binding);
    if (verdict != AttestError::kNone) {
        fail(verdict, true);
        return true;
    }
    // Symmetric replay defence: the client's verifier also remembers
    // every server nonce it ever accepted.
    AttestError nonce_err = verifier_->consume_nonce(nonce_s_);
    if (nonce_err != AttestError::kNone) {
        fail(nonce_err, true);
        return true;
    }
    peer_evidence_ = evidence;

    server_hello_frame_ = frame_header(
        FrameType::kServerHello, static_cast<uint32_t>(body.size()));
    server_hello_frame_.insert(server_hello_frame_.end(), body.begin(),
                               body.end());
    crypto::Sha256 th;
    th.update(client_hello_frame_);
    th.update(server_hello_frame_);
    th_cs_ = th.finish();

    derive_session(th_cs_);

    crypto::Sha256Digest my_binding =
        evidence_binding(kClientRoleLabel, th_cs_, nonce_c_);
    Evidence my_evidence;
    my_evidence.report = enclave_->create_report(
        Bytes(my_binding.begin(), my_binding.end()));
    Bytes my_evidence_bytes = my_evidence.serialize();
    finish_ev_digest_ = crypto::Sha256::digest(my_evidence_bytes);
    crypto::Sha256Digest mac = finished_mac(
        master_, kClientFinishLabel, th_cs_, finish_ev_digest_);

    Bytes body_f;
    body_f.insert(body_f.end(), my_evidence_bytes.begin(),
                  my_evidence_bytes.end());
    body_f.insert(body_f.end(), mac.begin(), mac.end());
    Bytes frame = frame_header(FrameType::kClientFinish,
                               static_cast<uint32_t>(body_f.size()));
    frame.insert(frame.end(), body_f.begin(), body_f.end());
    send_flight(frame);
    state_ = State::kAwaitServerFinish;
    return true;
}

bool
HandshakeEndpoint::server_on_client_finish(const Bytes &body)
{
    if (state_ == State::kEstablished) {
        // The client resent its finish because our ServerFinish was
        // slow; repeat it.
        transport_.send_frame(last_flight_);
        ++retransmits_;
        static trace::Counter *ctr = &hs_counter("attest.retransmits");
        ctr->add();
        return true;
    }
    if (state_ != State::kAwaitClientFinish) {
        fail(AttestError::kUnexpectedMessage, true);
        return true;
    }
    if (body.size() != Evidence::kWireSize + 32) {
        fail(AttestError::kBadLength, true);
        return true;
    }
    Bytes evidence_bytes(body.begin(),
                         body.begin() + Evidence::kWireSize);
    Evidence evidence;
    AttestError parse = Evidence::parse(evidence_bytes, evidence);
    if (parse != AttestError::kNone) {
        fail(parse, true);
        return true;
    }
    crypto::Sha256Digest binding =
        evidence_binding(kClientRoleLabel, th_cs_, nonce_c_);
    AttestError verdict = verifier_->verify(evidence, binding);
    if (verdict != AttestError::kNone) {
        fail(verdict, true);
        return true;
    }
    derive_session(th_cs_);
    finish_ev_digest_ = crypto::Sha256::digest(evidence_bytes);
    crypto::Sha256Digest expect = finished_mac(
        master_, kClientFinishLabel, th_cs_, finish_ev_digest_);
    crypto::Sha256Digest got;
    std::memcpy(got.data(), body.data() + Evidence::kWireSize,
                got.size());
    if (!crypto::digest_equal(expect, got)) {
        fail(AttestError::kBadFinishedMac, true);
        return true;
    }
    peer_evidence_ = evidence;

    crypto::Sha256Digest mac = finished_mac(
        master_, kServerFinishLabel, th_cs_, finish_ev_digest_);
    Bytes frame = frame_header(FrameType::kServerFinish,
                               static_cast<uint32_t>(mac.size()));
    frame.insert(frame.end(), mac.begin(), mac.end());
    // Plain send (not send_flight): retransmission of ServerFinish is
    // driven by duplicate ClientFinish frames, but last_flight_ must
    // hold it for that path.
    transport_.send_frame(frame);
    last_flight_ = frame;
    resend_at_ = ~0ull;
    state_ = State::kEstablished;
    handshake_cycles_ = platform_->clock().cycles() - start_cycles_;
    static trace::Counter *done =
        &hs_counter("attest.handshakes_completed");
    done->add();
    OCC_TRACE_INSTANT(kNet, "attest.handshake_established",
                      handshake_cycles_);
    return true;
}

bool
HandshakeEndpoint::client_on_server_finish(const Bytes &body)
{
    if (state_ != State::kAwaitServerFinish) {
        return true; // late duplicate
    }
    if (body.size() != 32) {
        fail(AttestError::kBadLength, true);
        return true;
    }
    crypto::Sha256Digest expect = finished_mac(
        master_, kServerFinishLabel, th_cs_, finish_ev_digest_);
    crypto::Sha256Digest got;
    std::memcpy(got.data(), body.data(), got.size());
    if (!crypto::digest_equal(expect, got)) {
        fail(AttestError::kBadFinishedMac, true);
        return true;
    }
    resend_at_ = ~0ull;
    state_ = State::kEstablished;
    handshake_cycles_ = platform_->clock().cycles() - start_cycles_;
    static trace::Counter *done =
        &hs_counter("attest.handshakes_completed");
    done->add();
    OCC_TRACE_INSTANT(kNet, "attest.handshake_established",
                      handshake_cycles_);
    return true;
}

bool
HandshakeEndpoint::process_frame(FrameType type, const Bytes &body)
{
    switch (type) {
      case FrameType::kClientHello:
        if (!config_.is_server) {
            fail(AttestError::kUnexpectedMessage, true);
            return true;
        }
        return server_on_client_hello(body);
      case FrameType::kServerHello:
        if (config_.is_server) {
            fail(AttestError::kUnexpectedMessage, true);
            return true;
        }
        return client_on_server_hello(body);
      case FrameType::kClientFinish:
        if (!config_.is_server) {
            fail(AttestError::kUnexpectedMessage, true);
            return true;
        }
        return server_on_client_finish(body);
      case FrameType::kServerFinish:
        if (config_.is_server) {
            fail(AttestError::kUnexpectedMessage, true);
            return true;
        }
        return client_on_server_finish(body);
      case FrameType::kAlert:
        // Peer failed closed; mirror it without echoing an alert back
        // (alert loops help nobody).
        fail(AttestError::kPeerAlert, false);
        return true;
      case FrameType::kRecord:
        // Records before both Finished messages means the peer thinks
        // the channel exists and we do not: unrecoverable skew.
        fail(AttestError::kUnexpectedMessage, true);
        return true;
    }
    fail(AttestError::kBadMagic, true);
    return true;
}

bool
HandshakeEndpoint::check_timers()
{
    uint64_t now = platform_->clock().cycles();
    if (now >= deadline_at_) {
        fail(AttestError::kTimeout, true);
        return true;
    }
    if (resend_at_ != ~0ull && now >= resend_at_ &&
        !last_flight_.empty()) {
        transport_.send_frame(last_flight_);
        ++retransmits_;
        resend_at_ = now + config_.retry_cycles;
        static trace::Counter *ctr = &hs_counter("attest.retransmits");
        ctr->add();
        return true;
    }
    return false;
}

bool
HandshakeEndpoint::step()
{
    if (state_ == State::kEstablished || state_ == State::kFailed) {
        // Established endpoints leave buffered/flighted records for
        // the SecureChannel that takes over the transport.
        return false;
    }
    bool progress = transport_.pump();
    for (;;) {
        FrameType type;
        Bytes body;
        AttestError err = AttestError::kNone;
        Transport::Pop pop = transport_.pop_frame(type, body, err);
        if (pop == Transport::Pop::kFrame) {
            progress |= process_frame(type, body);
            if (state_ == State::kEstablished ||
                state_ == State::kFailed) {
                break;
            }
            continue;
        }
        if (pop == Transport::Pop::kError) {
            fail(err, true);
            progress = true;
        }
        break;
    }
    if (state_ != State::kEstablished && state_ != State::kFailed) {
        if (transport_.peer_drained()) {
            fail(AttestError::kClosed, false);
            return true;
        }
        progress |= check_timers();
    }
    return progress;
}

uint64_t
HandshakeEndpoint::next_event_time() const
{
    if (state_ == State::kEstablished || state_ == State::kFailed) {
        return ~0ull;
    }
    uint64_t next = transport_.next_arrival();
    next = std::min(next, resend_at_);
    next = std::min(next, deadline_at_);
    return next;
}

// ---- SecureChannel ----------------------------------------------------

SecureChannel::SecureChannel(RecordCodec codec, Transport *transport)
    : codec_(std::move(codec)), transport_(transport)
{}

bool
SecureChannel::send(const Bytes &payload)
{
    if (failed_ || transport_->closed()) {
        return false;
    }
    transport_->send_frame(codec_.seal(payload));
    return true;
}

void
SecureChannel::poison(AttestError error, bool send_alert)
{
    failed_ = true;
    error_ = error;
    if (send_alert && !transport_->closed()) {
        transport_->send_frame(alert_frame(error));
    }
    transport_->close();
    static trace::Counter *ctr =
        &trace::Registry::instance().counter("attest.channel_poisoned");
    ctr->add();
    OCC_TRACE_INSTANT(kNet, "attest.channel_poisoned",
                      static_cast<uint64_t>(error));
}

SecureChannel::Recv
SecureChannel::recv(Bytes &payload_out)
{
    if (failed_) {
        return Recv::kFailed;
    }
    transport_->pump();
    for (;;) {
        FrameType type;
        Bytes body;
        AttestError err = AttestError::kNone;
        Transport::Pop pop = transport_->pop_frame(type, body, err);
        if (pop == Transport::Pop::kNeedMore) {
            if (transport_->peer_drained()) {
                error_ = AttestError::kClosed;
                return Recv::kClosed;
            }
            return Recv::kNeedMore;
        }
        if (pop == Transport::Pop::kError) {
            poison(err, true);
            return Recv::kFailed;
        }
        switch (type) {
          case FrameType::kRecord: {
            AttestError open_err = codec_.open(body, payload_out);
            if (open_err != AttestError::kNone) {
                // Fail closed: a forged or replayed record poisons
                // the channel rather than being skipped over.
                poison(open_err, true);
                return Recv::kFailed;
            }
            return Recv::kPayload;
          }
          case FrameType::kAlert:
            error_ = AttestError::kPeerAlert;
            failed_ = true;
            transport_->close();
            return Recv::kFailed;
          case FrameType::kClientFinish:
          case FrameType::kServerFinish:
            // Late handshake retransmissions racing the first records
            // on a slow link; the handshake already completed.
            continue;
          default:
            poison(AttestError::kUnexpectedMessage, true);
            return Recv::kFailed;
        }
    }
}

} // namespace occlum::attest
