/**
 * @file
 * Verification policy for attestation evidence: which enclave
 * identities a peer will talk to, and the replay defences around the
 * evidence itself.
 *
 * The shape follows Open Enclave's hostverify flow: the verifier
 * first checks the report is *authentic* (platform report-key MAC),
 * then that the *identity* is acceptable (measurement and signer
 * allow-lists, oesign-style; SVN floor; DEBUG attribute), then that
 * the evidence is *fresh and bound* to this handshake (user_data
 * binds the transcript digest; the peer nonce has never been
 * consumed before).
 *
 * Allow-lists fail closed: an empty measurement or signer list
 * rejects every peer. A service that genuinely wants to accept any
 * identity must say so explicitly via the allow_any_* escape
 * hatches — a misconfigured-empty policy must never become
 * accept-all.
 */
#ifndef OCCLUM_ATTEST_POLICY_H
#define OCCLUM_ATTEST_POLICY_H

#include <set>
#include <vector>

#include "attest/evidence.h"

namespace occlum::attest {

/** Identity acceptance rules for one verifying endpoint. */
struct Policy {
    std::vector<crypto::Sha256Digest> allowed_measurements;
    std::vector<crypto::Sha256Digest> allowed_signers;
    /** Reject peers whose isv_svn is below this floor. */
    uint16_t min_isv_svn = 0;
    /** Accept enclaves with the DEBUG attribute set. */
    bool allow_debug = false;
    /** Explicit escape hatches (empty lists otherwise fail closed). */
    bool allow_any_measurement = false;
    bool allow_any_signer = false;
};

/**
 * Evidence verifier: policy plus a nonce replay cache. One Verifier
 * instance persists for the lifetime of a service endpoint so the
 * cache spans handshakes — replaying a recorded handshake against the
 * same server trips kReplayedNonce even though every MAC in the
 * recording is genuine.
 */
class Verifier
{
  public:
    /** Non-const platform: verification charges enclave cycles. */
    Verifier(sgx::Platform &platform, Policy policy);

    /**
     * Full evidence check, in order (first failure wins, each class
     * with its own code): report MAC, measurement, signer, DEBUG
     * attribute, SVN floor, transcript binding.
     */
    AttestError verify(const Evidence &evidence,
                       const crypto::Sha256Digest &expected_binding) const;

    /**
     * Consume a peer nonce: kReplayedNonce if it was ever consumed
     * before (on this verifier), kNone otherwise. Callers check the
     * nonce *before* burning an EREPORT on the reply.
     */
    AttestError consume_nonce(const Nonce &nonce);

    const Policy &policy() const { return policy_; }
    size_t nonces_seen() const { return seen_nonces_.size(); }

  private:
    sgx::Platform *platform_;
    Policy policy_;
    std::set<Nonce> seen_nonces_;
};

} // namespace occlum::attest

#endif // OCCLUM_ATTEST_POLICY_H
