#include "attest/evidence.h"

#include <cstring>

namespace occlum::attest {

const char *
attest_error_name(AttestError error)
{
    switch (error) {
      case AttestError::kNone: return "none";
      case AttestError::kBadEvidenceEncoding: return "bad-evidence-encoding";
      case AttestError::kBadReportMac: return "bad-report-mac";
      case AttestError::kWrongMeasurement: return "wrong-measurement";
      case AttestError::kWrongSigner: return "wrong-signer";
      case AttestError::kDebugForbidden: return "debug-forbidden";
      case AttestError::kLowSvn: return "low-svn";
      case AttestError::kBadBinding: return "bad-binding";
      case AttestError::kReplayedNonce: return "replayed-nonce";
      case AttestError::kBadMagic: return "bad-magic";
      case AttestError::kBadVersion: return "bad-version";
      case AttestError::kBadLength: return "bad-length";
      case AttestError::kUnexpectedMessage: return "unexpected-message";
      case AttestError::kBadFinishedMac: return "bad-finished-mac";
      case AttestError::kTimeout: return "timeout";
      case AttestError::kPeerAlert: return "peer-alert";
      case AttestError::kClosed: return "closed";
      case AttestError::kBadRecordLength: return "bad-record-length";
      case AttestError::kStaleSeq: return "stale-seq";
      case AttestError::kBadRecordMac: return "bad-record-mac";
    }
    return "unknown";
}

Bytes
Evidence::serialize() const
{
    Bytes wire;
    wire.reserve(kWireSize);
    put_le<uint32_t>(wire, kMagic);
    put_le<uint32_t>(wire, kVersion);
    wire.insert(wire.end(), report.measurement.begin(),
                report.measurement.end());
    wire.insert(wire.end(), report.identity.signer.begin(),
                report.identity.signer.end());
    put_le<uint64_t>(wire, report.identity.attributes);
    put_le<uint16_t>(wire, report.identity.isv_prod_id);
    put_le<uint16_t>(wire, report.identity.isv_svn);
    wire.insert(wire.end(), report.user_data.begin(),
                report.user_data.end());
    wire.insert(wire.end(), report.mac.begin(), report.mac.end());
    OCC_CHECK(wire.size() == kWireSize);
    return wire;
}

AttestError
Evidence::parse(const Bytes &wire, Evidence &out)
{
    if (wire.size() != kWireSize) {
        return AttestError::kBadEvidenceEncoding;
    }
    const uint8_t *p = wire.data();
    if (get_le<uint32_t>(p) != kMagic ||
        get_le<uint32_t>(p + 4) != kVersion) {
        return AttestError::kBadEvidenceEncoding;
    }
    p += 8;
    std::memcpy(out.report.measurement.data(), p, 32);
    p += 32;
    std::memcpy(out.report.identity.signer.data(), p, 32);
    p += 32;
    out.report.identity.attributes = get_le<uint64_t>(p);
    p += 8;
    out.report.identity.isv_prod_id = get_le<uint16_t>(p);
    p += 2;
    out.report.identity.isv_svn = get_le<uint16_t>(p);
    p += 2;
    std::memcpy(out.report.user_data.data(), p, 64);
    p += 64;
    std::memcpy(out.report.mac.data(), p, 32);
    return AttestError::kNone;
}

crypto::Sha256Digest
evidence_binding(const char *role_label,
                 const crypto::Sha256Digest &transcript,
                 const Nonce &fresh_nonce)
{
    crypto::Sha256 hasher;
    hasher.update(reinterpret_cast<const uint8_t *>(role_label),
                  std::strlen(role_label));
    hasher.update(transcript.data(), transcript.size());
    hasher.update(fresh_nonce.data(), fresh_nonce.size());
    return hasher.finish();
}

} // namespace occlum::attest
