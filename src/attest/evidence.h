/**
 * @file
 * Evidence: the serializable attestation blob one enclave sends to a
 * peer. It wraps an sgx::Report whose user_data binds a handshake
 * transcript digest, plus the claimed identity (measurement and
 * oesign-style signer) carried in the report itself.
 *
 * The wire encoding is fixed-size and little-endian; parse() is
 * strict (exact length, magic, version) because evidence arrives from
 * the untrusted network — a malformed blob is an attack, not a
 * formatting choice.
 */
#ifndef OCCLUM_ATTEST_EVIDENCE_H
#define OCCLUM_ATTEST_EVIDENCE_H

#include "attest/attest.h"
#include "base/bytes.h"
#include "sgx/sgx.h"

namespace occlum::attest {

/** An attestation evidence blob. */
struct Evidence {
    static constexpr uint32_t kMagic = 0x31565441; // "ATV1"
    static constexpr uint32_t kVersion = 1;
    /** Serialized size: 8 header + 32 measurement + 44 identity +
     *  64 user_data + 32 mac. */
    static constexpr size_t kWireSize = 180;

    sgx::Report report;

    /** Fixed-size little-endian encoding. */
    Bytes serialize() const;

    /** Strict decode; kBadEvidenceEncoding on any deviation. */
    static AttestError parse(const Bytes &wire, Evidence &out);
};

/**
 * The transcript digest an enclave binds into its evidence:
 * SHA-256(role-label || transcript-hash || responder-nonce). The
 * role label domain-separates client from server evidence; the
 * nonces inside the transcript make the binding fresh per handshake.
 */
crypto::Sha256Digest evidence_binding(const char *role_label,
                                      const crypto::Sha256Digest &transcript,
                                      const Nonce &fresh_nonce);

} // namespace occlum::attest

#endif // OCCLUM_ATTEST_EVIDENCE_H
