/**
 * @file
 * The attested channel's record layer: seq-numbered AES-128-CTR +
 * HMAC-SHA-256 encrypt-then-MAC records over the directional session
 * keys the handshake derived.
 *
 * Wire format of one record frame (little-endian):
 *
 *   u16 magic        kFrameMagic
 *   u8  type         FrameType::kRecord
 *   u8  version      kProtocolVersion
 *   u32 body_len     seq + ciphertext + MAC
 *   u64 seq          explicit sequence number (also the replay gate)
 *   u8  ciphertext[] AES-128-CTR under the direction's enc key
 *   u8  mac[32]      HMAC over header || seq || ciphertext
 *
 * CTR nonce discipline: the direction's 12-byte IV with the record's
 * seq folded into its low 8 bytes, in-record counter starting at 0 —
 * no two records of a direction ever share keystream (records are
 * capped at kMaxFrameBody < 2^32 blocks). The MAC is computed over
 * the *ciphertext* (encrypt-then-MAC) including the header and seq,
 * so truncation, reordering, and header tampering all fail the MAC
 * before any decryption happens.
 *
 * Replay/ordering: the receiver accepts exactly seq == next expected;
 * anything else is kStaleSeq (a delivered-then-replayed record and an
 * out-of-order record are indistinguishable attacks over a reliable
 * stream). MAC failures are kBadRecordMac. Both are fail-closed at
 * the SecureChannel level: the channel poisons itself and refuses
 * further traffic — a record layer that "resyncs" after a forged
 * record would hand the attacker a truncate-and-splice primitive.
 *
 * The cost model charges kAesCyclesPerByte + kHmacCyclesPerByte per
 * payload byte plus kAttestRecordFixedCycles per record, reusing the
 * PR 3 fused-pass constants so the attested channel's simulated
 * throughput is comparable with EncFs's.
 */
#ifndef OCCLUM_ATTEST_CHANNEL_H
#define OCCLUM_ATTEST_CHANNEL_H

#include "attest/attest.h"
#include "base/sim_clock.h"
#include "crypto/aes.h"

namespace occlum::attest {

/**
 * Stateful seal/open codec for one side of an established channel.
 * Pure data-plane object: no transport, no clock-driven control flow
 * — which is what makes the tamper battery able to attack frames
 * byte-by-byte in isolation.
 */
class RecordCodec
{
  public:
    /**
     * `is_server` selects which directional keys seal vs open.
     * `clock` (optional) charges the simulated crypto cost; tests
     * that only care about correctness pass nullptr. `plaintext`
     * keeps the framing and sequence discipline but skips encryption
     * and MACs — the ablation baseline quantifying record-layer
     * overhead, never used by real endpoints.
     */
    RecordCodec(const SessionKeys &keys, bool is_server,
                SimClock *clock = nullptr, bool plaintext = false);

    /** Frame + encrypt + MAC one payload into a full wire frame. */
    Bytes seal(const Bytes &payload);

    /**
     * Verify + decrypt one record body (the frame body after the
     * 8-byte header, which open() re-derives for the MAC). On kNone,
     * `payload_out` holds the plaintext and the expected seq
     * advances; on any error the codec state is unchanged.
     */
    AttestError open(const Bytes &body, Bytes &payload_out);

    uint64_t next_send_seq() const { return send_seq_; }
    uint64_t next_recv_seq() const { return recv_seq_; }
    bool plaintext() const { return plaintext_; }

  private:
    void charge(size_t payload_bytes) const;
    std::array<uint8_t, 12> record_iv(const std::array<uint8_t, 12> &base,
                                      uint64_t seq) const;

    crypto::Aes128 send_cipher_;
    crypto::Aes128 recv_cipher_;
    crypto::HmacKey send_mac_;
    crypto::HmacKey recv_mac_;
    std::array<uint8_t, 12> send_iv_{};
    std::array<uint8_t, 12> recv_iv_{};
    uint64_t send_seq_ = 0;
    uint64_t recv_seq_ = 0;
    SimClock *clock_;
    bool plaintext_;
};

/** Build the 8-byte frame header for `type` with `body_len`. */
Bytes frame_header(FrameType type, uint32_t body_len);

/**
 * Parse an 8-byte header. Returns kNone and fills type/body_len, or
 * the specific reason (kBadMagic / kBadVersion / kBadLength).
 */
AttestError parse_frame_header(const uint8_t *header, FrameType &type,
                               uint32_t &body_len);

} // namespace occlum::attest

#endif // OCCLUM_ATTEST_CHANNEL_H
