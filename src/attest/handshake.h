/**
 * @file
 * The attested-channel bootstrap: a mutual challenge-response
 * handshake over NetSim sockets, after which both peers hold
 * identical directional session keys and talk through SecureChannel's
 * record layer.
 *
 * Message flow (evidence format in evidence.h, frames in channel.h):
 *
 *   client                                server
 *     | -- ClientHello { nonce_c } --------> |  consume nonce_c (replay gate)
 *     | <-- ServerHello { nonce_s,           |  evidence_s binds
 *     |       evidence_s } ----------------- |  SHA256(th_c, nonce_s)
 *     |  verify evidence_s                   |
 *     | -- ClientFinish { evidence_c,        |  verify evidence_c +
 *     |       finished_mac } --------------> |  key-confirmation MAC
 *     | <-- ServerFinish { finished_mac } -- |  server established
 *     |  client established                  |
 *
 * Key schedule: master = HMAC(platform_channel_key,
 * "master" || th_cs || nonce_c || nonce_s) where the platform channel
 * key comes from the EGETKEY-shaped sgx::Enclave::derive_platform_key
 * — both enclaves on one platform derive it, the untrusted host never
 * can. Directional enc/mac/iv keys expand from the master via
 * HMAC labels. The Finished MACs confirm both sides derived the same
 * master over the same transcript: a cross-platform peer (different
 * report key) or a transcript-splicing attacker fails key
 * confirmation even when its evidence parses.
 *
 * Fault behaviour (exercised by ci_faults.sh plan 5): flights are
 * retransmitted after kAttestRetryCycles (idempotently — a duplicate
 * ClientHello with identical bytes gets the stored ServerHello back,
 * not a fresh nonce), and the whole handshake fails *closed* at
 * kAttestHandshakeDeadlineCycles: the endpoint sends an Alert, closes
 * the connection, and never sits half-open holding keys.
 */
#ifndef OCCLUM_ATTEST_HANDSHAKE_H
#define OCCLUM_ATTEST_HANDSHAKE_H

#include <memory>

#include "attest/channel.h"
#include "attest/policy.h"
#include "base/rng.h"
#include "host/host.h"

namespace occlum::attest {

/**
 * Byte-stream framing over one side of a NetSim connection. Owns the
 * reassembly buffer (faultsim's short reads hand frames over in
 * arbitrary slivers) and charges one OCALL round trip per network
 * operation, the same cost the LibOS charges SIP socket syscalls.
 */
class Transport
{
  public:
    Transport(host::NetSim &net, host::NetSim::Connection *conn,
              bool at_server, SimClock &clock,
              uint64_t ocall_cycles = CostModel::kEexitCycles +
                                      CostModel::kEenterCycles);

    /** Ship one wire frame (header already included). */
    void send_frame(const Bytes &frame);

    /** Drain arrived bytes into the buffer; true if bytes landed. */
    bool pump();

    enum class Pop : uint8_t { kFrame, kNeedMore, kError };

    /**
     * Pop one complete frame off the buffer. kFrame fills type/body;
     * kNeedMore means a partial frame is still in flight; kError sets
     * `err` (framing violations are fail-closed, the buffer is
     * poisoned).
     */
    Pop pop_frame(FrameType &type, Bytes &body, AttestError &err);

    /** Earliest in-flight arrival toward this side (~0 if none). */
    uint64_t next_arrival() const;

    /** True if the peer closed and everything sent was consumed. */
    bool peer_drained() const;

    void close();
    bool closed() const { return closed_; }
    host::NetSim::Connection *connection() { return conn_; }

  private:
    host::NetSim *net_;
    host::NetSim::Connection *conn_;
    bool at_server_;
    SimClock *clock_;
    uint64_t ocall_cycles_;
    Bytes rx_;
    size_t rx_pos_ = 0;
    bool closed_ = false;
    bool poisoned_ = false;
    AttestError poison_error_ = AttestError::kNone;
};

/** Tuning knobs for one handshake endpoint. */
struct EndpointConfig {
    bool is_server = false;
    /** Seed for this endpoint's nonce stream (deterministic). */
    uint64_t nonce_seed = 1;
    uint64_t retry_cycles = CostModel::kAttestRetryCycles;
    uint64_t deadline_cycles = CostModel::kAttestHandshakeDeadlineCycles;
};

/**
 * One side of the handshake, driven as a non-blocking state machine:
 * the owner calls step() whenever simulated time advanced or traffic
 * may have arrived, and consults next_event_time() to know when the
 * endpoint next needs the clock (arrival, retransmit timer, or the
 * fail-closed deadline).
 */
class HandshakeEndpoint
{
  public:
    enum class State : uint8_t {
        kAwaitServerHello,  // client: hello sent
        kAwaitClientHello,  // server: listening
        kAwaitClientFinish, // server: hello sent
        kAwaitServerFinish, // client: finish sent
        kEstablished,
        kFailed,
    };

    HandshakeEndpoint(sgx::Platform &platform, sgx::Enclave &enclave,
                      Verifier &verifier, Transport transport,
                      EndpointConfig config);

    /** One pump-and-process pass; true if any progress was made. */
    bool step();

    /** Next cycle at which step() could do something (~0 if done). */
    uint64_t next_event_time() const;

    State state() const { return state_; }
    bool established() const { return state_ == State::kEstablished; }
    bool failed() const { return state_ == State::kFailed; }
    AttestError error() const { return error_; }

    /** Valid once established. */
    const SessionKeys &keys() const;
    const Evidence &peer_evidence() const { return peer_evidence_; }

    /** Simulated cycles from construction to establishment. */
    uint64_t handshake_cycles() const { return handshake_cycles_; }
    uint64_t retransmits() const { return retransmits_; }

    Transport &transport() { return transport_; }

  private:
    bool process_frame(FrameType type, const Bytes &body);
    bool client_on_server_hello(const Bytes &body);
    bool server_on_client_hello(const Bytes &frame_body);
    bool server_on_client_finish(const Bytes &body);
    bool client_on_server_finish(const Bytes &body);
    bool check_timers();
    void derive_session(const crypto::Sha256Digest &th_cs);
    void send_flight(const Bytes &frame);
    void fail(AttestError error, bool send_alert);
    Nonce make_nonce();

    sgx::Platform *platform_;
    sgx::Enclave *enclave_;
    Verifier *verifier_;
    Transport transport_;
    EndpointConfig config_;
    Rng nonce_rng_;

    State state_;
    AttestError error_ = AttestError::kNone;
    Nonce nonce_c_{};
    Nonce nonce_s_{};
    /** Transcript pieces (frame bytes; th_* are their digests). */
    Bytes client_hello_frame_;
    Bytes server_hello_frame_;
    crypto::Sha256Digest th_cs_{};
    crypto::Sha256Digest master_{};
    /** Digest of the ClientFinish evidence (both Finished MACs). */
    crypto::Sha256Digest finish_ev_digest_{};
    SessionKeys keys_{};
    Evidence peer_evidence_{};
    /** Last flight sent, for idempotent retransmission. */
    Bytes last_flight_;
    uint64_t resend_at_ = ~0ull;
    uint64_t deadline_at_ = ~0ull;
    uint64_t start_cycles_ = 0;
    uint64_t handshake_cycles_ = 0;
    uint64_t retransmits_ = 0;
};

/**
 * An established channel: RecordCodec over a Transport, fail-closed.
 * Any record-layer violation (bad MAC, stale sequence) poisons the
 * channel: an Alert goes out, the connection closes, and both send()
 * and recv() refuse further traffic — a corrupted or replayed record
 * is never delivered and never resynchronized over.
 */
class SecureChannel
{
  public:
    SecureChannel(RecordCodec codec, Transport *transport);

    enum class Recv : uint8_t { kPayload, kNeedMore, kClosed, kFailed };

    /** Seal + ship one payload; false if the channel is poisoned. */
    bool send(const Bytes &payload);

    /** Pump the transport and try to decode one payload. */
    Recv recv(Bytes &payload_out);

    bool failed() const { return failed_; }
    AttestError error() const { return error_; }
    uint64_t next_arrival() const { return transport_->next_arrival(); }
    Transport &transport() { return *transport_; }
    RecordCodec &codec() { return codec_; }

  private:
    void poison(AttestError error, bool send_alert);

    RecordCodec codec_;
    Transport *transport_;
    bool failed_ = false;
    AttestError error_ = AttestError::kNone;
};

} // namespace occlum::attest

#endif // OCCLUM_ATTEST_HANDSHAKE_H
