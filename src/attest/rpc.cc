#include "attest/rpc.h"

namespace occlum::attest {

namespace {

constexpr size_t kRpcHeaderSize = 8;

Bytes
encode(uint32_t a, uint32_t b, const Bytes &payload)
{
    Bytes wire;
    wire.reserve(kRpcHeaderSize + payload.size());
    put_le<uint32_t>(wire, a);
    put_le<uint32_t>(wire, b);
    wire.insert(wire.end(), payload.begin(), payload.end());
    return wire;
}

} // namespace

Bytes
rpc_encode_request(uint32_t id, uint32_t op, const Bytes &payload)
{
    return encode(id, op, payload);
}

Bytes
rpc_encode_response(uint32_t id, uint32_t status, const Bytes &payload)
{
    return encode(id, status, payload);
}

AttestError
rpc_decode_request(const Bytes &wire, RpcRequest &out)
{
    if (wire.size() < kRpcHeaderSize) {
        return AttestError::kBadLength;
    }
    out.id = get_le<uint32_t>(wire.data());
    out.op = get_le<uint32_t>(wire.data() + 4);
    out.payload.assign(wire.begin() + kRpcHeaderSize, wire.end());
    return AttestError::kNone;
}

AttestError
rpc_decode_response(const Bytes &wire, RpcResponse &out)
{
    if (wire.size() < kRpcHeaderSize) {
        return AttestError::kBadLength;
    }
    out.id = get_le<uint32_t>(wire.data());
    out.status = get_le<uint32_t>(wire.data() + 4);
    out.payload.assign(wire.begin() + kRpcHeaderSize, wire.end());
    return AttestError::kNone;
}

// ---- RpcServer --------------------------------------------------------

RpcServer::RpcServer(SecureChannel channel, Handler handler)
    : channel_(std::move(channel)), handler_(std::move(handler))
{}

bool
RpcServer::step()
{
    if (failed() || done_) {
        return false;
    }
    bool progress = false;
    for (;;) {
        Bytes payload;
        SecureChannel::Recv recv = channel_.recv(payload);
        if (recv == SecureChannel::Recv::kNeedMore) {
            break;
        }
        if (recv == SecureChannel::Recv::kClosed) {
            done_ = true;
            break;
        }
        if (recv == SecureChannel::Recv::kFailed) {
            break;
        }
        progress = true;
        RpcRequest request;
        if (rpc_decode_request(payload, request) != AttestError::kNone) {
            // Authenticated-but-malformed payload: an application bug,
            // not an attack the record layer missed. Report and move
            // on rather than poisoning the channel.
            channel_.send(rpc_encode_response(
                0, static_cast<uint32_t>(ErrorCode::kInval), {}));
            continue;
        }
        Result<Bytes> result = handler_(request.op, request.payload);
        if (result.ok()) {
            channel_.send(rpc_encode_response(request.id, 0,
                                              result.value()));
        } else {
            channel_.send(rpc_encode_response(
                request.id,
                static_cast<uint32_t>(result.error().code), {}));
        }
        ++requests_served_;
    }
    return progress;
}

// ---- RpcClient --------------------------------------------------------

RpcClient::RpcClient(SecureChannel channel) : channel_(std::move(channel))
{}

uint32_t
RpcClient::call(uint32_t op, const Bytes &payload)
{
    if (channel_.failed()) {
        return 0;
    }
    uint32_t id = next_id_++;
    if (!channel_.send(rpc_encode_request(id, op, payload))) {
        return 0;
    }
    return id;
}

RpcClient::Poll
RpcClient::poll(RpcResponse &out)
{
    Bytes payload;
    switch (channel_.recv(payload)) {
      case SecureChannel::Recv::kPayload:
        break;
      case SecureChannel::Recv::kNeedMore:
        return Poll::kNeedMore;
      case SecureChannel::Recv::kClosed:
        return Poll::kClosed;
      case SecureChannel::Recv::kFailed:
        return Poll::kFailed;
    }
    if (rpc_decode_response(payload, out) != AttestError::kNone) {
        return Poll::kFailed;
    }
    return Poll::kResponse;
}

} // namespace occlum::attest
