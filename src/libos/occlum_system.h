/**
 * @file
 * The Occlum LibOS (paper §6): one enclave, one LibOS instance, many
 * SFI-Isolated Processes.
 *
 * At construction the system creates a single SGX enclave and
 * preallocates N fixed-geometry MMDSFI domain slots inside it (the
 * SGX 1.0 workaround: pages cannot be added after EINIT). spawn()
 * loads a *verifier-signed* OELF image into a free slot — rewriting
 * its cfi_labels to the new domain ID, injecting the syscall
 * trampoline, and initializing bnd0/bnd1 — at a cost proportional to
 * the binary size (no enclave creation, no attestation, no state
 * copy: the SIP advantage of paper §3.2).
 *
 * LibOS syscalls are function calls through the trampoline; on return
 * the LibOS checks that the return target is a cfi_label of the
 * calling SIP (paper §6, "Syscall interface"). The file system is the
 * writable EncFs with a single page cache shared by all SIPs, plus
 * /dev and /proc special files implemented entirely inside the
 * enclave. Network operations are delegated to the host and charged
 * an OCALL per operation (paper §6, "Networking").
 */
#ifndef OCCLUM_LIBOS_OCCLUM_SYSTEM_H
#define OCCLUM_LIBOS_OCCLUM_SYSTEM_H

#include "libos/encfs.h"
#include "oskit/kernel.h"
#include "sgx/sgx.h"

namespace occlum::libos {

/** A file opened on the encrypted FS. */
class EncFile : public oskit::FileObject
{
  public:
    EncFile(EncFs *fs, uint32_t inode, uint64_t flags)
        : fs_(fs), inode_(inode), flags_(flags)
    {
        if (flags_ & abi::kOpenAppend) {
            auto size = fs_->file_size(inode_);
            offset_ = size.ok() ? size.value() : 0;
        }
    }

    oskit::IoResult read(oskit::Kernel &kernel, uint8_t *buf,
                         uint64_t len) override;
    oskit::IoResult write(oskit::Kernel &kernel, const uint8_t *buf,
                          uint64_t len) override;
    Result<int64_t> seek(int64_t offset, int whence) override;
    int64_t size() const override;
    Status fsync(oskit::Kernel &kernel) override;

  private:
    EncFs *fs_;
    uint32_t inode_;
    uint64_t flags_;
    uint64_t offset_ = 0;
};

/** /dev/null, /dev/zero, and /proc text files. */
class DevFile : public oskit::FileObject
{
  public:
    enum class Kind { kNull, kZero, kProcText };

    DevFile(Kind kind, std::string text = {})
        : kind_(kind), text_(std::move(text))
    {}

    oskit::IoResult read(oskit::Kernel &kernel, uint8_t *buf,
                         uint64_t len) override;
    oskit::IoResult write(oskit::Kernel &kernel, const uint8_t *buf,
                          uint64_t len) override;

  private:
    Kind kind_;
    std::string text_;
    uint64_t offset_ = 0;
};

/** The Occlum system: kernel personality + enclave + FS. */
class OcclumSystem : public oskit::Kernel
{
  public:
    struct Config {
        int num_slots = 16;
        /** Must equal the binaries' link-time code_reserve. */
        uint64_t slot_code_size = 1 << 20;
        uint64_t slot_data_size = 6 << 20;
        uint64_t enclave_base = 0x100000000ull;
        uint64_t fs_blocks = 1 << 14; // 64 MiB device
        crypto::Key128 verifier_key{};
        crypto::Key128 fs_key{};
        /**
         * SIGSTRUCT-shaped launch identity reported by EREPORT (the
         * signer digest is derived from verifier_key, oesign-style:
         * MRSIGNER = hash of the signing key). Attestation policies
         * in src/attest match on these.
         */
        uint16_t isv_prod_id = 1;
        uint16_t isv_svn = 1;
        /** Launch with the DEBUG attribute (verifiers reject it). */
        bool debug_enclave = false;
        bool check_signatures = true;
        size_t fs_cache_blocks = 2048;
        /** EncFs sequential readahead depth (0 disables). */
        size_t fs_readahead_blocks = 8;
        /**
         * Mount this (persistent) device instead of creating a fresh
         * one — how a restarted system finds the data its predecessor
         * wrote. Not owned; must outlive the system.
         */
        host::BlockDevice *external_device = nullptr;
        /** mkfs the device (true) or mount what is on it (false). */
        bool format_device = true;
        /**
         * Simulated cores (TCS threads the scheduler dispatches on).
         * 0 = take OCCLUM_CORES from the environment (default 1).
         * Tests that assert exact interleavings pin this to 1.
         */
        int cores = 0;
    };

    OcclumSystem(sgx::Platform &platform, host::HostFileStore &binaries,
                 Config config, host::NetSim *net = nullptr);

    EncFs &fs() { return *encfs_; }
    sgx::Enclave &enclave() { return *enclave_; }
    host::BlockDevice &device() { return *active_device_; }
    const Config &config() const { return config_; }

    /**
     * Result of the constructor's mkfs/mount. A remount of a device
     * an injected fault corrupted must fail *cleanly* (kIo here, FS
     * operations erroring) rather than abort the enclave.
     */
    const Status &fs_status() const { return fs_status_; }

    /** Slots currently free (for tests / capacity checks). */
    int free_slots() const;

    uint64_t net_op_cost() const override
    {
        return CostModel::kEexitCycles + CostModel::kEenterCycles;
    }

  protected:
    Result<std::unique_ptr<oskit::Process>>
    create_process(const std::string &path,
                   const std::vector<std::string> &argv) override;
    void destroy_process(oskit::Process &proc) override;

    uint64_t
    syscall_cost() const override
    {
        return CostModel::kLibosSyscallCycles;
    }

    Result<oskit::FilePtr> fs_open(oskit::Process &proc,
                                   const std::string &path,
                                   uint64_t flags) override;
    Status fs_unlink(const std::string &path) override;
    Status fs_mkdir(const std::string &path) override;

    Status validate_syscall_return(oskit::Process &proc,
                                   uint64_t target) override;
    Status validate_user_range(oskit::Process &proc, uint64_t addr,
                               uint64_t len) override;

    /**
     * Injected asynchronous enclave exit (src/faultsim, aex_every):
     * save the interrupted SIP's state to the SSA, scrub the live
     * registers as the hardware would, and ERESUME — a genuine
     * round trip, so a broken SSA save/restore corrupts the SIP.
     */
    void on_injected_aex(oskit::Process &proc) override;

    uint64_t
    mmap_zero_cost(uint64_t len) const override
    {
        // The LibOS zero-fills anonymous mappings manually (paper §6).
        return static_cast<uint64_t>(
            len * CostModel::kMemcpyCyclesPerByte);
    }

  private:
    struct Slot {
        uint64_t base = 0;
        bool used = false;
    };

    uint64_t slot_span() const;

    sgx::Platform *platform_;
    Config config_;
    std::unique_ptr<sgx::Enclave> enclave_;
    std::unique_ptr<host::BlockDevice> device_;
    /** The device in use: owned device_ or config.external_device. */
    host::BlockDevice *active_device_ = nullptr;
    std::unique_ptr<EncFs> encfs_;
    Status fs_status_;
    std::vector<Slot> slots_;
    uint32_t next_domain_id_ = 1;
    /**
     * One TCS (one SSA frame, NSSA=1) per simulated core, rebound to
     * the interrupted SIP's CPU when an injected AEX lands on that
     * core — the paper's deployment shape: many SIPs scheduled over a
     * fixed pool of enclave threads.
     */
    std::vector<std::unique_ptr<sgx::SgxThread>> core_threads_;
};

} // namespace occlum::libos

#endif // OCCLUM_LIBOS_OCCLUM_SYSTEM_H
