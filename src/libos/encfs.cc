#include "libos/encfs.h"

#include <algorithm>
#include <cstring>

#include "base/cost_model.h"
#include "base/log.h"
#include "trace/trace.h"

namespace occlum::libos {

namespace {

constexpr uint32_t kIndirectEntries =
    EncFs::kBlockSize / sizeof(uint32_t);

/**
 * Chunk size for the fused encrypt+MAC / decrypt+verify passes: big
 * enough to amortize call overhead, small enough that a chunk of
 * ciphertext is still hot in L1 when the second primitive touches it.
 * Must be a multiple of both the AES block (16) and SHA-256 block (64).
 */
constexpr size_t kCryptoChunk = 1024;

} // namespace

EncFs::EncFs(host::BlockDevice &device, SimClock &clock, Config config)
    : device_(&device), clock_(&clock), config_(config),
      cipher_(config.key),
      mac_key_(config.key.data(), config.key.size())
{
    // Geometry: MAC table sized to cover every payload block.
    uint64_t total = device.block_count();
    uint32_t records_per_block = kBlockSize / kMacRecordSize;
    // mac_blocks * records_per_block >= total - mac_blocks
    mac_blocks_ = static_cast<uint32_t>(
        (total + records_per_block) / (records_per_block + 1));
    if (mac_blocks_ == 0) {
        mac_blocks_ = 1;
    }
    super_block_ = mac_blocks_;
    inode_table_start_ = super_block_ + 1;
    inode_blocks_ =
        (config_.inode_count * kInodeSize + kBlockSize - 1) / kBlockSize;
    bitmap_start_ = inode_table_start_ + inode_blocks_;
    uint64_t data_candidates = total - bitmap_start_;
    bitmap_blocks_ = static_cast<uint32_t>(
        (data_candidates + kBlockSize * 8 - 1) / (kBlockSize * 8));
    if (bitmap_blocks_ == 0) {
        bitmap_blocks_ = 1;
    }
    data_start_ = bitmap_start_ + bitmap_blocks_;
    OCC_CHECK_MSG(data_start_ < total, "device too small for EncFs");

    auto &registry = trace::Registry::instance();
    ctr_cache_hits_ = &registry.counter("encfs.cache_hits");
    ctr_cache_misses_ = &registry.counter("encfs.cache_misses");
    ctr_dev_reads_ = &registry.counter("encfs.dev_reads");
    ctr_dev_writes_ = &registry.counter("encfs.dev_writes");
    ctr_evictions_ = &registry.counter("encfs.evictions");
    ctr_readahead_ = &registry.counter("encfs.readahead_blocks");
    ctr_io_retries_ = &registry.counter("encfs.io_retries");
}

// ---------------------------------------------------------------------
// device layer (bounded retry/backoff, DESIGN.md "Fault model")
// ---------------------------------------------------------------------

Status
EncFs::dev_read(uint32_t block, Bytes &out)
{
    OCC_TRACE_SPAN(kOcall, "encfs.dev_read", block);
    ctr_dev_reads_->add();
    uint64_t backoff = CostModel::kIoRetryBackoffCycles;
    for (uint32_t attempt = 0;; ++attempt) {
        Status status = device_->read_block(block, out);
        charge_ocall();
        if (status.ok() || status.code() != ErrorCode::kAgain) {
            return status;
        }
        if (attempt == CostModel::kIoRetryLimit) {
            return Status(ErrorCode::kIo,
                          "EncFs: device read still failing after " +
                              std::to_string(attempt) + " retries");
        }
        // Transient host fault: back off (charged to the shared
        // clock) and re-issue the OCALL.
        ctr_io_retries_->add();
        clock_->advance(backoff);
        backoff *= 2;
    }
}

Status
EncFs::dev_write(uint32_t block, const Bytes &in)
{
    OCC_TRACE_SPAN(kOcall, "encfs.dev_write", block);
    ctr_dev_writes_->add();
    uint64_t backoff = CostModel::kIoRetryBackoffCycles;
    for (uint32_t attempt = 0;; ++attempt) {
        Status status = device_->write_block(block, in);
        charge_ocall();
        if (status.ok() || status.code() != ErrorCode::kAgain) {
            return status;
        }
        if (attempt == CostModel::kIoRetryLimit) {
            return Status(ErrorCode::kIo,
                          "EncFs: device write still failing after " +
                              std::to_string(attempt) + " retries");
        }
        ctr_io_retries_->add();
        clock_->advance(backoff);
        backoff *= 2;
    }
}

void
EncFs::charge_crypto(uint64_t bytes)
{
    OCC_TRACE_SPAN(kFs, "encfs.crypto", bytes);
    clock_->advance(static_cast<uint64_t>(
        bytes * (CostModel::kAesCyclesPerByte +
                 CostModel::kHmacCyclesPerByte)));
}

void
EncFs::charge_ocall()
{
    clock_->advance(config_.ocall_cycles);
}

std::array<uint8_t, 12>
EncFs::ctr_iv(uint32_t block, uint64_t counter)
{
    // LE32(block) || LE64(counter): every (block, counter) pair gets
    // a unique 96-bit nonce, and the 32-bit in-call counter word
    // (always started at 0) only ever counts the 256 AES blocks of
    // one 4 KiB payload. The previous packing dropped the counter's
    // high 32 bits into the in-call counter word, so counters 2^32
    // apart shared a nonce and produced overlapping keystream.
    std::array<uint8_t, 12> iv{};
    set_le<uint32_t>(iv.data(), block);
    set_le<uint64_t>(iv.data() + 4, counter);
    return iv;
}

crypto::Sha256Digest
EncFs::encrypt_mac(uint32_t block, uint64_t counter, const Bytes &plain,
                   Bytes &ciphertext) const
{
    ciphertext.resize(plain.size());
    auto iv = ctr_iv(block, counter);
    crypto::Sha256 h = mac_key_.begin();
    for (size_t off = 0; off < plain.size(); off += kCryptoChunk) {
        size_t n = std::min(kCryptoChunk, plain.size() - off);
        cipher_.ctr_crypt(iv, static_cast<uint32_t>(off / 16),
                          plain.data() + off, ciphertext.data() + off,
                          n);
        h.update(ciphertext.data() + off, n);
    }
    uint8_t trailer[12];
    set_le<uint32_t>(trailer, block);
    set_le<uint64_t>(trailer + 4, counter);
    h.update(trailer, sizeof(trailer));
    return mac_key_.finish(h);
}

bool
EncFs::decrypt_verify(uint32_t block, const MacRecord &record,
                      const Bytes &ciphertext, Bytes &plain) const
{
    plain.resize(ciphertext.size());
    auto iv = ctr_iv(block, record.counter);
    crypto::Sha256 h = mac_key_.begin();
    for (size_t off = 0; off < ciphertext.size(); off += kCryptoChunk) {
        size_t n = std::min(kCryptoChunk, ciphertext.size() - off);
        h.update(ciphertext.data() + off, n);
        cipher_.ctr_crypt(iv, static_cast<uint32_t>(off / 16),
                          ciphertext.data() + off, plain.data() + off,
                          n);
    }
    uint8_t trailer[12];
    set_le<uint32_t>(trailer, block);
    set_le<uint64_t>(trailer + 4, record.counter);
    h.update(trailer, sizeof(trailer));
    return crypto::digest_equal(mac_key_.finish(h), record.mac);
}

// ---------------------------------------------------------------------
// MAC table
// ---------------------------------------------------------------------

Status
EncFs::load_mac_table()
{
    uint64_t total = device_->block_count();
    mac_table_.assign(total, MacRecord{});
    mac_block_dirty_.assign(mac_blocks_, false);
    uint32_t records_per_block = kBlockSize / kMacRecordSize;
    for (uint32_t mb = 0; mb < mac_blocks_; ++mb) {
        Bytes raw;
        OCC_RETURN_IF_ERROR(dev_read(mb, raw));
        for (uint32_t r = 0; r < records_per_block; ++r) {
            uint64_t index =
                static_cast<uint64_t>(mb) * records_per_block + r +
                mac_blocks_;
            if (index >= total) {
                break;
            }
            const uint8_t *rec = raw.data() + r * kMacRecordSize;
            MacRecord record;
            std::memcpy(record.mac.data(), rec, 32);
            record.counter = get_le<uint64_t>(rec + 32);
            mac_table_[index] = record;
        }
    }
    return Status();
}

Status
EncFs::flush_mac_table()
{
    uint32_t records_per_block = kBlockSize / kMacRecordSize;
    uint64_t total = device_->block_count();
    for (uint32_t mb = 0; mb < mac_blocks_; ++mb) {
        if (!mac_block_dirty_[mb]) {
            continue;
        }
        Bytes raw(kBlockSize, 0);
        for (uint32_t r = 0; r < records_per_block; ++r) {
            uint64_t index =
                static_cast<uint64_t>(mb) * records_per_block + r +
                mac_blocks_;
            if (index >= total) {
                break;
            }
            uint8_t *rec = raw.data() + r * kMacRecordSize;
            std::memcpy(rec, mac_table_[index].mac.data(), 32);
            set_le<uint64_t>(rec + 32, mac_table_[index].counter);
        }
        OCC_RETURN_IF_ERROR(dev_write(mb, raw));
        mac_block_dirty_[mb] = false;
    }
    return Status();
}

// ---------------------------------------------------------------------
// block cache
// ---------------------------------------------------------------------

Result<Bytes *>
EncFs::get_block(uint32_t block, bool for_write)
{
    OCC_CHECK_MSG(block >= mac_blocks_ &&
                  block < device_->block_count(),
                  "payload block out of range");
    auto it = cache_.find(block);
    if (it != cache_.end()) {
        ++cache_hits_;
        ctr_cache_hits_->add();
        if (it->second.lru_it != lru_.begin()) {
            lru_.splice(lru_.begin(), lru_, it->second.lru_it);
        }
        if (for_write) {
            it->second.dirty = true;
        }
        return &it->second.data;
    }
    ++cache_misses_;
    ctr_cache_misses_->add();
    OCC_RETURN_IF_ERROR(evict_if_needed());

    const MacRecord &record = mac_table_[block];
    CacheEntry entry;
    entry.dirty = for_write;
    if (record.counter == 0) {
        // Never written: logically zero, nothing to fetch or verify.
        entry.data.assign(kBlockSize, 0);
    } else {
        Bytes ciphertext;
        OCC_RETURN_IF_ERROR(dev_read(block, ciphertext));
        bool ok = decrypt_verify(block, record, ciphertext, entry.data);
        charge_crypto(kBlockSize);
        if (!ok) {
            return Error(ErrorCode::kIo,
                         "EncFs: integrity check failed on block " +
                             std::to_string(block));
        }
    }
    lru_.push_front(block);
    entry.lru_it = lru_.begin();
    auto [pos, inserted] = cache_.emplace(block, std::move(entry));
    OCC_CHECK(inserted);
    return &pos->second.data;
}

Status
EncFs::flush_entry(uint32_t block, CacheEntry &entry)
{
    if (!entry.dirty) {
        return Status();
    }
    MacRecord &record = mac_table_[block];
    const MacRecord saved = record;
    ++record.counter;
    Bytes ciphertext;
    record.mac = encrypt_mac(block, record.counter, entry.data,
                             ciphertext);
    charge_crypto(kBlockSize);
    Status wrote = dev_write(block, ciphertext);
    if (!wrote.ok()) {
        // The device still holds the old ciphertext: roll the MAC
        // record back so an uncached re-read of this block still
        // verifies against what is actually on disk, leave the entry
        // dirty so the data survives for a later sync, and surface
        // the error. (Previously the counter/MAC advanced before the
        // write with no rollback: one failed flush left the in-memory
        // MAC table disagreeing with the device forever.)
        record = saved;
        return wrote;
    }
    uint32_t records_per_block = kBlockSize / kMacRecordSize;
    mac_block_dirty_[(block - mac_blocks_) / records_per_block] = true;
    entry.dirty = false;
    return Status();
}

Status
EncFs::evict_if_needed()
{
    // O(1) per eviction: the LRU victim is the back of the list (the
    // old path scanned the whole map per eviction — quadratic under
    // cache pressure).
    while (cache_.size() >= config_.cache_blocks) {
        uint32_t victim = lru_.back();
        auto it = cache_.find(victim);
        OCC_CHECK(it != cache_.end());
        OCC_RETURN_IF_ERROR(flush_entry(victim, it->second));
        lru_.pop_back();
        cache_.erase(it);
        ++evictions_;
        ctr_evictions_->add();
    }
    return Status();
}

Status
EncFs::sync()
{
    // Flush in ascending block order: the hash map iterates in an
    // arbitrary (but deterministic) order, and keeping the device
    // write sequence sorted preserves the exact trace/device behaviour
    // of the previous std::map cache.
    std::vector<uint32_t> blocks;
    blocks.reserve(cache_.size());
    for (auto &[block, entry] : cache_) {
        blocks.push_back(block);
    }
    std::sort(blocks.begin(), blocks.end());
    for (uint32_t block : blocks) {
        OCC_RETURN_IF_ERROR(flush_entry(block, cache_.at(block)));
    }
    return flush_mac_table();
}

// ---------------------------------------------------------------------
// format / mount
// ---------------------------------------------------------------------

Status
EncFs::mkfs()
{
    mac_table_.assign(device_->block_count(), MacRecord{});
    mac_block_dirty_.assign(mac_blocks_, true);
    cache_.clear();
    lru_.clear();
    mounted_ = true;

    // Superblock.
    Bytes *super = nullptr;
    {
        auto sb = get_block(super_block_, true);
        if (!sb.ok()) return sb.error();
        super = sb.take();
    }
    std::memset(super->data(), 0, kBlockSize);
    set_le<uint32_t>(super->data(), kMagic);
    set_le<uint32_t>(super->data() + 4, config_.inode_count);

    // Root directory: inode 0.
    Inode root;
    root.type = InodeType::kDir;
    root.size = 0;
    for (auto &d : root.direct) {
        d = kNoBlock;
    }
    root.indirect = kNoBlock;
    // Clear the full inode table + bitmap first.
    for (uint32_t b = inode_table_start_; b < data_start_; ++b) {
        auto blk = get_block(b, true);
        if (!blk.ok()) return blk.error();
        std::memset(blk.value()->data(), 0, kBlockSize);
    }
    OCC_RETURN_IF_ERROR(store_inode(0, root));
    root_inode_ = 0;
    return sync();
}

Status
EncFs::mount()
{
    OCC_RETURN_IF_ERROR(load_mac_table());
    cache_.clear();
    lru_.clear();
    mounted_ = true;
    auto sb = get_block(super_block_, false);
    if (!sb.ok()) {
        return sb.error();
    }
    if (get_le<uint32_t>(sb.value()->data()) != kMagic) {
        mounted_ = false;
        return Status(ErrorCode::kInval, "EncFs: bad superblock magic");
    }
    root_inode_ = 0;
    return Status();
}

// ---------------------------------------------------------------------
// allocation
// ---------------------------------------------------------------------

Result<uint32_t>
EncFs::alloc_block()
{
    uint64_t data_blocks = device_->block_count() - data_start_;
    for (uint32_t bb = 0; bb < bitmap_blocks_; ++bb) {
        auto blk = get_block(bitmap_start_ + bb, false);
        if (!blk.ok()) return blk.error();
        Bytes &bits = *blk.value();
        for (uint32_t byte = 0; byte < kBlockSize; ++byte) {
            if (bits[byte] == 0xff) {
                continue;
            }
            for (int bit = 0; bit < 8; ++bit) {
                uint64_t index =
                    (static_cast<uint64_t>(bb) * kBlockSize + byte) * 8 +
                    bit;
                if (index >= data_blocks) {
                    return Error(ErrorCode::kNoSpc, "EncFs full");
                }
                if (!(bits[byte] & (1 << bit))) {
                    auto wblk = get_block(bitmap_start_ + bb, true);
                    if (!wblk.ok()) return wblk.error();
                    (*wblk.value())[byte] |=
                        static_cast<uint8_t>(1 << bit);
                    return static_cast<uint32_t>(data_start_ + index);
                }
            }
        }
    }
    return Error(ErrorCode::kNoSpc, "EncFs full");
}

Status
EncFs::free_block(uint32_t block)
{
    if (block < data_start_ || block >= device_->block_count()) {
        return Status(ErrorCode::kInval, "free of non-data block");
    }
    uint64_t index = block - data_start_;
    uint32_t bb = static_cast<uint32_t>(index / (kBlockSize * 8));
    auto blk = get_block(bitmap_start_ + bb, true);
    if (!blk.ok()) return blk.error();
    uint64_t in_block = index % (kBlockSize * 8);
    (*blk.value())[in_block / 8] &=
        static_cast<uint8_t>(~(1 << (in_block % 8)));
    return Status();
}

Result<uint32_t>
EncFs::alloc_inode(InodeType type)
{
    for (uint32_t i = 0; i < config_.inode_count; ++i) {
        auto inode = load_inode(i);
        if (!inode.ok()) return inode.error();
        if (inode.value().type == InodeType::kFree &&
            (i != root_inode_)) {
            Inode fresh;
            fresh.type = type;
            fresh.size = 0;
            for (auto &d : fresh.direct) {
                d = kNoBlock;
            }
            fresh.indirect = kNoBlock;
            OCC_RETURN_IF_ERROR(store_inode(i, fresh));
            return i;
        }
    }
    return Error(ErrorCode::kNoSpc, "out of inodes");
}

// ---------------------------------------------------------------------
// inodes
// ---------------------------------------------------------------------

Result<EncFs::Inode>
EncFs::load_inode(uint32_t index)
{
    if (index >= config_.inode_count) {
        return Error(ErrorCode::kInval, "bad inode index");
    }
    uint32_t per_block = kBlockSize / kInodeSize;
    auto blk = get_block(inode_table_start_ + index / per_block, false);
    if (!blk.ok()) return blk.error();
    const uint8_t *raw =
        blk.value()->data() + (index % per_block) * kInodeSize;
    Inode inode;
    inode.type = static_cast<InodeType>(raw[0]);
    inode.size = get_le<uint64_t>(raw + 8);
    for (uint32_t d = 0; d < kDirectBlocks; ++d) {
        inode.direct[d] = get_le<uint32_t>(raw + 16 + 4 * d);
    }
    inode.indirect = get_le<uint32_t>(raw + 16 + 4 * kDirectBlocks);
    return inode;
}

Status
EncFs::store_inode(uint32_t index, const Inode &inode)
{
    if (index >= config_.inode_count) {
        return Status(ErrorCode::kInval, "bad inode index");
    }
    uint32_t per_block = kBlockSize / kInodeSize;
    auto blk = get_block(inode_table_start_ + index / per_block, true);
    if (!blk.ok()) return blk.error();
    uint8_t *raw = blk.value()->data() + (index % per_block) * kInodeSize;
    std::memset(raw, 0, kInodeSize);
    raw[0] = static_cast<uint8_t>(inode.type);
    set_le<uint64_t>(raw + 8, inode.size);
    for (uint32_t d = 0; d < kDirectBlocks; ++d) {
        set_le<uint32_t>(raw + 16 + 4 * d, inode.direct[d]);
    }
    set_le<uint32_t>(raw + 16 + 4 * kDirectBlocks, inode.indirect);
    return Status();
}

Result<uint32_t>
EncFs::map_file_block(Inode &inode, uint64_t file_block, bool allocate,
                      bool &inode_dirty)
{
    if (file_block < kDirectBlocks) {
        uint32_t block = inode.direct[file_block];
        if (block == kNoBlock) {
            if (!allocate) {
                return kNoBlock;
            }
            auto fresh = alloc_block();
            if (!fresh.ok()) return fresh.error();
            inode.direct[file_block] = fresh.value();
            inode_dirty = true;
            return fresh.value();
        }
        return block;
    }
    uint64_t ind_index = file_block - kDirectBlocks;
    if (ind_index >= kIndirectEntries) {
        return Error(ErrorCode::kNoSpc, "file too large for EncFs");
    }
    if (inode.indirect == kNoBlock) {
        if (!allocate) {
            return kNoBlock;
        }
        auto fresh = alloc_block();
        if (!fresh.ok()) return fresh.error();
        inode.indirect = fresh.value();
        inode_dirty = true;
        auto blk = get_block(inode.indirect, true);
        if (!blk.ok()) return blk.error();
        std::memset(blk.value()->data(), 0xff, kBlockSize); // kNoBlock
    }
    auto ind = get_block(inode.indirect, false);
    if (!ind.ok()) return ind.error();
    uint32_t block =
        get_le<uint32_t>(ind.value()->data() + 4 * ind_index);
    if (block == kNoBlock) {
        if (!allocate) {
            return kNoBlock;
        }
        auto fresh = alloc_block();
        if (!fresh.ok()) return fresh.error();
        auto wind = get_block(inode.indirect, true);
        if (!wind.ok()) return wind.error();
        set_le<uint32_t>(wind.value()->data() + 4 * ind_index,
                         fresh.value());
        return fresh.value();
    }
    return block;
}

// ---------------------------------------------------------------------
// directories
// ---------------------------------------------------------------------

Result<uint32_t>
EncFs::dir_lookup(uint32_t dir_inode, const std::string &name)
{
    auto dir = load_inode(dir_inode);
    if (!dir.ok()) return dir.error();
    if (dir.value().type != InodeType::kDir) {
        return Error(ErrorCode::kNotDir, "not a directory");
    }
    Bytes entry(kDirEntrySize);
    for (uint64_t off = 0; off < dir.value().size;
         off += kDirEntrySize) {
        auto n = read(dir_inode, off, entry.data(), kDirEntrySize);
        if (!n.ok()) return n.error();
        uint32_t inode = get_le<uint32_t>(entry.data());
        uint8_t name_len = entry[4];
        if (inode == kNoBlock || name_len == 0) {
            continue; // deleted slot
        }
        std::string entry_name(
            reinterpret_cast<const char *>(entry.data() + 8), name_len);
        if (entry_name == name) {
            return inode;
        }
    }
    return Error(ErrorCode::kNoEnt, "no such entry: " + name);
}

Status
EncFs::dir_insert(uint32_t dir_inode, const std::string &name,
                  uint32_t inode)
{
    if (name.empty() || name.size() > kNameMax) {
        return Status(ErrorCode::kNameTooLong, "bad name");
    }
    auto dir = load_inode(dir_inode);
    if (!dir.ok()) return dir.error();
    Bytes entry(kDirEntrySize, 0);
    // Reuse a deleted slot if any.
    uint64_t slot = dir.value().size;
    Bytes probe(kDirEntrySize);
    for (uint64_t off = 0; off < dir.value().size;
         off += kDirEntrySize) {
        auto n = read(dir_inode, off, probe.data(), kDirEntrySize);
        if (!n.ok()) return n.error();
        if (get_le<uint32_t>(probe.data()) == kNoBlock ||
            probe[4] == 0) {
            slot = off;
            break;
        }
    }
    set_le<uint32_t>(entry.data(), inode);
    entry[4] = static_cast<uint8_t>(name.size());
    std::memcpy(entry.data() + 8, name.data(), name.size());
    auto written = write(dir_inode, slot, entry.data(), kDirEntrySize);
    if (!written.ok()) return written.error();
    return Status();
}

Status
EncFs::dir_remove(uint32_t dir_inode, const std::string &name)
{
    auto dir = load_inode(dir_inode);
    if (!dir.ok()) return dir.error();
    Bytes entry(kDirEntrySize);
    for (uint64_t off = 0; off < dir.value().size;
         off += kDirEntrySize) {
        auto n = read(dir_inode, off, entry.data(), kDirEntrySize);
        if (!n.ok()) return n.error();
        uint8_t name_len = entry[4];
        uint32_t inode = get_le<uint32_t>(entry.data());
        if (inode == kNoBlock || name_len == 0) {
            continue;
        }
        std::string entry_name(
            reinterpret_cast<const char *>(entry.data() + 8), name_len);
        if (entry_name == name) {
            Bytes dead(kDirEntrySize, 0);
            set_le<uint32_t>(dead.data(), kNoBlock);
            auto w = write(dir_inode, off, dead.data(), kDirEntrySize);
            if (!w.ok()) return w.error();
            return Status();
        }
    }
    return Status(ErrorCode::kNoEnt, "no such entry: " + name);
}

bool
EncFs::dir_empty(uint32_t dir_inode)
{
    auto dir = load_inode(dir_inode);
    if (!dir.ok()) return false;
    Bytes entry(kDirEntrySize);
    for (uint64_t off = 0; off < dir.value().size;
         off += kDirEntrySize) {
        auto n = read(dir_inode, off, entry.data(), kDirEntrySize);
        if (!n.ok()) return false;
        if (get_le<uint32_t>(entry.data()) != kNoBlock && entry[4] != 0) {
            return false;
        }
    }
    return true;
}

Result<std::pair<uint32_t, std::string>>
EncFs::resolve_parent(const std::string &path)
{
    if (path.empty() || path[0] != '/') {
        return Error(ErrorCode::kInval, "paths must be absolute");
    }
    std::vector<std::string> parts;
    std::string current;
    for (char c : path) {
        if (c == '/') {
            if (!current.empty()) {
                parts.push_back(current);
                current.clear();
            }
        } else {
            current.push_back(c);
        }
    }
    if (!current.empty()) {
        parts.push_back(current);
    }
    if (parts.empty()) {
        return Error(ErrorCode::kIsDir, "path is the root");
    }
    uint32_t dir = root_inode_;
    for (size_t i = 0; i + 1 < parts.size(); ++i) {
        auto next = dir_lookup(dir, parts[i]);
        if (!next.ok()) return next.error();
        auto inode = load_inode(next.value());
        if (!inode.ok()) return inode.error();
        if (inode.value().type != InodeType::kDir) {
            return Error(ErrorCode::kNotDir, parts[i]);
        }
        dir = next.value();
    }
    return std::make_pair(dir, parts.back());
}

// ---------------------------------------------------------------------
// public operations
// ---------------------------------------------------------------------

Result<uint32_t>
EncFs::open_inode(const std::string &path, bool create, bool do_truncate)
{
    OCC_CHECK_MSG(mounted_, "EncFs not mounted");
    auto parent = resolve_parent(path);
    if (!parent.ok()) return parent.error();
    auto [dir, name] = parent.value();
    auto found = dir_lookup(dir, name);
    if (found.ok()) {
        auto inode = load_inode(found.value());
        if (!inode.ok()) return inode.error();
        if (inode.value().type != InodeType::kFile) {
            return Error(ErrorCode::kIsDir, path);
        }
        if (do_truncate) {
            OCC_RETURN_IF_ERROR(truncate(found.value()));
        }
        return found.value();
    }
    if (!create) {
        return Error(ErrorCode::kNoEnt, path);
    }
    auto inode = alloc_inode(InodeType::kFile);
    if (!inode.ok()) return inode.error();
    OCC_RETURN_IF_ERROR(dir_insert(dir, name, inode.value()));
    return inode.value();
}

Status
EncFs::mkdir(const std::string &path)
{
    auto parent = resolve_parent(path);
    if (!parent.ok()) return parent.error();
    auto [dir, name] = parent.value();
    if (dir_lookup(dir, name).ok()) {
        return Status(ErrorCode::kExist, path);
    }
    auto inode = alloc_inode(InodeType::kDir);
    if (!inode.ok()) return inode.error();
    return dir_insert(dir, name, inode.value());
}

Status
EncFs::unlink(const std::string &path)
{
    auto parent = resolve_parent(path);
    if (!parent.ok()) return parent.error();
    auto [dir, name] = parent.value();
    auto found = dir_lookup(dir, name);
    if (!found.ok()) return found.error();
    auto inode = load_inode(found.value());
    if (!inode.ok()) return inode.error();
    if (inode.value().type == InodeType::kDir &&
        !dir_empty(found.value())) {
        return Status(ErrorCode::kNotEmpty, path);
    }
    OCC_RETURN_IF_ERROR(truncate(found.value()));
    Inode dead;
    dead.type = InodeType::kFree;
    for (auto &d : dead.direct) {
        d = kNoBlock;
    }
    OCC_RETURN_IF_ERROR(store_inode(found.value(), dead));
    return dir_remove(dir, name);
}

Result<bool>
EncFs::exists(const std::string &path)
{
    auto parent = resolve_parent(path);
    if (!parent.ok()) return parent.error();
    auto [dir, name] = parent.value();
    return dir_lookup(dir, name).ok();
}

Result<int64_t>
EncFs::read(uint32_t inode_index, uint64_t offset, uint8_t *out,
            uint64_t len)
{
    OCC_TRACE_SPAN(kFs, "encfs.read", len);
    clock_->advance(CostModel::kEncFsOpCycles);
    auto inode = load_inode(inode_index);
    if (!inode.ok()) return inode.error();
    Inode node = inode.take();
    if (offset >= node.size) {
        return 0;
    }
    len = std::min(len, node.size - offset);
    uint64_t done = 0;
    bool inode_dirty = false;
    while (done < len) {
        uint64_t pos = offset + done;
        uint64_t file_block = pos / kBlockSize;
        uint64_t in_block = pos % kBlockSize;
        uint64_t n = std::min(kBlockSize - in_block, len - done);
        auto block = map_file_block(node, file_block, false, inode_dirty);
        if (!block.ok()) return block.error();
        if (block.value() == kNoBlock) {
            std::memset(out + done, 0, n); // hole
        } else {
            auto data = get_block(block.value(), false);
            if (!data.ok()) return data.error();
            std::memcpy(out + done, data.value()->data() + in_block, n);
        }
        done += n;
    }
    maybe_readahead(inode_index, node, offset, len);
    clock_->advance(static_cast<uint64_t>(
        done * CostModel::kMemcpyCyclesPerByte));
    return static_cast<int64_t>(done);
}

void
EncFs::maybe_readahead(uint32_t inode_index, Inode &node,
                       uint64_t offset, uint64_t len)
{
    size_t ra = config_.readahead_blocks;
    bool sequential =
        inode_index == ra_inode_ && offset == ra_expect_offset_;
    ra_streak_ = sequential ? ra_streak_ + 1 : 0;
    ra_inode_ = inode_index;
    ra_expect_offset_ = offset + len;
    // Only prefetch for an established stream (second sequential read
    // onward), and never when the cache is so small that prefetched
    // blocks would evict the working set before being consumed.
    if (ra == 0 || ra_streak_ == 0 || config_.cache_blocks < 4 * ra) {
        return;
    }
    uint64_t next_fb = (offset + len + kBlockSize - 1) / kBlockSize;
    uint64_t end_fb = (node.size + kBlockSize - 1) / kBlockSize;
    bool inode_dirty = false;
    for (uint64_t fb = next_fb; fb < next_fb + ra && fb < end_fb; ++fb) {
        auto block = map_file_block(node, fb, false, inode_dirty);
        if (!block.ok()) {
            return;
        }
        if (block.value() == kNoBlock ||
            cache_.find(block.value()) != cache_.end()) {
            continue; // hole, or already resident
        }
        ctr_readahead_->add();
        // A failed prefetch (e.g. integrity error) is not reported
        // here; the demand fetch will hit the same error and surface
        // it to the caller.
        if (!get_block(block.value(), false).ok()) {
            return;
        }
    }
}

Result<int64_t>
EncFs::write(uint32_t inode_index, uint64_t offset, const uint8_t *in,
             uint64_t len)
{
    OCC_TRACE_SPAN(kFs, "encfs.write", len);
    clock_->advance(CostModel::kEncFsOpCycles);
    auto inode = load_inode(inode_index);
    if (!inode.ok()) return inode.error();
    Inode node = inode.take();
    uint64_t done = 0;
    bool inode_dirty = false;
    while (done < len) {
        uint64_t pos = offset + done;
        uint64_t file_block = pos / kBlockSize;
        uint64_t in_block = pos % kBlockSize;
        uint64_t n = std::min(kBlockSize - in_block, len - done);
        auto block = map_file_block(node, file_block, true, inode_dirty);
        if (!block.ok()) return block.error();
        auto data = get_block(block.value(), true);
        if (!data.ok()) return data.error();
        std::memcpy(data.value()->data() + in_block, in + done, n);
        done += n;
    }
    if (offset + len > node.size) {
        node.size = offset + len;
        inode_dirty = true;
    }
    if (inode_dirty) {
        OCC_RETURN_IF_ERROR(store_inode(inode_index, node));
    }
    clock_->advance(static_cast<uint64_t>(
        done * CostModel::kMemcpyCyclesPerByte));
    return static_cast<int64_t>(done);
}

Result<uint64_t>
EncFs::file_size(uint32_t inode_index)
{
    auto inode = load_inode(inode_index);
    if (!inode.ok()) return inode.error();
    return inode.value().size;
}

Status
EncFs::truncate(uint32_t inode_index)
{
    auto inode = load_inode(inode_index);
    if (!inode.ok()) return inode.error();
    Inode node = inode.take();
    for (uint32_t d = 0; d < kDirectBlocks; ++d) {
        if (node.direct[d] != kNoBlock) {
            OCC_RETURN_IF_ERROR(free_block(node.direct[d]));
            node.direct[d] = kNoBlock;
        }
    }
    if (node.indirect != kNoBlock) {
        auto ind = get_block(node.indirect, false);
        if (!ind.ok()) return ind.error();
        for (uint32_t e = 0; e < kIndirectEntries; ++e) {
            uint32_t block =
                get_le<uint32_t>(ind.value()->data() + 4 * e);
            if (block != kNoBlock) {
                OCC_RETURN_IF_ERROR(free_block(block));
            }
        }
        OCC_RETURN_IF_ERROR(free_block(node.indirect));
        node.indirect = kNoBlock;
    }
    node.size = 0;
    return store_inode(inode_index, node);
}

Status
EncFs::write_file(const std::string &path, const Bytes &content)
{
    auto inode = open_inode(path, true, true);
    if (!inode.ok()) return inode.error();
    auto written = write(inode.value(), 0, content.data(),
                         content.size());
    if (!written.ok()) return written.error();
    return Status();
}

Result<Bytes>
EncFs::read_file(const std::string &path)
{
    auto inode = open_inode(path, false, false);
    if (!inode.ok()) return inode.error();
    auto size = file_size(inode.value());
    if (!size.ok()) return size.error();
    Bytes out(size.value());
    auto n = read(inode.value(), 0, out.data(), out.size());
    if (!n.ok()) return n.error();
    out.resize(static_cast<size_t>(n.value()));
    return out;
}

} // namespace occlum::libos
