/**
 * @file
 * The Occlum writable encrypted file system (paper §6, "File
 * systems"): every data block, inode, and directory block is
 * transparently AES-128-CTR encrypted and HMAC-SHA-256 authenticated
 * before it reaches the untrusted host block device. One instance —
 * and one shared page cache — serves every SIP in the enclave, which
 * is what makes a *writable* encrypted FS straightforward here and
 * painful for EIP designs (paper §3.2, Table 1).
 *
 * On-device layout (4 KiB blocks):
 *   [0, mac_blocks)        MAC table: 40-byte records (HMAC + write
 *                          counter) for every payload block
 *   mac_blocks             superblock
 *   +1 .. +inode_blocks    inode table (512-byte inodes)
 *   ...                    block allocation bitmap
 *   ...                    data blocks (files, directories, indirect)
 *
 * Inodes hold 120 direct block pointers plus one single-indirect block
 * (max file size ~= 4.4 MiB). Directories are files of fixed 64-byte
 * entries. Like the paper's prototype (which builds on the Intel
 * Protected File System primitives), rollback protection across
 * remounts is out of scope; integrity of every block at rest is not.
 */
#ifndef OCCLUM_LIBOS_ENCFS_H
#define OCCLUM_LIBOS_ENCFS_H

#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/result.h"
#include "crypto/aes.h"
#include "crypto/hmac.h"
#include "host/host.h"
#include "trace/metrics.h"

namespace occlum::libos {

/** Costs charged by the FS besides the device's own. */
struct EncFsCharge {
    uint64_t crypto_cycles = 0; // AES + HMAC work
    uint64_t ocall_cycles = 0;  // enclave exits for device I/O
};

/** The encrypted file system over an untrusted block device. */
class EncFs
{
  public:
    static constexpr uint64_t kBlockSize = host::BlockDevice::kBlockSize;
    static constexpr uint32_t kNoBlock = 0xffffffff;

    /**
     * CTR nonce for (block, write-counter): LE32(block)||LE64(counter).
     * The in-call 32-bit counter word always starts at 0 and only
     * counts the 256 AES blocks inside one 4 KiB payload, so no two
     * (block, counter) pairs share keystream — in particular not when
     * a write counter crosses the 32-bit boundary. Public so tests
     * can audit nonce uniqueness around the wrap.
     */
    static std::array<uint8_t, 12> ctr_iv(uint32_t block,
                                          uint64_t counter);

    struct Config {
        crypto::Key128 key{};      // sealed FS key
        uint32_t inode_count = 512;
        size_t cache_blocks = 2048; // shared page cache capacity
        /** Per-device-I/O enclave transition cost (OCALL). Zero when
         *  the FS is used outside an enclave (tests). */
        uint64_t ocall_cycles = 0;
        /**
         * Blocks pulled ahead of a detected sequential read stream
         * (0 disables). Prefetched blocks pay exactly the demand-fetch
         * charges at prefetch time, so a stream that consumes them
         * accrues bit-identical simulated cycles — only wall-clock
         * and device-round-trip batching change.
         */
        size_t readahead_blocks = 8;
    };

    EncFs(host::BlockDevice &device, SimClock &clock, Config config);

    /** Format the device: empty FS with a root directory. */
    Status mkfs();
    /** Mount an existing FS (verifies the superblock). */
    Status mount();

    // ---- whole-file convenience (host-side image tool analog) ------
    Status write_file(const std::string &path, const Bytes &content);
    Result<Bytes> read_file(const std::string &path);

    // ---- POSIX-ish operations --------------------------------------
    /** Resolve a path to an inode; creates the file when asked to. */
    Result<uint32_t> open_inode(const std::string &path, bool create,
                                bool truncate);
    Status mkdir(const std::string &path);
    Status unlink(const std::string &path);
    Result<bool> exists(const std::string &path);

    Result<int64_t> read(uint32_t inode, uint64_t offset, uint8_t *out,
                         uint64_t len);
    Result<int64_t> write(uint32_t inode, uint64_t offset,
                          const uint8_t *in, uint64_t len);
    Result<uint64_t> file_size(uint32_t inode);
    Status truncate(uint32_t inode);

    /** Write every dirty cached block back to the device. */
    Status sync();

    // ---- statistics ---------------------------------------------------
    uint64_t cache_hits() const { return cache_hits_; }
    uint64_t cache_misses() const { return cache_misses_; }
    uint64_t evictions() const { return evictions_; }

  private:
    static constexpr uint32_t kMagic = 0x0ccf5001;
    static constexpr uint32_t kDirectBlocks = 120;
    static constexpr uint32_t kInodeSize = 512;
    static constexpr uint32_t kDirEntrySize = 64;
    static constexpr uint32_t kNameMax = 54;
    static constexpr uint32_t kMacRecordSize = 40; // 32 MAC + 8 counter

    enum class InodeType : uint8_t { kFree = 0, kFile = 1, kDir = 2 };

    struct Inode {
        InodeType type = InodeType::kFree;
        uint64_t size = 0;
        uint32_t direct[kDirectBlocks];
        uint32_t indirect = kNoBlock;
    };

    struct CacheEntry {
        Bytes data;
        bool dirty = false;
        /** Position in lru_ (front = most recently used). */
        std::list<uint32_t>::iterator lru_it;
    };

    // ---- device layer --------------------------------------------------
    /**
     * Device I/O with a bounded retry/backoff policy: a transient
     * (kAgain) host fault is retried up to CostModel::kIoRetryLimit
     * times with exponential backoff charged to the clock; exhausted
     * retries surface as kIo. Every attempt pays its own OCALL. All
     * EncFs device traffic goes through these two wrappers.
     */
    Status dev_read(uint32_t block, Bytes &out);
    Status dev_write(uint32_t block, const Bytes &in);

    // ---- block layer ---------------------------------------------------
    /** Fetch a payload block through the page cache (decrypt+verify). */
    Result<Bytes *> get_block(uint32_t block, bool for_write);
    Status flush_entry(uint32_t block, CacheEntry &entry);
    Status evict_if_needed();
    /** Pull blocks ahead of a detected sequential read stream. */
    void maybe_readahead(uint32_t inode_index, Inode &node,
                         uint64_t offset, uint64_t len);
    void charge_crypto(uint64_t bytes);
    void charge_ocall();

    // ---- allocation ------------------------------------------------------
    Result<uint32_t> alloc_block();
    Status free_block(uint32_t block);
    Result<uint32_t> alloc_inode(InodeType type);

    // ---- inode / directory helpers ----------------------------------------
    Result<Inode> load_inode(uint32_t index);
    Status store_inode(uint32_t index, const Inode &inode);
    /** Logical file block -> device block (optionally allocating). */
    Result<uint32_t> map_file_block(Inode &inode, uint64_t file_block,
                                    bool allocate, bool &inode_dirty);
    Result<uint32_t> dir_lookup(uint32_t dir_inode,
                                const std::string &name);
    Status dir_insert(uint32_t dir_inode, const std::string &name,
                      uint32_t inode);
    Status dir_remove(uint32_t dir_inode, const std::string &name);
    bool dir_empty(uint32_t dir_inode);
    /** Walk a path to (parent inode, leaf name). */
    Result<std::pair<uint32_t, std::string>>
    resolve_parent(const std::string &path);

    host::BlockDevice *device_;
    SimClock *clock_;
    Config config_;
    crypto::Aes128 cipher_;
    /** Cached-midstate HMAC key: one MAC per block, many per second. */
    crypto::HmacKey mac_key_;
    bool mounted_ = false;

    uint32_t mac_blocks_ = 0;
    uint32_t super_block_ = 0;
    uint32_t inode_table_start_ = 0;
    uint32_t inode_blocks_ = 0;
    uint32_t bitmap_start_ = 0;
    uint32_t bitmap_blocks_ = 0;
    uint32_t data_start_ = 0;
    uint32_t root_inode_ = 0;

    /** In-enclave copy of the MAC table, written back on sync(). */
    struct MacRecord {
        crypto::Sha256Digest mac{};
        uint64_t counter = 0;
    };
    std::vector<MacRecord> mac_table_;
    std::vector<bool> mac_block_dirty_;

    Status load_mac_table();
    Status flush_mac_table();
    /**
     * Fused encrypt+MAC: CTR-encrypts `plain` into `ciphertext` and
     * authenticates it in one chunked pass (the MAC covers
     * ciphertext || LE32(block) || LE64(counter), as before).
     */
    crypto::Sha256Digest encrypt_mac(uint32_t block, uint64_t counter,
                                     const Bytes &plain,
                                     Bytes &ciphertext) const;
    /**
     * Fused decrypt+verify: one chunked pass that both decrypts
     * `ciphertext` into `plain` and recomputes the MAC. Returns false
     * (leaving `plain` untrusted) when the MAC does not match.
     */
    bool decrypt_verify(uint32_t block, const MacRecord &record,
                        const Bytes &ciphertext, Bytes &plain) const;

    /**
     * Page cache: O(1) lookup via the hash map, O(1) LRU via the
     * intrusive list (front = hottest, eviction pops the back).
     * unordered_map nodes are pointer-stable, so Bytes* handed out by
     * get_block stay valid until that block is evicted.
     */
    std::unordered_map<uint32_t, CacheEntry> cache_;
    std::list<uint32_t> lru_;
    uint64_t cache_hits_ = 0;
    uint64_t cache_misses_ = 0;
    uint64_t evictions_ = 0;

    // Sequential-read detection for readahead.
    uint32_t ra_inode_ = 0xffffffff;
    uint64_t ra_expect_offset_ = 0;
    uint64_t ra_streak_ = 0;

    // Registry metrics (registered at construction; see metrics.h).
    trace::Counter *ctr_cache_hits_ = nullptr;
    trace::Counter *ctr_cache_misses_ = nullptr;
    trace::Counter *ctr_dev_reads_ = nullptr;
    trace::Counter *ctr_dev_writes_ = nullptr;
    trace::Counter *ctr_evictions_ = nullptr;
    trace::Counter *ctr_readahead_ = nullptr;
    trace::Counter *ctr_io_retries_ = nullptr;
};

} // namespace occlum::libos

#endif // OCCLUM_LIBOS_ENCFS_H
