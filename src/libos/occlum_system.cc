#include "libos/occlum_system.h"

#include <cstdlib>

#include "base/log.h"
#include "faultsim/faultsim.h"
#include "isa/isa.h"
#include "oskit/loader.h"
#include "trace/trace.h"

namespace occlum::libos {

using oskit::IoResult;

// ---------------------------------------------------------------------
// EncFile
// ---------------------------------------------------------------------

IoResult
EncFile::read(oskit::Kernel &kernel, uint8_t *buf, uint64_t len)
{
    (void)kernel; // EncFs charges the clock directly
    auto n = fs_->read(inode_, offset_, buf, len);
    if (!n.ok()) {
        return IoResult::err(n.error().code);
    }
    offset_ += static_cast<uint64_t>(n.value());
    return IoResult::ok(n.value());
}

IoResult
EncFile::write(oskit::Kernel &kernel, const uint8_t *buf, uint64_t len)
{
    (void)kernel;
    if ((flags_ & (abi::kOpenWrite | abi::kOpenRdWr)) == 0) {
        return IoResult::err(ErrorCode::kBadF);
    }
    auto n = fs_->write(inode_, offset_, buf, len);
    if (!n.ok()) {
        return IoResult::err(n.error().code);
    }
    offset_ += static_cast<uint64_t>(n.value());
    return IoResult::ok(n.value());
}

Result<int64_t>
EncFile::seek(int64_t offset, int whence)
{
    auto size = fs_->file_size(inode_);
    if (!size.ok()) {
        return size.error();
    }
    int64_t base = 0;
    switch (whence) {
      case static_cast<int>(abi::kSeekSet): base = 0; break;
      case static_cast<int>(abi::kSeekCur):
        base = static_cast<int64_t>(offset_);
        break;
      case static_cast<int>(abi::kSeekEnd):
        base = static_cast<int64_t>(size.value());
        break;
      default:
        return Error(ErrorCode::kInval, "bad whence");
    }
    int64_t pos = base + offset;
    if (pos < 0) {
        return Error(ErrorCode::kInval, "negative seek");
    }
    offset_ = static_cast<uint64_t>(pos);
    return pos;
}

int64_t
EncFile::size() const
{
    auto size = fs_->file_size(inode_);
    return size.ok() ? static_cast<int64_t>(size.value()) : -1;
}

Status
EncFile::fsync(oskit::Kernel &kernel)
{
    (void)kernel;
    return fs_->sync();
}

// ---------------------------------------------------------------------
// DevFile
// ---------------------------------------------------------------------

IoResult
DevFile::read(oskit::Kernel &kernel, uint8_t *buf, uint64_t len)
{
    (void)kernel;
    switch (kind_) {
      case Kind::kNull:
        return IoResult::ok(0);
      case Kind::kZero:
        std::fill(buf, buf + len, 0);
        return IoResult::ok(static_cast<int64_t>(len));
      case Kind::kProcText: {
        if (offset_ >= text_.size()) {
            return IoResult::ok(0);
        }
        uint64_t n = std::min<uint64_t>(len, text_.size() - offset_);
        std::copy(text_.begin() + offset_, text_.begin() + offset_ + n,
                  buf);
        offset_ += n;
        return IoResult::ok(static_cast<int64_t>(n));
      }
    }
    return IoResult::err(ErrorCode::kInval);
}

IoResult
DevFile::write(oskit::Kernel &kernel, const uint8_t *buf, uint64_t len)
{
    (void)kernel;
    (void)buf;
    if (kind_ == Kind::kProcText) {
        return IoResult::err(ErrorCode::kAccess);
    }
    return IoResult::ok(static_cast<int64_t>(len)); // bit bucket
}

// ---------------------------------------------------------------------
// OcclumSystem
// ---------------------------------------------------------------------

uint64_t
OcclumSystem::slot_span() const
{
    return oelf::kTrampSize + config_.slot_code_size + oelf::kGuardSize +
           config_.slot_data_size + oelf::kGuardSize;
}

OcclumSystem::OcclumSystem(sgx::Platform &platform,
                           host::HostFileStore &binaries, Config config,
                           host::NetSim *net)
    : Kernel(platform.clock(), binaries, net), platform_(&platform),
      config_(config)
{
    // Core topology first (it must precede the first spawn): the
    // config pins it explicitly, else OCCLUM_CORES selects it, else
    // the classic single-walk scheduler.
    int cores = config_.cores;
    if (cores <= 0) {
        const char *env = std::getenv("OCCLUM_CORES");
        cores = env != nullptr ? std::atoi(env) : 1;
    }
    set_cores(cores);
    core_threads_.resize(static_cast<size_t>(this->cores()));

    // One enclave for the whole system (paper Fig. 1a).
    uint64_t span = slot_span();
    uint64_t enclave_size = span * config_.num_slots;
    enclave_ = std::make_unique<sgx::Enclave>(
        platform, config_.enclave_base, enclave_size);

    // Preallocate every domain slot before EINIT (SGX 1.0, paper §6):
    // trampoline+code executable, data writable, guards unmapped.
    // EPC exhaustion (the real machine's or faultsim's) degrades the
    // slot count instead of aborting: a partially-added slot is never
    // pushed (an unmapped hole inside a SIP region would fault the
    // loader much later, far from the cause).
    for (int s = 0; s < config_.num_slots; ++s) {
        Slot slot;
        slot.base = config_.enclave_base + s * span;
        uint64_t code_len = oelf::kTrampSize + config_.slot_code_size;
        Status added =
            enclave_->add_pages(slot.base, code_len, vm::kPermRX);
        if (added.ok()) {
            uint64_t data_base =
                slot.base + code_len + oelf::kGuardSize;
            added = enclave_->add_pages(
                data_base, config_.slot_data_size, vm::kPermRW);
        }
        if (!added.ok()) {
            OCC_WARN("EPC exhausted after "
                     << slots_.size() << "/" << config_.num_slots
                     << " domain slots: " << added.error().message);
            break;
        }
        slots_.push_back(slot);
    }
    OCC_CHECK_MSG(!slots_.empty(),
                  "EPC cannot hold even one domain slot");

    // Stamp the SIGSTRUCT identity before EINIT. The signer digest is
    // the hash of the verifier's signing key — the same key that
    // authenticates OELF binaries — mirroring oesign's MRSIGNER.
    sgx::EnclaveIdentity identity;
    identity.signer = crypto::Sha256::digest(
        config_.verifier_key.data(), config_.verifier_key.size());
    identity.isv_prod_id = config_.isv_prod_id;
    identity.isv_svn = config_.isv_svn;
    if (config_.debug_enclave) {
        identity.attributes |= sgx::EnclaveIdentity::kAttrDebug;
    }
    OCC_CHECK(enclave_->set_identity(identity).ok());
    OCC_CHECK(enclave_->init().ok());

    // The encrypted FS over an untrusted host block device. A
    // restarted system mounts the predecessor's external device
    // instead of formatting a fresh one.
    if (config_.external_device != nullptr) {
        active_device_ = config_.external_device;
    } else {
        device_ = std::make_unique<host::BlockDevice>(
            platform.clock(), config_.fs_blocks);
        active_device_ = device_.get();
    }
    EncFs::Config fs_config;
    fs_config.key = config_.fs_key;
    fs_config.cache_blocks = config_.fs_cache_blocks;
    fs_config.readahead_blocks = config_.fs_readahead_blocks;
    fs_config.ocall_cycles =
        CostModel::kEexitCycles + CostModel::kEenterCycles;
    encfs_ = std::make_unique<EncFs>(*active_device_, platform.clock(),
                                     fs_config);
    fs_status_ =
        config_.format_device ? encfs_->mkfs() : encfs_->mount();
    if (!fs_status_.ok()) {
        // A torn superblock write must not abort the whole enclave;
        // the system comes up with the FS unusable and fs_status()
        // says why.
        OCC_WARN("EncFs " << (config_.format_device ? "mkfs" : "mount")
                          << " failed: " << fs_status_.error().message);
    }
}

int
OcclumSystem::free_slots() const
{
    int free_count = 0;
    for (const auto &slot : slots_) {
        if (!slot.used) {
            ++free_count;
        }
    }
    return free_count;
}

Result<std::unique_ptr<oskit::Process>>
OcclumSystem::create_process(const std::string &path,
                             const std::vector<std::string> &argv)
{
    OCC_TRACE_SPAN(kLibos, "libos.spawn");
    auto raw = binaries().get(path);
    if (!raw.ok()) {
        return raw.error();
    }
    auto parsed = oelf::Image::parse(*raw.value());
    if (!parsed.ok()) {
        return parsed.error();
    }
    oelf::Image image = parsed.take();

    // The loader only accepts binaries verified and signed by the
    // Occlum verifier (paper §6).
    if (config_.check_signatures) {
        if (!(image.flags & oelf::kFlagInstrumented) ||
            !image.check_signature(config_.verifier_key)) {
            return Error(ErrorCode::kNoExec,
                         "binary is not verifier-signed: " + path);
        }
    }
    if (image.code_region_size() != config_.slot_code_size) {
        return Error(ErrorCode::kNoExec,
                     "binary linked for a different slot geometry");
    }
    if (image.data_region_size() > config_.slot_data_size) {
        return Error(ErrorCode::kNoMem,
                     "data region exceeds the slot size");
    }

    int slot_index = -1;
    for (size_t s = 0; s < slots_.size(); ++s) {
        if (!slots_[s].used) {
            slot_index = static_cast<int>(s);
            break;
        }
    }
    if (slot_index < 0) {
        return Error(ErrorCode::kAgain, "no free domain slots");
    }
    Slot &slot = slots_[slot_index];

    // Wipe the whole slot (a reused slot must not leak the previous
    // SIP's memory), then load.
    enclave_->mem().zero_raw(slot.base, oelf::kTrampSize +
                                            config_.slot_code_size);
    uint64_t data_base = slot.base + oelf::kTrampSize +
                         config_.slot_code_size + oelf::kGuardSize;
    enclave_->mem().zero_raw(data_base, config_.slot_data_size);

    oskit::LoadOptions options;
    options.domain_id = next_domain_id_++;
    options.rewrite_cfi = true;
    options.map_pages = false; // slots were EADDed before EINIT
    auto domain = oskit::load_image(enclave_->mem(), image, slot.base,
                                    argv, options);
    if (!domain.ok()) {
        return domain.error();
    }

    auto proc = std::make_unique<oskit::Process>();
    proc->space = &enclave_->mem();
    proc->owned_cpu = std::make_unique<vm::Cpu>(enclave_->mem());
    proc->cpu = proc->owned_cpu.get();
    oskit::init_cpu(*proc->cpu, domain.value());
    proc->domain_base = domain.value().base;
    proc->d_begin = domain.value().d_begin;
    proc->d_end = domain.value().d_end;
    proc->mmap_cursor = domain.value().mmap_begin;
    proc->mmap_end = domain.value().mmap_end;
    slot.used = true;

    // Spawn cost: fixed LibOS work plus copying the binary into the
    // enclave (no on-demand loading inside an enclave, paper §9.2).
    charge(CostModel::kOcclumSpawnFixedCycles +
           CostModel::pages_for(image.load_bytes()) *
               CostModel::kOcclumLoadCyclesPerPage);
    return proc;
}

void
OcclumSystem::destroy_process(oskit::Process &proc)
{
    uint64_t span = slot_span();
    uint64_t index = (proc.domain_base - config_.enclave_base) / span;
    OCC_CHECK(index < slots_.size());
    slots_[index].used = false;
}

Status
OcclumSystem::validate_user_range(oskit::Process &proc, uint64_t addr,
                                  uint64_t len)
{
    // A SIP may only hand the LibOS pointers into its own data region
    // — otherwise syscalls become a confused deputy for reading other
    // SIPs' memory (inter-process isolation, paper §3.1).
    if (len == 0) {
        return Status();
    }
    if (addr < proc.d_begin || addr + len > proc.d_end ||
        addr + len < addr) {
        return Status(ErrorCode::kFault,
                      "user pointer outside the SIP's data region");
    }
    return Status();
}

Status
OcclumSystem::validate_syscall_return(oskit::Process &proc,
                                      uint64_t target)
{
    // Paper §6: "LibOS will ensure that the return address target is
    // a cfi_label of corresponding SIP."
    uint64_t c_begin = proc.domain_base + oelf::kTrampSize;
    uint64_t c_end = proc.d_begin - oelf::kGuardSize;
    if (target < c_begin || target + 8 > c_end) {
        return Status(ErrorCode::kFault,
                      "syscall return target outside the SIP's code");
    }
    uint64_t value = 0;
    if (proc.space->read_raw(target, &value, 8) !=
        vm::AccessFault::kNone) {
        return Status(ErrorCode::kFault, "unreadable return target");
    }
    uint64_t domain_id = 0;
    proc.space->read_raw(proc.d_begin + abi::kPcbDomainId, &domain_id,
                         8);
    if (value != isa::cfi_label_value(
                     static_cast<uint32_t>(domain_id))) {
        return Status(ErrorCode::kFault,
                      "syscall return target is not this SIP's "
                      "cfi_label");
    }
    return Status();
}

Result<oskit::FilePtr>
OcclumSystem::fs_open(oskit::Process &proc, const std::string &path,
                      uint64_t flags)
{
    (void)proc;
    // Special in-enclave file systems (paper §6): /dev and /proc.
    if (path == "/dev/null") {
        return oskit::FilePtr(
            std::make_shared<DevFile>(DevFile::Kind::kNull));
    }
    if (path == "/dev/zero") {
        return oskit::FilePtr(
            std::make_shared<DevFile>(DevFile::Kind::kZero));
    }
    if (path.rfind("/proc/", 0) == 0) {
        std::string text;
        if (path == "/proc/meminfo") {
            text = "EnclaveTotal: " +
                   std::to_string(enclave_->size() / 1024) + " kB\n";
        } else if (path == "/proc/self/status") {
            text = "Name: sip\nThreads: 1\n";
        } else {
            return Error(ErrorCode::kNoEnt, path);
        }
        return oskit::FilePtr(std::make_shared<DevFile>(
            DevFile::Kind::kProcText, std::move(text)));
    }
    bool create = flags & abi::kOpenCreate;
    bool trunc = flags & abi::kOpenTrunc;
    auto inode = encfs_->open_inode(path, create, trunc);
    if (!inode.ok()) {
        return inode.error();
    }
    return oskit::FilePtr(
        std::make_shared<EncFile>(encfs_.get(), inode.value(), flags));
}

void
OcclumSystem::on_injected_aex(oskit::Process &proc)
{
    OCC_TRACE_SPAN(kSgx, "sgx.injected_aex",
                   static_cast<uint64_t>(proc.pid));
    // Bind the interrupted core's TCS to the SIP's CPU: try_aex()
    // snapshots the state into the SSA and clobbers the live
    // registers (as the hardware scrubs them on an exit), resume()
    // restores the snapshot. If the SSA round trip dropped anything —
    // a bound register, flags — the SIP resumes corrupted and the
    // AEX-storm transparency tests catch it. One TCS (one SSA frame)
    // exists per simulated core; an AEX storm hits each core's
    // stream independently.
    // Stamp the pid/core context so the orderliness monitor's records
    // (and any violation it flags) carry the scheduling context of
    // the injection, not just the raw transition.
    sgx::ScopedMonitorContext ctx(proc.pid, current_core());
    auto &thread = core_threads_[static_cast<size_t>(current_core())];
    if (!thread) {
        thread = std::make_unique<sgx::SgxThread>(*enclave_, *proc.cpu);
    } else if (!thread->try_bind(*proc.cpu)) {
        // SSA frame occupied: the monitor recorded the refused rebind.
        // Unreachable in the current round-trip discipline (every
        // serviced AEX resumes before the hook returns), but an
        // adversarial schedule must degrade to a skipped injection,
        // not a kernel crash.
        return;
    }
    if (!thread->try_aex()) {
        return; // already in an AEX (NSSA=1) — cannot nest
    }
    thread->resume();
    faultsim::FaultSim::instance().count_injected_aex();
}

Status
OcclumSystem::fs_unlink(const std::string &path)
{
    return encfs_->unlink(path);
}

Status
OcclumSystem::fs_mkdir(const std::string &path)
{
    return encfs_->mkdir(path);
}

} // namespace occlum::libos
