#include "oelf/oelf.h"

#include <cstring>

#include "base/log.h"

namespace occlum::oelf {

namespace {

constexpr uint8_t kMagic[4] = {'O', 'E', 'L', 'F'};
constexpr uint32_t kVersion = 1;

/** Cursor for bounds-checked parsing. */
class Reader
{
  public:
    explicit Reader(const Bytes &raw) : raw_(raw) {}

    template <typename T>
    bool
    get(T &out)
    {
        if (pos_ + sizeof(T) > raw_.size()) return false;
        out = get_le<T>(raw_.data() + pos_);
        pos_ += sizeof(T);
        return true;
    }

    bool
    get_bytes(Bytes &out, size_t len)
    {
        if (pos_ + len > raw_.size()) return false;
        out.assign(raw_.begin() + pos_, raw_.begin() + pos_ + len);
        pos_ += len;
        return true;
    }

    bool
    get_string(std::string &out, size_t len)
    {
        if (pos_ + len > raw_.size()) return false;
        out.assign(raw_.begin() + pos_, raw_.begin() + pos_ + len);
        pos_ += len;
        return true;
    }

    size_t pos() const { return pos_; }

  private:
    const Bytes &raw_;
    size_t pos_ = 0;
};

} // namespace

uint64_t
Image::find_symbol(const std::string &name) const
{
    for (const auto &sym : symbols) {
        if (sym.name == name) {
            return sym.offset;
        }
    }
    return ~0ull;
}

Bytes
Image::serialize() const
{
    Bytes out;
    out.insert(out.end(), std::begin(kMagic), std::end(kMagic));
    put_le<uint32_t>(out, kVersion);
    put_le<uint64_t>(out, entry_offset);
    put_le<uint64_t>(out, code.size());
    put_le<uint64_t>(out, data.size());
    put_le<uint64_t>(out, bss_size);
    put_le<uint64_t>(out, heap_size);
    put_le<uint64_t>(out, stack_size);
    put_le<uint64_t>(out, code_reserve);
    put_le<uint32_t>(out, flags);
    put_le<uint32_t>(out, static_cast<uint32_t>(symbols.size()));
    for (const auto &sym : symbols) {
        put_le<uint16_t>(out, static_cast<uint16_t>(sym.name.size()));
        out.insert(out.end(), sym.name.begin(), sym.name.end());
        put_le<uint64_t>(out, sym.offset);
    }
    out.push_back(has_signature ? 1 : 0);
    if (has_signature) {
        out.insert(out.end(), signature.begin(), signature.end());
    }
    out.insert(out.end(), code.begin(), code.end());
    out.insert(out.end(), data.begin(), data.end());
    return out;
}

Result<Image>
Image::parse(const Bytes &raw)
{
    auto fail = [](const std::string &why) -> Result<Image> {
        return Error(ErrorCode::kNoExec, "OELF parse: " + why);
    };
    Reader r(raw);
    Bytes magic;
    if (!r.get_bytes(magic, 4) ||
        std::memcmp(magic.data(), kMagic, 4) != 0) {
        return fail("bad magic");
    }
    uint32_t version = 0;
    if (!r.get(version) || version != kVersion) {
        return fail("bad version");
    }
    Image img;
    uint64_t code_size = 0, data_size = 0;
    uint32_t sym_count = 0;
    if (!r.get(img.entry_offset) || !r.get(code_size) ||
        !r.get(data_size) || !r.get(img.bss_size) ||
        !r.get(img.heap_size) || !r.get(img.stack_size) ||
        !r.get(img.code_reserve) || !r.get(img.flags) ||
        !r.get(sym_count)) {
        return fail("truncated header");
    }
    if (sym_count > 100000) {
        return fail("absurd symbol count");
    }
    for (uint32_t i = 0; i < sym_count; ++i) {
        Symbol sym;
        uint16_t name_len = 0;
        if (!r.get(name_len) || !r.get_string(sym.name, name_len) ||
            !r.get(sym.offset)) {
            return fail("truncated symbol table");
        }
        img.symbols.push_back(std::move(sym));
    }
    uint8_t has_sig = 0;
    if (!r.get(has_sig)) {
        return fail("truncated signature flag");
    }
    img.has_signature = has_sig != 0;
    if (img.has_signature) {
        Bytes sig;
        if (!r.get_bytes(sig, img.signature.size())) {
            return fail("truncated signature");
        }
        std::copy(sig.begin(), sig.end(), img.signature.begin());
    }
    if (!r.get_bytes(img.code, code_size) ||
        !r.get_bytes(img.data, data_size)) {
        return fail("truncated segments");
    }
    if (img.entry_offset >= std::max<uint64_t>(code_size, 1)) {
        return fail("entry outside code");
    }
    return img;
}

crypto::Sha256Digest
Image::content_digest() const
{
    // Hash a copy with the signature blanked so signing is stable.
    Image unsigned_copy = *this;
    unsigned_copy.has_signature = false;
    unsigned_copy.signature = {};
    return crypto::Sha256::digest(unsigned_copy.serialize());
}

void
Image::sign(const crypto::Key128 &key)
{
    crypto::Sha256Digest digest = content_digest();
    signature = crypto::hmac_sha256(key.data(), key.size(), digest.data(),
                                    digest.size());
    has_signature = true;
}

bool
Image::check_signature(const crypto::Key128 &key) const
{
    if (!has_signature) {
        return false;
    }
    crypto::Sha256Digest digest = content_digest();
    crypto::Sha256Digest expect = crypto::hmac_sha256(
        key.data(), key.size(), digest.data(), digest.size());
    return crypto::digest_equal(expect, signature);
}

} // namespace occlum::oelf
