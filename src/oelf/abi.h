/**
 * @file
 * The user/LibOS ABI shared by the toolchain (which emits code against
 * it) and the Occlum LibOS (which implements it).
 *
 * Register conventions:
 *   r0        syscall number / return value / function return value
 *   r1..r5    function arguments
 *   r1..r6    syscall arguments (Linux-style: up to 6; the 6th rides
 *             in r6, which is otherwise a temporary)
 *   r6..r12   caller-saved temporaries
 *   r13       instrumentation scratch (cfi_guard) — never holds data
 *   r14       caller-saved temporary
 *   r15      stack pointer
 *
 * Process start state (set by the loader):
 *   sp   = D.end - 16
 *   bnd0 = [D.begin, D.end - 1]
 *   bnd1 = [label, label] with label = cfi_label_value(domain_id)
 *   rip  = C.begin + entry_offset
 *
 * The first kPcbSize bytes of the data region hold the process
 * control block (PCB), written by the loader; user code addresses it
 * RIP-relatively. Syscalls: put the number in r0, args in r1..r6,
 * then cfi_guard + call_reg the trampoline address found in the PCB.
 * The LibOS pops the return address, validates it is a cfi_label of
 * the calling SIP (paper §6), writes the result to r0, and resumes.
 */
#ifndef OCCLUM_OELF_ABI_H
#define OCCLUM_OELF_ABI_H

#include <cstdint>

namespace occlum::abi {

/** Syscall argument registers: r1..r(kSyscallArgs), Linux-style. */
constexpr int kSyscallArgs = 6;

/** Size reserved for the PCB at the start of the data region. */
constexpr uint64_t kPcbSize = 1024;

/** PCB field offsets from D.begin. */
constexpr uint64_t kPcbTrampoline = 0; // address of the syscall gate
constexpr uint64_t kPcbDomainId = 8;
constexpr uint64_t kPcbHeapBegin = 16;
constexpr uint64_t kPcbHeapEnd = 24;
constexpr uint64_t kPcbArgc = 32;
constexpr uint64_t kPcbArgv = 40;   // address of an argv pointer array
constexpr uint64_t kPcbPid = 48;
constexpr uint64_t kPcbArgBlob = 64; // argv pointers + string bytes

/** LibOS system call numbers. */
enum class Sys : uint64_t {
    kExit = 0,       // exit(code)
    kWrite = 1,      // write(fd, buf, len) -> written
    kRead = 2,       // read(fd, buf, len) -> read
    kOpen = 3,       // open(path, path_len, flags) -> fd
    kClose = 4,      // close(fd)
    kSpawn = 5,      // spawn(path, path_len, argv, argc) -> pid
    kWaitPid = 6,    // waitpid(pid) -> exit code (blocks)
    kGetPid = 7,     // getpid() -> pid
    kPipe = 8,       // pipe(fds_out_ptr) -> 0
    kDup2 = 9,       // dup2(oldfd, newfd)
    kLseek = 10,     // lseek(fd, off, whence) -> pos
    kUnlink = 11,    // unlink(path, path_len)
    kMmap = 12,      // mmap(addr, len, prot, flags, fd, off) -> addr
                     //   (anonymous RW only: fd must be -1, off
                     //    page-aligned, prot must not request X)
    kMunmap = 13,    // munmap(addr, len)
    kTime = 14,      // time() -> simulated nanoseconds
    kKill = 15,      // kill(pid, sig)
    kSockListen = 16,// sock_listen(port, backlog) -> fd
    kSockAccept = 17,// sock_accept(fd) -> connection fd (blocks)
    kSockSend = 18,  // sock_send(fd, buf, len) -> sent
    kSockRecv = 19,  // sock_recv(fd, buf, len) -> received (blocks)
    kYield = 20,     // yield()
    kFstatSize = 21, // fstat_size(fd) -> file size
    kMkdir = 22,     // mkdir(path, path_len)
    kFsync = 23,     // fsync(fd)
    kSockConnect = 24,// sock_connect(port) -> fd
    kGetArg = 25,    // getarg(index, buf, cap) -> len (argv helper)
    kPoll = 26,      // poll(fds, nfds, timeout_ns) -> ready count
                     //   (fds: records of 3 int64s {fd, events,
                     //    revents}; timeout_ns -1 = infinite, 0 =
                     //    non-blocking; blocks on wait queues)
    kEpollCreate = 27,// epoll_create() -> epoll fd
    kEpollCtl = 28,  // epoll_ctl(epfd, op, fd, events)
                     //   (op: kEpollCtlAdd/Del/Mod; events: kPoll*
                     //    bits, optionally | kEpollEt for
                     //    edge-triggered delivery)
    kEpollWait = 29, // epoll_wait(epfd, events, maxevents,
                     //   timeout_ns) -> ready count (events: records
                     //   of 2 int64s {fd, revents}; timeout like
                     //   kPoll)
    kCount
};

/** poll() event bits (Linux values). */
constexpr int64_t kPollIn = 0x01;
constexpr int64_t kPollOut = 0x04;
constexpr int64_t kPollErr = 0x08;
constexpr int64_t kPollHup = 0x10;
constexpr int64_t kPollNval = 0x20;

/** Bytes per poll() record: {fd, events, revents}, each int64. */
constexpr uint64_t kPollRecordBytes = 24;

/** epoll_ctl() operations (Linux values). */
constexpr uint64_t kEpollCtlAdd = 1;
constexpr uint64_t kEpollCtlDel = 2;
constexpr uint64_t kEpollCtlMod = 3;

/** Edge-triggered delivery flag in epoll_ctl() events (EPOLLET). */
constexpr int64_t kEpollEt = 1ll << 31;

/** Bytes per epoll_wait() record: {fd, revents}, each int64. */
constexpr uint64_t kEpollRecordBytes = 16;

/** Static name of a syscall number ("sys.write", ...), for tracing. */
constexpr const char *
sys_name(uint64_t num)
{
    switch (static_cast<Sys>(num)) {
      case Sys::kExit: return "sys.exit";
      case Sys::kWrite: return "sys.write";
      case Sys::kRead: return "sys.read";
      case Sys::kOpen: return "sys.open";
      case Sys::kClose: return "sys.close";
      case Sys::kSpawn: return "sys.spawn";
      case Sys::kWaitPid: return "sys.waitpid";
      case Sys::kGetPid: return "sys.getpid";
      case Sys::kPipe: return "sys.pipe";
      case Sys::kDup2: return "sys.dup2";
      case Sys::kLseek: return "sys.lseek";
      case Sys::kUnlink: return "sys.unlink";
      case Sys::kMmap: return "sys.mmap";
      case Sys::kMunmap: return "sys.munmap";
      case Sys::kTime: return "sys.time";
      case Sys::kKill: return "sys.kill";
      case Sys::kSockListen: return "sys.sock_listen";
      case Sys::kSockAccept: return "sys.sock_accept";
      case Sys::kSockSend: return "sys.sock_send";
      case Sys::kSockRecv: return "sys.sock_recv";
      case Sys::kYield: return "sys.yield";
      case Sys::kFstatSize: return "sys.fstat_size";
      case Sys::kMkdir: return "sys.mkdir";
      case Sys::kFsync: return "sys.fsync";
      case Sys::kSockConnect: return "sys.sock_connect";
      case Sys::kGetArg: return "sys.getarg";
      case Sys::kPoll: return "sys.poll";
      case Sys::kEpollCreate: return "sys.epoll_create";
      case Sys::kEpollCtl: return "sys.epoll_ctl";
      case Sys::kEpollWait: return "sys.epoll_wait";
      case Sys::kCount: break;
    }
    return "sys.unknown";
}

/** open() flag bits (subset of POSIX). */
constexpr uint64_t kOpenRead = 0x0;
constexpr uint64_t kOpenWrite = 0x1;
constexpr uint64_t kOpenRdWr = 0x2;
constexpr uint64_t kOpenCreate = 0x40;
constexpr uint64_t kOpenTrunc = 0x200;
constexpr uint64_t kOpenAppend = 0x400;

/** lseek whence. */
constexpr uint64_t kSeekSet = 0;
constexpr uint64_t kSeekCur = 1;
constexpr uint64_t kSeekEnd = 2;

/** Signals (minimal set). */
constexpr uint64_t kSigKill = 9;
constexpr uint64_t kSigTerm = 15;

/** Negative errno encoding for syscall returns. */
inline int64_t
sys_err(int code)
{
    return -static_cast<int64_t>(code);
}

} // namespace occlum::abi

#endif // OCCLUM_OELF_ABI_H
