/**
 * @file
 * OELF: the ELF-like container for OVM binaries.
 *
 * An OELF image is position-independent by construction: the linker
 * fixes the layout *within* the image (code region, then the 4 KiB
 * guard gap the paper's modified LLD reserves (§8), then the data
 * region), so code reaches its globals with RIP-relative addressing
 * whose displacement is a link-time constant. The loader may place
 * the image base anywhere — MMDSFI domains have no address
 * constraints (paper §4).
 *
 * Domain layout when an image is loaded at `domain_base`:
 *
 *   T  [domain_base, +4096)                        RX  LibOS trampoline
 *   C  [T.end, +code_region_size)                  RX  user code
 *   G1 [C.end, +4096)                              unmapped guard
 *   D  [G1.end, +data_region_size)                 RW  PCB|globals|heap|stack
 *   G2 [D.end, +4096)                              unmapped guard
 *
 * The trampoline page is written by the loader, not the linker; it is
 * the only way out of the MMDSFI sandbox (paper §6). It starts with a
 * cfi_label so that user code can legally `call_reg` into it.
 *
 * The verifier signs approved images with an HMAC over the image
 * digest; the LibOS loader refuses unsigned images (paper §6).
 */
#ifndef OCCLUM_OELF_OELF_H
#define OCCLUM_OELF_OELF_H

#include <string>
#include <vector>

#include "base/bytes.h"
#include "base/result.h"
#include "crypto/hmac.h"
#include "vm/address_space.h"

namespace occlum::oelf {

/** Size of the guard regions G1/G2 (paper §6 sets them to 4 KiB). */
constexpr uint64_t kGuardSize = 4096;

/** Size of the loader-injected trampoline page at the domain base. */
constexpr uint64_t kTrampSize = 4096;

/** Bytes reserved for the PCB at D.begin (mirrors abi::kPcbSize). */
constexpr uint64_t kPcbReserve = 1024;

/** Image flag: the binary claims MMDSFI instrumentation. */
constexpr uint32_t kFlagInstrumented = 1u << 0;

/** A named offset into the code segment. */
struct Symbol {
    std::string name;
    uint64_t offset = 0;
};

/** An in-memory OELF image. */
struct Image {
    uint64_t entry_offset = 0; // code offset of _start (a cfi_label)
    Bytes code;                // instruction bytes
    Bytes data;                // initialized globals
    uint64_t bss_size = 0;     // zero-initialized globals
    uint64_t heap_size = 1 << 20;
    uint64_t stack_size = 64 << 10;
    uint32_t flags = 0;
    /**
     * Link-time code-region reservation. The RIP-relative data
     * displacements are computed against this (not the actual code
     * size), so the LibOS can preallocate fixed-geometry domain slots
     * at enclave initialization — the SGX 1.0 workaround of paper §6.
     * 0 means "exactly the code size, page aligned".
     */
    uint64_t code_reserve = 0;
    std::vector<Symbol> symbols;

    bool has_signature = false;
    crypto::Sha256Digest signature{};

    // ---- derived layout --------------------------------------------
    /** Code region size (page aligned, >= code bytes). */
    uint64_t
    code_region_size() const
    {
        uint64_t min_size = (code.size() + vm::kPageMask) & ~vm::kPageMask;
        return code_reserve > min_size ? code_reserve : min_size;
    }

    /** Offset of C.begin (user code) from the domain base. */
    static constexpr uint64_t
    code_offset()
    {
        return kTrampSize;
    }

    /** Offset of D.begin from the image/domain base. */
    uint64_t
    data_offset() const
    {
        return kTrampSize + code_region_size() + kGuardSize;
    }

    /** Data region size: PCB + globals + bss + heap + stack (paged). */
    uint64_t
    data_region_size() const
    {
        uint64_t raw = kPcbReserve + data.size() + bss_size + heap_size +
                       stack_size;
        return (raw + vm::kPageMask) & ~vm::kPageMask;
    }

    /** Offset of the heap start within the data region. */
    uint64_t
    heap_offset_in_data() const
    {
        return (kPcbReserve + data.size() + bss_size + 7) & ~7ull;
    }

    /** Total footprint of a loaded domain, guards included. */
    uint64_t
    domain_size() const
    {
        return kTrampSize + code_region_size() + kGuardSize +
               data_region_size() + kGuardSize;
    }

    /** Total bytes that must be copied into the enclave at load time. */
    uint64_t
    load_bytes() const
    {
        return code.size() + data.size();
    }

    /** Look up a symbol; returns ~0ull when absent. */
    uint64_t find_symbol(const std::string &name) const;

    // ---- serialization ------------------------------------------------
    Bytes serialize() const;
    static Result<Image> parse(const Bytes &raw);

    /** Digest over everything except the signature fields. */
    crypto::Sha256Digest content_digest() const;

    /** Sign with the given verifier key (HMAC over content digest). */
    void sign(const crypto::Key128 &key);

    /** Check the signature against `key`. */
    bool check_signature(const crypto::Key128 &key) const;
};

} // namespace occlum::oelf

#endif // OCCLUM_OELF_OELF_H
