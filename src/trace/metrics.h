/**
 * @file
 * Metrics registry: named monotonic counters and log-bucketed
 * histograms that subsystems register once (typically at
 * construction, caching the returned pointer) and bump on hot paths.
 *
 * Histograms use power-of-two buckets — bucket i holds values whose
 * bit width is i, i.e. [2^(i-1), 2^i) — so recording is one
 * bit_width() and one increment regardless of the value range, and
 * p50/p95/p99 come from a bucket walk with linear interpolation,
 * clamped to the observed [min, max]. That trades exactness for O(1)
 * memory; benches that need exact percentiles over few samples use
 * occlum::Aggregate instead.
 */
#ifndef OCCLUM_TRACE_METRICS_H
#define OCCLUM_TRACE_METRICS_H

#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

namespace occlum::trace {

/** A monotonic named counter. */
class Counter
{
  public:
    void add(uint64_t n = 1) { value_ += n; }
    uint64_t value() const { return value_; }
    void reset() { value_ = 0; }

  private:
    uint64_t value_ = 0;
};

/** Log2-bucketed histogram with approximate percentiles. */
class Histogram
{
  public:
    /** Bucket i covers values with bit width i: [2^(i-1), 2^i). */
    static constexpr size_t kBuckets = 65;

    void
    record(uint64_t value)
    {
        if (count_ == 0) {
            min_ = max_ = value;
        } else {
            min_ = value < min_ ? value : min_;
            max_ = value > max_ ? value : max_;
        }
        ++count_;
        sum_ += value;
        ++buckets_[bucket_index(value)];
    }

    uint64_t count() const { return count_; }
    uint64_t sum() const { return sum_; }
    uint64_t min() const { return min_; }
    uint64_t max() const { return max_; }
    double mean() const { return count_ ? double(sum_) / count_ : 0.0; }

    /** Approximate value at percentile p in [0, 100]. */
    double percentile(double p) const;
    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    const std::array<uint64_t, kBuckets> &buckets() const
    {
        return buckets_;
    }

    static size_t
    bucket_index(uint64_t value)
    {
        return static_cast<size_t>(std::bit_width(value));
    }

    /** Inclusive value range [lo, hi] covered by bucket i. */
    static uint64_t bucket_lo(size_t i)
    {
        return i == 0 ? 0 : 1ull << (i - 1);
    }
    static uint64_t bucket_hi(size_t i)
    {
        return i == 0 ? 0 : i >= 64 ? ~0ull : (1ull << i) - 1;
    }

    void
    reset()
    {
        buckets_.fill(0);
        count_ = sum_ = min_ = max_ = 0;
    }

  private:
    std::array<uint64_t, kBuckets> buckets_{};
    uint64_t count_ = 0;
    uint64_t sum_ = 0;
    uint64_t min_ = 0;
    uint64_t max_ = 0;
};

/**
 * The process-wide registry. Entries are created on first lookup and
 * never erased, so cached Counter / Histogram pointers stay valid
 * across reset() (which only zeroes values).
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Zero every metric; registrations (and addresses) survive. */
    void reset();

    const std::map<std::string, Counter> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram> &histograms() const
    {
        return histograms_;
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace occlum::trace

#endif // OCCLUM_TRACE_METRICS_H
