#include "trace/metrics.h"

namespace occlum::trace {

namespace {

Registry g_registry;

} // namespace

Registry &
Registry::instance()
{
    return g_registry;
}

Counter &
Registry::counter(const std::string &name)
{
    return counters_[name];
}

Histogram &
Registry::histogram(const std::string &name)
{
    return histograms_[name];
}

void
Registry::reset()
{
    for (auto &[name, counter] : counters_) {
        counter.reset();
    }
    for (auto &[name, histogram] : histograms_) {
        histogram.reset();
    }
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0) {
        return 0.0;
    }
    p = p < 0.0 ? 0.0 : p > 100.0 ? 100.0 : p;
    // Nearest-rank target (1-based), then interpolate inside the
    // bucket that contains it.
    uint64_t target = static_cast<uint64_t>(p / 100.0 * count_);
    if (target < 1) {
        target = 1;
    }
    uint64_t seen = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        if (buckets_[i] == 0) {
            continue;
        }
        if (seen + buckets_[i] >= target) {
            double lo = static_cast<double>(bucket_lo(i));
            double hi = static_cast<double>(bucket_hi(i));
            double frac = buckets_[i] == 1
                              ? 0.5
                              : static_cast<double>(target - seen - 1) /
                                    static_cast<double>(buckets_[i] - 1);
            double value = lo + frac * (hi - lo);
            // The true samples lie in [min_, max_]; never report
            // outside the observed range.
            if (value < static_cast<double>(min_)) {
                value = static_cast<double>(min_);
            }
            if (value > static_cast<double>(max_)) {
                value = static_cast<double>(max_);
            }
            return value;
        }
        seen += buckets_[i];
    }
    return static_cast<double>(max_);
}

} // namespace occlum::trace
