#include "trace/trace.h"

#include "base/log.h"

namespace occlum::trace {

namespace {

size_t
round_up_pow2(size_t n)
{
    size_t cap = 1;
    while (cap < n) {
        cap <<= 1;
    }
    return cap;
}

} // namespace

void
Tracer::enable(size_t capacity)
{
    OCC_CHECK_MSG(capacity > 0, "tracer capacity must be positive");
    size_t cap = round_up_pow2(capacity);
    ring_.assign(cap, Event{});
    mask_ = cap - 1;
    cursor_.store(0, std::memory_order_relaxed);
    enabled_ = true;
}

void
Tracer::clear()
{
    cursor_.store(0, std::memory_order_relaxed);
}

std::vector<Event>
Tracer::events() const
{
    uint64_t total = recorded();
    uint64_t first = total > ring_.size() ? total - ring_.size() : 0;
    std::vector<Event> out;
    out.reserve(total - first);
    for (uint64_t i = first; i < total; ++i) {
        out.push_back(ring_[i & mask_]);
    }
    return out;
}

const char *
category_name(Category cat)
{
    switch (cat) {
      case Category::kVm: return "vm";
      case Category::kSgx: return "sgx";
      case Category::kLibos: return "libos";
      case Category::kFs: return "fs";
      case Category::kOcall: return "ocall";
      case Category::kSched: return "sched";
      case Category::kNet: return "net";
      case Category::kHost: return "host";
      case Category::kCount: break;
    }
    return "?";
}

std::array<uint64_t, kNumCategories>
self_cycles_by_category(const std::vector<Event> &events)
{
    std::array<uint64_t, kNumCategories> self{};
    struct Open {
        Category cat;
        uint64_t last_ts;
    };
    std::vector<Open> stack;
    for (const Event &e : events) {
        if (!stack.empty()) {
            Open &top = stack.back();
            self[static_cast<size_t>(top.cat)] += e.ts - top.last_ts;
            top.last_ts = e.ts;
        }
        switch (e.type) {
          case EventType::kBegin:
            stack.push_back({e.cat, e.ts});
            break;
          case EventType::kEnd:
            if (!stack.empty()) {
                stack.pop_back();
                if (!stack.empty()) {
                    stack.back().last_ts = e.ts;
                }
            }
            break;
          case EventType::kInstant:
            break;
        }
    }
    return self;
}

} // namespace occlum::trace
