/**
 * @file
 * Trace and metrics exporters.
 *
 *  - chrome_trace_json(): the Chrome trace_event JSON array format;
 *    save it to a file and load it in chrome://tracing (or Perfetto)
 *    to see the span timeline. Timestamps are simulated microseconds.
 *  - metrics_json() / metrics_text(): a flat dump of every registered
 *    counter and histogram (count/mean/p50/p95/p99/min/max), used by
 *    the benches for machine-readable output.
 */
#ifndef OCCLUM_TRACE_EXPORT_H
#define OCCLUM_TRACE_EXPORT_H

#include <string>
#include <vector>

#include "base/result.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace occlum::trace {

/** Render events as a Chrome trace_event JSON object. */
std::string chrome_trace_json(const std::vector<Event> &events,
                              uint64_t dropped = 0);

/** Convenience: export the tracer's retained events to `path`. */
Status write_chrome_trace(const std::string &path, const Tracer &tracer);

/** All registered metrics as a JSON object. */
std::string metrics_json(const Registry &registry);

/** All registered metrics as an aligned text block (for stdout). */
std::string metrics_text(const Registry &registry);

/** Write `content` to `path` (overwriting). */
Status write_text_file(const std::string &path,
                       const std::string &content);

} // namespace occlum::trace

#endif // OCCLUM_TRACE_EXPORT_H
