/**
 * @file
 * Enclave-wide event tracer: a bounded ring buffer of begin/end spans
 * and instant events, timestamped in simulated cycles.
 *
 * The simulation charges every cost — interpreted instructions, SGX
 * transitions, LibOS syscalls, FS crypto, OCALLs, disk, network — to
 * one SimClock. This tracer records *where* those cycles go: hot
 * paths open RAII spans (OCC_TRACE_SPAN) around the code that charges
 * the clock, and the resulting span tree attributes every cycle to a
 * subsystem category. The paper's Fig. 7b-style breakdowns fall out
 * of self_cycles_by_category() instead of hand-maintained counters.
 *
 * Design constraints:
 *  - Bounded memory: a power-of-two ring; when it wraps, the oldest
 *    events are overwritten and counted in dropped().
 *  - Near-zero overhead when off: the record path is one relaxed
 *    load + branch per site, and OCCLUM_TRACE_DISABLED compiles the
 *    hook macros out entirely (the ablation bench measures this).
 *  - Lock-free-style writes: the simulation is single-threaded, but
 *    the cursor is a relaxed atomic so the write path is plain
 *    wait-free index arithmetic — no allocation, no locking.
 */
#ifndef OCCLUM_TRACE_TRACE_H
#define OCCLUM_TRACE_TRACE_H

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "base/sim_clock.h"

namespace occlum::trace {

/** Subsystem that a span or instant event belongs to. */
enum class Category : uint8_t {
    kVm = 0, // user instruction execution (SIP code under the OVM)
    kSgx,    // enclave transitions: EENTER / EEXIT / AEX
    kLibos,  // LibOS syscall dispatch (entry to return)
    kFs,     // EncFs logic including AES-CTR + HMAC per block
    kOcall,  // delegations to the untrusted host (disk, net)
    kSched,  // scheduler rounds, quanta bookkeeping, idle waits
    kNet,    // simulated network operations
    kHost,   // other host-side work (loader, bench harness)
    kCount,
};

constexpr size_t kNumCategories = static_cast<size_t>(Category::kCount);

const char *category_name(Category cat);

enum class EventType : uint8_t { kBegin, kEnd, kInstant };

/** One trace record. `name` must have static storage duration. */
struct Event {
    uint64_t ts = 0;  // simulated cycles at record time
    uint64_t arg = 0; // site-defined payload (pid, bytes, ...)
    const char *name = nullptr;
    Category cat = Category::kHost;
    EventType type = EventType::kInstant;
};

/**
 * The process-wide tracer. Disabled by default; benches and tests
 * enable it with a capacity and bind the SimClock under test so
 * events carry that clock's cycle timestamps.
 */
class Tracer
{
  public:
    static constexpr size_t kDefaultCapacity = 1 << 16;

    static Tracer &instance();

    /** Start recording into a fresh ring (capacity rounded up to a
     *  power of two). Resets the cursor and drop count. */
    void enable(size_t capacity = kDefaultCapacity);
    void disable() { enabled_ = false; }
    bool enabled() const { return enabled_; }

    /** Clock whose cycles() stamps every event (may be null: ts=0). */
    void bind_clock(const SimClock *clock) { clock_ = clock; }
    const SimClock *bound_clock() const { return clock_; }
    uint64_t now() const { return clock_ ? clock_->cycles() : 0; }

    void
    record(Category cat, EventType type, const char *name,
           uint64_t arg = 0)
    {
        if (!enabled_) {
            return;
        }
        uint64_t slot =
            cursor_.fetch_add(1, std::memory_order_relaxed);
        Event &e = ring_[slot & mask_];
        e.ts = now();
        e.arg = arg;
        e.name = name;
        e.cat = cat;
        e.type = type;
    }

    /** Total events accepted since enable(). */
    uint64_t
    recorded() const
    {
        return cursor_.load(std::memory_order_relaxed);
    }

    /** Oldest events overwritten by ring wraparound. */
    uint64_t
    dropped() const
    {
        uint64_t total = recorded();
        return total > ring_.size() ? total - ring_.size() : 0;
    }

    size_t capacity() const { return ring_.size(); }

    /** Chronological copy of the retained events (oldest first). */
    std::vector<Event> events() const;

    /** Drop all retained events, keep the ring and enabled state. */
    void clear();

  private:
    bool enabled_ = false;
    const SimClock *clock_ = nullptr;
    std::vector<Event> ring_;
    uint64_t mask_ = 0;
    std::atomic<uint64_t> cursor_{0};
};

/**
 * Exclusive (self) cycles per category, computed by replaying the
 * span stream with a stack: time between two consecutive events is
 * attributed to the innermost open span. Instants do not open spans;
 * unmatched ends (their begins were overwritten) are skipped.
 */
std::array<uint64_t, kNumCategories>
self_cycles_by_category(const std::vector<Event> &events);

/**
 * The single tracer instance. An inline variable (not a function-local
 * static) so the disabled-tracer check on hot paths inlines to one
 * flag load with no initialization guard.
 */
inline Tracer g_tracer_instance;

inline Tracer &
Tracer::instance()
{
    return g_tracer_instance;
}

/** RAII begin/end span; no-op when the tracer is disabled. */
class ScopedSpan
{
  public:
    ScopedSpan(Category cat, const char *name, uint64_t arg = 0)
    {
        Tracer &t = Tracer::instance();
        if (!t.enabled()) {
            return;
        }
        tracer_ = &t;
        cat_ = cat;
        name_ = name;
        t.record(cat, EventType::kBegin, name, arg);
    }

    ~ScopedSpan()
    {
        if (tracer_) {
            tracer_->record(cat_, EventType::kEnd, name_);
        }
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    Tracer *tracer_ = nullptr;
    const char *name_ = nullptr;
    Category cat_ = Category::kHost;
};

} // namespace occlum::trace

// ---------------------------------------------------------------------
// Hook macros. Compile to nothing under OCCLUM_TRACE_DISABLED (the
// CMake option OCCLUM_DISABLE_TRACING); otherwise cost one enabled_
// branch per site when tracing is off at runtime.
// ---------------------------------------------------------------------

#define OCC_TRACE_CONCAT2(a, b) a##b
#define OCC_TRACE_CONCAT(a, b) OCC_TRACE_CONCAT2(a, b)

#ifndef OCCLUM_TRACE_DISABLED

/** Open a span for the rest of the enclosing scope. */
#define OCC_TRACE_SPAN(cat, name, ...)                                 \
    occlum::trace::ScopedSpan OCC_TRACE_CONCAT(occ_trace_span_,       \
                                               __COUNTER__)(          \
        occlum::trace::Category::cat, name, ##__VA_ARGS__)

/** Record a point event. */
#define OCC_TRACE_INSTANT(cat, name, ...)                              \
    occlum::trace::Tracer::instance().record(                          \
        occlum::trace::Category::cat,                                  \
        occlum::trace::EventType::kInstant, name, ##__VA_ARGS__)

#else

#define OCC_TRACE_SPAN(cat, name, ...)                                 \
    do {                                                               \
    } while (0)
#define OCC_TRACE_INSTANT(cat, name, ...)                              \
    do {                                                               \
    } while (0)

#endif // OCCLUM_TRACE_DISABLED

#endif // OCCLUM_TRACE_TRACE_H
