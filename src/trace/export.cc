#include "trace/export.h"

#include <cinttypes>
#include <cstdio>

#include "base/stats.h"

namespace occlum::trace {

namespace {

/** Escape a string for a JSON literal (quotes, backslash, control). */
std::string
json_escape(const char *s)
{
    std::string out;
    for (; s && *s; ++s) {
        char c = *s;
        if (c == '"' || c == '\\') {
            out.push_back('\\');
            out.push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += format("\\u%04x", c);
        } else {
            out.push_back(c);
        }
    }
    return out;
}

const char *
phase_of(EventType type)
{
    switch (type) {
      case EventType::kBegin: return "B";
      case EventType::kEnd: return "E";
      case EventType::kInstant: return "i";
    }
    return "i";
}

} // namespace

std::string
chrome_trace_json(const std::vector<Event> &events, uint64_t dropped)
{
    std::string out = "{\"traceEvents\":[";
    bool first = true;
    for (const Event &e : events) {
        if (!first) {
            out.push_back(',');
        }
        first = false;
        out += format("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"%s\","
                      "\"ts\":%.3f,\"pid\":1,\"tid\":1",
                      json_escape(e.name).c_str(),
                      category_name(e.cat), phase_of(e.type),
                      SimClock::cycles_to_micros(e.ts));
        if (e.type == EventType::kInstant) {
            out += ",\"s\":\"t\"";
        }
        if (e.arg != 0) {
            out += format(",\"args\":{\"arg\":%" PRIu64 "}", e.arg);
        }
        out.push_back('}');
    }
    out += format("],\"displayTimeUnit\":\"ms\","
                  "\"otherData\":{\"dropped\":\"%" PRIu64 "\"}}",
                  dropped);
    return out;
}

Status
write_chrome_trace(const std::string &path, const Tracer &tracer)
{
    return write_text_file(
        path, chrome_trace_json(tracer.events(), tracer.dropped()));
}

std::string
metrics_json(const Registry &registry)
{
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &[name, counter] : registry.counters()) {
        if (!first) {
            out.push_back(',');
        }
        first = false;
        out += format("\"%s\":%" PRIu64, json_escape(name.c_str()).c_str(),
                      counter.value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &[name, h] : registry.histograms()) {
        if (!first) {
            out.push_back(',');
        }
        first = false;
        out += format("\"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                      ",\"min\":%" PRIu64 ",\"max\":%" PRIu64
                      ",\"mean\":%.3f,\"p50\":%.1f,\"p95\":%.1f,"
                      "\"p99\":%.1f}",
                      json_escape(name.c_str()).c_str(), h.count(),
                      h.sum(), h.min(), h.max(), h.mean(), h.p50(),
                      h.p95(), h.p99());
    }
    out += "}}";
    return out;
}

std::string
metrics_text(const Registry &registry)
{
    std::string out;
    for (const auto &[name, counter] : registry.counters()) {
        out += format("%-32s %12" PRIu64 "\n", name.c_str(),
                      counter.value());
    }
    for (const auto &[name, h] : registry.histograms()) {
        if (h.count() == 0) {
            continue;
        }
        out += format("%-32s count=%" PRIu64 " mean=%.1f p50=%.0f "
                      "p95=%.0f p99=%.0f max=%" PRIu64 "\n",
                      name.c_str(), h.count(), h.mean(), h.p50(),
                      h.p95(), h.p99(), h.max());
    }
    return out;
}

Status
write_text_file(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        return Status(ErrorCode::kIo, "cannot open " + path);
    }
    size_t written = std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    if (written != content.size()) {
        return Status(ErrorCode::kIo, "short write to " + path);
    }
    return Status();
}

} // namespace occlum::trace
