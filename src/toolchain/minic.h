/**
 * @file
 * MiniC: the source language of the Occlum toolchain reproduction.
 *
 * The real Occlum toolchain is LLVM 7 plus a modified LLD plus a
 * patched musl (paper §8); applications are recompiled from C. Our
 * substitute is a small C-like language that is rich enough to express
 * every benchmark workload (shell utilities, a compile pipeline, an
 * HTTP server, SPEC-like kernels) while keeping the compiler — and
 * with it the *untrusted* portion of the TCB story (paper §5) — small.
 *
 * Language summary:
 *   global int g;  global int a[N];  global byte buf[N];
 *   func name(p1, p2) { ... }          // all values are int64
 *   var x = e;  var arr[N];            // locals (arrays are N words)
 *   x = e;  a[i] = e;  if/else, while, for, break, continue, return
 *   operators: || && | ^ & == != < <= > >= << >> + - * / % ! ~ unary-
 *   builtins:
 *     wload(addr) wstore(addr, v)      // 64-bit memory access
 *     bload(addr) bstore(addr, v)      // byte access
 *     syscall(num, a1..a6)             // LibOS syscall (trailing args opt.)
 *     heap_begin() heap_end() argc()   // PCB accessors
 *     rdcycle()                        // simulated cycle counter
 *   string literals evaluate to the address of a NUL-terminated byte
 *   array in the data segment.
 *
 * A small stdlib written in MiniC (strlen, memcpy, print, itoa,
 * malloc, ...) is prepended to every compilation unless disabled.
 */
#ifndef OCCLUM_TOOLCHAIN_MINIC_H
#define OCCLUM_TOOLCHAIN_MINIC_H

#include <memory>
#include <string>
#include <vector>

#include "base/result.h"
#include "oelf/oelf.h"

namespace occlum::toolchain {

/**
 * Which MMDSFI instrumentation to apply (paper §4). The combinations
 * drive the Fig. 7 benchmarks:
 *   none ........................ baseline (Linux executor only)
 *   cfi only .................... "confining control transfers"
 *   cfi + stores ................ + "confining memory stores"
 *   cfi + stores + loads ........ full MMDSFI
 *   optimize .................... §4.3 range-analysis optimizations
 */
struct InstrumentOptions {
    bool cfi = false;
    bool guard_stores = false;
    bool guard_loads = false;
    bool optimize = false;

    /** Full MMDSFI with optimizations: what Occlum binaries use. */
    static InstrumentOptions
    full()
    {
        return {true, true, true, true};
    }

    /** Full MMDSFI without the §4.3 optimizations. */
    static InstrumentOptions
    naive()
    {
        return {true, true, true, false};
    }

    /** No instrumentation at all (Linux-baseline binaries). */
    static InstrumentOptions
    none()
    {
        return {false, false, false, false};
    }

    bool
    any() const
    {
        return cfi || guard_stores || guard_loads;
    }
};

/** Tunables for the produced image. */
struct CompileOptions {
    InstrumentOptions instrument = InstrumentOptions::full();
    uint64_t heap_size = 1 << 20;
    uint64_t stack_size = 64 << 10;
    bool with_stdlib = true;
    /** Pad the code segment with trailing nops to reach this size
     *  (used to synthesize large binaries like cc1 for Fig. 6a). */
    uint64_t pad_code_to = 0;
    /**
     * Link-time code-region reservation (the fixed domain-slot
     * geometry the Occlum LibOS preallocates under SGX 1.0). RIP-
     * relative data displacements are computed against this.
     */
    uint64_t code_reserve = 1 << 20;
};

/** Instrumentation statistics (drives the Fig. 7b breakdown). */
struct InstrumentStats {
    uint64_t mem_guards_emitted = 0;
    uint64_t mem_guards_elided_static = 0; // sp-/rip-relative, provably in D
    uint64_t mem_guards_removed_redundant = 0;
    uint64_t mem_guards_hoisted = 0;
    uint64_t cfi_labels = 0;
    uint64_t cfi_guards = 0;
};

/** A compilation result: the image plus diagnostics. */
struct CompileOutput {
    oelf::Image image;
    InstrumentStats stats;
};

/** Compile MiniC source into an (unsigned) OELF image. */
Result<CompileOutput> compile(const std::string &source,
                              const CompileOptions &options = {});

/** The embedded MiniC standard library source. */
const char *stdlib_source();

} // namespace occlum::toolchain

#endif // OCCLUM_TOOLCHAIN_MINIC_H
