#include "toolchain/ast.h"

#include <optional>

#include "base/log.h"

namespace occlum::toolchain {

namespace {

/** Recursive-descent parser over the token stream. */
class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens) : toks_(std::move(tokens)) {}

    Result<Program>
    parse_program()
    {
        Program prog;
        while (!at_eof()) {
            if (peek_keyword("global")) {
                auto g = parse_global();
                if (!g.ok()) return g.error();
                prog.globals.push_back(g.take());
            } else if (peek_keyword("func")) {
                auto f = parse_func();
                if (!f.ok()) return f.error();
                prog.funcs.push_back(f.take());
            } else {
                return err("expected 'global' or 'func'");
            }
            if (failed_) return *failed_;
        }
        return prog;
    }

  private:
    // ---- token helpers ------------------------------------------------
    const Token &cur() const { return toks_[pos_]; }
    bool at_eof() const { return cur().kind == Tok::kEof; }

    bool
    peek_keyword(const char *kw) const
    {
        return cur().kind == Tok::kKeyword && cur().text == kw;
    }

    bool
    peek_punct(const char *p) const
    {
        return cur().kind == Tok::kPunct && cur().text == p;
    }

    bool
    accept_keyword(const char *kw)
    {
        if (peek_keyword(kw)) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    accept_punct(const char *p)
    {
        if (peek_punct(p)) {
            ++pos_;
            return true;
        }
        return false;
    }

    Error
    err(const std::string &why)
    {
        Error e(ErrorCode::kInval,
                "parse error at line " + std::to_string(cur().line) +
                    " near '" + cur().text + "': " + why);
        if (!failed_) failed_ = e;
        return e;
    }

    bool
    expect_punct(const char *p)
    {
        if (!accept_punct(p)) {
            err(std::string("expected '") + p + "'");
            return false;
        }
        return true;
    }

    Result<std::string>
    expect_ident()
    {
        if (cur().kind != Tok::kIdent) {
            return err("expected identifier");
        }
        std::string name = cur().text;
        ++pos_;
        return name;
    }

    // ---- grammar --------------------------------------------------------
    Result<GlobalDecl>
    parse_global()
    {
        GlobalDecl g;
        g.line = cur().line;
        accept_keyword("global");
        if (accept_keyword("byte")) {
            g.is_byte = true;
        } else if (!accept_keyword("int")) {
            return err("expected 'int' or 'byte'");
        }
        auto name = expect_ident();
        if (!name.ok()) return name.error();
        g.name = name.take();
        if (accept_punct("[")) {
            if (cur().kind != Tok::kNumber) {
                return err("expected array size");
            }
            g.count = static_cast<uint64_t>(cur().value);
            g.is_array = true;
            ++pos_;
            if (!expect_punct("]")) return *failed_;
        }
        if (accept_punct("=")) {
            if (cur().kind == Tok::kString) {
                if (!g.is_byte) {
                    return err("string initializer requires byte array");
                }
                g.init_string = cur().text;
                ++pos_;
            } else {
                // Brace-less initializer list: = 1, 2, 3
                while (true) {
                    bool negative = accept_punct("-");
                    if (cur().kind != Tok::kNumber) {
                        return err("expected numeric initializer");
                    }
                    int64_t v = cur().value;
                    ++pos_;
                    g.init.push_back(negative ? -v : v);
                    if (!accept_punct(",")) break;
                }
            }
        }
        if (!expect_punct(";")) return *failed_;
        return g;
    }

    Result<Func>
    parse_func()
    {
        Func f;
        f.line = cur().line;
        accept_keyword("func");
        auto name = expect_ident();
        if (!name.ok()) return name.error();
        f.name = name.take();
        if (!expect_punct("(")) return *failed_;
        if (!peek_punct(")")) {
            while (true) {
                auto p = expect_ident();
                if (!p.ok()) return p.error();
                f.params.push_back(p.take());
                if (!accept_punct(",")) break;
            }
        }
        if (!expect_punct(")")) return *failed_;
        auto body = parse_block();
        if (!body.ok()) return body.error();
        f.body = body.take();
        return f;
    }

    Result<std::vector<StmtPtr>>
    parse_block()
    {
        if (!expect_punct("{")) return *failed_;
        std::vector<StmtPtr> stmts;
        while (!peek_punct("}")) {
            if (at_eof()) return err("unterminated block");
            auto s = parse_stmt();
            if (!s.ok()) return s.error();
            stmts.push_back(s.take());
        }
        accept_punct("}");
        return stmts;
    }

    Result<StmtPtr>
    parse_stmt()
    {
        int line = cur().line;
        auto make = [&](StmtKind kind) {
            auto s = std::make_unique<Stmt>();
            s->kind = kind;
            s->line = line;
            return s;
        };

        if (accept_keyword("var")) {
            auto s = make(StmtKind::kVarDecl);
            auto name = expect_ident();
            if (!name.ok()) return name.error();
            s->name = name.take();
            if (accept_punct("[")) {
                if (cur().kind != Tok::kNumber) {
                    return err("expected array size");
                }
                s->is_array = true;
                s->array_size = static_cast<uint64_t>(cur().value);
                ++pos_;
                if (!expect_punct("]")) return *failed_;
            } else if (accept_punct("=")) {
                auto e = parse_expr();
                if (!e.ok()) return e.error();
                s->a = e.take();
            }
            if (!expect_punct(";")) return *failed_;
            return StmtPtr(std::move(s));
        }
        if (accept_keyword("if")) {
            auto s = make(StmtKind::kIf);
            if (!expect_punct("(")) return *failed_;
            auto cond = parse_expr();
            if (!cond.ok()) return cond.error();
            s->a = cond.take();
            if (!expect_punct(")")) return *failed_;
            auto body = parse_block();
            if (!body.ok()) return body.error();
            s->body = body.take();
            if (accept_keyword("else")) {
                if (peek_keyword("if")) {
                    auto nested = parse_stmt();
                    if (!nested.ok()) return nested.error();
                    s->else_body.push_back(nested.take());
                } else {
                    auto eb = parse_block();
                    if (!eb.ok()) return eb.error();
                    s->else_body = eb.take();
                }
            }
            return StmtPtr(std::move(s));
        }
        if (accept_keyword("while")) {
            auto s = make(StmtKind::kWhile);
            if (!expect_punct("(")) return *failed_;
            auto cond = parse_expr();
            if (!cond.ok()) return cond.error();
            s->a = cond.take();
            if (!expect_punct(")")) return *failed_;
            auto body = parse_block();
            if (!body.ok()) return body.error();
            s->body = body.take();
            return StmtPtr(std::move(s));
        }
        if (accept_keyword("for")) {
            auto s = make(StmtKind::kFor);
            if (!expect_punct("(")) return *failed_;
            if (!peek_punct(";")) {
                auto init = parse_simple_stmt();
                if (!init.ok()) return init.error();
                s->init = init.take();
            }
            if (!expect_punct(";")) return *failed_;
            if (!peek_punct(";")) {
                auto cond = parse_expr();
                if (!cond.ok()) return cond.error();
                s->a = cond.take();
            }
            if (!expect_punct(";")) return *failed_;
            if (!peek_punct(")")) {
                auto step = parse_simple_stmt();
                if (!step.ok()) return step.error();
                s->step = step.take();
            }
            if (!expect_punct(")")) return *failed_;
            auto body = parse_block();
            if (!body.ok()) return body.error();
            s->body = body.take();
            return StmtPtr(std::move(s));
        }
        if (accept_keyword("return")) {
            auto s = make(StmtKind::kReturn);
            if (!peek_punct(";")) {
                auto e = parse_expr();
                if (!e.ok()) return e.error();
                s->a = e.take();
            }
            if (!expect_punct(";")) return *failed_;
            return StmtPtr(std::move(s));
        }
        if (accept_keyword("break")) {
            auto s = make(StmtKind::kBreak);
            if (!expect_punct(";")) return *failed_;
            return StmtPtr(std::move(s));
        }
        if (accept_keyword("continue")) {
            auto s = make(StmtKind::kContinue);
            if (!expect_punct(";")) return *failed_;
            return StmtPtr(std::move(s));
        }
        auto s = parse_simple_stmt();
        if (!s.ok()) return s.error();
        if (!expect_punct(";")) return *failed_;
        return s;
    }

    /** Assignment / index assignment / expression (no trailing ';'). */
    Result<StmtPtr>
    parse_simple_stmt()
    {
        int line = cur().line;
        // Lookahead: ident '=' / ident '[' ... ']' '=' ?
        if (cur().kind == Tok::kIdent) {
            size_t save = pos_;
            std::string name = cur().text;
            ++pos_;
            if (accept_punct("=")) {
                auto e = parse_expr();
                if (!e.ok()) return e.error();
                auto s = std::make_unique<Stmt>();
                s->kind = StmtKind::kAssign;
                s->line = line;
                s->name = name;
                s->a = e.take();
                return StmtPtr(std::move(s));
            }
            if (accept_punct("[")) {
                auto idx = parse_expr();
                if (!idx.ok()) return idx.error();
                if (expect_punct("]") && accept_punct("=")) {
                    auto val = parse_expr();
                    if (!val.ok()) return val.error();
                    auto s = std::make_unique<Stmt>();
                    s->kind = StmtKind::kIndexAssign;
                    s->line = line;
                    s->name = name;
                    s->a = idx.take();
                    s->b = val.take();
                    return StmtPtr(std::move(s));
                }
                if (failed_) return *failed_;
            }
            pos_ = save; // plain expression statement
        }
        auto e = parse_expr();
        if (!e.ok()) return e.error();
        auto s = std::make_unique<Stmt>();
        s->kind = StmtKind::kExprStmt;
        s->line = line;
        s->a = e.take();
        return StmtPtr(std::move(s));
    }

    // ---- expressions (precedence climbing) -----------------------------
    Result<ExprPtr>
    parse_expr()
    {
        return parse_binary(0);
    }

    static int
    precedence(const std::string &op)
    {
        if (op == "||") return 1;
        if (op == "&&") return 2;
        if (op == "|") return 3;
        if (op == "^") return 4;
        if (op == "&") return 5;
        if (op == "==" || op == "!=") return 6;
        if (op == "<" || op == "<=" || op == ">" || op == ">=") return 7;
        if (op == "<<" || op == ">>") return 8;
        if (op == "+" || op == "-") return 9;
        if (op == "*" || op == "/" || op == "%") return 10;
        return -1;
    }

    Result<ExprPtr>
    parse_binary(int min_prec)
    {
        auto lhs = parse_unary();
        if (!lhs.ok()) return lhs.error();
        ExprPtr left = lhs.take();
        while (cur().kind == Tok::kPunct) {
            int prec = precedence(cur().text);
            if (prec < 0 || prec < min_prec) break;
            std::string op = cur().text;
            ++pos_;
            auto rhs = parse_binary(prec + 1);
            if (!rhs.ok()) return rhs.error();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::kBinary;
            e->line = left->line;
            e->op = op;
            e->lhs = std::move(left);
            e->rhs = rhs.take();
            left = std::move(e);
        }
        return left;
    }

    Result<ExprPtr>
    parse_unary()
    {
        if (peek_punct("-") || peek_punct("!") || peek_punct("~")) {
            std::string op = cur().text;
            int line = cur().line;
            ++pos_;
            auto inner = parse_unary();
            if (!inner.ok()) return inner.error();
            auto e = std::make_unique<Expr>();
            e->kind = ExprKind::kUnary;
            e->line = line;
            e->op = op;
            e->lhs = inner.take();
            return ExprPtr(std::move(e));
        }
        return parse_primary();
    }

    Result<ExprPtr>
    parse_primary()
    {
        int line = cur().line;
        auto make = [&](ExprKind kind) {
            auto e = std::make_unique<Expr>();
            e->kind = kind;
            e->line = line;
            return e;
        };
        if (cur().kind == Tok::kNumber) {
            auto e = make(ExprKind::kNumber);
            e->num = cur().value;
            ++pos_;
            return ExprPtr(std::move(e));
        }
        if (cur().kind == Tok::kString) {
            auto e = make(ExprKind::kString);
            e->str = cur().text;
            ++pos_;
            return ExprPtr(std::move(e));
        }
        if (accept_punct("(")) {
            auto e = parse_expr();
            if (!e.ok()) return e.error();
            if (!expect_punct(")")) return *failed_;
            return e;
        }
        if (cur().kind == Tok::kIdent) {
            std::string name = cur().text;
            ++pos_;
            if (accept_punct("(")) {
                auto e = make(ExprKind::kCall);
                e->name = name;
                if (!peek_punct(")")) {
                    while (true) {
                        auto arg = parse_expr();
                        if (!arg.ok()) return arg.error();
                        e->args.push_back(arg.take());
                        if (!accept_punct(",")) break;
                    }
                }
                if (!expect_punct(")")) return *failed_;
                return ExprPtr(std::move(e));
            }
            if (accept_punct("[")) {
                auto idx = parse_expr();
                if (!idx.ok()) return idx.error();
                if (!expect_punct("]")) return *failed_;
                auto e = make(ExprKind::kIndex);
                e->name = name;
                e->lhs = idx.take();
                return ExprPtr(std::move(e));
            }
            auto e = make(ExprKind::kVar);
            e->name = name;
            return ExprPtr(std::move(e));
        }
        return err("expected expression");
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
    std::optional<Error> failed_;
};

} // namespace

Result<Program>
parse(const std::string &source)
{
    auto tokens = lex(source);
    if (!tokens.ok()) {
        return tokens.error();
    }
    Parser parser(tokens.take());
    return parser.parse_program();
}

} // namespace occlum::toolchain
