/**
 * @file
 * MiniC front-end internals: tokens, AST, lexer and parser entry
 * points. Internal to the toolchain library; users include minic.h.
 */
#ifndef OCCLUM_TOOLCHAIN_AST_H
#define OCCLUM_TOOLCHAIN_AST_H

#include <memory>
#include <string>
#include <vector>

#include "base/result.h"

namespace occlum::toolchain {

/** Token kinds. Punctuation/keywords carry their spelling in text. */
enum class Tok {
    kEof,
    kNumber,
    kIdent,
    kString,
    kKeyword, // global func var if else while for return break continue
              // int byte
    kPunct,   // operators and separators
};

struct Token {
    Tok kind = Tok::kEof;
    std::string text;
    int64_t value = 0;
    int line = 0;
};

/** Tokenize; fails on malformed literals or stray characters. */
Result<std::vector<Token>> lex(const std::string &source);

// ---- AST ----------------------------------------------------------------

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
    kNumber,  // num
    kVar,     // name (scalar read, or array base address decay)
    kIndex,   // name[lhs]
    kUnary,   // op lhs
    kBinary,  // lhs op rhs
    kCall,    // name(args...)
    kString,  // string literal (address value)
};

struct Expr {
    ExprKind kind;
    int line = 0;
    int64_t num = 0;
    std::string name; // variable / function / operator spelling
    std::string op;
    ExprPtr lhs;
    ExprPtr rhs;
    std::vector<ExprPtr> args;
    std::string str; // string literal bytes
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

enum class StmtKind {
    kVarDecl,    // var name [= a] / var name[array_size]
    kAssign,     // name = a
    kIndexAssign,// name[a] = b
    kIf,         // cond=a, body, else_body
    kWhile,      // cond=a, body
    kFor,        // init, cond=a, step, body
    kReturn,     // a (optional)
    kBreak,
    kContinue,
    kExprStmt,   // a
};

struct Stmt {
    StmtKind kind;
    int line = 0;
    std::string name;
    bool is_array = false;
    uint64_t array_size = 0;
    ExprPtr a;
    ExprPtr b;
    StmtPtr init; // for
    StmtPtr step; // for
    std::vector<StmtPtr> body;
    std::vector<StmtPtr> else_body;
};

struct GlobalDecl {
    std::string name;
    bool is_byte = false;
    uint64_t count = 1; // elements (bytes for byte arrays, words for int)
    bool is_array = false;
    std::vector<int64_t> init; // optional initializers
    std::string init_string;   // for byte arrays initialized from string
    int line = 0;
};

struct Func {
    std::string name;
    std::vector<std::string> params;
    std::vector<StmtPtr> body;
    int line = 0;
};

struct Program {
    std::vector<GlobalDecl> globals;
    std::vector<Func> funcs;
};

/** Parse MiniC source into an AST. */
Result<Program> parse(const std::string &source);

} // namespace occlum::toolchain

#endif // OCCLUM_TOOLCHAIN_AST_H
