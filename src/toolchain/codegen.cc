/**
 * @file
 * MiniC code generation with MMDSFI instrumentation (paper §4).
 *
 * Responsibilities:
 *  - lower the AST to AsmItems (labels + OVM instructions);
 *  - insert mem_guard / cfi_label / cfi_guard pseudo-instructions and
 *    rewrite `ret` per the MMDSFI instrumentation rules (paper §4.2);
 *  - apply the §4.3 optimizations when enabled: static elision of
 *    provably-in-D accesses (sp-relative frame slots, rip-relative
 *    globals), redundant-check elimination within basic blocks, and
 *    loop-check hoisting via induction-variable register promotion;
 *  - lay out the data segment (PCB | globals | string literals) and
 *    produce the final OELF image.
 */
#include "toolchain/codegen.h"

#include <functional>
#include <map>
#include <optional>
#include <set>

#include "base/log.h"
#include "isa/assembler.h"
#include "oelf/abi.h"
#include "toolchain/ast.h"

namespace occlum::toolchain {

namespace isa_ = occlum::isa;
using isa_::Cond;
using isa_::Instruction;
using isa_::MemOperand;
using isa_::Opcode;

namespace {

/** Temp register pool (caller-saved). r13 = scratch, r14 = gate. */
constexpr uint8_t kTempRegs[] = {6, 7, 8, 9, 10, 11, 12};
constexpr uint8_t kGateReg = 14;
constexpr int kNumTemps = 7;
/** Frame layout: one spill slot per temp, then locals. */
constexpr int64_t kSpillBase = 0;
constexpr int64_t kLocalsBase = kNumTemps * 8;
/** Maximum frame size the verifier's stack budget allows. */
constexpr int64_t kMaxFrame = 1976;

struct GlobalInfo {
    uint64_t data_off = 0; // from D.begin (PCB included)
    bool is_byte = false;
    bool is_array = false;
    uint64_t count = 1;

    uint64_t elem_size() const { return is_byte ? 1 : 8; }
    uint64_t byte_size() const { return count * elem_size(); }
};

struct LocalInfo {
    int64_t slot_off = 0; // from sp after prologue
    bool is_array = false;
    uint64_t words = 1;
};

/** How statically safe a memory operand is (for guard elision). */
enum class MemSafety {
    kUnknown,    // arbitrary pointer: needs a guard
    kFrameSlot,  // [sp + small] within the guarded frame
    kStaticData, // rip-relative, provably inside D
    kHoisted,    // covered by a hoisted pre-loop guard (§4.3 opt. 2)
};

/** A loop-promotion plan for one while/for loop (paper §4.3 opt. 2). */
struct Promotion {
    std::string iv;           // induction variable (local scalar)
    int64_t step = 0;         // signed per-iteration delta
    std::vector<std::string> arrays; // promoted global arrays (<= 2)
    uint8_t iv_reg = 0;
    std::map<std::string, uint8_t> base_regs;
    /**
     * Exact AST nodes (Stmt or Expr pointers) whose guards may be
     * skipped: only accesses that execute unconditionally every
     * iteration qualify (the hoisting soundness argument and the
     * verifier's fixpoint both require per-iteration drift to be
     * bounded by an access).
     */
    std::set<const void *> sites;
};

class FnCompiler;

/** Whole-program compiler: data layout, functions, linking. */
class ProgramCompiler
{
  public:
    ProgramCompiler(const Program &prog, const CompileOptions &opts)
        : prog_(prog), opts_(opts)
    {}

    Result<CompileOutput> run();

    // ---- shared emission helpers (used by FnCompiler) ------------------
    void
    bind(const std::string &name)
    {
        AsmItem item;
        item.kind = AsmItem::Kind::kBind;
        item.bind_name = name;
        items_.push_back(std::move(item));
    }

    void
    emit(Instruction instr)
    {
        AsmItem item;
        item.instr = instr;
        items_.push_back(std::move(item));
    }

    void
    emit_branch(Opcode op, const std::string &target,
                Cond cond = Cond::kEq)
    {
        AsmItem item;
        item.instr.op = op;
        item.instr.cond = cond;
        item.branch_ref = target;
        items_.push_back(std::move(item));
    }

    void
    emit_addr_of(uint8_t reg, const std::string &label)
    {
        AsmItem item;
        item.instr.op = Opcode::kMovRI;
        item.instr.reg1 = reg;
        item.addr_ref = label;
        items_.push_back(std::move(item));
    }

    void
    emit_mem_ref(Instruction instr, const std::string &symbol)
    {
        AsmItem item;
        instr.mem.mode = isa_::AddrMode::kRipRel;
        item.instr = instr;
        item.mem_ref = symbol;
        items_.push_back(std::move(item));
    }

    /** Emit a removable mem_guard (bndcl+bndcu pair) on `mem`. */
    void
    emit_mem_guard(const MemOperand &mem)
    {
        int group = guard_group_counter_++;
        for (Opcode op : {Opcode::kBndclMem, Opcode::kBndcuMem}) {
            AsmItem item;
            item.instr.op = op;
            item.instr.bnd = isa_::kBndData;
            item.instr.mem = mem;
            item.guard_group = group;
            items_.push_back(std::move(item));
        }
        ++stats_.mem_guards_emitted;
    }

    /** Guard variant for rip-relative operands (needs symbol fixup). */
    void
    emit_mem_guard_sym(const std::string &symbol)
    {
        int group = guard_group_counter_++;
        for (Opcode op : {Opcode::kBndclMem, Opcode::kBndcuMem}) {
            AsmItem item;
            item.instr.op = op;
            item.instr.bnd = isa_::kBndData;
            item.instr.mem.mode = isa_::AddrMode::kRipRel;
            item.mem_ref = symbol;
            item.guard_group = group;
            items_.push_back(std::move(item));
        }
        ++stats_.mem_guards_emitted;
    }

    void
    emit_cfi_label()
    {
        if (!opts_.instrument.cfi) {
            return;
        }
        Instruction instr;
        instr.op = Opcode::kCfiLabel;
        instr.label_id = 0; // loader rewrites to the domain ID
        emit(instr);
        ++stats_.cfi_labels;
    }

    /** cfi_guard on `reg` (load into scratch + two equality checks). */
    void
    emit_cfi_guard(uint8_t reg)
    {
        if (!opts_.instrument.cfi) {
            return;
        }
        Instruction load;
        load.op = Opcode::kLoad;
        load.reg1 = isa_::kScratch;
        load.mem = isa_::mem_bd(reg, 0);
        emit(load);
        for (Opcode op : {Opcode::kBndclReg, Opcode::kBndcuReg}) {
            Instruction chk;
            chk.op = op;
            chk.bnd = isa_::kBndCfi;
            chk.reg1 = isa_::kScratch;
            emit(chk);
        }
        ++stats_.cfi_guards;
    }

    std::string
    new_label()
    {
        return ".L" + std::to_string(label_counter_++);
    }

    /** Intern a string literal into the data segment; returns symbol. */
    std::string intern_string(const std::string &text);

    const CompileOptions &opts() const { return opts_; }
    InstrumentStats &stats() { return stats_; }
    const std::map<std::string, GlobalInfo> &globals() const
    {
        return globals_;
    }
    const std::set<std::string> &functions() const { return functions_; }

    Error
    err(int line, const std::string &why)
    {
        return Error(ErrorCode::kInval,
                     "codegen error at line " + std::to_string(line) +
                         ": " + why);
    }

  private:
    Status layout_globals();
    Status compile_function(const Func &fn);
    void emit_start();
    Result<oelf::Image> link();

    const Program &prog_;
    const CompileOptions &opts_;
    std::map<std::string, GlobalInfo> globals_;
    std::set<std::string> functions_;
    Bytes data_; // starts at D.begin + kPcbSize
    std::map<std::string, std::string> string_syms_; // text -> symbol
    std::vector<AsmItem> items_;
    int label_counter_ = 0;
    int guard_group_counter_ = 0;
    int string_counter_ = 0;
    InstrumentStats stats_;
};

/** Compiles one function body. */
class FnCompiler
{
  public:
    FnCompiler(ProgramCompiler &pc, const Func &fn) : pc_(pc), fn_(fn) {}

    Status run();

  private:
    struct LoopCtx {
        std::string break_label;
        std::string continue_label;
        const Promotion *promotion = nullptr;
    };

    // ---- register pool ------------------------------------------------
    Result<uint8_t>
    alloc_temp(int line)
    {
        for (int i = 0; i < kNumTemps; ++i) {
            if (!temp_busy_[i] && !temp_pinned_[i]) {
                temp_busy_[i] = true;
                return kTempRegs[i];
            }
        }
        return pc_.err(line, "expression too complex (register pressure); "
                             "split it with intermediate variables");
    }

    void
    free_temp(uint8_t reg)
    {
        for (int i = 0; i < kNumTemps; ++i) {
            if (kTempRegs[i] == reg) {
                OCC_CHECK(temp_busy_[i]);
                temp_busy_[i] = false;
                return;
            }
        }
        OCC_PANIC("free_temp on non-temp r" << int(reg));
    }

    int
    temp_index(uint8_t reg) const
    {
        for (int i = 0; i < kNumTemps; ++i) {
            if (kTempRegs[i] == reg) return i;
        }
        return -1;
    }

    // ---- emission helpers ----------------------------------------------
    void
    mov_ri(uint8_t reg, int64_t imm)
    {
        Instruction i;
        i.op = Opcode::kMovRI;
        i.reg1 = reg;
        i.imm = imm;
        pc_.emit(i);
    }

    void
    mov_rr(uint8_t rd, uint8_t rs)
    {
        Instruction i;
        i.op = Opcode::kMovRR;
        i.reg1 = rd;
        i.reg2 = rs;
        pc_.emit(i);
    }

    void
    rr(Opcode op, uint8_t rd, uint8_t rs)
    {
        Instruction i;
        i.op = op;
        i.reg1 = rd;
        i.reg2 = rs;
        pc_.emit(i);
    }

    void
    ri(Opcode op, uint8_t rd, int64_t imm)
    {
        Instruction i;
        i.op = op;
        i.reg1 = rd;
        i.imm = imm;
        pc_.emit(i);
    }

    /**
     * Emit a load/store with instrumentation. `safety` drives static
     * elision when optimizing; naive mode guards everything.
     */
    void
    emit_access(Opcode op, uint8_t reg, const MemOperand &mem,
                MemSafety safety, const std::string &sym = "")
    {
        const InstrumentOptions &ins = pc_.opts().instrument;
        bool is_store = isa_::is_store(op);
        bool want = is_store ? ins.guard_stores : ins.guard_loads;
        if (want) {
            // Frame-slot traffic corresponds to register accesses in
            // -O2 x86 output (the paper's naive baseline); guarding it
            // would measure our spill-happy codegen, not MMDSFI.
            bool elide = safety == MemSafety::kFrameSlot ||
                         (ins.optimize && safety != MemSafety::kUnknown);
            if (elide) {
                if (safety == MemSafety::kHoisted) {
                    ++pc_.stats().mem_guards_hoisted;
                } else if (ins.optimize &&
                           safety == MemSafety::kStaticData) {
                    // Frame slots are baseline semantics (register
                    // traffic under -O2), not an optimization win.
                    ++pc_.stats().mem_guards_elided_static;
                }
            } else if (!sym.empty()) {
                pc_.emit_mem_guard_sym(sym);
            } else {
                pc_.emit_mem_guard(mem);
            }
        }
        Instruction i;
        i.op = op;
        i.reg1 = reg;
        i.mem = mem;
        if (!sym.empty()) {
            pc_.emit_mem_ref(i, sym);
        } else {
            pc_.emit(i);
        }
    }

    /** Frame-slot access helper. */
    void
    slot_access(Opcode op, uint8_t reg, int64_t slot_off)
    {
        emit_access(op, reg, isa_::mem_bd(isa_::kSp,
                                          static_cast<int32_t>(slot_off)),
                    MemSafety::kFrameSlot);
    }

    // ---- body generation -------------------------------------------------
    Status gen_block(const std::vector<StmtPtr> &stmts);
    Status gen_stmt(const Stmt &stmt);
    Status gen_loop(const Stmt &stmt); // while / for
    Result<uint8_t> gen_expr(const Expr &expr);
    Result<uint8_t> gen_call(const Expr &expr);
    Result<uint8_t> gen_builtin(const Expr &expr);
    Status gen_branch(const Expr &cond, const std::string &true_label,
                      const std::string &false_label);
    Status gen_store_var(const std::string &name, uint8_t value_reg,
                         int line);
    /**
     * Compute the address of name[idx] into a temp. Sets is_byte per
     * the element type and need_guard=false when the address is
     * provably inside the frame (small local arrays with constant
     * index).
     */
    Result<uint8_t> gen_index_addr_for(const std::string &name,
                                       const Expr &idx, int line,
                                       bool &is_byte, bool &need_guard);

    /** Emit the syscall gate sequence; result in r0. */
    void emit_gate_call();

    /** Save busy temps to spill slots around a call; returns mask. */
    uint32_t save_live_temps(const std::vector<uint8_t> &exclude);
    void restore_live_temps(uint32_t mask);

    // ---- loop promotion ---------------------------------------------------
    std::optional<Promotion> analyze_promotion(const Stmt &loop);
    bool expr_has_call(const Expr &expr) const;
    bool stmts_assign_var(const std::vector<StmtPtr> &stmts,
                          const std::string &name, int *count) const;
    void collect_promotable_arrays(const Stmt &loop, const std::string &iv,
                                   Promotion &promo) const;
    /** If `expr` is `iv` or `iv +/- const`, return the const offset. */
    std::optional<int64_t> induction_offset(const Expr &expr,
                                            const std::string &iv) const;
    /** Innermost promotion whose induction variable is `name`. */
    const Promotion *
    find_promoted_var(const std::string &name) const
    {
        for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
            if (it->promotion && it->promotion->iv == name) {
                return it->promotion;
            }
        }
        return nullptr;
    }

    /** Innermost promotion that pinned array `name`'s base register. */
    const Promotion *
    find_promoted_array(const std::string &name) const
    {
        for (auto it = loops_.rbegin(); it != loops_.rend(); ++it) {
            if (it->promotion && it->promotion->base_regs.count(name)) {
                return it->promotion;
            }
        }
        return nullptr;
    }

    ProgramCompiler &pc_;
    const Func &fn_;
    std::map<std::string, LocalInfo> locals_;
    int64_t frame_size_ = 0;
    bool temp_busy_[kNumTemps] = {};
    bool temp_pinned_[kNumTemps] = {};
    std::vector<LoopCtx> loops_;
    std::string epilogue_label_;
};

// ---------------------------------------------------------------------
// ProgramCompiler
// ---------------------------------------------------------------------

std::string
ProgramCompiler::intern_string(const std::string &text)
{
    auto it = string_syms_.find(text);
    if (it != string_syms_.end()) {
        return it->second;
    }
    std::string sym = "S_" + std::to_string(string_counter_++);
    GlobalInfo info;
    info.data_off = abi::kPcbSize + data_.size();
    info.is_byte = true;
    info.is_array = true;
    info.count = text.size() + 1;
    data_.insert(data_.end(), text.begin(), text.end());
    data_.push_back(0);
    // Align for whatever follows.
    while (data_.size() % 8) {
        data_.push_back(0);
    }
    globals_.emplace(sym, info);
    string_syms_.emplace(text, sym);
    return sym;
}

Status
ProgramCompiler::layout_globals()
{
    for (const auto &g : prog_.globals) {
        if (globals_.count(g.name)) {
            return Status(ErrorCode::kInval,
                          "duplicate global: " + g.name);
        }
        GlobalInfo info;
        info.is_byte = g.is_byte;
        info.is_array = g.is_array;
        info.count = g.is_array ? g.count : 1;
        if (info.count == 0) {
            return Status(ErrorCode::kInval,
                          "zero-sized array: " + g.name);
        }
        // Align words to 8.
        if (!info.is_byte) {
            while (data_.size() % 8) data_.push_back(0);
        }
        info.data_off = abi::kPcbSize + data_.size();
        Bytes init(info.byte_size(), 0);
        if (!g.init_string.empty()) {
            if (g.init_string.size() + 1 > init.size()) {
                return Status(ErrorCode::kInval,
                              "string initializer too long: " + g.name);
            }
            std::copy(g.init_string.begin(), g.init_string.end(),
                      init.begin());
        } else if (!g.init.empty()) {
            if (g.init.size() > info.count) {
                return Status(ErrorCode::kInval,
                              "too many initializers: " + g.name);
            }
            for (size_t i = 0; i < g.init.size(); ++i) {
                if (info.is_byte) {
                    init[i] = static_cast<uint8_t>(g.init[i]);
                } else {
                    set_le<uint64_t>(init.data() + 8 * i,
                                     static_cast<uint64_t>(g.init[i]));
                }
            }
        }
        data_.insert(data_.end(), init.begin(), init.end());
        while (data_.size() % 8) data_.push_back(0);
        globals_.emplace(g.name, info);
    }
    return Status();
}

void
ProgramCompiler::emit_start()
{
    bind("_start");
    emit_cfi_label();
    emit_branch(Opcode::kCall, "F_main");
    emit_cfi_label();
    // exit(main())
    Instruction mov;
    mov.op = Opcode::kMovRR;
    mov.reg1 = 1;
    mov.reg2 = 0;
    emit(mov);
    Instruction num;
    num.op = Opcode::kMovRI;
    num.reg1 = 0;
    num.imm = static_cast<int64_t>(abi::Sys::kExit);
    emit(num);
    // Gate call (no need to save temps: exit does not return).
    Instruction load_gate;
    load_gate.op = Opcode::kLoad;
    load_gate.reg1 = kGateReg;
    emit_mem_ref(load_gate, "__PCB");
    emit_cfi_guard(kGateReg);
    Instruction call;
    call.op = Opcode::kCallReg;
    call.reg1 = kGateReg;
    emit(call);
    emit_cfi_label();
    // Unreachable; loop defensively.
    bind(".Lhang");
    emit_branch(Opcode::kJmp, ".Lhang");
}

Status
ProgramCompiler::compile_function(const Func &fn)
{
    FnCompiler fc(*this, fn);
    return fc.run();
}

Result<CompileOutput>
ProgramCompiler::run()
{
    OCC_RETURN_IF_ERROR(layout_globals());
    for (const auto &fn : prog_.funcs) {
        if (!functions_.insert(fn.name).second) {
            return Error(ErrorCode::kInval,
                         "duplicate function: " + fn.name);
        }
    }
    if (!functions_.count("main")) {
        return Error(ErrorCode::kInval, "missing function: main");
    }
    emit_start();
    for (const auto &fn : prog_.funcs) {
        OCC_RETURN_IF_ERROR(compile_function(fn));
    }

    if (opts_.instrument.optimize &&
        (opts_.instrument.guard_loads || opts_.instrument.guard_stores)) {
        stats_.mem_guards_removed_redundant =
            eliminate_redundant_guards(items_);
    }

    auto image = link();
    if (!image.ok()) {
        return image.error();
    }
    CompileOutput out;
    out.image = image.take();
    out.stats = stats_;
    return out;
}

Result<oelf::Image>
ProgramCompiler::link()
{
    // Pass 1: feed items into the assembler to fix the code layout.
    isa_::Assembler assembler(oelf::Image::code_offset());
    for (const auto &item : items_) {
        if (item.kind == AsmItem::Kind::kBind) {
            assembler.bind(item.bind_name);
            continue;
        }
        if (!item.branch_ref.empty()) {
            assembler.emit_branch(item.instr, item.branch_ref);
        } else if (!item.addr_ref.empty()) {
            assembler.emit_addr_of(item.instr, item.addr_ref);
        } else if (!item.mem_ref.empty()) {
            Instruction instr = item.instr;
            instr.mem.mode = isa_::AddrMode::kRipRel;
            assembler.emit_mem_ref(instr, item.mem_ref);
        } else {
            assembler.emit(item.instr);
        }
    }
    uint64_t code_size = assembler.size_estimate();
    if (opts_.pad_code_to > code_size) {
        // Trailing unreachable nops to synthesize a large binary.
        Bytes pad(opts_.pad_code_to - code_size, 0x00);
        assembler.raw(pad);
        code_size = opts_.pad_code_to;
    }

    // Pass 2: now the code size (hence the data offset) is known;
    // define the data symbols and resolve everything.
    uint64_t code_region =
        (code_size + vm::kPageMask) & ~vm::kPageMask;
    if (opts_.code_reserve > code_region) {
        code_region = opts_.code_reserve;
    } else if (opts_.code_reserve != 0 &&
               code_region > opts_.code_reserve) {
        return Error(ErrorCode::kNoMem,
                     "code exceeds the configured code_reserve");
    }
    // Offsets from the assembler base (= start of user code).
    uint64_t data_base_off = code_region + oelf::kGuardSize;
    assembler.define_value("__PCB", data_base_off);
    assembler.define_value("__PCB_HEAP_BEGIN",
                           data_base_off + abi::kPcbHeapBegin);
    assembler.define_value("__PCB_HEAP_END",
                           data_base_off + abi::kPcbHeapEnd);
    assembler.define_value("__PCB_ARGC", data_base_off + abi::kPcbArgc);
    for (const auto &[name, info] : globals_) {
        assembler.define_value("D_" + name,
                               data_base_off + info.data_off);
    }

    oelf::Image image;
    image.code = assembler.finish();
    image.data = data_;
    image.bss_size = 0;
    image.heap_size = opts_.heap_size;
    image.stack_size = opts_.stack_size;
    image.code_reserve = code_region;
    image.entry_offset = assembler.label_offset("_start");
    if (opts_.instrument.any()) {
        image.flags |= oelf::kFlagInstrumented;
    }
    for (const auto &fn : functions_) {
        oelf::Symbol sym;
        sym.name = fn;
        sym.offset = assembler.label_offset("F_" + fn);
        image.symbols.push_back(std::move(sym));
    }
    // The image's data blob excludes the PCB area (loader-owned) but
    // our data_ offsets start at kPcbSize: record data as-is; the
    // loader copies it to D.begin + kPcbSize.
    return image;
}

// ---------------------------------------------------------------------
// FnCompiler
// ---------------------------------------------------------------------

Status
FnCompiler::run()
{
    if (fn_.params.size() > 5) {
        return pc_.err(fn_.line, "more than 5 parameters in " + fn_.name);
    }

    // Collect local declarations (recursively) to size the frame.
    int64_t cursor = kLocalsBase;
    std::function<Status(const std::vector<StmtPtr> &)> collect =
        [&](const std::vector<StmtPtr> &stmts) -> Status {
        for (const auto &stmt : stmts) {
            if (stmt->kind == StmtKind::kVarDecl) {
                if (locals_.count(stmt->name)) {
                    return pc_.err(stmt->line,
                                   "duplicate local: " + stmt->name);
                }
                LocalInfo info;
                info.slot_off = cursor;
                info.is_array = stmt->is_array;
                info.words = stmt->is_array ? stmt->array_size : 1;
                cursor += static_cast<int64_t>(info.words) * 8;
                locals_.emplace(stmt->name, info);
            }
            OCC_RETURN_IF_ERROR(collect(stmt->body));
            OCC_RETURN_IF_ERROR(collect(stmt->else_body));
            if (stmt->init) {
                // `for (i = 0; ...)` implicitly declares i as a local
                // when it is not already a variable in scope.
                if (stmt->init->kind == StmtKind::kVarDecl ||
                    (stmt->init->kind == StmtKind::kAssign &&
                     !locals_.count(stmt->init->name) &&
                     !pc_.globals().count(stmt->init->name))) {
                    if (stmt->init->kind == StmtKind::kVarDecl &&
                        locals_.count(stmt->init->name)) {
                        return pc_.err(stmt->init->line,
                                       "duplicate local: " +
                                           stmt->init->name);
                    }
                    if (!locals_.count(stmt->init->name)) {
                        LocalInfo info;
                        info.slot_off = cursor;
                        cursor += 8;
                        locals_.emplace(stmt->init->name, info);
                    }
                }
            }
        }
        return Status();
    };
    for (const auto &p : fn_.params) {
        if (locals_.count(p)) {
            return pc_.err(fn_.line, "duplicate parameter: " + p);
        }
        LocalInfo info;
        info.slot_off = cursor;
        cursor += 8;
        locals_.emplace(p, info);
    }
    OCC_RETURN_IF_ERROR(collect(fn_.body));
    frame_size_ = (cursor + 15) & ~15ll;
    if (frame_size_ > kMaxFrame) {
        return pc_.err(fn_.line,
                       "frame too large in " + fn_.name +
                           " (use global arrays for big buffers)");
    }

    pc_.bind("F_" + fn_.name);
    pc_.emit_cfi_label();

    // Prologue: allocate + validate the frame (the mem_guard here is
    // the stack-pointer revalidation the verifier's budget requires).
    ri(Opcode::kSubRI, isa_::kSp, frame_size_);
    pc_.emit_mem_guard(isa_::mem_bd(isa_::kSp, 0));

    // Spill incoming arguments to their slots.
    for (size_t i = 0; i < fn_.params.size(); ++i) {
        const LocalInfo &info = locals_.at(fn_.params[i]);
        slot_access(Opcode::kStore, static_cast<uint8_t>(1 + i),
                    info.slot_off);
    }

    epilogue_label_ = pc_.new_label();
    OCC_RETURN_IF_ERROR(gen_block(fn_.body));

    // Implicit `return 0` at the end of the body.
    mov_ri(0, 0);
    pc_.bind(epilogue_label_);
    ri(Opcode::kAddRI, isa_::kSp, frame_size_);
    const InstrumentOptions &ins = pc_.opts().instrument;
    if (ins.cfi) {
        // Revalidate sp, then the paper's ret rewrite:
        //   pop r14; cfi_guard r14; jmp *r14
        pc_.emit_mem_guard(isa_::mem_bd(isa_::kSp, 0));
        Instruction pop;
        pop.op = Opcode::kPop;
        pop.reg1 = kGateReg;
        pc_.emit(pop);
        pc_.emit_cfi_guard(kGateReg);
        Instruction jmp;
        jmp.op = Opcode::kJmpReg;
        jmp.reg1 = kGateReg;
        pc_.emit(jmp);
    } else {
        Instruction ret;
        ret.op = Opcode::kRet;
        pc_.emit(ret);
    }
    return Status();
}

Status
FnCompiler::gen_block(const std::vector<StmtPtr> &stmts)
{
    for (const auto &stmt : stmts) {
        OCC_RETURN_IF_ERROR(gen_stmt(*stmt));
    }
    return Status();
}

Status
FnCompiler::gen_stmt(const Stmt &stmt)
{
    switch (stmt.kind) {
      case StmtKind::kVarDecl: {
        if (stmt.is_array || !stmt.a) {
            return Status(); // storage only; arrays are uninitialized
        }
        auto value = gen_expr(*stmt.a);
        if (!value.ok()) return value.error();
        OCC_RETURN_IF_ERROR(
            gen_store_var(stmt.name, value.value(), stmt.line));
        free_temp(value.value());
        return Status();
      }
      case StmtKind::kAssign: {
        auto value = gen_expr(*stmt.a);
        if (!value.ok()) return value.error();
        OCC_RETURN_IF_ERROR(
            gen_store_var(stmt.name, value.value(), stmt.line));
        free_temp(value.value());
        return Status();
      }
      case StmtKind::kIndexAssign: {
        // name[a] = b : evaluate the value first, then the address.
        auto value = gen_expr(*stmt.b);
        if (!value.ok()) return value.error();

        // Promoted-loop fast path: A[iv + k] with A promoted.
        const Promotion *promo = find_promoted_array(stmt.name);
        if (promo) {
            auto off = induction_offset(*stmt.a, promo->iv);
            if (off) {
                const GlobalInfo &g = pc_.globals().at(stmt.name);
                uint8_t scale = g.is_byte ? 0 : 3;
                MemOperand mem = isa_::mem_sib(
                    promo->base_regs.at(stmt.name), promo->iv_reg,
                    scale, static_cast<int32_t>(*off << scale));
                emit_access(g.is_byte ? Opcode::kStore8 : Opcode::kStore,
                            value.value(), mem,
                            promo->sites.count(&stmt)
                                ? MemSafety::kHoisted
                                : MemSafety::kUnknown);
                free_temp(value.value());
                return Status();
            }
        }

        bool is_byte = false;
        bool need_guard = true;
        auto addr = gen_index_addr_for(stmt.name, *stmt.a, stmt.line,
                                       is_byte, need_guard);
        if (!addr.ok()) return addr.error();
        MemOperand mem = isa_::mem_bd(addr.value(), 0);
        emit_access(is_byte ? Opcode::kStore8 : Opcode::kStore,
                    value.value(), mem,
                    need_guard ? MemSafety::kUnknown
                               : MemSafety::kFrameSlot);
        free_temp(addr.value());
        free_temp(value.value());
        return Status();
      }
      case StmtKind::kIf: {
        std::string then_label = pc_.new_label();
        std::string else_label = pc_.new_label();
        std::string end_label = pc_.new_label();
        OCC_RETURN_IF_ERROR(gen_branch(*stmt.a, then_label, else_label));
        pc_.bind(then_label);
        OCC_RETURN_IF_ERROR(gen_block(stmt.body));
        pc_.emit_branch(Opcode::kJmp, end_label);
        pc_.bind(else_label);
        OCC_RETURN_IF_ERROR(gen_block(stmt.else_body));
        pc_.bind(end_label);
        return Status();
      }
      case StmtKind::kWhile:
      case StmtKind::kFor:
        return gen_loop(stmt);
      case StmtKind::kReturn: {
        if (stmt.a) {
            auto value = gen_expr(*stmt.a);
            if (!value.ok()) return value.error();
            mov_rr(0, value.value());
            free_temp(value.value());
        } else {
            mov_ri(0, 0);
        }
        pc_.emit_branch(Opcode::kJmp, epilogue_label_);
        return Status();
      }
      case StmtKind::kBreak:
        if (loops_.empty()) {
            return pc_.err(stmt.line, "break outside loop");
        }
        pc_.emit_branch(Opcode::kJmp, loops_.back().break_label);
        return Status();
      case StmtKind::kContinue:
        if (loops_.empty()) {
            return pc_.err(stmt.line, "continue outside loop");
        }
        pc_.emit_branch(Opcode::kJmp, loops_.back().continue_label);
        return Status();
      case StmtKind::kExprStmt: {
        auto value = gen_expr(*stmt.a);
        if (!value.ok()) return value.error();
        free_temp(value.value());
        return Status();
      }
    }
    OCC_PANIC("bad stmt kind");
}

Status
FnCompiler::gen_loop(const Stmt &stmt)
{
    const InstrumentOptions &ins = pc_.opts().instrument;
    bool is_for = stmt.kind == StmtKind::kFor;

    if (is_for && stmt.init) {
        OCC_RETURN_IF_ERROR(gen_stmt(*stmt.init));
    }

    // Register promotion is a plain compiler optimization applied to
    // every build (the paper's baselines are clang -O2 output too);
    // only the *guard hoisting* part is instrumentation-specific.
    std::optional<Promotion> promo = analyze_promotion(stmt);
    bool hoist_guards =
        ins.optimize && (ins.guard_loads || ins.guard_stores);

    std::string cond_label = pc_.new_label();
    std::string body_label = pc_.new_label();
    std::string step_label = is_for ? pc_.new_label() : cond_label;
    std::string end_label = pc_.new_label();

    LoopCtx ctx;
    ctx.break_label = end_label;
    ctx.continue_label = step_label;
    if (promo) {
        ctx.promotion = &*promo;
    }
    // Push before generating the condition: once the induction
    // variable is promoted, even the condition must read its register.
    loops_.push_back(ctx);

    if (promo) {
        // Pin registers for the induction variable and array bases;
        // emit a once-per-loop guard for each promoted array (the
        // §4.3 loop-check-hoisting transform). The guard only runs if
        // the loop body will run at least once.
        auto iv_reg = alloc_temp(stmt.line);
        if (!iv_reg.ok()) return iv_reg.error();
        promo->iv_reg = iv_reg.value();
        temp_pinned_[temp_index(promo->iv_reg)] = true;
        for (const auto &arr : promo->arrays) {
            auto base = alloc_temp(stmt.line);
            if (!base.ok()) return base.error();
            promo->base_regs[arr] = base.value();
            temp_pinned_[temp_index(base.value())] = true;
        }
        // Load iv and the array bases.
        slot_access(Opcode::kLoad, promo->iv_reg,
                    locals_.at(promo->iv).slot_off);
        for (const auto &[arr, reg] : promo->base_regs) {
            Instruction lea;
            lea.op = Opcode::kLea;
            lea.reg1 = reg;
            pc_.emit_mem_ref(lea, "D_" + arr);
        }
        // Pre-loop guarded entry: check the condition once; if the
        // loop runs, validate A[iv] for each promoted array.
        if (hoist_guards) {
            std::string pre_label = pc_.new_label();
            if (stmt.a) {
                OCC_RETURN_IF_ERROR(
                    gen_branch(*stmt.a, pre_label, end_label));
            } else {
                pc_.emit_branch(Opcode::kJmp, pre_label);
            }
            pc_.bind(pre_label);
            for (const auto &[arr, reg] : promo->base_regs) {
                const GlobalInfo &g = pc_.globals().at(arr);
                uint8_t scale = g.is_byte ? 0 : 3;
                pc_.emit_mem_guard(
                    isa_::mem_sib(reg, promo->iv_reg, scale, 0));
            }
            pc_.emit_branch(Opcode::kJmp, body_label);
        }
    }

    pc_.bind(cond_label);
    if (stmt.a) {
        OCC_RETURN_IF_ERROR(gen_branch(*stmt.a, body_label, end_label));
    } else {
        pc_.emit_branch(Opcode::kJmp, body_label);
    }
    pc_.bind(body_label);

    OCC_RETURN_IF_ERROR(gen_block(stmt.body));
    if (is_for) {
        pc_.bind(step_label);
        if (stmt.step) {
            OCC_RETURN_IF_ERROR(gen_stmt(*stmt.step));
        }
    }
    loops_.pop_back();
    pc_.emit_branch(Opcode::kJmp, cond_label);
    pc_.bind(end_label);

    if (promo) {
        // Write the induction variable back and unpin.
        slot_access(Opcode::kStore, promo->iv_reg,
                    locals_.at(promo->iv).slot_off);
        for (const auto &[arr, reg] : promo->base_regs) {
            temp_pinned_[temp_index(reg)] = false;
            free_temp(reg);
        }
        temp_pinned_[temp_index(promo->iv_reg)] = false;
        free_temp(promo->iv_reg);
    }
    return Status();
}

Status
FnCompiler::gen_store_var(const std::string &name, uint8_t value_reg,
                          int line)
{
    // Promoted induction variable: alias the pinned register.
    const Promotion *promo = find_promoted_var(name);
    if (promo) {
        mov_rr(promo->iv_reg, value_reg);
        return Status();
    }
    auto it = locals_.find(name);
    if (it != locals_.end()) {
        if (it->second.is_array) {
            return pc_.err(line, "cannot assign to array " + name);
        }
        slot_access(Opcode::kStore, value_reg, it->second.slot_off);
        return Status();
    }
    auto git = pc_.globals().find(name);
    if (git != pc_.globals().end()) {
        if (git->second.is_array) {
            return pc_.err(line, "cannot assign to array " + name);
        }
        Instruction st;
        st.op = git->second.is_byte ? Opcode::kStore8 : Opcode::kStore;
        st.reg1 = value_reg;
        emit_access(st.op, value_reg, st.mem, MemSafety::kStaticData,
                    "D_" + name);
        return Status();
    }
    return pc_.err(line, "undefined variable: " + name);
}

Result<uint8_t>
FnCompiler::gen_index_addr_for(const std::string &name, const Expr &idx,
                               int line, bool &is_byte, bool &need_guard)
{
    need_guard = true;
    auto lit = pc_.globals().find(name);
    auto loc = locals_.find(name);

    // Compute the element address: base + idx*elem_size.
    auto idx_reg = gen_expr(idx);
    if (!idx_reg.ok()) return idx_reg.error();
    auto addr = alloc_temp(line);
    if (!addr.ok()) return addr.error();

    if (lit != pc_.globals().end()) {
        const GlobalInfo &g = lit->second;
        is_byte = g.is_byte;
        Instruction lea;
        lea.op = Opcode::kLea;
        lea.reg1 = addr.value();
        pc_.emit_mem_ref(lea, "D_" + name);
        if (!g.is_byte) {
            ri(Opcode::kShlRI, idx_reg.value(), 3);
        }
        rr(Opcode::kAddRR, addr.value(), idx_reg.value());
        free_temp(idx_reg.value());
        return addr.value();
    }
    if (loc != locals_.end()) {
        is_byte = false;
        if (loc->second.is_array) {
            Instruction lea;
            lea.op = Opcode::kLea;
            lea.reg1 = addr.value();
            lea.mem = isa_::mem_bd(
                isa_::kSp, static_cast<int32_t>(loc->second.slot_off));
            pc_.emit(lea);
        } else {
            // Scalar local used as a pointer: name[i] = *(name + i*8).
            slot_access(Opcode::kLoad, addr.value(),
                        loc->second.slot_off);
        }
        ri(Opcode::kShlRI, idx_reg.value(), 3);
        rr(Opcode::kAddRR, addr.value(), idx_reg.value());
        free_temp(idx_reg.value());
        return addr.value();
    }
    free_temp(idx_reg.value());
    free_temp(addr.value());
    return pc_.err(line, "undefined array: " + name);
}

Status
FnCompiler::gen_branch(const Expr &cond, const std::string &true_label,
                       const std::string &false_label)
{
    if (cond.kind == ExprKind::kNumber) {
        pc_.emit_branch(Opcode::kJmp,
                        cond.num != 0 ? true_label : false_label);
        return Status();
    }
    if (cond.kind == ExprKind::kUnary && cond.op == "!") {
        return gen_branch(*cond.lhs, false_label, true_label);
    }
    if (cond.kind == ExprKind::kBinary &&
        (cond.op == "&&" || cond.op == "||")) {
        std::string mid = pc_.new_label();
        if (cond.op == "&&") {
            OCC_RETURN_IF_ERROR(gen_branch(*cond.lhs, mid, false_label));
        } else {
            OCC_RETURN_IF_ERROR(gen_branch(*cond.lhs, true_label, mid));
        }
        pc_.bind(mid);
        return gen_branch(*cond.rhs, true_label, false_label);
    }
    static const std::map<std::string, Cond> kCmp = {
        {"==", Cond::kEq}, {"!=", Cond::kNe}, {"<", Cond::kLt},
        {"<=", Cond::kLe}, {">", Cond::kGt}, {">=", Cond::kGe},
    };
    if (cond.kind == ExprKind::kBinary && kCmp.count(cond.op)) {
        auto lhs = gen_expr(*cond.lhs);
        if (!lhs.ok()) return lhs.error();
        if (cond.rhs->kind == ExprKind::kNumber &&
            cond.rhs->num >= INT32_MIN && cond.rhs->num <= INT32_MAX) {
            ri(Opcode::kCmpRI, lhs.value(), cond.rhs->num);
        } else {
            auto rhs = gen_expr(*cond.rhs);
            if (!rhs.ok()) return rhs.error();
            rr(Opcode::kCmpRR, lhs.value(), rhs.value());
            free_temp(rhs.value());
        }
        free_temp(lhs.value());
        pc_.emit_branch(Opcode::kJcc, true_label, kCmp.at(cond.op));
        pc_.emit_branch(Opcode::kJmp, false_label);
        return Status();
    }
    // Generic: nonzero => true.
    auto value = gen_expr(cond);
    if (!value.ok()) return value.error();
    ri(Opcode::kCmpRI, value.value(), 0);
    free_temp(value.value());
    pc_.emit_branch(Opcode::kJcc, true_label, Cond::kNe);
    pc_.emit_branch(Opcode::kJmp, false_label);
    return Status();
}

uint32_t
FnCompiler::save_live_temps(const std::vector<uint8_t> &exclude)
{
    uint32_t mask = 0;
    for (int i = 0; i < kNumTemps; ++i) {
        if (!temp_busy_[i] && !temp_pinned_[i]) continue;
        uint8_t reg = kTempRegs[i];
        bool excluded = false;
        for (uint8_t e : exclude) {
            if (e == reg) excluded = true;
        }
        if (excluded) continue;
        slot_access(Opcode::kStore, reg, kSpillBase + 8 * i);
        mask |= 1u << i;
    }
    return mask;
}

void
FnCompiler::restore_live_temps(uint32_t mask)
{
    for (int i = 0; i < kNumTemps; ++i) {
        if (mask & (1u << i)) {
            slot_access(Opcode::kLoad, kTempRegs[i], kSpillBase + 8 * i);
        }
    }
}

void
FnCompiler::emit_gate_call()
{
    // load r14, [rip -> PCB.trampoline]; cfi_guard r14; call *r14
    Instruction load_gate;
    load_gate.op = Opcode::kLoad;
    load_gate.reg1 = kGateReg;
    pc_.emit_mem_ref(load_gate, "__PCB");
    pc_.emit_cfi_guard(kGateReg);
    Instruction call;
    call.op = Opcode::kCallReg;
    call.reg1 = kGateReg;
    pc_.emit(call);
    pc_.emit_cfi_label();
}

Result<uint8_t>
FnCompiler::gen_builtin(const Expr &expr)
{
    const std::string &name = expr.name;
    int line = expr.line;
    auto argc_is = [&](size_t n) { return expr.args.size() == n; };

    if (name == "wload" || name == "bload") {
        if (!argc_is(1)) return pc_.err(line, name + " takes 1 argument");
        auto addr = gen_expr(*expr.args[0]);
        if (!addr.ok()) return addr.error();
        auto dst = alloc_temp(line);
        if (!dst.ok()) return dst.error();
        MemOperand mem = isa_::mem_bd(addr.value(), 0);
        emit_access(name == "wload" ? Opcode::kLoad : Opcode::kLoad8,
                    dst.value(), mem, MemSafety::kUnknown);
        free_temp(addr.value());
        return dst.value();
    }
    if (name == "wstore" || name == "bstore") {
        if (!argc_is(2)) return pc_.err(line, name + " takes 2 arguments");
        auto addr = gen_expr(*expr.args[0]);
        if (!addr.ok()) return addr.error();
        auto value = gen_expr(*expr.args[1]);
        if (!value.ok()) return value.error();
        MemOperand mem = isa_::mem_bd(addr.value(), 0);
        emit_access(name == "wstore" ? Opcode::kStore : Opcode::kStore8,
                    value.value(), mem, MemSafety::kUnknown);
        free_temp(addr.value());
        // Reuse the value register as the result.
        return value.value();
    }
    if (name == "syscall") {
        if (expr.args.empty() || expr.args.size() > 7) {
            return pc_.err(line, "syscall takes 1..7 arguments");
        }
        std::vector<uint8_t> arg_regs;
        for (const auto &arg : expr.args) {
            auto r = gen_expr(*arg);
            if (!r.ok()) return r.error();
            arg_regs.push_back(r.value());
        }
        uint32_t saved = save_live_temps(arg_regs);
        // r0 = number; r1..r6 = args (Linux-style six-argument ABI).
        // Ascending target order is clobber-free: targets r0..r5 are
        // never temporaries, and the r6 write is the final step.
        mov_rr(0, arg_regs[0]);
        for (size_t i = 1; i < arg_regs.size(); ++i) {
            mov_rr(static_cast<uint8_t>(i), arg_regs[i]);
        }
        for (uint8_t r : arg_regs) {
            free_temp(r);
        }
        emit_gate_call();
        restore_live_temps(saved);
        auto dst = alloc_temp(line);
        if (!dst.ok()) return dst.error();
        mov_rr(dst.value(), 0);
        return dst.value();
    }
    if (name == "heap_begin" || name == "heap_end" || name == "argc") {
        if (!argc_is(0)) return pc_.err(line, name + " takes no arguments");
        auto dst = alloc_temp(line);
        if (!dst.ok()) return dst.error();
        Instruction load;
        load.op = Opcode::kLoad;
        load.reg1 = dst.value();
        const char *sym = name == "heap_begin" ? "__PCB_HEAP_BEGIN"
                          : name == "heap_end" ? "__PCB_HEAP_END"
                                               : "__PCB_ARGC";
        pc_.emit_mem_ref(load, sym);
        return dst.value();
    }
    if (name == "rdcycle") {
        if (!argc_is(0)) return pc_.err(line, "rdcycle takes no arguments");
        auto dst = alloc_temp(line);
        if (!dst.ok()) return dst.error();
        Instruction instr;
        instr.op = Opcode::kRdcycle;
        instr.reg1 = dst.value();
        pc_.emit(instr);
        return dst.value();
    }
    return pc_.err(line, "unknown function: " + name);
}

Result<uint8_t>
FnCompiler::gen_call(const Expr &expr)
{
    if (!pc_.functions().count(expr.name)) {
        return gen_builtin(expr);
    }
    if (expr.args.size() > 5) {
        return pc_.err(expr.line, "more than 5 call arguments");
    }
    std::vector<uint8_t> arg_regs;
    for (const auto &arg : expr.args) {
        auto r = gen_expr(*arg);
        if (!r.ok()) return r.error();
        arg_regs.push_back(r.value());
    }
    uint32_t saved = save_live_temps(arg_regs);
    for (size_t i = 0; i < arg_regs.size(); ++i) {
        mov_rr(static_cast<uint8_t>(1 + i), arg_regs[i]);
    }
    for (uint8_t r : arg_regs) {
        free_temp(r);
    }
    pc_.emit_branch(Opcode::kCall, "F_" + expr.name);
    pc_.emit_cfi_label(); // return site must be a valid indirect target
    restore_live_temps(saved);
    auto dst = alloc_temp(expr.line);
    if (!dst.ok()) return dst.error();
    mov_rr(dst.value(), 0);
    return dst.value();
}

Result<uint8_t>
FnCompiler::gen_expr(const Expr &expr)
{
    switch (expr.kind) {
      case ExprKind::kNumber: {
        auto dst = alloc_temp(expr.line);
        if (!dst.ok()) return dst.error();
        mov_ri(dst.value(), expr.num);
        return dst.value();
      }
      case ExprKind::kString: {
        std::string sym = pc_.intern_string(expr.str);
        auto dst = alloc_temp(expr.line);
        if (!dst.ok()) return dst.error();
        Instruction lea;
        lea.op = Opcode::kLea;
        lea.reg1 = dst.value();
        pc_.emit_mem_ref(lea, "D_" + sym);
        return dst.value();
      }
      case ExprKind::kVar: {
        const Promotion *promo = find_promoted_var(expr.name);
        if (promo) {
            auto dst = alloc_temp(expr.line);
            if (!dst.ok()) return dst.error();
            mov_rr(dst.value(), promo->iv_reg);
            return dst.value();
        }
        auto loc = locals_.find(expr.name);
        if (loc != locals_.end()) {
            auto dst = alloc_temp(expr.line);
            if (!dst.ok()) return dst.error();
            if (loc->second.is_array) {
                Instruction lea;
                lea.op = Opcode::kLea;
                lea.reg1 = dst.value();
                lea.mem = isa_::mem_bd(
                    isa_::kSp,
                    static_cast<int32_t>(loc->second.slot_off));
                pc_.emit(lea);
            } else {
                slot_access(Opcode::kLoad, dst.value(),
                            loc->second.slot_off);
            }
            return dst.value();
        }
        auto git = pc_.globals().find(expr.name);
        if (git != pc_.globals().end()) {
            auto dst = alloc_temp(expr.line);
            if (!dst.ok()) return dst.error();
            if (git->second.is_array) {
                Instruction lea;
                lea.op = Opcode::kLea;
                lea.reg1 = dst.value();
                pc_.emit_mem_ref(lea, "D_" + expr.name);
            } else {
                Instruction load;
                load.op = git->second.is_byte ? Opcode::kLoad8
                                              : Opcode::kLoad;
                load.reg1 = dst.value();
                emit_access(load.op, dst.value(), load.mem,
                            MemSafety::kStaticData, "D_" + expr.name);
            }
            return dst.value();
        }
        return pc_.err(expr.line, "undefined variable: " + expr.name);
      }
      case ExprKind::kIndex: {
        // Promoted-loop fast path: A[iv + k].
        const Promotion *promo = find_promoted_array(expr.name);
        if (promo) {
            auto off = induction_offset(*expr.lhs, promo->iv);
            if (off) {
                const GlobalInfo &g = pc_.globals().at(expr.name);
                uint8_t scale = g.is_byte ? 0 : 3;
                auto dst = alloc_temp(expr.line);
                if (!dst.ok()) return dst.error();
                MemOperand mem = isa_::mem_sib(
                    promo->base_regs.at(expr.name), promo->iv_reg,
                    scale, static_cast<int32_t>(*off << scale));
                emit_access(g.is_byte ? Opcode::kLoad8 : Opcode::kLoad,
                            dst.value(), mem,
                            promo->sites.count(&expr)
                                ? MemSafety::kHoisted
                                : MemSafety::kUnknown);
                return dst.value();
            }
        }
        bool is_byte = false;
        bool need_guard = true;
        auto addr = gen_index_addr_for(expr.name, *expr.lhs, expr.line,
                                       is_byte, need_guard);
        if (!addr.ok()) return addr.error();
        auto dst = alloc_temp(expr.line);
        if (!dst.ok()) return dst.error();
        MemOperand mem = isa_::mem_bd(addr.value(), 0);
        emit_access(is_byte ? Opcode::kLoad8 : Opcode::kLoad,
                    dst.value(), mem,
                    need_guard ? MemSafety::kUnknown
                               : MemSafety::kFrameSlot);
        free_temp(addr.value());
        return dst.value();
      }
      case ExprKind::kUnary: {
        if (expr.op == "!") {
            // Materialize via branches.
            std::string t = pc_.new_label(), f = pc_.new_label(),
                        end = pc_.new_label();
            OCC_RETURN_IF_ERROR(gen_branch(*expr.lhs, t, f));
            auto dst = alloc_temp(expr.line);
            if (!dst.ok()) return dst.error();
            pc_.bind(t);
            mov_ri(dst.value(), 0);
            pc_.emit_branch(Opcode::kJmp, end);
            pc_.bind(f);
            mov_ri(dst.value(), 1);
            pc_.bind(end);
            return dst.value();
        }
        auto inner = gen_expr(*expr.lhs);
        if (!inner.ok()) return inner.error();
        if (expr.op == "-") {
            Instruction neg;
            neg.op = Opcode::kNeg;
            neg.reg1 = inner.value();
            pc_.emit(neg);
        } else if (expr.op == "~") {
            Instruction nt;
            nt.op = Opcode::kNot;
            nt.reg1 = inner.value();
            pc_.emit(nt);
        } else {
            return pc_.err(expr.line, "bad unary operator " + expr.op);
        }
        return inner.value();
      }
      case ExprKind::kBinary: {
        // Comparisons and logic materialize through branches.
        static const std::set<std::string> kBranchy = {
            "==", "!=", "<", "<=", ">", ">=", "&&", "||"};
        if (kBranchy.count(expr.op)) {
            std::string t = pc_.new_label(), f = pc_.new_label(),
                        end = pc_.new_label();
            OCC_RETURN_IF_ERROR(gen_branch(expr, t, f));
            auto dst = alloc_temp(expr.line);
            if (!dst.ok()) return dst.error();
            pc_.bind(t);
            mov_ri(dst.value(), 1);
            pc_.emit_branch(Opcode::kJmp, end);
            pc_.bind(f);
            mov_ri(dst.value(), 0);
            pc_.bind(end);
            return dst.value();
        }
        // Constant folding for number op number.
        auto lhs = gen_expr(*expr.lhs);
        if (!lhs.ok()) return lhs.error();
        uint8_t a = lhs.value();
        // reg-imm fast path for small constants.
        if (expr.rhs->kind == ExprKind::kNumber &&
            expr.rhs->num >= INT32_MIN && expr.rhs->num <= INT32_MAX &&
            (expr.op == "+" || expr.op == "-" || expr.op == "*" ||
             expr.op == "&" || expr.op == "|" || expr.op == "^" ||
             expr.op == "<<" || expr.op == ">>")) {
            int64_t c = expr.rhs->num;
            if (expr.op == "+") ri(Opcode::kAddRI, a, c);
            else if (expr.op == "-") ri(Opcode::kSubRI, a, c);
            else if (expr.op == "*") ri(Opcode::kMulRI, a, c);
            else if (expr.op == "&") ri(Opcode::kAndRI, a, c);
            else if (expr.op == "|") ri(Opcode::kOrRI, a, c);
            else if (expr.op == "^") ri(Opcode::kXorRI, a, c);
            else if (expr.op == "<<") ri(Opcode::kShlRI, a, c & 63);
            else ri(Opcode::kSarRI, a, c & 63);
            return a;
        }
        auto rhs = gen_expr(*expr.rhs);
        if (!rhs.ok()) return rhs.error();
        uint8_t b = rhs.value();
        if (expr.op == "+") rr(Opcode::kAddRR, a, b);
        else if (expr.op == "-") rr(Opcode::kSubRR, a, b);
        else if (expr.op == "*") rr(Opcode::kMulRR, a, b);
        else if (expr.op == "/") rr(Opcode::kDivRR, a, b);
        else if (expr.op == "%") rr(Opcode::kModRR, a, b);
        else if (expr.op == "&") rr(Opcode::kAndRR, a, b);
        else if (expr.op == "|") rr(Opcode::kOrRR, a, b);
        else if (expr.op == "^") rr(Opcode::kXorRR, a, b);
        else if (expr.op == "<<") rr(Opcode::kShlRR, a, b);
        else if (expr.op == ">>") rr(Opcode::kSarRR, a, b);
        else return pc_.err(expr.line, "bad operator " + expr.op);
        free_temp(b);
        return a;
      }
      case ExprKind::kCall:
        return gen_call(expr);
    }
    OCC_PANIC("bad expr kind");
}

// ---- loop-promotion analysis -------------------------------------------

bool
FnCompiler::expr_has_call(const Expr &expr) const
{
    if (expr.kind == ExprKind::kCall) {
        // Pure builtins that lower to inline instructions are fine,
        // except syscall (clobbers registers via the gate).
        static const std::set<std::string> kInline = {
            "wload", "bload", "wstore", "bstore", "rdcycle",
            "heap_begin", "heap_end", "argc"};
        if (!kInline.count(expr.name)) {
            return true;
        }
    }
    if (expr.lhs && expr_has_call(*expr.lhs)) return true;
    if (expr.rhs && expr_has_call(*expr.rhs)) return true;
    for (const auto &arg : expr.args) {
        if (expr_has_call(*arg)) return true;
    }
    return false;
}

bool
FnCompiler::stmts_assign_var(const std::vector<StmtPtr> &stmts,
                             const std::string &name, int *count) const
{
    bool found = false;
    for (const auto &stmt : stmts) {
        if ((stmt->kind == StmtKind::kAssign ||
             stmt->kind == StmtKind::kVarDecl) &&
            stmt->name == name) {
            ++*count;
            found = true;
        }
        if (stmts_assign_var(stmt->body, name, count)) found = true;
        if (stmts_assign_var(stmt->else_body, name, count)) found = true;
        if (stmt->init) {
            std::vector<StmtPtr> probe;
            if (stmt->init->name == name &&
                (stmt->init->kind == StmtKind::kAssign ||
                 stmt->init->kind == StmtKind::kVarDecl)) {
                ++*count;
                found = true;
            }
        }
        if (stmt->step && stmt->step->name == name &&
            stmt->step->kind == StmtKind::kAssign) {
            ++*count;
            found = true;
        }
    }
    return found;
}

std::optional<int64_t>
FnCompiler::induction_offset(const Expr &expr,
                             const std::string &iv) const
{
    if (expr.kind == ExprKind::kVar && expr.name == iv) {
        return 0;
    }
    if (expr.kind == ExprKind::kBinary &&
        (expr.op == "+" || expr.op == "-") &&
        expr.lhs->kind == ExprKind::kVar && expr.lhs->name == iv &&
        expr.rhs->kind == ExprKind::kNumber) {
        int64_t k = expr.op == "+" ? expr.rhs->num : -expr.rhs->num;
        if (k >= -64 && k <= 64) {
            return k;
        }
    }
    return std::nullopt;
}

void
FnCompiler::collect_promotable_arrays(const Stmt &loop,
                                      const std::string &iv,
                                      Promotion &promo) const
{
    // Only accesses in *top-level* statements of the body execute
    // unconditionally every iteration, which the hoisting soundness
    // argument (and the verifier's fixpoint) requires.
    auto consider = [&](const void *site, const std::string &name,
                        const Expr &idx) {
        if (!induction_offset(idx, iv)) return;
        auto git = pc_.globals().find(name);
        if (git == pc_.globals().end() || !git->second.is_array) return;
        bool known = false;
        for (const auto &a : promo.arrays) {
            if (a == name) known = true;
        }
        if (!known) {
            if (promo.arrays.size() >= 2) return;
            promo.arrays.push_back(name);
        }
        promo.sites.insert(site);
    };
    std::function<void(const Expr &)> scan_expr = [&](const Expr &e) {
        if (e.kind == ExprKind::kIndex) {
            consider(&e, e.name, *e.lhs);
        }
        // Skip short-circuit right-hand sides: conditionally executed.
        if (e.kind == ExprKind::kBinary &&
            (e.op == "&&" || e.op == "||")) {
            scan_expr(*e.lhs);
            return;
        }
        if (e.lhs) scan_expr(*e.lhs);
        if (e.rhs) scan_expr(*e.rhs);
        for (const auto &arg : e.args) {
            scan_expr(*arg);
        }
    };
    for (const auto &stmt : loop.body) {
        switch (stmt->kind) {
          case StmtKind::kIndexAssign:
            consider(stmt.get(), stmt->name, *stmt->a);
            scan_expr(*stmt->b);
            scan_expr(*stmt->a);
            break;
          case StmtKind::kAssign:
          case StmtKind::kVarDecl:
          case StmtKind::kExprStmt:
          case StmtKind::kReturn:
            if (stmt->a) scan_expr(*stmt->a);
            break;
          default:
            break; // nested control flow: not unconditional
        }
    }
    if (loop.kind == StmtKind::kFor && loop.step &&
        loop.step->kind == StmtKind::kIndexAssign) {
        consider(loop.step.get(), loop.step->name, *loop.step->a);
    }
}

std::optional<Promotion>
FnCompiler::analyze_promotion(const Stmt &loop)
{
    // Requirements (conservative; see DESIGN.md):
    //  - loop body (and cond/step) contain no real calls;
    //  - a single local scalar `iv` assigned exactly once in the body
    //    (or the for-step), in the form iv = iv +/- small_const;
    //  - at least one promotable global-array access A[iv + k].
    if (loop.a && expr_has_call(*loop.a)) return std::nullopt;
    std::function<bool(const std::vector<StmtPtr> &)> body_has_call =
        [&](const std::vector<StmtPtr> &stmts) -> bool {
        for (const auto &stmt : stmts) {
            if (stmt->a && expr_has_call(*stmt->a)) return true;
            if (stmt->b && expr_has_call(*stmt->b)) return true;
            if (body_has_call(stmt->body)) return true;
            if (body_has_call(stmt->else_body)) return true;
            if (stmt->init && stmt->init->a &&
                expr_has_call(*stmt->init->a)) {
                return true;
            }
            if (stmt->step && stmt->step->a &&
                expr_has_call(*stmt->step->a)) {
                return true;
            }
        }
        return false;
    };
    if (body_has_call(loop.body)) return std::nullopt;
    if (loop.step && loop.step->a && expr_has_call(*loop.step->a)) {
        return std::nullopt;
    }

    // Find the step assignment: iv = iv +/- c.
    const Stmt *step_stmt = nullptr;
    if (loop.kind == StmtKind::kFor && loop.step &&
        loop.step->kind == StmtKind::kAssign) {
        step_stmt = loop.step.get();
    } else if (!loop.body.empty() &&
               loop.body.back()->kind == StmtKind::kAssign) {
        step_stmt = loop.body.back().get();
    }
    if (!step_stmt) return std::nullopt;

    const std::string &iv = step_stmt->name;
    auto loc = locals_.find(iv);
    if (loc == locals_.end() || loc->second.is_array) return std::nullopt;
    // Do not promote a variable that is already promoted by an
    // enclosing loop (register aliasing would break write-back).
    for (const auto &ctx : loops_) {
        if (ctx.promotion && ctx.promotion->iv == iv) return std::nullopt;
    }
    auto delta = induction_offset(*step_stmt->a, iv);
    if (!delta || *delta == 0) return std::nullopt;

    int assignments = 0;
    stmts_assign_var(loop.body, iv, &assignments);
    if (loop.step) {
        std::vector<StmtPtr> probe;
        if (loop.step->kind == StmtKind::kAssign &&
            loop.step->name == iv) {
            ++assignments;
        }
    }
    if (assignments != 1) return std::nullopt;

    Promotion promo;
    promo.iv = iv;
    promo.step = *delta;
    collect_promotable_arrays(loop, iv, promo);
    if (promo.arrays.empty()) return std::nullopt;

    // Need registers: 1 (iv) + arrays + >=3 free for body codegen.
    int free_regs = 0;
    for (int i = 0; i < kNumTemps; ++i) {
        if (!temp_busy_[i] && !temp_pinned_[i]) ++free_regs;
    }
    while (!promo.arrays.empty() &&
           free_regs < static_cast<int>(promo.arrays.size()) + 1 + 3) {
        promo.arrays.pop_back();
    }
    if (promo.arrays.empty()) return std::nullopt;
    return promo;
}

} // namespace

// ---------------------------------------------------------------------
// Redundant-check elimination (paper §4.3, optimization 1)
// ---------------------------------------------------------------------

uint64_t
eliminate_redundant_guards(std::vector<AsmItem> &items)
{
    struct Pattern {
        isa_::AddrMode mode;
        uint8_t base, index, scale;
        std::string mem_ref;
        int32_t disp;
    };
    auto pattern_of = [](const AsmItem &item) {
        Pattern p;
        p.mode = item.instr.mem.mode;
        p.base = item.instr.mem.base;
        p.index = item.instr.mem.index;
        p.scale = item.instr.mem.scale_log2;
        p.disp = item.instr.mem.disp;
        p.mem_ref = item.mem_ref;
        return p;
    };
    auto same_shape = [](const Pattern &a, const Pattern &b) {
        if (a.mode != b.mode || a.mem_ref != b.mem_ref) return false;
        switch (a.mode) {
          case isa_::AddrMode::kBaseDisp:
            return a.base == b.base;
          case isa_::AddrMode::kSib:
            return a.base == b.base && a.index == b.index &&
                   a.scale == b.scale;
          case isa_::AddrMode::kRipRel:
            return true; // same mem_ref checked above
          case isa_::AddrMode::kAbs:
            return false;
        }
        return false;
    };

    std::vector<Pattern> validated;
    auto kill_reg = [&](uint8_t reg) {
        std::erase_if(validated, [&](const Pattern &p) {
            if (p.mode == isa_::AddrMode::kBaseDisp) {
                return p.base == reg;
            }
            if (p.mode == isa_::AddrMode::kSib) {
                return p.base == reg || p.index == reg;
            }
            return false;
        });
    };
    auto covered = [&](const Pattern &p) {
        for (const auto &v : validated) {
            if (same_shape(v, p) &&
                std::abs(static_cast<int64_t>(v.disp) - p.disp) <= 2048) {
                return true;
            }
        }
        return false;
    };

    uint64_t removed_pairs = 0;
    std::vector<bool> dead(items.size(), false);

    for (size_t i = 0; i < items.size(); ++i) {
        AsmItem &item = items[i];
        if (item.kind == AsmItem::Kind::kBind) {
            validated.clear();
            continue;
        }
        Opcode op = item.instr.op;
        if (isa_::transfer_kind(op) != isa_::TransferKind::kNone ||
            op == Opcode::kLtrap || op == Opcode::kCfiLabel) {
            validated.clear();
            continue;
        }
        // A guard pair: bndcl at i, bndcu at i+1 with same group.
        if (item.guard_group >= 0 && op == Opcode::kBndclMem &&
            i + 1 < items.size() &&
            items[i + 1].guard_group == item.guard_group) {
            Pattern p = pattern_of(item);
            if (covered(p)) {
                dead[i] = dead[i + 1] = true;
                ++removed_pairs;
            } else {
                validated.push_back(p);
            }
            ++i; // skip the bndcu
            continue;
        }
        // Explicit accesses add their own post-success fact.
        if (isa_::explicit_mem_access(op) &&
            item.instr.mem.mode != isa_::AddrMode::kAbs &&
            op != Opcode::kVGather) {
            Pattern p = pattern_of(item);
            if (!covered(p)) {
                validated.push_back(p);
            }
        }
        // Register writes invalidate dependent facts.
        switch (op) {
          case Opcode::kMovRI: case Opcode::kMovRR: case Opcode::kLoad:
          case Opcode::kLoad8: case Opcode::kLoad32: case Opcode::kLea:
          case Opcode::kPop: case Opcode::kRdcycle:
          case Opcode::kAddRR: case Opcode::kAddRI: case Opcode::kSubRR:
          case Opcode::kSubRI: case Opcode::kMulRR: case Opcode::kMulRI:
          case Opcode::kDivRR: case Opcode::kModRR: case Opcode::kAndRR:
          case Opcode::kAndRI: case Opcode::kOrRR: case Opcode::kOrRI:
          case Opcode::kXorRR: case Opcode::kXorRI: case Opcode::kShlRI:
          case Opcode::kShrRI: case Opcode::kSarRI: case Opcode::kShlRR:
          case Opcode::kShrRR: case Opcode::kSarRR: case Opcode::kNeg:
          case Opcode::kNot: case Opcode::kVGather:
            // Small-constant add/sub keeps facts valid within the
            // window only if we also shift stored disps; simpler and
            // still sound: drop them.
            kill_reg(item.instr.reg1);
            break;
          default:
            break;
        }
    }

    if (removed_pairs > 0) {
        std::vector<AsmItem> kept;
        kept.reserve(items.size());
        for (size_t i = 0; i < items.size(); ++i) {
            if (!dead[i]) {
                kept.push_back(std::move(items[i]));
            }
        }
        items = std::move(kept);
    }
    return removed_pairs;
}

// ---------------------------------------------------------------------
// Public entry point
// ---------------------------------------------------------------------

Result<CompileOutput>
compile(const std::string &source, const CompileOptions &options)
{
    std::string full_source;
    if (options.with_stdlib) {
        full_source = std::string(stdlib_source()) + "\n" + source;
    } else {
        full_source = source;
    }
    auto program = parse(full_source);
    if (!program.ok()) {
        return program.error();
    }
    Program prog = program.take();
    ProgramCompiler compiler(prog, options);
    return compiler.run();
}

} // namespace occlum::toolchain
