/**
 * @file
 * The MiniC standard library (the musl-libc stand-in, paper §8).
 * Prepended to every compilation unit unless CompileOptions disables
 * it. Syscall numbers must match oelf/abi.h.
 */
#include "toolchain/minic.h"

namespace occlum::toolchain {

const char *
stdlib_source()
{
    return R"MINIC(
// ---- syscall wrappers (numbers mirror occlum::abi::Sys) ----
func exit(code) { syscall(0, code); return 0; }
func write(fd, buf, len) { return syscall(1, fd, buf, len); }
func read(fd, buf, len) { return syscall(2, fd, buf, len); }
func open(path, flags) { return syscall(3, path, strlen(path), flags); }
func close(fd) { return syscall(4, fd); }
func spawn(path, argv, nargs) {
    return syscall(5, path, strlen(path), argv, nargs);
}
func spawn_io(path, argv, nargs, io3) {
    return syscall(5, path, strlen(path), argv, nargs, io3);
}
func waitpid(pid) { return syscall(6, pid); }
func getpid() { return syscall(7); }
func pipe(fds) { return syscall(8, fds); }
func dup2(oldfd, newfd) { return syscall(9, oldfd, newfd); }
func lseek(fd, off, whence) { return syscall(10, fd, off, whence); }
func unlink(path) { return syscall(11, path, strlen(path)); }
// mmap is Linux-shaped at the kernel boundary: this convenience
// wrapper requests an anonymous private RW mapping (prot=RW=3,
// flags=MAP_PRIVATE|MAP_ANONYMOUS=34, fd=-1, off=0).
func mmap(len) { return syscall(12, 0, len, 3, 34, 0 - 1, 0); }
func munmap(addr, len) { return syscall(13, addr, len); }
func time_ns() { return syscall(14); }
func kill(pid, sig) { return syscall(15, pid, sig); }
func sock_listen(port, backlog) { return syscall(16, port, backlog); }
func sock_accept(fd) { return syscall(17, fd); }
func sock_send(fd, buf, len) { return syscall(18, fd, buf, len); }
func sock_recv(fd, buf, len) { return syscall(19, fd, buf, len); }
func yield() { return syscall(20); }
func fstat_size(fd) { return syscall(21, fd); }
func mkdir(path) { return syscall(22, path, strlen(path)); }
func fsync(fd) { return syscall(23, fd); }
func sock_connect(port) { return syscall(24, port); }
func getarg(i, buf, cap) { return syscall(25, i, buf, cap); }
// poll: fds is an int array of records {fd, events, revents};
// timeout_ns < 0 waits forever, 0 never blocks.
func poll(fds, nfds, timeout_ns) { return syscall(26, fds, nfds, timeout_ns); }
// epoll: interest list held kernel-side; evs is an int array of
// {fd, revents} pairs. op: 1=ADD 2=DEL 3=MOD; events: poll bits,
// | 0x80000000 for edge-triggered.
func epoll_create() { return syscall(27); }
func epoll_ctl(epfd, op, fd, events) {
    return syscall(28, epfd, op, fd, events);
}
func epoll_wait(epfd, evs, maxevents, timeout_ns) {
    return syscall(29, epfd, evs, maxevents, timeout_ns);
}

// ---- strings and memory ----
func strlen(s) {
    var n = 0;
    while (bload(s + n) != 0) { n = n + 1; }
    return n;
}
func strcmp(a, b) {
    var i = 0;
    while (1) {
        var ca = bload(a + i);
        var cb = bload(b + i);
        if (ca != cb) { return ca - cb; }
        if (ca == 0) { return 0; }
        i = i + 1;
    }
    return 0;
}
func strcpy(d, s) {
    var i = 0;
    while (1) {
        var c = bload(s + i);
        bstore(d + i, c);
        if (c == 0) { return d; }
        i = i + 1;
    }
    return d;
}
func strcat(d, s) {
    strcpy(d + strlen(d), s);
    return d;
}
func memcpy(d, s, n) {
    var i = 0;
    while (i < n) {
        bstore(d + i, bload(s + i));
        i = i + 1;
    }
    return d;
}
func memset(d, v, n) {
    var i = 0;
    while (i < n) {
        bstore(d + i, v);
        i = i + 1;
    }
    return d;
}
func memcmp(a, b, n) {
    var i = 0;
    while (i < n) {
        var d = bload(a + i) - bload(b + i);
        if (d != 0) { return d; }
        i = i + 1;
    }
    return 0;
}

// ---- heap: bump allocator over the PCB-provided range ----
global int __brk;
func malloc(n) {
    if (__brk == 0) { __brk = heap_begin(); }
    var nb = (n + 15) & (~15);
    var p = __brk;
    if (p + nb > heap_end()) { return 0; }
    __brk = p + nb;
    return p;
}
func free(p) { return 0; }

// ---- formatting and console ----
global byte __numbuf[32];
func itoa(v, buf) {
    var n = 0;
    var neg = 0;
    if (v < 0) { neg = 1; v = -v; }
    var tmp[24];
    var t = 0;
    if (v == 0) { tmp[0] = '0'; t = 1; }
    while (v > 0) {
        tmp[t] = '0' + (v % 10);
        v = v / 10;
        t = t + 1;
    }
    if (neg) { bstore(buf + n, '-'); n = n + 1; }
    while (t > 0) {
        t = t - 1;
        bstore(buf + n, tmp[t]);
        n = n + 1;
    }
    bstore(buf + n, 0);
    return n;
}
func atoi(s) {
    var i = 0;
    var neg = 0;
    if (bload(s) == '-') { neg = 1; i = 1; }
    var v = 0;
    while (1) {
        var c = bload(s + i);
        if (c < '0') { break; }
        if (c > '9') { break; }
        v = v * 10 + (c - '0');
        i = i + 1;
    }
    if (neg) { return -v; }
    return v;
}
func print(s) { return write(1, s, strlen(s)); }
func println(s) {
    print(s);
    return write(1, "\n", 1);
}
func print_int(v) {
    var n = itoa(v, __numbuf);
    return write(1, __numbuf, n);
}
)MINIC";
}

} // namespace occlum::toolchain
