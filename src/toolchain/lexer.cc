#include "toolchain/ast.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <set>

namespace occlum::toolchain {

namespace {

const std::set<std::string> kKeywords = {
    "global", "func", "var", "if", "else", "while", "for",
    "return", "break", "continue", "int", "byte",
};

/** Multi-character operators, longest first. */
const char *kOps2[] = {"<<", ">>", "<=", ">=", "==", "!=", "&&", "||"};

} // namespace

Result<std::vector<Token>>
lex(const std::string &source)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1;
    auto fail = [&](const std::string &why) -> Result<std::vector<Token>> {
        return Error(ErrorCode::kInval,
                     "lex error at line " + std::to_string(line) + ": " +
                         why);
    };

    while (i < source.size()) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments: // to end of line.
        if (c == '/' && i + 1 < source.size() && source[i + 1] == '/') {
            while (i < source.size() && source[i] != '\n') {
                ++i;
            }
            continue;
        }
        Token tok;
        tok.line = line;
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            int base = 10;
            if (c == '0' && i + 1 < source.size() &&
                (source[i + 1] == 'x' || source[i + 1] == 'X')) {
                base = 16;
                i += 2;
                start = i;
            }
            while (i < source.size() &&
                   std::isalnum(static_cast<unsigned char>(source[i]))) {
                ++i;
            }
            std::string digits = source.substr(start, i - start);
            if (digits.empty()) {
                return fail("empty numeric literal");
            }
            errno = 0;
            char *end = nullptr;
            uint64_t value = std::strtoull(digits.c_str(), &end, base);
            if (end != digits.c_str() + digits.size()) {
                return fail("bad numeric literal '" + digits + "'");
            }
            tok.kind = Tok::kNumber;
            tok.value = static_cast<int64_t>(value);
            tok.text = digits;
            out.push_back(tok);
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < source.size() &&
                   (std::isalnum(static_cast<unsigned char>(source[i])) ||
                    source[i] == '_')) {
                ++i;
            }
            tok.text = source.substr(start, i - start);
            tok.kind = kKeywords.count(tok.text) ? Tok::kKeyword
                                                 : Tok::kIdent;
            out.push_back(tok);
            continue;
        }
        if (c == '"') {
            ++i;
            std::string value;
            while (i < source.size() && source[i] != '"') {
                char ch = source[i];
                if (ch == '\\' && i + 1 < source.size()) {
                    ++i;
                    switch (source[i]) {
                      case 'n': ch = '\n'; break;
                      case 't': ch = '\t'; break;
                      case 'r': ch = '\r'; break;
                      case '0': ch = '\0'; break;
                      case '\\': ch = '\\'; break;
                      case '"': ch = '"'; break;
                      default:
                        return fail("bad escape in string");
                    }
                }
                if (ch == '\n') {
                    ++line;
                }
                value.push_back(ch);
                ++i;
            }
            if (i >= source.size()) {
                return fail("unterminated string");
            }
            ++i; // closing quote
            tok.kind = Tok::kString;
            tok.text = value;
            out.push_back(tok);
            continue;
        }
        if (c == '\'') {
            if (i + 2 < source.size() && source[i + 1] == '\\' &&
                source[i + 3] == '\'') {
                char ch;
                switch (source[i + 2]) {
                  case 'n': ch = '\n'; break;
                  case 't': ch = '\t'; break;
                  case '0': ch = '\0'; break;
                  case '\\': ch = '\\'; break;
                  case '\'': ch = '\''; break;
                  default:
                    return fail("bad character escape");
                }
                tok.kind = Tok::kNumber;
                tok.value = ch;
                i += 4;
                out.push_back(tok);
                continue;
            }
            if (i + 2 < source.size() && source[i + 2] == '\'') {
                tok.kind = Tok::kNumber;
                tok.value = source[i + 1];
                i += 3;
                out.push_back(tok);
                continue;
            }
            return fail("bad character literal");
        }
        // Two-character operators.
        bool matched = false;
        for (const char *op : kOps2) {
            if (source.compare(i, 2, op) == 0) {
                tok.kind = Tok::kPunct;
                tok.text = op;
                i += 2;
                out.push_back(tok);
                matched = true;
                break;
            }
        }
        if (matched) {
            continue;
        }
        if (std::string("+-*/%&|^~!<>=(){}[];,").find(c) !=
            std::string::npos) {
            tok.kind = Tok::kPunct;
            tok.text = std::string(1, c);
            ++i;
            out.push_back(tok);
            continue;
        }
        return fail(std::string("stray character '") + c + "'");
    }
    Token eof;
    eof.kind = Tok::kEof;
    eof.line = line;
    out.push_back(eof);
    return out;
}

} // namespace occlum::toolchain
