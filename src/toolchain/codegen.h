/**
 * @file
 * Toolchain internals: the assembly-item IR that sits between the
 * code generator and the final Assembler pass, plus the MMDSFI
 * instrumentation-optimizer entry point (paper §4.3).
 */
#ifndef OCCLUM_TOOLCHAIN_CODEGEN_H
#define OCCLUM_TOOLCHAIN_CODEGEN_H

#include <string>
#include <vector>

#include "isa/isa.h"
#include "toolchain/minic.h"

namespace occlum::toolchain {

/**
 * One element of the pre-assembly instruction stream. Either a label
 * bind or an instruction; instructions may carry symbolic references
 * resolved by the Assembler (branch targets, address-of, rip-relative
 * data symbols).
 */
struct AsmItem {
    enum class Kind { kInstr, kBind };

    Kind kind = Kind::kInstr;
    isa::Instruction instr;
    std::string bind_name;  // kBind
    std::string branch_ref; // direct jmp/jcc/call target
    std::string addr_ref;   // mov_ri <label address>
    std::string mem_ref;    // rip-relative operand target
    /**
     * >= 0 marks a removable mem_guard check (a bndcl/bndcu pair
     * shares one group id); the optimizer may delete both members.
     */
    int guard_group = -1;
};

/**
 * Redundant-check elimination (paper §4.3 optimization 1): deletes
 * mem_guards whose effective address is provably within a guard-sized
 * window of an address already validated earlier in the same basic
 * block. Returns the number of guard *pairs* removed.
 */
uint64_t eliminate_redundant_guards(std::vector<AsmItem> &items);

} // namespace occlum::toolchain

#endif // OCCLUM_TOOLCHAIN_CODEGEN_H
