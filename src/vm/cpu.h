/**
 * @file
 * The OVM CPU: an interpreter for the OVM ISA with MPX-style bound
 * registers and cycle accounting.
 *
 * One Cpu object models one hardware thread (one SGX thread when run
 * under the sgx substrate). Its full register state — including the
 * bound registers, which real SGX saves/restores through the SSA on
 * AEX (paper §2.1/§2.3) — can be snapshotted and restored, which is
 * how the scheduler context-switches SIPs.
 *
 * Dispatch uses a predecoded basic-block cache: the first execution
 * at an entry rip decodes a straight-line run of instructions (ending
 * at a control transfer, a dangerous/ltrap instruction, or the next
 * cfi_label) into a flat array; later executions replay the array in
 * a tight indexed loop. Blocks are keyed by their entry rip, so a
 * jump into the middle of a variable-length instruction builds its
 * own, differently-decoded block — the overlapping-instruction
 * semantics that make the disassembly problem real are preserved.
 * Blocks are invalidated by the AddressSpace generation counter,
 * which now advances automatically on writes to executable pages and
 * on mapping-permission changes involving X. Cycle accounting is
 * identical with the cache on or off: the same per-instruction
 * isa::cycle_cost is charged by the shared execute step.
 */
#ifndef OCCLUM_VM_CPU_H
#define OCCLUM_VM_CPU_H

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/isa.h"
#include "vm/address_space.h"

namespace occlum::vm {

/** One MPX-style bound register: [lo, hi], inclusive. */
struct BoundReg {
    uint64_t lo = 0;
    uint64_t hi = ~0ull;
};

/** Comparison flags produced by cmp/test. */
struct Flags {
    bool zf = false;
    bool sf = false;
    bool cf = false;
    bool of = false;
};

/** Why the CPU stopped executing. */
enum class ExitKind {
    kInstrBudget, // executed the requested number of instructions
    kLtrap,       // hit ltrap (LibOS syscall trampoline)
    kPrivileged,  // hit a dangerous instruction (hlt/eexit/bndmk/...)
    kFault,       // memory / bound-range / decode / divide fault
};

/** Fault detail for ExitKind::kFault. */
enum class FaultKind {
    kNone,
    kPageFault,   // unmapped page (e.g. a guard region)
    kPermFault,   // mapped but wrong permission
    kExecFault,   // fetch from non-executable or unmapped page
    kBoundRange,  // #BR from bndcl/bndcu
    kInvalidInstr,// undecodable bytes
    kDivide,      // divide by zero
};

struct CpuExit {
    ExitKind kind = ExitKind::kInstrBudget;
    FaultKind fault = FaultKind::kNone;
    uint64_t fault_addr = 0; // faulting memory address if applicable
    uint64_t rip = 0;        // address of the instruction that exited
    isa::Opcode priv_op = isa::Opcode::kNop; // for kPrivileged
};

/** Full architectural state (the SSA image under SGX). */
struct CpuState {
    std::array<uint64_t, isa::kNumRegs> regs{};
    std::array<BoundReg, isa::kNumBndRegs> bnds{};
    Flags flags;
    uint64_t rip = 0;
};

/** The interpreter. */
class Cpu
{
  public:
    explicit Cpu(AddressSpace &mem)
        : mem_(&mem), block_cache_enabled_(default_block_cache_enabled())
    {}

    // ---- state access ------------------------------------------------
    uint64_t reg(int i) const { return state_.regs[i]; }
    void set_reg(int i, uint64_t v) { state_.regs[i] = v; }
    uint64_t rip() const { return state_.rip; }
    void set_rip(uint64_t rip) { state_.rip = rip; }
    BoundReg bnd(int i) const { return state_.bnds[i]; }
    void set_bnd(int i, BoundReg b) { state_.bnds[i] = b; }
    uint64_t sp() const { return state_.regs[isa::kSp]; }
    void set_sp(uint64_t v) { state_.regs[isa::kSp] = v; }

    const CpuState &state() const { return state_; }
    void set_state(const CpuState &s) { state_ = s; }

    /** Cycles consumed since construction (monotonic). */
    uint64_t cycles() const { return cycles_; }
    /** Dynamic instruction count since construction. */
    uint64_t instructions() const { return instructions_; }

    AddressSpace &mem() { return *mem_; }

    // ---- block-cache control -----------------------------------------
    /** Enable/disable the basic-block cache (drops cached blocks). */
    void set_block_cache_enabled(bool on);
    bool block_cache_enabled() const { return block_cache_enabled_; }

    /**
     * Default for newly constructed Cpus. The ablation bench flips
     * this to run whole workloads in decode-every-time mode without
     * threading a flag through every personality.
     */
    static void set_default_block_cache_enabled(bool on);
    static bool default_block_cache_enabled();

    /** Block-cache statistics (per-Cpu; also mirrored in the trace
     *  registry as vm.block_cache.{hits,misses,invalidations}). */
    uint64_t block_cache_hits() const { return bb_hits_; }
    uint64_t block_cache_misses() const { return bb_misses_; }
    uint64_t block_cache_invalidations() const { return bb_invalidations_; }
    size_t block_cache_blocks() const { return block_cache_.size(); }

    // ---- execution -----------------------------------------------------
    /**
     * Execute up to `max_instructions`. Returns the reason for
     * stopping. On kLtrap, rip points *past* the ltrap so execution
     * can resume after the LibOS services the call. On faults, rip is
     * the faulting instruction.
     */
    CpuExit run(uint64_t max_instructions);

  private:
    /** A predecoded straight-line run, keyed by its entry rip. */
    struct Block {
        std::vector<isa::Instruction> instrs;
        uint64_t generation = ~0ull;
        /**
         * Inline successor cache ("block linking"): the last two
         * transfer targets taken out of this block, so the common
         * jump/branch chains to its target block without a hash
         * lookup. Entries are validated against the current code
         * generation before use; map nodes are never erased (only
         * replaced in place or cleared wholesale), so the pointers
         * stay valid as long as the cache itself lives.
         */
        std::array<uint64_t, 2> succ_rip{};
        std::array<Block *, 2> succ{};
        uint8_t succ_victim = 0;
    };

    /** What the shared execute step did with control flow. */
    enum class Step {
        kNext,     // fell through; rip not yet advanced by execute
        kMemWrite, // fell through after writing memory (recheck code)
        kTransfer, // control transfer; execute stored the new rip
        kExit,     // run() must return `exit`
    };

    /** Block-cached interpreter loop; run() wraps it with metrics. */
    CpuExit run_blocks(uint64_t max_instructions);
    /** Decode-every-time loop (cache off; the ablation baseline). */
    CpuExit run_decode_loop(uint64_t max_instructions);

    /** Fetch + decode one instruction; kNone on success. */
    FaultKind decode_at(uint64_t rip, isa::Instruction *out);
    /** Find or build the block entered at rip; nullptr = fault in
     *  the *first* instruction, with `exit` filled in. */
    Block *lookup_block(uint64_t rip, CpuExit *exit);
    /** Charge cycles and execute one decoded instruction. */
    Step execute(const isa::Instruction &instr, CpuExit *exit);

    /** Effective address of a memory operand (rip-relative uses end). */
    uint64_t effective_address(const isa::MemOperand &mem,
                               uint64_t instr_end) const;

    bool eval_cond(isa::Cond cond) const;
    void set_cmp_flags(uint64_t a, uint64_t b);

    AddressSpace *mem_;
    CpuState state_;
    uint64_t cycles_ = 0;
    uint64_t instructions_ = 0;
    std::unordered_map<uint64_t, Block> block_cache_;
    bool block_cache_enabled_;
    uint64_t bb_hits_ = 0;
    uint64_t bb_misses_ = 0;
    uint64_t bb_invalidations_ = 0;
};

} // namespace occlum::vm

#endif // OCCLUM_VM_CPU_H
