/**
 * @file
 * The OVM CPU: an interpreter for the OVM ISA with MPX-style bound
 * registers and cycle accounting.
 *
 * One Cpu object models one hardware thread (one SGX thread when run
 * under the sgx substrate). Its full register state — including the
 * bound registers, which real SGX saves/restores through the SSA on
 * AEX (paper §2.1/§2.3) — can be snapshotted and restored, which is
 * how the scheduler context-switches SIPs.
 *
 * Dispatch uses a predecoded basic-block cache: the first execution
 * at an entry rip decodes a straight-line run of instructions (ending
 * at a control transfer, a dangerous/ltrap instruction, or the next
 * cfi_label) into a flat array; later executions replay the array in
 * a tight indexed loop. Blocks are keyed by their entry rip, so a
 * jump into the middle of a variable-length instruction builds its
 * own, differently-decoded block — the overlapping-instruction
 * semantics that make the disassembly problem real are preserved.
 * Blocks are invalidated by the AddressSpace generation counter,
 * which now advances automatically on writes to executable pages and
 * on mapping-permission changes involving X. Cycle accounting is
 * identical with the cache on or off: the same per-instruction
 * isa::cycle_cost is charged by the shared execute step.
 *
 * On top of the block cache sits the superblock tier (tier 2, see
 * superblock.h): blocks that reach kPromoteThreshold dispatches are
 * stitched into traces of pre-resolved micro-ops and replayed by a
 * straight-line loop. The tier is wall-clock-only — simulated cycles,
 * instruction counts, fault points, and quantum-slice boundaries are
 * bit-identical to the other tiers — and rides the same generation
 * counter for invalidation: self-modifying code and X-permission
 * changes demote traces back to tier 1. The tier requires the block
 * cache (promotion counts block dispatches); with the cache off it is
 * inert.
 */
#ifndef OCCLUM_VM_CPU_H
#define OCCLUM_VM_CPU_H

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/isa.h"
#include "vm/address_space.h"
#include "vm/superblock.h"

namespace occlum::vm {

/** One MPX-style bound register: [lo, hi], inclusive. */
struct BoundReg {
    uint64_t lo = 0;
    uint64_t hi = ~0ull;
};

/** Comparison flags produced by cmp/test. */
struct Flags {
    bool zf = false;
    bool sf = false;
    bool cf = false;
    bool of = false;
};

/** Why the CPU stopped executing. */
enum class ExitKind {
    kInstrBudget, // executed the requested number of instructions
    kLtrap,       // hit ltrap (LibOS syscall trampoline)
    kPrivileged,  // hit a dangerous instruction (hlt/eexit/bndmk/...)
    kFault,       // memory / bound-range / decode / divide fault
};

/** Fault detail for ExitKind::kFault. */
enum class FaultKind {
    kNone,
    kPageFault,   // unmapped page (e.g. a guard region)
    kPermFault,   // mapped but wrong permission
    kExecFault,   // fetch from non-executable or unmapped page
    kBoundRange,  // #BR from bndcl/bndcu
    kInvalidInstr,// undecodable bytes
    kDivide,      // divide by zero
};

struct CpuExit {
    ExitKind kind = ExitKind::kInstrBudget;
    FaultKind fault = FaultKind::kNone;
    uint64_t fault_addr = 0; // faulting memory address if applicable
    uint64_t rip = 0;        // address of the instruction that exited
    isa::Opcode priv_op = isa::Opcode::kNop; // for kPrivileged
};

/** Full architectural state (the SSA image under SGX). */
struct CpuState {
    std::array<uint64_t, isa::kNumRegs> regs{};
    std::array<BoundReg, isa::kNumBndRegs> bnds{};
    Flags flags;
    uint64_t rip = 0;
};

/** The interpreter. */
class Cpu
{
  public:
    explicit Cpu(AddressSpace &mem)
        : mem_(&mem), block_cache_enabled_(default_block_cache_enabled()),
          superblock_enabled_(default_superblock_enabled())
    {}

    // ---- state access ------------------------------------------------
    uint64_t reg(int i) const { return state_.regs[i]; }
    void set_reg(int i, uint64_t v) { state_.regs[i] = v; }
    uint64_t rip() const { return state_.rip; }
    void set_rip(uint64_t rip) { state_.rip = rip; }
    BoundReg bnd(int i) const { return state_.bnds[i]; }
    void set_bnd(int i, BoundReg b) { state_.bnds[i] = b; }
    uint64_t sp() const { return state_.regs[isa::kSp]; }
    void set_sp(uint64_t v) { state_.regs[isa::kSp] = v; }

    const CpuState &state() const { return state_; }
    void set_state(const CpuState &s) { state_ = s; }

    /** Cycles consumed since construction (monotonic). */
    uint64_t cycles() const { return cycles_; }
    /** Dynamic instruction count since construction. */
    uint64_t instructions() const { return instructions_; }

    AddressSpace &mem() { return *mem_; }

    // ---- block-cache control -----------------------------------------
    /**
     * Enable/disable the basic-block cache. Drops cached blocks and
     * superblocks and zeroes all dispatch counters, so ablation rows
     * never mix counts from two tier configurations.
     */
    void set_block_cache_enabled(bool on);
    bool block_cache_enabled() const { return block_cache_enabled_; }

    /**
     * Default for newly constructed Cpus. The ablation bench flips
     * this to run whole workloads in decode-every-time mode without
     * threading a flag through every personality.
     */
    static void set_default_block_cache_enabled(bool on);
    static bool default_block_cache_enabled();

    /** Block-cache statistics (per-Cpu; also mirrored in the trace
     *  registry as vm.block_cache.{hits,misses,invalidations}). */
    uint64_t block_cache_hits() const { return bb_hits_; }
    uint64_t block_cache_misses() const { return bb_misses_; }
    uint64_t block_cache_invalidations() const { return bb_invalidations_; }
    size_t block_cache_blocks() const { return block_cache_.size(); }

    // ---- superblock-tier control -------------------------------------
    /**
     * Enable/disable the superblock tier (tier 2). Drops all cached
     * state and zeroes the dispatch counters, like the block-cache
     * toggle. Mirrors the crypto reference-mode pattern: the
     * process-wide default comes from OCCLUM_VM_SUPERBLOCK ("0"
     * disables; default on), and the static setter overrides it for
     * ablation/bisection without threading a flag through every
     * personality.
     */
    void set_superblock_enabled(bool on);
    bool superblock_enabled() const { return superblock_enabled_; }
    static void set_default_superblock_enabled(bool on);
    static bool default_superblock_enabled();

    /** Superblock statistics (per-Cpu; mirrored in the trace registry
     *  as vm.superblock.{promotions,invalidations,exec_hits,
     *  guards_folded}). */
    uint64_t superblock_promotions() const { return sb_promotions_; }
    uint64_t superblock_invalidations() const { return sb_invalidations_; }
    uint64_t superblock_exec_hits() const { return sb_exec_hits_; }
    uint64_t superblock_guards_folded() const { return sb_guards_folded_; }
    size_t superblock_count() const { return superblocks_.size(); }

    // ---- execution -----------------------------------------------------
    /**
     * Execute up to `max_instructions`. Returns the reason for
     * stopping. On kLtrap, rip points *past* the ltrap so execution
     * can resume after the LibOS services the call. On faults, rip is
     * the faulting instruction.
     */
    CpuExit run(uint64_t max_instructions);

  private:
    /** A predecoded straight-line run, keyed by its entry rip. */
    struct Block {
        std::vector<isa::Instruction> instrs;
        uint64_t generation = ~0ull;
        /**
         * Inline successor cache ("block linking"): the last two
         * transfer targets taken out of this block, so the common
         * jump/branch chains to its target block without a hash
         * lookup. Entries are validated against the current code
         * generation before use; map nodes are never erased (only
         * replaced in place or cleared wholesale), so the pointers
         * stay valid as long as the cache itself lives.
         */
        std::array<uint64_t, 2> succ_rip{};
        std::array<Block *, 2> succ{};
        uint8_t succ_victim = 0;
        /** Dispatch count; at kPromoteThreshold the block is stitched
         *  into a superblock (tier 2). */
        uint32_t exec_count = 0;
        /** The promoted trace, or nullptr. Points into superblocks_;
         *  valid while the generations match (checked at dispatch). */
        Superblock *sb = nullptr;
    };

    /** What the shared execute step did with control flow. */
    enum class Step {
        kNext,     // fell through; rip not yet advanced by execute
        kMemWrite, // fell through after writing memory (recheck code)
        kTransfer, // control transfer; execute stored the new rip
        kExit,     // run() must return `exit`
    };

    /** How a superblock execution ended. */
    enum class SbResult {
        kLeft, // left the trace; rip is set, the outer loop continues
        kExit, // run() must return `exit`
    };

    /** Block-cached interpreter loop; run() wraps it with metrics. */
    CpuExit run_blocks(uint64_t max_instructions);
    /** Decode-every-time loop (cache off; the ablation baseline). */
    CpuExit run_decode_loop(uint64_t max_instructions);

    /** Translate + install a superblock at entry_rip (tier 2);
     *  nullptr when no useful trace exists. In superblock.cc. */
    Superblock *promote_superblock(uint64_t entry_rip);
    /** Replay a trace until it exits or the budget lands inside it.
     *  Charges exactly what the per-instruction tiers would. */
    SbResult exec_superblock(const Superblock &sb, uint64_t max_instructions,
                             uint64_t *executed_io, CpuExit *exit);
    /** Zero all bb/sb counters (tier toggles must not mix counts). */
    void reset_dispatch_counters();

    /** Fetch + decode one instruction; kNone on success. */
    FaultKind decode_at(uint64_t rip, isa::Instruction *out);
    /** Find or build the block entered at rip; nullptr = fault in
     *  the *first* instruction, with `exit` filled in. */
    Block *lookup_block(uint64_t rip, CpuExit *exit);
    /** Charge cycles and execute one decoded instruction. */
    Step execute(const isa::Instruction &instr, CpuExit *exit);

    /** Effective address of a memory operand (rip-relative uses end). */
    uint64_t effective_address(const isa::MemOperand &mem,
                               uint64_t instr_end) const;

    // Inline: both sit on the per-instruction hot path of every
    // execution tier (tier 2 calls them from another TU).
    bool
    eval_cond(isa::Cond cond) const
    {
        const Flags &f = state_.flags;
        switch (cond) {
          case isa::Cond::kEq: return f.zf;
          case isa::Cond::kNe: return !f.zf;
          case isa::Cond::kLt: return f.sf != f.of;
          case isa::Cond::kLe: return f.zf || (f.sf != f.of);
          case isa::Cond::kGt: return !f.zf && (f.sf == f.of);
          case isa::Cond::kGe: return f.sf == f.of;
          case isa::Cond::kB: return f.cf;
          case isa::Cond::kBe: return f.cf || f.zf;
          case isa::Cond::kA: return !f.cf && !f.zf;
          case isa::Cond::kAe: return !f.cf;
        }
        OCC_PANIC("bad cond");
    }

    void
    set_cmp_flags(uint64_t a, uint64_t b)
    {
        uint64_t diff = a - b;
        int64_t sa = static_cast<int64_t>(a);
        int64_t sb = static_cast<int64_t>(b);
        state_.flags.zf = (a == b);
        state_.flags.sf = (static_cast<int64_t>(diff) < 0);
        state_.flags.cf = (a < b);
        // Signed overflow of a - b.
        state_.flags.of = ((sa < 0) != (sb < 0)) &&
                          ((sa < 0) != (static_cast<int64_t>(diff) < 0));
    }

    AddressSpace *mem_;
    CpuState state_;
    uint64_t cycles_ = 0;
    uint64_t instructions_ = 0;
    std::unordered_map<uint64_t, Block> block_cache_;
    bool block_cache_enabled_;
    uint64_t bb_hits_ = 0;
    uint64_t bb_misses_ = 0;
    uint64_t bb_invalidations_ = 0;

    /** Installed traces, keyed by entry rip. Nodes are stable (never
     *  erased, only replaced in place or cleared wholesale), so the
     *  Block::sb pointers stay valid for the life of the cache. */
    std::unordered_map<uint64_t, Superblock> superblocks_;
    bool superblock_enabled_;
    uint64_t sb_promotions_ = 0;
    uint64_t sb_invalidations_ = 0;
    uint64_t sb_exec_hits_ = 0;
    uint64_t sb_guards_folded_ = 0;
};

} // namespace occlum::vm

#endif // OCCLUM_VM_CPU_H
