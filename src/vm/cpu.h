/**
 * @file
 * The OVM CPU: an interpreter for the OVM ISA with MPX-style bound
 * registers and cycle accounting.
 *
 * One Cpu object models one hardware thread (one SGX thread when run
 * under the sgx substrate). Its full register state — including the
 * bound registers, which real SGX saves/restores through the SSA on
 * AEX (paper §2.1/§2.3) — can be snapshotted and restored, which is
 * how the scheduler context-switches SIPs.
 */
#ifndef OCCLUM_VM_CPU_H
#define OCCLUM_VM_CPU_H

#include <array>
#include <cstdint>
#include <unordered_map>

#include "isa/isa.h"
#include "vm/address_space.h"

namespace occlum::vm {

/** One MPX-style bound register: [lo, hi], inclusive. */
struct BoundReg {
    uint64_t lo = 0;
    uint64_t hi = ~0ull;
};

/** Comparison flags produced by cmp/test. */
struct Flags {
    bool zf = false;
    bool sf = false;
    bool cf = false;
    bool of = false;
};

/** Why the CPU stopped executing. */
enum class ExitKind {
    kInstrBudget, // executed the requested number of instructions
    kLtrap,       // hit ltrap (LibOS syscall trampoline)
    kPrivileged,  // hit a dangerous instruction (hlt/eexit/bndmk/...)
    kFault,       // memory / bound-range / decode / divide fault
};

/** Fault detail for ExitKind::kFault. */
enum class FaultKind {
    kNone,
    kPageFault,   // unmapped page (e.g. a guard region)
    kPermFault,   // mapped but wrong permission
    kExecFault,   // fetch from non-executable or unmapped page
    kBoundRange,  // #BR from bndcl/bndcu
    kInvalidInstr,// undecodable bytes
    kDivide,      // divide by zero
};

struct CpuExit {
    ExitKind kind = ExitKind::kInstrBudget;
    FaultKind fault = FaultKind::kNone;
    uint64_t fault_addr = 0; // faulting memory address if applicable
    uint64_t rip = 0;        // address of the instruction that exited
    isa::Opcode priv_op = isa::Opcode::kNop; // for kPrivileged
};

/** Full architectural state (the SSA image under SGX). */
struct CpuState {
    std::array<uint64_t, isa::kNumRegs> regs{};
    std::array<BoundReg, isa::kNumBndRegs> bnds{};
    Flags flags;
    uint64_t rip = 0;
};

/** The interpreter. */
class Cpu
{
  public:
    explicit Cpu(AddressSpace &mem) : mem_(&mem) {}

    // ---- state access ------------------------------------------------
    uint64_t reg(int i) const { return state_.regs[i]; }
    void set_reg(int i, uint64_t v) { state_.regs[i] = v; }
    uint64_t rip() const { return state_.rip; }
    void set_rip(uint64_t rip) { state_.rip = rip; }
    BoundReg bnd(int i) const { return state_.bnds[i]; }
    void set_bnd(int i, BoundReg b) { state_.bnds[i] = b; }
    uint64_t sp() const { return state_.regs[isa::kSp]; }
    void set_sp(uint64_t v) { state_.regs[isa::kSp] = v; }

    const CpuState &state() const { return state_; }
    void set_state(const CpuState &s) { state_ = s; }

    /** Cycles consumed since construction (monotonic). */
    uint64_t cycles() const { return cycles_; }
    /** Dynamic instruction count since construction. */
    uint64_t instructions() const { return instructions_; }

    AddressSpace &mem() { return *mem_; }

    // ---- execution -----------------------------------------------------
    /**
     * Execute up to `max_instructions`. Returns the reason for
     * stopping. On kLtrap, rip points *past* the ltrap so execution
     * can resume after the LibOS services the call. On faults, rip is
     * the faulting instruction.
     */
    CpuExit run(uint64_t max_instructions);

  private:
    /** The interpreter loop proper; run() wraps it with metrics. */
    CpuExit run_interpret(uint64_t max_instructions);

    struct DecodeEntry {
        isa::Instruction instr;
        uint64_t generation = ~0ull;
    };

    /** Effective address of a memory operand (rip-relative uses end). */
    uint64_t effective_address(const isa::MemOperand &mem,
                               uint64_t instr_end) const;

    bool eval_cond(isa::Cond cond) const;
    void set_cmp_flags(uint64_t a, uint64_t b);

    AddressSpace *mem_;
    CpuState state_;
    uint64_t cycles_ = 0;
    uint64_t instructions_ = 0;
    std::unordered_map<uint64_t, DecodeEntry> decode_cache_;
};

} // namespace occlum::vm

#endif // OCCLUM_VM_CPU_H
