/**
 * @file
 * Superblock translation (trace stitching + micro-op lowering) and
 * the tier-2 execution loop (Cpu::exec_superblock / promote).
 *
 * The stitcher follows static control flow from the hot entry:
 * collapsed direct jumps, stitched direct calls with a static return
 * stack, guarded returns (plain `ret` and the MMDSFI `jmp *reg`
 * rewrite), intra-trace conditional back edges. Everything it cannot
 * prove becomes a guarded exit carrying the exact architectural rip,
 * so a mispredicted trace is merely slow, never wrong.
 */
#include "vm/superblock.h"

#include <cstring>

#include "base/log.h"
#include "vm/cpu.h"

namespace occlum::vm {

using isa::Instruction;
using isa::Opcode;

namespace {

/**
 * Dispatch-label table published by the first (probe) call into
 * exec_superblock on computed-goto builds; stays null under the
 * switch fallback. Label addresses are per-function constants, so one
 * table serves every Cpu instance.
 */
const void *const *g_sb_label_table = nullptr;

/**
 * Evaluate `cond` of a compare of (a, b) directly from the operands.
 * Exactly equivalent to eval_cond() over set_cmp_flags(a, b) by the
 * x86 flag identities (sf != of <=> signed a < b, cf <=> unsigned
 * a < b, zf <=> a == b); fused compare-branches use this so the
 * branch decision does not round-trip through the flags store.
 */
inline bool
cond_holds(isa::Cond cond, uint64_t a, uint64_t b)
{
    int64_t sa = static_cast<int64_t>(a);
    int64_t sb = static_cast<int64_t>(b);
    switch (cond) {
      case isa::Cond::kEq: return a == b;
      case isa::Cond::kNe: return a != b;
      case isa::Cond::kLt: return sa < sb;
      case isa::Cond::kLe: return sa <= sb;
      case isa::Cond::kGt: return sa > sb;
      case isa::Cond::kGe: return sa >= sb;
      case isa::Cond::kB: return a < b;
      case isa::Cond::kBe: return a <= b;
      case isa::Cond::kA: return a > b;
      case isa::Cond::kAe: return a >= b;
    }
    OCC_PANIC("bad cond");
}

FaultKind
sb_fault_kind(AccessFault fault)
{
    switch (fault) {
      case AccessFault::kUnmapped: return FaultKind::kPageFault;
      case AccessFault::kNoRead:
      case AccessFault::kNoWrite:
      case AccessFault::kNoExec: return FaultKind::kPermFault;
      case AccessFault::kNone: return FaultKind::kNone;
    }
    return FaultKind::kNone;
}

/** Bind a memory operand: rip-relative/absolute fold to a constant. */
void
bind_ea(Uop *u, const isa::MemOperand &mem, uint64_t instr_end)
{
    switch (mem.mode) {
      case isa::AddrMode::kBaseDisp:
        u->ea = kEaBaseDisp;
        u->base = mem.base;
        u->disp = static_cast<int64_t>(mem.disp);
        break;
      case isa::AddrMode::kSib:
        u->ea = kEaSib;
        u->base = mem.base;
        u->index = mem.index;
        u->scale = mem.scale_log2;
        u->disp = static_cast<int64_t>(mem.disp);
        break;
      case isa::AddrMode::kRipRel:
        u->ea = kEaConst;
        u->disp =
            static_cast<int64_t>(instr_end + static_cast<int64_t>(mem.disp));
        break;
      case isa::AddrMode::kAbs:
        u->ea = kEaConst;
        u->disp = static_cast<int64_t>(mem.abs_addr);
        break;
    }
}

/**
 * Execute one kAluPack component. Callers inline this per component
 * slot, so under computed-goto dispatch each slot gets its own
 * jump-table branch with a stable per-trace target.
 */
#if defined(__GNUC__) || defined(__clang__)
__attribute__((always_inline))
#endif
[[maybe_unused]] inline void
exec_alu(uint64_t *regs, uint8_t code, uint8_t rd, uint8_t rs,
         int64_t imm)
{
    uint64_t v = static_cast<uint64_t>(imm);
    switch (static_cast<UopKind>(code)) {
      case UopKind::kMovRI: regs[rd] = v; break;
      case UopKind::kMovRR: regs[rd] = regs[rs]; break;
      case UopKind::kAddRI: regs[rd] += v; break;
      case UopKind::kAddRR: regs[rd] += regs[rs]; break;
      case UopKind::kSubRI: regs[rd] -= v; break;
      case UopKind::kSubRR: regs[rd] -= regs[rs]; break;
      case UopKind::kMulRI: regs[rd] *= v; break;
      case UopKind::kMulRR: regs[rd] *= regs[rs]; break;
      case UopKind::kAndRI: regs[rd] &= v; break;
      case UopKind::kAndRR: regs[rd] &= regs[rs]; break;
      case UopKind::kOrRI: regs[rd] |= v; break;
      case UopKind::kOrRR: regs[rd] |= regs[rs]; break;
      case UopKind::kXorRI: regs[rd] ^= v; break;
      case UopKind::kXorRR: regs[rd] ^= regs[rs]; break;
      case UopKind::kShlRI: regs[rd] <<= (imm & 63); break;
      case UopKind::kShrRI: regs[rd] >>= (imm & 63); break;
      case UopKind::kSarRI:
        regs[rd] = static_cast<uint64_t>(
            static_cast<int64_t>(regs[rd]) >> (imm & 63));
        break;
      case UopKind::kShlRR: regs[rd] <<= (regs[rs] & 63); break;
      case UopKind::kShrRR: regs[rd] >>= (regs[rs] & 63); break;
      case UopKind::kSarRR:
        regs[rd] = static_cast<uint64_t>(
            static_cast<int64_t>(regs[rd]) >> (regs[rs] & 63));
        break;
      default:
        OCC_PANIC("non-packable code in kAluPack");
    }
}

} // namespace

namespace {

/**
 * rip -> uop index for the trace being built: open-addressed, linear
 * probing, epoch-stamped so reset() is O(1) instead of clearing the
 * arrays. Translation does one allocation-free O(1) probe per
 * instruction where a node-based unordered_map would malloc per
 * insert — the map was the single largest slice of promotion cost.
 * Capacity is 4x kMaxTraceInstrs, so the table never fills.
 */
class RipIndex
{
  public:
    void reset()
    {
        if (++epoch_ == 0) { // stamp wrapped: hard-clear once
            std::memset(stamps_, 0, sizeof(stamps_));
            epoch_ = 1;
        }
    }
    int32_t find(uint64_t rip) const
    {
        for (size_t s = slot(rip);; s = (s + 1) & (kSlots - 1)) {
            if (stamps_[s] != epoch_) {
                return -1;
            }
            if (rips_[s] == rip) {
                return index_[s];
            }
        }
    }
    void insert(uint64_t rip, int32_t index)
    {
        for (size_t s = slot(rip);; s = (s + 1) & (kSlots - 1)) {
            if (stamps_[s] != epoch_ || rips_[s] == rip) {
                stamps_[s] = epoch_;
                rips_[s] = rip;
                index_[s] = index;
                return;
            }
        }
    }

  private:
    static constexpr size_t kSlots = 2048;
    static_assert(kSlots >= 4 * kMaxTraceInstrs, "keep the table sparse");
    static size_t slot(uint64_t rip)
    {
        return (rip * 0x9e3779b97f4a7c15ull >> 32) & (kSlots - 1);
    }
    uint32_t epoch_ = 0;
    uint32_t stamps_[kSlots] = {};
    uint64_t rips_[kSlots] = {};
    int32_t index_[kSlots] = {};
};

} // namespace

bool
translate_superblock(const SbDecodeFn &decode, uint64_t entry_rip,
                     uint64_t generation, Superblock *out)
{
    std::vector<Uop> uops;
    uops.reserve(32);
    // Instruction rip -> uop index, for intra-trace branch targets and
    // the merge check (control re-entering already-stitched code).
    static thread_local RipIndex index_at;
    index_at.reset();
    // Static return stack: pushed at stitched direct calls, consumed
    // by ret / jmp-reg guards so returns continue at the call site.
    std::vector<uint64_t> ret_stack;

    uint64_t pc = entry_rip;
    size_t instr_count = 0;
    bool done = false;

    auto exit_to = [&](uint64_t rip) {
        Uop u;
        u.kind = UopKind::kExitTo;
        u.exit_rip = rip;
        u.n_instrs = 0;
        u.cost = 0;
        u.address = rip;
        u.next_rip = rip;
        uops.push_back(u);
    };

    while (!done) {
        int32_t seen = index_at.find(pc);
        if (seen >= 0) {
            // Control flowed back into already-stitched code: close
            // the trace with an intra-trace jump (zero instructions —
            // no original instruction corresponds to this uop).
            Uop u;
            u.kind = UopKind::kGoto;
            u.target = seen;
            u.n_instrs = 0;
            u.cost = 0;
            u.address = pc;
            u.next_rip = pc;
            uops.push_back(u);
            break;
        }
        if (instr_count >= kMaxTraceInstrs) {
            exit_to(pc);
            break;
        }
        Instruction in;
        if (!decode(pc, &in)) {
            // Undecodable ahead of execution: if control really gets
            // here, tier 1 raises the architectural fault.
            exit_to(pc);
            break;
        }
        index_at.insert(pc, static_cast<int32_t>(uops.size()));
        ++instr_count;

        Uop u;
        u.address = in.address;
        u.address2 = in.address;
        u.next_rip = in.end();
        u.cost = in.cost;
        u.n_instrs = 1;
        uint64_t next_pc = in.end();

        switch (in.op) {
          case Opcode::kNop:
          case Opcode::kCfiLabel:
            u.kind = UopKind::kCharge;
            break;

          case Opcode::kHlt:
          case Opcode::kEexit:
          case Opcode::kEaccept:
          case Opcode::kXrstor:
          case Opcode::kWrfsbase:
          case Opcode::kBndmk:
          case Opcode::kBndmov:
            u.kind = UopKind::kPriv;
            u.imm = static_cast<int64_t>(in.op);
            done = true;
            break;

          case Opcode::kLtrap:
            u.kind = UopKind::kLtrap;
            done = true;
            break;

          case Opcode::kRdcycle:
            u.kind = UopKind::kRdcycle;
            u.reg1 = in.reg1;
            break;

          case Opcode::kMovRI:
            u.kind = UopKind::kMovRI;
            u.reg1 = in.reg1;
            u.imm = in.imm;
            break;
          case Opcode::kMovRR:
            u.kind = UopKind::kMovRR;
            u.reg1 = in.reg1;
            u.reg2 = in.reg2;
            break;

          case Opcode::kLoad:
          case Opcode::kLoad8:
          case Opcode::kLoad32:
          case Opcode::kVGather: // executes as a plain 64-bit load
            u.kind = UopKind::kLoad;
            u.reg1 = in.reg1;
            u.size = in.op == Opcode::kLoad8 ? 1
                   : in.op == Opcode::kLoad32 ? 4 : 8;
            bind_ea(&u, in.mem, in.end());
            break;
          case Opcode::kStore:
          case Opcode::kStore8:
          case Opcode::kStore32:
            u.kind = UopKind::kStore;
            u.reg1 = in.reg1;
            u.size = in.op == Opcode::kStore8 ? 1
                   : in.op == Opcode::kStore32 ? 4 : 8;
            bind_ea(&u, in.mem, in.end());
            break;
          case Opcode::kLea:
            u.kind = UopKind::kLea;
            u.reg1 = in.reg1;
            bind_ea(&u, in.mem, in.end());
            if (u.ea == kEaConst) {
                // A rip-relative/absolute lea folds to a constant at
                // translation time, so it is just a register move —
                // and kMovRI is packable where kLea is not (packs
                // reuse the EA fields).
                u.kind = UopKind::kMovRI;
                u.imm = u.disp;
            }
            break;

          case Opcode::kAddRR: u.kind = UopKind::kAddRR; goto rr;
          case Opcode::kSubRR: u.kind = UopKind::kSubRR; goto rr;
          case Opcode::kMulRR: u.kind = UopKind::kMulRR; goto rr;
          case Opcode::kDivRR: u.kind = UopKind::kDivRR; goto rr;
          case Opcode::kModRR: u.kind = UopKind::kModRR; goto rr;
          case Opcode::kAndRR: u.kind = UopKind::kAndRR; goto rr;
          case Opcode::kOrRR:  u.kind = UopKind::kOrRR;  goto rr;
          case Opcode::kXorRR: u.kind = UopKind::kXorRR; goto rr;
          case Opcode::kShlRR: u.kind = UopKind::kShlRR; goto rr;
          case Opcode::kShrRR: u.kind = UopKind::kShrRR; goto rr;
          case Opcode::kSarRR: u.kind = UopKind::kSarRR; goto rr;
          case Opcode::kCmpRR: u.kind = UopKind::kCmpRR; goto rr;
          case Opcode::kTestRR: u.kind = UopKind::kTestRR; goto rr;
          rr:
            u.reg1 = in.reg1;
            u.reg2 = in.reg2;
            break;

          case Opcode::kAddRI: u.kind = UopKind::kAddRI; goto ri;
          case Opcode::kSubRI: u.kind = UopKind::kSubRI; goto ri;
          case Opcode::kMulRI: u.kind = UopKind::kMulRI; goto ri;
          case Opcode::kAndRI: u.kind = UopKind::kAndRI; goto ri;
          case Opcode::kOrRI:  u.kind = UopKind::kOrRI;  goto ri;
          case Opcode::kXorRI: u.kind = UopKind::kXorRI; goto ri;
          case Opcode::kShlRI: u.kind = UopKind::kShlRI; goto ri;
          case Opcode::kShrRI: u.kind = UopKind::kShrRI; goto ri;
          case Opcode::kSarRI: u.kind = UopKind::kSarRI; goto ri;
          case Opcode::kCmpRI: u.kind = UopKind::kCmpRI; goto ri;
          ri:
            u.reg1 = in.reg1;
            u.imm = in.imm;
            break;

          case Opcode::kNeg:
            u.kind = UopKind::kNeg;
            u.reg1 = in.reg1;
            break;
          case Opcode::kNot:
            u.kind = UopKind::kNot;
            u.reg1 = in.reg1;
            break;

          case Opcode::kJmp: {
            uint64_t target = in.direct_target();
            int32_t t = index_at.find(target);
            if (t >= 0) {
                u.kind = UopKind::kGoto; // back edge: trace is closed
                u.target = t;
                u.next_rip = target;
                done = true;
            } else {
                // Collapsed: charge the jump, keep stitching at the
                // target — the branch chain disappears from dispatch.
                u.kind = UopKind::kCharge;
                u.next_rip = target;
                next_pc = target;
            }
            break;
          }
          case Opcode::kJcc: {
            uint64_t taken = in.direct_target();
            u.cond = in.cond;
            int32_t t = index_at.find(taken);
            if (t >= 0) {
                u.kind = UopKind::kJccGoto; // loop back edge
                u.target = t;
            } else {
                u.kind = UopKind::kJccExit;
                u.exit_rip = taken;
            }
            break; // fall-through path continues the trace
          }
          case Opcode::kCall: {
            uint64_t target = in.direct_target();
            u.imm = static_cast<int64_t>(in.end()); // pushed return rip
            if (ret_stack.size() >=
                static_cast<size_t>(kMaxStitchDepth)) {
                u.kind = UopKind::kCallExit;
                u.exit_rip = target;
                done = true;
            } else {
                u.kind = UopKind::kCall;
                u.next_rip = target; // control continues in the callee
                ret_stack.push_back(in.end());
                next_pc = target;
            }
            break;
          }
          case Opcode::kCallReg:
            u.kind = UopKind::kCallRegExit;
            u.reg1 = in.reg1;
            u.imm = static_cast<int64_t>(in.end());
            done = true;
            break;
          case Opcode::kCallMem:
            u.kind = UopKind::kCallMemExit;
            u.imm = static_cast<int64_t>(in.end());
            bind_ea(&u, in.mem, in.end());
            done = true;
            break;
          case Opcode::kJmpReg:
            u.reg1 = in.reg1;
            if (!ret_stack.empty()) {
                // The MMDSFI return rewrite (`pop r; cfi_guard; jmp
                // *r`): predict the statically paired return site and
                // guard on it — a mismatch exits with the true rip.
                u.kind = UopKind::kJmpRegGuard;
                u.exit_rip = ret_stack.back();
                ret_stack.pop_back();
                next_pc = u.exit_rip;
            } else {
                u.kind = UopKind::kJmpRegExit;
                done = true;
            }
            break;
          case Opcode::kJmpMem:
            u.kind = UopKind::kJmpMemExit;
            bind_ea(&u, in.mem, in.end());
            done = true;
            break;
          case Opcode::kRet:
          case Opcode::kRetImm:
            u.imm = in.imm; // extra pop bytes (kRetImm)
            u.reg1 = 0;
            if (!ret_stack.empty()) {
                u.kind = UopKind::kRetGuard;
                u.exit_rip = ret_stack.back();
                ret_stack.pop_back();
                next_pc = u.exit_rip;
            } else {
                u.kind = UopKind::kRetExit;
                done = true;
            }
            break;

          case Opcode::kPush:
            u.kind = UopKind::kPush;
            u.reg1 = in.reg1;
            break;
          case Opcode::kPushImm:
            u.kind = UopKind::kPushImm;
            u.imm = in.imm;
            break;
          case Opcode::kPop:
            u.kind = UopKind::kPop;
            u.reg1 = in.reg1;
            break;

          case Opcode::kBndclMem:
          case Opcode::kBndcuMem:
            u.kind = UopKind::kBndChkMem;
            u.mask = in.op == Opcode::kBndclMem ? 1 : 2;
            u.bnd = in.bnd;
            bind_ea(&u, in.mem, in.end());
            break;
          case Opcode::kBndclReg:
          case Opcode::kBndcuReg:
            u.kind = UopKind::kBndChkReg;
            u.mask = in.op == Opcode::kBndclReg ? 1 : 2;
            u.bnd = in.bnd;
            u.reg1 = in.reg1;
            break;
        }

        uops.push_back(u);
        pc = next_pc;
    }

    if (uops.empty() || uops[0].kind == UopKind::kExitTo) {
        return false; // no useful trace at this entry
    }

    std::vector<uint8_t> is_target(uops.size(), 0);
    for (const Uop &u : uops) {
        if (u.target >= 0) {
            is_target[static_cast<size_t>(u.target)] = 1;
        }
    }

    uint32_t folded = 0;
    peephole::elide_duplicate_guards(uops, is_target, &folded);
    peephole::fuse_bound_pairs(uops, is_target, &folded);
    peephole::fuse_compare_branches(uops, is_target);
    peephole::collapse_charge_runs(uops, is_target);
    // After charge runs are merged, so a collapsed run in front of an
    // access is absorbed whole.
    peephole::fuse_bound_accesses(uops, is_target, &folded);
    peephole::fuse_alu_packs(uops, is_target);
    // After packing, so ALU runs keep the pack encoding and only a
    // lone leftover ALU merges into the load feeding it.
    peephole::fuse_load_alu(uops, is_target);
    peephole::compact(uops);

    out->uops = std::move(uops);
    out->entry_rip = entry_rip;
    out->generation = generation;
    out->first_n_instrs = std::max<uint32_t>(1, out->uops[0].n_instrs);
    out->guards_folded = folded;
    return true;
}

Superblock *
Cpu::promote_superblock(uint64_t entry_rip)
{
    Superblock sb;
    // Serve decodes from predecoded tier-1 blocks when possible: the
    // trace mostly walks the promoted block itself (plus linked
    // successors), all already decoded under the current generation.
    // Stale-generation blocks are skipped — their bytes may differ.
    const Block *src = nullptr;
    size_t cursor = 0;
    const uint64_t gen = mem_->code_generation();
    auto decode = [&, this](uint64_t rip, Instruction *instr) {
        if (src != nullptr) {
            const std::vector<Instruction> &ins = src->instrs;
            if (cursor < ins.size() && ins[cursor].address == rip) {
                *instr = ins[cursor++];
                return true;
            }
            for (size_t k = 0; k < ins.size(); ++k) {
                if (ins[k].address == rip) {
                    *instr = ins[k];
                    cursor = k + 1;
                    return true;
                }
            }
        }
        auto it = block_cache_.find(rip);
        if (it != block_cache_.end() && it->second.generation == gen &&
            !it->second.instrs.empty()) {
            src = &it->second;
            cursor = 1;
            *instr = src->instrs[0];
            return true;
        }
        return decode_at(rip, instr) == FaultKind::kNone;
    };
    if (!translate_superblock(decode, entry_rip, gen, &sb)) {
        return nullptr;
    }
    // Direct threading: bind each uop to its dispatch label. The
    // first promotion probes exec_superblock (exit == nullptr) to
    // publish the function-local label table.
    if (g_sb_label_table == nullptr) {
        uint64_t none = 0;
        exec_superblock(sb, 0, &none, nullptr);
    }
    if (g_sb_label_table != nullptr) {
        for (Uop &u : sb.uops) {
            u.handler = g_sb_label_table[static_cast<size_t>(u.kind)];
            // Memory uops bind the width-constant body variant (the
            // extension slots past kNumUopKinds) so the hot loop never
            // branches on op->size.
            int group;
            switch (u.kind) {
              case UopKind::kLoad:     group = 0; break;
              case UopKind::kStore:    group = 1; break;
              case UopKind::kLoadChk:  group = 2; break;
              case UopKind::kStoreChk: group = 3; break;
              case UopKind::kLoadAlu:  group = 4; break;
              default:                 group = -1; break;
            }
            if (group >= 0) {
                int w = u.size == 8 ? 0 : u.size == 4 ? 1 : 2;
                u.handler = g_sb_label_table
                    [kNumUopKinds + static_cast<size_t>(group * 3 + w)];
            }
        }
    }
    ++sb_promotions_;
    sb_guards_folded_ += sb.guards_folded;
    // Map nodes are stable; insert_or_assign replaces a stale trace
    // for the same entry in place (no Block points at it anymore —
    // re-promotion only happens after the pointing block was rebuilt).
    auto [it, inserted] = superblocks_.insert_or_assign(entry_rip,
                                                        std::move(sb));
    (void)inserted;
    return &it->second;
}

/*
 * Dispatch strategy: with a single switch, every uop funnels through
 * one indirect branch whose target rotates with the kinds inside the
 * trace loop, so the predictor eats a mispredict per uop — which is
 * most of an interpreter's per-op cost. With the GNU labels-as-values
 * extension each op body ends in its *own* dispatch jump, and inside
 * a trace each of those sites has a stable successor, so the replayed
 * loop runs nearly branch-miss-free. Compilers without the extension
 * fall back to the plain while/switch shape; both expansions share
 * the same op bodies below.
 */
#if defined(__GNUC__) || defined(__clang__)
#define OCC_SB_CGOTO 1
#define SB_OP(name) lbl_##name
#define SB_DISPATCH()                                                   \
    do {                                                                \
        op = uops + i;                                                  \
        if (budget - done < op->n_instrs) {                             \
            goto budget_stop;                                           \
        }                                                               \
        goto *op->handler;                                              \
    } while (0)
#define SB_NEXT() SB_DISPATCH()
#else
#define OCC_SB_CGOTO 0
#define SB_OP(name) case UopKind::k##name
#define SB_NEXT() break
#endif

#if OCC_SB_CGOTO
/*
 * kAluPack inner dispatch. Each pack slot goes through its own label
 * table so each slot's indirect branch has a stable per-trace target;
 * a single shared table (or an inlined switch the compiler
 * cross-jumps into one) would give one branch site whose target
 * rotates across slots every pack. Tables are indexed by raw UopKind
 * code; fuse_alu_packs only stores packable codes (<= kNot), the
 * kDivRR/kModRR and non-ALU slots map to the panic label.
 */
#define SB_ALU_TABLE(S)                                                 \
    static const void *const kAlu##S[] = {                              \
        &&alu##S##_Bad, &&alu##S##_Bad, &&alu##S##_MovRI,               \
        &&alu##S##_MovRR, &&alu##S##_AddRI, &&alu##S##_AddRR,           \
        &&alu##S##_SubRI, &&alu##S##_SubRR, &&alu##S##_MulRI,           \
        &&alu##S##_MulRR, &&alu##S##_Bad, &&alu##S##_Bad,               \
        &&alu##S##_AndRI, &&alu##S##_AndRR, &&alu##S##_OrRI,            \
        &&alu##S##_OrRR, &&alu##S##_XorRI, &&alu##S##_XorRR,            \
        &&alu##S##_ShlRI, &&alu##S##_ShrRI, &&alu##S##_SarRI,           \
        &&alu##S##_ShlRR, &&alu##S##_ShrRR, &&alu##S##_SarRR,           \
        &&alu##S##_Neg, &&alu##S##_Not,                                 \
    }

/** One packed mini-op body per packable kind, for slot S. */
#define SB_ALU_BODIES(S, RD, RS, IMM, NEXT)                             \
    alu##S##_MovRI: regs[RD] = static_cast<uint64_t>(IMM); NEXT;        \
    alu##S##_MovRR: regs[RD] = regs[RS]; NEXT;                          \
    alu##S##_AddRI: regs[RD] += static_cast<uint64_t>(IMM); NEXT;       \
    alu##S##_AddRR: regs[RD] += regs[RS]; NEXT;                         \
    alu##S##_SubRI: regs[RD] -= static_cast<uint64_t>(IMM); NEXT;       \
    alu##S##_SubRR: regs[RD] -= regs[RS]; NEXT;                         \
    alu##S##_MulRI: regs[RD] *= static_cast<uint64_t>(IMM); NEXT;       \
    alu##S##_MulRR: regs[RD] *= regs[RS]; NEXT;                         \
    alu##S##_AndRI: regs[RD] &= static_cast<uint64_t>(IMM); NEXT;       \
    alu##S##_AndRR: regs[RD] &= regs[RS]; NEXT;                         \
    alu##S##_OrRI: regs[RD] |= static_cast<uint64_t>(IMM); NEXT;        \
    alu##S##_OrRR: regs[RD] |= regs[RS]; NEXT;                          \
    alu##S##_XorRI: regs[RD] ^= static_cast<uint64_t>(IMM); NEXT;       \
    alu##S##_XorRR: regs[RD] ^= regs[RS]; NEXT;                         \
    alu##S##_ShlRI: regs[RD] <<= ((IMM) & 63); NEXT;                    \
    alu##S##_ShrRI: regs[RD] >>= ((IMM) & 63); NEXT;                    \
    alu##S##_SarRI:                                                     \
        regs[RD] = static_cast<uint64_t>(                               \
            static_cast<int64_t>(regs[RD]) >> ((IMM) & 63));            \
        NEXT;                                                           \
    alu##S##_ShlRR: regs[RD] <<= (regs[RS] & 63); NEXT;                 \
    alu##S##_ShrRR: regs[RD] >>= (regs[RS] & 63); NEXT;                 \
    alu##S##_SarRR:                                                     \
        regs[RD] = static_cast<uint64_t>(                               \
            static_cast<int64_t>(regs[RD]) >> (regs[RS] & 63));         \
        NEXT;                                                           \
    alu##S##_Neg: regs[RD] = 0 - regs[RD]; NEXT;                        \
    alu##S##_Not: regs[RD] = ~regs[RD]; NEXT;                           \
    alu##S##_Bad: OCC_PANIC("non-packable code in kAluPack")
#endif

Cpu::SbResult
Cpu::exec_superblock(const Superblock &sb, uint64_t max_instructions,
                     uint64_t *executed_io, CpuExit *exit)
{
    // __restrict: uops/regs point into disjoint allocations (the
    // installed trace vs. this Cpu's register file), and installed
    // uops are immutable while executing — without the qualifier
    // every regs/flags/memory store forces the compiler to reload
    // op-> fields, which dominates the straight-line dispatch cost.
    // Not const: trace linking (link_or_leave below) swaps in the
    // uop buffer of a successor trace without leaving this frame.
    const Uop *__restrict uops = sb.uops.data();
    int32_t n = static_cast<int32_t>(sb.uops.size());
    uint64_t *__restrict const regs = state_.regs.data();
    AddressSpace &mem = *mem_;

    // Counters live in locals for the duration of the trace and are
    // flushed on every exit path; the deltas are exactly what the
    // per-instruction tiers would have produced.
    uint64_t cycles = cycles_;
    uint64_t done = 0;
    const uint64_t budget = max_instructions - *executed_io;
    // Deferred compare: fused compare-branches park their operands in
    // locals instead of writing state_.flags inside the hot loop; any
    // trace exit (every path goes through flush) or unfused flag
    // reader materializes the architectural flags first, so exits are
    // bit-identical to the per-instruction tiers.
    uint64_t flag_a = 0, flag_b = 0;
    bool flags_deferred = false;

    auto flush = [&]() {
        if (flags_deferred) {
            set_cmp_flags(flag_a, flag_b);
        }
        cycles_ = cycles;
        instructions_ += done;
        *executed_io += done;
    };
    auto do_fault = [&](FaultKind kind, uint64_t addr, uint64_t rip) {
        state_.rip = rip;
        exit->kind = ExitKind::kFault;
        exit->fault = kind;
        exit->fault_addr = addr;
        exit->rip = rip;
    };
    auto ea = [&regs](const Uop &op) -> uint64_t {
        switch (op.ea) {
          case kEaBaseDisp:
            return regs[op.base] + static_cast<uint64_t>(op.disp);
          case kEaSib:
            return regs[op.base] + (regs[op.index] << op.scale) +
                   static_cast<uint64_t>(op.disp);
          default:
            return static_cast<uint64_t>(op.disp);
        }
    };
    const Uop *__restrict op;
    int32_t i = 0;
#if OCC_SB_CGOTO
    // One label per UopKind, in enum order (count asserted below;
    // every op body is reached by the full test battery, so an
    // ordering slip cannot survive a test run).
    static const void *const kLabels[] = {
        &&lbl_Dead, &&lbl_Charge,
        &&lbl_MovRI, &&lbl_MovRR,
        &&lbl_AddRI, &&lbl_AddRR, &&lbl_SubRI, &&lbl_SubRR,
        &&lbl_MulRI, &&lbl_MulRR, &&lbl_DivRR, &&lbl_ModRR,
        &&lbl_AndRI, &&lbl_AndRR, &&lbl_OrRI, &&lbl_OrRR,
        &&lbl_XorRI, &&lbl_XorRR,
        &&lbl_ShlRI, &&lbl_ShrRI, &&lbl_SarRI,
        &&lbl_ShlRR, &&lbl_ShrRR, &&lbl_SarRR,
        &&lbl_Neg, &&lbl_Not,
        &&lbl_CmpRI, &&lbl_CmpRR, &&lbl_TestRR,
        &&lbl_Lea, &&lbl_Rdcycle,
        &&lbl_Load, &&lbl_Store, &&lbl_Push, &&lbl_PushImm, &&lbl_Pop,
        &&lbl_BndChkMem, &&lbl_BndChkReg,
        &&lbl_Goto, &&lbl_JccGoto, &&lbl_JccExit,
        &&lbl_CmpRIJccGoto, &&lbl_CmpRRJccGoto,
        &&lbl_CmpRIJccExit, &&lbl_CmpRRJccExit,
        &&lbl_Call, &&lbl_CallExit, &&lbl_CallRegExit, &&lbl_CallMemExit,
        &&lbl_JmpRegGuard, &&lbl_RetGuard, &&lbl_RetExit,
        &&lbl_JmpRegExit, &&lbl_JmpMemExit, &&lbl_ExitTo,
        &&lbl_Ltrap, &&lbl_Priv,
        &&lbl_AluPack, &&lbl_AluPackBr,
        &&lbl_LoadChk, &&lbl_StoreChk, &&lbl_LoadAlu,
        // Width-constant memory bodies, past the UopKind-indexed
        // range. promote_superblock rebinds a memory uop's handler to
        // the variant matching its install-time width; the shared
        // generic bodies above stay for the switch fallback. Order:
        // group-major (Load, Store, LoadChk, StoreChk, LoadAlu),
        // width 8/4/1.
        &&lbl_Load8, &&lbl_Load4, &&lbl_Load1,
        &&lbl_Store8, &&lbl_Store4, &&lbl_Store1,
        &&lbl_LoadChk8, &&lbl_LoadChk4, &&lbl_LoadChk1,
        &&lbl_StoreChk8, &&lbl_StoreChk4, &&lbl_StoreChk1,
        &&lbl_LoadAlu8, &&lbl_LoadAlu4, &&lbl_LoadAlu1,
    };
    static_assert(sizeof(kLabels) / sizeof(kLabels[0]) ==
                      kNumUopKinds + 15,
                  "dispatch table must cover every UopKind plus the "
                  "width-specialized memory slots");
    SB_ALU_TABLE(0);
    SB_ALU_TABLE(1);
    SB_ALU_TABLE(2);
    SB_ALU_TABLE(3);
    SB_ALU_TABLE(4);
    SB_ALU_TABLE(5);
    SB_ALU_TABLE(6); // kLoadAlu's appended mini-op
    (void)n;
    if (exit == nullptr) {
        g_sb_label_table = kLabels; // probe from promote_superblock
        return SbResult::kLeft;
    }
    SB_DISPATCH();
#else
    if (exit == nullptr) {
        return SbResult::kLeft; // probe: the switch dispatches on kind
    }
  resume_loop:
    while (i < n) {
        op = uops + i;
        if (budget - done < op->n_instrs) {
            goto budget_stop;
        }
        switch (op->kind) {
#endif

    SB_OP(Charge):
        cycles += op->cost;
        done += op->n_instrs;
        ++i;
        SB_NEXT();

    SB_OP(MovRI):
        cycles += op->cost;
        ++done;
        regs[op->reg1] = static_cast<uint64_t>(op->imm);
        ++i;
        SB_NEXT();
    SB_OP(MovRR):
        cycles += op->cost;
        ++done;
        regs[op->reg1] = regs[op->reg2];
        ++i;
        SB_NEXT();

    SB_OP(AddRI):
        cycles += op->cost;
        ++done;
        regs[op->reg1] += static_cast<uint64_t>(op->imm);
        ++i;
        SB_NEXT();
    SB_OP(AddRR):
        cycles += op->cost;
        ++done;
        regs[op->reg1] += regs[op->reg2];
        ++i;
        SB_NEXT();
    SB_OP(SubRI):
        cycles += op->cost;
        ++done;
        regs[op->reg1] -= static_cast<uint64_t>(op->imm);
        ++i;
        SB_NEXT();
    SB_OP(SubRR):
        cycles += op->cost;
        ++done;
        regs[op->reg1] -= regs[op->reg2];
        ++i;
        SB_NEXT();
    SB_OP(MulRI):
        cycles += op->cost;
        ++done;
        regs[op->reg1] *= static_cast<uint64_t>(op->imm);
        ++i;
        SB_NEXT();
    SB_OP(MulRR):
        cycles += op->cost;
        ++done;
        regs[op->reg1] *= regs[op->reg2];
        ++i;
        SB_NEXT();
    SB_OP(DivRR):
    SB_OP(ModRR): {
        cycles += op->cost;
        ++done;
        int64_t divisor = static_cast<int64_t>(regs[op->reg2]);
        if (divisor == 0) {
            do_fault(FaultKind::kDivide, op->address, op->address);
            flush();
            return SbResult::kExit;
        }
        int64_t dividend = static_cast<int64_t>(regs[op->reg1]);
        if (dividend == INT64_MIN && divisor == -1) {
            regs[op->reg1] = op->kind == UopKind::kDivRR
                                 ? static_cast<uint64_t>(INT64_MIN) : 0;
        } else if (op->kind == UopKind::kDivRR) {
            regs[op->reg1] = static_cast<uint64_t>(dividend / divisor);
        } else {
            regs[op->reg1] = static_cast<uint64_t>(dividend % divisor);
        }
        ++i;
        SB_NEXT();
    }
    SB_OP(AndRI):
        cycles += op->cost;
        ++done;
        regs[op->reg1] &= static_cast<uint64_t>(op->imm);
        ++i;
        SB_NEXT();
    SB_OP(AndRR):
        cycles += op->cost;
        ++done;
        regs[op->reg1] &= regs[op->reg2];
        ++i;
        SB_NEXT();
    SB_OP(OrRI):
        cycles += op->cost;
        ++done;
        regs[op->reg1] |= static_cast<uint64_t>(op->imm);
        ++i;
        SB_NEXT();
    SB_OP(OrRR):
        cycles += op->cost;
        ++done;
        regs[op->reg1] |= regs[op->reg2];
        ++i;
        SB_NEXT();
    SB_OP(XorRI):
        cycles += op->cost;
        ++done;
        regs[op->reg1] ^= static_cast<uint64_t>(op->imm);
        ++i;
        SB_NEXT();
    SB_OP(XorRR):
        cycles += op->cost;
        ++done;
        regs[op->reg1] ^= regs[op->reg2];
        ++i;
        SB_NEXT();
    SB_OP(ShlRI):
        cycles += op->cost;
        ++done;
        regs[op->reg1] <<= (op->imm & 63);
        ++i;
        SB_NEXT();
    SB_OP(ShrRI):
        cycles += op->cost;
        ++done;
        regs[op->reg1] >>= (op->imm & 63);
        ++i;
        SB_NEXT();
    SB_OP(SarRI):
        cycles += op->cost;
        ++done;
        regs[op->reg1] = static_cast<uint64_t>(
            static_cast<int64_t>(regs[op->reg1]) >> (op->imm & 63));
        ++i;
        SB_NEXT();
    SB_OP(ShlRR):
        cycles += op->cost;
        ++done;
        regs[op->reg1] <<= (regs[op->reg2] & 63);
        ++i;
        SB_NEXT();
    SB_OP(ShrRR):
        cycles += op->cost;
        ++done;
        regs[op->reg1] >>= (regs[op->reg2] & 63);
        ++i;
        SB_NEXT();
    SB_OP(SarRR):
        cycles += op->cost;
        ++done;
        regs[op->reg1] = static_cast<uint64_t>(
            static_cast<int64_t>(regs[op->reg1]) >>
            (regs[op->reg2] & 63));
        ++i;
        SB_NEXT();
    SB_OP(Neg):
        cycles += op->cost;
        ++done;
        regs[op->reg1] = 0 - regs[op->reg1];
        ++i;
        SB_NEXT();
    SB_OP(Not):
        cycles += op->cost;
        ++done;
        regs[op->reg1] = ~regs[op->reg1];
        ++i;
        SB_NEXT();

    SB_OP(CmpRI):
        cycles += op->cost;
        ++done;
        set_cmp_flags(regs[op->reg1], static_cast<uint64_t>(op->imm));
        flags_deferred = false;
        ++i;
        SB_NEXT();
    SB_OP(CmpRR):
        cycles += op->cost;
        ++done;
        set_cmp_flags(regs[op->reg1], regs[op->reg2]);
        flags_deferred = false;
        ++i;
        SB_NEXT();
    SB_OP(TestRR): {
        cycles += op->cost;
        ++done;
        flags_deferred = false;
        uint64_t r = regs[op->reg1] & regs[op->reg2];
        state_.flags.zf = (r == 0);
        state_.flags.sf = (static_cast<int64_t>(r) < 0);
        state_.flags.cf = false;
        state_.flags.of = false;
        ++i;
        SB_NEXT();
    }

    SB_OP(Lea):
        cycles += op->cost;
        ++done;
        regs[op->reg1] = ea(*op);
        ++i;
        SB_NEXT();
    SB_OP(Rdcycle):
        cycles += op->cost;
        ++done;
        regs[op->reg1] = cycles; // after charging, like execute()
        ++i;
        SB_NEXT();

    SB_OP(Load): {
        cycles += op->cost;
        ++done;
        uint64_t addr = ea(*op);
        uint64_t value = 0;
        AccessFault f =
            op->size == 8 ? mem.read_fast<8>(addr, &value)
          : op->size == 4 ? mem.read_fast<4>(addr, &value)
                          : mem.read_fast<1>(addr, &value);
        if (f != AccessFault::kNone) {
            do_fault(sb_fault_kind(f), addr, op->address);
            flush();
            return SbResult::kExit;
        }
        regs[op->reg1] = value;
        ++i;
        SB_NEXT();
    }
    SB_OP(Store): {
        cycles += op->cost;
        ++done;
        uint64_t addr = ea(*op);
        uint64_t value = regs[op->reg1];
        AccessFault f =
            op->size == 8 ? mem.write_fast<8>(addr, &value)
          : op->size == 4 ? mem.write_fast<4>(addr, &value)
                          : mem.write_fast<1>(addr, &value);
        if (f != AccessFault::kNone) {
            do_fault(sb_fault_kind(f), addr, op->address);
            flush();
            return SbResult::kExit;
        }
        // Self-modifying code: a store into an executable page
        // advanced the generation — the rest of this trace may be
        // stale. Demote to tier 1 at the next instruction.
        if (mem.code_generation() != sb.generation) {
            state_.rip = op->next_rip;
            flush();
            return SbResult::kLeft;
        }
        ++i;
        SB_NEXT();
    }

    // Bound check(s) folded into the access: one EA, one dispatch.
    // Charge tiers mirror the unfused sequence exactly — a lo fail
    // charges only the head check, a hi fail the whole check portion,
    // an access fault the full group (the access itself charged, as
    // in the plain kLoad/kStore bodies).
    SB_OP(LoadChk): {
        uint64_t addr = ea(*op);
        const BoundReg &bc = state_.bnds[op->bnd];
        if ((op->mask & 1) && addr < bc.lo) {
            cycles += op->cost_head;
            ++done;
            do_fault(FaultKind::kBoundRange, addr, op->address);
            flush();
            return SbResult::kExit;
        }
        if ((op->mask & 2) && addr > bc.hi) {
            cycles += static_cast<uint32_t>(op->target);
            done += static_cast<uint8_t>(op->n_instrs - 1);
            do_fault(FaultKind::kBoundRange, addr, op->address2);
            flush();
            return SbResult::kExit;
        }
        cycles += op->cost;
        done += op->n_instrs;
        uint64_t value = 0;
        AccessFault f =
            op->size == 8 ? mem.read_fast<8>(addr, &value)
          : op->size == 4 ? mem.read_fast<4>(addr, &value)
                          : mem.read_fast<1>(addr, &value);
        if (f != AccessFault::kNone) {
            do_fault(sb_fault_kind(f), addr, op->exit_rip);
            flush();
            return SbResult::kExit;
        }
        regs[op->reg1] = value;
        ++i;
        SB_NEXT();
    }
    SB_OP(StoreChk): {
        uint64_t addr = ea(*op);
        const BoundReg &bc = state_.bnds[op->bnd];
        if ((op->mask & 1) && addr < bc.lo) {
            cycles += op->cost_head;
            ++done;
            do_fault(FaultKind::kBoundRange, addr, op->address);
            flush();
            return SbResult::kExit;
        }
        if ((op->mask & 2) && addr > bc.hi) {
            cycles += static_cast<uint32_t>(op->target);
            done += static_cast<uint8_t>(op->n_instrs - 1);
            do_fault(FaultKind::kBoundRange, addr, op->address2);
            flush();
            return SbResult::kExit;
        }
        cycles += op->cost;
        done += op->n_instrs;
        uint64_t value = regs[op->reg1];
        AccessFault f =
            op->size == 8 ? mem.write_fast<8>(addr, &value)
          : op->size == 4 ? mem.write_fast<4>(addr, &value)
                          : mem.write_fast<1>(addr, &value);
        if (f != AccessFault::kNone) {
            do_fault(sb_fault_kind(f), addr, op->exit_rip);
            flush();
            return SbResult::kExit;
        }
        if (mem.code_generation() != sb.generation) {
            state_.rip = op->next_rip;
            flush();
            return SbResult::kLeft;
        }
        ++i;
        SB_NEXT();
    }

#if OCC_SB_CGOTO
    /*
     * Width-constant clones of the four memory bodies above (reached
     * only through the extension slots of kLabels — the kind-indexed
     * dispatch never lands here). The generic bodies pick the access
     * width with data-dependent branches; since one shared body serves
     * every trace, those branches mispredict whenever the workload
     * mixes widths, and memory uops are the bulk of hot-loop
     * dispatches. Everything except the width is identical, including
     * fault points and the tiered cycle charges.
     */
#define SB_LOAD_W(SZ)                                                   \
    lbl_Load##SZ: {                                                     \
        cycles += op->cost;                                             \
        ++done;                                                         \
        uint64_t addr = ea(*op);                                        \
        uint64_t value = 0;                                             \
        AccessFault f = mem.read_fast<SZ>(addr, &value);                \
        if (f != AccessFault::kNone) {                                  \
            do_fault(sb_fault_kind(f), addr, op->address);              \
            flush();                                                    \
            return SbResult::kExit;                                     \
        }                                                               \
        regs[op->reg1] = value;                                         \
        ++i;                                                            \
        SB_NEXT();                                                      \
    }
    SB_LOAD_W(8)
    SB_LOAD_W(4)
    SB_LOAD_W(1)
#undef SB_LOAD_W

#define SB_STORE_W(SZ)                                                  \
    lbl_Store##SZ: {                                                    \
        cycles += op->cost;                                             \
        ++done;                                                         \
        uint64_t addr = ea(*op);                                        \
        uint64_t value = regs[op->reg1];                                \
        AccessFault f = mem.write_fast<SZ>(addr, &value);               \
        if (f != AccessFault::kNone) {                                  \
            do_fault(sb_fault_kind(f), addr, op->address);              \
            flush();                                                    \
            return SbResult::kExit;                                     \
        }                                                               \
        if (mem.code_generation() != sb.generation) {                   \
            state_.rip = op->next_rip;                                  \
            flush();                                                    \
            return SbResult::kLeft;                                     \
        }                                                               \
        ++i;                                                            \
        SB_NEXT();                                                      \
    }
    SB_STORE_W(8)
    SB_STORE_W(4)
    SB_STORE_W(1)
#undef SB_STORE_W

#define SB_LOADCHK_W(SZ)                                                \
    lbl_LoadChk##SZ: {                                                  \
        uint64_t addr = ea(*op);                                        \
        const BoundReg &bc = state_.bnds[op->bnd];                      \
        if ((op->mask & 1) && addr < bc.lo) {                           \
            cycles += op->cost_head;                                    \
            ++done;                                                     \
            do_fault(FaultKind::kBoundRange, addr, op->address);        \
            flush();                                                    \
            return SbResult::kExit;                                     \
        }                                                               \
        if ((op->mask & 2) && addr > bc.hi) {                           \
            cycles += static_cast<uint32_t>(op->target);                \
            done += static_cast<uint8_t>(op->n_instrs - 1);             \
            do_fault(FaultKind::kBoundRange, addr, op->address2);       \
            flush();                                                    \
            return SbResult::kExit;                                     \
        }                                                               \
        cycles += op->cost;                                             \
        done += op->n_instrs;                                           \
        uint64_t value = 0;                                             \
        AccessFault f = mem.read_fast<SZ>(addr, &value);                \
        if (f != AccessFault::kNone) {                                  \
            do_fault(sb_fault_kind(f), addr, op->exit_rip);             \
            flush();                                                    \
            return SbResult::kExit;                                     \
        }                                                               \
        regs[op->reg1] = value;                                         \
        ++i;                                                            \
        SB_NEXT();                                                      \
    }
    SB_LOADCHK_W(8)
    SB_LOADCHK_W(4)
    SB_LOADCHK_W(1)
#undef SB_LOADCHK_W

#define SB_STORECHK_W(SZ)                                               \
    lbl_StoreChk##SZ: {                                                 \
        uint64_t addr = ea(*op);                                        \
        const BoundReg &bc = state_.bnds[op->bnd];                      \
        if ((op->mask & 1) && addr < bc.lo) {                           \
            cycles += op->cost_head;                                    \
            ++done;                                                     \
            do_fault(FaultKind::kBoundRange, addr, op->address);        \
            flush();                                                    \
            return SbResult::kExit;                                     \
        }                                                               \
        if ((op->mask & 2) && addr > bc.hi) {                           \
            cycles += static_cast<uint32_t>(op->target);                \
            done += static_cast<uint8_t>(op->n_instrs - 1);             \
            do_fault(FaultKind::kBoundRange, addr, op->address2);       \
            flush();                                                    \
            return SbResult::kExit;                                     \
        }                                                               \
        cycles += op->cost;                                             \
        done += op->n_instrs;                                           \
        uint64_t value = regs[op->reg1];                                \
        AccessFault f = mem.write_fast<SZ>(addr, &value);               \
        if (f != AccessFault::kNone) {                                  \
            do_fault(sb_fault_kind(f), addr, op->exit_rip);             \
            flush();                                                    \
            return SbResult::kExit;                                     \
        }                                                               \
        if (mem.code_generation() != sb.generation) {                   \
            state_.rip = op->next_rip;                                  \
            flush();                                                    \
            return SbResult::kLeft;                                     \
        }                                                               \
        ++i;                                                            \
        SB_NEXT();                                                      \
    }
    SB_STORECHK_W(8)
    SB_STORECHK_W(4)
    SB_STORECHK_W(1)
#undef SB_STORECHK_W
#endif // OCC_SB_CGOTO

    // A load with one ALU mini-op appended (see the Uop doc). Only
    // the load can fault, and it is the first component, so a fault
    // charges the load alone (cost_head) at the load's rip.
    SB_OP(LoadAlu): {
        uint64_t addr = ea(*op);
        uint64_t value = 0;
        AccessFault f =
            op->size == 8 ? mem.read_fast<8>(addr, &value)
          : op->size == 4 ? mem.read_fast<4>(addr, &value)
                          : mem.read_fast<1>(addr, &value);
        if (f != AccessFault::kNone) {
            cycles += op->cost_head;
            ++done;
            do_fault(sb_fault_kind(f), addr, op->address);
            flush();
            return SbResult::kExit;
        }
        regs[op->reg1] = value;
        cycles += op->cost;
        done += op->n_instrs;
#if OCC_SB_CGOTO
        goto *kAlu6[op->bnd];
        SB_ALU_BODIES(6, op->mask, op->reg2, op->imm,
                      do {
                          ++i;
                          SB_DISPATCH();
                      } while (0));
#else
        exec_alu(regs, op->bnd, op->mask, op->reg2, op->imm);
        ++i;
        SB_NEXT();
#endif
    }

#if OCC_SB_CGOTO
#define SB_LOADALU_W(SZ)                                                \
    lbl_LoadAlu##SZ: {                                                  \
        uint64_t addr = ea(*op);                                        \
        uint64_t value = 0;                                             \
        AccessFault f = mem.read_fast<SZ>(addr, &value);                \
        if (f != AccessFault::kNone) {                                  \
            cycles += op->cost_head;                                    \
            ++done;                                                     \
            do_fault(sb_fault_kind(f), addr, op->address);              \
            flush();                                                    \
            return SbResult::kExit;                                     \
        }                                                               \
        regs[op->reg1] = value;                                         \
        cycles += op->cost;                                             \
        done += op->n_instrs;                                           \
        goto *kAlu6[op->bnd];                                           \
    }
    SB_LOADALU_W(8)
    SB_LOADALU_W(4)
    SB_LOADALU_W(1)
#undef SB_LOADALU_W
#endif // OCC_SB_CGOTO

    SB_OP(Push):
    SB_OP(PushImm): {
        cycles += op->cost;
        ++done;
        uint64_t value = op->kind == UopKind::kPush
                             ? regs[op->reg1]
                             : static_cast<uint64_t>(op->imm);
        uint64_t new_sp = regs[isa::kSp] - 8;
        AccessFault f = mem.write_fast<8>(new_sp, &value);
        if (f != AccessFault::kNone) {
            do_fault(sb_fault_kind(f), new_sp, op->address);
            flush();
            return SbResult::kExit;
        }
        regs[isa::kSp] = new_sp;
        if (mem.code_generation() != sb.generation) {
            state_.rip = op->next_rip;
            flush();
            return SbResult::kLeft;
        }
        ++i;
        SB_NEXT();
    }
    SB_OP(Pop): {
        cycles += op->cost;
        ++done;
        uint64_t value = 0;
        AccessFault f = mem.read_fast<8>(regs[isa::kSp], &value);
        if (f != AccessFault::kNone) {
            do_fault(sb_fault_kind(f), regs[isa::kSp], op->address);
            flush();
            return SbResult::kExit;
        }
        regs[isa::kSp] += 8;
        regs[op->reg1] = value;
        ++i;
        SB_NEXT();
    }

    SB_OP(BndChkMem):
    SB_OP(BndChkReg): {
        uint64_t value = op->kind == UopKind::kBndChkMem
                             ? ea(*op) : regs[op->reg1];
        const BoundReg &b = state_.bnds[op->bnd];
        if ((op->mask & 1) && value < b.lo) {
            // First component of a fused pair: charge only the
            // head — the upper check never executed.
            cycles += op->mask == 3 ? op->cost_head : op->cost;
            ++done;
            do_fault(FaultKind::kBoundRange, value, op->address);
            flush();
            return SbResult::kExit;
        }
        if ((op->mask & 2) && value > b.hi) {
            cycles += op->cost;
            done += op->n_instrs;
            do_fault(FaultKind::kBoundRange, value, op->address2);
            flush();
            return SbResult::kExit;
        }
        cycles += op->cost;
        done += op->n_instrs;
        ++i;
        SB_NEXT();
    }

    SB_OP(Goto):
        cycles += op->cost;
        done += op->n_instrs;
        i = op->target;
        SB_NEXT();
    SB_OP(JccGoto):
        cycles += op->cost;
        ++done;
        if (flags_deferred) {
            set_cmp_flags(flag_a, flag_b);
            flags_deferred = false;
        }
        if (eval_cond(op->cond)) {
            i = op->target;
            SB_NEXT();
        }
        ++i;
        SB_NEXT();
    SB_OP(JccExit):
        cycles += op->cost;
        ++done;
        if (flags_deferred) {
            set_cmp_flags(flag_a, flag_b);
            flags_deferred = false;
        }
        if (eval_cond(op->cond)) {
            state_.rip = op->exit_rip;
            goto link_or_leave;
        }
        ++i;
        SB_NEXT();
    // Fused compare-branches decide the branch with cond_holds() on
    // the operands and only park the compared pair; the architectural
    // flags materialize lazily at the next unfused reader or at any
    // trace exit (flush), keeping four dead byte-stores per loop
    // iteration off the hot path.
    // The taken/not-taken split is a real branch, not a select: `i`
    // then comes from op->target (a constant per uop) instead of a
    // data-dependent cmov, which keeps the compared register's
    // store-to-load chain out of the next dispatch's address.
    SB_OP(CmpRIJccGoto): {
        cycles += op->cost;
        done += op->n_instrs;
        uint64_t a = regs[op->reg1], b = static_cast<uint64_t>(op->imm);
        flag_a = a;
        flag_b = b;
        flags_deferred = true;
        if (cond_holds(op->cond, a, b)) {
            i = op->target;
            SB_NEXT();
        }
        ++i;
        SB_NEXT();
    }
    SB_OP(CmpRRJccGoto): {
        cycles += op->cost;
        done += op->n_instrs;
        uint64_t a = regs[op->reg1], b = regs[op->reg2];
        flag_a = a;
        flag_b = b;
        flags_deferred = true;
        if (cond_holds(op->cond, a, b)) {
            i = op->target;
            SB_NEXT();
        }
        ++i;
        SB_NEXT();
    }
    SB_OP(CmpRIJccExit): {
        cycles += op->cost;
        done += op->n_instrs;
        uint64_t a = regs[op->reg1], b = static_cast<uint64_t>(op->imm);
        flag_a = a;
        flag_b = b;
        flags_deferred = true;
        if (cond_holds(op->cond, a, b)) {
            goto fused_exit;
        }
        ++i;
        SB_NEXT();
    }
    SB_OP(CmpRRJccExit): {
        cycles += op->cost;
        done += op->n_instrs;
        uint64_t a = regs[op->reg1], b = regs[op->reg2];
        flag_a = a;
        flag_b = b;
        flags_deferred = true;
        if (cond_holds(op->cond, a, b)) {
            goto fused_exit;
        }
        ++i;
        SB_NEXT();
    }
    fused_exit:
        state_.rip = op->exit_rip;
        goto link_or_leave;

    SB_OP(Call):
    SB_OP(CallExit): {
        cycles += op->cost;
        ++done;
        uint64_t value = static_cast<uint64_t>(op->imm);
        uint64_t new_sp = regs[isa::kSp] - 8;
        AccessFault f = mem.write_fast<8>(new_sp, &value);
        if (f != AccessFault::kNone) {
            do_fault(sb_fault_kind(f), new_sp, op->address);
            flush();
            return SbResult::kExit;
        }
        regs[isa::kSp] = new_sp;
        if (op->kind == UopKind::kCallExit) {
            // Linking re-validates the generation, so a push that
            // landed in an executable page cannot chain into a trace
            // that just went stale.
            state_.rip = op->exit_rip;
            goto link_or_leave;
        }
        if (mem.code_generation() != sb.generation) {
            state_.rip = op->next_rip;
            flush();
            return SbResult::kLeft;
        }
        ++i;
        SB_NEXT();
    }
    SB_OP(CallRegExit):
    SB_OP(CallMemExit): {
        cycles += op->cost;
        ++done;
        uint64_t target;
        if (op->kind == UopKind::kCallRegExit) {
            target = regs[op->reg1];
        } else {
            uint64_t addr = ea(*op);
            AccessFault f = mem.read_fast<8>(addr, &target);
            if (f != AccessFault::kNone) {
                do_fault(sb_fault_kind(f), addr, op->address);
                flush();
                return SbResult::kExit;
            }
        }
        uint64_t value = static_cast<uint64_t>(op->imm);
        uint64_t new_sp = regs[isa::kSp] - 8;
        AccessFault f = mem.write_fast<8>(new_sp, &value);
        if (f != AccessFault::kNone) {
            do_fault(sb_fault_kind(f), new_sp, op->address);
            flush();
            return SbResult::kExit;
        }
        regs[isa::kSp] = new_sp;
        state_.rip = target;
        goto link_or_leave;
    }
    SB_OP(RetGuard):
    SB_OP(RetExit): {
        cycles += op->cost;
        ++done;
        uint64_t target;
        AccessFault f = mem.read_fast<8>(regs[isa::kSp], &target);
        if (f != AccessFault::kNone) {
            do_fault(sb_fault_kind(f), regs[isa::kSp], op->address);
            flush();
            return SbResult::kExit;
        }
        regs[isa::kSp] += 8 + static_cast<uint64_t>(op->imm);
        if (op->kind == UopKind::kRetGuard && target == op->exit_rip) {
            ++i; // predicted return: keep running the trace
            SB_NEXT();
        }
        state_.rip = target;
        goto link_or_leave;
    }
    SB_OP(JmpRegGuard):
        cycles += op->cost;
        ++done;
        if (regs[op->reg1] == op->exit_rip) {
            ++i; // predicted (MMDSFI return rewrite)
            SB_NEXT();
        }
        state_.rip = regs[op->reg1];
        goto link_or_leave;
    SB_OP(JmpRegExit):
        cycles += op->cost;
        ++done;
        state_.rip = regs[op->reg1];
        goto link_or_leave;
    SB_OP(JmpMemExit): {
        cycles += op->cost;
        ++done;
        uint64_t addr = ea(*op);
        uint64_t target;
        AccessFault f = mem.read_fast<8>(addr, &target);
        if (f != AccessFault::kNone) {
            do_fault(sb_fault_kind(f), addr, op->address);
            flush();
            return SbResult::kExit;
        }
        state_.rip = target;
        goto link_or_leave;
    }
    SB_OP(ExitTo):
        state_.rip = op->exit_rip;
        goto link_or_leave;

    SB_OP(Ltrap):
        cycles += op->cost;
        ++done;
        state_.rip = op->next_rip; // resume past the trap
        exit->kind = ExitKind::kLtrap;
        exit->fault = FaultKind::kNone;
        exit->rip = op->address;
        flush();
        return SbResult::kExit;
    SB_OP(Priv):
        cycles += op->cost;
        ++done;
        state_.rip = op->address;
        exit->kind = ExitKind::kPrivileged;
        exit->fault = FaultKind::kNone;
        exit->priv_op = static_cast<Opcode>(op->imm);
        exit->rip = op->address;
        flush();
        return SbResult::kExit;

    SB_OP(AluPack):
        cycles += op->cost;
        done += op->n_instrs;
#if OCC_SB_CGOTO
        goto *kAlu0[op->bnd];
        SB_ALU_BODIES(0, op->reg1, op->reg2, op->imm,
                      goto *kAlu1[op->mask]);
        SB_ALU_BODIES(1, op->base, op->index, op->disp,
                      do {
                          if (op->n_instrs != 3) {
                              ++i;
                              SB_DISPATCH();
                          }
                          goto *kAlu2[op->scale];
                      } while (0));
        SB_ALU_BODIES(2, op->ea, op->size,
                      static_cast<int64_t>(op->exit_rip),
                      do {
                          ++i;
                          SB_DISPATCH();
                      } while (0));
#else
        exec_alu(regs, op->bnd, op->reg1, op->reg2, op->imm);
        exec_alu(regs, op->mask, op->base, op->index, op->disp);
        if (op->n_instrs == 3) {
            exec_alu(regs, op->scale, op->ea, op->size,
                     static_cast<int64_t>(op->exit_rip));
        }
        ++i;
        SB_NEXT();
#endif

    // A pack with a merged compare + intra-trace branch: a tight loop
    // body in one uop, one dispatch per iteration. n_instrs counts the
    // compare+branch pair, so a 3-slot pack has n_instrs == 5.
    SB_OP(AluPackBr):
        cycles += op->cost;
        done += op->n_instrs;
#if OCC_SB_CGOTO
        goto *kAlu3[op->bnd];
        SB_ALU_BODIES(3, op->reg1, op->reg2, op->imm,
                      goto *kAlu4[op->mask]);
        SB_ALU_BODIES(4, op->base, op->index, op->disp,
                      do {
                          if (op->n_instrs != 5) {
                              goto alupack_cmpbr;
                          }
                          goto *kAlu5[op->scale];
                      } while (0));
        SB_ALU_BODIES(5, op->ea, op->size,
                      static_cast<int64_t>(op->exit_rip),
                      goto alupack_cmpbr);
    alupack_cmpbr: {
        uint64_t a = regs[op->cost_head & 0xff];
        uint64_t b = (op->cost_head & 0x10000u)
                         ? regs[(op->cost_head >> 8) & 0xff]
                         : op->address2;
        flag_a = a;
        flag_b = b;
        flags_deferred = true;
        if (cond_holds(op->cond, a, b)) {
            i = op->target; // real branch: see the JccGoto comment
            SB_NEXT();
        }
        ++i;
        SB_NEXT();
    }
#else
        exec_alu(regs, op->bnd, op->reg1, op->reg2, op->imm);
        exec_alu(regs, op->mask, op->base, op->index, op->disp);
        if (op->n_instrs == 5) {
            exec_alu(regs, op->scale, op->ea, op->size,
                     static_cast<int64_t>(op->exit_rip));
        }
        {
            uint64_t a = regs[op->cost_head & 0xff];
            uint64_t b = (op->cost_head & 0x10000u)
                             ? regs[(op->cost_head >> 8) & 0xff]
                             : op->address2;
            flag_a = a;
            flag_b = b;
            flags_deferred = true;
            i = cond_holds(op->cond, a, b) ? op->target : i + 1;
        }
        SB_NEXT();
#endif

    SB_OP(Dead):
        OCC_PANIC("dead uop reached execution");

#if !OCC_SB_CGOTO
        }
    }
    // Fell off the stitched end (defensive - traces end in terminals).
    state_.rip = uops[n - 1].next_rip;
    flush();
    return SbResult::kLeft;
#endif

  link_or_leave:
    // Trace linking: a guard or branch exit whose continuation rip is
    // itself a promoted trace entry chains straight into that trace's
    // uops instead of bouncing through run_blocks (block lookup, tier
    // dispatch, re-entry) — call-heavy guests spend most exits on
    // exactly such trace-to-trace edges. The generation is checked
    // against the address space (not the departing trace) so a store
    // that just invalidated code can never chain into a stale trace,
    // and the counter-flush/budget semantics are unchanged: counters
    // stay in locals, and the budget check at the first dispatched uop
    // refuses entry exactly like run_blocks' first_n_instrs guard
    // (state_.rip already names the entry).
    {
        auto linked = superblocks_.find(state_.rip);
        if (linked != superblocks_.end() &&
            linked->second.generation == mem.code_generation()) {
            uops = linked->second.uops.data();
            n = static_cast<int32_t>(linked->second.uops.size());
            ++sb_exec_hits_;
            i = 0;
#if OCC_SB_CGOTO
            SB_DISPATCH();
#else
            goto resume_loop;
#endif
        }
    }
    flush();
    return SbResult::kLeft;

  budget_stop:
    // Budget lands inside this uop: leave with rip at its first
    // instruction; tier 1 finishes the tail one instruction at a
    // time, so quantum slicing (AEX) sees exactly the same boundaries
    // as the other tiers.
    state_.rip = op->address;
    flush();
    return SbResult::kLeft;
}

} // namespace occlum::vm
