#include "vm/address_space.h"

#include <cstring>

namespace occlum::vm {

Status
AddressSpace::map(uint64_t addr, uint64_t len, uint8_t perms)
{
    if ((addr & kPageMask) || (len & kPageMask) || len == 0) {
        return Status(ErrorCode::kInval, "map: unaligned range");
    }
    for (uint64_t a = addr; a < addr + len; a += kPageSize) {
        if (pages_.count(a / kPageSize)) {
            return Status(ErrorCode::kExist, "map: page already mapped");
        }
    }
    for (uint64_t a = addr; a < addr + len; a += kPageSize) {
        Page page;
        page.data = std::make_unique<uint8_t[]>(kPageSize);
        std::memset(page.data.get(), 0, kPageSize);
        page.perms = perms;
        pages_.emplace(a / kPageSize, std::move(page));
    }
    return Status();
}

void
AddressSpace::unmap(uint64_t addr, uint64_t len)
{
    for (uint64_t a = addr & ~kPageMask; a < addr + len; a += kPageSize) {
        pages_.erase(a / kPageSize);
    }
}

Status
AddressSpace::protect(uint64_t addr, uint64_t len, uint8_t perms)
{
    if ((addr & kPageMask) || (len & kPageMask) || len == 0) {
        return Status(ErrorCode::kInval, "protect: unaligned range");
    }
    for (uint64_t a = addr; a < addr + len; a += kPageSize) {
        if (!pages_.count(a / kPageSize)) {
            return Status(ErrorCode::kNoMem, "protect: page not mapped");
        }
    }
    for (uint64_t a = addr; a < addr + len; a += kPageSize) {
        pages_[a / kPageSize].perms = perms;
    }
    return Status();
}

bool
AddressSpace::is_mapped(uint64_t addr, uint64_t len) const
{
    for (uint64_t a = addr & ~kPageMask; a < addr + len; a += kPageSize) {
        if (!pages_.count(a / kPageSize)) {
            return false;
        }
    }
    return true;
}

uint8_t
AddressSpace::perms_at(uint64_t addr) const
{
    const Page *page = find_page(addr);
    return page ? page->perms : static_cast<uint8_t>(kPermNone);
}

const AddressSpace::Page *
AddressSpace::find_page(uint64_t addr) const
{
    auto it = pages_.find(addr / kPageSize);
    return it == pages_.end() ? nullptr : &it->second;
}

AddressSpace::Page *
AddressSpace::find_page(uint64_t addr)
{
    auto it = pages_.find(addr / kPageSize);
    return it == pages_.end() ? nullptr : &it->second;
}

template <bool Write>
AccessFault
AddressSpace::access(uint64_t addr, void *buf, uint64_t len, uint8_t require)
{
    uint8_t *out = static_cast<uint8_t *>(buf);
    uint64_t done = 0;
    while (done < len) {
        uint64_t a = addr + done;
        Page *page = find_page(a);
        if (!page) {
            return AccessFault::kUnmapped;
        }
        if (require && !(page->perms & require)) {
            if (require & kPermW) return AccessFault::kNoWrite;
            if (require & kPermX) return AccessFault::kNoExec;
            return AccessFault::kNoRead;
        }
        uint64_t in_page = kPageSize - (a & kPageMask);
        uint64_t n = std::min(in_page, len - done);
        if constexpr (Write) {
            std::memcpy(page->data.get() + (a & kPageMask), out + done, n);
        } else {
            std::memcpy(out + done, page->data.get() + (a & kPageMask), n);
        }
        done += n;
    }
    return AccessFault::kNone;
}

AccessFault
AddressSpace::read(uint64_t addr, void *out, uint64_t len) const
{
    return const_cast<AddressSpace *>(this)->access<false>(addr, out, len,
                                                           kPermR);
}

AccessFault
AddressSpace::write(uint64_t addr, const void *in, uint64_t len)
{
    return access<true>(addr, const_cast<void *>(in), len, kPermW);
}

AccessFault
AddressSpace::fetch(uint64_t addr, void *out, uint64_t len) const
{
    return const_cast<AddressSpace *>(this)->access<false>(addr, out, len,
                                                           kPermX);
}

AccessFault
AddressSpace::read_raw(uint64_t addr, void *out, uint64_t len) const
{
    return const_cast<AddressSpace *>(this)->access<false>(addr, out, len,
                                                           0);
}

AccessFault
AddressSpace::write_raw(uint64_t addr, const void *in, uint64_t len)
{
    return access<true>(addr, const_cast<void *>(in), len, 0);
}

AccessFault
AddressSpace::zero_raw(uint64_t addr, uint64_t len)
{
    Bytes zeros(std::min<uint64_t>(len, kPageSize), 0);
    uint64_t done = 0;
    while (done < len) {
        uint64_t n = std::min<uint64_t>(zeros.size(), len - done);
        AccessFault fault = write_raw(addr + done, zeros.data(), n);
        if (fault != AccessFault::kNone) {
            return fault;
        }
        done += n;
    }
    return AccessFault::kNone;
}

} // namespace occlum::vm
