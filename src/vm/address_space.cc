#include "vm/address_space.h"

#include <cstring>

namespace occlum::vm {

Status
AddressSpace::map(uint64_t addr, uint64_t len, uint8_t perms)
{
    if ((addr & kPageMask) || (len & kPageMask) || len == 0) {
        return Status(ErrorCode::kInval, "map: unaligned range");
    }
    for (uint64_t a = addr; a < addr + len; a += kPageSize) {
        if (pages_.count(a / kPageSize)) {
            return Status(ErrorCode::kExist, "map: page already mapped");
        }
    }
    pages_.reserve(pages_.size() + len / kPageSize);
    for (uint64_t a = addr; a < addr + len; a += kPageSize) {
        Page page; // backing store stays lazy until the first write
        page.perms = perms;
        pages_.emplace(a / kPageSize, std::move(page));
    }
    if (perms & kPermX) {
        // New executable pages may complete instructions that cached
        // blocks previously saw as truncated at an unmapped boundary.
        touch_code();
    }
    return Status();
}

void
AddressSpace::unmap(uint64_t addr, uint64_t len)
{
    bool had_exec = false;
    for (uint64_t a = addr & ~kPageMask; a < addr + len; a += kPageSize) {
        auto it = pages_.find(a / kPageSize);
        if (it == pages_.end()) {
            continue;
        }
        had_exec = had_exec || (it->second.perms & kPermX);
        pages_.erase(it);
    }
    flush_tlb(); // erased nodes may be cached in the TLB
    if (had_exec) {
        touch_code();
    }
}

Status
AddressSpace::protect(uint64_t addr, uint64_t len, uint8_t perms)
{
    if ((addr & kPageMask) || (len & kPageMask) || len == 0) {
        return Status(ErrorCode::kInval, "protect: unaligned range");
    }
    for (uint64_t a = addr; a < addr + len; a += kPageSize) {
        if (!pages_.count(a / kPageSize)) {
            return Status(ErrorCode::kNoMem, "protect: page not mapped");
        }
    }
    bool touched_exec = false;
    for (uint64_t a = addr; a < addr + len; a += kPageSize) {
        Page &page = pages_[a / kPageSize];
        // Permission changes that add or remove X (the SGX EMODPE /
        // runtime_protect paths) invalidate predecoded blocks: what
        // was fetchable may no longer be, and vice versa.
        touched_exec = touched_exec || ((page.perms | perms) & kPermX);
        page.perms = perms;
    }
    if (touched_exec) {
        touch_code();
    }
    return Status();
}

bool
AddressSpace::is_mapped(uint64_t addr, uint64_t len) const
{
    for (uint64_t a = addr & ~kPageMask; a < addr + len; a += kPageSize) {
        if (!pages_.count(a / kPageSize)) {
            return false;
        }
    }
    return true;
}

uint8_t
AddressSpace::perms_at(uint64_t addr) const
{
    const Page *page = find_page(addr);
    return page ? page->perms : static_cast<uint8_t>(kPermNone);
}

void
AddressSpace::flush_tlb() const
{
    tlb_.fill(TlbEntry{});
}

AddressSpace::Page *
AddressSpace::lookup_page_slow(uint64_t page_no) const
{
    TlbEntry &entry = tlb_[page_no % kTlbEntries];
    auto it = pages_.find(page_no);
    if (it == pages_.end()) {
        return nullptr; // misses are not cached (map() must be seen)
    }
    entry.page_no = page_no;
    entry.page = const_cast<Page *>(&it->second);
    return entry.page;
}

const AddressSpace::Page *
AddressSpace::find_page(uint64_t addr) const
{
    return lookup_page(addr / kPageSize);
}

AddressSpace::Page *
AddressSpace::find_page(uint64_t addr)
{
    return lookup_page(addr / kPageSize);
}

void
AddressSpace::materialize(Page &page)
{
    page.data = std::make_unique<uint8_t[]>(kPageSize);
    std::memset(page.data.get(), 0, kPageSize);
}

template <bool Write>
AccessFault
AddressSpace::access(uint64_t addr, void *buf, uint64_t len, uint8_t require)
{
    // Fast path: the access stays inside one page (nearly every data
    // access the interpreter issues).
    if ((addr & kPageMask) + len <= kPageSize) {
        Page *page = lookup_page(addr / kPageSize);
        if (!page) {
            return AccessFault::kUnmapped;
        }
        if (require && !(page->perms & require)) {
            if (require & kPermW) return AccessFault::kNoWrite;
            if (require & kPermX) return AccessFault::kNoExec;
            return AccessFault::kNoRead;
        }
        if constexpr (Write) {
            if (!page->data) {
                materialize(*page);
            }
            std::memcpy(page->data.get() + (addr & kPageMask), buf, len);
            if (page->perms & kPermX) {
                touch_code();
            }
        } else {
            if (!page->data) {
                std::memset(buf, 0, len); // lazy page: logically zeros
            } else {
                std::memcpy(buf, page->data.get() + (addr & kPageMask),
                            len);
            }
        }
        return AccessFault::kNone;
    }

    uint8_t *out = static_cast<uint8_t *>(buf);
    uint64_t done = 0;
    bool wrote_exec = false;
    // Even a faulting multi-page write has already modified the pages
    // before the fault, so the generation bump must happen on every
    // exit path, not only on success.
    auto finish = [&](AccessFault f) {
        if (Write && wrote_exec) {
            touch_code();
        }
        return f;
    };
    while (done < len) {
        uint64_t a = addr + done;
        Page *page = find_page(a);
        if (!page) {
            return finish(AccessFault::kUnmapped);
        }
        if (require && !(page->perms & require)) {
            if (require & kPermW) return finish(AccessFault::kNoWrite);
            if (require & kPermX) return finish(AccessFault::kNoExec);
            return finish(AccessFault::kNoRead);
        }
        uint64_t in_page = kPageSize - (a & kPageMask);
        uint64_t n = std::min(in_page, len - done);
        if constexpr (Write) {
            if (!page->data) {
                materialize(*page);
            }
            std::memcpy(page->data.get() + (a & kPageMask), out + done, n);
            wrote_exec = wrote_exec || (page->perms & kPermX);
        } else {
            if (!page->data) {
                std::memset(out + done, 0, n);
            } else {
                std::memcpy(out + done,
                            page->data.get() + (a & kPageMask), n);
            }
        }
        done += n;
    }
    // Writes into executable pages (guest stores through an RWX
    // mapping, loader/debugger pokes via write_raw) invalidate
    // predecoded blocks covering those bytes.
    return finish(AccessFault::kNone);
}

AccessFault
AddressSpace::read(uint64_t addr, void *out, uint64_t len) const
{
    return const_cast<AddressSpace *>(this)->access<false>(addr, out, len,
                                                           kPermR);
}

AccessFault
AddressSpace::write(uint64_t addr, const void *in, uint64_t len)
{
    return access<true>(addr, const_cast<void *>(in), len, kPermW);
}

AccessFault
AddressSpace::fetch(uint64_t addr, void *out, uint64_t len) const
{
    return const_cast<AddressSpace *>(this)->access<false>(addr, out, len,
                                                           kPermX);
}

AccessFault
AddressSpace::read_raw(uint64_t addr, void *out, uint64_t len) const
{
    return const_cast<AddressSpace *>(this)->access<false>(addr, out, len,
                                                           0);
}

AccessFault
AddressSpace::write_raw(uint64_t addr, const void *in, uint64_t len)
{
    return access<true>(addr, const_cast<void *>(in), len, 0);
}

AccessFault
AddressSpace::zero_raw(uint64_t addr, uint64_t len)
{
    uint64_t done = 0;
    bool wrote_exec = false;
    while (done < len) {
        uint64_t a = addr + done;
        Page *page = find_page(a);
        if (!page) {
            if (wrote_exec) {
                touch_code();
            }
            return AccessFault::kUnmapped;
        }
        uint64_t in_page = kPageSize - (a & kPageMask);
        uint64_t n = std::min(in_page, len - done);
        if (page->data) {
            // Materialized page: clear just the requested span.
            std::memset(page->data.get() + (a & kPageMask), 0, n);
            wrote_exec = wrote_exec || (page->perms & kPermX);
        }
        // Lazy pages are already logically zero: nothing to do, and
        // crucially no backing store is allocated, so zero-filling a
        // fresh multi-MiB mapping stays O(pages touched).
        done += n;
    }
    if (wrote_exec) {
        touch_code();
    }
    return AccessFault::kNone;
}

} // namespace occlum::vm
