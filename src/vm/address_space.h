/**
 * @file
 * A sparse, paged virtual address space with RWX permissions.
 *
 * One AddressSpace backs one simulated enclave (Occlum: the single
 * enclave shared by all SIPs and the LibOS) or one baseline process.
 * Pages are 4 KiB; unmapped pages fault on any access, which is what
 * makes the MMDSFI guard regions (G1/G2 around each domain's data
 * region) effective.
 */
#ifndef OCCLUM_VM_ADDRESS_SPACE_H
#define OCCLUM_VM_ADDRESS_SPACE_H

#include <array>
#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>

#include "base/bytes.h"
#include "base/result.h"

namespace occlum::vm {

constexpr uint64_t kPageSize = 4096;
constexpr uint64_t kPageMask = kPageSize - 1;

/** Page permission bits. */
enum Perm : uint8_t {
    kPermNone = 0,
    kPermR = 1,
    kPermW = 2,
    kPermX = 4,
    kPermRW = kPermR | kPermW,
    kPermRX = kPermR | kPermX,
    kPermRWX = kPermR | kPermW | kPermX,
};

/** Why a memory access failed. */
enum class AccessFault {
    kNone,
    kUnmapped,   // page not present (e.g. a guard region)
    kNoRead,
    kNoWrite,
    kNoExec,
};

/** Sparse paged memory. */
class AddressSpace
{
  public:
    AddressSpace() = default;
    AddressSpace(const AddressSpace &) = delete;
    AddressSpace &operator=(const AddressSpace &) = delete;

    /** Map [addr, addr+len) with `perms`; addr/len must be page-aligned.
     *  Fails with kExist if any page is already mapped. */
    Status map(uint64_t addr, uint64_t len, uint8_t perms);

    /** Unmap [addr, addr+len); silently skips unmapped pages. */
    void unmap(uint64_t addr, uint64_t len);

    /** Change permissions on already-mapped pages. */
    Status protect(uint64_t addr, uint64_t len, uint8_t perms);

    /** True if every page of [addr, addr+len) is mapped. */
    bool is_mapped(uint64_t addr, uint64_t len) const;

    /** Permissions of the page containing addr (kPermNone if unmapped). */
    uint8_t perms_at(uint64_t addr) const;

    // ---- checked accessors used by the CPU --------------------------
    AccessFault read(uint64_t addr, void *out, uint64_t len) const;
    AccessFault write(uint64_t addr, const void *in, uint64_t len);
    AccessFault fetch(uint64_t addr, void *out, uint64_t len) const;

    /**
     * Width-templated single-access fast paths used by the superblock
     * tier's micro-op loop: TLB probe, permission check, and the copy
     * inline at the call site with a compile-time width, so the
     * common in-page access never leaves the caller's frame. An
     * access that straddles a page boundary falls back to the generic
     * path. Coherence is identical to read()/write() — in particular
     * a write into an executable page advances the code-generation
     * counter, which is what lets folded guards stay sound: the trace
     * re-checks the generation after every store.
     */
    template <uint64_t N>
    AccessFault
    read_fast(uint64_t addr, void *out) const
    {
        static_assert(N <= kPageSize);
        if ((addr & kPageMask) + N <= kPageSize) {
            Page *page = lookup_page(addr / kPageSize);
            if (page == nullptr) {
                return AccessFault::kUnmapped;
            }
            if (!(page->perms & kPermR)) {
                return AccessFault::kNoRead;
            }
            if (page->data == nullptr) {
                std::memset(out, 0, N); // lazy page: logically zeros
            } else {
                std::memcpy(out, page->data.get() + (addr & kPageMask), N);
            }
            return AccessFault::kNone;
        }
        return read(addr, out, N);
    }

    template <uint64_t N>
    AccessFault
    write_fast(uint64_t addr, const void *in)
    {
        static_assert(N <= kPageSize);
        if ((addr & kPageMask) + N <= kPageSize) {
            Page *page = lookup_page(addr / kPageSize);
            if (page == nullptr) {
                return AccessFault::kUnmapped;
            }
            if (!(page->perms & kPermW)) {
                return AccessFault::kNoWrite;
            }
            if (page->data == nullptr) {
                materialize(*page);
            }
            std::memcpy(page->data.get() + (addr & kPageMask), in, N);
            if (page->perms & kPermX) {
                touch_code();
            }
            return AccessFault::kNone;
        }
        return write(addr, in, N);
    }

    // ---- trusted accessors used by the LibOS / loaders ---------------
    /** Copy bytes ignoring permissions (still faults on unmapped). */
    AccessFault read_raw(uint64_t addr, void *out, uint64_t len) const;
    AccessFault write_raw(uint64_t addr, const void *in, uint64_t len);

    /** Zero-fill a range (trusted; used when zeroing BSS / new pages). */
    AccessFault zero_raw(uint64_t addr, uint64_t len);

    /** Number of currently mapped pages. */
    size_t mapped_pages() const { return pages_.size(); }

    /**
     * Bump the generation counter (invalidates CPU block/decode
     * caches). The counter also advances automatically on any write
     * into an executable page and on map/protect/unmap operations
     * that add or remove X permission, so callers only need this for
     * out-of-band modifications (e.g. tests poking at raw pages).
     */
    void touch_code() { ++code_generation_; }
    uint64_t code_generation() const { return code_generation_; }

  private:
    /**
     * A null `data` means the page is logically all-zeros and has no
     * backing store yet; the first write materializes it. Newly
     * mapped pages start in this state, so mapping a multi-MiB
     * reserve region (enclave slots, heaps) is O(pages) map entries,
     * not O(bytes) of memset.
     */
    struct Page {
        std::unique_ptr<uint8_t[]> data;
        uint8_t perms = kPermNone;
    };

    /**
     * Direct-mapped software TLB over the page table. Entries cache
     * Page pointers, which unordered_map keeps stable across inserts;
     * only unmap() (node erase) has to flush. Permissions are read
     * through the pointer, so protect() needs no flush either.
     */
    static constexpr size_t kTlbEntries = 256;
    struct TlbEntry {
        uint64_t page_no = ~0ull;
        Page *page = nullptr;
    };

    /** First write to a lazy zero page: allocate + clear its backing. */
    static void materialize(Page &page);

    /** TLB probe, inline so the fast read/write paths never leave the
     *  call site on a hit; the page-table walk stays out of line. */
    Page *
    lookup_page(uint64_t page_no) const
    {
        TlbEntry &entry = tlb_[page_no % kTlbEntries];
        if (entry.page_no == page_no) {
            return entry.page;
        }
        return lookup_page_slow(page_no);
    }
    Page *lookup_page_slow(uint64_t page_no) const;
    const Page *find_page(uint64_t addr) const;
    Page *find_page(uint64_t addr);
    void flush_tlb() const;

    /** Generic copy loop; `require` selects the permission bit. */
    template <bool Write>
    AccessFault access(uint64_t addr, void *buf, uint64_t len,
                       uint8_t require);

    std::unordered_map<uint64_t, Page> pages_;
    mutable std::array<TlbEntry, kTlbEntries> tlb_{};
    uint64_t code_generation_ = 0;
};

} // namespace occlum::vm

#endif // OCCLUM_VM_ADDRESS_SPACE_H
