/**
 * @file
 * The superblock tier: hot basic blocks are stitched into traces of
 * pre-resolved micro-ops ("uops") and replayed by a straight-line
 * dispatch loop (see Cpu::exec_superblock in superblock.cc).
 *
 * A superblock is a single-entry, multiple-exit trace built by
 * following the static control flow from a hot block's entry rip:
 * direct jumps are collapsed, direct calls are stitched through into
 * the callee (the pushed return address is a translation-time
 * constant), and returns — both plain `ret` and MMDSFI's
 * `pop r14; cfi_guard; jmp *r14` rewrite — continue at the statically
 * paired return site behind a guard that exits the trace if the
 * runtime target disagrees. Conditional branches whose taken target
 * is already in the trace become intra-trace jumps (loop back edges);
 * all other branch directions become guarded exits. Exits are always
 * safe: a mispredicted guard leaves the trace with the correct rip
 * and tier 1 resumes there.
 *
 * Translation follows the translate-then-optimize pipeline: the trace
 * is first lowered 1:1 into uops with operands bound (register slots,
 * immediates, rip-relative addresses folded to constants), then a
 * series of peephole passes runs over the linear buffer —
 * bndcl/bndcu pairs fused, compare+branch fused, duplicate bound
 * checks that a range analysis over the trace proves redundant folded
 * to charge-only uops, and nop/label/collapsed-jump runs merged —
 * before dead uops are compacted out and intra-trace targets
 * relocated.
 *
 * Cycle accounting is bit-identical to the other tiers: every uop
 * charges the exact per-instruction `isa::cycle_cost` sum of the
 * instructions it covers, and a fused uop that faults in its first
 * component charges only that component (`cost_head`). Folded guards
 * still charge their cycles — only the dispatch and the re-check are
 * removed, never the simulated time.
 */
#ifndef OCCLUM_VM_SUPERBLOCK_H
#define OCCLUM_VM_SUPERBLOCK_H

#include <cstdint>
#include <functional>
#include <vector>

#include "isa/isa.h"

namespace occlum::vm {

/** Execution-count threshold at which a block is promoted to tier 2. */
constexpr uint32_t kPromoteThreshold = 12;
/** Longest trace kept in one superblock, in original instructions. */
constexpr size_t kMaxTraceInstrs = 512;
/** Deepest direct-call nesting stitched through. */
constexpr int kMaxStitchDepth = 8;

/** Pre-resolved micro-op kinds. */
enum class UopKind : uint8_t {
    kDead,    // translation-time tombstone (never installed)
    kCharge,  // charge cycles/instructions only (nops, labels,
              // collapsed jumps, folded guards)

    kMovRI, kMovRR,
    kAddRI, kAddRR, kSubRI, kSubRR, kMulRI, kMulRR,
    kDivRR, kModRR,
    kAndRI, kAndRR, kOrRI, kOrRR, kXorRI, kXorRR,
    kShlRI, kShrRI, kSarRI, kShlRR, kShrRR, kSarRR,
    kNeg, kNot,
    kCmpRI, kCmpRR, kTestRR,
    kLea, kRdcycle,

    kLoad, kStore,           // width in `size`; EA pre-resolved
    kPush, kPushImm, kPop,

    kBndChkMem, kBndChkReg,  // `mask` selects lo/hi; both = fused pair

    kGoto,                   // unconditional intra-trace jump
    kJccGoto,                // conditional intra-trace jump (back edge)
    kJccExit,                // conditional: taken leaves the trace
    kCmpRIJccGoto, kCmpRRJccGoto,  // fused compare + branch
    kCmpRIJccExit, kCmpRRJccExit,

    kCall,                   // stitched direct call: push const, fall through
    kCallExit,               // direct call out of trace: push const, exit
    kCallRegExit, kCallMemExit,
    kJmpRegGuard,            // MMDSFI return: continue if reg == expected
    kRetGuard,               // plain return: continue if [sp] == expected
    kRetExit, kJmpRegExit, kJmpMemExit,
    kExitTo,                 // leave the trace at a constant rip

    kLtrap, kPriv,           // terminal: fill CpuExit

    kAluPack,                // 2-3 packed register-ALU mini-ops
    kAluPackBr,              // pack + fused compare + intra-trace branch
    kLoadChk, kStoreChk,     // bound check(s) + access, one EA, one uop
    kLoadAlu,                // load + one register-ALU mini-op
};

/** Number of UopKind values (size of the dispatch table). */
constexpr size_t kNumUopKinds = static_cast<size_t>(UopKind::kLoadAlu) + 1;

/** Pre-resolved effective-address modes (rip-rel/abs fold to kEaConst). */
enum : uint8_t { kEaConst = 0, kEaBaseDisp = 1, kEaSib = 2 };

/**
 * One micro-op. Operands are bound at translation time.
 *
 * kAluPack reuses the EA fields as extra operand slots — register-ALU
 * mini-ops never form addresses, so the slots are free. Component c of
 * a pack is (sub-opcode, dst reg, src reg, immediate):
 *   c0: (bnd,   reg1, reg2, imm)
 *   c1: (mask,  base, index, disp)
 *   c2: (scale, ea,   size,  exit_rip)   — only when n_instrs == 3
 * Sub-opcodes are raw UopKind values from the packable subset (pure
 * register ALU: no memory, no flags, no faults), so a pack can never
 * exit mid-pack and `n_instrs`/`cost` cover the whole group.
 *
 * kLoadChk/kStoreChk fuse a kBndChkMem on the access operand into the
 * access itself: the EA is computed once and the group dispatches
 * once. `mask` keeps the check selector, `bnd` the bound register,
 * `cost_head` the lo-check cost, `target` the cost of the whole check
 * portion (charged when the hi check fails), and the three fault rips
 * are `address` (lo), `address2` (hi), `exit_rip` (the access).
 *
 * kAluPackBr appends a fused compare + intra-trace branch to the
 * pack, so a tight loop body dispatches once per iteration. The
 * compare operands ride in `cost_head` (cmp reg1 | cmp reg2 << 8 |
 * 0x10000 when the second operand is a register) with the RI
 * immediate in `address2`; `cond`/`target` describe the branch. Only
 * intra-trace branches merge, so `exit_rip` stays free for the c2
 * slot, and packs cannot fault, so the fault-rip fields they shadow
 * are never consulted.
 *
 * kLoadAlu appends one register-ALU mini-op to a plain load (the
 * `load; op` idiom loop bodies produce once longer ALU runs have been
 * packed). The load keeps its normal fields; the ALU rides in slots a
 * load leaves free: `bnd` the sub-opcode, `mask` the destination
 * register, `reg2` the source register, `imm` the immediate. Only the
 * load can fault, and it is the first component, so a fault charges
 * `cost_head` (the load alone) at `address` and the budget check
 * refuses the pair whole.
 */
struct Uop {
    UopKind kind = UopKind::kCharge;
    uint8_t reg1 = 0;      // destination / first register slot
    uint8_t reg2 = 0;      // source / second register slot
    uint8_t base = 0;      // EA base register
    uint8_t index = 0;     // EA index register
    uint8_t scale = 0;     // EA scale (log2)
    uint8_t ea = kEaConst; // EA mode
    uint8_t bnd = 0;       // bound-register slot
    uint8_t mask = 0;      // bound-check mask: 1 = lo, 2 = hi
    uint8_t size = 0;      // memory access width (1/4/8)
    uint8_t n_instrs = 1;  // original instructions covered
    isa::Cond cond = isa::Cond::kEq;
    uint32_t cost = 1;      // total cycles for the covered instructions
    uint32_t cost_head = 0; // cycles of the first component of a fused pair
    int32_t target = -1;    // intra-trace uop index (kGoto family)
    int64_t imm = 0;        // ALU immediate / pushed value / ret pop bytes
    int64_t disp = 0;       // EA displacement, or the constant EA itself
    uint64_t exit_rip = 0;  // exit target / expected indirect target
    uint64_t address = 0;   // first covered instruction (fault rip)
    uint64_t address2 = 0;  // second fused component (fault rip)
    uint64_t next_rip = 0;  // rip after the covered instructions
    // Direct-threading slot: the dispatch label for `kind`, bound at
    // install time so the hot loop loads one pointer instead of the
    // dependent kind-then-table pair. Null outside computed-goto
    // builds (the switch fallback dispatches on `kind`).
    const void *handler = nullptr;
};

/** An installed trace. Valid while `generation` matches the space. */
struct Superblock {
    std::vector<Uop> uops;
    uint64_t entry_rip = 0;
    uint64_t generation = ~0ull;
    uint32_t first_n_instrs = 1; // budget needed to enter the trace
    uint32_t guards_folded = 0;  // fused pairs + elided duplicates
};

/** Decode callback: fills `out` at `rip`, false on fetch/decode fault. */
using SbDecodeFn = std::function<bool(uint64_t rip, isa::Instruction *out)>;

/**
 * Build a superblock starting at `entry_rip`. Returns false when no
 * useful trace exists (the entry instruction does not decode). The
 * translator never executes anything and never touches simulated
 * time; it is pure wall-clock work.
 */
bool translate_superblock(const SbDecodeFn &decode, uint64_t entry_rip,
                          uint64_t generation, Superblock *out);

// ---- peephole passes (superblock_peephole.cc) ---------------------------
// All passes operate on the linear uop buffer between lowering and
// compaction. `is_target[i]` marks uops that are intra-trace jump
// targets; a pass must never merge a target into its predecessor and
// must reset any dataflow assumptions at a target (control may enter
// there from a back edge with different register state).
namespace peephole {

/** Registers written by a uop, as a bitmask (sp included). */
uint32_t written_regs(const Uop &op);

/**
 * Fold bound checks that an earlier check on the same trace path
 * already proves: an identical (bnd, EA/reg operand) check whose
 * operand registers are unmodified since must produce the same
 * outcome, and the earlier outcome was "pass" (a failure would have
 * exited the trace). Folded checks become kCharge — simulated cycles
 * are still charged; only the re-check is removed.
 */
void elide_duplicate_guards(std::vector<Uop> &uops,
                            const std::vector<uint8_t> &is_target,
                            uint32_t *folded);

/** Fuse adjacent bndcl+bndcu on the same operand into one uop. */
void fuse_bound_pairs(std::vector<Uop> &uops,
                      const std::vector<uint8_t> &is_target,
                      uint32_t *folded);

/**
 * Fuse a kBndChkMem (single or fused pair) into an immediately
 * following kLoad/kStore on the *same* pre-resolved EA, producing
 * kLoadChk/kStoreChk. Adjacency guarantees the operand registers
 * cannot change between check and access, so one EA computation and
 * one dispatch serve the whole guarded access. Fault points and
 * cycle charges stay exactly tiered: lo-check fail charges
 * `cost_head`, hi-check fail charges the check portion (`target`),
 * an access fault charges the full group. A plain kCharge run in
 * front of an access (elided guards, nops) fuses the same way with
 * `mask` 0 — charge-then-access, no checks. Runs after
 * collapse_charge_runs so a collapsed run is absorbed whole.
 */
void fuse_bound_accesses(std::vector<Uop> &uops,
                         const std::vector<uint8_t> &is_target,
                         uint32_t *folded);

/** Fuse cmp reg,imm / cmp reg,reg followed by a conditional branch. */
void fuse_compare_branches(std::vector<Uop> &uops,
                           const std::vector<uint8_t> &is_target);

/** Merge runs of adjacent kCharge uops (nops, labels, folded guards). */
void collapse_charge_runs(std::vector<Uop> &uops,
                          const std::vector<uint8_t> &is_target);

/**
 * Pack runs of 2-3 adjacent pure register-ALU uops into one kAluPack
 * superinstruction (see the Uop field-reuse table). Packable uops
 * cannot fault, touch memory, or set flags, so the pack executes
 * atomically; the budget check refuses a whole pack exactly like any
 * other multi-instruction uop and tier 1 finishes the tail. Runs last,
 * after the other fusions have claimed their patterns.
 */
void fuse_alu_packs(std::vector<Uop> &uops,
                    const std::vector<uint8_t> &is_target);

/**
 * Fuse a plain kLoad with a single following packable ALU uop into
 * one kLoadAlu (any destination register — the ALU slots ride in
 * fields the load leaves free). Runs after fuse_alu_packs so ALU runs
 * of two or more keep the denser pack encoding and only lone
 * leftovers merge here.
 */
void fuse_load_alu(std::vector<Uop> &uops,
                   const std::vector<uint8_t> &is_target);

/** Drop kDead uops and relocate intra-trace targets. */
void compact(std::vector<Uop> &uops);

} // namespace peephole

} // namespace occlum::vm

#endif // OCCLUM_VM_SUPERBLOCK_H
