/**
 * @file
 * Peephole passes over a superblock's linear uop buffer, run between
 * 1:1 lowering and installation (the translate-then-optimize shape).
 *
 * Soundness rules shared by every pass:
 *  - never merge a uop that is an intra-trace jump target into its
 *    predecessor (control can enter at it from a back edge);
 *  - reset all dataflow assumptions at a target (the incoming path is
 *    unknown);
 *  - bound registers are constants within a trace — every instruction
 *    that can mutate them (bndmk/bndmov/xrstor) is dangerous and
 *    terminates stitching — so a bound check is a pure function of
 *    its operand registers;
 *  - only *exact duplicates* of an earlier check are folded. Proving
 *    subsumption from monotone displacements is unsound under
 *    unsigned effective-address wraparound, so it is not attempted.
 *  - folding never touches simulated time: a folded check becomes a
 *    kCharge carrying its original cost and instruction count.
 */
#include "vm/superblock.h"

namespace occlum::vm::peephole {

uint32_t
written_regs(const Uop &op)
{
    switch (op.kind) {
      case UopKind::kMovRI:
      case UopKind::kMovRR:
      case UopKind::kAddRI: case UopKind::kAddRR:
      case UopKind::kSubRI: case UopKind::kSubRR:
      case UopKind::kMulRI: case UopKind::kMulRR:
      case UopKind::kDivRR: case UopKind::kModRR:
      case UopKind::kAndRI: case UopKind::kAndRR:
      case UopKind::kOrRI: case UopKind::kOrRR:
      case UopKind::kXorRI: case UopKind::kXorRR:
      case UopKind::kShlRI: case UopKind::kShrRI: case UopKind::kSarRI:
      case UopKind::kShlRR: case UopKind::kShrRR: case UopKind::kSarRR:
      case UopKind::kNeg: case UopKind::kNot:
      case UopKind::kLea:
      case UopKind::kRdcycle:
      case UopKind::kLoad:
      case UopKind::kLoadChk:
        return 1u << op.reg1;
      case UopKind::kLoadAlu: // load dst + the ALU mini-op's dst
        return (1u << op.reg1) | (1u << op.mask);
      case UopKind::kPop:
        return (1u << op.reg1) | (1u << isa::kSp);
      case UopKind::kAluPack:
        return (1u << op.reg1) | (1u << op.base) |
               (op.n_instrs == 3 ? 1u << op.ea : 0u);
      case UopKind::kAluPackBr: // pack + compare/branch (writes no regs)
        return (1u << op.reg1) | (1u << op.base) |
               (op.n_instrs == 5 ? 1u << op.ea : 0u);
      case UopKind::kPush:
      case UopKind::kPushImm:
      case UopKind::kCall:
      case UopKind::kCallExit:
      case UopKind::kCallRegExit:
      case UopKind::kCallMemExit:
      case UopKind::kRetGuard:
      case UopKind::kRetExit:
        return 1u << isa::kSp;
      default:
        return 0; // charges, stores, compares, checks, branches
    }
}

namespace {

/** A bound check whose outcome is known to be "pass" at this point. */
struct SeenCheck {
    bool is_mem = false;
    uint8_t bnd = 0;
    uint8_t mask = 0; // bits already proven
    // mem operand signature
    uint8_t ea = kEaConst;
    uint8_t base = 0;
    uint8_t index = 0;
    uint8_t scale = 0;
    int64_t disp = 0;
    // reg operand signature
    uint8_t reg = 0;

    bool
    same_operand(const Uop &u, bool mem_check) const
    {
        if (is_mem != mem_check || bnd != u.bnd) {
            return false;
        }
        if (is_mem) {
            if (ea != u.ea) return false;
            switch (ea) {
              case kEaConst: return disp == u.disp;
              case kEaBaseDisp: return base == u.base && disp == u.disp;
              default:
                return base == u.base && index == u.index &&
                       scale == u.scale && disp == u.disp;
            }
        }
        return reg == u.reg1;
    }

    bool
    depends_on(uint32_t reg_mask) const
    {
        if (is_mem) {
            switch (ea) {
              case kEaConst: return false;
              case kEaBaseDisp: return (reg_mask >> base) & 1;
              default:
                return ((reg_mask >> base) & 1) ||
                       ((reg_mask >> index) & 1);
            }
        }
        return (reg_mask >> reg) & 1;
    }
};

} // namespace

void
elide_duplicate_guards(std::vector<Uop> &uops,
                       const std::vector<uint8_t> &is_target,
                       uint32_t *folded)
{
    std::vector<SeenCheck> seen;
    for (size_t i = 0; i < uops.size(); ++i) {
        if (is_target[i]) {
            seen.clear(); // join point: forget everything
        }
        Uop &u = uops[i];
        if (u.kind == UopKind::kBndChkMem ||
            u.kind == UopKind::kBndChkReg) {
            bool mem_check = u.kind == UopKind::kBndChkMem;
            SeenCheck *match = nullptr;
            for (SeenCheck &c : seen) {
                if (c.same_operand(u, mem_check)) {
                    match = &c;
                    break;
                }
            }
            if (match != nullptr && (match->mask & u.mask) == u.mask) {
                // The identical check already passed on every path
                // reaching here — re-checking is pure dispatch cost.
                u.kind = UopKind::kCharge;
                ++*folded;
            } else if (match != nullptr) {
                match->mask |= u.mask;
            } else {
                SeenCheck c;
                c.is_mem = mem_check;
                c.bnd = u.bnd;
                c.mask = u.mask;
                c.ea = u.ea;
                c.base = u.base;
                c.index = u.index;
                c.scale = u.scale;
                c.disp = u.disp;
                c.reg = u.reg1;
                seen.push_back(c);
            }
            continue;
        }
        uint32_t w = written_regs(u);
        if (w != 0) {
            for (size_t k = 0; k < seen.size();) {
                if (seen[k].depends_on(w)) {
                    seen[k] = seen.back();
                    seen.pop_back();
                } else {
                    ++k;
                }
            }
        }
    }
}

void
fuse_bound_pairs(std::vector<Uop> &uops,
                 const std::vector<uint8_t> &is_target, uint32_t *folded)
{
    for (size_t i = 0; i + 1 < uops.size(); ++i) {
        Uop &a = uops[i];
        if ((a.kind != UopKind::kBndChkMem &&
             a.kind != UopKind::kBndChkReg) ||
            a.mask != 1) {
            continue; // head must be an unfused lower check
        }
        if (is_target[i + 1]) {
            continue; // the upper check is independently reachable
        }
        Uop &b = uops[i + 1];
        if (b.kind != a.kind || b.mask != 2 || b.bnd != a.bnd) {
            continue;
        }
        if (a.kind == UopKind::kBndChkMem) {
            if (b.ea != a.ea || b.base != a.base || b.index != a.index ||
                b.scale != a.scale || b.disp != a.disp) {
                continue;
            }
        } else if (b.reg1 != a.reg1) {
            continue;
        }
        // One EA computation, one charge, one dispatch for the pair.
        a.mask = 3;
        a.cost_head = a.cost;
        a.cost += b.cost;
        a.n_instrs = static_cast<uint8_t>(a.n_instrs + b.n_instrs);
        a.address2 = b.address;
        a.next_rip = b.next_rip;
        b.kind = UopKind::kDead;
        ++*folded;
    }
}

namespace {

/**
 * Index of the next live uop after `i`, skipping kDead slots left by
 * earlier merges — provided control cannot enter sideways: every
 * skipped slot and the returned one must not be a branch target.
 * Earlier passes merge into the *earlier* slot, so a dead slot
 * between two live uops covers no instructions and fusing across it
 * is exactly fusing program-adjacent uops (callers double-check with
 * the next_rip/address contiguity test). SIZE_MAX when nothing fuses.
 */
size_t
next_live(const std::vector<Uop> &uops,
          const std::vector<uint8_t> &is_target, size_t i)
{
    for (size_t j = i + 1; j < uops.size(); ++j) {
        if (is_target[j]) {
            return SIZE_MAX;
        }
        if (uops[j].kind != UopKind::kDead) {
            return j;
        }
    }
    return SIZE_MAX;
}

} // namespace

void
fuse_bound_accesses(std::vector<Uop> &uops,
                    const std::vector<uint8_t> &is_target,
                    uint32_t *folded)
{
    for (size_t i = 0; i + 1 < uops.size(); ++i) {
        Uop &chk = uops[i];
        // kCharge heads fuse too (mask 0 = no checks): an elided
        // guard or nop run in front of an access is pure dispatch
        // cost, and the merged uop's all-or-nothing budget handling
        // already covers multi-instruction groups.
        bool is_check = chk.kind == UopKind::kBndChkMem;
        if (!is_check && chk.kind != UopKind::kCharge) {
            continue;
        }
        // A fused bndcl+bndcu pair leaves a dead slot between the
        // check and the access it guards; skip over merge tombstones.
        size_t j = next_live(uops, is_target, i);
        if (j == SIZE_MAX || chk.next_rip != uops[j].address) {
            continue;
        }
        Uop &acc = uops[j];
        if (acc.kind != UopKind::kLoad && acc.kind != UopKind::kStore) {
            continue;
        }
        if (is_check &&
            (acc.ea != chk.ea || acc.base != chk.base ||
             acc.index != chk.index || acc.scale != chk.scale ||
             acc.disp != chk.disp)) {
            continue; // the check guards a different address
        }
        if (chk.n_instrs + acc.n_instrs > 255) {
            continue;
        }
        // Fold the access into the head's slot (the head may be a
        // branch target; the access is not). A check's charge tiers
        // ride along: cost_head for a lo fail (single checks charge
        // their own cost), `target` for the whole check portion.
        if (is_check) {
            chk.cost_head = chk.mask == 3 ? chk.cost_head : chk.cost;
            chk.target = static_cast<int32_t>(chk.cost);
            ++*folded;
        } else {
            chk.mask = 0; // no checks, charge-then-access only
            chk.ea = acc.ea;
            chk.base = acc.base;
            chk.index = acc.index;
            chk.scale = acc.scale;
            chk.disp = acc.disp;
        }
        chk.kind = acc.kind == UopKind::kLoad ? UopKind::kLoadChk
                                              : UopKind::kStoreChk;
        chk.reg1 = acc.reg1;
        chk.size = acc.size;
        chk.exit_rip = acc.address; // the access's own fault rip
        chk.cost += acc.cost;
        chk.n_instrs = static_cast<uint8_t>(chk.n_instrs + acc.n_instrs);
        chk.next_rip = acc.next_rip;
        acc.kind = UopKind::kDead;
        i = j;
    }
}

void
fuse_compare_branches(std::vector<Uop> &uops,
                      const std::vector<uint8_t> &is_target)
{
    for (size_t i = 0; i + 1 < uops.size(); ++i) {
        Uop &a = uops[i];
        if (a.kind != UopKind::kCmpRI && a.kind != UopKind::kCmpRR) {
            continue;
        }
        size_t j = next_live(uops, is_target, i);
        if (j == SIZE_MAX || a.next_rip != uops[j].address) {
            continue;
        }
        Uop &b = uops[j];
        bool to_goto = b.kind == UopKind::kJccGoto;
        if (!to_goto && b.kind != UopKind::kJccExit) {
            continue;
        }
        if (a.kind == UopKind::kCmpRI) {
            a.kind = to_goto ? UopKind::kCmpRIJccGoto
                             : UopKind::kCmpRIJccExit;
        } else {
            a.kind = to_goto ? UopKind::kCmpRRJccGoto
                             : UopKind::kCmpRRJccExit;
        }
        a.cond = b.cond;
        a.target = b.target;
        a.exit_rip = b.exit_rip;
        a.cost_head = a.cost;
        a.cost += b.cost;
        a.n_instrs = static_cast<uint8_t>(a.n_instrs + b.n_instrs);
        a.address2 = b.address;
        a.next_rip = b.next_rip;
        b.kind = UopKind::kDead;
    }
}

void
collapse_charge_runs(std::vector<Uop> &uops,
                     const std::vector<uint8_t> &is_target)
{
    size_t i = 0;
    while (i < uops.size()) {
        if (uops[i].kind != UopKind::kCharge) {
            ++i;
            continue;
        }
        size_t j = i + 1;
        while (j < uops.size() && uops[j].kind == UopKind::kCharge &&
               !is_target[j] &&
               uops[i].n_instrs + uops[j].n_instrs <= 255) {
            uops[i].cost += uops[j].cost;
            uops[i].n_instrs =
                static_cast<uint8_t>(uops[i].n_instrs + uops[j].n_instrs);
            uops[i].next_rip = uops[j].next_rip;
            uops[j].kind = UopKind::kDead;
            ++j;
        }
        i = j;
    }
}

namespace {

/**
 * Pure register-ALU uops: no memory access, no flags, no possible
 * fault. Only these may ride inside a kAluPack — anything that can
 * exit mid-uop would break the pack's all-or-nothing accounting.
 * (kLea is excluded because packs reuse its EA fields; kDivRR/kModRR
 * fault on zero; compares set flags; kRdcycle reads simulated time.)
 */
bool
is_packable(const Uop &u)
{
    switch (u.kind) {
      case UopKind::kMovRI: case UopKind::kMovRR:
      case UopKind::kAddRI: case UopKind::kAddRR:
      case UopKind::kSubRI: case UopKind::kSubRR:
      case UopKind::kMulRI: case UopKind::kMulRR:
      case UopKind::kAndRI: case UopKind::kAndRR:
      case UopKind::kOrRI: case UopKind::kOrRR:
      case UopKind::kXorRI: case UopKind::kXorRR:
      case UopKind::kShlRI: case UopKind::kShrRI: case UopKind::kSarRI:
      case UopKind::kShlRR: case UopKind::kShrRR: case UopKind::kSarRR:
      case UopKind::kNeg: case UopKind::kNot:
        return true;
      default:
        return false;
    }
}

} // namespace

void
fuse_alu_packs(std::vector<Uop> &uops,
               const std::vector<uint8_t> &is_target)
{
    for (size_t h = 0; h + 1 < uops.size(); ++h) {
        Uop &a = uops[h];
        if (!is_packable(a)) {
            continue;
        }
        size_t jb = next_live(uops, is_target, h);
        if (jb == SIZE_MAX || a.next_rip != uops[jb].address) {
            continue;
        }
        // A lone packable ALU in front of a fused compare + intra-trace
        // branch still merges (the common `i += k; cmp; jcc` loop
        // tail): the c1 slot becomes a harmless identity move and the
        // group dispatches once per iteration.
        if (!is_packable(uops[jb])) {
            if (uops[jb].kind != UopKind::kCmpRIJccGoto &&
                uops[jb].kind != UopKind::kCmpRRJccGoto) {
                continue;
            }
            Uop &br = uops[jb];
            a.bnd = static_cast<uint8_t>(a.kind); // c0 slot
            a.kind = UopKind::kAluPackBr;
            a.mask = static_cast<uint8_t>(UopKind::kMovRR); // c1: r0 = r0
            a.base = 0;
            a.index = 0;
            a.cond = br.cond;
            a.target = br.target; // pre-compact index; compact relocates
            a.cost_head =
                static_cast<uint32_t>(br.reg1) |
                (static_cast<uint32_t>(br.reg2) << 8) |
                (br.kind == UopKind::kCmpRRJccGoto ? 0x10000u : 0u);
            a.address2 = br.kind == UopKind::kCmpRIJccGoto
                             ? static_cast<uint64_t>(br.imm)
                             : 0;
            a.cost += br.cost;
            a.n_instrs = static_cast<uint8_t>(a.n_instrs + br.n_instrs);
            a.next_rip = br.next_rip;
            br.kind = UopKind::kDead;
            h = jb;
            continue;
        }
        Uop &b = uops[jb];
        a.bnd = static_cast<uint8_t>(a.kind); // c0 slot (see Uop docs)
        a.kind = UopKind::kAluPack;
        a.mask = static_cast<uint8_t>(b.kind); // c1 slot
        a.base = b.reg1;
        a.index = b.reg2;
        a.disp = b.imm;
        a.cost += b.cost;
        a.n_instrs = 2;
        a.address2 = b.address;
        a.next_rip = b.next_rip;
        b.kind = UopKind::kDead;
        size_t last = jb;
        size_t jc = next_live(uops, is_target, last);
        if (jc != SIZE_MAX && a.next_rip == uops[jc].address &&
            is_packable(uops[jc])) {
            Uop &c = uops[jc];
            a.scale = static_cast<uint8_t>(c.kind); // c2 slot
            a.ea = c.reg1;
            a.size = c.reg2;
            a.exit_rip = static_cast<uint64_t>(c.imm);
            a.cost += c.cost;
            a.n_instrs = 3;
            a.address2 = c.address;
            a.next_rip = c.next_rip;
            c.kind = UopKind::kDead;
            last = jc;
        }
        // A fused compare + intra-trace branch right behind the pack
        // merges into it (kAluPackBr): the whole loop body becomes a
        // single uop, one dispatch per iteration. Exit branches keep
        // their own uop — they need exit_rip, which the c2 slot owns.
        size_t jr = next_live(uops, is_target, last);
        if (jr != SIZE_MAX && a.next_rip == uops[jr].address &&
            (uops[jr].kind == UopKind::kCmpRIJccGoto ||
             uops[jr].kind == UopKind::kCmpRRJccGoto)) {
            Uop &br = uops[jr];
            a.kind = UopKind::kAluPackBr;
            a.cond = br.cond;
            a.target = br.target; // pre-compact index; compact relocates
            a.cost_head =
                static_cast<uint32_t>(br.reg1) |
                (static_cast<uint32_t>(br.reg2) << 8) |
                (br.kind == UopKind::kCmpRRJccGoto ? 0x10000u : 0u);
            a.address2 = br.kind == UopKind::kCmpRIJccGoto
                             ? static_cast<uint64_t>(br.imm)
                             : 0;
            a.cost += br.cost;
            a.n_instrs = static_cast<uint8_t>(a.n_instrs + br.n_instrs);
            a.next_rip = br.next_rip;
            br.kind = UopKind::kDead;
            last = jr;
        }
        h = last;
    }
}

void
fuse_load_alu(std::vector<Uop> &uops,
              const std::vector<uint8_t> &is_target)
{
    for (size_t i = 0; i + 1 < uops.size(); ++i) {
        Uop &ld = uops[i];
        if (ld.kind != UopKind::kLoad) {
            continue;
        }
        size_t j = next_live(uops, is_target, i);
        if (j == SIZE_MAX || ld.next_rip != uops[j].address ||
            !is_packable(uops[j])) {
            continue;
        }
        Uop &alu = uops[j];
        if (ld.n_instrs + alu.n_instrs > 255) {
            continue;
        }
        ld.kind = UopKind::kLoadAlu;
        ld.bnd = static_cast<uint8_t>(alu.kind);
        ld.mask = alu.reg1;
        ld.reg2 = alu.reg2;
        ld.imm = alu.imm;
        ld.cost_head = ld.cost;
        ld.cost += alu.cost;
        ld.n_instrs = static_cast<uint8_t>(ld.n_instrs + alu.n_instrs);
        ld.next_rip = alu.next_rip;
        alu.kind = UopKind::kDead;
        i = j;
    }
}

void
compact(std::vector<Uop> &uops)
{
    std::vector<int32_t> new_index(uops.size(), -1);
    int32_t live = 0;
    for (size_t i = 0; i < uops.size(); ++i) {
        if (uops[i].kind != UopKind::kDead) {
            new_index[i] = live++;
        }
    }
    if (static_cast<size_t>(live) == uops.size()) {
        return; // nothing died; indices are already correct
    }
    std::vector<Uop> out;
    out.reserve(static_cast<size_t>(live));
    for (size_t i = 0; i < uops.size(); ++i) {
        if (uops[i].kind == UopKind::kDead) {
            continue;
        }
        Uop u = uops[i];
        // Only branch kinds hold a uop index in `target`
        // (kLoadChk/kStoreChk reuse the field as the check-portion
        // cycle charge — relocating that would corrupt accounting).
        bool target_is_index =
            u.kind == UopKind::kGoto || u.kind == UopKind::kJccGoto ||
            u.kind == UopKind::kCmpRIJccGoto ||
            u.kind == UopKind::kCmpRRJccGoto ||
            u.kind == UopKind::kAluPackBr;
        if (target_is_index && u.target >= 0) {
            // Dead uops are never targets, so the slot is valid.
            u.target = new_index[static_cast<size_t>(u.target)];
        }
        out.push_back(u);
    }
    uops = std::move(out);
}

} // namespace occlum::vm::peephole
