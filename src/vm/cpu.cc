#include "vm/cpu.h"

#include <cstdlib>

#include "base/log.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace occlum::vm {

using isa::Instruction;
using isa::Opcode;

namespace {

/** Longest straight-line run kept in one cached block. */
constexpr size_t kMaxBlockInstrs = 64;

bool g_default_block_cache_enabled = true;

/**
 * Process-wide superblock-tier default, read once from the
 * environment (the crypto reference-mode pattern): default on,
 * OCCLUM_VM_SUPERBLOCK=0 pins tier 1 for CI legs and bisection.
 */
bool
initial_superblock_enabled()
{
    const char *env = std::getenv("OCCLUM_VM_SUPERBLOCK");
    if (env == nullptr || env[0] == '\0') {
        return true;
    }
    return env[0] != '0';
}

bool g_default_superblock_enabled = initial_superblock_enabled();

FaultKind
data_fault_kind(AccessFault fault)
{
    switch (fault) {
      case AccessFault::kUnmapped: return FaultKind::kPageFault;
      case AccessFault::kNoRead:
      case AccessFault::kNoWrite:
      case AccessFault::kNoExec: return FaultKind::kPermFault;
      case AccessFault::kNone: return FaultKind::kNone;
    }
    return FaultKind::kNone;
}

/**
 * True if `op` must terminate a cached block: every control transfer
 * (the next rip is data-dependent) and every dangerous instruction
 * (ltrap + privileged ops, which make run() return).
 */
bool
ends_block(Opcode op)
{
    return isa::is_dangerous(op) ||
           isa::transfer_kind(op) != isa::TransferKind::kNone;
}

} // namespace

void
Cpu::set_default_block_cache_enabled(bool on)
{
    g_default_block_cache_enabled = on;
}

bool
Cpu::default_block_cache_enabled()
{
    return g_default_block_cache_enabled;
}

void
Cpu::set_default_superblock_enabled(bool on)
{
    g_default_superblock_enabled = on;
}

bool
Cpu::default_superblock_enabled()
{
    return g_default_superblock_enabled;
}

void
Cpu::set_block_cache_enabled(bool on)
{
    block_cache_enabled_ = on;
    block_cache_.clear();
    superblocks_.clear(); // Block::sb pointers died with the blocks
    reset_dispatch_counters();
}

void
Cpu::set_superblock_enabled(bool on)
{
    superblock_enabled_ = on;
    block_cache_.clear(); // drops exec counts and sb pointers together
    superblocks_.clear();
    reset_dispatch_counters();
}

void
Cpu::reset_dispatch_counters()
{
    bb_hits_ = 0;
    bb_misses_ = 0;
    bb_invalidations_ = 0;
    sb_promotions_ = 0;
    sb_invalidations_ = 0;
    sb_exec_hits_ = 0;
    sb_guards_folded_ = 0;
}

uint64_t
Cpu::effective_address(const isa::MemOperand &mem, uint64_t instr_end) const
{
    switch (mem.mode) {
      case isa::AddrMode::kBaseDisp:
        return state_.regs[mem.base] + static_cast<int64_t>(mem.disp);
      case isa::AddrMode::kSib:
        return state_.regs[mem.base] +
               (state_.regs[mem.index] << mem.scale_log2) +
               static_cast<int64_t>(mem.disp);
      case isa::AddrMode::kRipRel:
        return instr_end + static_cast<int64_t>(mem.disp);
      case isa::AddrMode::kAbs:
        return mem.abs_addr;
    }
    OCC_PANIC("bad addr mode");
}

CpuExit
Cpu::run(uint64_t max_instructions)
{
    uint64_t before_instrs = instructions_;
    uint64_t before_hits = bb_hits_;
    uint64_t before_misses = bb_misses_;
    uint64_t before_inval = bb_invalidations_;
    uint64_t before_sb_promote = sb_promotions_;
    uint64_t before_sb_inval = sb_invalidations_;
    uint64_t before_sb_hits = sb_exec_hits_;
    uint64_t before_sb_folded = sb_guards_folded_;
    CpuExit exit = block_cache_enabled_
                       ? run_blocks(max_instructions)
                       : run_decode_loop(max_instructions);

    // Dispatch-level metrics: one registry lookup per process (the
    // entries are process-wide), one add per executed quantum.
    static trace::Counter *ctr_instrs =
        &trace::Registry::instance().counter("vm.instructions");
    static trace::Counter *ctr_quanta =
        &trace::Registry::instance().counter("vm.quanta");
    static trace::Counter *ctr_ltraps =
        &trace::Registry::instance().counter("vm.ltraps");
    static trace::Counter *ctr_faults =
        &trace::Registry::instance().counter("vm.faults");
    static trace::Counter *ctr_bb_hits =
        &trace::Registry::instance().counter("vm.block_cache.hits");
    static trace::Counter *ctr_bb_misses =
        &trace::Registry::instance().counter("vm.block_cache.misses");
    static trace::Counter *ctr_bb_inval =
        &trace::Registry::instance().counter("vm.block_cache.invalidations");
    static trace::Counter *ctr_sb_promote =
        &trace::Registry::instance().counter("vm.superblock.promotions");
    static trace::Counter *ctr_sb_inval =
        &trace::Registry::instance().counter("vm.superblock.invalidations");
    static trace::Counter *ctr_sb_hits =
        &trace::Registry::instance().counter("vm.superblock.exec_hits");
    static trace::Counter *ctr_sb_folded =
        &trace::Registry::instance().counter("vm.superblock.guards_folded");
    ctr_instrs->add(instructions_ - before_instrs);
    ctr_quanta->add();
    ctr_bb_hits->add(bb_hits_ - before_hits);
    ctr_bb_misses->add(bb_misses_ - before_misses);
    ctr_bb_inval->add(bb_invalidations_ - before_inval);
    ctr_sb_promote->add(sb_promotions_ - before_sb_promote);
    ctr_sb_inval->add(sb_invalidations_ - before_sb_inval);
    ctr_sb_hits->add(sb_exec_hits_ - before_sb_hits);
    ctr_sb_folded->add(sb_guards_folded_ - before_sb_folded);
    switch (exit.kind) {
      case ExitKind::kLtrap:
        ctr_ltraps->add();
        break;
      case ExitKind::kFault:
        ctr_faults->add();
        OCC_TRACE_INSTANT(kVm, "cpu.fault", exit.fault_addr);
        break;
      case ExitKind::kPrivileged:
        OCC_TRACE_INSTANT(kVm, "cpu.priv", exit.rip);
        break;
      case ExitKind::kInstrBudget:
        break;
    }
    return exit;
}

FaultKind
Cpu::decode_at(uint64_t rip, Instruction *out)
{
    uint8_t buf[16];
    uint64_t got = 0;
    // One ranged fetch covers the whole window when it stays on a
    // page; fall back to byte-wise only when the window crosses into
    // an unfetchable page (the tail bytes may simply not exist).
    if (mem_->fetch(rip, buf, sizeof(buf)) == AccessFault::kNone) {
        got = sizeof(buf);
    } else {
        while (got < sizeof(buf)) {
            if (mem_->fetch(rip + got, buf + got, 1) !=
                AccessFault::kNone) {
                break;
            }
            ++got;
        }
        if (got == 0) {
            return FaultKind::kExecFault;
        }
    }
    auto decoded = isa::decode(buf, got, 0, rip);
    if (!decoded.ok()) {
        return FaultKind::kInvalidInstr;
    }
    *out = decoded.take();
    return FaultKind::kNone;
}

Cpu::Block *
Cpu::lookup_block(uint64_t rip, CpuExit *exit)
{
    uint64_t gen = mem_->code_generation();
    auto cached = block_cache_.find(rip);
    if (cached != block_cache_.end()) {
        if (cached->second.generation == gen) {
            ++bb_hits_;
            return &cached->second;
        }
        ++bb_invalidations_; // stale block: discarded lazily, rebuilt
        if (cached->second.sb != nullptr) {
            // The stitched trace dies with its block (SMC or an
            // X-perm change demotes this entry back to tier 1; it
            // re-promotes once the rebuilt block gets hot again).
            ++sb_invalidations_;
        }
    }
    ++bb_misses_;

    Block block;
    block.generation = gen;
    block.instrs.reserve(8);
    uint64_t pc = rip;
    while (block.instrs.size() < kMaxBlockInstrs) {
        Instruction instr;
        FaultKind fk = decode_at(pc, &instr);
        if (fk != FaultKind::kNone) {
            if (block.instrs.empty()) {
                // The entry instruction itself is unfetchable or
                // undecodable: that is an architectural fault.
                exit->kind = ExitKind::kFault;
                exit->fault = fk;
                exit->fault_addr = pc;
                exit->rip = pc;
                state_.rip = pc;
                return nullptr;
            }
            // Decoding failed *ahead* of execution. End the block
            // here; if control really reaches pc, the next lookup
            // starts a block there and raises the fault.
            break;
        }
        if (instr.op == Opcode::kCfiLabel && !block.instrs.empty()) {
            break; // a cfi_label is an entry point: new block
        }
        block.instrs.push_back(instr);
        if (ends_block(instr.op)) {
            break;
        }
        pc = instr.end();
    }
    auto [pos, inserted] =
        block_cache_.insert_or_assign(rip, std::move(block));
    (void)inserted;
    return &pos->second;
}

CpuExit
Cpu::run_blocks(uint64_t max_instructions)
{
    CpuExit exit;
    uint64_t executed = 0;
    Block *block = nullptr;
    for (;;) {
        if (executed >= max_instructions) {
            exit.kind = ExitKind::kInstrBudget;
            exit.rip = state_.rip;
            return exit;
        }
        if (block == nullptr) {
            block = lookup_block(state_.rip, &exit);
            if (!block) {
                return exit;
            }
        }
        if (superblock_enabled_) {
            // Tier-2 dispatch. Every path to this point validated the
            // block against the current generation, and a block's sb
            // is only ever set while the generations match, so a
            // trace reached here is runnable; the generation check
            // below is a defensive belt, not a hot path.
            Superblock *sb = block->sb;
            if (sb == nullptr &&
                ++block->exec_count == kPromoteThreshold) {
                sb = promote_superblock(block->instrs[0].address);
                block->sb = sb;
            }
            if (sb != nullptr) {
                if (sb->generation != mem_->code_generation()) {
                    ++sb_invalidations_;
                    block->sb = nullptr;
                    block->exec_count = 0;
                } else if (max_instructions - executed >=
                           sb->first_n_instrs) {
                    // (The budget guard keeps a trace whose first uop
                    // needs more budget than remains from re-entering
                    // forever; tier 1 finishes such slivers exactly.)
                    ++sb_exec_hits_;
                    if (exec_superblock(*sb, max_instructions, &executed,
                                        &exit) == SbResult::kExit) {
                        return exit;
                    }
                    block = nullptr;
                    continue;
                }
            }
        }
        const Instruction *instrs = block->instrs.data();
        const size_t n = block->instrs.size();
        Block *next = nullptr;
        size_t i = 0;
        for (; i < n; ++i) {
            const Instruction &instr = instrs[i];
            if (executed >= max_instructions) {
                state_.rip = instr.address;
                exit.kind = ExitKind::kInstrBudget;
                exit.rip = instr.address;
                return exit;
            }
            ++executed;
            Step step = execute(instr, &exit);
            if (step == Step::kNext) {
                continue;
            }
            if (step == Step::kExit) {
                return exit;
            }
            if (step == Step::kTransfer) {
                // execute stored the new rip. Chain through the
                // inline successor cache when it resolves the target;
                // validate against the *current* generation (a call's
                // push may just have written an executable page).
                uint64_t target = state_.rip;
                uint64_t gen = mem_->code_generation();
                for (int s = 0; s < 2; ++s) {
                    Block *cand = block->succ[s];
                    if (cand && block->succ_rip[s] == target &&
                        cand->generation == gen) {
                        next = cand;
                        ++bb_hits_;
                        break;
                    }
                }
                if (!next) {
                    next = lookup_block(target, &exit);
                    if (!next) {
                        return exit;
                    }
                    block->succ_rip[block->succ_victim] = target;
                    block->succ[block->succ_victim] = next;
                    block->succ_victim ^= 1;
                }
                break;
            }
            // Step::kMemWrite: the store may have hit an executable
            // page (self-modifying code under a data_rwx layout). If
            // the generation moved, this block's remaining decoded
            // ops may be stale — resume through a fresh lookup.
            if (mem_->code_generation() != block->generation) {
                state_.rip = instr.end();
                break; // next == nullptr: fresh lookup
            }
        }
        if (i == n) {
            // Fell off the end of a block that was cut short by a
            // cfi_label boundary, the length cap, or a decode failure
            // ahead: continue at the next sequential instruction.
            state_.rip = instrs[n - 1].end();
        }
        block = next;
    }
}

CpuExit
Cpu::run_decode_loop(uint64_t max_instructions)
{
    CpuExit exit;
    for (uint64_t executed = 0; executed < max_instructions; ++executed) {
        uint64_t rip = state_.rip;
        Instruction instr;
        FaultKind fk = decode_at(rip, &instr);
        if (fk != FaultKind::kNone) {
            exit.kind = ExitKind::kFault;
            exit.fault = fk;
            exit.fault_addr = rip;
            exit.rip = rip;
            return exit;
        }
        Step step = execute(instr, &exit);
        if (step == Step::kExit) {
            return exit;
        }
        if (step != Step::kTransfer) {
            state_.rip = instr.end();
        }
    }
    exit.kind = ExitKind::kInstrBudget;
    exit.rip = state_.rip;
    return exit;
}

Cpu::Step
Cpu::execute(const Instruction &instr, CpuExit *exit)
{
    uint64_t next_rip = instr.end();

    cycles_ += instr.cost; // == isa::cycle_cost(instr), stamped at decode
    ++instructions_;

    auto &regs = state_.regs;

    auto fault = [&](FaultKind kind, uint64_t addr) {
        state_.rip = instr.address;
        exit->kind = ExitKind::kFault;
        exit->fault = kind;
        exit->fault_addr = addr;
        exit->rip = instr.address;
        return Step::kExit;
    };

    switch (instr.op) {
      case Opcode::kNop:
      case Opcode::kCfiLabel:
      case Opcode::kLea:
        if (instr.op == Opcode::kLea) {
            regs[instr.reg1] = effective_address(instr.mem, next_rip);
        }
        return Step::kNext;

      case Opcode::kHlt:
      case Opcode::kEexit:
      case Opcode::kEaccept:
      case Opcode::kXrstor:
      case Opcode::kWrfsbase:
      case Opcode::kBndmk:
      case Opcode::kBndmov:
        state_.rip = instr.address;
        exit->kind = ExitKind::kPrivileged;
        exit->priv_op = instr.op;
        exit->rip = instr.address;
        return Step::kExit;

      case Opcode::kLtrap:
        state_.rip = next_rip;
        exit->kind = ExitKind::kLtrap;
        exit->rip = instr.address;
        return Step::kExit;

      case Opcode::kRdcycle:
        regs[instr.reg1] = cycles_;
        return Step::kNext;

      case Opcode::kMovRI:
        regs[instr.reg1] = static_cast<uint64_t>(instr.imm);
        return Step::kNext;
      case Opcode::kMovRR:
        regs[instr.reg1] = regs[instr.reg2];
        return Step::kNext;

      case Opcode::kLoad:
      case Opcode::kLoad8:
      case Opcode::kLoad32:
      case Opcode::kVGather: {
        uint64_t addr = effective_address(instr.mem, next_rip);
        uint64_t size = instr.op == Opcode::kLoad8 ? 1
                      : instr.op == Opcode::kLoad32 ? 4 : 8;
        uint64_t value = 0;
        AccessFault f = mem_->read(addr, &value, size);
        if (f != AccessFault::kNone) {
            return fault(data_fault_kind(f), addr);
        }
        regs[instr.reg1] = value;
        return Step::kNext;
      }
      case Opcode::kStore:
      case Opcode::kStore8:
      case Opcode::kStore32: {
        uint64_t addr = effective_address(instr.mem, next_rip);
        uint64_t size = instr.op == Opcode::kStore8 ? 1
                      : instr.op == Opcode::kStore32 ? 4 : 8;
        uint64_t value = regs[instr.reg1];
        AccessFault f = mem_->write(addr, &value, size);
        if (f != AccessFault::kNone) {
            return fault(data_fault_kind(f), addr);
        }
        return Step::kMemWrite;
      }

      case Opcode::kAddRR:
        regs[instr.reg1] += regs[instr.reg2];
        return Step::kNext;
      case Opcode::kAddRI:
        regs[instr.reg1] += instr.imm;
        return Step::kNext;
      case Opcode::kSubRR:
        regs[instr.reg1] -= regs[instr.reg2];
        return Step::kNext;
      case Opcode::kSubRI:
        regs[instr.reg1] -= instr.imm;
        return Step::kNext;
      case Opcode::kMulRR:
        regs[instr.reg1] *= regs[instr.reg2];
        return Step::kNext;
      case Opcode::kMulRI:
        regs[instr.reg1] *= instr.imm;
        return Step::kNext;
      case Opcode::kDivRR:
      case Opcode::kModRR: {
        int64_t divisor = static_cast<int64_t>(regs[instr.reg2]);
        if (divisor == 0) {
            return fault(FaultKind::kDivide, instr.address);
        }
        int64_t dividend = static_cast<int64_t>(regs[instr.reg1]);
        // INT64_MIN / -1 overflows on the host; define it as
        // wrapping (the quotient is INT64_MIN again).
        if (dividend == INT64_MIN && divisor == -1) {
            regs[instr.reg1] = instr.op == Opcode::kDivRR
                                   ? static_cast<uint64_t>(INT64_MIN) : 0;
        } else if (instr.op == Opcode::kDivRR) {
            regs[instr.reg1] = static_cast<uint64_t>(dividend / divisor);
        } else {
            regs[instr.reg1] = static_cast<uint64_t>(dividend % divisor);
        }
        return Step::kNext;
      }
      case Opcode::kAndRR:
        regs[instr.reg1] &= regs[instr.reg2];
        return Step::kNext;
      case Opcode::kAndRI:
        regs[instr.reg1] &= instr.imm;
        return Step::kNext;
      case Opcode::kOrRR:
        regs[instr.reg1] |= regs[instr.reg2];
        return Step::kNext;
      case Opcode::kOrRI:
        regs[instr.reg1] |= instr.imm;
        return Step::kNext;
      case Opcode::kXorRR:
        regs[instr.reg1] ^= regs[instr.reg2];
        return Step::kNext;
      case Opcode::kXorRI:
        regs[instr.reg1] ^= instr.imm;
        return Step::kNext;
      case Opcode::kShlRI:
        regs[instr.reg1] <<= (instr.imm & 63);
        return Step::kNext;
      case Opcode::kShrRI:
        regs[instr.reg1] >>= (instr.imm & 63);
        return Step::kNext;
      case Opcode::kSarRI:
        regs[instr.reg1] = static_cast<uint64_t>(
            static_cast<int64_t>(regs[instr.reg1]) >> (instr.imm & 63));
        return Step::kNext;
      case Opcode::kShlRR:
        regs[instr.reg1] <<= (regs[instr.reg2] & 63);
        return Step::kNext;
      case Opcode::kShrRR:
        regs[instr.reg1] >>= (regs[instr.reg2] & 63);
        return Step::kNext;
      case Opcode::kSarRR:
        regs[instr.reg1] = static_cast<uint64_t>(
            static_cast<int64_t>(regs[instr.reg1]) >>
            (regs[instr.reg2] & 63));
        return Step::kNext;
      case Opcode::kNeg:
        regs[instr.reg1] = 0 - regs[instr.reg1];
        return Step::kNext;
      case Opcode::kNot:
        regs[instr.reg1] = ~regs[instr.reg1];
        return Step::kNext;

      case Opcode::kCmpRR:
        set_cmp_flags(regs[instr.reg1], regs[instr.reg2]);
        return Step::kNext;
      case Opcode::kCmpRI:
        set_cmp_flags(regs[instr.reg1], static_cast<uint64_t>(instr.imm));
        return Step::kNext;
      case Opcode::kTestRR: {
        uint64_t r = regs[instr.reg1] & regs[instr.reg2];
        state_.flags.zf = (r == 0);
        state_.flags.sf = (static_cast<int64_t>(r) < 0);
        state_.flags.cf = false;
        state_.flags.of = false;
        return Step::kNext;
      }

      case Opcode::kJmp:
        state_.rip = instr.direct_target();
        return Step::kTransfer;
      case Opcode::kJcc:
        state_.rip = eval_cond(instr.cond) ? instr.direct_target()
                                           : next_rip;
        return Step::kTransfer;
      case Opcode::kCall:
      case Opcode::kCallReg:
      case Opcode::kCallMem: {
        uint64_t target;
        if (instr.op == Opcode::kCall) {
            target = instr.direct_target();
        } else if (instr.op == Opcode::kCallReg) {
            target = regs[instr.reg1];
        } else {
            uint64_t addr = effective_address(instr.mem, next_rip);
            AccessFault f = mem_->read(addr, &target, 8);
            if (f != AccessFault::kNone) {
                return fault(data_fault_kind(f), addr);
            }
        }
        uint64_t new_sp = regs[isa::kSp] - 8;
        AccessFault f = mem_->write(new_sp, &next_rip, 8);
        if (f != AccessFault::kNone) {
            return fault(data_fault_kind(f), new_sp);
        }
        regs[isa::kSp] = new_sp;
        state_.rip = target;
        return Step::kTransfer;
      }
      case Opcode::kJmpReg:
        state_.rip = regs[instr.reg1];
        return Step::kTransfer;
      case Opcode::kJmpMem: {
        uint64_t addr = effective_address(instr.mem, next_rip);
        uint64_t target;
        AccessFault f = mem_->read(addr, &target, 8);
        if (f != AccessFault::kNone) {
            return fault(data_fault_kind(f), addr);
        }
        state_.rip = target;
        return Step::kTransfer;
      }
      case Opcode::kRet:
      case Opcode::kRetImm: {
        uint64_t target;
        AccessFault f = mem_->read(regs[isa::kSp], &target, 8);
        if (f != AccessFault::kNone) {
            return fault(data_fault_kind(f), regs[isa::kSp]);
        }
        regs[isa::kSp] += 8 + static_cast<uint64_t>(instr.imm);
        state_.rip = target;
        return Step::kTransfer;
      }

      case Opcode::kPush:
      case Opcode::kPushImm: {
        uint64_t value = instr.op == Opcode::kPush
                             ? regs[instr.reg1]
                             : static_cast<uint64_t>(instr.imm);
        uint64_t new_sp = regs[isa::kSp] - 8;
        AccessFault f = mem_->write(new_sp, &value, 8);
        if (f != AccessFault::kNone) {
            return fault(data_fault_kind(f), new_sp);
        }
        regs[isa::kSp] = new_sp;
        return Step::kMemWrite;
      }
      case Opcode::kPop: {
        uint64_t value;
        AccessFault f = mem_->read(regs[isa::kSp], &value, 8);
        if (f != AccessFault::kNone) {
            return fault(data_fault_kind(f), regs[isa::kSp]);
        }
        regs[isa::kSp] += 8;
        regs[instr.reg1] = value;
        return Step::kNext;
      }

      case Opcode::kBndclMem:
      case Opcode::kBndcuMem: {
        uint64_t addr = effective_address(instr.mem, next_rip);
        const BoundReg &b = state_.bnds[instr.bnd];
        bool violation = instr.op == Opcode::kBndclMem ? (addr < b.lo)
                                                       : (addr > b.hi);
        if (violation) {
            return fault(FaultKind::kBoundRange, addr);
        }
        return Step::kNext;
      }
      case Opcode::kBndclReg:
      case Opcode::kBndcuReg: {
        uint64_t value = regs[instr.reg1];
        const BoundReg &b = state_.bnds[instr.bnd];
        bool violation = instr.op == Opcode::kBndclReg ? (value < b.lo)
                                                       : (value > b.hi);
        if (violation) {
            return fault(FaultKind::kBoundRange, value);
        }
        return Step::kNext;
      }
    }
    OCC_PANIC("unhandled opcode");
}

} // namespace occlum::vm
