#include "vm/cpu.h"

#include "base/log.h"
#include "trace/metrics.h"
#include "trace/trace.h"

namespace occlum::vm {

using isa::Instruction;
using isa::Opcode;

namespace {

FaultKind
data_fault_kind(AccessFault fault)
{
    switch (fault) {
      case AccessFault::kUnmapped: return FaultKind::kPageFault;
      case AccessFault::kNoRead:
      case AccessFault::kNoWrite:
      case AccessFault::kNoExec: return FaultKind::kPermFault;
      case AccessFault::kNone: return FaultKind::kNone;
    }
    return FaultKind::kNone;
}

} // namespace

uint64_t
Cpu::effective_address(const isa::MemOperand &mem, uint64_t instr_end) const
{
    switch (mem.mode) {
      case isa::AddrMode::kBaseDisp:
        return state_.regs[mem.base] + static_cast<int64_t>(mem.disp);
      case isa::AddrMode::kSib:
        return state_.regs[mem.base] +
               (state_.regs[mem.index] << mem.scale_log2) +
               static_cast<int64_t>(mem.disp);
      case isa::AddrMode::kRipRel:
        return instr_end + static_cast<int64_t>(mem.disp);
      case isa::AddrMode::kAbs:
        return mem.abs_addr;
    }
    OCC_PANIC("bad addr mode");
}

void
Cpu::set_cmp_flags(uint64_t a, uint64_t b)
{
    uint64_t diff = a - b;
    int64_t sa = static_cast<int64_t>(a);
    int64_t sb = static_cast<int64_t>(b);
    state_.flags.zf = (a == b);
    state_.flags.sf = (static_cast<int64_t>(diff) < 0);
    state_.flags.cf = (a < b);
    // Signed overflow of a - b.
    state_.flags.of = ((sa < 0) != (sb < 0)) &&
                      ((sa < 0) != (static_cast<int64_t>(diff) < 0));
}

bool
Cpu::eval_cond(isa::Cond cond) const
{
    const Flags &f = state_.flags;
    switch (cond) {
      case isa::Cond::kEq: return f.zf;
      case isa::Cond::kNe: return !f.zf;
      case isa::Cond::kLt: return f.sf != f.of;
      case isa::Cond::kLe: return f.zf || (f.sf != f.of);
      case isa::Cond::kGt: return !f.zf && (f.sf == f.of);
      case isa::Cond::kGe: return f.sf == f.of;
      case isa::Cond::kB: return f.cf;
      case isa::Cond::kBe: return f.cf || f.zf;
      case isa::Cond::kA: return !f.cf && !f.zf;
      case isa::Cond::kAe: return !f.cf;
    }
    OCC_PANIC("bad cond");
}

CpuExit
Cpu::run(uint64_t max_instructions)
{
    uint64_t before_instrs = instructions_;
    CpuExit exit = run_interpret(max_instructions);

    // Dispatch-level metrics: one registry lookup per process (the
    // entries are process-wide), one add per executed quantum.
    static trace::Counter *ctr_instrs =
        &trace::Registry::instance().counter("vm.instructions");
    static trace::Counter *ctr_quanta =
        &trace::Registry::instance().counter("vm.quanta");
    static trace::Counter *ctr_ltraps =
        &trace::Registry::instance().counter("vm.ltraps");
    static trace::Counter *ctr_faults =
        &trace::Registry::instance().counter("vm.faults");
    ctr_instrs->add(instructions_ - before_instrs);
    ctr_quanta->add();
    switch (exit.kind) {
      case ExitKind::kLtrap:
        ctr_ltraps->add();
        break;
      case ExitKind::kFault:
        ctr_faults->add();
        OCC_TRACE_INSTANT(kVm, "cpu.fault", exit.fault_addr);
        break;
      case ExitKind::kPrivileged:
        OCC_TRACE_INSTANT(kVm, "cpu.priv", exit.rip);
        break;
      case ExitKind::kInstrBudget:
        break;
    }
    return exit;
}

CpuExit
Cpu::run_interpret(uint64_t max_instructions)
{
    CpuExit exit;
    auto fault = [&](FaultKind kind, uint64_t addr) {
        exit.kind = ExitKind::kFault;
        exit.fault = kind;
        exit.fault_addr = addr;
        exit.rip = state_.rip;
        return exit;
    };

    for (uint64_t executed = 0; executed < max_instructions; ++executed) {
        // ---- fetch + decode (with a generation-checked cache) --------
        uint64_t rip = state_.rip;
        const Instruction *instr_ptr = nullptr;
        auto cached = decode_cache_.find(rip);
        if (cached != decode_cache_.end() &&
            cached->second.generation == mem_->code_generation()) {
            instr_ptr = &cached->second.instr;
        } else {
            uint8_t buf[16];
            uint64_t got = 0;
            while (got < sizeof(buf)) {
                if (mem_->fetch(rip + got, buf + got, 1) !=
                    AccessFault::kNone) {
                    break;
                }
                ++got;
            }
            if (got == 0) {
                return fault(FaultKind::kExecFault, rip);
            }
            auto decoded = isa::decode(buf, got, 0, rip);
            if (!decoded.ok()) {
                return fault(FaultKind::kInvalidInstr, rip);
            }
            DecodeEntry entry;
            entry.instr = decoded.take();
            entry.generation = mem_->code_generation();
            instr_ptr =
                &decode_cache_.insert_or_assign(rip, entry).first->second
                     .instr;
        }
        const Instruction &instr = *instr_ptr;
        uint64_t next_rip = instr.end();

        cycles_ += isa::cycle_cost(instr);
        ++instructions_;

        auto &regs = state_.regs;

        // ---- execute --------------------------------------------------
        switch (instr.op) {
          case Opcode::kNop:
          case Opcode::kCfiLabel:
          case Opcode::kLea:
            if (instr.op == Opcode::kLea) {
                regs[instr.reg1] =
                    effective_address(instr.mem, next_rip);
            }
            break;

          case Opcode::kHlt:
          case Opcode::kEexit:
          case Opcode::kEaccept:
          case Opcode::kXrstor:
          case Opcode::kWrfsbase:
          case Opcode::kBndmk:
          case Opcode::kBndmov:
            exit.kind = ExitKind::kPrivileged;
            exit.priv_op = instr.op;
            exit.rip = rip;
            return exit;

          case Opcode::kLtrap:
            state_.rip = next_rip;
            exit.kind = ExitKind::kLtrap;
            exit.rip = rip;
            return exit;

          case Opcode::kRdcycle:
            regs[instr.reg1] = cycles_;
            break;

          case Opcode::kMovRI:
            regs[instr.reg1] = static_cast<uint64_t>(instr.imm);
            break;
          case Opcode::kMovRR:
            regs[instr.reg1] = regs[instr.reg2];
            break;

          case Opcode::kLoad:
          case Opcode::kLoad8:
          case Opcode::kLoad32:
          case Opcode::kVGather: {
            uint64_t addr = effective_address(instr.mem, next_rip);
            uint64_t size = instr.op == Opcode::kLoad8 ? 1
                          : instr.op == Opcode::kLoad32 ? 4 : 8;
            uint64_t value = 0;
            AccessFault f = mem_->read(addr, &value, size);
            if (f != AccessFault::kNone) {
                return fault(data_fault_kind(f), addr);
            }
            regs[instr.reg1] = value;
            break;
          }
          case Opcode::kStore:
          case Opcode::kStore8:
          case Opcode::kStore32: {
            uint64_t addr = effective_address(instr.mem, next_rip);
            uint64_t size = instr.op == Opcode::kStore8 ? 1
                          : instr.op == Opcode::kStore32 ? 4 : 8;
            uint64_t value = regs[instr.reg1];
            AccessFault f = mem_->write(addr, &value, size);
            if (f != AccessFault::kNone) {
                return fault(data_fault_kind(f), addr);
            }
            break;
          }

          case Opcode::kAddRR: regs[instr.reg1] += regs[instr.reg2]; break;
          case Opcode::kAddRI: regs[instr.reg1] += instr.imm; break;
          case Opcode::kSubRR: regs[instr.reg1] -= regs[instr.reg2]; break;
          case Opcode::kSubRI: regs[instr.reg1] -= instr.imm; break;
          case Opcode::kMulRR: regs[instr.reg1] *= regs[instr.reg2]; break;
          case Opcode::kMulRI: regs[instr.reg1] *= instr.imm; break;
          case Opcode::kDivRR:
          case Opcode::kModRR: {
            int64_t divisor = static_cast<int64_t>(regs[instr.reg2]);
            if (divisor == 0) {
                return fault(FaultKind::kDivide, rip);
            }
            int64_t dividend = static_cast<int64_t>(regs[instr.reg1]);
            // INT64_MIN / -1 overflows on the host; define it as
            // wrapping (the quotient is INT64_MIN again).
            if (dividend == INT64_MIN && divisor == -1) {
                regs[instr.reg1] =
                    instr.op == Opcode::kDivRR
                        ? static_cast<uint64_t>(INT64_MIN) : 0;
            } else if (instr.op == Opcode::kDivRR) {
                regs[instr.reg1] =
                    static_cast<uint64_t>(dividend / divisor);
            } else {
                regs[instr.reg1] =
                    static_cast<uint64_t>(dividend % divisor);
            }
            break;
          }
          case Opcode::kAndRR: regs[instr.reg1] &= regs[instr.reg2]; break;
          case Opcode::kAndRI: regs[instr.reg1] &= instr.imm; break;
          case Opcode::kOrRR: regs[instr.reg1] |= regs[instr.reg2]; break;
          case Opcode::kOrRI: regs[instr.reg1] |= instr.imm; break;
          case Opcode::kXorRR: regs[instr.reg1] ^= regs[instr.reg2]; break;
          case Opcode::kXorRI: regs[instr.reg1] ^= instr.imm; break;
          case Opcode::kShlRI:
            regs[instr.reg1] <<= (instr.imm & 63);
            break;
          case Opcode::kShrRI:
            regs[instr.reg1] >>= (instr.imm & 63);
            break;
          case Opcode::kSarRI:
            regs[instr.reg1] = static_cast<uint64_t>(
                static_cast<int64_t>(regs[instr.reg1]) >> (instr.imm & 63));
            break;
          case Opcode::kShlRR:
            regs[instr.reg1] <<= (regs[instr.reg2] & 63);
            break;
          case Opcode::kShrRR:
            regs[instr.reg1] >>= (regs[instr.reg2] & 63);
            break;
          case Opcode::kSarRR:
            regs[instr.reg1] = static_cast<uint64_t>(
                static_cast<int64_t>(regs[instr.reg1]) >>
                (regs[instr.reg2] & 63));
            break;
          case Opcode::kNeg:
            regs[instr.reg1] = 0 - regs[instr.reg1];
            break;
          case Opcode::kNot:
            regs[instr.reg1] = ~regs[instr.reg1];
            break;

          case Opcode::kCmpRR:
            set_cmp_flags(regs[instr.reg1], regs[instr.reg2]);
            break;
          case Opcode::kCmpRI:
            set_cmp_flags(regs[instr.reg1],
                          static_cast<uint64_t>(instr.imm));
            break;
          case Opcode::kTestRR: {
            uint64_t r = regs[instr.reg1] & regs[instr.reg2];
            state_.flags.zf = (r == 0);
            state_.flags.sf = (static_cast<int64_t>(r) < 0);
            state_.flags.cf = false;
            state_.flags.of = false;
            break;
          }

          case Opcode::kJmp:
            next_rip = instr.direct_target();
            break;
          case Opcode::kJcc:
            if (eval_cond(instr.cond)) {
                next_rip = instr.direct_target();
            }
            break;
          case Opcode::kCall:
          case Opcode::kCallReg:
          case Opcode::kCallMem: {
            uint64_t target;
            if (instr.op == Opcode::kCall) {
                target = instr.direct_target();
            } else if (instr.op == Opcode::kCallReg) {
                target = regs[instr.reg1];
            } else {
                uint64_t addr = effective_address(instr.mem, next_rip);
                AccessFault f = mem_->read(addr, &target, 8);
                if (f != AccessFault::kNone) {
                    return fault(data_fault_kind(f), addr);
                }
            }
            uint64_t new_sp = regs[isa::kSp] - 8;
            AccessFault f = mem_->write(new_sp, &next_rip, 8);
            if (f != AccessFault::kNone) {
                return fault(data_fault_kind(f), new_sp);
            }
            regs[isa::kSp] = new_sp;
            next_rip = target;
            break;
          }
          case Opcode::kJmpReg:
            next_rip = regs[instr.reg1];
            break;
          case Opcode::kJmpMem: {
            uint64_t addr = effective_address(instr.mem, next_rip);
            uint64_t target;
            AccessFault f = mem_->read(addr, &target, 8);
            if (f != AccessFault::kNone) {
                return fault(data_fault_kind(f), addr);
            }
            next_rip = target;
            break;
          }
          case Opcode::kRet:
          case Opcode::kRetImm: {
            uint64_t target;
            AccessFault f = mem_->read(regs[isa::kSp], &target, 8);
            if (f != AccessFault::kNone) {
                return fault(data_fault_kind(f), regs[isa::kSp]);
            }
            regs[isa::kSp] += 8 + static_cast<uint64_t>(instr.imm);
            next_rip = target;
            break;
          }

          case Opcode::kPush:
          case Opcode::kPushImm: {
            uint64_t value = instr.op == Opcode::kPush
                                 ? regs[instr.reg1]
                                 : static_cast<uint64_t>(instr.imm);
            uint64_t new_sp = regs[isa::kSp] - 8;
            AccessFault f = mem_->write(new_sp, &value, 8);
            if (f != AccessFault::kNone) {
                return fault(data_fault_kind(f), new_sp);
            }
            regs[isa::kSp] = new_sp;
            break;
          }
          case Opcode::kPop: {
            uint64_t value;
            AccessFault f = mem_->read(regs[isa::kSp], &value, 8);
            if (f != AccessFault::kNone) {
                return fault(data_fault_kind(f), regs[isa::kSp]);
            }
            regs[isa::kSp] += 8;
            regs[instr.reg1] = value;
            break;
          }

          case Opcode::kBndclMem:
          case Opcode::kBndcuMem: {
            uint64_t addr = effective_address(instr.mem, next_rip);
            const BoundReg &b = state_.bnds[instr.bnd];
            bool violation = instr.op == Opcode::kBndclMem ? (addr < b.lo)
                                                           : (addr > b.hi);
            if (violation) {
                return fault(FaultKind::kBoundRange, addr);
            }
            break;
          }
          case Opcode::kBndclReg:
          case Opcode::kBndcuReg: {
            uint64_t value = regs[instr.reg1];
            const BoundReg &b = state_.bnds[instr.bnd];
            bool violation = instr.op == Opcode::kBndclReg ? (value < b.lo)
                                                           : (value > b.hi);
            if (violation) {
                return fault(FaultKind::kBoundRange, value);
            }
            break;
          }
        }

        state_.rip = next_rip;
    }
    exit.kind = ExitKind::kInstrBudget;
    exit.rip = state_.rip;
    return exit;
}

} // namespace occlum::vm
