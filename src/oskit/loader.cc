#include "oskit/loader.h"

#include <cstring>

#include "base/log.h"
#include "isa/assembler.h"
#include "oelf/abi.h"

namespace occlum::oskit {

namespace {

/** Rewrite the domain-ID field of every cfi_label in a code blob. */
void
rewrite_cfi_labels(Bytes &code, uint32_t domain_id)
{
    if (code.size() < isa::kCfiLabelSize) {
        return;
    }
    for (size_t i = 0; i + isa::kCfiLabelSize <= code.size(); ++i) {
        if (std::memcmp(code.data() + i, isa::kCfiMagic, 4) == 0) {
            set_le<uint32_t>(code.data() + i + 4, domain_id);
            i += isa::kCfiLabelSize - 1;
        }
    }
}

} // namespace

Result<LoadedDomain>
load_image(vm::AddressSpace &space, const oelf::Image &image,
           uint64_t base, const std::vector<std::string> &argv,
           const LoadOptions &options)
{
    if (base & vm::kPageMask) {
        return Error(ErrorCode::kInval, "unaligned domain base");
    }
    if (image.code.size() > image.code_region_size()) {
        return Error(ErrorCode::kNoExec, "code exceeds its reservation");
    }

    LoadedDomain domain;
    domain.base = base;
    domain.domain_id = options.domain_id;
    domain.c_begin = base + oelf::kTrampSize;
    domain.d_begin = base + image.data_offset();
    domain.d_end = domain.d_begin + image.data_region_size();
    domain.entry = domain.c_begin + image.entry_offset;

    uint64_t code_pages = oelf::kTrampSize + image.code_region_size();
    if (options.map_pages) {
        // Trampoline + code: RX; data: RW; guards left unmapped.
        OCC_RETURN_IF_ERROR(space.map(base, code_pages, vm::kPermRX));
        OCC_RETURN_IF_ERROR(space.map(
            domain.d_begin, image.data_region_size(),
            options.data_rwx ? vm::kPermRWX : vm::kPermRW));
    } else {
        if (!space.is_mapped(base, code_pages) ||
            !space.is_mapped(domain.d_begin, image.data_region_size())) {
            return Error(ErrorCode::kNoMem, "domain slot not mapped");
        }
        // Fresh slate for a reused slot.
        space.zero_raw(base, code_pages);
        space.zero_raw(domain.d_begin, image.data_region_size());
    }

    // Trampoline: cfi_label(domain_id); ltrap. The cfi_label makes the
    // gate a legal target for the user's cfi_guard + call_reg.
    isa::Assembler gate(base);
    gate.cfi_label(options.domain_id);
    gate.ltrap();
    Bytes gate_code = gate.finish();
    OCC_CHECK(space.write_raw(base, gate_code.data(), gate_code.size()) ==
              vm::AccessFault::kNone);

    // User code with the domain ID stamped into every cfi_label.
    Bytes code = image.code;
    if (options.rewrite_cfi) {
        rewrite_cfi_labels(code, options.domain_id);
    }
    if (!code.empty()) {
        OCC_CHECK(space.write_raw(domain.c_begin, code.data(),
                                  code.size()) == vm::AccessFault::kNone);
    }
    space.touch_code();

    // Initialized data after the PCB.
    if (!image.data.empty()) {
        OCC_CHECK(space.write_raw(domain.d_begin + abi::kPcbSize,
                                  image.data.data(), image.data.size()) ==
                  vm::AccessFault::kNone);
    }

    // Heap split: low 3/4 to the user bump allocator (via the PCB),
    // high 1/4 to kernel-managed mmap.
    uint64_t heap_lo = domain.d_begin + image.heap_offset_in_data();
    uint64_t heap_hi = heap_lo + image.heap_size;
    uint64_t heap_mid =
        (heap_lo + image.heap_size * 3 / 4 + 7) & ~7ull;
    domain.heap_begin = heap_lo;
    domain.heap_end = heap_mid;
    domain.mmap_begin = heap_mid;
    domain.mmap_end = heap_hi;
    domain.stack_top = domain.d_end - 16;

    // PCB (paper §6's auxv stand-in).
    auto put64 = [&](uint64_t off, uint64_t value) {
        OCC_CHECK(space.write_raw(domain.d_begin + off, &value, 8) ==
                  vm::AccessFault::kNone);
    };
    put64(abi::kPcbTrampoline, base);
    put64(abi::kPcbDomainId, options.domain_id);
    put64(abi::kPcbHeapBegin, domain.heap_begin);
    put64(abi::kPcbHeapEnd, domain.heap_end);
    put64(abi::kPcbArgc, argv.size());

    // argv blob: pointer array then string bytes.
    uint64_t blob_base = domain.d_begin + abi::kPcbArgBlob;
    uint64_t ptr_area = blob_base;
    uint64_t str_area = blob_base + 8 * argv.size();
    uint64_t blob_end = domain.d_begin + abi::kPcbSize;
    put64(abi::kPcbArgv, ptr_area);
    for (size_t i = 0; i < argv.size(); ++i) {
        const std::string &arg = argv[i];
        if (str_area + arg.size() + 1 > blob_end) {
            return Error(ErrorCode::kInval, "argv too large for the PCB");
        }
        put64(abi::kPcbArgBlob + 8 * i, str_area);
        OCC_CHECK(space.write_raw(str_area, arg.c_str(),
                                  arg.size() + 1) ==
                  vm::AccessFault::kNone);
        str_area += arg.size() + 1;
    }
    return domain;
}

void
init_cpu(vm::Cpu &cpu, const LoadedDomain &domain)
{
    vm::CpuState state;
    state.rip = domain.entry;
    state.regs[isa::kSp] = domain.stack_top;
    state.bnds[isa::kBndData] = {domain.d_begin, domain.d_end - 1};
    uint64_t label = isa::cfi_label_value(domain.domain_id);
    state.bnds[isa::kBndCfi] = {label, label};
    cpu.set_state(state);
}

} // namespace occlum::oskit
